// value.hpp — the dynamic value type of the embedded Unicon runtime.
//
// Icon/Unicon is dynamically typed; every runtime datum is one of a small
// set of types. Value is a cheap-to-copy tagged union: immediate types
// (null, small integer, real) are stored inline, everything else behind a
// shared_ptr. Integers transparently overflow from a 64-bit fast path into
// arbitrary-precision BigInt, mirroring Icon's implicit large integers
// (which the paper's word-count benchmarks rely on).
#pragma once

#include <concepts>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "bignum/bigint.hpp"

namespace congen {

class Value;
class ListImpl;
class TableImpl;
class SetImpl;
class ProcImpl;
class RecordImpl;
class CoExpression;  // defined in coexpr/
class Gen;           // defined in kernel/

using ListPtr = std::shared_ptr<ListImpl>;
using TablePtr = std::shared_ptr<TableImpl>;
using SetPtr = std::shared_ptr<SetImpl>;
using ProcPtr = std::shared_ptr<ProcImpl>;
using RecordPtr = std::shared_ptr<RecordImpl>;
using CoExprPtr = std::shared_ptr<CoExpression>;
using GenPtr = std::shared_ptr<Gen>;

/// Discriminator for Value. Order defines the cross-type sort order used
/// by sort() and by table/set key ordering (Icon sorts values of different
/// types by type name; we use a fixed rank).
enum class TypeTag : std::uint8_t {
  Null = 0,
  Integer,   // int64 fast path or BigInt
  Real,
  String,
  List,
  Table,
  Set,
  Record,
  Proc,
  CoExpr,
};

/// Dynamically typed Unicon value.
class Value {
 public:
  /// The null value (&null).
  Value() noexcept : v_(std::monostate{}) {}

  // -- constructors ---------------------------------------------------
  static Value null() noexcept { return Value{}; }
  static Value integer(std::int64_t v) noexcept { return Value{v}; }
  static Value integer(BigInt v);
  static Value real(double v) noexcept { return Value{v}; }
  static Value string(std::string s) {
    return Value{std::make_shared<const std::string>(std::move(s))};
  }
  static Value string(std::shared_ptr<const std::string> s) noexcept { return Value{std::move(s)}; }
  static Value list(ListPtr l) noexcept { return Value{std::move(l)}; }
  static Value table(TablePtr t) noexcept { return Value{std::move(t)}; }
  static Value set(SetPtr s) noexcept { return Value{std::move(s)}; }
  static Value record(RecordPtr r) noexcept { return Value{std::move(r)}; }
  static Value proc(ProcPtr p) noexcept { return Value{std::move(p)}; }
  static Value coexpr(CoExprPtr c) noexcept { return Value{std::move(c)}; }

  // -- observers ------------------------------------------------------
  [[nodiscard]] TypeTag tag() const noexcept;
  [[nodiscard]] bool isNull() const noexcept { return std::holds_alternative<std::monostate>(v_); }
  [[nodiscard]] bool isInteger() const noexcept {
    return std::holds_alternative<std::int64_t>(v_) ||
           std::holds_alternative<std::shared_ptr<const BigInt>>(v_);
  }
  [[nodiscard]] bool isSmallInt() const noexcept { return std::holds_alternative<std::int64_t>(v_); }
  [[nodiscard]] bool isReal() const noexcept { return std::holds_alternative<double>(v_); }
  [[nodiscard]] bool isString() const noexcept {
    return std::holds_alternative<std::shared_ptr<const std::string>>(v_);
  }
  [[nodiscard]] bool isList() const noexcept { return std::holds_alternative<ListPtr>(v_); }
  [[nodiscard]] bool isTable() const noexcept { return std::holds_alternative<TablePtr>(v_); }
  [[nodiscard]] bool isSet() const noexcept { return std::holds_alternative<SetPtr>(v_); }
  [[nodiscard]] bool isRecord() const noexcept { return std::holds_alternative<RecordPtr>(v_); }
  [[nodiscard]] bool isProc() const noexcept { return std::holds_alternative<ProcPtr>(v_); }
  [[nodiscard]] bool isCoExpr() const noexcept { return std::holds_alternative<CoExprPtr>(v_); }

  /// Unchecked accessors; call only after the corresponding is*() test.
  [[nodiscard]] std::int64_t smallInt() const { return std::get<std::int64_t>(v_); }
  [[nodiscard]] const BigInt& bigInt() const { return *std::get<std::shared_ptr<const BigInt>>(v_); }
  [[nodiscard]] double real() const { return std::get<double>(v_); }
  [[nodiscard]] const std::string& str() const {
    return *std::get<std::shared_ptr<const std::string>>(v_);
  }
  [[nodiscard]] const ListPtr& list() const { return std::get<ListPtr>(v_); }
  [[nodiscard]] const TablePtr& table() const { return std::get<TablePtr>(v_); }
  [[nodiscard]] const SetPtr& set() const { return std::get<SetPtr>(v_); }
  [[nodiscard]] const RecordPtr& record() const { return std::get<RecordPtr>(v_); }
  [[nodiscard]] const ProcPtr& proc() const { return std::get<ProcPtr>(v_); }
  [[nodiscard]] const CoExprPtr& coExpr() const { return std::get<CoExprPtr>(v_); }

  // -- coercion (Icon run-time errors 101/102/103 on failure) ---------
  /// Coerce to integer (strings parsed, reals accepted if integral).
  /// Returns nullopt if not coercible (caller raises or fails).
  [[nodiscard]] std::optional<Value> toIntegerValue() const;
  /// Coerce to int64; errors if out of range or not coercible.
  [[nodiscard]] std::int64_t requireInt64(std::string_view what = "value") const;
  /// Coerce to BigInt; errors if not coercible.
  [[nodiscard]] BigInt requireBigInt(std::string_view what = "value") const;
  /// Coerce to a numeric Value (integer or real), as Icon's numeric().
  [[nodiscard]] std::optional<Value> toNumeric() const;
  /// Coerce to double; errors if not numeric.
  [[nodiscard]] double requireReal(std::string_view what = "value") const;
  /// Coerce to string (numbers formatted, strings as-is); errors otherwise.
  [[nodiscard]] std::string requireString(std::string_view what = "value") const;

  // -- Icon semantics --------------------------------------------------
  /// Icon type() name: "null", "integer", "real", "string", "list",
  /// "table", "set", "procedure", "co-expression".
  [[nodiscard]] std::string typeName() const;
  /// Icon image(): a human-readable, type-revealing rendering.
  [[nodiscard]] std::string image() const;
  /// Value rendering for write(): strings unquoted, numbers formatted.
  [[nodiscard]] std::string toDisplayString() const;

  /// Icon === equivalence: numbers by value within the same type class,
  /// strings by content, structures by identity.
  [[nodiscard]] bool equals(const Value& other) const;
  /// Total order across all values: type rank, then value (structures by
  /// address). Basis for sort() and ordered containers.
  [[nodiscard]] int compare(const Value& other) const;
  /// Hash consistent with equals().
  [[nodiscard]] std::size_t hash() const;

  /// Icon *x size: string length, list/table/set size; errors otherwise.
  [[nodiscard]] std::int64_t size() const;

  Value(const Value&) = default;
  Value(Value&&) noexcept = default;
  Value& operator=(const Value&) = default;
  Value& operator=(Value&&) noexcept = default;

 private:
  template <class T>
    requires(!std::same_as<std::remove_cvref_t<T>, Value>)
  explicit Value(T&& v) : v_(std::forward<T>(v)) {}

  std::variant<std::monostate, std::int64_t, std::shared_ptr<const BigInt>, double,
               std::shared_ptr<const std::string>, ListPtr, TablePtr, SetPtr, RecordPtr, ProcPtr,
               CoExprPtr>
      v_;
};

/// Hash/equality functors so Values can key unordered containers.
struct ValueHash {
  std::size_t operator()(const Value& v) const { return v.hash(); }
};
struct ValueEq {
  bool operator()(const Value& a, const Value& b) const { return a.equals(b); }
};

// -- arithmetic & comparison (goal-directed flavours) ------------------
//
// Arithmetic raises IconError on non-numeric operands. Comparisons follow
// Icon: they *fail* (nullopt) rather than produce false, and on success
// yield the right operand.

namespace ops {

Value add(const Value& a, const Value& b);
Value sub(const Value& a, const Value& b);
Value mul(const Value& a, const Value& b);
Value div(const Value& a, const Value& b);
Value mod(const Value& a, const Value& b);
Value power(const Value& a, const Value& b);
Value negate(const Value& a);

/// Numeric comparisons: x < y yields y, or fails.
std::optional<Value> numLT(const Value& a, const Value& b);
std::optional<Value> numLE(const Value& a, const Value& b);
std::optional<Value> numGT(const Value& a, const Value& b);
std::optional<Value> numGE(const Value& a, const Value& b);
std::optional<Value> numEQ(const Value& a, const Value& b);
std::optional<Value> numNE(const Value& a, const Value& b);

/// Value equivalence (===): yields b or fails.
std::optional<Value> valEQ(const Value& a, const Value& b);
std::optional<Value> valNE(const Value& a, const Value& b);

/// String concatenation (||).
Value concat(const Value& a, const Value& b);
/// List concatenation (|||): a new list with the elements of both.
Value listConcat(const Value& a, const Value& b);

}  // namespace ops

}  // namespace congen

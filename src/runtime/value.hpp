// value.hpp — the dynamic value type of the embedded Unicon runtime.
//
// Icon/Unicon is dynamically typed; every runtime datum is one of a small
// set of types. Value is a 16-byte hand-rolled tagged union: null, int64
// and real live inline; strings up to kSsoCapacity bytes are stored
// wholly inline (SSO — table keys and word-count tokens allocate
// nothing); every heap type sits behind ONE intrusive-refcounted pointer
// (runtime/rc.hpp), so copying any Value is a 16-byte copy plus at most
// one non-virtual atomic increment — no variant dispatch, no shared_ptr
// control blocks. Integers transparently overflow from a 64-bit fast
// path into arbitrary-precision BigInt, mirroring Icon's implicit large
// integers (which the paper's word-count benchmarks rely on); the
// canonical invariant — a BigInt payload never fits int64 — is enforced
// at construction, so small never equals big.
#pragma once

#include <cassert>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "bignum/bigint.hpp"
#include "runtime/rc.hpp"

namespace congen {

class Value;
class ListImpl;
class TableImpl;
class SetImpl;
class ProcImpl;
class RecordImpl;
class CoExpression;  // defined in coexpr/
class Gen;           // defined in kernel/

using ListPtr = Rc<ListImpl>;
using TablePtr = Rc<TableImpl>;
using SetPtr = Rc<SetImpl>;
using ProcPtr = Rc<ProcImpl>;
using RecordPtr = Rc<RecordImpl>;
using CoExprPtr = Rc<CoExpression>;
using GenPtr = std::shared_ptr<Gen>;

/// Discriminator for Value. Order defines the cross-type sort order used
/// by sort() and by table/set key ordering (Icon sorts values of different
/// types by type name; we use a fixed rank).
enum class TypeTag : std::uint8_t {
  Null = 0,
  Integer,   // int64 fast path or BigInt
  Real,
  String,
  List,
  Table,
  Set,
  Record,
  Proc,
  CoExpr,
};

namespace detail {

/// Heap spill for strings longer than the SSO capacity.
class StringBox final : public RcBase {
 public:
  explicit StringBox(std::string s)
      : RcBase(static_cast<std::uint8_t>(TypeTag::String)), s_(std::move(s)) {}
  [[nodiscard]] const std::string& str() const noexcept { return s_; }

 private:
  std::string s_;
};

/// Heap spill for integers outside int64 (always non-canonical-small).
class BigIntBox final : public RcBase {
 public:
  explicit BigIntBox(BigInt v)
      : RcBase(static_cast<std::uint8_t>(TypeTag::Integer)), v_(std::move(v)) {}
  [[nodiscard]] const BigInt& value() const noexcept { return v_; }

 private:
  BigInt v_;
};

}  // namespace detail

/// Dynamically typed Unicon value — 16 bytes, cheap to copy.
class Value {
 public:
  /// Longest string stored inline (bytes 0..13 of the value; byte 14 is
  /// the length, byte 15 the representation tag).
  static constexpr std::size_t kSsoCapacity = 14;

  /// The null value (&null).
  Value() noexcept : aux_(0), rep_(Rep::kNull) { std::memset(raw_, 0, sizeof raw_); }

  Value(const Value& o) noexcept : aux_(o.aux_), rep_(o.rep_) {
    std::memcpy(raw_, o.raw_, sizeof raw_);
    if (isHeapRep(rep_)) heapPtr()->retain();
  }
  Value(Value&& o) noexcept : aux_(o.aux_), rep_(o.rep_) {
    std::memcpy(raw_, o.raw_, sizeof raw_);
    o.rep_ = Rep::kNull;
  }
  Value& operator=(const Value& o) noexcept {
    if (this != &o) {
      if (isHeapRep(o.rep_)) o.heapPtr()->retain();
      if (isHeapRep(rep_)) releaseHeap();
      std::memcpy(raw_, o.raw_, sizeof raw_);
      aux_ = o.aux_;
      rep_ = o.rep_;
    }
    return *this;
  }
  Value& operator=(Value&& o) noexcept {
    if (this != &o) {
      if (isHeapRep(rep_)) releaseHeap();
      std::memcpy(raw_, o.raw_, sizeof raw_);
      aux_ = o.aux_;
      rep_ = o.rep_;
      o.rep_ = Rep::kNull;
    }
    return *this;
  }
  ~Value() {
    if (isHeapRep(rep_)) releaseHeap();
  }

  // -- constructors ---------------------------------------------------
  static Value null() noexcept { return Value{}; }
  static Value integer(std::int64_t v) noexcept {
    Value r;
    r.storeScalar(v);
    r.rep_ = Rep::kInt;
    return r;
  }
  /// Canonicalizing: a BigInt that fits int64 demotes to the inline
  /// representation (small never equals big).
  static Value integer(BigInt v);
  static Value real(double v) noexcept {
    Value r;
    r.storeScalar(v);
    r.rep_ = Rep::kReal;
    return r;
  }
  static Value string(std::string_view s) {
    if (s.size() <= kSsoCapacity) return ssoString(s.data(), s.size());
    return Value(new detail::StringBox(std::string(s)), Rep::kHeapStr);
  }
  static Value string(std::string&& s) {
    if (s.size() <= kSsoCapacity) return ssoString(s.data(), s.size());
    return Value(new detail::StringBox(std::move(s)), Rep::kHeapStr);
  }
  static Value string(const std::string& s) { return string(std::string_view(s)); }
  static Value string(const char* s) { return string(std::string_view(s)); }
  /// One-reserve concatenation (the ops::concat string×string fast
  /// path): each payload is copied exactly once, short results land in
  /// the SSO representation without touching the heap.
  static Value stringConcat(std::string_view a, std::string_view b);
  // The structure factories are templates over the handle's pointee so
  // their bodies (which destroy / detach an Rc) only instantiate at call
  // sites, where the payload classes are complete; the constraint checks
  // the type there. This also admits derived handles (Rc<Pipe> is a
  // co-expression value).
  template <class T>
    requires std::convertible_to<T*, ListImpl*>
  static Value list(Rc<T> l) noexcept { return fromHeap(std::move(l), Rep::kList); }
  template <class T>
    requires std::convertible_to<T*, TableImpl*>
  static Value table(Rc<T> t) noexcept { return fromHeap(std::move(t), Rep::kTable); }
  template <class T>
    requires std::convertible_to<T*, SetImpl*>
  static Value set(Rc<T> s) noexcept { return fromHeap(std::move(s), Rep::kSet); }
  template <class T>
    requires std::convertible_to<T*, RecordImpl*>
  static Value record(Rc<T> r) noexcept { return fromHeap(std::move(r), Rep::kRecord); }
  template <class T>
    requires std::convertible_to<T*, ProcImpl*>
  static Value proc(Rc<T> p) noexcept { return fromHeap(std::move(p), Rep::kProc); }
  template <class T>
    requires std::convertible_to<T*, CoExpression*>
  static Value coexpr(Rc<T> c) noexcept { return fromHeap(std::move(c), Rep::kCoExpr); }

  // -- observers ------------------------------------------------------
  [[nodiscard]] TypeTag tag() const noexcept { return kRepTag[static_cast<std::size_t>(rep_)]; }
  [[nodiscard]] bool isNull() const noexcept { return rep_ == Rep::kNull; }
  [[nodiscard]] bool isInteger() const noexcept {
    return rep_ == Rep::kInt || rep_ == Rep::kBigInt;
  }
  [[nodiscard]] bool isSmallInt() const noexcept { return rep_ == Rep::kInt; }
  [[nodiscard]] bool isReal() const noexcept { return rep_ == Rep::kReal; }
  [[nodiscard]] bool isString() const noexcept {
    return rep_ == Rep::kSso || rep_ == Rep::kHeapStr;
  }
  [[nodiscard]] bool isList() const noexcept { return rep_ == Rep::kList; }
  [[nodiscard]] bool isTable() const noexcept { return rep_ == Rep::kTable; }
  [[nodiscard]] bool isSet() const noexcept { return rep_ == Rep::kSet; }
  [[nodiscard]] bool isRecord() const noexcept { return rep_ == Rep::kRecord; }
  [[nodiscard]] bool isProc() const noexcept { return rep_ == Rep::kProc; }
  [[nodiscard]] bool isCoExpr() const noexcept { return rep_ == Rep::kCoExpr; }

  /// Unchecked accessors; call only after the corresponding is*() test.
  [[nodiscard]] std::int64_t smallInt() const noexcept {
    assert(rep_ == Rep::kInt);
    return loadScalar<std::int64_t>();
  }
  [[nodiscard]] const BigInt& bigInt() const noexcept {
    assert(rep_ == Rep::kBigInt);
    return static_cast<const detail::BigIntBox*>(heapPtr())->value();
  }
  [[nodiscard]] double real() const noexcept {
    assert(rep_ == Rep::kReal);
    return loadScalar<double>();
  }
  /// String payload as a view. For SSO values the view points INTO this
  /// Value: it is invalidated by assigning to / moving from / destroying
  /// the Value it came from — never cache it across such an operation
  /// (and never call str() on a temporary you let die).
  [[nodiscard]] std::string_view str() const noexcept {
    if (rep_ == Rep::kSso) return {reinterpret_cast<const char*>(raw_), aux_};
    assert(rep_ == Rep::kHeapStr);
    return static_cast<const detail::StringBox*>(heapPtr())->str();
  }
  [[nodiscard]] const ListPtr& list() const noexcept { return asRc<ListImpl>(Rep::kList); }
  [[nodiscard]] const TablePtr& table() const noexcept { return asRc<TableImpl>(Rep::kTable); }
  [[nodiscard]] const SetPtr& set() const noexcept { return asRc<SetImpl>(Rep::kSet); }
  [[nodiscard]] const RecordPtr& record() const noexcept { return asRc<RecordImpl>(Rep::kRecord); }
  [[nodiscard]] const ProcPtr& proc() const noexcept { return asRc<ProcImpl>(Rep::kProc); }
  [[nodiscard]] const CoExprPtr& coExpr() const noexcept { return asRc<CoExpression>(Rep::kCoExpr); }

  // -- coercion (Icon run-time errors 101/102/103 on failure) ---------
  /// Coerce to integer (strings parsed, reals accepted if integral).
  /// Returns nullopt if not coercible (caller raises or fails).
  [[nodiscard]] std::optional<Value> toIntegerValue() const;
  /// Coerce to int64; errors if out of range or not coercible.
  [[nodiscard]] std::int64_t requireInt64(std::string_view what = "value") const;
  /// Coerce to BigInt; errors if not coercible.
  [[nodiscard]] BigInt requireBigInt(std::string_view what = "value") const;
  /// Coerce to a numeric Value (integer or real), as Icon's numeric().
  [[nodiscard]] std::optional<Value> toNumeric() const;
  /// Coerce to double; errors if not numeric.
  [[nodiscard]] double requireReal(std::string_view what = "value") const;
  /// Coerce to string (numbers formatted, strings as-is); errors otherwise.
  [[nodiscard]] std::string requireString(std::string_view what = "value") const;

  // -- Icon semantics --------------------------------------------------
  /// Icon type() name: "null", "integer", "real", "string", "list",
  /// "table", "set", "procedure", "co-expression".
  [[nodiscard]] std::string typeName() const;
  /// Icon image(): a human-readable, type-revealing rendering.
  [[nodiscard]] std::string image() const;
  /// Value rendering for write(): strings unquoted, numbers formatted.
  [[nodiscard]] std::string toDisplayString() const;

  /// Icon === equivalence: numbers by value within the same type class,
  /// strings by content, structures by identity.
  [[nodiscard]] bool equals(const Value& other) const;
  /// Total order across all values: type rank, then value (structures by
  /// address). Basis for sort() and ordered containers.
  [[nodiscard]] int compare(const Value& other) const;
  /// Hash consistent with equals().
  [[nodiscard]] std::size_t hash() const;

  /// Icon *x size: string length, list/table/set size; errors otherwise.
  [[nodiscard]] std::int64_t size() const;

 private:
  /// Physical representation. Inline reps first; isHeapRep is one
  /// compare. The heap pointer is always the RcBase upcast of the
  /// payload object (address-preserving: RcBase is every payload's
  /// polymorphic primary base — see rc.hpp).
  enum class Rep : std::uint8_t {
    kNull = 0,
    kInt,
    kReal,
    kSso,
    kHeapStr,  // first heap rep
    kBigInt,
    kList,
    kTable,
    kSet,
    kRecord,
    kProc,
    kCoExpr,
  };
  static constexpr std::size_t kRepCount = 12;
  static constexpr TypeTag kRepTag[kRepCount] = {
      TypeTag::Null, TypeTag::Integer, TypeTag::Real,   TypeTag::String,
      TypeTag::String, TypeTag::Integer, TypeTag::List, TypeTag::Table,
      TypeTag::Set,  TypeTag::Record,  TypeTag::Proc,   TypeTag::CoExpr,
  };
  static constexpr bool isHeapRep(Rep r) noexcept { return r >= Rep::kHeapStr; }

  /// Adopt a heap payload (refcount already 1; null is a program error).
  Value(RcBase* p, Rep rep) noexcept : aux_(0), rep_(rep) {
    assert(p != nullptr);
    std::memcpy(raw_, &p, sizeof p);
    std::memset(raw_ + sizeof p, 0, sizeof raw_ - sizeof p);
  }

  /// Adopt a payload handle. The payload types are incomplete here, so
  /// the upcast is spelled reinterpret_cast; it is address-preserving by
  /// the RcBase-is-primary-base contract (static_asserted in value.cpp
  /// where the types are complete).
  template <class T>
  static Value fromHeap(Rc<T> p, Rep rep) noexcept {
    return Value(reinterpret_cast<RcBase*>(p.detach()), rep);
  }

  static Value ssoString(const char* data, std::size_t n) noexcept {
    Value r;
    if (n != 0) std::memcpy(r.raw_, data, n);
    r.aux_ = static_cast<std::uint8_t>(n);
    r.rep_ = Rep::kSso;
    return r;
  }

  template <class T>
  void storeScalar(T v) noexcept {
    static_assert(sizeof(T) <= sizeof(raw_));
    std::memcpy(raw_, &v, sizeof v);
    std::memset(raw_ + sizeof v, 0, sizeof raw_ - sizeof v);
  }
  template <class T>
  [[nodiscard]] T loadScalar() const noexcept {
    T v;
    std::memcpy(&v, raw_, sizeof v);
    return v;
  }
  [[nodiscard]] RcBase* heapPtr() const noexcept { return loadScalar<RcBase*>(); }

  /// Reinterpret the stored pointer bytes as the typed owning handle.
  /// Sound because Rc<T> is exactly one T* wide and the stored RcBase*
  /// is address-identical to the payload's T* (primary base at offset
  /// zero); the returned reference borrows this Value's ownership.
  template <class T>
  [[nodiscard]] const Rc<T>& asRc(Rep expect) const noexcept {
    static_assert(sizeof(Rc<T>) == sizeof(T*));
    assert(rep_ == expect);
    (void)expect;
    return *reinterpret_cast<const Rc<T>*>(raw_);
  }

  /// Drop this Value's reference to its heap payload. Inline: this sits
  /// on every heap-Value destroy/overwrite path, and the call overhead
  /// showed next to the atomic itself in backtracking profiles. The
  /// virtual dtor reaches the payload class on the last release.
  void releaseHeap() noexcept {
    RcBase* p = heapPtr();
    if (p->release()) delete p;
  }

  alignas(8) unsigned char raw_[14];
  std::uint8_t aux_;  // SSO length (0 otherwise)
  Rep rep_;
};

static_assert(sizeof(Value) == 16, "Value must stay a 16-byte tagged union");
static_assert(alignof(Value) == 8);

/// Hash/equality functors so Values can key unordered containers.
struct ValueHash {
  std::size_t operator()(const Value& v) const { return v.hash(); }
};
struct ValueEq {
  bool operator()(const Value& a, const Value& b) const { return a.equals(b); }
};

// -- arithmetic & comparison (goal-directed flavours) ------------------
//
// Arithmetic raises IconError on non-numeric operands. Comparisons follow
// Icon: they *fail* (nullopt) rather than produce false, and on success
// yield the right operand.

namespace ops {

Value add(const Value& a, const Value& b);
Value sub(const Value& a, const Value& b);
Value mul(const Value& a, const Value& b);
Value div(const Value& a, const Value& b);
Value mod(const Value& a, const Value& b);
Value power(const Value& a, const Value& b);
Value negate(const Value& a);

/// Numeric comparisons: x < y yields y, or fails.
std::optional<Value> numLT(const Value& a, const Value& b);
std::optional<Value> numLE(const Value& a, const Value& b);
std::optional<Value> numGT(const Value& a, const Value& b);
std::optional<Value> numGE(const Value& a, const Value& b);
std::optional<Value> numEQ(const Value& a, const Value& b);
std::optional<Value> numNE(const Value& a, const Value& b);

/// Value equivalence (===): yields b or fails.
std::optional<Value> valEQ(const Value& a, const Value& b);
std::optional<Value> valNE(const Value& a, const Value& b);

/// String concatenation (||).
Value concat(const Value& a, const Value& b);
/// List concatenation (|||): a new list with the elements of both.
Value listConcat(const Value& a, const Value& b);

}  // namespace ops

}  // namespace congen

// governor_hooks.hpp — the resource governor's hot-path charge points.
//
// This header is deliberately tiny and dependency-free (it sits below
// value.hpp/rc.hpp/arena.hpp in the include graph): the kernel's hottest
// code — Gen::next, the arena's operator-new fall-through, RcBase payload
// construction — inlines these hooks, so they must follow the repo-wide
// one-relaxed-load-when-disabled contract. Each hook is a single relaxed
// load of a process-global "is any governor enforcing this budget" flag;
// the [[unlikely]] slow path lives out of line in governor.cpp and does
// the thread-local batching, limit checks, and typed errQuotaExceeded
// throws. See governor.hpp for the ResourceGovernor itself.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

namespace congen::governor {

class ResourceGovernor;

namespace detail {

// Process-global enforcement flags, maintained by the live-governor
// registry (governor.cpp) whenever a governor is created, destroyed,
// reconfigured, or terminated:
//  - g_stepActive:  some governor enforces a fuel limit (or has been
//    terminated by the Supervisor — termination rides the fuel path so
//    every governed thread hits a throw point within one batch).
//  - g_heapActive:  some governor enforces a heap-byte limit.
//  - g_depthActive: some governor enforces a recursion/suspension depth.
//  - g_anyActive:   some governor exists at all (gates the cheap RAII
//    charges on co-expression/pipe construction).
extern std::atomic<bool> g_stepActive;
extern std::atomic<bool> g_heapActive;
extern std::atomic<bool> g_depthActive;
extern std::atomic<bool> g_anyActive;

void chargeStepSlow();                           // may throw IconError 810/816
void chargeHeapSlow(std::size_t bytes);          // may throw IconError 811/816
void creditHeapSlow(std::size_t bytes) noexcept;
void enterDepthSlow();                           // may throw IconError 813/816
void leaveDepthSlow() noexcept;

}  // namespace detail

/// One evaluation step (a Gen::next on the tree spine; the VM charges
/// dispatches in bulk via ResourceGovernor::chargeSteps). Disabled cost:
/// one relaxed load.
inline void onStep() {
  if (detail::g_stepActive.load(std::memory_order_relaxed)) [[unlikely]] {
    detail::chargeStepSlow();
  }
}

/// True when some governor enforces fuel (the VM uses this to decide
/// whether a dispatch-batch sync must charge).
[[nodiscard]] inline bool stepActive() noexcept {
  return detail::g_stepActive.load(std::memory_order_relaxed);
}

/// Heap bytes requested from / returned to the system allocator. Hooked
/// at the arena's operator-new fall-through and RcBase::operator
/// new/delete — NOT at the arena's bin hit/park fast paths, which stay
/// branch-free (a parked block remains "reserved", matching the
/// governor's heap_reserved semantics). Disabled cost: one relaxed load.
inline void onHeapAlloc(std::size_t bytes) {
  if (detail::g_heapActive.load(std::memory_order_relaxed)) [[unlikely]] {
    detail::chargeHeapSlow(bytes);
  }
}
inline void onHeapFree(std::size_t bytes) noexcept {
  if (detail::g_heapActive.load(std::memory_order_relaxed)) [[unlikely]] {
    detail::creditHeapSlow(bytes);
  }
}

/// RAII recursion/suspension-depth charge for BodyRootGen::doNext: one
/// procedure-body activation on the C++ stack per live guard. Counted
/// per thread (each thread has its own stack), charged only while some
/// governor enforces a depth limit.
class DepthGuard {
 public:
  DepthGuard() {
    if (detail::g_depthActive.load(std::memory_order_relaxed)) [[unlikely]] {
      detail::enterDepthSlow();
      armed_ = true;
    }
  }
  ~DepthGuard() {
    if (armed_) [[unlikely]] detail::leaveDepthSlow();
  }
  DepthGuard(const DepthGuard&) = delete;
  DepthGuard& operator=(const DepthGuard&) = delete;

 private:
  bool armed_ = false;
};

/// RAII live-count charge held as a member by CoExpression (and, for the
/// pipe budget, by Pipe). Construction charges the ambient governor's
/// co-expression/pipe budget (throwing errQuotaExceeded on exhaustion,
/// BEFORE the expensive environment copy / producer submit); destruction
/// credits it. The shared_ptr keeps the governor alive as long as the
/// charge is outstanding, so credits from another thread or a later
/// epoch stay safe. Disabled cost: one relaxed load, no refcount op.
class CoexprCharge {
 public:
  CoexprCharge() {
    if (detail::g_anyActive.load(std::memory_order_relaxed)) [[unlikely]] charge();
  }
  ~CoexprCharge() {
    if (gov_) [[unlikely]] credit();
  }
  CoexprCharge(const CoexprCharge&) = delete;
  CoexprCharge& operator=(const CoexprCharge&) = delete;

 private:
  void charge();           // governor.cpp; may throw IconError 812
  void credit() noexcept;  // governor.cpp
  std::shared_ptr<ResourceGovernor> gov_;
};

class PipeCharge {
 public:
  PipeCharge() {
    if (detail::g_anyActive.load(std::memory_order_relaxed)) [[unlikely]] charge();
  }
  ~PipeCharge() {
    if (gov_) [[unlikely]] credit();
  }
  PipeCharge(const PipeCharge&) = delete;
  PipeCharge& operator=(const PipeCharge&) = delete;

 private:
  void charge();           // governor.cpp; may throw IconError 812
  void credit() noexcept;  // governor.cpp
  std::shared_ptr<ResourceGovernor> gov_;
};

}  // namespace congen::governor

#include "runtime/collections.hpp"

#include <algorithm>

namespace congen {

std::optional<std::size_t> ListImpl::resolveIndex(std::int64_t i) const noexcept {
  const std::int64_t n = size();
  // Icon: positions 1..n from the left; 0 and negatives count from the
  // right (x[0] is the last element's right neighbour; for element access
  // we accept -1..-n as the last..first element and reject 0).
  if (i >= 1 && i <= n) return static_cast<std::size_t>(i - 1);
  if (i < 0 && -i <= n) return static_cast<std::size_t>(n + i);
  return std::nullopt;
}

std::optional<Value> ListImpl::at(std::int64_t i) const {
  const auto idx = resolveIndex(i);
  if (!idx) return std::nullopt;
  return elems_[*idx];
}

bool ListImpl::assign(std::int64_t i, Value v) {
  const auto idx = resolveIndex(i);
  if (!idx) return false;
  elems_[*idx] = std::move(v);
  return true;
}

std::optional<Value> ListImpl::get() {
  if (elems_.empty()) return std::nullopt;
  Value v = std::move(elems_.front());
  elems_.pop_front();
  return v;
}

std::optional<Value> ListImpl::pull() {
  if (elems_.empty()) return std::nullopt;
  Value v = std::move(elems_.back());
  elems_.pop_back();
  return v;
}

Value TableImpl::lookup(const Value& key) const {
  const auto it = map_.find(key);
  return it == map_.end() ? default_ : it->second;
}

std::vector<Value> TableImpl::sortedKeys() const {
  std::vector<Value> keys;
  keys.reserve(map_.size());
  for (const auto& [k, v] : map_) keys.push_back(k);
  std::sort(keys.begin(), keys.end(),
            [](const Value& a, const Value& b) { return a.compare(b) < 0; });
  return keys;
}

std::vector<Value> SetImpl::sortedMembers() const {
  std::vector<Value> members(set_.begin(), set_.end());
  std::sort(members.begin(), members.end(),
            [](const Value& a, const Value& b) { return a.compare(b) < 0; });
  return members;
}

}  // namespace congen

// var.hpp — reified variables (Icon reference semantics).
//
// In Icon, expressions can yield *variables* that may subsequently be
// assigned (x := 1 evaluates x to a variable, not a value). The paper's
// transformation reifies every variable as a property with get and set
// closures ("IconVar", Section V.C) so embedded code can pass updatable
// references through flattened generator products. Var is that property.
#pragma once

#include <functional>
#include <memory>
#include <utility>

#include "runtime/collections.hpp"
#include "runtime/error.hpp"
#include "runtime/record.hpp"
#include "runtime/value.hpp"

namespace congen {

/// An assignable location: the IconVar of the paper.
class Var {
 public:
  virtual ~Var() = default;
  [[nodiscard]] virtual Value get() const = 0;
  virtual void set(Value v) = 0;

  /// Non-null when this variable is a plain storage cell (CellVar):
  /// points at the cell's Value, stable for the Var's lifetime. Hot
  /// interpreter paths read/write through it directly — a load and a
  /// branch instead of two virtual dispatches per backtracking step.
  /// Trapped/computed variables leave it null and take the virtual path.
  [[nodiscard]] Value* cell() const noexcept { return cell_; }

 protected:
  Value* cell_ = nullptr;
};

using VarPtr = std::shared_ptr<Var>;

/// A plain storage cell — locals, parameters, temporaries.
class CellVar final : public Var {
 public:
  CellVar() { cell_ = &value_; }
  explicit CellVar(Value v) : value_(std::move(v)) { cell_ = &value_; }

  [[nodiscard]] Value get() const override { return value_; }
  void set(Value v) override { value_ = std::move(v); }

  static VarPtr create(Value v = Value::null()) { return std::make_shared<CellVar>(std::move(v)); }

 private:
  Value value_;
};

/// A computed location defined by get/set closures — the exact analogue of
/// `new IconVar(()->x, (rhs)->x=rhs)` from the paper (Section V.C). Used to
/// expose host-language fields in reified form.
class ComputedVar final : public Var {
 public:
  ComputedVar(std::function<Value()> getter, std::function<void(Value)> setter)
      : getter_(std::move(getter)), setter_(std::move(setter)) {}

  [[nodiscard]] Value get() const override { return getter_(); }
  void set(Value v) override {
    if (!setter_) throw errInvalidValue("assignment to read-only variable");
    setter_(std::move(v));
  }

  static VarPtr create(std::function<Value()> getter, std::function<void(Value)> setter = nullptr) {
    return std::make_shared<ComputedVar>(std::move(getter), std::move(setter));
  }

 private:
  std::function<Value()> getter_;
  std::function<void(Value)> setter_;
};

/// Trapped variable for a list element: l[i] as an assignable location.
class ListElemVar final : public Var {
 public:
  ListElemVar(ListPtr list, std::int64_t index) : list_(std::move(list)), index_(index) {}

  [[nodiscard]] Value get() const override {
    auto v = list_->at(index_);
    if (!v) throw errInvalidValue("list subscript out of range");
    return *v;
  }
  void set(Value v) override {
    if (!list_->assign(index_, std::move(v))) {
      throw errInvalidValue("list subscript out of range");
    }
  }

  static VarPtr create(ListPtr list, std::int64_t index) {
    return std::make_shared<ListElemVar>(std::move(list), index);
  }

 private:
  ListPtr list_;
  std::int64_t index_;
};

/// Trapped variable for a record field: r.f (also r[i] by position).
class RecordFieldVar final : public Var {
 public:
  RecordFieldVar(RecordPtr rec, std::string field) : rec_(std::move(rec)), field_(std::move(field)) {}

  [[nodiscard]] Value get() const override {
    auto v = rec_->field(field_);
    if (!v) throw IconError(207, "no such field: " + field_);
    return *v;
  }
  void set(Value v) override {
    if (!rec_->assignField(field_, std::move(v))) {
      throw IconError(207, "no such field: " + field_);
    }
  }

  static VarPtr create(RecordPtr rec, std::string field) {
    return std::make_shared<RecordFieldVar>(std::move(rec), std::move(field));
  }

 private:
  RecordPtr rec_;
  std::string field_;
};

/// Trapped variable for a record slot by position.
class RecordElemVar final : public Var {
 public:
  RecordElemVar(RecordPtr rec, std::int64_t index) : rec_(std::move(rec)), index_(index) {}

  [[nodiscard]] Value get() const override {
    auto v = rec_->at(index_);
    if (!v) throw errInvalidValue("record subscript out of range");
    return *v;
  }
  void set(Value v) override {
    if (!rec_->assign(index_, std::move(v))) {
      throw errInvalidValue("record subscript out of range");
    }
  }

  static VarPtr create(RecordPtr rec, std::int64_t index) {
    return std::make_shared<RecordElemVar>(std::move(rec), index);
  }

 private:
  RecordPtr rec_;
  std::int64_t index_;
};

/// Trapped variable for a table element: t[k].
class TableElemVar final : public Var {
 public:
  TableElemVar(TablePtr table, Value key) : table_(std::move(table)), key_(std::move(key)) {}

  [[nodiscard]] Value get() const override { return table_->lookup(key_); }
  void set(Value v) override { table_->insert(key_, std::move(v)); }

  static VarPtr create(TablePtr table, Value key) {
    return std::make_shared<TableElemVar>(std::move(table), std::move(key));
  }

 private:
  TablePtr table_;
  Value key_;
};

}  // namespace congen

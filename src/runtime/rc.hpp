// rc.hpp — intrusive refcounting for Value heap payloads.
//
// Every heap-allocated Value payload (long string, BigInt, list, table,
// set, record, procedure, co-expression) derives from RcBase, so a Value
// holds exactly one raw pointer and copy/destroy is a tag test plus one
// atomic refcount op — no shared_ptr control block, no separate count
// allocation, and the count shares a cache line with the payload it
// guards. Rc<T> is the owning handle used outside Value; it mirrors the
// shared_ptr surface the codebase already uses (get / -> / * / bool /
// reset / use_count) so payload-passing call sites keep compiling.
//
// RcBase MUST be the first base of every payload class: Value stores the
// RcBase* upcast of the payload pointer and reinterprets its storage as
// an Rc<T> on access, which requires the upcast to be address-preserving.
// RcBase is polymorphic precisely to pin that layout (the Itanium ABI
// places a polymorphic primary base at offset zero of every derived
// class, dynamic or not) and to make the final release a plain
// `delete` — the refcount ops themselves never dispatch virtually.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <utility>

#include "concur/fault_injection.hpp"
#include "runtime/error.hpp"
#include "runtime/governor_hooks.hpp"

namespace congen {

/// Intrusive refcount header. `kind` carries the owner's TypeTag (as a
/// raw byte — value.hpp defines the enum) for asserts and debuggers;
/// the hot paths dispatch on the Value's own inline tag instead.
class RcBase {
 public:
  RcBase(const RcBase&) = delete;
  RcBase& operator=(const RcBase&) = delete;
  virtual ~RcBase() = default;

  /// Count value marking an immortal object (see makeImmortal).
  static constexpr std::uint32_t kImmortalBit = 1u << 30;

  /// Every payload allocation funnels through here (class-level operator
  /// new is inherited), making this the governor's second heap charge
  /// point — long strings, lists, tables, co-expression environments all
  /// derive from RcBase. Ungoverned cost: one relaxed load. Failure — a
  /// real bad_alloc or an injected RcAlloc fault — becomes the catchable
  /// Icon error 305 with the charge credited back.
  static void* operator new(std::size_t bytes) {
    governor::onHeapAlloc(bytes);  // may throw 811/816; nothing charged then
    try {
      CONGEN_FAULT_POINT(RcAlloc);
      return ::operator new(bytes);
    } catch (const testing::InjectedFault&) {
    } catch (const std::bad_alloc&) {
    }
    governor::onHeapFree(bytes);
    throw errOutOfMemory("value payload");
  }
  static void operator delete(void* p, std::size_t bytes) noexcept {
    ::operator delete(p);
    governor::onHeapFree(bytes);
  }

  /// Bump the refcount. Relaxed: acquiring a new reference needs no
  /// ordering — the holder already reaches the object through a pointer
  /// that was published with the necessary synchronization. Immortal
  /// objects skip the RMW entirely: the plain load reads the same cache
  /// line the RMW would own, so the check is near-free for mortal
  /// objects, and copying an interned constant (a builtin procedure on
  /// every compiled call site) costs no lock-prefixed instruction.
  void retain() const noexcept {
    if ((refs_.load(std::memory_order_relaxed) & kImmortalBit) != 0) return;
    refs_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Drop one reference; true when this was the last one (caller
  /// deletes). Acq_rel on the decrement: release publishes this
  /// thread's payload writes to whichever thread ends up deleting, and
  /// acquire makes every other thread's (release-sequenced) writes
  /// visible before the delete. The classic release-decrement +
  /// acquire-fence split is equivalent but TSan does not model
  /// standalone fences and reports the teardown as a race; the RMW is
  /// a full barrier on x86 either way, so acq_rel costs nothing.
  /// Immortal objects are never deleted and never reach the decrement.
  [[nodiscard]] bool release() const noexcept {
    if ((refs_.load(std::memory_order_relaxed) & kImmortalBit) != 0) return false;
    return refs_.fetch_sub(1, std::memory_order_acq_rel) == 1;
  }

  /// Pin this object for the life of the process: refcount ops become
  /// no-ops and the final release never fires. Only for objects owned by
  /// a never-destroyed registry (the builtin table) — the owner must
  /// stay reachable so leak checkers see the payload as live, and the
  /// call must happen before the object is shared across threads.
  void makeImmortal() const noexcept {
    refs_.store(kImmortalBit, std::memory_order_relaxed);
  }
  [[nodiscard]] bool isImmortal() const noexcept {
    return (refs_.load(std::memory_order_relaxed) & kImmortalBit) != 0;
  }

  [[nodiscard]] std::uint32_t refCount() const noexcept {
    return refs_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint8_t rcKind() const noexcept { return kind_; }

 protected:
  explicit RcBase(std::uint8_t kind) noexcept : kind_(kind) {}

 private:
  mutable std::atomic<std::uint32_t> refs_{1};
  std::uint8_t kind_;
};

/// Owning intrusive pointer. Single raw pointer wide; copying bumps the
/// payload's embedded count. Constructing from a raw T* retains (safe
/// for intrusive counts — there is no control block to duplicate), which
/// lets call sites pass `value.list()` wherever a ListPtr is expected.
template <class T>
class Rc {
 public:
  Rc() noexcept = default;
  Rc(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)
  Rc(T* p) noexcept : p_(p) {     // NOLINT(google-explicit-constructor)
    if (p_ != nullptr) p_->retain();
  }
  /// Take ownership of a fresh object (refcount already 1) without a bump.
  static Rc adopt(T* p) noexcept {
    Rc r;
    r.p_ = p;
    return r;
  }

  Rc(const Rc& o) noexcept : p_(o.p_) {
    if (p_ != nullptr) p_->retain();
  }
  Rc(Rc&& o) noexcept : p_(std::exchange(o.p_, nullptr)) {}
  template <class U>
    requires std::convertible_to<U*, T*>
  Rc(Rc<U> o) noexcept : p_(o.detach()) {}  // NOLINT(google-explicit-constructor)

  Rc& operator=(const Rc& o) noexcept {
    if (o.p_ != nullptr) o.p_->retain();
    T* old = std::exchange(p_, o.p_);
    if (old != nullptr && old->release()) delete old;
    return *this;
  }
  Rc& operator=(Rc&& o) noexcept {
    T* old = std::exchange(p_, std::exchange(o.p_, nullptr));
    if (old != nullptr && old != p_ && old->release()) delete old;
    return *this;
  }
  Rc& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }
  ~Rc() { reset(); }

  void reset() noexcept {
    if (p_ != nullptr) {
      if (p_->release()) delete p_;
      p_ = nullptr;
    }
  }
  /// Surrender the raw pointer without releasing (ownership moves out).
  [[nodiscard]] T* detach() noexcept { return std::exchange(p_, nullptr); }

  [[nodiscard]] T* get() const noexcept { return p_; }
  [[nodiscard]] T* operator->() const noexcept { return p_; }
  [[nodiscard]] T& operator*() const noexcept { return *p_; }
  explicit operator bool() const noexcept { return p_ != nullptr; }
  [[nodiscard]] long use_count() const noexcept {
    return p_ != nullptr ? static_cast<long>(p_->refCount()) : 0;
  }

  friend bool operator==(const Rc& a, const Rc& b) noexcept { return a.p_ == b.p_; }
  friend bool operator!=(const Rc& a, const Rc& b) noexcept { return a.p_ != b.p_; }
  friend bool operator==(const Rc& a, std::nullptr_t) noexcept { return a.p_ == nullptr; }
  friend bool operator!=(const Rc& a, std::nullptr_t) noexcept { return a.p_ != nullptr; }

 private:
  T* p_ = nullptr;
};

/// static_pointer_cast analogue (ownership transfers; no refcount ops).
template <class T, class U>
[[nodiscard]] Rc<T> rcStaticCast(Rc<U> o) noexcept {
  return Rc<T>::adopt(static_cast<T*>(o.detach()));
}

/// make_shared analogue: one allocation, refcount starts at 1.
template <class T, class... Args>
[[nodiscard]] Rc<T> makeRc(Args&&... args) {
  return Rc<T>::adopt(new T(std::forward<Args>(args)...));
}

}  // namespace congen

// governor.hpp — per-interpreter resource quotas, runaway containment,
// and graceful degradation.
//
// ROADMAP item 3 (congen-serve: isolated interpreters with per-tenant
// quotas) needs the runtime — not convention — to enforce a session's
// resource envelope: every `|>` is a thread, every `|<>` copies an
// environment, and a hostile or buggy script must exhaust *its* budget,
// not the process. The ResourceGovernor holds those hard budgets:
//
//  - heap bytes     charged at the arena's operator-new fall-through and
//                   RcBase payload construction (governor_hooks.hpp),
//                   batched through thread-local reservations;
//  - fuel           a unified evaluation-step counter charged by both
//                   the tree walker's next() spine and the VM dispatch
//                   loop (replacing the VM-only vmStepLimit);
//  - pipes / co-expressions
//                   live-object counts charged at construction (a pipe
//                   also counts as a co-expression: it is one);
//  - pipe depth     a clamp on per-pipe queue capacity (graceful
//                   degradation: oversized requests shrink, no error);
//  - depth          recursion/suspension depth (live BodyRootGen
//                   activations per thread).
//
// Exhaustion raises a *catchable* typed Icon error (the 81x
// errQuotaExceeded family in error.hpp) from the shared kernel nodes,
// so tree, VM, and emitted backends trip identically and `&error`
// conversion applies as for any run-time error.
//
// Containment beyond quotas: every governor owns a StopSource. Pipes
// created during governed drives link under it (via the ambient
// CancelScope the interpreter installs), so the Supervisor watchdog can
// escalate an unresponsive session — soft-cancel at the soft deadline,
// then diagnostics + terminate() at the hard one. terminate() flips the
// process-wide fuel flag, so every thread still driving the session
// throws errSessionTerminated at its next charge point: a cooperative
// hard teardown that unwinds through destructors and keeps the queue
// conservation invariants exact.
//
// A process-level Admission gate sheds new governed sessions with a
// typed refusal (815) once aggregate committed budgets are reached.
//
// Accounting identity is thread-local (ScopedGovernor installs a
// governor for the current thread; pipe producers capture and reinstall
// the creator's). All hot-path charges batch through thread-local
// pending counters, so a budget can be overrun by at most one batch per
// thread before it trips — documented in INTERNALS §15.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "concur/cancel.hpp"
#include "runtime/governor_hooks.hpp"

namespace congen::governor {

/// Hard budgets; 0 = unlimited.
struct Limits {
  std::uint64_t maxHeapBytes = 0;  ///< live bytes reserved from the system
  std::uint64_t maxFuel = 0;       ///< evaluation steps (tree next() / VM dispatches)
  std::uint64_t maxPipes = 0;      ///< live |> pipes
  std::uint64_t maxCoexprs = 0;    ///< live co-expressions (pipes included)
  std::uint64_t maxPipeDepth = 0;  ///< clamp on per-pipe queue capacity
  std::uint64_t maxDepth = 0;      ///< live procedure-body activations per thread

  [[nodiscard]] bool any() const noexcept {
    return maxHeapBytes != 0 || maxFuel != 0 || maxPipes != 0 || maxCoexprs != 0 ||
           maxPipeDepth != 0 || maxDepth != 0;
  }
};

/// Budget selector for setLimit() / the setquota() builtin.
enum class Budget : std::uint8_t { Fuel, Heap, Pipes, Coexprs, PipeDepth, Depth };

/// Point-in-time accounting snapshot (quota() builtin, obs collector).
struct Usage {
  std::uint64_t fuelSpent = 0;     ///< steps charged while fuel governance was active
  std::uint64_t heapReserved = 0;  ///< live bytes currently charged
  std::uint64_t livePipes = 0;
  std::uint64_t liveCoexprs = 0;
  std::uint64_t quotaTrips = 0;    ///< errQuotaExceeded raises from this governor
};

class ResourceGovernor : public std::enable_shared_from_this<ResourceGovernor> {
 public:
  /// Create and register a governor. Passes the process Admission gate
  /// first — throws errAdmissionRefused (815) when aggregate committed
  /// budgets are exhausted (the "shed" path).
  [[nodiscard]] static std::shared_ptr<ResourceGovernor> create(const Limits& limits);
  ~ResourceGovernor();
  ResourceGovernor(const ResourceGovernor&) = delete;
  ResourceGovernor& operator=(const ResourceGovernor&) = delete;

  [[nodiscard]] Limits limits() const;
  /// HOST-side budget update (embedder code, tests, congen-run): moves
  /// the host baseline and the effective limit together, unrestricted.
  /// Setting Fuel also restarts the fuel accounting epoch (spent resets
  /// to 0) — a fresh budget, not the remainder of an old one. Live
  /// counts (heap/pipes/coexprs) are NOT reset — their credits must
  /// balance.
  void setLimit(Budget budget, std::uint64_t value);
  /// SCRIPT-side budget update (the setquota() builtin). A session can
  /// tighten its containment, never loosen it: the request combines
  /// with the host baseline — 0 restores the host value (which is
  /// "unlimited" only when the host never set one, e.g. the lazily
  /// created thread-default governor), anything else clamps to it. The
  /// fuel epoch restarts only when the fuel budget is script-owned
  /// (host baseline 0); under a host fuel limit neither the limit nor
  /// the spent counter can be refreshed from inside the session.
  /// Returns the effective limit after the update.
  std::uint64_t setScriptLimit(Budget budget, std::uint64_t value);

  [[nodiscard]] Usage usage() const noexcept;
  [[nodiscard]] bool terminated() const noexcept {
    return terminated_.load(std::memory_order_relaxed);
  }

  /// Bulk fuel charge (the VM's dispatch-batch sync; the tree path goes
  /// through the thread-local batcher in governor.cpp). Throws 810 when
  /// the budget is exhausted, 816 when the session was terminated.
  void chargeSteps(std::uint64_t n);

  /// Signed heap adjustment of `delta` net bytes, of which `newBytes`
  /// belong to an allocation that has NOT happened yet — on a trip those
  /// are backed out (the allocation is abandoned by the throw) while the
  /// rest stays charged. Credits clamp at zero.
  void adjustHeap(std::int64_t delta, std::uint64_t newBytes);

  void chargeCoexpr();           // throws 812
  void creditCoexpr() noexcept;
  void chargePipe();             // throws 812 (message says pipes)
  void creditPipe() noexcept;
  [[nodiscard]] std::size_t clampPipeCapacity(std::size_t capacity) const noexcept;
  [[nodiscard]] std::uint64_t depthLimit() const noexcept {
    return depthLimit_.load(std::memory_order_relaxed);
  }

  /// The session's cancellation root. The interpreter makes it ambient
  /// during governed drives so pipes created by the session link under
  /// it; requestSoftStop() is the Supervisor's first escalation rung.
  [[nodiscard]] CancelToken stopToken() const noexcept { return source_.token(); }
  void requestSoftStop() noexcept;

  /// Hard teardown: marks the session terminated and flips the global
  /// fuel flag so every thread still evaluating under this governor
  /// throws errSessionTerminated (816) at its next charge point. Also
  /// requests stop, unblocking producers parked in queue waits.
  void terminate() noexcept;

 private:
  explicit ResourceGovernor(const Limits& limits);
  void noteTrip() noexcept;
  [[noreturn]] void throwTerminated();

  friend void detail::chargeStepSlow();
  friend void detail::chargeHeapSlow(std::size_t);
  friend void detail::creditHeapSlow(std::size_t) noexcept;
  friend void detail::enterDepthSlow();
  friend class CoexprCharge;
  friend class PipeCharge;

  [[nodiscard]] std::atomic<std::uint64_t>& limitCell(Budget budget) noexcept;

  // What create() passed the Admission gate; the destructor releases
  // exactly this, however the limits moved afterwards.
  const Limits admitted_;
  // The host baseline: what create()/setLimit() imposed, the ceiling a
  // script-side setScriptLimit() can never exceed. Guarded by limitMu_
  // (limit updates are cold; charge paths never read it).
  mutable std::mutex limitMu_;
  Limits hostLimits_;

  // Effective limits are lock-free reads on charge paths (setquota may
  // race a running script; relaxed is fine — a charge sees the old or
  // the new limit, both valid).
  std::atomic<std::uint64_t> fuelLimit_;
  std::atomic<std::uint64_t> heapLimit_;
  std::atomic<std::uint64_t> pipeLimit_;
  std::atomic<std::uint64_t> coexprLimit_;
  std::atomic<std::uint64_t> pipeDepthLimit_;
  std::atomic<std::uint64_t> depthLimit_;

  std::atomic<std::uint64_t> fuelSpent_{0};
  std::atomic<std::int64_t> heapReserved_{0};
  std::atomic<std::uint64_t> livePipes_{0};
  std::atomic<std::uint64_t> liveCoexprs_{0};
  std::atomic<std::uint64_t> quotaTrips_{0};
  std::atomic<bool> terminated_{false};

  StopSource source_;
};

/// Install `gov` as the current thread's governor for a scope (the
/// interpreter's root drives, a pipe's producer task). Flushes the
/// thread's pending fuel/heap batches across the switch so charges land
/// on the governor that incurred them; restores the previous governor
/// (and its batches) on destruction.
class ScopedGovernor {
 public:
  explicit ScopedGovernor(std::shared_ptr<ResourceGovernor> gov);
  ~ScopedGovernor();
  ScopedGovernor(const ScopedGovernor&) = delete;
  ScopedGovernor& operator=(const ScopedGovernor&) = delete;

 private:
  std::shared_ptr<ResourceGovernor> prev_;
  bool installed_ = false;
};

/// The current thread's governor (nullptr when ungoverned).
[[nodiscard]] ResourceGovernor* current() noexcept;
[[nodiscard]] std::shared_ptr<ResourceGovernor> currentShared() noexcept;

/// The current governor, or — for code running outside any Interpreter,
/// e.g. an emitted module's main — a lazily-created, limitless governor
/// owned by this thread. setquota() uses this so quotas work identically
/// across the three backends.
[[nodiscard]] std::shared_ptr<ResourceGovernor> currentOrThreadDefault();

/// Cooperative watchdog: a background thread that escalates watched
/// sessions through the StopSource cascade. At `soft` past the watch
/// start it calls requestSoftStop(); at `hard` it runs the diagnostics
/// callback (congen-run passes Pipe::dumpAll + a metrics snapshot — the
/// governor layer cannot name concur types) and then terminate()s the
/// session. A session that finishes first destroys its Watch handle and
/// is never escalated.
class Supervisor {
 public:
  class Watch {
   public:
    Watch() = default;
    Watch(Watch&& o) noexcept : id_(o.id_) { o.id_ = 0; }
    Watch& operator=(Watch&& o) noexcept;
    ~Watch() { cancel(); }
    Watch(const Watch&) = delete;
    Watch& operator=(const Watch&) = delete;
    /// Unwatch without waiting for the deadline (idempotent). If a
    /// deadline fired concurrently, blocks until the in-flight
    /// escalation (soft stop, or diagnostics + terminate) completes —
    /// after cancel() returns, no supervisor code can still touch the
    /// session. (Called from the supervisor's own diagnostics callback
    /// it does not wait, to stay deadlock-free.)
    void cancel() noexcept;

   private:
    friend class Supervisor;
    explicit Watch(std::uint64_t id) : id_(id) {}
    std::uint64_t id_ = 0;
  };

  static Supervisor& global();

  [[nodiscard]] Watch watch(std::shared_ptr<ResourceGovernor> gov,
                            std::chrono::milliseconds soft, std::chrono::milliseconds hard,
                            std::function<void()> diagnostics = {});

  /// Counters for tests/obs: escalations performed since process start.
  [[nodiscard]] std::uint64_t softStopsIssued() const noexcept;
  [[nodiscard]] std::uint64_t hardTeardownsIssued() const noexcept;

 private:
  Supervisor() = default;
};

/// Process-level admission gate: once the aggregate committed budgets of
/// live governed sessions reach the configured ceiling, new governor
/// creation is shed with errAdmissionRefused (815) instead of degrading
/// every existing session. Unlimited (maxSessions == 0 &&
/// maxCommittedHeapBytes == 0) by default. A governor with no heap
/// limit commits no heap; every governor counts as one session.
class Admission {
 public:
  struct Config {
    std::uint64_t maxSessions = 0;           ///< 0 = unlimited
    std::uint64_t maxCommittedHeapBytes = 0; ///< sum of admitted maxHeapBytes
  };

  static Admission& global();

  void configure(const Config& config);
  [[nodiscard]] Config config() const;
  [[nodiscard]] std::uint64_t liveSessions() const noexcept;
  [[nodiscard]] std::uint64_t committedHeapBytes() const noexcept;
  [[nodiscard]] std::uint64_t sheds() const noexcept;

 private:
  friend class ResourceGovernor;
  Admission() = default;
  void admit(const Limits& limits);           // throws 815
  void release(const Limits& limits) noexcept;

  mutable std::mutex mu_;
  Config config_;
  std::uint64_t liveSessions_ = 0;
  std::uint64_t committedHeap_ = 0;
  std::atomic<std::uint64_t> sheds_{0};
};

}  // namespace congen::governor

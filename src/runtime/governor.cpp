// governor.cpp — ResourceGovernor accounting, thread-local batching,
// the Supervisor watchdog, and the process admission gate.
//
// Layout of the machinery:
//
//  - a leaked live-governor registry recomputes the process-global
//    enforcement flags (governor_hooks.hpp) whenever a governor is
//    created, destroyed, reconfigured, or terminated — the hot paths pay
//    one relaxed load of those flags and nothing else when no governor
//    enforces the matching budget;
//  - a thread-local cell carries the installed governor plus pending
//    fuel/heap batches, so governed hot paths do plain thread-local
//    arithmetic and touch the governor's shared atomics once per batch
//    (the "thread-local reservation" of INTERNALS §15: a budget can be
//    overrun by at most one batch per thread before it trips);
//  - retired totals feed the obs collector, so governor.fuel_spent /
//    quota_trips survive governor destruction while heap_reserved (a
//    gauge) tracks only live charges.
#include "runtime/governor.hpp"

#include <algorithm>
#include <condition_variable>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/runtime_stats.hpp"
#include "runtime/error.hpp"

namespace congen::governor {

namespace {

// Batch sizes for the thread-local reservations. Tree steps are whole
// next() calls (heavier than VM dispatches), so they batch finer; the
// heap batch bounds per-thread overrun of the byte budget.
constexpr std::uint64_t kStepBatch = 256;
constexpr std::int64_t kHeapFlushBytes = 64 * 1024;

struct GovernorRegistry {
  std::mutex m;
  std::vector<ResourceGovernor*> live;
  // Folded at governor destruction so the obs totals are monotonic.
  std::uint64_t retiredFuelSpent = 0;
  std::uint64_t retiredQuotaTrips = 0;
};

// Leaked: thread-local cells may flush during static destruction.
GovernorRegistry& registry() {
  static GovernorRegistry* r = new GovernorRegistry;
  return *r;
}

}  // namespace

namespace detail {

std::atomic<bool> g_stepActive{false};
std::atomic<bool> g_heapActive{false};
std::atomic<bool> g_depthActive{false};
std::atomic<bool> g_anyActive{false};

namespace {

/// Per-thread accounting cell. `gov` owns a reference for as long as it
/// is installed (ScopedGovernor or the thread-default), so the raw
/// pointer handed out by current() cannot dangle. `alive` guards against
/// charges arriving after this thread_local was destroyed (allocator
/// hooks run from other TLS destructors).
struct Tls {
  std::shared_ptr<ResourceGovernor> gov;
  std::shared_ptr<ResourceGovernor> threadDefault;
  std::uint64_t pendingSteps = 0;
  std::int64_t pendingHeap = 0;
  std::uint64_t depth = 0;
  bool alive = true;

  ~Tls() {
    alive = false;
    if (gov != nullptr) {
      try {
        if (pendingSteps != 0) gov->chargeSteps(pendingSteps);
      } catch (...) {
        // Thread teardown: the spent total is recorded; the trip has
        // nowhere to surface.
      }
      try {
        // Positive batches must land too: the allocations are live and
        // their eventual frees (possibly on other threads) will be
        // credited — dropping the charge would drift heapReserved low.
        // A trip is swallowed like the fuel one above (newBytes = 0, so
        // the charge itself stays on the books).
        if (pendingHeap != 0) gov->adjustHeap(pendingHeap, 0);
      } catch (...) {
      }
      pendingSteps = 0;
      pendingHeap = 0;
    }
  }
};

Tls& tls() {
  thread_local Tls t;
  return t;
}

/// Charge the thread's pending batches to the installed governor.
/// Throws on a trip — the spent totals are recorded first, so a caller
/// that must not throw (ScopedGovernor, Tls teardown) can swallow the
/// error and let the *next* charge on the same governor re-trip.
void flushPending(Tls& t) {
  if (t.gov == nullptr) {
    t.pendingSteps = 0;
    t.pendingHeap = 0;
    return;
  }
  if (t.pendingHeap != 0) {
    const std::int64_t d = t.pendingHeap;
    t.pendingHeap = 0;
    t.gov->adjustHeap(d, 0);
  }
  if (t.pendingSteps != 0) {
    const std::uint64_t n = t.pendingSteps;
    t.pendingSteps = 0;
    t.gov->chargeSteps(n);
  }
}

}  // namespace

void chargeStepSlow() {
  auto& t = tls();
  if (!t.alive || t.gov == nullptr) return;
  if (++t.pendingSteps < kStepBatch) return;
  t.pendingSteps = 0;
  t.gov->chargeSteps(kStepBatch);
}

void chargeHeapSlow(std::size_t bytes) {
  auto& t = tls();
  if (!t.alive || t.gov == nullptr) return;
  t.pendingHeap += static_cast<std::int64_t>(bytes);
  if (t.pendingHeap < kHeapFlushBytes) return;
  const std::int64_t d = t.pendingHeap;
  t.pendingHeap = 0;
  t.gov->adjustHeap(d, bytes);
}

void creditHeapSlow(std::size_t bytes) noexcept {
  auto& t = tls();
  if (!t.alive || t.gov == nullptr) return;
  t.pendingHeap -= static_cast<std::int64_t>(bytes);
  if (t.pendingHeap > -kHeapFlushBytes) return;
  const std::int64_t d = t.pendingHeap;
  t.pendingHeap = 0;
  t.gov->adjustHeap(d, 0);  // pure credit: never throws
}

void enterDepthSlow() {
  auto& t = tls();
  if (!t.alive) return;
  ++t.depth;
  if (t.gov == nullptr) return;
  const std::uint64_t limit = t.gov->depthLimit();
  if (limit != 0 && t.depth > limit) {
    --t.depth;  // the guard never arms when its ctor throws
    t.gov->noteTrip();
    throw errDepthQuota();
  }
}

void leaveDepthSlow() noexcept {
  auto& t = tls();
  if (!t.alive) return;
  if (t.depth > 0) --t.depth;
}

}  // namespace detail

namespace {

/// Recompute the process-global enforcement flags from the live set.
/// Called with the registry lock held.
void recomputeFlagsLocked(GovernorRegistry& r) {
  bool step = false, heap = false, depth = false;
  for (const ResourceGovernor* g : r.live) {
    const Limits l = g->limits();
    // Termination rides the fuel path: a terminated governor must make
    // every thread still driving it reach a throw point.
    step = step || l.maxFuel != 0 || g->terminated();
    heap = heap || l.maxHeapBytes != 0;
    depth = depth || l.maxDepth != 0;
  }
  detail::g_stepActive.store(step, std::memory_order_relaxed);
  detail::g_heapActive.store(heap, std::memory_order_relaxed);
  detail::g_depthActive.store(depth, std::memory_order_relaxed);
  detail::g_anyActive.store(!r.live.empty(), std::memory_order_relaxed);
}

void recomputeFlags() {
  auto& r = registry();
  std::lock_guard lock(r.m);
  recomputeFlagsLocked(r);
}

}  // namespace

// ---------------------------------------------------------------------------
// ResourceGovernor

ResourceGovernor::ResourceGovernor(const Limits& limits)
    : admitted_(limits),
      hostLimits_(limits),
      fuelLimit_(limits.maxFuel),
      heapLimit_(limits.maxHeapBytes),
      pipeLimit_(limits.maxPipes),
      coexprLimit_(limits.maxCoexprs),
      pipeDepthLimit_(limits.maxPipeDepth),
      depthLimit_(limits.maxDepth) {}

std::shared_ptr<ResourceGovernor> ResourceGovernor::create(const Limits& limits) {
  // Limitless governors (thread defaults, --supervise without quotas)
  // commit no budget and bypass the admission gate.
  if (limits.any()) Admission::global().admit(limits);
  std::shared_ptr<ResourceGovernor> gov(new ResourceGovernor(limits));
  auto& r = registry();
  std::lock_guard lock(r.m);
  r.live.push_back(gov.get());
  recomputeFlagsLocked(r);
  return gov;
}

ResourceGovernor::~ResourceGovernor() {
  // Release exactly what create() admitted — effective limits may have
  // been tightened (setScriptLimit) or moved (setLimit) since, and the
  // gate's committed totals must stay balanced regardless.
  const Limits admitted = admitted_;
  auto& r = registry();
  {
    std::lock_guard lock(r.m);
    std::erase(r.live, this);
    r.retiredFuelSpent += fuelSpent_.load(std::memory_order_relaxed);
    r.retiredQuotaTrips += quotaTrips_.load(std::memory_order_relaxed);
    recomputeFlagsLocked(r);
  }
  if (admitted.any()) Admission::global().release(admitted);
}

Limits ResourceGovernor::limits() const {
  Limits l;
  l.maxFuel = fuelLimit_.load(std::memory_order_relaxed);
  l.maxHeapBytes = heapLimit_.load(std::memory_order_relaxed);
  l.maxPipes = pipeLimit_.load(std::memory_order_relaxed);
  l.maxCoexprs = coexprLimit_.load(std::memory_order_relaxed);
  l.maxPipeDepth = pipeDepthLimit_.load(std::memory_order_relaxed);
  l.maxDepth = depthLimit_.load(std::memory_order_relaxed);
  return l;
}

std::atomic<std::uint64_t>& ResourceGovernor::limitCell(Budget budget) noexcept {
  switch (budget) {
    case Budget::Fuel: return fuelLimit_;
    case Budget::Heap: return heapLimit_;
    case Budget::Pipes: return pipeLimit_;
    case Budget::Coexprs: return coexprLimit_;
    case Budget::PipeDepth: return pipeDepthLimit_;
    case Budget::Depth: return depthLimit_;
  }
  return fuelLimit_;  // unreachable
}

namespace {

std::uint64_t& hostField(Limits& l, Budget budget) noexcept {
  switch (budget) {
    case Budget::Fuel: return l.maxFuel;
    case Budget::Heap: return l.maxHeapBytes;
    case Budget::Pipes: return l.maxPipes;
    case Budget::Coexprs: return l.maxCoexprs;
    case Budget::PipeDepth: return l.maxPipeDepth;
    case Budget::Depth: return l.maxDepth;
  }
  return l.maxFuel;  // unreachable
}

}  // namespace

void ResourceGovernor::setLimit(Budget budget, std::uint64_t value) {
  {
    std::lock_guard lock(limitMu_);
    // A fresh fuel budget, not the remainder of an old one: the host
    // restarts the accounting epoch (live counts, by contrast, must
    // keep their credits balanced and are never reset).
    if (budget == Budget::Fuel) fuelSpent_.store(0, std::memory_order_relaxed);
    hostField(hostLimits_, budget) = value;
    limitCell(budget).store(value, std::memory_order_relaxed);
  }
  // Note: admission commitments are negotiated at create() and are NOT
  // re-negotiated here (a tenant cannot grow its admitted footprint by
  // raising its own limit mid-session).
  recomputeFlags();
}

std::uint64_t ResourceGovernor::setScriptLimit(Budget budget, std::uint64_t value) {
  std::uint64_t effective = 0;
  {
    std::lock_guard lock(limitMu_);
    const std::uint64_t host = hostField(hostLimits_, budget);
    // Tighten-only against the host baseline: 0 restores the host value
    // (only "unlimited" when the host never imposed one), anything else
    // clamps to it. A governed script can thus never widen the envelope
    // congen-run --max-* / Interpreter::Options committed it to.
    if (value == 0) {
      effective = host;
    } else {
      effective = host == 0 ? value : std::min(value, host);
    }
    // The epoch restart (fresh fuel) is only available when the fuel
    // budget is script-owned — resetting fuelSpent_ under a host limit
    // would let a script re-grant its own budget every trip.
    if (budget == Budget::Fuel && host == 0) fuelSpent_.store(0, std::memory_order_relaxed);
    limitCell(budget).store(effective, std::memory_order_relaxed);
  }
  recomputeFlags();
  return effective;
}

Usage ResourceGovernor::usage() const noexcept {
  Usage u;
  u.fuelSpent = fuelSpent_.load(std::memory_order_relaxed);
  const std::int64_t heap = heapReserved_.load(std::memory_order_relaxed);
  u.heapReserved = heap > 0 ? static_cast<std::uint64_t>(heap) : 0;
  u.livePipes = livePipes_.load(std::memory_order_relaxed);
  u.liveCoexprs = liveCoexprs_.load(std::memory_order_relaxed);
  u.quotaTrips = quotaTrips_.load(std::memory_order_relaxed);
  return u;
}

void ResourceGovernor::noteTrip() noexcept {
  quotaTrips_.fetch_add(1, std::memory_order_relaxed);
}

void ResourceGovernor::throwTerminated() { throw errSessionTerminated(); }

void ResourceGovernor::chargeSteps(std::uint64_t n) {
  if (n == 0) return;
  if (terminated_.load(std::memory_order_relaxed)) throwTerminated();
  const std::uint64_t spent = fuelSpent_.fetch_add(n, std::memory_order_relaxed) + n;
  const std::uint64_t limit = fuelLimit_.load(std::memory_order_relaxed);
  if (limit != 0 && spent > limit) {
    noteTrip();
    throw errFuelExhausted();
  }
}

void ResourceGovernor::adjustHeap(std::int64_t delta, std::uint64_t newBytes) {
  if (delta == 0) return;
  const std::int64_t now = heapReserved_.fetch_add(delta, std::memory_order_relaxed) + delta;
  if (delta <= 0) return;  // pure credit: clamped at read time (usage())
  if (terminated_.load(std::memory_order_relaxed)) {
    // The allocation the throw abandons is backed out; charges for
    // allocations that already happened stay on the books.
    heapReserved_.fetch_sub(static_cast<std::int64_t>(newBytes), std::memory_order_relaxed);
    throwTerminated();
  }
  const std::uint64_t limit = heapLimit_.load(std::memory_order_relaxed);
  if (limit != 0 && now > static_cast<std::int64_t>(limit)) {
    heapReserved_.fetch_sub(static_cast<std::int64_t>(newBytes), std::memory_order_relaxed);
    noteTrip();
    throw errHeapQuota();
  }
}

void ResourceGovernor::chargeCoexpr() {
  if (terminated_.load(std::memory_order_relaxed)) throwTerminated();
  const std::uint64_t live = liveCoexprs_.fetch_add(1, std::memory_order_relaxed) + 1;
  const std::uint64_t limit = coexprLimit_.load(std::memory_order_relaxed);
  if (limit != 0 && live > limit) {
    liveCoexprs_.fetch_sub(1, std::memory_order_relaxed);
    noteTrip();
    throw errCoexprQuota();
  }
}

void ResourceGovernor::creditCoexpr() noexcept {
  liveCoexprs_.fetch_sub(1, std::memory_order_relaxed);
}

void ResourceGovernor::chargePipe() {
  if (terminated_.load(std::memory_order_relaxed)) throwTerminated();
  const std::uint64_t live = livePipes_.fetch_add(1, std::memory_order_relaxed) + 1;
  const std::uint64_t limit = pipeLimit_.load(std::memory_order_relaxed);
  if (limit != 0 && live > limit) {
    livePipes_.fetch_sub(1, std::memory_order_relaxed);
    noteTrip();
    throw errPipeQuota();
  }
}

void ResourceGovernor::creditPipe() noexcept {
  livePipes_.fetch_sub(1, std::memory_order_relaxed);
}

std::size_t ResourceGovernor::clampPipeCapacity(std::size_t capacity) const noexcept {
  const std::uint64_t limit = pipeDepthLimit_.load(std::memory_order_relaxed);
  if (limit == 0) return capacity;
  // Graceful degradation, not an error: an oversized request shrinks to
  // the budget (backpressure arrives earlier; semantics are unchanged).
  // Capacity 0 is an *unbounded* request (see concur/channel.hpp) — it
  // clamps down to the budget too.
  if (capacity == 0) return static_cast<std::size_t>(limit);
  return std::min<std::size_t>(capacity, static_cast<std::size_t>(limit));
}

void ResourceGovernor::requestSoftStop() noexcept { source_.requestStop(); }

void ResourceGovernor::terminate() noexcept {
  terminated_.store(true, std::memory_order_relaxed);
  source_.requestStop();  // unblock producers parked in queue waits
  // Flip the global fuel flag so every governed thread reaches a charge
  // point (and the 816 throw) within one step batch.
  recomputeFlags();
}

// ---------------------------------------------------------------------------
// Thread-local installation

ScopedGovernor::ScopedGovernor(std::shared_ptr<ResourceGovernor> gov) {
  auto& t = detail::tls();
  if (!t.alive) return;
  // Charges batched so far belong to the outgoing governor. A trip here
  // is swallowed (spent totals are already recorded; the next charge on
  // that governor re-trips) so scope entry/exit never throws.
  try {
    detail::flushPending(t);
  } catch (const IconError&) {
  }
  prev_ = std::move(t.gov);
  t.gov = std::move(gov);
  installed_ = true;
}

ScopedGovernor::~ScopedGovernor() {
  if (!installed_) return;
  auto& t = detail::tls();
  if (!t.alive) return;
  try {
    detail::flushPending(t);
  } catch (const IconError&) {
  }
  t.gov = std::move(prev_);
}

ResourceGovernor* current() noexcept {
  auto& t = detail::tls();
  return t.alive ? t.gov.get() : nullptr;
}

std::shared_ptr<ResourceGovernor> currentShared() noexcept {
  auto& t = detail::tls();
  return t.alive ? t.gov : nullptr;
}

std::shared_ptr<ResourceGovernor> currentOrThreadDefault() {
  auto& t = detail::tls();
  if (!t.alive) return nullptr;
  if (t.gov != nullptr) return t.gov;
  if (t.threadDefault == nullptr) {
    // Code running outside any Interpreter (an emitted module's main):
    // a limitless governor owned by this thread, installed as current so
    // the charge paths see it. It persists for the thread's lifetime;
    // with all limits at 0 it keeps every enforcement flag off.
    t.threadDefault = ResourceGovernor::create(Limits{});
  }
  t.gov = t.threadDefault;
  return t.gov;
}

// ---------------------------------------------------------------------------
// RAII count charges (hooks header)

void CoexprCharge::charge() {
  auto gov = currentShared();
  if (gov == nullptr) return;
  gov->chargeCoexpr();  // throws before gov_ is set: dtor won't credit
  gov_ = std::move(gov);
}

void CoexprCharge::credit() noexcept { gov_->creditCoexpr(); }

void PipeCharge::charge() {
  auto gov = currentShared();
  if (gov == nullptr) return;
  gov->chargePipe();
  gov_ = std::move(gov);
}

void PipeCharge::credit() noexcept { gov_->creditPipe(); }

// ---------------------------------------------------------------------------
// Supervisor

namespace {

struct WatchEntry {
  std::uint64_t id = 0;
  std::weak_ptr<ResourceGovernor> gov;
  std::chrono::steady_clock::time_point softAt;
  std::chrono::steady_clock::time_point hardAt;
  std::function<void()> diagnostics;
  bool softDone = false;
};

struct SupervisorState {
  std::mutex m;
  std::condition_variable cv;
  std::vector<WatchEntry> entries;
  // Watch ids whose escalation has been scheduled by a tick but has not
  // finished executing yet (the tick runs requestSoftStop / diagnostics
  // / terminate outside the lock). Watch::cancel waits until its id
  // leaves this set, so a cancelled watch is never escalated *and*
  // never observed mid-escalation.
  std::vector<std::uint64_t> inFlight;
  std::uint64_t nextId = 1;
  bool threadStarted = false;
  std::thread::id watchdogThread;
  std::atomic<std::uint64_t> softIssued{0};
  std::atomic<std::uint64_t> hardIssued{0};
};

// Leaked: the watchdog thread is detached and may outlive main().
SupervisorState& supervisorState() {
  static SupervisorState* s = new SupervisorState;
  return *s;
}

void supervisorTick(SupervisorState& s) {
  const auto now = std::chrono::steady_clock::now();
  // Escalations collected under the lock, executed outside it: the
  // diagnostics callback is arbitrary caller code (Pipe::dumpAll, a
  // metrics snapshot) and must not run under the supervisor mutex.
  // Every scheduled escalation parks its watch id in s.inFlight first,
  // so a concurrent Watch::cancel blocks until it has fully executed.
  std::vector<std::pair<std::uint64_t, std::shared_ptr<ResourceGovernor>>> toSoftStop;
  struct Hard {
    std::uint64_t id;
    std::shared_ptr<ResourceGovernor> gov;
    std::function<void()> diagnostics;
  };
  std::vector<Hard> toTerminate;
  {
    std::lock_guard lock(s.m);
    std::erase_if(s.entries, [&](WatchEntry& e) {
      auto gov = e.gov.lock();
      if (gov == nullptr) return true;  // session finished on its own
      if (now >= e.hardAt) {
        s.inFlight.push_back(e.id);
        toTerminate.push_back({e.id, std::move(gov), std::move(e.diagnostics)});
        return true;  // fully escalated: nothing left to watch
      }
      if (!e.softDone && now >= e.softAt) {
        e.softDone = true;
        s.inFlight.push_back(e.id);
        toSoftStop.emplace_back(e.id, std::move(gov));
      }
      return false;
    });
  }
  for (auto& [id, gov] : toSoftStop) {
    s.softIssued.fetch_add(1, std::memory_order_relaxed);
    gov->requestSoftStop();
  }
  for (auto& h : toTerminate) {
    s.hardIssued.fetch_add(1, std::memory_order_relaxed);
    if (h.diagnostics) {
      try {
        h.diagnostics();
      } catch (...) {
        // Diagnostics are best-effort; teardown proceeds regardless.
      }
    }
    h.gov->terminate();
  }
  if (!toSoftStop.empty() || !toTerminate.empty()) {
    std::lock_guard lock(s.m);
    for (const auto& [id, gov] : toSoftStop) std::erase(s.inFlight, id);
    for (const auto& h : toTerminate) std::erase(s.inFlight, h.id);
    s.cv.notify_all();  // wake cancel()ers waiting out an escalation
  }
}

void ensureSupervisorThread(SupervisorState& s) {
  // Caller holds s.m.
  if (s.threadStarted) return;
  s.threadStarted = true;
  std::thread([&s] {
    std::unique_lock lock(s.m);
    s.watchdogThread = std::this_thread::get_id();
    for (;;) {
      s.cv.wait_for(lock, std::chrono::milliseconds(20));
      lock.unlock();
      supervisorTick(s);
      lock.lock();
    }
  }).detach();
}

}  // namespace

Supervisor& Supervisor::global() {
  static Supervisor* s = new Supervisor;
  return *s;
}

Supervisor::Watch Supervisor::watch(std::shared_ptr<ResourceGovernor> gov,
                                    std::chrono::milliseconds soft, std::chrono::milliseconds hard,
                                    std::function<void()> diagnostics) {
  auto& s = supervisorState();
  const auto now = std::chrono::steady_clock::now();
  WatchEntry e;
  e.gov = gov;
  e.softAt = now + soft;
  e.hardAt = now + std::max(soft, hard);
  e.diagnostics = std::move(diagnostics);
  std::lock_guard lock(s.m);
  e.id = s.nextId++;
  s.entries.push_back(std::move(e));
  ensureSupervisorThread(s);
  return Watch(s.entries.back().id);
}

std::uint64_t Supervisor::softStopsIssued() const noexcept {
  return supervisorState().softIssued.load(std::memory_order_relaxed);
}

std::uint64_t Supervisor::hardTeardownsIssued() const noexcept {
  return supervisorState().hardIssued.load(std::memory_order_relaxed);
}

Supervisor::Watch& Supervisor::Watch::operator=(Watch&& o) noexcept {
  if (this != &o) {
    cancel();
    id_ = o.id_;
    o.id_ = 0;
  }
  return *this;
}

void Supervisor::Watch::cancel() noexcept {
  if (id_ == 0) return;
  const std::uint64_t id = id_;
  id_ = 0;
  auto& s = supervisorState();
  std::unique_lock lock(s.m);
  std::erase_if(s.entries, [id](const WatchEntry& e) { return e.id == id; });
  // A deadline that fired concurrently already left entries; its
  // escalation may be running right now, outside the lock. Wait it out
  // so the caller can rely on "after cancel(), the supervisor never
  // touches this session again" — except on the watchdog thread itself
  // (a diagnostics callback cancelling a watch must not self-deadlock).
  if (std::this_thread::get_id() != s.watchdogThread) {
    s.cv.wait(lock, [&s, id] {
      return std::find(s.inFlight.begin(), s.inFlight.end(), id) == s.inFlight.end();
    });
  }
}

// ---------------------------------------------------------------------------
// Admission

Admission& Admission::global() {
  static Admission* a = new Admission;
  return *a;
}

void Admission::configure(const Config& config) {
  std::lock_guard lock(mu_);
  config_ = config;
}

Admission::Config Admission::config() const {
  std::lock_guard lock(mu_);
  return config_;
}

std::uint64_t Admission::liveSessions() const noexcept {
  std::lock_guard lock(mu_);
  return liveSessions_;
}

std::uint64_t Admission::committedHeapBytes() const noexcept {
  std::lock_guard lock(mu_);
  return committedHeap_;
}

std::uint64_t Admission::sheds() const noexcept {
  return sheds_.load(std::memory_order_relaxed);
}

void Admission::admit(const Limits& limits) {
  std::string refusal;
  {
    std::lock_guard lock(mu_);
    if (config_.maxSessions != 0 && liveSessions_ + 1 > config_.maxSessions) {
      refusal = "session count at capacity";
    } else if (config_.maxCommittedHeapBytes != 0 &&
               committedHeap_ + limits.maxHeapBytes > config_.maxCommittedHeapBytes) {
      refusal = "committed heap at capacity";
    } else {
      ++liveSessions_;
      committedHeap_ += limits.maxHeapBytes;
      return;
    }
  }
  sheds_.fetch_add(1, std::memory_order_relaxed);
  throw errAdmissionRefused(refusal);
}

void Admission::release(const Limits& limits) noexcept {
  std::lock_guard lock(mu_);
  if (liveSessions_ > 0) --liveSessions_;
  committedHeap_ -= std::min(committedHeap_, limits.maxHeapBytes);
}

// ---------------------------------------------------------------------------
// obs bridge: snapshot-time collector over live + retired totals (the
// arena-tally pattern — charge paths never touch the registry handles).

namespace {

[[maybe_unused]] const bool kCollectorRegistered = [] {
  obs::Registry::global().addCollector(
      [lastFuel = std::uint64_t{0}, lastTrips = std::uint64_t{0}, lastSheds = std::uint64_t{0},
       lastHeap = std::int64_t{0}]() mutable {
        std::uint64_t fuel = 0, trips = 0;
        std::int64_t heap = 0;
        {
          auto& r = registry();
          std::lock_guard lock(r.m);
          fuel = r.retiredFuelSpent;
          trips = r.retiredQuotaTrips;
          for (const ResourceGovernor* g : r.live) {
            const Usage u = g->usage();
            fuel += u.fuelSpent;
            trips += u.quotaTrips;
            heap += static_cast<std::int64_t>(u.heapReserved);
          }
        }
        const std::uint64_t sheds = Admission::global().sheds();
        auto& s = obs::GovernorStats::get();
        s.fuelSpent.add(fuel - lastFuel);
        s.quotaTrips.add(trips - lastTrips);
        s.sheds.add(sheds - lastSheds);
        s.heapReserved.add(heap - lastHeap);
        lastFuel = fuel;
        lastTrips = trips;
        lastSheds = sheds;
        lastHeap = heap;
      });
  return true;
}();

}  // namespace

}  // namespace congen::governor

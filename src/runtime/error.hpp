// error.hpp — run-time error signalling for goal-directed evaluation.
//
// Icon distinguishes *failure* (an expression produces no value; handled by
// the iterator protocol, never by exceptions) from *run-time errors*
// (type-coercion faults, division by zero, ...). The latter map onto C++
// exceptions derived from IconError, mirroring Icon's numbered run-time
// errors.
#pragma once

#include <stdexcept>
#include <string>

namespace congen {

/// A Unicon run-time error (e.g. "101: integer expected").
class IconError : public std::runtime_error {
 public:
  IconError(int number, const std::string& message)
      : std::runtime_error(std::to_string(number) + ": " + message),
        number_(number),
        message_(message) {}

  [[nodiscard]] int number() const noexcept { return number_; }
  /// The bare message, without the "NNN: " prefix of what(). This is
  /// what &errorvalue reports after an error is converted to failure.
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

 private:
  int number_;
  std::string message_;
};

/// 101: integer expected or out of range.
inline IconError errIntegerExpected(const std::string& what) {
  return {101, "integer expected: " + what};
}
/// 102: numeric expected.
inline IconError errNumericExpected(const std::string& what) {
  return {102, "numeric expected: " + what};
}
/// 103: string expected.
inline IconError errStringExpected(const std::string& what) {
  return {103, "string expected: " + what};
}
/// 106: procedure or callable expected.
inline IconError errCallableExpected(const std::string& what) {
  return {106, "procedure expected: " + what};
}
/// 108: list expected.
inline IconError errListExpected(const std::string& what) { return {108, "list expected: " + what}; }
/// 115: co-expression expected.
inline IconError errCoExprExpected(const std::string& what) {
  return {115, "co-expression expected: " + what};
}
/// 201: division by zero.
inline IconError errDivisionByZero() { return {201, "division by zero"}; }
/// 205: invalid value.
inline IconError errInvalidValue(const std::string& what) { return {205, "invalid value: " + what}; }
/// 305: the system allocator failed (real exhaustion or an injected
/// ArenaAlloc/RcAlloc fault) — Icon's "inadequate space", surfaced as a
/// catchable run-time error instead of a raw std::bad_alloc.
inline IconError errOutOfMemory(const std::string& what) {
  return {305, "inadequate space: " + what};
}
/// 801: a concurrent stage died with a non-Icon exception; the original
/// cause is preserved in the message so containment never loses it.
inline IconError errStageFailed(const std::string& what) {
  return {801, "pipeline stage failed: " + what};
}
/// 802: a data-parallel chunk kept failing after its retry budget.
inline IconError errRetryExhausted(const std::string& what) {
  return {802, "retry budget exhausted: " + what};
}

// 81x — the errQuotaExceeded family (runtime/governor.hpp). With one
// exception these are ordinary catchable run-time errors: `&error`
// conversion applies at the shared kernel operator nodes, so tree, VM,
// and emitted backends trip with identical number and message. The
// exception is 816 (session terminated): it is the Supervisor tearing
// the session down, and ErrorEnv::convertToFailure refuses to convert
// it — a script cannot spend &error credit to outlive its own teardown.
/// 810: the session's evaluation-fuel budget is exhausted.
inline IconError errFuelExhausted() { return {810, "quota exceeded: evaluation fuel"}; }
/// 811: the session's heap-byte budget is exhausted.
inline IconError errHeapQuota() { return {811, "quota exceeded: heap bytes"}; }
/// 812: too many live co-expressions for the session's budget.
inline IconError errCoexprQuota() { return {812, "quota exceeded: co-expressions"}; }
/// 812: too many live pipes for the session's budget (same number as the
/// co-expression trip — a pipe IS a co-expression — message differs).
inline IconError errPipeQuota() { return {812, "quota exceeded: pipes"}; }
/// 813: recursion/suspension depth budget exceeded.
inline IconError errDepthQuota() { return {813, "quota exceeded: recursion depth"}; }
/// 815: the process admission gate refused a new governed session.
inline IconError errAdmissionRefused(const std::string& what) {
  return {815, "session admission refused: " + what};
}
/// 816: the Supervisor hard-terminated this session; every governed
/// thread raises this at its next charge point and unwinds. NOT
/// convertible to failure via &error (see kErrSessionTerminated).
inline constexpr int kErrSessionTerminated = 816;
inline IconError errSessionTerminated() {
  return {kErrSessionTerminated, "session terminated by supervisor"};
}

}  // namespace congen

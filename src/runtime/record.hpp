// record.hpp — Unicon record types.
//
// `record point(x, y)` declares a constructor; instances are fixed-shape
// structures with named fields, reference semantics, and trapped-variable
// field access (p.x is assignable). The paper's class-level embedding
// maps host classes onto this shape.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "runtime/value.hpp"

namespace congen {

class RecordType;
using RecordTypePtr = std::shared_ptr<const RecordType>;

/// The declared shape: type name + ordered field names.
class RecordType {
 public:
  RecordType(std::string name, std::vector<std::string> fields)
      : name_(std::move(name)), fields_(std::move(fields)) {}

  static RecordTypePtr create(std::string name, std::vector<std::string> fields) {
    return std::make_shared<const RecordType>(std::move(name), std::move(fields));
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::vector<std::string>& fields() const noexcept { return fields_; }
  [[nodiscard]] std::size_t arity() const noexcept { return fields_.size(); }

  /// 0-based slot of a field name; nullopt if unknown.
  [[nodiscard]] std::optional<std::size_t> fieldIndex(std::string_view field) const {
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      if (fields_[i] == field) return i;
    }
    return std::nullopt;
  }

 private:
  std::string name_;
  std::vector<std::string> fields_;
};

/// A record instance.
class RecordImpl : public RcBase {
 public:
  RecordImpl(RecordTypePtr type, std::vector<Value> values)
      : RcBase(static_cast<std::uint8_t>(TypeTag::Record)),
        type_(std::move(type)),
        values_(std::move(values)) {
    values_.resize(type_->arity());  // missing constructor args are &null
  }

  static RecordPtr create(RecordTypePtr type, std::vector<Value> values) {
    return makeRc<RecordImpl>(std::move(type), std::move(values));
  }

  [[nodiscard]] const RecordTypePtr& type() const noexcept { return type_; }
  [[nodiscard]] std::int64_t size() const noexcept {
    return static_cast<std::int64_t>(values_.size());
  }

  /// Field access by name; nullopt for unknown fields (run-time error at
  /// the caller, Icon error 207).
  [[nodiscard]] std::optional<Value> field(std::string_view name) const {
    const auto idx = type_->fieldIndex(name);
    if (!idx) return std::nullopt;
    return values_[*idx];
  }
  bool assignField(std::string_view name, Value v) {
    const auto idx = type_->fieldIndex(name);
    if (!idx) return false;
    values_[*idx] = std::move(v);
    return true;
  }

  /// Positional access, 1-based with Icon's negative convention
  /// (records are also subscriptable by position in Icon).
  [[nodiscard]] std::optional<Value> at(std::int64_t i) const {
    const auto idx = resolve(i);
    if (!idx) return std::nullopt;
    return values_[*idx];
  }
  bool assign(std::int64_t i, Value v) {
    const auto idx = resolve(i);
    if (!idx) return false;
    values_[*idx] = std::move(v);
    return true;
  }

  [[nodiscard]] const std::vector<Value>& values() const noexcept { return values_; }

 private:
  [[nodiscard]] std::optional<std::size_t> resolve(std::int64_t i) const {
    const auto n = static_cast<std::int64_t>(values_.size());
    if (i >= 1 && i <= n) return static_cast<std::size_t>(i - 1);
    if (i < 0 && -i <= n) return static_cast<std::size_t>(n + i);
    return std::nullopt;
  }

  RecordTypePtr type_;
  std::vector<Value> values_;
};

}  // namespace congen

// proc.hpp — procedure values.
//
// Unicon procedures are first-class, variadic, and — crucially — are
// *generator functions*: invocation returns a suspendable iterator over
// the results the body suspends (Section V.C: methods translate to
// "variadic lambda expressions that return an iterator"). ProcImpl is the
// VariadicFunction of the paper.
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "runtime/value.hpp"

namespace congen {

/// A first-class procedure: name + variadic body returning a generator.
class ProcImpl {
 public:
  /// Body signature: args in, suspendable iterator out. Missing arguments
  /// are &null per Unicon's variadic convention (the body pads).
  using Body = std::function<GenPtr(std::vector<Value>)>;

  ProcImpl(std::string name, Body body) : name_(std::move(name)), body_(std::move(body)) {}

  static ProcPtr create(std::string name, Body body) {
    return std::make_shared<ProcImpl>(std::move(name), std::move(body));
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Invoke: returns the generator over the call's results.
  [[nodiscard]] GenPtr invoke(std::vector<Value> args) const { return body_(std::move(args)); }

 private:
  std::string name_;
  Body body_;
};

}  // namespace congen

// proc.hpp — procedure values.
//
// Unicon procedures are first-class, variadic, and — crucially — are
// *generator functions*: invocation returns a suspendable iterator over
// the results the body suspends (Section V.C: methods translate to
// "variadic lambda expressions that return an iterator"). ProcImpl is the
// VariadicFunction of the paper.
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "runtime/value.hpp"

namespace congen {

/// A first-class procedure: name + variadic body returning a generator.
class ProcImpl : public RcBase {
 public:
  /// Body signature: args in, suspendable iterator out. Missing arguments
  /// are &null per Unicon's variadic convention (the body pads).
  using Body = std::function<GenPtr(std::vector<Value>)>;

  /// Direct form of a simple (at-most-one-result) native: args in,
  /// value out, nullopt = failure. When present, callers that hold
  /// argument *values* (the bytecode VM) may call this instead of
  /// invoke(), skipping the generator wrapper; it must be semantically
  /// identical to one next() of invoke()'s result.
  using NativeFn = std::function<std::optional<Value>(std::vector<Value>&)>;

  ProcImpl(std::string name, Body body)
      : RcBase(static_cast<std::uint8_t>(TypeTag::Proc)),
        name_(std::move(name)),
        body_(std::move(body)) {}

  static ProcPtr create(std::string name, Body body) {
    return makeRc<ProcImpl>(std::move(name), std::move(body));
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Invoke: returns the generator over the call's results.
  [[nodiscard]] GenPtr invoke(std::vector<Value> args) const { return body_(std::move(args)); }

  /// Install / query the direct native form (builtins::makeNative).
  void setNative(NativeFn fn) { native_ = std::move(fn); }
  [[nodiscard]] const NativeFn& nativeFn() const noexcept { return native_; }

 private:
  std::string name_;
  Body body_;
  NativeFn native_;
};

}  // namespace congen

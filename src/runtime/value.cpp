#include "runtime/value.hpp"

#include <cctype>
#include <cmath>
#include <limits>
#include <sstream>

#include "runtime/collections.hpp"
#include "runtime/error.hpp"
#include "runtime/proc.hpp"
#include "runtime/record.hpp"

namespace congen {

// fromHeap/asRc reinterpret the stored pointer across the RcBase<->payload
// boundary; that is only sound while RcBase is a (polymorphic, hence
// primary, hence offset-zero) base of every payload class.
static_assert(std::is_base_of_v<RcBase, detail::StringBox>);
static_assert(std::is_base_of_v<RcBase, detail::BigIntBox>);
static_assert(std::is_base_of_v<RcBase, ListImpl>);
static_assert(std::is_base_of_v<RcBase, TableImpl>);
static_assert(std::is_base_of_v<RcBase, SetImpl>);
static_assert(std::is_base_of_v<RcBase, RecordImpl>);
static_assert(std::is_base_of_v<RcBase, ProcImpl>);

namespace {

std::string quoteString(std::string_view s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  out += '"';
  return out;
}

std::string formatReal(double d) {
  if (std::isnan(d)) return "nan";
  if (std::isinf(d)) return d > 0 ? "inf" : "-inf";
  std::ostringstream os;
  os.precision(15);
  os << d;
  std::string s = os.str();
  // Icon always writes reals with a decimal point or exponent.
  if (s.find('.') == std::string::npos && s.find('e') == std::string::npos &&
      s.find("inf") == std::string::npos && s.find("nan") == std::string::npos) {
    s += ".0";
  }
  return s;
}

/// Parse a numeric literal per Icon: integer, radix form `NrDIGITS`
/// (N in 2..36), or real. Leading/trailing blanks tolerated.
std::optional<Value> parseNumeric(std::string_view text) {
  std::size_t begin = 0, end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  text = text.substr(begin, end - begin);
  if (text.empty()) return std::nullopt;

  // Radix form: [sign] dd 'r' digits
  if (const auto r = text.find_first_of("rR"); r != std::string_view::npos && r > 0 && r + 1 < text.size()) {
    std::string_view prefix = text.substr(0, r);
    bool neg = false;
    if (!prefix.empty() && (prefix[0] == '+' || prefix[0] == '-')) {
      neg = prefix[0] == '-';
      prefix.remove_prefix(1);
    }
    bool allDigits = !prefix.empty();
    unsigned radix = 0;
    for (const char c : prefix) {
      if (!std::isdigit(static_cast<unsigned char>(c))) {
        allDigits = false;
        break;
      }
      radix = radix * 10 + static_cast<unsigned>(c - '0');
      if (radix > 36) break;
    }
    if (allDigits && radix >= 2 && radix <= 36) {
      if (auto big = BigInt::parse(text.substr(r + 1), radix)) {
        return Value::integer(neg ? -*big : *std::move(big));
      }
      return std::nullopt;
    }
  }

  const bool looksReal = text.find_first_of(".eE") != std::string_view::npos;
  if (!looksReal) {
    if (auto big = BigInt::parse(text, 10)) return Value::integer(*std::move(big));
    return std::nullopt;
  }
  // Real: parse with strtod over a bounded copy, require full consumption.
  std::string copy{text};
  char* endPtr = nullptr;
  const double d = std::strtod(copy.c_str(), &endPtr);
  if (endPtr != copy.c_str() + copy.size()) return std::nullopt;
  return Value::real(d);
}

}  // namespace

Value Value::integer(BigInt v) {
  if (auto small = v.toInt64()) return Value::integer(*small);
  return Value(new detail::BigIntBox(std::move(v)), Rep::kBigInt);
}

Value Value::stringConcat(std::string_view a, std::string_view b) {
  const std::size_t n = a.size() + b.size();
  if (n <= kSsoCapacity) {
    Value r;
    if (!a.empty()) std::memcpy(r.raw_, a.data(), a.size());
    if (!b.empty()) std::memcpy(r.raw_ + a.size(), b.data(), b.size());
    r.aux_ = static_cast<std::uint8_t>(n);
    r.rep_ = Rep::kSso;
    return r;
  }
  std::string s;
  s.reserve(n);
  s.append(a);
  s.append(b);
  return Value(new detail::StringBox(std::move(s)), Rep::kHeapStr);
}

std::optional<Value> Value::toIntegerValue() const {
  if (isInteger()) return *this;
  if (isReal()) {
    const double d = real();
    if (std::floor(d) != d || !std::isfinite(d)) return std::nullopt;
    if (d >= -9.2e18 && d <= 9.2e18) return Value::integer(static_cast<std::int64_t>(d));
    return std::nullopt;
  }
  if (isString()) {
    auto n = parseNumeric(str());
    if (n && n->isInteger()) return n;
    if (n && n->isReal()) return n->toIntegerValue();
    return std::nullopt;
  }
  return std::nullopt;
}

std::int64_t Value::requireInt64(std::string_view what) const {
  if (rep_ == Rep::kInt) return loadScalar<std::int64_t>();
  auto iv = toIntegerValue();
  if (!iv || !iv->isSmallInt()) throw errIntegerExpected(std::string(what) + " = " + image());
  return iv->smallInt();
}

BigInt Value::requireBigInt(std::string_view what) const {
  auto iv = toIntegerValue();
  if (!iv) throw errIntegerExpected(std::string(what) + " = " + image());
  if (iv->isSmallInt()) return BigInt{iv->smallInt()};
  return iv->bigInt();
}

std::optional<Value> Value::toNumeric() const {
  if (isInteger() || isReal()) return *this;
  if (isString()) return parseNumeric(str());
  return std::nullopt;
}

double Value::requireReal(std::string_view what) const {
  auto n = toNumeric();
  if (!n) throw errNumericExpected(std::string(what) + " = " + image());
  if (n->isReal()) return n->real();
  if (n->isSmallInt()) return static_cast<double>(n->smallInt());
  return n->bigInt().toDouble();
}

std::string Value::requireString(std::string_view what) const {
  if (isString()) return std::string(str());
  if (isInteger() || isReal()) return toDisplayString();
  if (isNull()) return "";
  throw errStringExpected(std::string(what) + " = " + image());
}

std::string Value::typeName() const {
  switch (tag()) {
    case TypeTag::Null: return "null";
    case TypeTag::Integer: return "integer";
    case TypeTag::Real: return "real";
    case TypeTag::String: return "string";
    case TypeTag::List: return "list";
    case TypeTag::Table: return "table";
    case TypeTag::Set: return "set";
    case TypeTag::Record: return record()->type()->name();
    case TypeTag::Proc: return "procedure";
    case TypeTag::CoExpr: return "co-expression";
  }
  return "unknown";
}

std::string Value::image() const {
  switch (tag()) {
    case TypeTag::Null: return "&null";
    case TypeTag::Integer: return isSmallInt() ? std::to_string(smallInt()) : bigInt().toString();
    case TypeTag::Real: return formatReal(real());
    case TypeTag::String: return quoteString(str());
    case TypeTag::List: {
      std::string out = "[";
      bool first = true;
      for (const auto& e : list()->elements()) {
        if (!first) out += ",";
        first = false;
        out += e.image();
      }
      return out + "]";
    }
    case TypeTag::Table: return "table(" + std::to_string(table()->size()) + ")";
    case TypeTag::Set: return "set(" + std::to_string(set()->size()) + ")";
    case TypeTag::Record: {
      std::string out = "record " + record()->type()->name() + "(";
      bool first = true;
      for (const auto& v : record()->values()) {
        if (!first) out += ",";
        first = false;
        out += v.image();
      }
      return out + ")";
    }
    case TypeTag::Proc: return "procedure " + proc()->name();
    case TypeTag::CoExpr: {
      std::ostringstream os;
      os << "co-expression@" << coExpr().get();
      return os.str();
    }
  }
  return "?";
}

std::string Value::toDisplayString() const {
  if (isString()) return std::string(str());
  return image();
}

bool Value::equals(const Value& other) const {
  if (tag() != other.tag()) return false;
  switch (tag()) {
    case TypeTag::Null: return true;
    case TypeTag::Integer:
      if (isSmallInt() != other.isSmallInt()) return false;  // canonical: small never equals big
      return isSmallInt() ? smallInt() == other.smallInt() : bigInt() == other.bigInt();
    case TypeTag::Real: return real() == other.real();
    case TypeTag::String: return str() == other.str();
    case TypeTag::List: return list() == other.list();
    case TypeTag::Table: return table() == other.table();
    case TypeTag::Set: return set() == other.set();
    case TypeTag::Record: return record() == other.record();
    case TypeTag::Proc: return proc() == other.proc();
    case TypeTag::CoExpr: return coExpr() == other.coExpr();
  }
  return false;
}

int Value::compare(const Value& other) const {
  if (tag() != other.tag()) return tag() < other.tag() ? -1 : 1;
  auto cmp3 = [](auto a, auto b) { return a < b ? -1 : (a > b ? 1 : 0); };
  switch (tag()) {
    case TypeTag::Null: return 0;
    case TypeTag::Integer: {
      if (isSmallInt() && other.isSmallInt()) return cmp3(smallInt(), other.smallInt());
      const BigInt a = isSmallInt() ? BigInt{smallInt()} : bigInt();
      const BigInt b = other.isSmallInt() ? BigInt{other.smallInt()} : other.bigInt();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case TypeTag::Real: return cmp3(real(), other.real());
    case TypeTag::String: {
      const int c = str().compare(other.str());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    case TypeTag::List: return cmp3(list().get(), other.list().get());
    case TypeTag::Table: return cmp3(table().get(), other.table().get());
    case TypeTag::Set: return cmp3(set().get(), other.set().get());
    case TypeTag::Record: return cmp3(record().get(), other.record().get());
    case TypeTag::Proc: return cmp3(proc().get(), other.proc().get());
    case TypeTag::CoExpr: return cmp3(coExpr().get(), other.coExpr().get());
  }
  return 0;
}

std::size_t Value::hash() const {
  const std::size_t seed = static_cast<std::size_t>(tag()) * 0x9E3779B97F4A7C15ull;
  auto mix = [seed](std::size_t h) { return seed ^ (h + 0x9E3779B97F4A7C15ull + (seed << 6) + (seed >> 2)); };
  switch (tag()) {
    case TypeTag::Null: return mix(0);
    case TypeTag::Integer:
      return mix(isSmallInt() ? std::hash<std::int64_t>{}(smallInt()) : bigInt().hash());
    case TypeTag::Real: return mix(std::hash<double>{}(real()));
    case TypeTag::String: return mix(std::hash<std::string_view>{}(str()));
    case TypeTag::List: return mix(std::hash<const void*>{}(list().get()));
    case TypeTag::Table: return mix(std::hash<const void*>{}(table().get()));
    case TypeTag::Set: return mix(std::hash<const void*>{}(set().get()));
    case TypeTag::Record: return mix(std::hash<const void*>{}(record().get()));
    case TypeTag::Proc: return mix(std::hash<const void*>{}(proc().get()));
    case TypeTag::CoExpr: return mix(std::hash<const void*>{}(coExpr().get()));
  }
  return 0;
}

std::int64_t Value::size() const {
  switch (tag()) {
    case TypeTag::String: return static_cast<std::int64_t>(str().size());
    case TypeTag::List: return list()->size();
    case TypeTag::Table: return table()->size();
    case TypeTag::Set: return set()->size();
    case TypeTag::Record: return record()->size();
    default: throw errInvalidValue("*x applied to " + typeName());
  }
}

// ---------------------------------------------------------------------
// Arithmetic
// ---------------------------------------------------------------------

namespace ops {

namespace {

/// Numeric operand after coercion; exactly one representation is active.
struct Num {
  enum class Kind { Small, Big, Real } kind;
  std::int64_t i = 0;
  BigInt b;
  double d = 0.0;
};

Num classify(const Value& v, const char* op) {
  auto n = v.toNumeric();
  if (!n) throw errNumericExpected(std::string("operand of ") + op + ": " + v.image());
  if (n->isSmallInt()) return {Num::Kind::Small, n->smallInt(), {}, 0.0};
  if (n->isInteger()) return {Num::Kind::Big, 0, n->bigInt(), 0.0};
  return {Num::Kind::Real, 0, {}, n->real()};
}

double asDouble(const Num& n) {
  switch (n.kind) {
    case Num::Kind::Small: return static_cast<double>(n.i);
    case Num::Kind::Big: return n.b.toDouble();
    case Num::Kind::Real: return n.d;
  }
  return 0.0;
}

BigInt asBig(const Num& n) { return n.kind == Num::Kind::Small ? BigInt{n.i} : n.b; }

/// Apply an integer op with an int64 fast path that falls back to BigInt
/// on overflow or when either side is already big.
template <class SmallOp, class BigOp>
Value intOp(const Num& a, const Num& b, SmallOp smallOp, BigOp bigOp) {
  if (a.kind == Num::Kind::Small && b.kind == Num::Kind::Small) {
    std::int64_t out = 0;
    if (smallOp(a.i, b.i, out)) return Value::integer(out);
  }
  return Value::integer(bigOp(asBig(a), asBig(b)));
}

}  // namespace

Value add(const Value& a, const Value& b) {
  const Num x = classify(a, "+"), y = classify(b, "+");
  if (x.kind == Num::Kind::Real || y.kind == Num::Kind::Real) {
    return Value::real(asDouble(x) + asDouble(y));
  }
  return intOp(
      x, y, [](std::int64_t p, std::int64_t q, std::int64_t& out) { return !__builtin_add_overflow(p, q, &out); },
      [](const BigInt& p, const BigInt& q) { return p + q; });
}

Value sub(const Value& a, const Value& b) {
  const Num x = classify(a, "-"), y = classify(b, "-");
  if (x.kind == Num::Kind::Real || y.kind == Num::Kind::Real) {
    return Value::real(asDouble(x) - asDouble(y));
  }
  return intOp(
      x, y, [](std::int64_t p, std::int64_t q, std::int64_t& out) { return !__builtin_sub_overflow(p, q, &out); },
      [](const BigInt& p, const BigInt& q) { return p - q; });
}

Value mul(const Value& a, const Value& b) {
  const Num x = classify(a, "*"), y = classify(b, "*");
  if (x.kind == Num::Kind::Real || y.kind == Num::Kind::Real) {
    return Value::real(asDouble(x) * asDouble(y));
  }
  return intOp(
      x, y, [](std::int64_t p, std::int64_t q, std::int64_t& out) { return !__builtin_mul_overflow(p, q, &out); },
      [](const BigInt& p, const BigInt& q) { return p * q; });
}

Value div(const Value& a, const Value& b) {
  const Num x = classify(a, "/"), y = classify(b, "/");
  if (x.kind == Num::Kind::Real || y.kind == Num::Kind::Real) {
    const double denom = asDouble(y);
    if (denom == 0.0) throw errDivisionByZero();
    return Value::real(asDouble(x) / denom);
  }
  if (y.kind == Num::Kind::Small && y.i == 0) throw errDivisionByZero();
  if (x.kind == Num::Kind::Small && y.kind == Num::Kind::Small) {
    if (!(x.i == std::numeric_limits<std::int64_t>::min() && y.i == -1)) {
      return Value::integer(x.i / y.i);
    }
  }
  return Value::integer(asBig(x) / asBig(y));
}

Value mod(const Value& a, const Value& b) {
  const Num x = classify(a, "%"), y = classify(b, "%");
  if (x.kind == Num::Kind::Real || y.kind == Num::Kind::Real) {
    const double denom = asDouble(y);
    if (denom == 0.0) throw errDivisionByZero();
    return Value::real(std::fmod(asDouble(x), denom));
  }
  if (y.kind == Num::Kind::Small && y.i == 0) throw errDivisionByZero();
  if (x.kind == Num::Kind::Small && y.kind == Num::Kind::Small) {
    if (!(x.i == std::numeric_limits<std::int64_t>::min() && y.i == -1)) {
      return Value::integer(x.i % y.i);
    }
  }
  return Value::integer(asBig(x) % asBig(y));
}

Value power(const Value& a, const Value& b) {
  const Num x = classify(a, "^"), y = classify(b, "^");
  if (x.kind != Num::Kind::Real && y.kind == Num::Kind::Small && y.i >= 0) {
    return Value::integer(asBig(x).pow(static_cast<std::uint64_t>(y.i)));
  }
  return Value::real(std::pow(asDouble(x), asDouble(y)));
}

Value negate(const Value& a) {
  const Num x = classify(a, "unary -");
  switch (x.kind) {
    case Num::Kind::Small:
      if (x.i != std::numeric_limits<std::int64_t>::min()) return Value::integer(-x.i);
      return Value::integer(-BigInt{x.i});
    case Num::Kind::Big: return Value::integer(-x.b);
    case Num::Kind::Real: return Value::real(-x.d);
  }
  return Value::null();
}

namespace {

/// Numeric three-way compare with coercion; throws if non-numeric.
int numCompare(const Value& a, const Value& b, const char* op) {
  const Num x = classify(a, op), y = classify(b, op);
  if (x.kind == Num::Kind::Real || y.kind == Num::Kind::Real) {
    const double p = asDouble(x), q = asDouble(y);
    return p < q ? -1 : (p > q ? 1 : 0);
  }
  if (x.kind == Num::Kind::Small && y.kind == Num::Kind::Small) {
    return x.i < y.i ? -1 : (x.i > y.i ? 1 : 0);
  }
  const BigInt p = asBig(x), q = asBig(y);
  return p < q ? -1 : (p > q ? 1 : 0);
}

std::optional<Value> succeedWith(bool ok, const Value& result) {
  if (ok) return result;
  return std::nullopt;
}

}  // namespace

std::optional<Value> numLT(const Value& a, const Value& b) {
  return succeedWith(numCompare(a, b, "<") < 0, b);
}
std::optional<Value> numLE(const Value& a, const Value& b) {
  return succeedWith(numCompare(a, b, "<=") <= 0, b);
}
std::optional<Value> numGT(const Value& a, const Value& b) {
  return succeedWith(numCompare(a, b, ">") > 0, b);
}
std::optional<Value> numGE(const Value& a, const Value& b) {
  return succeedWith(numCompare(a, b, ">=") >= 0, b);
}
std::optional<Value> numEQ(const Value& a, const Value& b) {
  return succeedWith(numCompare(a, b, "=") == 0, b);
}
std::optional<Value> numNE(const Value& a, const Value& b) {
  return succeedWith(numCompare(a, b, "~=") != 0, b);
}

std::optional<Value> valEQ(const Value& a, const Value& b) { return succeedWith(a.equals(b), b); }
std::optional<Value> valNE(const Value& a, const Value& b) { return succeedWith(!a.equals(b), b); }

Value concat(const Value& a, const Value& b) {
  // Fast path: both operands already strings — one reserve, each payload
  // copied exactly once; short results land inline (SSO), allocating
  // nothing. requireString would materialize std::string copies of BOTH
  // sides first.
  if (a.isString() && b.isString()) return Value::stringConcat(a.str(), b.str());
  return Value::string(a.requireString("left operand of ||") + b.requireString("right operand of ||"));
}

Value listConcat(const Value& a, const Value& b) {
  if (!a.isList()) throw errListExpected("left operand of |||: " + a.image());
  if (!b.isList()) throw errListExpected("right operand of |||: " + b.image());
  auto out = ListImpl::create(a.list()->elements());
  for (const auto& e : b.list()->elements()) out->put(e);
  return Value::list(std::move(out));
}

}  // namespace ops

}  // namespace congen

// atom.hpp — interned literal values.
//
// Program text mentions the same literals over and over; the compilers
// (interpreter and emitted modules) intern them here once so every
// ConstGen for a given spelling shares one Value representation instead
// of re-materializing a fresh string/bigint per compile.
#pragma once

#include <mutex>
#include <string>
#include <unordered_map>

#include "runtime/value.hpp"

namespace congen {

/// The interned string Value for `s`. Thread-safe; the returned Value
/// shares the table's representation (copying a Value is a refcount
/// bump, not a string copy). Short strings skip the table entirely:
/// they are stored inline in the Value (SSO), so "interning" them
/// would only add a lock and a lookup to produce the same 16 bytes.
inline Value atomString(const std::string& s) {
  if (s.size() <= Value::kSsoCapacity) return Value::string(s);
  static std::mutex mu;
  static std::unordered_map<std::string, Value> table;
  std::lock_guard lock(mu);
  auto [it, inserted] = table.try_emplace(s, Value::null());
  if (inserted) it->second = Value::string(s);
  return it->second;
}

}  // namespace congen

// collections.hpp — Unicon structure types: list, table, set.
//
// Structures have reference semantics (copying a Value aliases the same
// structure) and 1-based indexing with Icon's nonpositive-index convention
// (index 0 or negative counts from the right end: x[-1] is the last
// element). Lists are deques: put/get operate at opposite ends so a list
// doubles as a queue, push/pull make it a stack.
#pragma once

#include <deque>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "runtime/value.hpp"

namespace congen {

/// Unicon list: a mutable deque of values.
class ListImpl : public RcBase {
 public:
  ListImpl() : RcBase(static_cast<std::uint8_t>(TypeTag::List)) {}
  explicit ListImpl(std::deque<Value> elems)
      : RcBase(static_cast<std::uint8_t>(TypeTag::List)), elems_(std::move(elems)) {}

  static ListPtr create() { return makeRc<ListImpl>(); }
  static ListPtr create(std::deque<Value> elems) {
    return makeRc<ListImpl>(std::move(elems));
  }

  [[nodiscard]] std::int64_t size() const noexcept { return static_cast<std::int64_t>(elems_.size()); }
  [[nodiscard]] bool empty() const noexcept { return elems_.empty(); }

  /// Translate an Icon index (1..n, or <=0 from the right) to a 0-based
  /// offset; nullopt if out of range.
  [[nodiscard]] std::optional<std::size_t> resolveIndex(std::int64_t i) const noexcept;

  /// Element access by Icon index; nullopt (failure) if out of range.
  [[nodiscard]] std::optional<Value> at(std::int64_t i) const;
  /// Assign by Icon index; false (failure) if out of range.
  bool assign(std::int64_t i, Value v);

  /// put: append to the right end.
  void put(Value v) { elems_.push_back(std::move(v)); }
  /// push: prepend to the left end.
  void push(Value v) { elems_.push_front(std::move(v)); }
  /// get/pop: remove from the left end; fails (nullopt) when empty.
  std::optional<Value> get();
  /// pull: remove from the right end; fails when empty.
  std::optional<Value> pull();

  [[nodiscard]] const std::deque<Value>& elements() const noexcept { return elems_; }
  std::deque<Value>& elements() noexcept { return elems_; }

 private:
  std::deque<Value> elems_;
};

/// Unicon table: a map with a default value for absent keys.
class TableImpl : public RcBase {
 public:
  explicit TableImpl(Value defaultValue = Value::null())
      : RcBase(static_cast<std::uint8_t>(TypeTag::Table)), default_(std::move(defaultValue)) {}

  static TablePtr create(Value defaultValue = Value::null()) {
    return makeRc<TableImpl>(std::move(defaultValue));
  }

  [[nodiscard]] std::int64_t size() const noexcept { return static_cast<std::int64_t>(map_.size()); }
  /// Lookup; returns the table's default value when absent (Icon t[k]).
  [[nodiscard]] Value lookup(const Value& key) const;
  /// Does the key have an explicit entry?
  [[nodiscard]] bool member(const Value& key) const { return map_.contains(key); }
  void insert(Value key, Value v) { map_[std::move(key)] = std::move(v); }
  /// Remove; true if an entry existed.
  bool erase(const Value& key) { return map_.erase(key) > 0; }
  [[nodiscard]] Value defaultValue() const { return default_; }

  /// Keys in sorted order (Icon key() generates keys; sort for determinism).
  [[nodiscard]] std::vector<Value> sortedKeys() const;

  [[nodiscard]] const std::unordered_map<Value, Value, ValueHash, ValueEq>& entries() const noexcept {
    return map_;
  }

 private:
  std::unordered_map<Value, Value, ValueHash, ValueEq> map_;
  Value default_;
};

/// Unicon set.
class SetImpl : public RcBase {
 public:
  SetImpl() : RcBase(static_cast<std::uint8_t>(TypeTag::Set)) {}

  static SetPtr create() { return makeRc<SetImpl>(); }

  [[nodiscard]] std::int64_t size() const noexcept { return static_cast<std::int64_t>(set_.size()); }
  [[nodiscard]] bool member(const Value& v) const { return set_.contains(v); }
  /// Insert; true if newly added.
  bool insert(Value v) { return set_.insert(std::move(v)).second; }
  bool erase(const Value& v) { return set_.erase(v) > 0; }

  /// Members in sorted order.
  [[nodiscard]] std::vector<Value> sortedMembers() const;

  [[nodiscard]] const std::unordered_set<Value, ValueHash, ValueEq>& members() const noexcept {
    return set_;
  }

 private:
  std::unordered_set<Value, ValueHash, ValueEq> set_;
};

}  // namespace congen

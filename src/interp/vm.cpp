// vm.cpp — VmGen's dispatch loop. The machine's semantics are pinned to
// the tree backend's at three seams:
//
//  * every value operation (binary/unary/index/field/slice/assign/swap)
//    goes through the shared kernel/ops apply helpers — agreement by
//    construction;
//  * constructs the compiler doesn't flatten run as tree-compiled
//    escape subtrees through Drive suspensions;
//  * everything else (failure order, limits, loops, &error conversion)
//    is covered by the differential suite in tests/interp.
//
// Failure resolution: kEfail (or any failed op) resumes the newest
// suspension above the innermost mark's recorded resume height; an
// exhausted region pops the mark, truncates both stacks to the mark's
// heights, and jumps to the mark's failure pc. Resuming a suspension
// restores its saved slice of the value stack, so arbitrary
// mid-expression state survives backtracking.

#include "interp/vm.hpp"

#include <utility>

#include "kernel/basic.hpp"
#include "kernel/compose.hpp"
#include "kernel/error_env.hpp"
#include "kernel/ops.hpp"
#include "obs/runtime_stats.hpp"
#include "runtime/collections.hpp"
#include "runtime/error.hpp"
#include "runtime/governor.hpp"

namespace congen::interp::vm {

VmGen::VmGen(Interpreter& interp, ChunkPtr chunk, ScopePtr scope, const FrameLayout* layout,
             FramePtr frame)
    : interp_(interp),
      chunk_(std::move(chunk)),
      scope_(std::move(scope)),
      layout_(layout),
      frame_(std::move(frame)) {
  ics_.resize(static_cast<std::size_t>(chunk_->nCaches));
  stack_.reserve(16);
  resume_.reserve(8);
  marks_.reserve(8);
  escapes_.reserve(chunk_->escapes.size());
  for (const auto& site : chunk_->escapes) {
    escapes_.push_back(
        interp_.compileSubtree(site.node, scope_, layout_, frame_.get(), site.stmtPos));
  }
}

void VmGen::syncFuel() {
  // Bulk-charge the dispatches accumulated since the last sync. Unlike
  // the tree walker (which batches through the thread-local cell), the
  // VM owns its own counter, so it charges the governor directly — one
  // cold call per kFuelSyncInterval dispatches. The ambient governor is
  // re-read every sync: a setquota() mid-run, or a supervisor
  // terminate(), takes effect within one interval.
  if (governor::stepActive()) {
    if (auto* gov = governor::current()) {
      const std::uint64_t delta = steps_ - fuelSyncBase_;
      fuelSyncBase_ = steps_;  // recorded even if the charge trips
      gov->chargeSteps(delta);
    }
  }
  stepLimitTrip_ = steps_ + kFuelSyncInterval;
}

bool VmGen::doNext(Result& out) {
  if (!obs::metricsEnabled()) [[likely]] return run(out);
  icHitTally_ = icMissTally_ = 0;
  const std::uint64_t stepsBefore = steps_;  // steps_ counts dispatches exactly
  const bool ok = run(out);
  auto& s = obs::VmStats::get();
  if (steps_ != stepsBefore) s.dispatches.add(steps_ - stepsBefore);
  if (icHitTally_ != 0) s.icacheHits.add(icHitTally_);
  if (icMissTally_ != 0) s.icacheMisses.add(icMissTally_);
  return ok;
}

void VmGen::doRestart() {
  stack_.clear();
  resume_.clear();
  marks_.clear();
  loops_.clear();
  argScratch_.clear();
  auxTop_ = -1;
  pc_ = curPc_ = 0;
  steps_ = 0;
  fuelSyncBase_ = 0;
  stepLimitTrip_ = kFuelSyncInterval;
  phase_ = Phase::Start;
  for (auto& g : escapes_) g->restart();
  // Inline caches deliberately survive restarts: the scope-version check
  // keeps them correct, and pooled activations reuse the warm entries.
}

void VmGen::restoreAndPush(const Susp& s, Value v, VarPtr ref) {
  restoreSlice(static_cast<std::size_t>(s.base), s.slice);
  stack_.emplace_back(std::move(v), std::move(ref));
}

VmGen::Susp& VmGen::pushSusp(Susp::Kind kind) {
  // The record may be a retired one whose slice kept its capacity;
  // every scalar field is reinitialized here (retire() already cleared
  // slice and gen), so nothing of the previous occupant shows through.
  Susp& s = resume_.push();
  s.kind = kind;
  s.ascending = true;
  s.produced = false;
  s.opPc = curPc_;
  s.base = markBase();
  s.fastCur = s.fastLimit = s.fastStep = 0;
  s.prevAux = -1;
  s.escapeIdx = -1;
  s.target = -1;
  s.depth = -1;
  s.remaining = 0;
  s.slice.assign(stack_.begin() + s.base, stack_.end());
  return s;
}

void VmGen::popSusp() {
  if (auxTop_ == static_cast<std::int32_t>(resume_.size()) - 1) {
    auxTop_ = resume_.back().prevAux;
  }
  resume_.pop_back();
}

void VmGen::truncResume(std::int32_t h) {
  while (auxTop_ >= h) auxTop_ = resume_[static_cast<std::size_t>(auxTop_)].prevAux;
  resume_.resize(static_cast<std::size_t>(h));
}

void VmGen::performBreak(std::int32_t depth) {
  const LoopRec rec = loops_[static_cast<std::size_t>(depth)];
  marks_.resize(static_cast<std::size_t>(rec.marksH));
  truncResume(rec.suspH);
  shrinkStack(static_cast<std::size_t>(rec.valH));
  loops_.resize(static_cast<std::size_t>(depth));
  // Caller efails: a broken loop contributes no value (LoopGen parity).
}

VmGen::Flow VmGen::performNext(std::int32_t depth, bool inBody) {
  const LoopRec rec = loops_[static_cast<std::size_t>(depth)];
  if (inBody) {
    // `next` from the body: abandon the body region (its mark's failure
    // pc is exactly the loop's continue point) but keep the control
    // expression's suspensions below it alive.
    const MarkRec m = marks_[static_cast<std::size_t>(rec.bodyMarkIdx)];
    pc_ = m.failPc;
    truncResume(m.suspH);
    shrinkStack(static_cast<std::size_t>(m.valH));
    marks_.resize(static_cast<std::size_t>(rec.bodyMarkIdx));
    loops_.resize(static_cast<std::size_t>(depth) + 1);
    return Flow::Forward;
  }
  // `next` from inside the control expression (via an escape subtree).
  marks_.resize(static_cast<std::size_t>(rec.marksH));
  truncResume(rec.suspH);
  shrinkStack(static_cast<std::size_t>(rec.valH));
  const LoopShape& shape = chunk_->loops[static_cast<std::size_t>(rec.shapeIdx)];
  if (shape.topPc >= 0) {
    // while/until/repeat re-evaluate the control from the top.
    loops_.resize(static_cast<std::size_t>(depth) + 1);
    pc_ = shape.topPc;
    return Flow::Forward;
  }
  // `every <e containing next>`: the tree walker livelocks here (the
  // signal re-drives the same control state forever); the machine ends
  // the loop instead. Documented divergence (docs/INTERNALS.md).
  loops_.resize(static_cast<std::size_t>(depth));
  return Flow::Efail;
}

bool VmGen::driveTop(Result& out, Flow& flow) {
  Susp& s = resume_.back();
  curPc_ = s.opPc;
  Result r;
  bool produced;
  if (s.escapeIdx >= 0) {
    const EscapeSite& site = chunk_->escapes[static_cast<std::size_t>(s.escapeIdx)];
    try {
      produced = s.gen->next(r);
    } catch (const BreakSignal&) {
      if (site.loopDepth < 0) throw;  // no enclosing compiled loop: propagate
      performBreak(site.loopDepth);
      flow = Flow::Efail;
      return false;
    } catch (const NextSignal&) {
      if (site.loopDepth < 0) throw;
      flow = performNext(site.loopDepth, site.inLoopBody);
      return false;
    }
  } else {
    produced = s.gen->next(r);
  }
  if (!produced) {
    popSusp();
    flow = Flow::Efail;
    return false;
  }
  if (r.flags != Result::kNone) {
    // suspend/return/fail escaping a driven body (escape subtrees inside
    // procedure bodies): yield it as this activation's result. Return
    // and fail also terminate the activation; suspend re-drives.
    phase_ = (r.flags & (Result::kReturn | Result::kFailBody)) != 0 ? Phase::Done : Phase::ReDrive;
    out = std::move(r);
    return true;
  }
  pc_ = s.opPc + 1;
  restoreAndPush(s, std::move(r.value), std::move(r.ref));
  flow = Flow::Forward;
  return false;
}

bool VmGen::convertError(const IconError& e) {
  if (curPc_ < 0 || static_cast<std::size_t>(curPc_) >= chunk_->convHandler.size()) return false;
  const std::int32_t h = chunk_->convHandler[static_cast<std::size_t>(curPc_)];
  if (h < 0) return false;
  if (!ErrorEnv::convertToFailure(e)) return false;
  // Unwind everything created inside the handler op's operand span
  // [bracket, handler]. All such records are contiguous at the tops of
  // their stacks (anything pushed while executing span pcs carries a
  // span pc). The value stack needs no explicit cleanup: the efail that
  // follows resumes below the span or truncates at a surviving mark.
  const std::int32_t lo = chunk_->code[static_cast<std::size_t>(h)].b;
  const std::int32_t hi = h;
  while (!resume_.empty() && resume_.back().opPc >= lo && resume_.back().opPc <= hi) popSusp();
  while (!marks_.empty() && marks_.back().markPc >= lo && marks_.back().markPc <= hi) {
    marks_.pop_back();
  }
  while (!loops_.empty() && loops_.back().beginPc >= lo && loops_.back().beginPc <= hi) {
    loops_.pop_back();
  }
  return true;
}

// Dispatch strategy. On GCC/Clang the forward loop is token-threaded:
// every op body ends by fetching and computing `goto *kOpLabels[op]`
// *inline* (VM_NEXT replicates the fetch), so each opcode gets its own
// indirect branch and the predictor learns per-op successor patterns —
// funnelling every transition through one shared fetch site would
// alias them all onto a single branch, which is the switch loop's
// exact weakness. Define CONGEN_VM_SWITCH_DISPATCH to force the
// portable switch fallback (useful for debugging: every op body is
// then reachable from one switch head, and a breakpoint on the fetch
// label sees each dispatch). Both modes share the op bodies verbatim
// via VM_OP/VM_NEXT/VM_FAIL, and both count exactly one steps_
// increment per dispatched instruction.
#if !defined(CONGEN_VM_SWITCH_DISPATCH) && (defined(__GNUC__) || defined(__clang__))
#define CONGEN_VM_THREADED 1
#else
#define CONGEN_VM_THREADED 0
#endif

#if CONGEN_VM_THREADED
#define VM_OP(name) op_##name:
// Replicated fetch: identical to the vm_fetch site, one steps_ tick
// per dispatch; the cold periodic fuel sync is shared via vm_step_limit.
//
// INVARIANT: no local with a non-trivial destructor may be in scope at
// a VM_NEXT() — the computed goto is a GNU extension and does NOT run
// destructors when it leaves their block (unlike the plain gotos behind
// VM_FAIL() and vm_fetch, which do). An owning Result/Value local alive
// at VM_NEXT leaks its reference silently. Op bodies therefore close an
// inner brace over any such locals before dispatching.
#define VM_NEXT()                                               \
  do {                                                          \
    curPc_ = pc_;                                               \
    ins = &code[pc_++];                                         \
    if (++steps_ >= stepLimitTrip_) goto vm_step_limit;         \
    goto* kOpLabels[static_cast<std::size_t>(ins->op)];         \
  } while (0)
#else
#define VM_OP(name) case Op::name:
#define VM_NEXT() goto vm_fetch
#endif
#define VM_FAIL() goto vm_fail

bool VmGen::run(Result& out) {
  Flow flow = Flow::Forward;
  switch (phase_) {
    case Phase::Done:
      return false;
    case Phase::Start:
      pc_ = 0;
      flow = Flow::Forward;
      break;
    case Phase::Backtrack:
      flow = Flow::Efail;
      break;
    case Phase::ReDrive: {
      // The previous result was a flagged drive product (suspend through
      // an escape subtree); re-drive that same gen.
      if (driveTop(out, flow)) return true;
      break;
    }
  }

  const Insn* code = chunk_->code.data();
#if CONGEN_VM_THREADED
  // Indexed by Op; order must mirror the enum (pinned by the assert).
  static const void* const kOpLabels[] = {
      &&op_kConst,      &&op_kLoadVar,  &&op_kLoadSlot,     &&op_kLoadLate,
      &&op_kPop,        &&op_kMark,     &&op_kUnmark,       &&op_kJump,
      &&op_kEfail,      &&op_kYield,    &&op_kSuspend,      &&op_kReturn,
      &&op_kFailBody,   &&op_kBinOp,    &&op_kUnOp,         &&op_kAssign,
      &&op_kAugAssign,  &&op_kSwap,     &&op_kIndex,        &&op_kField,
      &&op_kSlice,      &&op_kListLit,  &&op_kInvoke,       &&op_kToBy,
      &&op_kPromote,    &&op_kIn,       &&op_kAltBegin,     &&op_kRaltBegin,
      &&op_kRaltNote,   &&op_kLimitBegin, &&op_kLimitExit,  &&op_kLoopBegin,
      &&op_kLoopBodyMark, &&op_kLoopEnd, &&op_kBreak,       &&op_kNext,
      &&op_kThrowBreak, &&op_kThrowNext, &&op_kEscape,
  };
  static_assert(sizeof(kOpLabels) / sizeof(kOpLabels[0]) == kOpCount,
                "dispatch table out of sync with the Op enum");
#endif
  const Insn* ins = nullptr;
  for (;;) {
    try {
      for (;;) {
        if (flow == Flow::Efail) {
          bool resolved = false;
          while (!resolved) {
            const std::int32_t floor = marks_.empty() ? 0 : marks_.back().suspH;
            if (static_cast<std::int32_t>(resume_.size()) > floor) {
              Susp& s = resume_.back();
              switch (s.kind) {
                case Susp::Kind::Drive: {
                  Flow f = Flow::Forward;
                  if (driveTop(out, f)) return true;
                  if (f == Flow::Forward) resolved = true;
                  break;
                }
                case Susp::Kind::Range: {
                  std::int64_t nxt = 0;
                  if (__builtin_add_overflow(s.fastCur, s.fastStep, &nxt) ||
                      (s.ascending ? nxt > s.fastLimit : nxt < s.fastLimit)) {
                    popSusp();
                  } else {
                    s.fastCur = nxt;
                    pc_ = s.opPc + 1;
                    restoreSlice(static_cast<std::size_t>(s.base), s.slice);
                    stack_.emplace_back(Value::integer(nxt), nullptr);
                    resolved = true;
                  }
                  break;
                }
                case Susp::Kind::Alt: {
                  // One shot: jump to the right branch with the left's
                  // entry stack restored.
                  pc_ = s.target;
                  restoreSlice(static_cast<std::size_t>(s.base), s.slice);
                  popSusp();
                  resolved = true;
                  break;
                }
                case Susp::Kind::Ralt: {
                  if (s.produced) {
                    // Last pass produced something: run e again.
                    s.produced = false;
                    pc_ = s.opPc + 1;
                    restoreSlice(static_cast<std::size_t>(s.base), s.slice);
                    resolved = true;
                  } else {
                    popSusp();
                  }
                  break;
                }
                case Susp::Kind::Limit: {
                  popSusp();  // bookkeeping only; failure flows past it
                  break;
                }
              }
            } else if (!marks_.empty()) {
              const MarkRec m = marks_.back();
              marks_.pop_back();
              truncResume(m.suspH);
              shrinkStack(static_cast<std::size_t>(m.valH));
              pc_ = m.failPc;
              resolved = true;
            } else {
              phase_ = Phase::Done;
              return false;  // machine failure; Gen auto-restart re-arms
            }
          }
          flow = Flow::Forward;
          continue;
        }

        // Forward dispatch. Within an op body: VM_NEXT() executes the
        // next instruction, VM_FAIL() efails the current one, `return`
        // yields. Jump ops assign pc_ directly. Both dispatch modes run
        // this single fetch site, so steps_ counts dispatches exactly.
#if CONGEN_VM_THREADED
        VM_NEXT();
      vm_step_limit:
        // Not a limit at all: the periodic fuel sync point. syncFuel may
        // throw the typed 810/816 quota error (caught by the handler
        // below like any run-time error — &error conversion applies);
        // otherwise re-dispatch the already-fetched instruction.
        syncFuel();
        goto* kOpLabels[static_cast<std::size_t>(ins->op)];
#else
      vm_fetch:
        curPc_ = pc_;
        ins = &code[pc_++];
        if (++steps_ >= stepLimitTrip_) [[unlikely]] {
          syncFuel();
        }
        switch (ins->op) {
#endif
            VM_OP(kConst)
              stack_.emplace_back(chunk_->consts[static_cast<std::size_t>(ins->a)], nullptr);
              VM_NEXT();
            VM_OP(kLoadVar) {
              const VarPtr& v = chunk_->vars[static_cast<std::size_t>(ins->a)];
              const Value* c = v->cell();  // plain cells skip the virtual get
              if (ins->b != 0) {
                // Consumer is ref-oblivious.
                stack_.emplace_back(c != nullptr ? *c : v->get(), nullptr);
              } else {
                stack_.emplace_back(c != nullptr ? *c : v->get(), v);
              }
              VM_NEXT();
            }
            VM_OP(kLoadSlot) {
              const VarPtr& v = frame_->var(static_cast<std::size_t>(ins->a));
              const Value* c = v->cell();
              if (ins->b != 0) {
                stack_.emplace_back(c != nullptr ? *c : v->get(), nullptr);
              } else {
                stack_.emplace_back(c != nullptr ? *c : v->get(), v);
              }
              VM_NEXT();
            }
            VM_OP(kLoadLate) {
              // The yielded ref is always the LateBoundVar (assignment
              // through it re-resolves); the cache accelerates the value
              // read only. Version is read before resolving, so a racing
              // declare makes the entry stale, never wrong.
              const VarPtr& lv = frame_->var(static_cast<std::size_t>(ins->a));
              ICEntry& ic = ics_[static_cast<std::size_t>(ins->b)];
              const std::uint64_t ver = scope_->version();
              if (ic.ver != ver) {
                ++icMissTally_;
                ic.target = static_cast<LateBoundVar*>(lv.get())->target();
                ic.ver = ver;
              } else {
                ++icHitTally_;
              }
              stack_.emplace_back(ic.target->get(), lv);
              VM_NEXT();
            }
            VM_OP(kPop)
              stack_.pop_back();
              VM_NEXT();
            VM_OP(kMark)
              marks_.push_back({ins->a, static_cast<std::int32_t>(resume_.size()),
                                static_cast<std::int32_t>(stack_.size()), curPc_});
              VM_NEXT();
            VM_OP(kUnmark) {
              // Leave the bounded expression's single result; drop its
              // pending resumptions (the expression is bounded).
              const MarkRec m = marks_.back();
              marks_.pop_back();
              truncResume(m.suspH);
              VM_NEXT();
            }
            VM_OP(kJump)
              pc_ = ins->a;
              VM_NEXT();
            VM_OP(kEfail)
              VM_FAIL();
            VM_OP(kYield) {
              Entry& e = stack_.back();
              out.value = std::move(e.v);
              out.ref = std::move(e.ref);
              out.flags = Result::kNone;
              stack_.pop_back();
              phase_ = Phase::Backtrack;
              return true;
            }
            VM_OP(kSuspend) {
              Entry& e = stack_.back();
              out.value = std::move(e.v);
              out.ref = std::move(e.ref);
              out.flags = Result::kSuspend;
              stack_.pop_back();
              phase_ = Phase::Backtrack;
              return true;
            }
            VM_OP(kReturn) {
              Entry& e = stack_.back();
              out.value = std::move(e.v);
              out.ref = std::move(e.ref);
              out.flags = Result::kReturn;
              stack_.pop_back();
              phase_ = Phase::Done;
              return true;
            }
            VM_OP(kFailBody)
              out.set(Value::null(), nullptr, Result::kFailBody);
              phase_ = Phase::Done;
              return true;
            VM_OP(kBinOp) {
              const std::size_t n = stack_.size();
              Entry& ea = stack_[n - 2];
              Entry& eb = stack_[n - 1];
              if (ea.v.isSmallInt() && eb.v.isSmallInt()) {
                // Small-int fast path. Must match the generic ops path
                // exactly: arithmetic falls back on overflow (BigInt
                // promotion), comparisons yield the right operand or
                // fail. Everything else drops to applyBinary below.
                const std::int64_t x = ea.v.smallInt(), y = eb.v.smallInt();
                std::int64_t r = 0;
                bool handled = true, isCmp = false, cmp = false;
                switch (static_cast<BinKind>(ins->a)) {
                  case BinKind::Add: handled = !__builtin_add_overflow(x, y, &r); break;
                  case BinKind::Sub: handled = !__builtin_sub_overflow(x, y, &r); break;
                  case BinKind::Mul: handled = !__builtin_mul_overflow(x, y, &r); break;
                  case BinKind::NumLT: isCmp = true; cmp = x < y; break;
                  case BinKind::NumLE: isCmp = true; cmp = x <= y; break;
                  case BinKind::NumGT: isCmp = true; cmp = x > y; break;
                  case BinKind::NumGE: isCmp = true; cmp = x >= y; break;
                  case BinKind::NumEQ: isCmp = true; cmp = x == y; break;
                  case BinKind::NumNE: isCmp = true; cmp = x != y; break;
                  default: handled = false; break;
                }
                if (handled) {
                  if (isCmp) {
                    if (!cmp) {
                      shrinkStack(n - 2);
                      VM_FAIL();  // comparison failed: goal-directed failure
                    }
                    r = y;
                  }
                  stack_.pop_back();
                  ea.v = Value::integer(r);
                  ea.ref = nullptr;
                  VM_NEXT();
                }
              }
              {
                auto res = applyBinary(static_cast<BinKind>(ins->a), ea.v, eb.v);
                if (!res) {
                  shrinkStack(n - 2);
                  VM_FAIL();
                }
                stack_.pop_back();
                ea.v = std::move(*res);
                ea.ref = nullptr;
              }
              VM_NEXT();
            }
            VM_OP(kUnOp) {
              {
                Entry& t = stack_.back();
                Result opnd(std::move(t.v), std::move(t.ref));
                auto res = applyUnary(static_cast<UnKind>(ins->a), opnd);
                if (!res) {
                  stack_.pop_back();
                  VM_FAIL();
                }
                t.v = std::move(res->value);
                t.ref = std::move(res->ref);
              }
              VM_NEXT();
            }
            VM_OP(kAssign)
            VM_OP(kAugAssign)
            VM_OP(kSwap) {
              {
                const std::size_t n = stack_.size();
                Result l(std::move(stack_[n - 2].v), std::move(stack_[n - 2].ref));
                Result r(std::move(stack_[n - 1].v), std::move(stack_[n - 1].ref));
                std::optional<Result> res;
                if (ins->op == Op::kAssign) {
                  res = assignTuple(l, r);
                } else if (ins->op == Op::kSwap) {
                  res = swapTuple(l, r);
                } else {
                  res = augAssignTuple(static_cast<BinKind>(ins->a), l, r);
                }
                if (!res) {
                  shrinkStack(n - 2);
                  VM_FAIL();
                }
                stack_.pop_back();
                Entry& dst = stack_.back();
                dst.v = std::move(res->value);
                dst.ref = std::move(res->ref);
              }
              VM_NEXT();
            }
            VM_OP(kIndex) {
              {
                const std::size_t n = stack_.size();
                Result c(std::move(stack_[n - 2].v), std::move(stack_[n - 2].ref));
                Result i(std::move(stack_[n - 1].v), std::move(stack_[n - 1].ref));
                auto res = indexTuple(c, i);
                if (!res) {
                  shrinkStack(n - 2);
                  VM_FAIL();
                }
                stack_.pop_back();
                Entry& dst = stack_.back();
                dst.v = std::move(res->value);
                dst.ref = std::move(res->ref);
              }
              VM_NEXT();
            }
            VM_OP(kField) {
              {
                Entry& t = stack_.back();
                Result o(std::move(t.v), std::move(t.ref));
                auto res = fieldTuple(o, chunk_->consts[static_cast<std::size_t>(ins->a)].str());
                if (!res) {
                  stack_.pop_back();
                  VM_FAIL();
                }
                t.v = std::move(res->value);
                t.ref = std::move(res->ref);
              }
              VM_NEXT();
            }
            VM_OP(kSlice) {
              {
                const std::size_t n = stack_.size();
                auto res = sliceTuple(stack_[n - 3].v, stack_[n - 2].v, stack_[n - 1].v);
                if (!res) {
                  shrinkStack(n - 3);
                  VM_FAIL();
                }
                shrinkStack(n - 2);
                Entry& dst = stack_.back();
                dst.v = std::move(*res);
                dst.ref = nullptr;
              }
              VM_NEXT();
            }
            VM_OP(kListLit) {
              {
                const std::size_t n = stack_.size();
                const std::size_t first = n - static_cast<std::size_t>(ins->a);
                auto list = ListImpl::create();
                for (std::size_t i = first; i < n; ++i) list->put(stack_[i].v);
                shrinkStack(first);
                stack_.emplace_back(Value::list(std::move(list)), nullptr);
              }
              VM_NEXT();
            }
            VM_OP(kInvoke) {
              const std::size_t n = stack_.size();
              const std::size_t nargs = static_cast<std::size_t>(ins->a);
              const std::size_t calleeIdx = n - 1 - nargs;
              // Borrow the callee in place — the resize below is what
              // destroys its stack entry, so every use of `f` must come
              // first. Moving it out instead costs a variant move + an
              // extra destroy per call, which backtracking pays per
              // candidate.
              const Value& f = stack_[calleeIdx].v;
              if (!f.isProc()) throw errCallableExpected(f.image());
              if (argScratch_.size() == nargs) {
                // Reuse the scratch storage: move-assign over the old
                // args instead of destroy + reconstruct.
                for (std::size_t i = 0; i < nargs; ++i) {
                  argScratch_[i] = std::move(stack_[calleeIdx + 1 + i].v);
                }
              } else {
                argScratch_.clear();
                argScratch_.reserve(nargs);
                for (std::size_t i = calleeIdx + 1; i < n; ++i) {
                  argScratch_.push_back(std::move(stack_[i].v));  // resized away below
                }
              }
              if (const auto& nf = f.proc()->nativeFn()) {
                {
                  // At-most-one-result native: no suspension needed.
                  auto r = nf(argScratch_);
                  if (!r) {
                    // Keep the callee: the efail resolution truncates the
                    // stack anyway, and a backtracking restore whose slice
                    // holds this callee finds it in place (restoreSlice)
                    // instead of re-copying the proc every candidate.
                    shrinkStack(calleeIdx + 1);
                    VM_FAIL();
                  }
                  shrinkStack(calleeIdx);
                  stack_.emplace_back(std::move(*r), nullptr);
                }
                VM_NEXT();
              }
              Flow fl = Flow::Forward;
              {
                auto gen = f.proc()->invoke(std::move(argScratch_));
                argScratch_ = {};
                shrinkStack(calleeIdx);
                Susp& s = pushSusp(Susp::Kind::Drive);
                s.gen = std::move(gen);
                if (driveTop(out, fl)) return true;
              }
              if (fl == Flow::Efail) VM_FAIL();
              VM_NEXT();
            }
            VM_OP(kToBy) {
              const std::size_t n = stack_.size();
              const Value& fromV = stack_[n - 3].v;
              const Value& toV = stack_[n - 2].v;
              const Value& byV = stack_[n - 1].v;
              if (fromV.isSmallInt() && toV.isSmallInt() && byV.isSmallInt()) {
                const std::int64_t step = byV.smallInt();
                if (step == 0) throw errInvalidValue("to-by with zero step");
                const std::int64_t cur = fromV.smallInt();
                const std::int64_t lim = toV.smallInt();
                const bool asc = step > 0;
                shrinkStack(n - 3);
                if (asc ? cur > lim : cur < lim) VM_FAIL();  // empty range
                Susp& s = pushSusp(Susp::Kind::Range);
                s.fastCur = cur;
                s.fastLimit = lim;
                s.fastStep = step;
                s.ascending = asc;
                stack_.emplace_back(Value::integer(cur), nullptr);
                VM_NEXT();
              }
              Flow fl = Flow::Forward;
              {
                auto gen = RangeGen::create(fromV, toV, byV);  // may throw: type checks
                shrinkStack(n - 3);
                Susp& s = pushSusp(Susp::Kind::Drive);
                s.gen = std::move(gen);
                if (driveTop(out, fl)) return true;
              }
              if (fl == Flow::Efail) VM_FAIL();
              VM_NEXT();
            }
            VM_OP(kPromote) {
              Flow fl = Flow::Forward;
              {
                Value v = std::move(stack_.back().v);
                stack_.pop_back();
                auto gen = PromoteGen::makeElementGen(v);  // may throw: !x on a non-sequence
                Susp& s = pushSusp(Susp::Kind::Drive);
                s.gen = std::move(gen);
                if (driveTop(out, fl)) return true;
              }
              if (fl == Flow::Efail) VM_FAIL();
              VM_NEXT();
            }
            VM_OP(kIn) {
              Entry& t = stack_.back();
              const VarPtr& var = (ins->b & 1) != 0
                                      ? frame_->var(static_cast<std::size_t>(ins->a))
                                      : chunk_->vars[static_cast<std::size_t>(ins->a)];
              if (Value* c = var->cell()) {
                *c = t.v;  // plain cells skip the virtual set
              } else {
                var->set(t.v);
              }
              // Value stays; the result becomes the variable — unless the
              // compiler proved the entry is discarded (b bit 1), which
              // skips a shared_ptr copy per backtracking step in the
              // normalized `(x in e) & rest` conjunction.
              if ((ins->b & 2) == 0) t.ref = var;
              VM_NEXT();
            }
            VM_OP(kAltBegin) {
              Susp& s = pushSusp(Susp::Kind::Alt);
              s.target = ins->a;
              VM_NEXT();  // fall into the left branch
            }
            VM_OP(kRaltBegin) {
              Susp& s = pushSusp(Susp::Kind::Ralt);
              s.depth = ins->a;
              s.prevAux = auxTop_;
              auxTop_ = static_cast<std::int32_t>(resume_.size()) - 1;
              VM_NEXT();
            }
            VM_OP(kRaltNote) {
              for (std::int32_t i = auxTop_; i >= 0;
                   i = resume_[static_cast<std::size_t>(i)].prevAux) {
                Susp& s = resume_[static_cast<std::size_t>(i)];
                if (s.kind == Susp::Kind::Ralt && s.depth == ins->a) {
                  s.produced = true;
                  break;
                }
              }
              VM_NEXT();
            }
            VM_OP(kLimitBegin) {
              std::int64_t nvals = 0;
              {
                Entry bound = std::move(stack_.back());
                stack_.pop_back();
                nvals = bound.v.requireInt64("limit bound");
              }
              if (nvals <= 0) VM_FAIL();  // e \ 0 produces nothing
              Susp& s = pushSusp(Susp::Kind::Limit);
              s.depth = ins->a;
              s.remaining = nvals;
              s.prevAux = auxTop_;
              auxTop_ = static_cast<std::int32_t>(resume_.size()) - 1;
              pc_ = ins->b;  // jump back to the limited expression
              VM_NEXT();
            }
            VM_OP(kLimitExit) {
              for (std::int32_t i = auxTop_; i >= 0;
                   i = resume_[static_cast<std::size_t>(i)].prevAux) {
                Susp& s = resume_[static_cast<std::size_t>(i)];
                if (s.kind == Susp::Kind::Limit && s.depth == ins->a) {
                  if (--s.remaining == 0) {
                    // Budget spent: drop the record and every suspension
                    // the limited expression still holds above it.
                    truncResume(i);
                  }
                  break;
                }
              }
              VM_NEXT();
            }
            VM_OP(kLoopBegin)
              loops_.push_back({static_cast<std::int32_t>(marks_.size()),
                                static_cast<std::int32_t>(resume_.size()),
                                static_cast<std::int32_t>(stack_.size()), -1, ins->a, curPc_});
              VM_NEXT();
            VM_OP(kLoopBodyMark)
              marks_.push_back({ins->a, static_cast<std::int32_t>(resume_.size()),
                                static_cast<std::int32_t>(stack_.size()), curPc_});
              loops_.back().bodyMarkIdx = static_cast<std::int32_t>(marks_.size()) - 1;
              VM_NEXT();
            VM_OP(kLoopEnd)
              loops_.pop_back();
              VM_NEXT();
            VM_OP(kBreak)
              performBreak(ins->a);
              VM_FAIL();  // a broken loop fails
            VM_OP(kNext) {
              if (performNext(ins->a, ins->b != 0) == Flow::Efail) VM_FAIL();
              VM_NEXT();
            }
            VM_OP(kThrowBreak)
              throw BreakSignal{};
            VM_OP(kThrowNext)
              throw NextSignal{};
            VM_OP(kEscape) {
              GenPtr& gen = escapes_[static_cast<std::size_t>(ins->a)];
              gen->restart();  // shared per site; one live suspension per site
              Susp& s = pushSusp(Susp::Kind::Drive);
              s.gen = gen;
              s.escapeIdx = ins->a;
              Flow fl = Flow::Forward;
              if (driveTop(out, fl)) return true;
              if (fl == Flow::Efail) VM_FAIL();
              VM_NEXT();
            }
#if !CONGEN_VM_THREADED
        }
#endif
      vm_fail:
        flow = Flow::Efail;
      }
    } catch (const IconError& e) {
      if (!convertError(e)) throw;
      flow = Flow::Efail;
    }
  }
}

#undef VM_OP
#undef VM_NEXT
#undef VM_FAIL

}  // namespace congen::interp::vm

// resolver.hpp — the name-resolution pass between parse and Gen
// construction.
//
// For each procedure, resolve() classifies every identifier in the body
// exactly once — local slot, global, builtin, or late-bound — and
// annotates the AST nodes (ast::Node::res / ::slot) so the frame-mode
// compiler emits direct slot references instead of walking a scope chain
// per name. The resulting FrameLayout is the static shape of the
// procedure's activation frame (interp/frame.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "frontend/ast.hpp"
#include "interp/scope.hpp"

namespace congen::interp {

/// Static frame shape for one procedure: slot i of every activation holds
/// the variable named slotNames[i]. Parameters occupy slots [0, nParams).
struct FrameLayout {
  std::vector<std::string> slotNames;
  std::vector<bool> late;  // late[i]: slot i re-checks globals per access
  std::unordered_map<std::string, std::int32_t> slots;
  std::size_t nParams = 0;
  /// False when the body creates co-expressions (<> / |<> / |>): their
  /// environments capture frame cells beyond the call, so the body tree
  /// must not be parked and rebound.
  bool poolable = true;

  [[nodiscard]] std::size_t slotCount() const noexcept { return slotNames.size(); }
  [[nodiscard]] std::int32_t slotOf(const std::string& name) const {
    const auto it = slots.find(name);
    return it == slots.end() ? -1 : it->second;
  }
};

/// Resolve a procedure: parameters from `params` (a ParamList node; may be
/// null for a parameterless body), then every name in `body`. Mutates the
/// body's nodes in place (res/slot annotations). `globals` decides the
/// Global vs Late split for free names — stable because Scope::declare
/// keeps cells on redeclaration.
FrameLayout resolve(const ast::NodePtr& params, const ast::NodePtr& body, const Scope& globals);

}  // namespace congen::interp

// compiler.hpp — resolver-annotated AST → bytecode chunk.
//
// The same two modes as the tree compiler (interpreter.cpp):
//  - scope mode (top-level statements, eval): identifiers resolve against
//    a Scope chain at COMPILE time and bake as direct VarPtr loads, with
//    implicit declaration on first use;
//  - frame mode (procedure bodies): the PR 3 resolution pass has already
//    classified every name, so identifiers compile to kLoadSlot /
//    kLoadLate against the activation frame, and poolability/slot counts
//    carry over from the FrameLayout unchanged.
//
// Compile order equals tree-compile order node for node (declarations
// and temp bindings are compile-time side effects), even where the
// emitted layout differs (e1\e2 emits e1 first but jumps to evaluate the
// bound first, exactly as LimitGen does).
#pragma once

#include <string>

#include "interp/chunk.hpp"
#include "interp/interpreter.hpp"
#include "interp/resolver.hpp"

namespace congen::interp::vm {

class ChunkCompiler {
 public:
  /// Scope mode.
  ChunkCompiler(Interpreter& interp, ScopePtr scope)
      : interp_(interp), scope_(std::move(scope)) {}

  /// Frame mode: `scope` is the global scope (the fallback chain the
  /// tree compiler uses for resolved-away names).
  ChunkCompiler(Interpreter& interp, ScopePtr scope, const FrameLayout* layout)
      : interp_(interp), scope_(std::move(scope)), layout_(layout) {}

  /// One chunk per procedure body (frame mode).
  ChunkPtr compileBody(const std::string& name, const ast::NodePtr& body);

  /// Expression chunk ending in kYield (eval).
  ChunkPtr compileExpr(const ast::NodePtr& e);

  /// Top-level statement chunk ending in kYield (loadProgram).
  ChunkPtr compileStmt(const ast::NodePtr& s);

 private:
  struct LoopCtx {
    std::int32_t shapeIdx;
    bool inBody = false;
  };

  // -- emission ---------------------------------------------------------
  std::int32_t emit(Op op, std::int32_t a = 0, std::int32_t b = 0);
  /// Emit kPop, first stripping the variable-ness of the entry being
  /// discarded when the producing instruction is statically the one just
  /// emitted: a kIn keeps its cell assignment but skips binding the
  /// stack entry to the variable (b bit 1), and a kLoadVar/kLoadSlot
  /// pushes ref-free (b = 1). Paths that jump over the producer land on
  /// the kPop itself, so only entries this kPop discards are affected.
  std::int32_t emitPop();
  [[nodiscard]] std::int32_t here() const noexcept {
    return static_cast<std::int32_t>(chunk_.code.size());
  }
  void patchA(std::int32_t pc, std::int32_t v) { chunk_.code[static_cast<std::size_t>(pc)].a = v; }
  void patchB(std::int32_t pc, std::int32_t v) { chunk_.code[static_cast<std::size_t>(pc)].b = v; }

  std::int32_t constIdx(const Value& v);
  std::int32_t varIdx(const VarPtr& var, const std::string& name);
  ChunkPtr finish();

  // -- per-node emitters (mirror the tree compiler's switch) ------------
  void expr(const ast::NodePtr& n);
  void valueOperand(const ast::NodePtr& n);
  void statement(const ast::NodePtr& n);
  void identifier(const ast::NodePtr& n);
  void slotLoad(std::int32_t slot);
  void binary(const ast::NodePtr& n);
  void unary(const ast::NodePtr& n);
  void loop(const ast::NodePtr& n, LoopShape::Kind kind);
  void escape(const ast::NodePtr& n, bool stmtPos);

  Interpreter& interp_;
  ScopePtr scope_;
  const FrameLayout* layout_ = nullptr;  // frame mode only
  Chunk chunk_;
  std::int32_t curLine_ = 0;
  std::vector<LoopCtx> loopCtx_;
  std::int32_t limitDepth_ = 0;
  std::int32_t raltDepth_ = 0;
  std::unordered_map<std::string, std::int32_t> constKeys_;
  std::unordered_map<const Var*, std::int32_t> varKeys_;
};

}  // namespace congen::interp::vm

#include "interp/resolver.hpp"

#include "builtins/builtins.hpp"

namespace congen::interp {

using ast::Kind;
using ast::NodePtr;
using ast::Res;

namespace {

class Resolver {
 public:
  Resolver(FrameLayout& layout, const Scope& globals) : layout_(layout), globals_(globals) {}

  /// Pass 1: every binding occurrence (parameters, `local` declarations,
  /// bound-iteration temporaries) claims a slot. Icon locals are
  /// procedure-scoped, not block-scoped: one flat frame per body, so a
  /// declaration anywhere binds the name everywhere in the body.
  void collectBindings(const NodePtr& n) {
    if (!n) return;
    switch (n->kind) {
      case Kind::VarDecl:
      case Kind::BoundIter:
        annotate(n, addSlot(n->text, /*late=*/false));
        break;
      case Kind::Def:  // nested procedure: its own resolution, later
        return;
      default:
        break;
    }
    for (const auto& k : n->kids) collectBindings(k);
  }

  /// Pass 2: classify every reference. Free names bind to the global
  /// cell when one exists now, to an interned builtin constant next, and
  /// otherwise to a Late slot — a global may still appear at run time,
  /// and until it does the slot acts as Unicon's implicit local.
  void classifyRefs(const NodePtr& n) {
    if (!n) return;
    switch (n->kind) {
      case Kind::Ident:
      case Kind::TempRef:
        classifyName(n, n->text);
        return;
      case Kind::NativeInvoke: {
        classifyName(n, n->text);  // the callee name rides on the node itself
        // recv::f(...) — a literal `this` receiver is calling convention,
        // not a variable reference.
        bool first = true;
        for (const auto& k : n->kids) {
          const bool isThis = first && k->kind == Kind::Ident && k->text == "this";
          if (!isThis) classifyRefs(k);
          first = false;
        }
        return;
      }
      case Kind::Field:  // text is a field name, kids[0] the object
      case Kind::VarDecl:
      case Kind::BoundIter:
        break;  // binding text handled in pass 1; still resolve children
      case Kind::Def:
        return;
      default:
        break;
    }
    for (const auto& k : n->kids) classifyRefs(k);
  }

  void noteCoExprUse() { layout_.poolable = false; }

 private:
  std::int32_t addSlot(const std::string& name, bool late) {
    const auto it = layout_.slots.find(name);
    if (it != layout_.slots.end()) return it->second;  // redeclaration keeps its slot
    const auto slot = static_cast<std::int32_t>(layout_.slotNames.size());
    layout_.slotNames.push_back(name);
    layout_.late.push_back(late);
    layout_.slots.emplace(name, slot);
    return slot;
  }

  void classifyName(const NodePtr& n, const std::string& name) {
    if (const auto slot = layout_.slotOf(name); slot >= 0) {
      annotate(n, slot);
      return;
    }
    if (globals_.lookup(name)) {
      n->res = Res::Global;
      n->slot = -1;
      return;
    }
    if (builtins::lookupConst(name)) {
      n->res = Res::Builtin;
      n->slot = -1;
      return;
    }
    annotate(n, addSlot(name, /*late=*/true));
  }

  void annotate(const NodePtr& n, std::int32_t slot) {
    n->slot = slot;
    n->res = layout_.late[static_cast<std::size_t>(slot)] ? Res::Late : Res::Slot;
  }

  FrameLayout& layout_;
  const Scope& globals_;
};

/// Does the body create first-class generators? Their environment capture
/// outlives the call, which forbids frame reuse.
bool containsCoExprCreate(const NodePtr& n) {
  if (!n) return false;
  if (n->kind == Kind::Def) return false;  // nested proc: its own frame
  if (n->kind == Kind::Unary && (n->text == "<>" || n->text == "|<>" || n->text == "|>")) {
    return true;
  }
  for (const auto& k : n->kids) {
    if (containsCoExprCreate(k)) return true;
  }
  return false;
}

}  // namespace

FrameLayout resolve(const NodePtr& params, const NodePtr& body, const Scope& globals) {
  FrameLayout layout;
  Resolver r(layout, globals);
  if (params) {
    // Parameters claim the leading slots in declaration order.
    for (const auto& p : params->kids) {
      p->slot = static_cast<std::int32_t>(layout.slotNames.size());
      p->res = ast::Res::Slot;
      layout.slotNames.push_back(p->text);
      layout.late.push_back(false);
      layout.slots.emplace(p->text, p->slot);
    }
    layout.nParams = params->kids.size();
  }
  r.collectBindings(body);
  r.classifyRefs(body);
  if (containsCoExprCreate(body)) r.noteCoExprUse();
  return layout;
}

}  // namespace congen::interp

// chunk.hpp — the compact bytecode form of a resolved procedure body.
//
// The third execution path (ROADMAP item 1): where the tree-walker
// re-enters a chain of virtual doNext() calls per produced element, the
// VM re-enters a flat dispatch loop at a saved pc. A Chunk is the static
// half of that: fixed-width instructions, a constant table that reuses
// the process-wide interned atoms and builtin constants, a line map for
// diagnostics, and the side tables the resumable machine needs —
// loop shapes, escape sites (subtrees that still run on the tree
// kernel), and the &error conversion-handler map.
//
// Goal-directed failure is a jump target here: `kMark` opens a bounded
// region with a failure continuation pc, and `kEfail` either resumes the
// innermost suspension above the current mark or pops the mark and jumps
// to its failure pc (the paper's outcome protocol, flattened).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "frontend/ast.hpp"
#include "kernel/ops.hpp"  // BinKind / UnKind — shared with the tree kernel
#include "runtime/value.hpp"

namespace congen::interp::vm {

using congen::BinKind;
using congen::UnKind;

enum class Op : std::uint8_t {
  // -- values ----------------------------------------------------------
  kConst,     // a: constant index — push {value}
  kLoadVar,   // a: var-table index — push {var->get(), var}; b=1: ref-stripped
  kLoadSlot,  // a: frame slot — push {cell->get(), cell}; b=1: ref-stripped
  kLoadLate,  // a: frame slot (a LateBoundVar), b: inline-cache index
  kPop,       // discard the top stack entry

  // -- control ---------------------------------------------------------
  kMark,      // a: failure pc — open a bounded region
  kUnmark,    // close the innermost region, dropping its suspensions
  kJump,      // a: target pc
  kEfail,     // goal-directed failure: resume or unwind
  kYield,     // top-level expression result (scope-mode chunks)
  kSuspend,   // `suspend e`: yield the top entry flagged kSuspend
  kReturn,    // `return e`: yield flagged kReturn, then terminate
  kFailBody,  // `fail`: yield {&null, kFailBody}, then terminate

  // -- operators (b = bracket start pc: the &error conversion span) ----
  kBinOp,      // a: BinKind — pop r, l; push fn(l,r) or efail
  kUnOp,       // a: UnKind — pop r; push fn(r) or efail
  kAssign,     // pop r, l; l.ref->set(r.value); push {r.value, l.ref}
  kAugAssign,  // a: BinKind — pop r, l; combine-and-store
  kSwap,       // pop r, l; exchange; push {old r, l.ref}
  kIndex,      // pop i, c; push element (trapped var) or efail
  kField,      // a: field-name constant index — pop o; push field var
  kSlice,      // pop to, from, c; push section or efail
  kListLit,    // a: element count — pop n entries; push the list
  kInvoke,     // a: argc — pop args and callee; drive the call
  kToBy,       // pop by, to, from; inline int range or drive a RangeGen

  // -- generators ------------------------------------------------------
  kPromote,    // !e — pop v; drive PromoteGen::makeElementGen(v)
  kIn,         // (x in e) — a: slot or var index, b: 1 = frame slot;
               // assign the top value to the var, re-ref the top entry
  kAltBegin,   // a: pc of the second branch — push an Alt suspension
  kRaltBegin,  // |e — a: static ralt depth — push a Ralt record
  kRaltNote,   // a: ralt depth — mark the pass as productive
  kLimitBegin, // e1\e2 — a: static limit depth, b: pc of e1 — pop the
               // bound, push a Limit record, jump to e1
  kLimitExit,  // a: limit depth — count one value through the limit

  // -- loops -----------------------------------------------------------
  kLoopBegin,    // a: loop-shape index — push a loop record
  kLoopBodyMark, // a: failure pc — body-bounded mark, registered on the
                 // innermost loop record (the `next` re-entry point)
  kLoopEnd,      // pop the innermost loop record
  kBreak,        // a: static loop depth — unwind to the loop entry, efail
  kNext,         // a: loop depth, b: 1 = body position
  kThrowBreak,   // break with no enclosing loop in this chunk
  kThrowNext,    // next with no enclosing loop in this chunk

  // -- tree escapes ----------------------------------------------------
  kEscape,  // a: escape-site index — drive a tree-compiled subtree
};

/// Number of opcodes — sizes the VM's dispatch table (vm.cpp pins its
/// label array to this with a static_assert).
inline constexpr std::size_t kOpCount = static_cast<std::size_t>(Op::kEscape) + 1;

/// Fixed-width instruction. Two operands cover every op; the bracket
/// operand of convertible ops rides in `b` uniformly.
struct Insn {
  Op op;
  std::int32_t a = 0;
  std::int32_t b = 0;
};

/// A subtree that still executes on the tree kernel (scanning, case,
/// co-expression creation, keyword variables, reversible assignment):
/// the machine drives the compiled Gen through the same next() protocol
/// the tree uses, so exactness is inherited rather than re-proven.
/// Subgens are built eagerly at machine construction — the same moment
/// the tree compiler would build them.
struct EscapeSite {
  ast::NodePtr node;
  bool stmtPos = false;       // compile via statement() vs expr()
  std::int32_t loopDepth = -1; // innermost chunk loop at the site (-1: none)
  bool inLoopBody = false;     // body vs control position of that loop
};

struct LoopShape {
  enum class Kind : std::uint8_t { Every, While, Until, Repeat };
  Kind kind;
  std::int32_t topPc = -1;  // control re-entry pc (While/Until/Repeat)
};

/// One compiled body or expression.
struct Chunk {
  std::string name;                 // procedure name or "<expr>"
  std::vector<Insn> code;
  std::vector<std::int32_t> lines;  // per-insn source line (diagnostics)
  std::vector<Value> consts;        // interned atoms / builtin constants
  std::vector<VarPtr> vars;         // compile-time-resolved variables
  std::vector<std::string> varNames;
  std::vector<EscapeSite> escapes;
  std::vector<LoopShape> loops;
  /// convHandler[pc]: pc of the innermost enclosing convertible op whose
  /// operand span contains pc, or -1. An IconError raised at pc converts
  /// (under &error credit) by failing exactly that op's node — the
  /// flattened equivalent of the UnOp/BinOp/Delegate catch clauses.
  std::vector<std::int32_t> convHandler;
  std::int32_t nCaches = 0;  // inline-cache slots (kLoadLate sites)
  std::int32_t nSlots = 0;   // frame slots (0 for scope-mode chunks)
  bool scopeMode = false;    // resolved against a Scope, not a Frame
  bool poolable = false;     // carried over from FrameLayout (PR 3)
};

using ChunkPtr = std::shared_ptr<const Chunk>;

/// Human-readable listing (congen-dis, the dis_golden tests).
std::string disassemble(const Chunk& chunk);

/// Op mnemonic (stable: golden disassembly depends on these spellings).
const char* opName(Op op);

}  // namespace congen::interp::vm

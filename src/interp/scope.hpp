// scope.hpp — lexical scopes mapping names to reified variables.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>

#include "runtime/var.hpp"

namespace congen::interp {

class Scope;
using ScopePtr = std::shared_ptr<Scope>;

/// A chain of name → Var bindings. The outermost scope is the global
/// scope; procedure calls and co-expression environments push children.
class Scope : public std::enable_shared_from_this<Scope> {
 public:
  static ScopePtr makeGlobal() { return std::make_shared<Scope>(Private{}, nullptr, true); }
  [[nodiscard]] ScopePtr child() {
    return std::make_shared<Scope>(Private{}, shared_from_this(), false);
  }

  /// Walk the chain; nullptr if unbound.
  [[nodiscard]] VarPtr lookup(const std::string& name) const {
    for (const Scope* s = this; s; s = s->parent_.get()) {
      const auto it = s->vars_.find(name);
      if (it != s->vars_.end()) return it->second;
    }
    return nullptr;
  }

  /// Like lookup, but stops before the global scope — used to decide
  /// which names a co-expression must shadow (locals only).
  [[nodiscard]] VarPtr lookupLocal(const std::string& name) const {
    for (const Scope* s = this; s && !s->global_; s = s->parent_.get()) {
      const auto it = s->vars_.find(name);
      if (it != s->vars_.end()) return it->second;
    }
    return nullptr;
  }

  /// Bind a fresh cell in this scope (shadowing outer bindings).
  VarPtr declare(const std::string& name, Value initial = Value::null()) {
    auto var = CellVar::create(std::move(initial));
    vars_[name] = var;
    return var;
  }

  /// Bind an existing variable in this scope.
  void bind(const std::string& name, VarPtr var) { vars_[name] = std::move(var); }

  /// Drop every binding. Co-expression refresh factories capture their
  /// enclosing ScopePtr, so a co-expression (or pipe) *stored in* that
  /// scope forms a reference cycle that keeps both alive forever; the
  /// owner of a scope clears it on teardown to break the cycle.
  void clear() noexcept { vars_.clear(); }

  [[nodiscard]] bool isGlobal() const noexcept { return global_; }

  // make_shared needs a public constructor; Private keeps it internal.
  struct Private {};
  Scope(Private, ScopePtr parent, bool global) : parent_(std::move(parent)), global_(global) {}

 private:
  std::unordered_map<std::string, VarPtr> vars_;
  ScopePtr parent_;
  bool global_;
};

}  // namespace congen::interp

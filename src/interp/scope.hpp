// scope.hpp — lexical scopes mapping names to reified variables.
#pragma once
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "runtime/var.hpp"

namespace congen::interp {

class Scope;
using ScopePtr = std::shared_ptr<Scope>;

/// A chain of name → Var bindings. The outermost scope is the global
/// scope; procedure calls and co-expression environments push children.
class Scope : public std::enable_shared_from_this<Scope> {
 public:
  static ScopePtr makeGlobal() { return std::make_shared<Scope>(Private{}, nullptr, true); }
  [[nodiscard]] ScopePtr child() {
    return std::make_shared<Scope>(Private{}, shared_from_this(), false);
  }

  /// Walk the chain; nullptr if unbound.
  [[nodiscard]] VarPtr lookup(const std::string& name) const {
    for (const Scope* s = this; s; s = s->parent_.get()) {
      const auto it = s->vars_.find(name);
      if (it != s->vars_.end()) return it->second;
    }
    return nullptr;
  }

  /// Like lookup, but stops before the global scope — used to decide
  /// which names a co-expression must shadow (locals only).
  [[nodiscard]] VarPtr lookupLocal(const std::string& name) const {
    for (const Scope* s = this; s && !s->global_; s = s->parent_.get()) {
      const auto it = s->vars_.find(name);
      if (it != s->vars_.end()) return it->second;
    }
    return nullptr;
  }

  /// Bind `name` in this scope (shadowing outer bindings). Redeclaration
  /// is keep-and-rebind: the *existing cell* is kept (so references
  /// captured elsewhere — resolved slots, co-expression environments,
  /// cached global bindings — stay valid) and only its value is rebound
  /// to `initial`. Thus `local x := 1; local x` leaves x null but every
  /// prior capture of x still names the same location.
  VarPtr declare(const std::string& name, Value initial = Value::null()) {
    auto [it, inserted] = vars_.try_emplace(name, nullptr);
    if (inserted) {
      it->second = CellVar::create(std::move(initial));
      version_.fetch_add(1, std::memory_order_release);  // new binding: lookups change
    } else {
      it->second->set(std::move(initial));  // keep-and-rebind: same cell, no bump
    }
    return it->second;
  }

  /// Bind an existing variable in this scope.
  void bind(const std::string& name, VarPtr var) {
    vars_[name] = std::move(var);
    version_.fetch_add(1, std::memory_order_release);
  }

  /// Binding-set generation, bumped whenever a lookup's answer could
  /// change (new declaration, rebind, clear) — never on plain value
  /// assignment through an existing cell. The VM's inline caches pair a
  /// resolved VarPtr with the version they observed; a stale version
  /// falls back to the full re-check (LateBoundVar::target), so a racing
  /// bump costs a miss, never a wrong binding.
  [[nodiscard]] std::uint64_t version() const noexcept {
    return version_.load(std::memory_order_acquire);
  }

  /// Drop every binding. Co-expression refresh factories capture their
  /// enclosing ScopePtr, so a co-expression (or pipe) *stored in* that
  /// scope forms a reference cycle that keeps both alive forever; the
  /// owner of a scope clears it on teardown to break the cycle. The
  /// stored values are nulled first, not just the map: cells outlive
  /// this scope (resolved slots, co-expression environments, parked
  /// body trees capture them), and a global cell holding a procedure
  /// whose pooled bodies reference that very cell is a cycle the map
  /// clear alone cannot break.
  void clear() noexcept {
    for (auto& [name, var] : vars_) {
      var->set(Value::null());
    }
    vars_.clear();
    version_.fetch_add(1, std::memory_order_release);
  }

  [[nodiscard]] bool isGlobal() const noexcept { return global_; }

  // make_shared needs a public constructor; Private keeps it internal.
  struct Private {};
  Scope(Private, ScopePtr parent, bool global) : parent_(std::move(parent)), global_(global) {}

 private:
  std::unordered_map<std::string, VarPtr> vars_;
  ScopePtr parent_;
  bool global_;
  std::atomic<std::uint64_t> version_{0};
};

}  // namespace congen::interp

#include "interp/compiler.hpp"

#include <stdexcept>

#include "builtins/builtins.hpp"
#include "runtime/atom.hpp"
#include "runtime/error.hpp"

namespace congen::interp::vm {

using ast::Kind;
using ast::NodePtr;

namespace {

// Same literal syntax as the tree compiler (interpreter.cpp): optional
// NrDIGITS radix prefix, arbitrary precision.
Value parseIntLiteral(const std::string& text) {
  const auto r = text.find_first_of("rR");
  if (r != std::string::npos) {
    const unsigned radix = static_cast<unsigned>(std::stoul(text.substr(0, r)));
    return Value::integer(BigInt::fromString(text.substr(r + 1), radix));
  }
  return Value::integer(BigInt::fromString(text, 10));
}

/// Ops whose node is an &error conversion point — exactly the tree nodes
/// built on UnOpGen/BinOpGen/DelegateGen, which carry the convert-to-
/// failure catch in the tree backend.
bool isConvertible(Op op) {
  switch (op) {
    case Op::kBinOp:
    case Op::kUnOp:
    case Op::kAssign:
    case Op::kAugAssign:
    case Op::kSwap:
    case Op::kIndex:
    case Op::kField:
    case Op::kSlice:
    case Op::kListLit:
    case Op::kInvoke:
    case Op::kToBy:
      return true;
    default:
      return false;
  }
}

}  // namespace

// ---------------------------------------------------------------------
// Emission plumbing
// ---------------------------------------------------------------------

std::int32_t ChunkCompiler::emit(Op op, std::int32_t a, std::int32_t b) {
  chunk_.code.push_back(Insn{op, a, b});
  chunk_.lines.push_back(curLine_);
  return static_cast<std::int32_t>(chunk_.code.size()) - 1;
}

std::int32_t ChunkCompiler::emitPop() {
  if (!chunk_.code.empty()) {
    Insn& last = chunk_.code.back();
    // The normalized conjunction `(x in e) & rest` discards the kIn
    // result immediately: binding the doomed entry to the variable costs
    // a shared_ptr copy per backtracking step on the hottest
    // goal-directed search path.
    if (last.op == Op::kIn) {
      last.b |= 2;
    } else if (last.op == Op::kLoadVar || last.op == Op::kLoadSlot) {
      last.b = 1;
    }
  }
  return emit(Op::kPop);
}

std::int32_t ChunkCompiler::constIdx(const Value& v) {
  // Scalars and interned atoms/builtins dedup by rendered identity; the
  // only non-scalar constants are the process-interned builtin values
  // (one per name), for which the image is unique.
  const std::string key = v.typeName() + '\x1f' + v.image();
  const auto [it, inserted] =
      constKeys_.try_emplace(key, static_cast<std::int32_t>(chunk_.consts.size()));
  if (inserted) chunk_.consts.push_back(v);
  return it->second;
}

std::int32_t ChunkCompiler::varIdx(const VarPtr& var, const std::string& name) {
  const auto [it, inserted] =
      varKeys_.try_emplace(var.get(), static_cast<std::int32_t>(chunk_.vars.size()));
  if (inserted) {
    chunk_.vars.push_back(var);
    chunk_.varNames.push_back(name);
  }
  return it->second;
}

ChunkPtr ChunkCompiler::finish() {
  chunk_.nSlots = layout_ ? static_cast<std::int32_t>(layout_->slotCount()) : 0;
  chunk_.scopeMode = layout_ == nullptr;
  chunk_.poolable = layout_ && layout_->poolable;
  // Innermost-enclosing-convertible-op table: process ops in emission
  // order (operands emit before their op, so inner ops come first) and
  // claim each pc of the op's bracket span only where unclaimed.
  chunk_.convHandler.assign(chunk_.code.size(), -1);
  for (std::size_t pc = 0; pc < chunk_.code.size(); ++pc) {
    const Insn& ins = chunk_.code[pc];
    if (!isConvertible(ins.op)) continue;
    for (std::int32_t q = ins.b; q <= static_cast<std::int32_t>(pc); ++q) {
      if (chunk_.convHandler[static_cast<std::size_t>(q)] == -1) {
        chunk_.convHandler[static_cast<std::size_t>(q)] = static_cast<std::int32_t>(pc);
      }
    }
  }
  return std::make_shared<Chunk>(std::move(chunk_));
}

ChunkPtr ChunkCompiler::compileBody(const std::string& name, const NodePtr& body) {
  chunk_.name = name;
  statement(body);
  // A Block never falls through (its trailing kEfail is the body-mode
  // fail-at-end); for any other body shape, drain plain results exactly
  // like BodyRootGen: discard and resume until exhaustion.
  emitPop();
  emit(Op::kEfail);
  return finish();
}

ChunkPtr ChunkCompiler::compileExpr(const NodePtr& e) {
  chunk_.name = "<expr>";
  expr(e);
  emit(Op::kYield);
  return finish();
}

ChunkPtr ChunkCompiler::compileStmt(const NodePtr& s) {
  chunk_.name = "<stmt>";
  statement(s);
  emit(Op::kYield);
  return finish();
}

// ---------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------

/// Compile an operand whose consumer never reads the variable reference
/// (invoke callees/args, to-by bounds, subscripts, …). When the operand
/// is a bare variable load, the ref push is stripped (b=1): suspension
/// slices spanning the operand then skip the VarPtr refcount churn on
/// every backtracking restore.
void ChunkCompiler::valueOperand(const NodePtr& n) {
  const std::int32_t from = here();
  expr(n);
  if (here() != from + 1) return;  // not a single-instruction operand
  Insn& ins = chunk_.code.back();
  if (ins.op == Op::kLoadVar || ins.op == Op::kLoadSlot) ins.b = 1;
}

void ChunkCompiler::expr(const NodePtr& n) {
  if (n->line > 0) curLine_ = n->line;
  switch (n->kind) {
    case Kind::IntLit: emit(Op::kConst, constIdx(parseIntLiteral(n->text))); return;
    case Kind::RealLit: emit(Op::kConst, constIdx(Value::real(std::stod(n->text)))); return;
    case Kind::StrLit: emit(Op::kConst, constIdx(atomString(n->text))); return;
    case Kind::NullLit: emit(Op::kConst, constIdx(Value::null())); return;
    case Kind::FailLit: emit(Op::kEfail); return;
    case Kind::Ident:
    case Kind::TempRef: identifier(n); return;
    case Kind::KeywordVar: escape(n, /*stmtPos=*/false); return;
    case Kind::ListLit: {
      const std::int32_t bracket = here();
      for (const auto& k : n->kids) valueOperand(k);
      emit(Op::kListLit, static_cast<std::int32_t>(n->kids.size()), bracket);
      return;
    }
    case Kind::Binary: binary(n); return;
    case Kind::Unary: unary(n); return;
    case Kind::Assign: {
      if (n->text == "<-") { escape(n, /*stmtPos=*/false); return; }
      const std::int32_t bracket = here();
      expr(n->kids[0]);
      expr(n->kids[1]);
      if (n->text == ":=") {
        emit(Op::kAssign, 0, bracket);
      } else {
        const auto op = std::string_view(n->text).substr(0, n->text.size() - 2);
        const auto k = binKindOf(op);
        if (!k) throw std::invalid_argument("unknown binary operator: " + std::string(op));
        emit(Op::kAugAssign, static_cast<std::int32_t>(*k), bracket);
      }
      return;
    }
    case Kind::Swap: {
      if (n->text == "<->") { escape(n, /*stmtPos=*/false); return; }
      const std::int32_t bracket = here();
      expr(n->kids[0]);
      expr(n->kids[1]);
      emit(Op::kSwap, 0, bracket);
      return;
    }
    case Kind::ToBy: {
      const std::int32_t bracket = here();
      valueOperand(n->kids[0]);
      valueOperand(n->kids[1]);
      if (n->kids.size() > 2) {
        valueOperand(n->kids[2]);
      } else {
        emit(Op::kConst, constIdx(Value::integer(1)));
      }
      emit(Op::kToBy, 0, bracket);
      return;
    }
    case Kind::Limit: {
      // Compile order matches the tree (e1 before the bound — temp
      // declarations are compile-time effects); evaluation order matches
      // LimitGen (bound first, bounded): hop over e1 to the bound, then
      // kLimitBegin jumps back.
      const std::int32_t jOver = emit(Op::kJump);
      const std::int32_t depth = limitDepth_++;
      const std::int32_t exprPc = here();
      expr(n->kids[0]);
      emit(Op::kLimitExit, depth);
      const std::int32_t jEnd = emit(Op::kJump);
      patchA(jOver, here());
      const std::int32_t mark = emit(Op::kMark);
      valueOperand(n->kids[1]);
      emit(Op::kUnmark);
      emit(Op::kLimitBegin, depth, exprPc);
      patchA(mark, here());
      emit(Op::kEfail);  // bound failed: the limit fails
      patchA(jEnd, here());
      --limitDepth_;
      return;
    }
    case Kind::Index: {
      const std::int32_t bracket = here();
      valueOperand(n->kids[0]);
      valueOperand(n->kids[1]);
      emit(Op::kIndex, 0, bracket);
      return;
    }
    case Kind::Slice: {
      const std::int32_t bracket = here();
      valueOperand(n->kids[0]);
      valueOperand(n->kids[1]);
      valueOperand(n->kids[2]);
      emit(Op::kSlice, 0, bracket);
      return;
    }
    case Kind::Field: {
      const std::int32_t bracket = here();
      valueOperand(n->kids[0]);
      emit(Op::kField, constIdx(atomString(n->text)), bracket);
      return;
    }
    case Kind::Invoke: {
      const std::int32_t bracket = here();
      for (const auto& k : n->kids) valueOperand(k);
      emit(Op::kInvoke, static_cast<std::int32_t>(n->kids.size()) - 1, bracket);
      return;
    }
    case Kind::NativeInvoke: {
      // recv::name(args): this::f(x) calls f(x); anything else calls
      // f(recv, x...). The callee name's resolution rides on the node.
      const std::int32_t bracket = here();
      const NodePtr& recv = n->kids[0];
      const bool isThis = recv->kind == Kind::Ident && recv->text == "this";
      {
        const std::int32_t calleeFrom = here();
        identifier(n);
        if (here() == calleeFrom + 1) {
          Insn& callee = chunk_.code.back();
          if (callee.op == Op::kLoadVar || callee.op == Op::kLoadSlot) callee.b = 1;
        }
      }
      std::int32_t argc = 0;
      if (!isThis) {
        valueOperand(recv);
        ++argc;
      }
      for (std::size_t i = 1; i < n->kids.size(); ++i) {
        valueOperand(n->kids[i]);
        ++argc;
      }
      emit(Op::kInvoke, argc, bracket);
      return;
    }
    case Kind::ExprSeq: {
      if (n->kids.empty()) {
        emit(Op::kConst, constIdx(Value::null()));
        return;
      }
      for (std::size_t i = 0; i + 1 < n->kids.size(); ++i) {
        const std::int32_t mark = emit(Op::kMark);
        statement(n->kids[i]);
        emit(Op::kUnmark);
        emitPop();
        patchA(mark, here());
      }
      statement(n->kids.back());  // last term delegates (Expression mode)
      return;
    }
    case Kind::Not: {
      const std::int32_t mark = emit(Op::kMark);
      expr(n->kids[0]);
      emit(Op::kUnmark);
      emitPop();
      emit(Op::kEfail);  // e succeeded: not e fails
      patchA(mark, here());
      emit(Op::kConst, constIdx(Value::null()));
      return;
    }
    case Kind::BoundIter: {
      valueOperand(n->kids[0]);
      if (layout_ && n->slot >= 0) {
        emit(Op::kIn, n->slot, 1);
      } else {
        emit(Op::kIn, varIdx(scope_->declare(n->text), n->text), 0);
      }
      return;
    }
    case Kind::IfStmt:
    case Kind::Block:
    case Kind::EveryStmt:
    case Kind::WhileStmt:
    case Kind::UntilStmt:
    case Kind::RepeatStmt:
    case Kind::CaseStmt:
    case Kind::SuspendStmt:
      statement(n);
      return;
    default:
      throw IconError(600, "cannot evaluate node in expression position: " + ast::dump(n));
  }
}

// ---------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------

void ChunkCompiler::statement(const NodePtr& n) {
  if (n->line > 0) curLine_ = n->line;
  switch (n->kind) {
    case Kind::Block: {
      for (const auto& k : n->kids) {
        const std::int32_t mark = emit(Op::kMark);
        statement(k);
        emit(Op::kUnmark);
        emitPop();
        patchA(mark, here());
      }
      emit(Op::kEfail);  // body mode: fail at the end
      return;
    }
    case Kind::ExprStmt: expr(n->kids[0]); return;
    case Kind::DeclList: {
      bool anyInit = false;
      for (const auto& decl : n->kids) {
        const bool slotted = layout_ && decl->slot >= 0;
        VarPtr var;
        if (!slotted) var = scope_->declare(decl->text);  // compile-time, like the tree
        if (decl->kids.empty()) continue;
        anyInit = true;
        const std::int32_t mark = emit(Op::kMark);
        const std::int32_t bracket = here();
        if (slotted) {
          slotLoad(decl->slot);
        } else {
          emit(Op::kLoadVar, varIdx(var, decl->text));
        }
        expr(decl->kids[0]);
        emit(Op::kAssign, 0, bracket);
        emit(Op::kUnmark);
        emitPop();
        patchA(mark, here());
      }
      if (anyInit) {
        emit(Op::kEfail);  // SeqGen body mode over the inits
      } else {
        emit(Op::kConst, constIdx(Value::null()));
      }
      return;
    }
    case Kind::EveryStmt: loop(n, LoopShape::Kind::Every); return;
    case Kind::WhileStmt: loop(n, LoopShape::Kind::While); return;
    case Kind::UntilStmt: loop(n, LoopShape::Kind::Until); return;
    case Kind::RepeatStmt: loop(n, LoopShape::Kind::Repeat); return;
    case Kind::IfStmt: {
      const std::int32_t mark = emit(Op::kMark);
      expr(n->kids[0]);
      emit(Op::kUnmark);  // condition is bounded; the branch decides
      emitPop();
      statement(n->kids[1]);
      const std::int32_t jEnd = emit(Op::kJump);
      patchA(mark, here());
      if (n->kids.size() > 2) {
        statement(n->kids[2]);
      } else {
        emit(Op::kEfail);  // no else: if fails with the condition
      }
      patchA(jEnd, here());
      return;
    }
    case Kind::SuspendStmt: {
      if (n->kids.empty()) {
        emit(Op::kConst, constIdx(Value::null()));
      } else {
        expr(n->kids[0]);
      }
      emit(Op::kSuspend);
      return;
    }
    case Kind::ReturnStmt: {
      const std::int32_t mark = emit(Op::kMark);
      if (n->kids.empty()) {
        emit(Op::kConst, constIdx(Value::null()));
      } else {
        expr(n->kids[0]);
      }
      emit(Op::kReturn);
      patchA(mark, here());
      emit(Op::kFailBody);  // `return e` with failing e fails the body
      return;
    }
    case Kind::FailStmt: emit(Op::kFailBody); return;
    case Kind::BreakStmt: {
      if (loopCtx_.empty()) {
        emit(Op::kThrowBreak);  // signal an enclosing tree loop, if any
      } else {
        emit(Op::kBreak, static_cast<std::int32_t>(loopCtx_.size()) - 1);
      }
      return;
    }
    case Kind::NextStmt: {
      if (loopCtx_.empty()) {
        emit(Op::kThrowNext);
      } else {
        emit(Op::kNext, static_cast<std::int32_t>(loopCtx_.size()) - 1,
             loopCtx_.back().inBody ? 1 : 0);
      }
      return;
    }
    case Kind::CaseStmt: escape(n, /*stmtPos=*/true); return;
    case Kind::RecordDecl: {
      interp_.globalScope()->declare(n->text, Value::proc(Interpreter::makeRecordConstructor(n)));
      emit(Op::kConst, constIdx(Value::null()));
      return;
    }
    case Kind::GlobalDecl: {
      const ScopePtr& globals = interp_.globalScope();
      for (const auto& name : n->kids) {
        if (!globals->lookup(name->text)) globals->declare(name->text);
      }
      emit(Op::kConst, constIdx(Value::null()));
      return;
    }
    case Kind::Def: {
      interp_.globalScope()->declare(n->text, Value::proc(interp_.makeProcedure(n)));
      emit(Op::kConst, constIdx(Value::null()));
      return;
    }
    default: expr(n); return;
  }
}

// ---------------------------------------------------------------------
// Identifiers — the exact tree-compiler fallback chain
// ---------------------------------------------------------------------

void ChunkCompiler::slotLoad(std::int32_t slot) {
  if (layout_->late[static_cast<std::size_t>(slot)]) {
    emit(Op::kLoadLate, slot, chunk_.nCaches++);
  } else {
    emit(Op::kLoadSlot, slot);
  }
}

void ChunkCompiler::identifier(const NodePtr& n) {
  if (layout_) {
    switch (n->res) {
      case ast::Res::Slot:
      case ast::Res::Late:
        slotLoad(n->slot);
        return;
      case ast::Res::Global:
        if (auto var = interp_.globalScope()->lookup(n->text)) {
          emit(Op::kLoadVar, varIdx(var, n->text));
          return;
        }
        break;  // resolved-away global: fall back by name
      case ast::Res::Builtin:
        if (const Value* b = builtins::lookupConst(n->text)) {
          emit(Op::kConst, constIdx(*b));
          return;
        }
        break;
      case ast::Res::Unresolved:
        if (const auto slot = layout_->slotOf(n->text); slot >= 0) {
          slotLoad(slot);
          return;
        }
        break;
    }
  }
  if (auto var = scope_->lookup(n->text)) {
    emit(Op::kLoadVar, varIdx(var, n->text));
    return;
  }
  if (const Value* b = builtins::lookupConst(n->text)) {
    emit(Op::kConst, constIdx(*b));
    return;
  }
  // Undeclared: implicitly local to the compile scope (Unicon default).
  emit(Op::kLoadVar, varIdx(scope_->declare(n->text), n->text));
}

// ---------------------------------------------------------------------
// Operators
// ---------------------------------------------------------------------

void ChunkCompiler::binary(const NodePtr& n) {
  if (n->text == "&") {  // product: left's value is discarded, kept as a
    expr(n->kids[0]);    // backtrack point by its suspensions
    emitPop();
    expr(n->kids[1]);
    return;
  }
  if (n->text == "|") {
    const std::int32_t alt = emit(Op::kAltBegin);
    expr(n->kids[0]);
    const std::int32_t jEnd = emit(Op::kJump);
    patchA(alt, here());
    expr(n->kids[1]);
    patchA(jEnd, here());
    return;
  }
  if (n->text == "?") {  // string scanning: tree-kernel escape
    escape(n, /*stmtPos=*/false);
    return;
  }
  const std::int32_t bracket = here();
  const auto k = binKindOf(n->text);
  if (!k) throw std::invalid_argument("unknown binary operator: " + n->text);
  valueOperand(n->kids[0]);
  valueOperand(n->kids[1]);
  emit(Op::kBinOp, static_cast<std::int32_t>(*k), bracket);
}

void ChunkCompiler::unary(const NodePtr& n) {
  const std::string& op = n->text;
  if (op == "!") {
    valueOperand(n->kids[0]);
    emit(Op::kPromote);
    return;
  }
  if (op == "@" || op == "^" || op == "<>" || op == "|<>" || op == "|>") {
    escape(n, /*stmtPos=*/false);
    return;
  }
  if (op == "|") {  // repeated alternation
    const std::int32_t depth = raltDepth_++;
    emit(Op::kRaltBegin, depth);
    expr(n->kids[0]);
    emit(Op::kRaltNote, depth);
    --raltDepth_;
    return;
  }
  const std::int32_t bracket = here();
  const auto k = unKindOf(op);
  if (!k) throw std::invalid_argument("unknown unary operator: " + op);
  // \e and /e pass the operand's variable reference through; every other
  // unary operator reads the value only.
  if (*k == UnKind::NonNull || *k == UnKind::IfNull) {
    expr(n->kids[0]);
  } else {
    valueOperand(n->kids[0]);
  }
  emit(Op::kUnOp, static_cast<std::int32_t>(*k), bracket);
}

// ---------------------------------------------------------------------
// Loops
// ---------------------------------------------------------------------

void ChunkCompiler::loop(const NodePtr& n, LoopShape::Kind kind) {
  const std::int32_t shapeIdx = static_cast<std::int32_t>(chunk_.loops.size());
  chunk_.loops.push_back(LoopShape{kind, -1});
  emit(Op::kLoopBegin, shapeIdx);
  loopCtx_.push_back(LoopCtx{shapeIdx, false});
  const bool hasBody = n->kids.size() > 1 && n->kids[1] != nullptr;

  switch (kind) {
    case LoopShape::Kind::Every: {
      const std::int32_t mExh = emit(Op::kMark);
      expr(n->kids[0]);  // control generator: NOT bounded
      emitPop();
      if (hasBody) {
        const std::int32_t mBody = emit(Op::kLoopBodyMark);  // → resume point
        loopCtx_.back().inBody = true;
        statement(n->kids[1]);
        emit(Op::kUnmark);
        emitPop();
        patchA(mBody, here());
      }
      emit(Op::kEfail);  // resume the control generator
      patchA(mExh, here());
      emit(Op::kLoopEnd);
      emit(Op::kEfail);
      break;
    }
    case LoopShape::Kind::While: {
      const std::int32_t top = here();
      chunk_.loops[static_cast<std::size_t>(shapeIdx)].topPc = top;
      const std::int32_t mExh = emit(Op::kMark);
      expr(n->kids[0]);
      emit(Op::kUnmark);  // condition bounded per iteration
      emitPop();
      if (hasBody) {
        const std::int32_t mBody = emit(Op::kLoopBodyMark, top);
        loopCtx_.back().inBody = true;
        statement(n->kids[1]);
        emit(Op::kUnmark);
        emitPop();
        (void)mBody;
      }
      emit(Op::kJump, top);
      patchA(mExh, here());
      emit(Op::kLoopEnd);
      emit(Op::kEfail);
      break;
    }
    case LoopShape::Kind::Until: {
      const std::int32_t top = here();
      chunk_.loops[static_cast<std::size_t>(shapeIdx)].topPc = top;
      const std::int32_t mBody = emit(Op::kMark);  // condition FAILS → body
      expr(n->kids[0]);
      emit(Op::kUnmark);
      emitPop();
      emit(Op::kLoopEnd);  // condition succeeded: loop over (and fails)
      emit(Op::kEfail);
      patchA(mBody, here());
      if (hasBody) {
        const std::int32_t mb = emit(Op::kLoopBodyMark, top);
        loopCtx_.back().inBody = true;
        statement(n->kids[1]);
        emit(Op::kUnmark);
        emitPop();
        (void)mb;
      }
      emit(Op::kJump, top);
      break;
    }
    case LoopShape::Kind::Repeat: {
      const std::int32_t top = here();
      chunk_.loops[static_cast<std::size_t>(shapeIdx)].topPc = top;
      emit(Op::kLoopBodyMark, top);  // body failure restarts the body
      loopCtx_.back().inBody = true;
      statement(n->kids[0]);
      emit(Op::kUnmark);
      emitPop();
      emit(Op::kJump, top);
      break;
    }
  }
  loopCtx_.pop_back();
}

// ---------------------------------------------------------------------
// Escapes
// ---------------------------------------------------------------------

void ChunkCompiler::escape(const NodePtr& n, bool stmtPos) {
  EscapeSite site;
  site.node = n;
  site.stmtPos = stmtPos;
  if (!loopCtx_.empty()) {
    site.loopDepth = static_cast<std::int32_t>(loopCtx_.size()) - 1;
    site.inLoopBody = loopCtx_.back().inBody;
  }
  const std::int32_t idx = static_cast<std::int32_t>(chunk_.escapes.size());
  chunk_.escapes.push_back(std::move(site));
  emit(Op::kEscape, idx);
}

}  // namespace congen::interp::vm

#include "interp/interpreter.hpp"

#include "builtins/builtins.hpp"
#include "concur/pipe.hpp"
#include "frontend/parser.hpp"
#include "kernel/basic.hpp"
#include "kernel/compose.hpp"
#include "kernel/control.hpp"
#include "kernel/coexpression.hpp"
#include "kernel/ops.hpp"
#include "kernel/scan.hpp"
#include "runtime/collections.hpp"
#include "runtime/error.hpp"
#include "runtime/record.hpp"
#include "transform/normalize.hpp"

namespace congen::interp {

using ast::Kind;
using ast::NodePtr;

namespace {

Value parseIntLiteral(const std::string& text) {
  const auto r = text.find_first_of("rR");
  if (r != std::string::npos) {
    const unsigned radix = static_cast<unsigned>(std::stoul(text.substr(0, r)));
    return Value::integer(BigInt::fromString(text.substr(r + 1), radix));
  }
  return Value::integer(BigInt::fromString(text, 10));
}

}  // namespace

/// Compiles AST nodes to kernel generator trees over a scope chain.
class Compiler {
 public:
  Compiler(Interpreter& interp, ScopePtr scope)
      : interp_(interp), scope_(std::move(scope)) {}

  // -- expression compilation -----------------------------------------
  GenPtr expr(const NodePtr& n) {
    switch (n->kind) {
      case Kind::IntLit: return ConstGen::create(parseIntLiteral(n->text));
      case Kind::RealLit: return ConstGen::create(Value::real(std::stod(n->text)));
      case Kind::StrLit: return ConstGen::create(Value::string(n->text));
      case Kind::NullLit: return NullGen::create();
      case Kind::FailLit: return FailGen::create();
      case Kind::Ident:
      case Kind::TempRef: return identifier(n->text);
      case Kind::KeywordVar:
        return n->text == "subject" ? makeSubjectVarGen() : makePosVarGen();
      case Kind::ListLit: return listLiteral(n);
      case Kind::Binary: return binary(n);
      case Kind::Unary: return unary(n);
      // NOTE: every multi-operand case compiles its children into named
      // locals first — C++ leaves function-argument evaluation order
      // unspecified, and compilation order matters because BoundIter
      // declares the temporaries that later TempRefs resolve to.
      case Kind::Assign: {
        auto lhs = expr(n->kids[0]);
        auto rhs = expr(n->kids[1]);
        if (n->text == ":=") return makeAssignGen(std::move(lhs), std::move(rhs));
        if (n->text == "<-") return makeRevAssignGen(std::move(lhs), std::move(rhs));
        return makeAugAssignGen(std::string_view(n->text).substr(0, n->text.size() - 2),
                                std::move(lhs), std::move(rhs));
      }
      case Kind::Swap: {
        auto lhs = expr(n->kids[0]);
        auto rhs = expr(n->kids[1]);
        if (n->text == "<->") return makeRevSwapGen(std::move(lhs), std::move(rhs));
        return makeSwapGen(std::move(lhs), std::move(rhs));
      }
      case Kind::ToBy: {
        auto from = expr(n->kids[0]);
        auto to = expr(n->kids[1]);
        auto by = n->kids.size() > 2 ? expr(n->kids[2]) : nullptr;
        return makeToByGen(std::move(from), std::move(to), std::move(by));
      }
      case Kind::Limit: {
        auto e = expr(n->kids[0]);
        auto bound = expr(n->kids[1]);
        return LimitGen::create(std::move(e), std::move(bound));
      }
      case Kind::Index: {
        auto coll = expr(n->kids[0]);
        auto idx = expr(n->kids[1]);
        return makeIndexGen(std::move(coll), std::move(idx));
      }
      case Kind::Slice: {
        auto coll = expr(n->kids[0]);
        auto from = expr(n->kids[1]);
        auto to = expr(n->kids[2]);
        return makeSliceGen(std::move(coll), std::move(from), std::move(to));
      }
      case Kind::Field: return makeFieldGen(expr(n->kids[0]), n->text);
      case Kind::Invoke: return invoke(n);
      case Kind::NativeInvoke: return nativeInvoke(n);
      case Kind::ExprSeq: return sequence(n, SeqGen::Mode::Expression);
      case Kind::Not: return NotGen::create(expr(n->kids[0]));
      case Kind::BoundIter: {
        auto var = scope_->declare(n->text);
        return InGen::create(std::move(var), expr(n->kids[0]));
      }
      case Kind::IfStmt: {  // usable in expression position
        auto cond = expr(n->kids[0]);
        auto thenB = statement(n->kids[1]);
        auto elseB = n->kids.size() > 2 ? statement(n->kids[2]) : nullptr;
        return IfGen::create(std::move(cond), std::move(thenB), std::move(elseB));
      }
      case Kind::Block:
      case Kind::EveryStmt:
      case Kind::WhileStmt:
      case Kind::UntilStmt:
      case Kind::RepeatStmt:
      case Kind::CaseStmt:
      case Kind::SuspendStmt:
        // Control constructs are expressions in Icon (e.g. as a scan
        // body: s ? while ...).
        return statement(n);
      default:
        throw IconError(600, "cannot evaluate node in expression position: " + ast::dump(n));
    }
  }

  // -- statement compilation -------------------------------------------
  GenPtr statement(const NodePtr& n) {
    switch (n->kind) {
      case Kind::Block: return sequence(n, SeqGen::Mode::Body);
      case Kind::ExprStmt: return expr(n->kids[0]);
      case Kind::DeclList: {
        std::vector<GenPtr> inits;
        for (const auto& decl : n->kids) {
          auto var = scope_->declare(decl->text);
          if (!decl->kids.empty()) {
            inits.push_back(makeAssignGen(VarGen::create(var), expr(decl->kids[0])));
          }
        }
        if (inits.empty()) return NullGen::create();
        return SeqGen::create(std::move(inits), SeqGen::Mode::Body);
      }
      case Kind::EveryStmt: {
        auto control = expr(n->kids[0]);
        auto body = n->kids.size() > 1 ? statement(n->kids[1]) : nullptr;
        return LoopGen::every(std::move(control), std::move(body));
      }
      case Kind::WhileStmt: {
        auto cond = expr(n->kids[0]);
        auto body = n->kids.size() > 1 ? statement(n->kids[1]) : nullptr;
        return LoopGen::whileDo(std::move(cond), std::move(body));
      }
      case Kind::UntilStmt: {
        auto cond = expr(n->kids[0]);
        auto body = n->kids.size() > 1 ? statement(n->kids[1]) : nullptr;
        return LoopGen::untilDo(std::move(cond), std::move(body));
      }
      case Kind::RepeatStmt: return LoopGen::repeat(statement(n->kids[0]));
      case Kind::IfStmt: {
        auto cond = expr(n->kids[0]);
        auto thenB = statement(n->kids[1]);
        auto elseB = n->kids.size() > 2 ? statement(n->kids[2]) : nullptr;
        return IfGen::create(std::move(cond), std::move(thenB), std::move(elseB));
      }
      case Kind::SuspendStmt:
        return SuspendGen::create(n->kids.empty() ? NullGen::create() : expr(n->kids[0]));
      case Kind::ReturnStmt:
        return ReturnGen::create(n->kids.empty() ? NullGen::create() : expr(n->kids[0]));
      case Kind::FailStmt: return FailBodyGen::create();
      case Kind::BreakStmt: return BreakGen::create();
      case Kind::NextStmt: return NextGen::create();
      case Kind::CaseStmt: {
        auto control = expr(n->kids[0]);
        std::vector<CaseGen::Branch> branches;
        for (std::size_t i = 1; i < n->kids.size(); ++i) {
          const NodePtr& b = n->kids[i];
          CaseGen::Branch branch;
          if (b->text == "default") {
            branch.body = statement(b->kids[0]);
          } else {
            branch.value = expr(b->kids[0]);
            branch.body = statement(b->kids[1]);
          }
          branches.push_back(std::move(branch));
        }
        return CaseGen::create(std::move(control), std::move(branches));
      }
      case Kind::RecordDecl: {
        interp_.globals_->declare(n->text, Value::proc(makeRecordConstructor(n)));
        return NullGen::create();
      }
      case Kind::GlobalDecl: {
        for (const auto& name : n->kids) {
          if (!interp_.globals_->lookup(name->text)) interp_.globals_->declare(name->text);
        }
        return NullGen::create();
      }
      case Kind::Def: {
        interp_.globals_->declare(n->text, Value::proc(makeProc(n)));
        return NullGen::create();
      }
      default: return expr(n);
    }
  }

  /// `record name(f1, ..., fn)` declares a constructor procedure.
  static ProcPtr makeRecordConstructor(const NodePtr& decl) {
    std::vector<std::string> fields;
    fields.reserve(decl->kids.size());
    for (const auto& f : decl->kids) fields.push_back(f->text);
    auto type = RecordType::create(decl->text, std::move(fields));
    return ProcImpl::create(decl->text, [type](std::vector<Value> args) -> GenPtr {
      return ConstGen::create(Value::record(RecordImpl::create(type, std::move(args))));
    });
  }

  /// Build a procedure value whose every invocation compiles a fresh
  /// body over a fresh scope (parameters are variadic: missing args are
  /// &null, extras ignored — Unicon convention).
  ProcPtr makeProc(const NodePtr& def) {
    const NodePtr params = def->kids[0];
    const NodePtr body = def->kids[1];
    Interpreter* interp = &interp_;
    ScopePtr defScope = interp_.globals_;  // procedures close over globals
    return ProcImpl::create(def->text, [interp, defScope, params, body](std::vector<Value> args) {
      auto callScope = defScope->child();
      for (std::size_t i = 0; i < params->kids.size(); ++i) {
        callScope->declare(params->kids[i]->text, i < args.size() ? args[i] : Value::null());
      }
      Compiler bodyCompiler(*interp, callScope);
      return BodyRootGen::create(bodyCompiler.statement(body));
    });
  }

 private:
  GenPtr identifier(const std::string& name) {
    if (auto var = scope_->lookup(name)) return VarGen::create(var);
    if (auto builtin = builtins::lookup(name)) return ConstGen::create(Value::proc(builtin));
    // Undeclared: implicitly local to the current scope (Unicon's loose
    // default); first read yields &null.
    return VarGen::create(scope_->declare(name));
  }

  GenPtr listLiteral(const NodePtr& n) {
    std::vector<GenPtr> elems;
    elems.reserve(n->kids.size());
    for (const auto& k : n->kids) elems.push_back(expr(k));
    return makeListLitGen(std::move(elems));
  }

  GenPtr sequence(const NodePtr& n, SeqGen::Mode mode) {
    std::vector<GenPtr> terms;
    terms.reserve(n->kids.size());
    for (const auto& k : n->kids) terms.push_back(statement(k));
    if (terms.empty()) return mode == SeqGen::Mode::Body ? FailGen::create() : NullGen::create();
    return SeqGen::create(std::move(terms), mode);
  }

  GenPtr binary(const NodePtr& n) {
    auto lhs = expr(n->kids[0]);  // compile order is load-bearing: see the
    auto rhs = expr(n->kids[1]);  // NOTE on temporaries above
    if (n->text == "&") return ProductGen::create(std::move(lhs), std::move(rhs));
    if (n->text == "|") return AltGen::create(std::move(lhs), std::move(rhs));
    if (n->text == "?") return ScanGen::create(std::move(lhs), std::move(rhs));
    return makeBinaryOpGen(n->text, std::move(lhs), std::move(rhs));
  }

  GenPtr unary(const NodePtr& n) {
    const std::string& op = n->text;
    if (op == "!") return PromoteGen::create(expr(n->kids[0]));
    if (op == "@") return ActivateGen::create(expr(n->kids[0]));
    if (op == "^") return RefreshGen::create(expr(n->kids[0]));
    if (op == "|") return RepeatAltGen::create(expr(n->kids[0]));
    if (op == "<>") return CoExprCreateGen::create(coExprFactory(n->kids[0], /*shadow=*/false));
    if (op == "|<>") return CoExprCreateGen::create(coExprFactory(n->kids[0], /*shadow=*/true));
    if (op == "|>") {
      return makePipeCreateGen(coExprFactory(n->kids[0], /*shadow=*/true),
                               interp_.options_.pipeCapacity, ThreadPool::global(),
                               interp_.options_.pipeBatch);
    }
    return makeUnaryOpGen(op, expr(n->kids[0]));
  }

  /// Body factory for <> / |<> / |>. With shadowing, the factory
  /// snapshots every referenced *local* into a fresh cell each time it
  /// runs (creation and every ^ refresh) — Section III.A.
  GenFactory coExprFactory(const NodePtr& body, bool shadow) {
    Interpreter* interp = &interp_;
    ScopePtr enclosing = scope_;
    NodePtr bodyAst = body;
    if (!shadow) {
      return [interp, enclosing, bodyAst]() -> GenPtr {
        Compiler c(*interp, enclosing);
        return c.expr(bodyAst);
      };
    }
    auto referenced = transform::freeIdents(bodyAst);
    return [interp, enclosing, bodyAst, referenced = std::move(referenced)]() -> GenPtr {
      auto shadowScope = enclosing->child();
      for (const auto& name : referenced) {
        if (auto local = enclosing->lookupLocal(name)) {
          shadowScope->declare(name, local->get());  // copy, don't alias
        }
      }
      Compiler c(*interp, shadowScope);
      return c.expr(bodyAst);
    };
  }

  GenPtr invoke(const NodePtr& n) {
    std::vector<GenPtr> args;
    for (std::size_t i = 1; i < n->kids.size(); ++i) args.push_back(expr(n->kids[i]));
    return makeInvokeGen(expr(n->kids[0]), std::move(args));
  }

  /// recv::name(args) — the native cut-through. `this::f(x)` calls f(x);
  /// anything else calls f(recv, x...), so host helpers registered with
  /// receiver-first conventions line up (Section IV's mixed-language
  /// chains).
  GenPtr nativeInvoke(const NodePtr& n) {
    const NodePtr& recv = n->kids[0];
    const bool isThis = recv->kind == Kind::Ident && recv->text == "this";
    GenPtr callee = identifier(n->text);
    std::vector<GenPtr> args;
    if (!isThis) args.push_back(expr(recv));
    for (std::size_t i = 1; i < n->kids.size(); ++i) args.push_back(expr(n->kids[i]));
    return makeInvokeGen(std::move(callee), std::move(args));
  }

  Interpreter& interp_;
  ScopePtr scope_;
};

// ---------------------------------------------------------------------
// Interpreter
// ---------------------------------------------------------------------

Interpreter::Interpreter(Options options)
    : options_(options), globals_(Scope::makeGlobal()) {}

Interpreter::~Interpreter() {
  // A pipe stored in a global (`p := |> e`) cycles back to the global
  // scope through its refresh factory, so neither would ever be
  // destroyed — and an undestroyed pipe never closes its queue, leaving
  // its producer blocked in put() for the global pool's destructor to
  // join at process exit (deadlock). Clearing the bindings breaks the
  // cycle: the pipe's destructor closes the queue and the producer
  // retires.
  globals_->clear();
}

void Interpreter::load(const std::string& source) {
  loadProgram(frontend::parseProgram(source));
}

void Interpreter::loadProgram(const ast::NodePtr& program) {
  ast::NodePtr prog = options_.normalize ? transform::normalizeProgram(program) : program;
  Compiler compiler(*this, globals_);
  for (const auto& item : prog->kids) {
    if (item->kind == Kind::Def) {
      globals_->declare(item->text, Value::proc(compiler.makeProc(item)));
    } else {
      // Top-level statements run immediately, bounded, like Icon's
      // outermost level of iteration.
      Compiler stmtCompiler(*this, globals_);
      stmtCompiler.statement(item)->next();
    }
  }
}

GenPtr Interpreter::eval(const std::string& source) {
  ast::NodePtr tree = frontend::parseExpression(source);
  if (options_.normalize) {
    transform::TempNames names;
    tree = transform::normalize(tree, names);
  }
  return compileExpr(tree, globals_);
}

std::vector<Value> Interpreter::evalAll(const std::string& source) {
  return eval(source)->collect();
}

std::optional<Value> Interpreter::evalOne(const std::string& source) {
  return eval(source)->nextValue();
}

GenPtr Interpreter::call(const std::string& name, std::vector<Value> args) {
  auto var = globals_->lookup(name);
  Value f = var ? var->get() : Value::null();
  if (!f.isProc()) {
    if (auto builtin = builtins::lookup(name)) {
      f = Value::proc(builtin);
    } else {
      throw errCallableExpected(name);
    }
  }
  return f.proc()->invoke(std::move(args));
}

void Interpreter::registerNative(const std::string& name, ProcPtr proc) {
  globals_->declare(name, Value::proc(std::move(proc)));
}

void Interpreter::defineGlobal(const std::string& name, Value v) {
  globals_->declare(name, std::move(v));
}

std::optional<Value> Interpreter::global(const std::string& name) const {
  auto var = globals_->lookup(name);
  if (!var) return std::nullopt;
  return var->get();
}

GenPtr Interpreter::compileExpr(const ast::NodePtr& node, const ScopePtr& scope) {
  Compiler c(*this, scope);
  return c.expr(node);
}

}  // namespace congen::interp

#include "interp/interpreter.hpp"

#include <algorithm>
#include <cstdlib>
#include <mutex>
#include <optional>
#include <string_view>

#include "builtins/builtins.hpp"
#include "concur/pipe.hpp"
#include "frontend/parser.hpp"
#include "interp/compiler.hpp"
#include "interp/frame.hpp"
#include "interp/resolver.hpp"
#include "interp/vm.hpp"
#include "kernel/basic.hpp"
#include "kernel/compose.hpp"
#include "kernel/control.hpp"
#include "kernel/coexpression.hpp"
#include "kernel/error_env.hpp"
#include "kernel/ops.hpp"
#include "kernel/scan.hpp"
#include "obs/runtime_stats.hpp"
#include "runtime/atom.hpp"
#include "runtime/collections.hpp"
#include "runtime/error.hpp"
#include "runtime/record.hpp"
#include "transform/normalize.hpp"

namespace congen::interp {

using ast::Kind;
using ast::NodePtr;

namespace {

Value parseIntLiteral(const std::string& text) {
  const auto r = text.find_first_of("rR");
  if (r != std::string::npos) {
    const unsigned radix = static_cast<unsigned>(std::stoul(text.substr(0, r)));
    return Value::integer(BigInt::fromString(text.substr(r + 1), radix));
  }
  return Value::integer(BigInt::fromString(text, 10));
}

}  // namespace

Backend defaultBackend() {
  static const Backend b = [] {
    const char* env = std::getenv("CONGEN_BACKEND");
    return env != nullptr && std::string_view(env) == "vm" ? Backend::kVm : Backend::kTree;
  }();
  return b;
}

/// Compiles AST nodes to kernel generator trees. Two modes:
///  - scope mode (top-level, eval, co-expression bodies): names resolve
///    by walking a Scope chain, with implicit declaration on first use;
///  - frame mode (procedure bodies): the resolution pass has annotated
///    every name node with its classification, and identifiers compile
///    to direct slot references into one flat Frame — no chain walk, no
///    per-call hashmap.
class Compiler {
 public:
  Compiler(Interpreter& interp, ScopePtr scope)
      : interp_(interp), scope_(std::move(scope)) {}

  Compiler(Interpreter& interp, ScopePtr scope, const FrameLayout* layout, Frame* frame)
      : interp_(interp), scope_(std::move(scope)), layout_(layout), frame_(frame) {}

  // -- expression compilation -----------------------------------------
  GenPtr expr(const NodePtr& n) {
    switch (n->kind) {
      case Kind::IntLit: return ConstGen::create(parseIntLiteral(n->text));
      case Kind::RealLit: return ConstGen::create(Value::real(std::stod(n->text)));
      case Kind::StrLit: return ConstGen::create(atomString(n->text));
      case Kind::NullLit: return NullGen::create();
      case Kind::FailLit: return FailGen::create();
      case Kind::Ident:
      case Kind::TempRef: return identifier(n);
      case Kind::KeywordVar:
        if (n->text == "subject") return makeSubjectVarGen();
        if (n->text == "error") return makeErrorVarGen();
        if (n->text == "errornumber") return makeErrorNumberVarGen();
        if (n->text == "errorvalue") return makeErrorValueVarGen();
        return makePosVarGen();
      case Kind::ListLit: return listLiteral(n);
      case Kind::Binary: return binary(n);
      case Kind::Unary: return unary(n);
      // NOTE: every multi-operand case compiles its children into named
      // locals first — C++ leaves function-argument evaluation order
      // unspecified, and compilation order matters because BoundIter
      // declares the temporaries that later TempRefs resolve to.
      case Kind::Assign: {
        auto lhs = expr(n->kids[0]);
        auto rhs = expr(n->kids[1]);
        if (n->text == ":=") return makeAssignGen(std::move(lhs), std::move(rhs));
        if (n->text == "<-") return makeRevAssignGen(std::move(lhs), std::move(rhs));
        return makeAugAssignGen(std::string_view(n->text).substr(0, n->text.size() - 2),
                                std::move(lhs), std::move(rhs));
      }
      case Kind::Swap: {
        auto lhs = expr(n->kids[0]);
        auto rhs = expr(n->kids[1]);
        if (n->text == "<->") return makeRevSwapGen(std::move(lhs), std::move(rhs));
        return makeSwapGen(std::move(lhs), std::move(rhs));
      }
      case Kind::ToBy: {
        auto from = expr(n->kids[0]);
        auto to = expr(n->kids[1]);
        auto by = n->kids.size() > 2 ? expr(n->kids[2]) : nullptr;
        return makeToByGen(std::move(from), std::move(to), std::move(by));
      }
      case Kind::Limit: {
        auto e = expr(n->kids[0]);
        auto bound = expr(n->kids[1]);
        return LimitGen::create(std::move(e), std::move(bound));
      }
      case Kind::Index: {
        auto coll = expr(n->kids[0]);
        auto idx = expr(n->kids[1]);
        return makeIndexGen(std::move(coll), std::move(idx));
      }
      case Kind::Slice: {
        auto coll = expr(n->kids[0]);
        auto from = expr(n->kids[1]);
        auto to = expr(n->kids[2]);
        return makeSliceGen(std::move(coll), std::move(from), std::move(to));
      }
      case Kind::Field: return makeFieldGen(expr(n->kids[0]), n->text);
      case Kind::Invoke: return invoke(n);
      case Kind::NativeInvoke: return nativeInvoke(n);
      case Kind::ExprSeq: return sequence(n, SeqGen::Mode::Expression);
      case Kind::Not: return NotGen::create(expr(n->kids[0]));
      case Kind::BoundIter: {
        auto var = frame_ && n->slot >= 0 ? frame_->var(static_cast<std::size_t>(n->slot))
                                          : scope_->declare(n->text);
        return InGen::create(std::move(var), expr(n->kids[0]));
      }
      case Kind::IfStmt: {  // usable in expression position
        auto cond = expr(n->kids[0]);
        auto thenB = statement(n->kids[1]);
        auto elseB = n->kids.size() > 2 ? statement(n->kids[2]) : nullptr;
        return IfGen::create(std::move(cond), std::move(thenB), std::move(elseB));
      }
      case Kind::Block:
      case Kind::EveryStmt:
      case Kind::WhileStmt:
      case Kind::UntilStmt:
      case Kind::RepeatStmt:
      case Kind::CaseStmt:
      case Kind::SuspendStmt:
        // Control constructs are expressions in Icon (e.g. as a scan
        // body: s ? while ...).
        return statement(n);
      default:
        throw IconError(600, "cannot evaluate node in expression position: " + ast::dump(n));
    }
  }

  // -- statement compilation -------------------------------------------
  GenPtr statement(const NodePtr& n) {
    switch (n->kind) {
      case Kind::Block: return sequence(n, SeqGen::Mode::Body);
      case Kind::ExprStmt: return expr(n->kids[0]);
      case Kind::DeclList: {
        std::vector<GenPtr> inits;
        for (const auto& decl : n->kids) {
          auto var = frame_ && decl->slot >= 0 ? frame_->var(static_cast<std::size_t>(decl->slot))
                                               : scope_->declare(decl->text);
          if (!decl->kids.empty()) {
            inits.push_back(makeAssignGen(VarGen::create(var), expr(decl->kids[0])));
          }
        }
        if (inits.empty()) return NullGen::create();
        return SeqGen::create(std::move(inits), SeqGen::Mode::Body);
      }
      case Kind::EveryStmt: {
        auto control = expr(n->kids[0]);
        auto body = n->kids.size() > 1 ? statement(n->kids[1]) : nullptr;
        return LoopGen::every(std::move(control), std::move(body));
      }
      case Kind::WhileStmt: {
        auto cond = expr(n->kids[0]);
        auto body = n->kids.size() > 1 ? statement(n->kids[1]) : nullptr;
        return LoopGen::whileDo(std::move(cond), std::move(body));
      }
      case Kind::UntilStmt: {
        auto cond = expr(n->kids[0]);
        auto body = n->kids.size() > 1 ? statement(n->kids[1]) : nullptr;
        return LoopGen::untilDo(std::move(cond), std::move(body));
      }
      case Kind::RepeatStmt: return LoopGen::repeat(statement(n->kids[0]));
      case Kind::IfStmt: {
        auto cond = expr(n->kids[0]);
        auto thenB = statement(n->kids[1]);
        auto elseB = n->kids.size() > 2 ? statement(n->kids[2]) : nullptr;
        return IfGen::create(std::move(cond), std::move(thenB), std::move(elseB));
      }
      case Kind::SuspendStmt:
        return SuspendGen::create(n->kids.empty() ? NullGen::create() : expr(n->kids[0]));
      case Kind::ReturnStmt:
        return ReturnGen::create(n->kids.empty() ? NullGen::create() : expr(n->kids[0]));
      case Kind::FailStmt: return FailBodyGen::create();
      case Kind::BreakStmt: return BreakGen::create();
      case Kind::NextStmt: return NextGen::create();
      case Kind::CaseStmt: {
        auto control = expr(n->kids[0]);
        std::vector<CaseGen::Branch> branches;
        for (std::size_t i = 1; i < n->kids.size(); ++i) {
          const NodePtr& b = n->kids[i];
          CaseGen::Branch branch;
          if (b->text == "default") {
            branch.body = statement(b->kids[0]);
          } else {
            branch.value = expr(b->kids[0]);
            branch.body = statement(b->kids[1]);
          }
          branches.push_back(std::move(branch));
        }
        return CaseGen::create(std::move(control), std::move(branches));
      }
      case Kind::RecordDecl: {
        interp_.globals_->declare(n->text, Value::proc(makeRecordConstructor(n)));
        return NullGen::create();
      }
      case Kind::GlobalDecl: {
        for (const auto& name : n->kids) {
          if (!interp_.globals_->lookup(name->text)) interp_.globals_->declare(name->text);
        }
        return NullGen::create();
      }
      case Kind::Def: {
        // Nested definitions honour the configured backend, like
        // top-level ones.
        interp_.globals_->declare(n->text, Value::proc(interp_.makeProcedure(n)));
        return NullGen::create();
      }
      default: return expr(n);
    }
  }

  /// `record name(f1, ..., fn)` declares a constructor procedure.
  static ProcPtr makeRecordConstructor(const NodePtr& decl) {
    std::vector<std::string> fields;
    fields.reserve(decl->kids.size());
    for (const auto& f : decl->kids) fields.push_back(f->text);
    auto type = RecordType::create(decl->text, std::move(fields));
    return ProcImpl::create(decl->text, [type](std::vector<Value> args) -> GenPtr {
      return ConstGen::create(Value::record(RecordImpl::create(type, std::move(args))));
    });
  }

  /// Per-procedure compile-once state: the frame layout (resolved lazily
  /// at first call, under call_once so pool threads can race the first
  /// invocation), and the free list of parked body trees.
  struct ProcState {
    Interpreter* interp;
    NodePtr params, body;
    std::once_flag once;
    FrameLayout layout;
    std::shared_ptr<BodyPool> pool = std::make_shared<BodyPool>();
  };

  /// Build a procedure value. Invocation takes a parked body from the
  /// procedure's pool and rebinds its frame (no Scope, no hashmap, no
  /// re-compilation); only when the pool is dry is a body compiled — once
  /// — against a fresh flat frame. Parameters are variadic: missing args
  /// are &null, extras ignored (Unicon convention). Bodies that create
  /// co-expressions are not poolable (their environments outlive the
  /// call) and fall back to one fresh frame+tree per call.
  ProcPtr makeProc(const NodePtr& def) {
    auto state = std::make_shared<ProcState>();
    state->interp = &interp_;  // procedures close over the interpreter's globals
    state->params = def->kids[0];
    state->body = def->kids[1];
    return ProcImpl::create(def->text, [state](std::vector<Value> args) -> GenPtr {
      std::call_once(state->once, [&] {
        state->layout = resolve(state->params, state->body, *state->interp->globals_);
      });
      if (state->layout.poolable) {
        if (auto parked = state->pool->take()) {
          std::static_pointer_cast<BodyRootGen>(parked)->unpackArgs(args);
          return parked;
        }
      }
      auto frame = std::make_shared<Frame>(state->layout, state->interp->globals_);
      frame->rebind(args);
      Compiler c(*state->interp, state->interp->globals_, &state->layout, frame.get());
      auto root = BodyRootGen::create(c.statement(state->body));
      root->setUnpackClosure([frame](const std::vector<Value>& a) { frame->rebind(a); });
      if (state->layout.poolable) {
        // Weak on purpose: a parked body living in the pool must not
        // itself keep the pool alive (pool → body → recycler → pool is
        // an unreclaimable cycle). If the procedure value is dropped
        // while a body is in flight, parking just becomes a no-op.
        root->setRecycler([weakPool = std::weak_ptr<BodyPool>(state->pool)](
                              std::shared_ptr<BodyRootGen> b) {
          if (auto pool = weakPool.lock()) pool->put(std::move(b));
        });
      }
      return root;
    });
  }

 private:
  GenPtr identifier(const NodePtr& n) {
    if (frame_) {
      switch (n->res) {
        case ast::Res::Slot:
        case ast::Res::Late:
          return VarGen::create(frame_->var(static_cast<std::size_t>(n->slot)));
        case ast::Res::Global:
          if (auto var = interp_.globals_->lookup(n->text)) return VarGen::create(var);
          break;  // resolved-away global: fall back by name
        case ast::Res::Builtin:
          if (const Value* b = builtins::lookupConst(n->text)) return ConstGen::create(*b);
          break;
        case ast::Res::Unresolved:
          if (const auto slot = layout_->slotOf(n->text); slot >= 0) {
            return VarGen::create(frame_->var(static_cast<std::size_t>(slot)));
          }
          break;
      }
    }
    if (auto var = scope_->lookup(n->text)) return VarGen::create(var);
    // Builtins compile to their interned constants — one Value per
    // builtin for the process, not a fresh wrapper per compile.
    if (const Value* b = builtins::lookupConst(n->text)) return ConstGen::create(*b);
    // Undeclared: implicitly local to the current scope (Unicon's loose
    // default); first read yields &null.
    return VarGen::create(scope_->declare(n->text));
  }

  GenPtr listLiteral(const NodePtr& n) {
    std::vector<GenPtr> elems;
    elems.reserve(n->kids.size());
    for (const auto& k : n->kids) elems.push_back(expr(k));
    return makeListLitGen(std::move(elems));
  }

  GenPtr sequence(const NodePtr& n, SeqGen::Mode mode) {
    std::vector<GenPtr> terms;
    terms.reserve(n->kids.size());
    for (const auto& k : n->kids) terms.push_back(statement(k));
    if (terms.empty()) return mode == SeqGen::Mode::Body ? FailGen::create() : NullGen::create();
    return SeqGen::create(std::move(terms), mode);
  }

  GenPtr binary(const NodePtr& n) {
    auto lhs = expr(n->kids[0]);  // compile order is load-bearing: see the
    auto rhs = expr(n->kids[1]);  // NOTE on temporaries above
    if (n->text == "&") return ProductGen::create(std::move(lhs), std::move(rhs));
    if (n->text == "|") return AltGen::create(std::move(lhs), std::move(rhs));
    if (n->text == "?") return ScanGen::create(std::move(lhs), std::move(rhs));
    return makeBinaryOpGen(n->text, std::move(lhs), std::move(rhs));
  }

  GenPtr unary(const NodePtr& n) {
    const std::string& op = n->text;
    if (op == "!") return PromoteGen::create(expr(n->kids[0]));
    if (op == "@") return ActivateGen::create(expr(n->kids[0]));
    if (op == "^") return RefreshGen::create(expr(n->kids[0]));
    if (op == "|") return RepeatAltGen::create(expr(n->kids[0]));
    if (op == "<>") return CoExprCreateGen::create(coExprFactory(n->kids[0], /*shadow=*/false));
    if (op == "|<>") return CoExprCreateGen::create(coExprFactory(n->kids[0], /*shadow=*/true));
    if (op == "|>") {
      return makePipeCreateGen(coExprFactory(n->kids[0], /*shadow=*/true),
                               interp_.options_.pipeCapacity, ThreadPool::global(),
                               interp_.options_.pipeBatch);
    }
    return makeUnaryOpGen(op, expr(n->kids[0]));
  }

  /// Body factory for <> / |<> / |>. With shadowing, the factory
  /// snapshots every referenced *local* into a fresh cell each time it
  /// runs (creation and every ^ refresh) — Section III.A.
  ///
  /// In frame mode the enclosing locals are slots, not scope entries, so
  /// the factory enumerates the frame's slot bindings: `<>` aliases every
  /// slot cell into one scope shared across refreshes (cells shared with
  /// the enclosing body), while `|<>` / `|>` copy the current value of
  /// each referenced, currently-local slot into a fresh cell per run.
  GenFactory coExprFactory(const NodePtr& body, bool shadow) {
    Interpreter* interp = &interp_;
    NodePtr bodyAst = body;
    if (frame_) {
      // Capture only the slots the body can actually name. Capturing the
      // whole frame lets a co-expression stored in one of the enclosing
      // locals (mapReduce's `put(tasks, t)`) close a cell → value →
      // factory → cell cycle that shared_ptr can never reclaim. For
      // shadow mode the referenced-name filter already ran per refresh;
      // hoisting it here is observationally identical. For alias mode
      // the filter must keep body-bound names too: `local x` inside a
      // `<>` body rebinds the *enclosing* slot cell.
      const auto referenced =
          shadow ? transform::freeIdents(bodyAst) : transform::mentionedIdents(bodyAst);
      std::vector<std::pair<std::string, VarPtr>> slotVars;
      for (std::size_t i = 0; i < frame_->slotCount(); ++i) {
        const std::string& name = layout_->slotNames[i];
        if (std::find(referenced.begin(), referenced.end(), name) == referenced.end()) continue;
        slotVars.emplace_back(name, frame_->var(i));
      }
      if (!shadow) {
        auto alias = interp_.globals_->child();
        for (auto& [name, var] : slotVars) alias->bind(name, var);
        return [interp, alias, bodyAst]() -> GenPtr {
          Compiler c(*interp, alias);
          return c.expr(bodyAst);
        };
      }
      ScopePtr globals = interp_.globals_;
      return [interp, globals, bodyAst, slotVars = std::move(slotVars)]() -> GenPtr {
        auto shadowScope = globals->child();
        for (const auto& [name, var] : slotVars) {
          if (auto late = std::dynamic_pointer_cast<LateBoundVar>(var)) {
            // A late-bound name only shadows while it is acting as a
            // local; once a global exists the co-expression shares it.
            if (late->actsAsLocal()) shadowScope->declare(name, late->frameCell()->get());
          } else {
            shadowScope->declare(name, var->get());  // copy, don't alias
          }
        }
        Compiler c(*interp, shadowScope);
        return c.expr(bodyAst);
      };
    }
    ScopePtr enclosing = scope_;
    if (!shadow) {
      return [interp, enclosing, bodyAst]() -> GenPtr {
        Compiler c(*interp, enclosing);
        return c.expr(bodyAst);
      };
    }
    auto referenced = transform::freeIdents(bodyAst);
    return [interp, enclosing, bodyAst, referenced = std::move(referenced)]() -> GenPtr {
      auto shadowScope = enclosing->child();
      for (const auto& name : referenced) {
        if (auto local = enclosing->lookupLocal(name)) {
          shadowScope->declare(name, local->get());  // copy, don't alias
        }
      }
      Compiler c(*interp, shadowScope);
      return c.expr(bodyAst);
    };
  }

  GenPtr invoke(const NodePtr& n) {
    std::vector<GenPtr> args;
    for (std::size_t i = 1; i < n->kids.size(); ++i) args.push_back(expr(n->kids[i]));
    return makeInvokeGen(expr(n->kids[0]), std::move(args));
  }

  /// recv::name(args) — the native cut-through. `this::f(x)` calls f(x);
  /// anything else calls f(recv, x...), so host helpers registered with
  /// receiver-first conventions line up (Section IV's mixed-language
  /// chains).
  GenPtr nativeInvoke(const NodePtr& n) {
    const NodePtr& recv = n->kids[0];
    const bool isThis = recv->kind == Kind::Ident && recv->text == "this";
    GenPtr callee = identifier(n);  // the callee name's resolution rides on this node
    std::vector<GenPtr> args;
    if (!isThis) args.push_back(expr(recv));
    for (std::size_t i = 1; i < n->kids.size(); ++i) args.push_back(expr(n->kids[i]));
    return makeInvokeGen(std::move(callee), std::move(args));
  }

  Interpreter& interp_;
  ScopePtr scope_;
  const FrameLayout* layout_ = nullptr;  // set in frame mode only
  Frame* frame_ = nullptr;               // valid for the duration of one compile
};

// ---------------------------------------------------------------------
// Interpreter
// ---------------------------------------------------------------------

namespace {

/// Resolve Options::quotas (folding in the legacy vmStepLimit fuel
/// alias) into a governor, or null for an ungoverned interpreter. Runs
/// the admission gate — may throw IconError 815 (the shed path).
std::shared_ptr<governor::ResourceGovernor> makeGovernor(Interpreter::Options& options) {
  if (options.quotas.maxFuel == 0 && options.vmStepLimit != 0) {
    options.quotas.maxFuel = options.vmStepLimit;
  }
  if (!options.quotas.any() && !options.governed) return nullptr;
  return governor::ResourceGovernor::create(options.quotas);
}

/// Root wrapper for every drive of a governed interpreter: each next()
/// runs with the interpreter's governor installed on the driving thread
/// and the governor's stop token ambient, so pipes created during the
/// drive link under the session's cancellation root. Destruction of the
/// wrapped tree also happens governed, so payload frees credit the heap
/// budget they were charged to.
class GovernedRootGen final : public Gen {
 public:
  GovernedRootGen(GenPtr inner, std::shared_ptr<governor::ResourceGovernor> gov)
      : inner_(std::move(inner)), gov_(std::move(gov)) {}

  ~GovernedRootGen() override {
    governor::ScopedGovernor governed(gov_);
    inner_.reset();
  }

  static GenPtr wrap(GenPtr inner, const std::shared_ptr<governor::ResourceGovernor>& gov) {
    if (gov == nullptr) return inner;
    return std::make_shared<GovernedRootGen>(std::move(inner), gov);
  }

 protected:
  bool doNext(Result& out) override {
    governor::ScopedGovernor governed(gov_);
    CancelScope scope(gov_->stopToken());
    return inner_->next(out);
  }
  void doRestart() override { inner_->restart(); }

 private:
  GenPtr inner_;
  std::shared_ptr<governor::ResourceGovernor> gov_;
};

}  // namespace

Interpreter::Interpreter(Options options)
    : options_(std::move(options)), governor_(makeGovernor(options_)),
      globals_(Scope::makeGlobal()) {}

Interpreter::~Interpreter() {
  // A pipe stored in a global (`p := |> e`) cycles back to the global
  // scope through its refresh factory, so neither would ever be
  // destroyed — and an undestroyed pipe never closes its queue, leaving
  // its producer blocked in put() for the global pool's destructor to
  // join at process exit (deadlock). Clearing the bindings breaks the
  // cycle: the pipe's destructor closes the queue and the producer
  // retires. Teardown runs governed so the session's heap credits land
  // on its own budget.
  std::optional<governor::ScopedGovernor> governed;
  if (governor_ != nullptr) governed.emplace(governor_);
  globals_->clear();
}

void Interpreter::load(const std::string& source) {
  loadProgram(frontend::parseProgram(source));
}

void Interpreter::loadProgram(const ast::NodePtr& program) {
  if (obs::metricsEnabled()) [[unlikely]] obs::KernelStats::get().interpLoads.add(1);
  ast::NodePtr prog = options_.normalize ? transform::normalizeProgram(program) : program;
  // Top-level statements are a drive: run them governed, with the
  // session's stop token ambient (mirrors GovernedRootGen).
  std::optional<governor::ScopedGovernor> governed;
  std::optional<CancelScope> scope;
  if (governor_ != nullptr) {
    governed.emplace(governor_);
    scope.emplace(governor_->stopToken());
  }
  for (const auto& item : prog->kids) {
    if (item->kind == Kind::Def) {
      globals_->declare(item->text, Value::proc(makeProcedure(item)));
    } else if (options_.backend == Backend::kVm) {
      vm::ChunkCompiler cc(*this, globals_);
      vm::VmGen::create(*this, cc.compileStmt(item), globals_, nullptr, nullptr)->next();
    } else {
      // Top-level statements run immediately, bounded, like Icon's
      // outermost level of iteration.
      Compiler stmtCompiler(*this, globals_);
      stmtCompiler.statement(item)->next();
    }
  }
}

GenPtr Interpreter::eval(const std::string& source) {
  if (obs::metricsEnabled()) [[unlikely]] obs::KernelStats::get().interpEvals.add(1);
  ast::NodePtr tree = frontend::parseExpression(source);
  if (options_.normalize) {
    transform::TempNames names;
    tree = transform::normalize(tree, names);
  }
  if (options_.backend == Backend::kVm) {
    vm::ChunkCompiler cc(*this, globals_);
    return GovernedRootGen::wrap(
        vm::VmGen::create(*this, cc.compileExpr(tree), globals_, nullptr, nullptr), governor_);
  }
  return GovernedRootGen::wrap(compileExpr(tree, globals_), governor_);
}

std::vector<Value> Interpreter::evalAll(const std::string& source) {
  return eval(source)->collect();
}

std::optional<Value> Interpreter::evalOne(const std::string& source) {
  return eval(source)->nextValue();
}

GenPtr Interpreter::call(const std::string& name, std::vector<Value> args) {
  auto var = globals_->lookup(name);
  Value f = var ? var->get() : Value::null();
  if (!f.isProc()) {
    if (const Value* builtin = builtins::lookupConst(name)) {
      f = *builtin;
    } else {
      throw errCallableExpected(name);
    }
  }
  return GovernedRootGen::wrap(f.proc()->invoke(std::move(args)), governor_);
}

void Interpreter::registerNative(const std::string& name, ProcPtr proc) {
  globals_->declare(name, Value::proc(std::move(proc)));
}

void Interpreter::defineGlobal(const std::string& name, Value v) {
  globals_->declare(name, std::move(v));
}

std::optional<Value> Interpreter::global(const std::string& name) const {
  auto var = globals_->lookup(name);
  if (!var) return std::nullopt;
  return var->get();
}

GenPtr Interpreter::compileExpr(const ast::NodePtr& node, const ScopePtr& scope) {
  Compiler c(*this, scope);
  return c.expr(node);
}

namespace {

/// VM analogue of Compiler::ProcState: resolve the layout and compile
/// the chunk once (under call_once — pool threads can race the first
/// invocation), then pool whole VmGen-rooted bodies exactly the way the
/// tree backend pools its body trees.
struct VmProcState {
  Interpreter* interp;
  std::string name;
  NodePtr params, body;
  std::once_flag once;
  FrameLayout layout;
  vm::ChunkPtr chunk;
  std::shared_ptr<BodyPool> pool = std::make_shared<BodyPool>();
};

ProcPtr vmMakeProc(Interpreter& interp, const NodePtr& def) {
  auto state = std::make_shared<VmProcState>();
  state->interp = &interp;
  state->name = def->text;
  state->params = def->kids[0];
  state->body = def->kids[1];
  return ProcImpl::create(def->text, [state](std::vector<Value> args) -> GenPtr {
    Interpreter& in = *state->interp;
    std::call_once(state->once, [&] {
      state->layout = resolve(state->params, state->body, *in.globalScope());
      vm::ChunkCompiler cc(in, in.globalScope(), &state->layout);
      state->chunk = cc.compileBody(state->name, state->body);
    });
    if (state->layout.poolable) {
      if (auto parked = state->pool->take()) {
        if (obs::metricsEnabled()) [[unlikely]] obs::VmStats::get().framesPooled.add(1);
        std::static_pointer_cast<BodyRootGen>(parked)->unpackArgs(args);
        return parked;
      }
    }
    auto frame = std::make_shared<Frame>(state->layout, in.globalScope());
    frame->rebind(args);
    auto root = BodyRootGen::create(
        vm::VmGen::create(in, state->chunk, in.globalScope(), &state->layout, frame));
    root->setUnpackClosure([frame](const std::vector<Value>& a) { frame->rebind(a); });
    if (state->layout.poolable) {
      // Weak for the same reason as the tree recycler above: the pool
      // must not keep itself alive through its parked bodies.
      root->setRecycler(
          [weakPool = std::weak_ptr<BodyPool>(state->pool)](std::shared_ptr<BodyRootGen> b) {
            if (auto pool = weakPool.lock()) pool->put(std::move(b));
          });
    }
    return root;
  });
}

}  // namespace

ProcPtr Interpreter::makeProcedure(const ast::NodePtr& def) {
  if (options_.backend == Backend::kVm) return vmMakeProc(*this, def);
  Compiler c(*this, globals_);
  return c.makeProc(def);
}

ProcPtr Interpreter::makeRecordConstructor(const ast::NodePtr& decl) {
  return Compiler::makeRecordConstructor(decl);
}

GenPtr Interpreter::compileSubtree(const ast::NodePtr& node, const ScopePtr& scope,
                                   const FrameLayout* layout, Frame* frame, bool statementPos) {
  if (layout != nullptr && frame != nullptr) {
    Compiler c(*this, scope, layout, frame);
    return statementPos ? c.statement(node) : c.expr(node);
  }
  Compiler c(*this, scope);
  return statementPos ? c.statement(node) : c.expr(node);
}

}  // namespace congen::interp

// interpreter.hpp — tree-walking evaluation of the Junicon dialect.
//
// The interactive path of the paper's harness (Section VI): where the
// Java backend *emits* source, the interpreter builds the same kernel
// iterator trees directly from the (normalized) AST and runs them. Host
// C++ functions are registered as natives and reached via the :: cut-
// through, giving the mixed-language story without a compile step.
#pragma once

#include <string>
#include <vector>

#include "frontend/ast.hpp"
#include "interp/scope.hpp"
#include "kernel/gen.hpp"
#include "runtime/proc.hpp"

namespace congen {
class ThreadPool;
}

namespace congen::interp {

class Interpreter {
 public:
  /// Options mostly matter to benchmarks (pipe sizing / pool choice).
  struct Options {
    std::size_t pipeCapacity = 1024;
    std::size_t pipeBatch = 64;  // adaptive batch cap for |> transport (1 = unbatched)
    bool normalize = true;       // run the Section V.A flattening pass first
  };

  Interpreter() : Interpreter(Options{}) {}
  explicit Interpreter(Options options);
  ~Interpreter();

  /// Parse and load a program: procedure definitions become globals; any
  /// top-level statements execute immediately (bounded).
  void load(const std::string& source);

  /// Load a pre-parsed program.
  void loadProgram(const ast::NodePtr& program);

  /// Parse an expression and return its generator over the global scope.
  [[nodiscard]] GenPtr eval(const std::string& source);

  /// Evaluate and collect every result value.
  std::vector<Value> evalAll(const std::string& source);

  /// First result of an expression (nullopt = failure).
  std::optional<Value> evalOne(const std::string& source);

  /// Call a loaded procedure by name.
  [[nodiscard]] GenPtr call(const std::string& name, std::vector<Value> args);

  /// Register a host-side function, reachable both as a plain name and
  /// through the :: native cut-through.
  void registerNative(const std::string& name, ProcPtr proc);
  /// Bind a global value (e.g. the host's data for the embedded region).
  void defineGlobal(const std::string& name, Value v);
  [[nodiscard]] std::optional<Value> global(const std::string& name) const;

  /// Compile an AST expression over a scope (exposed for the transform
  /// equivalence tests).
  [[nodiscard]] GenPtr compileExpr(const ast::NodePtr& node, const ScopePtr& scope);

  [[nodiscard]] const ScopePtr& globalScope() const noexcept { return globals_; }

 private:
  friend class Compiler;

  Options options_;
  ScopePtr globals_;
};

}  // namespace congen::interp

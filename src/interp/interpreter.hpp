// interpreter.hpp — tree-walking evaluation of the Junicon dialect.
//
// The interactive path of the paper's harness (Section VI): where the
// Java backend *emits* source, the interpreter builds the same kernel
// iterator trees directly from the (normalized) AST and runs them. Host
// C++ functions are registered as natives and reached via the :: cut-
// through, giving the mixed-language story without a compile step.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "frontend/ast.hpp"
#include "interp/scope.hpp"
#include "kernel/gen.hpp"
#include "runtime/governor.hpp"
#include "runtime/proc.hpp"

namespace congen {
class ThreadPool;
}

namespace congen::interp {

class Frame;
struct FrameLayout;

/// Execution backend for procedure bodies and eval'd expressions.
///  - kTree: the original kernel-iterator trees (one Gen per AST node);
///  - kVm:   resolved ASTs compile to bytecode chunks (interp/chunk.hpp)
///    executed by a resumable stack machine (interp/vm.hpp). Constructs
///    the machine does not flatten (scanning, case, co-expression
///    creation, ...) run as embedded tree subtrees, so the two backends
///    share semantics where they share code and are differentially
///    tested where they don't (tests/interp, tests/conformance).
enum class Backend : std::uint8_t { kTree, kVm };

/// Default backend for new Interpreters: CONGEN_BACKEND=vm|tree if set
/// (read once per process), else kTree.
[[nodiscard]] Backend defaultBackend();

class Interpreter {
 public:
  /// Options mostly matter to benchmarks (pipe sizing / pool choice).
  struct Options {
    std::size_t pipeCapacity = 1024;
    std::size_t pipeBatch = 64;  // adaptive batch cap for |> transport (1 = unbatched)
    bool normalize = true;       // run the Section V.A flattening pass first
    Backend backend = defaultBackend();
    /// Hard resource budgets (0 = unlimited). Any non-zero budget gives
    /// this interpreter a ResourceGovernor: the process admission gate
    /// runs at construction (throws IconError 815 when shedding), and
    /// every drive — top-level statements, eval'd generators, call() —
    /// runs governed, on whichever thread it happens (pipe producers
    /// re-install the creator's governor). Exhaustion raises the
    /// catchable 81x errQuotaExceeded family.
    governor::Limits quotas;
    /// Create a (limitless) governor even when quotas are all-zero, so
    /// the session has a StopSource root and can be supervised
    /// (congen-run --supervise without --max-*).
    bool governed = false;
    /// Legacy alias for quotas.maxFuel: the old VM-only dispatch budget,
    /// honored when quotas.maxFuel is 0. It now draws on the unified
    /// fuel counter (BOTH backends charge it) and exhaustion raises
    /// IconError 810, not the retired 316.
    std::uint64_t vmStepLimit = 0;
  };

  Interpreter() : Interpreter(Options{}) {}
  explicit Interpreter(Options options);
  ~Interpreter();

  /// Parse and load a program: procedure definitions become globals; any
  /// top-level statements execute immediately (bounded).
  void load(const std::string& source);

  /// Load a pre-parsed program.
  void loadProgram(const ast::NodePtr& program);

  /// Parse an expression and return its generator over the global scope.
  [[nodiscard]] GenPtr eval(const std::string& source);

  /// Evaluate and collect every result value.
  std::vector<Value> evalAll(const std::string& source);

  /// First result of an expression (nullopt = failure).
  std::optional<Value> evalOne(const std::string& source);

  /// Call a loaded procedure by name.
  [[nodiscard]] GenPtr call(const std::string& name, std::vector<Value> args);

  /// Register a host-side function, reachable both as a plain name and
  /// through the :: native cut-through.
  void registerNative(const std::string& name, ProcPtr proc);
  /// Bind a global value (e.g. the host's data for the embedded region).
  void defineGlobal(const std::string& name, Value v);
  [[nodiscard]] std::optional<Value> global(const std::string& name) const;

  /// Compile an AST expression over a scope (exposed for the transform
  /// equivalence tests). Always the tree backend.
  [[nodiscard]] GenPtr compileExpr(const ast::NodePtr& node, const ScopePtr& scope);

  /// Build a procedure value from a Def node under the configured
  /// backend (the chunk compiler uses this for nested definitions).
  [[nodiscard]] ProcPtr makeProcedure(const ast::NodePtr& def);

  /// `record name(f1, ..., fn)` constructor procedure (backend-neutral).
  [[nodiscard]] static ProcPtr makeRecordConstructor(const ast::NodePtr& decl);

  /// Tree-compile one subtree in a frame or scope context — the VM's
  /// escape hatch for constructs it embeds rather than flattens. With a
  /// layout/frame pair the frame-mode tree compiler runs (slot-resolved
  /// identifiers); otherwise names resolve against `scope`. `frame` must
  /// outlive the returned generator.
  [[nodiscard]] GenPtr compileSubtree(const ast::NodePtr& node, const ScopePtr& scope,
                                      const FrameLayout* layout, Frame* frame, bool statementPos);

  [[nodiscard]] const ScopePtr& globalScope() const noexcept { return globals_; }
  [[nodiscard]] const Options& options() const noexcept { return options_; }

  /// This interpreter's resource governor — null when Options::quotas is
  /// all-zero (an ungoverned interpreter pays no governance cost at
  /// all). congen-run hands it to the Supervisor for --supervise.
  [[nodiscard]] const std::shared_ptr<governor::ResourceGovernor>& resourceGovernor()
      const noexcept {
    return governor_;
  }

 private:
  friend class Compiler;

  Options options_;
  std::shared_ptr<governor::ResourceGovernor> governor_;
  ScopePtr globals_;
};

}  // namespace congen::interp

#include "interp/chunk.hpp"

#include <iomanip>
#include <sstream>

namespace congen::interp::vm {

const char* opName(Op op) {
  switch (op) {
    case Op::kConst: return "CONST";
    case Op::kLoadVar: return "LOADVAR";
    case Op::kLoadSlot: return "LOADSLOT";
    case Op::kLoadLate: return "LOADLATE";
    case Op::kPop: return "POP";
    case Op::kMark: return "MARK";
    case Op::kUnmark: return "UNMARK";
    case Op::kJump: return "JUMP";
    case Op::kEfail: return "EFAIL";
    case Op::kYield: return "YIELD";
    case Op::kSuspend: return "SUSPEND";
    case Op::kReturn: return "RETURN";
    case Op::kFailBody: return "FAILBODY";
    case Op::kBinOp: return "BINOP";
    case Op::kUnOp: return "UNOP";
    case Op::kAssign: return "ASSIGN";
    case Op::kAugAssign: return "AUGASSIGN";
    case Op::kSwap: return "SWAP";
    case Op::kIndex: return "INDEX";
    case Op::kField: return "FIELD";
    case Op::kSlice: return "SLICE";
    case Op::kListLit: return "LISTLIT";
    case Op::kInvoke: return "INVOKE";
    case Op::kToBy: return "TOBY";
    case Op::kPromote: return "PROMOTE";
    case Op::kIn: return "IN";
    case Op::kAltBegin: return "ALT";
    case Op::kRaltBegin: return "RALT";
    case Op::kRaltNote: return "RALTNOTE";
    case Op::kLimitBegin: return "LIMIT";
    case Op::kLimitExit: return "LIMITEXIT";
    case Op::kLoopBegin: return "LOOP";
    case Op::kLoopBodyMark: return "BODYMARK";
    case Op::kLoopEnd: return "LOOPEND";
    case Op::kBreak: return "BREAK";
    case Op::kNext: return "NEXT";
    case Op::kThrowBreak: return "THROWBREAK";
    case Op::kThrowNext: return "THROWNEXT";
    case Op::kEscape: return "ESCAPE";
  }
  return "?";
}

namespace {

const char* loopKindName(LoopShape::Kind k) {
  switch (k) {
    case LoopShape::Kind::Every: return "every";
    case LoopShape::Kind::While: return "while";
    case LoopShape::Kind::Until: return "until";
    case LoopShape::Kind::Repeat: return "repeat";
  }
  return "?";
}

/// Escape-site node kinds are a small closed set (the constructs the VM
/// embeds rather than flattens); anything else prints generically.
const char* escapeKindName(ast::Kind k) {
  switch (k) {
    case ast::Kind::KeywordVar: return "keyword";
    case ast::Kind::Binary: return "scan";
    case ast::Kind::Unary: return "unary";
    case ast::Kind::CaseStmt: return "case";
    case ast::Kind::Assign: return "revassign";
    case ast::Kind::Swap: return "revswap";
    default: return "node";
  }
}

/// Which operands an op actually carries, so the listing shows only the
/// meaningful ones (every Insn physically stores both).
enum class Operands { None, A, AB, ABracket, ABBracket };

Operands operandsOf(Op op) {
  switch (op) {
    case Op::kPop:
    case Op::kUnmark:
    case Op::kEfail:
    case Op::kYield:
    case Op::kSuspend:
    case Op::kReturn:
    case Op::kFailBody:
    case Op::kPromote:
    case Op::kLoopEnd:
    case Op::kThrowBreak:
    case Op::kThrowNext:
      return Operands::None;
    case Op::kAssign:
    case Op::kSwap:
    case Op::kIndex:
    case Op::kSlice:
      return Operands::ABracket;  // a unused, b = bracket
    case Op::kBinOp:
    case Op::kUnOp:
    case Op::kAugAssign:
    case Op::kField:
    case Op::kListLit:
    case Op::kInvoke:
    case Op::kToBy:
      return Operands::ABBracket;  // a meaningful, b = bracket
    case Op::kLoadLate:
    case Op::kIn:
    case Op::kLimitBegin:
    case Op::kNext:
      return Operands::AB;
    default:
      return Operands::A;
  }
}

void describeA(std::ostringstream& os, const Chunk& c, Op op, std::int32_t a) {
  switch (op) {
    case Op::kConst:
      os << "  ; " << c.consts[static_cast<std::size_t>(a)].image();
      break;
    case Op::kLoadVar:
      if (a >= 0 && static_cast<std::size_t>(a) < c.varNames.size()) {
        os << "  ; " << c.varNames[static_cast<std::size_t>(a)];
      }
      break;
    case Op::kField:
      os << "  ; ." << c.consts[static_cast<std::size_t>(a)].image();
      break;
    case Op::kBinOp:
      os << "  ; " << binKindName(static_cast<BinKind>(a));
      break;
    case Op::kAugAssign:
      os << "  ; " << binKindName(static_cast<BinKind>(a)) << ":=";
      break;
    case Op::kUnOp:
      os << "  ; " << unKindName(static_cast<UnKind>(a));
      break;
    case Op::kLoopBegin:
      os << "  ; " << loopKindName(c.loops[static_cast<std::size_t>(a)].kind);
      break;
    case Op::kEscape: {
      const EscapeSite& e = c.escapes[static_cast<std::size_t>(a)];
      os << "  ; " << escapeKindName(e.node->kind);
      if (!e.node->text.empty()) os << " " << e.node->text;
      break;
    }
    default:
      break;
  }
}

}  // namespace

std::string disassemble(const Chunk& chunk) {
  std::ostringstream os;
  os << "chunk " << chunk.name << "  slots=" << chunk.nSlots << " caches=" << chunk.nCaches
     << " escapes=" << chunk.escapes.size() << (chunk.scopeMode ? " scope" : "")
     << (chunk.poolable ? " poolable" : "") << "\n";
  std::int32_t lastLine = -1;
  for (std::size_t pc = 0; pc < chunk.code.size(); ++pc) {
    const Insn& ins = chunk.code[pc];
    os << std::setw(4) << std::setfill('0') << pc << std::setfill(' ');
    if (chunk.lines[pc] != lastLine) {
      lastLine = chunk.lines[pc];
      os << std::setw(5) << lastLine;
    } else {
      os << "     ";
    }
    os << "  " << std::left << std::setw(10) << opName(ins.op) << std::right;
    switch (operandsOf(ins.op)) {
      case Operands::None:
        break;
      case Operands::A:
        os << " " << ins.a;
        describeA(os, chunk, ins.op, ins.a);
        break;
      case Operands::AB:
        os << " " << ins.a << " " << ins.b;
        if (ins.op == Op::kIn && (ins.b & 1) == 0) describeA(os, chunk, Op::kLoadVar, ins.a);
        break;
      case Operands::ABracket:
        os << " [" << ins.b << "]";
        break;
      case Operands::ABBracket:
        os << " " << ins.a << " [" << ins.b << "]";
        describeA(os, chunk, ins.op, ins.a);
        break;
    }
    os << "\n";
  }
  if (!chunk.consts.empty()) {
    os << "consts:";
    for (std::size_t i = 0; i < chunk.consts.size(); ++i) os << " k" << i << "=" << chunk.consts[i].image();
    os << "\n";
  }
  if (!chunk.varNames.empty()) {
    os << "vars:";
    for (std::size_t i = 0; i < chunk.varNames.size(); ++i) os << " v" << i << "=" << chunk.varNames[i];
    os << "\n";
  }
  for (std::size_t i = 0; i < chunk.loops.size(); ++i) {
    os << "loop " << i << ": " << loopKindName(chunk.loops[i].kind) << " top=" << chunk.loops[i].topPc
       << "\n";
  }
  for (std::size_t i = 0; i < chunk.escapes.size(); ++i) {
    const EscapeSite& e = chunk.escapes[i];
    os << "escape " << i << ": " << escapeKindName(e.node->kind);
    if (!e.node->text.empty()) os << " '" << e.node->text << "'";
    if (e.stmtPos) os << " stmt";
    if (e.loopDepth >= 0) os << " loop=" << e.loopDepth << (e.inLoopBody ? " body" : " control");
    os << "\n";
  }
  return os.str();
}

}  // namespace congen::interp::vm

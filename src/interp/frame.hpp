// frame.hpp — flat, slot-indexed call frames.
//
// The resolution pass (interp/resolver) assigns every name in a procedure
// body a frame slot at compile time; a call then materializes one Frame —
// a vector of cells — instead of a child Scope with a per-call hashmap.
// Reusing a parked body (kernel BodyPool) rebinds the same frame: slots
// are overwritten in place, no allocation, no hashing.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "interp/resolver.hpp"
#include "interp/scope.hpp"
#include "runtime/var.hpp"

namespace congen::interp {

/// A variable whose binding could not be classified at resolution time:
/// the name was neither a parameter/local nor a known global/builtin. A
/// global of that name may still appear later (`global` executes at run
/// time), so each access re-checks the global scope and falls back to the
/// frame cell (the implicit-local default) while no global exists.
class LateBoundVar final : public Var {
 public:
  LateBoundVar(std::string name, ScopePtr globals, VarPtr fallback)
      : name_(std::move(name)), globals_(std::move(globals)), fallback_(std::move(fallback)) {}

  [[nodiscard]] Value get() const override { return target()->get(); }
  void set(Value v) override { target()->set(std::move(v)); }

  /// The binding an access would use right now.
  [[nodiscard]] const VarPtr& target() const {
    if (auto g = globals_->lookup(name_)) {
      cachedGlobal_ = std::move(g);
      return cachedGlobal_;
    }
    return fallback_;
  }

  /// True while no global of this name exists (accesses hit the frame
  /// cell) — the name is behaving as an implicit local.
  [[nodiscard]] bool actsAsLocal() const { return globals_->lookup(name_) == nullptr; }

  [[nodiscard]] const VarPtr& frameCell() const noexcept { return fallback_; }

  static std::shared_ptr<LateBoundVar> create(std::string name, ScopePtr globals, VarPtr fallback) {
    return std::make_shared<LateBoundVar>(std::move(name), std::move(globals), std::move(fallback));
  }

 private:
  std::string name_;
  ScopePtr globals_;
  VarPtr fallback_;
  mutable VarPtr cachedGlobal_;  // keeps the returned reference alive
};

/// One activation's storage: layout.slotCount() cells. `var(slot)` is
/// what compiled identifier nodes reference — a plain cell for Slot
/// names, a LateBoundVar wrapper for Late names.
class Frame {
 public:
  Frame(const FrameLayout& layout, const ScopePtr& globals) : nParams_(layout.nParams) {
    const std::size_t n = layout.slotCount();
    cells_.reserve(n);
    vars_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      auto cell = std::make_shared<CellVar>();
      if (layout.late[i]) {
        vars_.push_back(LateBoundVar::create(layout.slotNames[i], globals, cell));
      } else {
        vars_.push_back(cell);
      }
      cells_.push_back(std::move(cell));
    }
  }

  [[nodiscard]] const VarPtr& var(std::size_t slot) const { return vars_[slot]; }
  [[nodiscard]] std::size_t slotCount() const noexcept { return cells_.size(); }

  /// Fresh-call state: parameter slots from `args` (missing ones &null,
  /// extras ignored — Unicon's variadic convention), every other slot
  /// reset to &null.
  void rebind(const std::vector<Value>& args) {
    for (std::size_t i = 0; i < cells_.size(); ++i) {
      if (i < nParams_ && i < args.size()) {
        cells_[i]->set(args[i]);
      } else {
        cells_[i]->set(Value::null());
      }
    }
  }

 private:
  std::vector<std::shared_ptr<CellVar>> cells_;
  std::vector<VarPtr> vars_;
  std::size_t nParams_;
};

using FramePtr = std::shared_ptr<Frame>;

}  // namespace congen::interp

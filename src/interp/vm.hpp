// vm.hpp — the resumable stack machine over interp/chunk.hpp bytecode.
//
// One VmGen is one activation of a compiled chunk, and it is itself a
// Gen: procedure calls wrap it in the same BodyRootGen the tree backend
// uses (pooling, parking, arg rebinding, flag stripping are inherited,
// not reimplemented). Where the tree walker suspends by *being* a tree
// of live doNext frames, the machine suspends by recording resume points
// explicitly:
//
//  * the value stack holds {value, ref} entries (control flags never
//    live on the stack — suspend/return yield immediately);
//  * the resume stack holds suspensions — each one a saved pc plus a
//    snapshot of the value stack above the innermost bounded mark, so
//    resuming restores the exact mid-expression state;
//  * goal-directed failure (kEfail) resumes the newest suspension above
//    the current mark, or pops the mark and jumps to its failure pc.
//
// Constructs the compiler does not flatten (scanning, case,
// co-expressions, keyword variables, reversible assignment) run as
// tree-compiled subtrees driven through Drive suspensions — semantics
// are shared with the tree backend where they share code, and
// differentially tested where they don't.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "interp/chunk.hpp"
#include "interp/frame.hpp"
#include "interp/interpreter.hpp"
#include "kernel/gen.hpp"

namespace congen::interp::vm {

class VmGen final : public Gen {
 public:
  /// Frame mode: `layout`/`frame` non-null (procedure bodies). Scope
  /// mode: both null, identifiers were baked to direct VarPtr loads.
  /// Escape subtrees are tree-compiled here, eagerly — the same moment
  /// the tree compiler would build them.
  VmGen(Interpreter& interp, ChunkPtr chunk, ScopePtr scope, const FrameLayout* layout,
        FramePtr frame);
  static std::shared_ptr<VmGen> create(Interpreter& interp, ChunkPtr chunk, ScopePtr scope,
                                       const FrameLayout* layout, FramePtr frame) {
    return std::make_shared<VmGen>(interp, std::move(chunk), std::move(scope), layout,
                                   std::move(frame));
  }

 protected:
  bool doNext(Result& out) override;
  void doRestart() override;

 private:
  struct Entry {
    Value v;
    VarPtr ref;
    Entry() = default;
    // Explicit ctor so hot push sites can emplace_back (one Value move)
    // instead of materializing a temporary Entry (two).
    Entry(Value vv, VarPtr r) : v(std::move(vv)), ref(std::move(r)) {}
  };

  /// One resume point. `slice` snapshots the value stack between `base`
  /// (the innermost mark's stack height when the suspension was made)
  /// and the top, *after* the op's operands were popped — restoring is
  /// resize(base) + append(slice) + push(new result).
  struct Susp {
    enum class Kind : std::uint8_t {
      Drive,  // a kernel Gen driven in place (invoke body, escape, range)
      Range,  // inline all-small-int to-by (no Gen, no allocation)
      Alt,    // e1 | e2: one-shot jump to the second branch
      Ralt,   // |e: re-run e while each pass produced something
      Limit,  // e\n bookkeeping record (never itself produces)
    };
    // Field order is deliberate: everything the Efail resolution loop
    // reads for a Range resume (the single hottest backtracking path)
    // sits in the first cache line, ahead of the slice vector and the
    // shared_ptr.
    Kind kind;
    bool ascending = true;   // Range
    bool produced = false;   // Ralt
    std::int32_t opPc;       // the instruction this suspension belongs to
    std::int32_t base;       // innermost mark's valH at creation
    std::int64_t fastCur = 0, fastLimit = 0, fastStep = 0;  // Range
    std::int32_t prevAux;    // previous Ralt/Limit record (aux chain)
    std::int32_t escapeIdx;  // Drive of an escape site, -1 otherwise
    std::int32_t target = -1;                        // Alt jump target
    std::int32_t depth = -1;                         // Ralt/Limit static depth
    std::int64_t remaining = 0;                      // Limit
    std::vector<Entry> slice;
    GenPtr gen;                                      // Drive
  };

  /// A bounded region: failure continuation + heights to unwind to.
  struct MarkRec {
    std::int32_t failPc;
    std::int32_t suspH;
    std::int32_t valH;
    std::int32_t markPc;  // where the kMark sits (error-conversion unwind)
  };

  /// A live loop (kLoopBegin..kLoopEnd): heights for break/next.
  struct LoopRec {
    std::int32_t marksH;
    std::int32_t suspH;
    std::int32_t valH;
    std::int32_t bodyMarkIdx;  // marks_ index of the current body mark (-1 outside body)
    std::int32_t shapeIdx;
    std::int32_t beginPc;
  };

  /// kLoadLate inline cache: the resolved binding plus the Scope version
  /// it was observed at. Stale version → full LateBoundVar::target()
  /// re-check, so a racing global declaration costs a miss, never a
  /// wrong binding.
  struct ICEntry {
    std::uint64_t ver = ~std::uint64_t{0};
    VarPtr target;
  };

  enum class Phase : std::uint8_t {
    Start,      // fresh (or restarted): begin at pc 0
    Backtrack,  // yielded a result; next() = goal-directed resumption
    ReDrive,    // yielded a flagged drive result; next() re-drives that gen
    Done,       // return/fail terminated the activation
  };

  enum class Flow : std::uint8_t { Forward, Efail };

  /// The resume stack, with storage reuse: popping retires the record
  /// but keeps it constructed, so the heap capacity its slice vector
  /// acquired is reused by the next push. Backtracking-heavy code pushes
  /// suspensions tens of millions of times a second, and the malloc/free
  /// pair behind a fresh slice per push dominated its profile. Retired
  /// records drop what they own immediately (slice entries, the driven
  /// gen) — only raw capacity outlives the pop. pushSusp() reinitializes
  /// every scalar field, so reuse is invisible to the resolution loop.
  class SuspStack {
   public:
    [[nodiscard]] std::size_t size() const noexcept { return live_; }
    [[nodiscard]] bool empty() const noexcept { return live_ == 0; }
    [[nodiscard]] Susp& back() noexcept { return store_[live_ - 1]; }
    [[nodiscard]] const Susp& back() const noexcept { return store_[live_ - 1]; }
    [[nodiscard]] Susp& operator[](std::size_t i) noexcept { return store_[i]; }
    [[nodiscard]] const Susp& operator[](std::size_t i) const noexcept { return store_[i]; }
    void reserve(std::size_t n) { store_.reserve(n); }
    /// Grow by one, reusing a retired record when available. The caller
    /// (pushSusp) must reset every field it relies on.
    [[nodiscard]] Susp& push() {
      if (live_ == store_.size()) store_.emplace_back();
      return store_[live_++];
    }
    void pop_back() noexcept { retire(store_[--live_]); }
    void resize(std::size_t n) noexcept {
      while (live_ > n) pop_back();
    }
    void clear() noexcept { resize(0); }

   private:
    static void retire(Susp& s) noexcept {
      s.slice.clear();  // destroys the entries, keeps the capacity
      s.gen.reset();
    }
    std::vector<Susp> store_;
    std::size_t live_ = 0;
  };

  bool run(Result& out);

  /// Shrink the value stack to `h` entries. pop_back in a loop inlines
  /// (vector::resize routes through out-of-line erase machinery, which
  /// showed up in backtracking-heavy profiles).
  void shrinkStack(std::size_t h) {
    while (stack_.size() > h) stack_.pop_back();
  }

  /// Append a suspension's saved slice (the body of vector::insert,
  /// inlined for the same reason).
  void appendSlice(const std::vector<Entry>& slice) {
    for (const Entry& e : slice) stack_.push_back(e);
  }

  /// True when the live entry is bit-identical to the saved one: same
  /// payload (a Value copy reproduces the exact 16 bytes, including the
  /// payload pointer) and same ref. Indeterminate trailing bytes can
  /// only produce a false negative, which costs a copy, never
  /// correctness.
  static bool sameEntry(const Entry& live, const Entry& saved) noexcept {
    return std::memcmp(&live.v, &saved.v, sizeof(Value)) == 0 &&
           live.ref.get() == saved.ref.get();
  }

  /// Restore `slice` above `base`, keeping any prefix of the live stack
  /// that is identical to the saved entries. Backtracking usually fails
  /// with most of the saved region untouched (a failed call consumed
  /// only its own operands), so the common restore copies nothing —
  /// which matters: each copied entry is a refcount bump now and a
  /// release on the next unwind, paid per backtracking step.
  void restoreSlice(std::size_t base, const std::vector<Entry>& slice) {
    const std::size_t above = stack_.size() > base ? stack_.size() - base : 0;
    const std::size_t limit = above < slice.size() ? above : slice.size();
    std::size_t keep = 0;
    while (keep < limit && sameEntry(stack_[base + keep], slice[keep])) ++keep;
    shrinkStack(base + keep);
    for (std::size_t i = keep; i < slice.size(); ++i) stack_.push_back(slice[i]);
  }

  /// Drive resume_.back()'s gen once. Returns true when the machine
  /// yields (out filled); otherwise sets `flow` (Forward after a plain
  /// result was restored+pushed, Efail after the gen failed and the
  /// suspension was popped).
  bool driveTop(Result& out, Flow& flow);

  /// Restore a suspension's saved stack and push the new result.
  void restoreAndPush(const Susp& s, Value v, VarPtr ref);

  void popSusp();
  void truncResume(std::int32_t h);
  void performBreak(std::int32_t depth);
  [[nodiscard]] Flow performNext(std::int32_t depth, bool inBody);

  /// &error conversion: unwind everything belonging to the handler op's
  /// operand span, leaving the machine ready to efail as that op's
  /// failure. False = no handler / no credit (rethrow).
  bool convertError(const IconError& e);

  [[nodiscard]] std::int32_t markBase() const noexcept {
    return marks_.empty() ? 0 : marks_.back().valH;
  }

  /// Periodic fuel sync: charge the dispatches since the last sync to
  /// the ambient governor (throws 810/816 on a trip) and re-arm
  /// stepLimitTrip_ one interval ahead. The trip counter is ALWAYS
  /// finite so a governor installed mid-run is honored within one
  /// interval; when no governor enforces fuel the sync is one relaxed
  /// load per interval — noise.
  void syncFuel();

  Susp& pushSusp(Susp::Kind kind);

  Interpreter& interp_;
  ChunkPtr chunk_;
  ScopePtr scope_;
  const FrameLayout* layout_;
  FramePtr frame_;
  std::vector<GenPtr> escapes_;  // one tree subgen per escape site

  std::vector<Entry> stack_;
  SuspStack resume_;
  std::vector<MarkRec> marks_;
  std::vector<LoopRec> loops_;
  std::vector<ICEntry> ics_;
  std::vector<Value> argScratch_;
  std::int32_t pc_ = 0;      // next instruction
  std::int32_t curPc_ = 0;   // instruction being executed (error attribution)
  std::int32_t auxTop_ = -1;
  Phase phase_ = Phase::Start;
  std::uint64_t steps_ = 0;
  // The VM's fuel batch: dispatches between governor syncs. It bounds
  // the fuel-budget overrun per VmGen the same way the tree walker's
  // thread-local step batch does per thread.
  static constexpr std::uint64_t kFuelSyncInterval = 8192;
  std::uint64_t stepLimitTrip_ = kFuelSyncInterval;
  std::uint64_t fuelSyncBase_ = 0;  // steps_ already charged to the governor

  // Local metric tallies, flushed once per doNext (obs::VmStats).
  // Dispatch counts ride on steps_ deltas; only the IC tallies need
  // their own counters.
  std::uint64_t icHitTally_ = 0, icMissTally_ = 0;
};

}  // namespace congen::interp::vm

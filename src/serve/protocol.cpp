#include "serve/protocol.hpp"

#include <cstdio>

namespace congen::serve {

namespace {

void appendU32be(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>((v >> 24) & 0xFF));
  out.push_back(static_cast<char>((v >> 16) & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
  out.push_back(static_cast<char>(v & 0xFF));
}

[[nodiscard]] std::uint32_t readU32be(const char* p) noexcept {
  const auto* u = reinterpret_cast<const unsigned char*>(p);
  return (static_cast<std::uint32_t>(u[0]) << 24) | (static_cast<std::uint32_t>(u[1]) << 16) |
         (static_cast<std::uint32_t>(u[2]) << 8) | static_cast<std::uint32_t>(u[3]);
}

}  // namespace

std::string encodePayload(std::string_view payload) {
  std::string out;
  out.reserve(payload.size() + 4);
  appendU32be(out, static_cast<std::uint32_t>(payload.size()));
  out.append(payload);
  return out;
}

std::string encodeFrame(const Request& request) {
  std::string payload;
  switch (request.verb) {
    case Verb::kSubmit:
      payload = "SUBMIT\n";
      payload += request.body;
      break;
    case Verb::kNext:
      payload = "NEXT " + std::to_string(request.n);
      break;
    case Verb::kCancel:
      payload = "CANCEL";
      break;
    case Verb::kClose:
      payload = "CLOSE";
      break;
  }
  return encodePayload(payload);
}

std::optional<Request> parseRequest(std::string_view payload, std::string& error) {
  const std::size_t eol = payload.find('\n');
  const std::string_view line = eol == std::string_view::npos ? payload : payload.substr(0, eol);
  const std::string_view body = eol == std::string_view::npos ? std::string_view{}
                                                              : payload.substr(eol + 1);
  Request req;
  if (line == "SUBMIT") {
    if (body.empty()) {
      error = "SUBMIT needs a script body after the verb line";
      return std::nullopt;
    }
    req.verb = Verb::kSubmit;
    req.body.assign(body);
    return req;
  }
  if (line.rfind("NEXT ", 0) == 0) {
    const std::string_view arg = line.substr(5);
    std::uint64_t n = 0;
    if (arg.empty()) {
      error = "NEXT needs a count";
      return std::nullopt;
    }
    for (char c : arg) {
      if (c < '0' || c > '9') {
        error = "NEXT count is not a number";
        return std::nullopt;
      }
      if (n <= kMaxNextBatch) n = n * 10 + static_cast<std::uint64_t>(c - '0');
    }
    if (n == 0) {
      error = "NEXT count must be positive";
      return std::nullopt;
    }
    req.verb = Verb::kNext;
    req.n = n > kMaxNextBatch ? kMaxNextBatch : n;
    return req;
  }
  if (line == "CANCEL") {
    req.verb = Verb::kCancel;
    return req;
  }
  if (line == "CLOSE") {
    req.verb = Verb::kClose;
    return req;
  }
  error = "unknown verb";
  return std::nullopt;
}

void FrameDecoder::feed(std::string_view bytes) {
  if (poisoned_) return;
  buffer_.append(bytes);
  for (;;) {
    if (buffer_.size() < 4) return;
    const std::uint32_t len = readU32be(buffer_.data());
    if (len > maxPayload_) {
      poisoned_ = true;
      buffer_.clear();
      return;
    }
    if (buffer_.size() < 4 + static_cast<std::size_t>(len)) return;
    complete_.emplace_back(buffer_.substr(4, len));
    buffer_.erase(0, 4 + static_cast<std::size_t>(len));
  }
}

std::optional<std::string> FrameDecoder::next() {
  if (complete_.empty()) return std::nullopt;
  std::string payload = std::move(complete_.front());
  complete_.pop_front();
  return payload;
}

bool looksLikeHttp(std::string_view firstBytes) noexcept {
  if (firstBytes.size() < 4) return false;
  const std::string_view head = firstBytes.substr(0, 4);
  return head == "GET " || head == "HEAD" || head == "POST";
}

std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string makeHello() {
  return "{\"ok\":true,\"event\":\"hello\",\"proto\":" + std::to_string(kProtocolVersion) + "}\n";
}

std::string makeOk(std::string_view kind) {
  return "{\"ok\":true,\"kind\":\"" + jsonEscape(kind) + "\"}\n";
}

std::string makeResults(const std::vector<std::string>& results, bool done) {
  std::string out = "{\"ok\":true,\"done\":";
  out += done ? "true" : "false";
  out += ",\"results\":[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (i != 0) out += ',';
    out += '"';
    out += jsonEscape(results[i]);
    out += '"';
  }
  out += "]}\n";
  return out;
}

std::string makeError(int code, std::string_view message) {
  return "{\"ok\":false,\"code\":" + std::to_string(code) + ",\"error\":\"" +
         jsonEscape(message) + "\"}\n";
}

}  // namespace congen::serve

// session.hpp — one tenant of the congen-serve daemon.
//
// A Session owns an isolated Interpreter constructed governed
// (Options::governed = true always — see docs/LANGUAGE.md): even a
// quota-less session has a ResourceGovernor, which is its cancellation
// root and its supervision handle. Construction runs the PR 9 process
// Admission gate, so an over-budget connect throws IconError 815 before
// any interpreter state exists — the server answers with the typed
// refusal and drops the socket (the "shed" path).
//
// Request semantics (see protocol.hpp for the wire format):
//   SUBMIT  — parsed as an expression first (becomes the session's
//             current generator, replacing — and thereby unwinding —
//             any previous one); a program on syntax fallback (defs
//             loaded, top-level statements run bounded).
//   NEXT n  — drives up to n results out of the current generator into
//             one response. Exhaustion reports done:true and drops the
//             generator; a run-time error (including the 81x quota
//             family) surfaces as a typed error frame and also drops it.
//   CANCEL  — drops the current generator; its destruction (run under
//             the session governor) closes every pipe the expression
//             tree owns, so producers retire within one queue op.
//   CLOSE   — acknowledges and asks the server to end the session.
//
// Containment: every drive runs under ScopedGovernor so heap charges
// and credits land on this session's budget regardless of which pool
// thread executes the request. When configured, a Supervisor watch
// brackets each drive: requests that blow the hard deadline are
// terminated (816), which also marks the whole session dead — 816 is
// the one error a session does not survive. Client disconnect calls
// onDisconnect(), which terminates the governor: every thread still
// driving this session throws 816 at its next charge point and every
// pipe linked under the session root is cancelled, unblocking parked
// queue operations within one op.
#pragma once

#include <chrono>
#include <string>

#include "interp/interpreter.hpp"
#include "serve/protocol.hpp"

namespace congen::serve {

class Session {
 public:
  struct Config {
    governor::Limits quotas;  ///< per-tenant budgets (0 = unlimited)
    std::size_t pipeCapacity = 1024;
    std::size_t pipeBatch = 64;
    interp::Backend backend = interp::defaultBackend();
    /// Per-request supervision (0 = off): soft-cancel after `soft`,
    /// diagnostics + hard terminate (816) after `hard`.
    std::chrono::milliseconds requestSoft{0};
    std::chrono::milliseconds requestHard{0};
  };

  /// Throws IconError 815 when the admission gate sheds the session.
  explicit Session(const Config& config);
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Process one request, returning the newline-terminated JSON
  /// response. Never throws: every error becomes a typed error frame.
  [[nodiscard]] std::string handle(const Request& request);

  /// The client acknowledged CLOSE: end the session after this response.
  [[nodiscard]] bool closeRequested() const noexcept { return closeRequested_; }
  /// The session is unrecoverable (supervisor 816): close after the
  /// in-flight response is written.
  [[nodiscard]] bool dead() const noexcept { return dead_; }

  /// Peer hangup: hard-terminate the session so every in-flight drive
  /// unwinds (816 at the next charge point) and every linked pipe's
  /// parked queue op aborts. Safe from any thread, idempotent.
  void onDisconnect() noexcept;

 private:
  [[nodiscard]] std::string handleSubmit(const Request& request);
  [[nodiscard]] std::string handleNext(const Request& request);

  Config config_;
  interp::Interpreter interp_;
  GenPtr gen_;
  bool closeRequested_ = false;
  bool dead_ = false;
};

}  // namespace congen::serve

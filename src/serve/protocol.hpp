// protocol.hpp — the congen-serve wire protocol (pure: no sockets).
//
// A session is one TCP connection. The client sends length-prefixed
// request frames; the server answers each frame with exactly one
// newline-terminated JSON object, in request order:
//
//   frame    := u32 payload length (big-endian) ++ payload bytes
//   payload  := verb line, '\n', optional body
//   verbs    := "SUBMIT"            body = script or expression text
//             | "NEXT <n>"          drive up to n results (1 <= n <= max)
//             | "CANCEL"            drop the current generator
//             | "CLOSE"             end the session
//   response := one JSON object, '\n'-terminated (see makeOk/makeError)
//
// The client speaks first: the server classifies the connection on its
// first bytes, so a protocol client pipelines its first frame without
// waiting. Once classified, the server answers with a hello object
// (before the first response) — or a typed 815 refusal when the
// admission gate sheds the session, after which the connection closes.
// The same port also answers plain HTTP GETs for /metrics,
// /metrics.json, and /healthz — an HTTP request is recognised by its
// first bytes ("GET " is not a plausible length prefix: 0x47455420 is
// far beyond any sane frame bound), so the two protocols cannot be
// confused.
//
// Error taxonomy in response frames:
//   - Icon run-time errors keep their numbers (810/811/... quota trips,
//     815 admission, 816 supervisor termination, 201 division by zero,
//     ...): {"ok":false,"code":810,"error":"quota exceeded: ..."}
//   - serve-level protocol faults use the 9xx space, which no Icon
//     error occupies: 900 malformed frame / unknown verb, 901 NEXT with
//     no current generator, 902 frame too large, 903 internal error
//     (an unexpected non-Icon exception escaped a handler).
//
// Everything in this header is deterministic byte-in/byte-out — the
// golden transcript suite (tests/serve/golden) and the fuzz harness
// (tests/fuzz/fuzz_serve_frame.cpp) both lean on that.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace congen::serve {

inline constexpr std::uint32_t kProtocolVersion = 1;
/// Hard ceiling on one request payload; a frame announcing more is a
/// 902 protocol error and closes the connection (a length prefix is a
/// promise the server must not buffer unboundedly on).
inline constexpr std::size_t kMaxFramePayload = 1u << 20;
/// Clamp on NEXT batch size (results are buffered into one response).
inline constexpr std::uint64_t kMaxNextBatch = 65536;

// serve-level error codes (9xx: disjoint from Icon's numbering).
inline constexpr int kErrProtocol = 900;
inline constexpr int kErrNoGenerator = 901;
inline constexpr int kErrFrameTooLarge = 902;
inline constexpr int kErrInternal = 903;

enum class Verb : std::uint8_t { kSubmit, kNext, kCancel, kClose };

struct Request {
  Verb verb = Verb::kClose;
  std::string body;     // SUBMIT: script / expression text
  std::uint64_t n = 0;  // NEXT: requested result count (post-clamp)
};

/// Render a request back into a frame (length prefix included) — the
/// client side of the protocol, used by congen-loadgen and the tests.
[[nodiscard]] std::string encodeFrame(const Request& request);
/// Frame a raw payload verbatim (malformed-input tests).
[[nodiscard]] std::string encodePayload(std::string_view payload);

/// Parse one complete payload into a Request. On failure returns
/// nullopt and fills `error` with a human-readable reason (the caller
/// wraps it into a 900 response).
[[nodiscard]] std::optional<Request> parseRequest(std::string_view payload, std::string& error);

/// Incremental frame decoder: feed() bytes as they arrive, take
/// complete payloads out of next(). A frame whose announced length
/// exceeds maxPayload poisons the decoder (error() becomes true and
/// stays true): the byte stream is unsynchronized garbage from that
/// point, so the connection must be failed, not resynced.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t maxPayload = kMaxFramePayload) : maxPayload_(maxPayload) {}

  void feed(std::string_view bytes);
  /// The next complete payload, FIFO; nullopt when none is buffered.
  [[nodiscard]] std::optional<std::string> next();
  [[nodiscard]] bool error() const noexcept { return poisoned_; }
  /// Bytes buffered but not yet consumed as a complete frame.
  [[nodiscard]] std::size_t pendingBytes() const noexcept { return buffer_.size(); }

 private:
  std::size_t maxPayload_;
  std::string buffer_;
  std::deque<std::string> complete_;
  bool poisoned_ = false;
};

/// True when the first buffered bytes can only be an HTTP request
/// ("GET " / "HEAD" / "POST"), never a binary frame this server would
/// accept. Needs at least 4 bytes to decide; returns false until then.
[[nodiscard]] bool looksLikeHttp(std::string_view firstBytes) noexcept;

// ---- responses (newline-terminated JSON) ---------------------------------

[[nodiscard]] std::string jsonEscape(std::string_view s);

/// {"ok":true,"event":"hello","proto":1}
[[nodiscard]] std::string makeHello();
/// {"ok":true,"kind":"<kind>"} — SUBMIT/CANCEL/CLOSE acknowledgements.
[[nodiscard]] std::string makeOk(std::string_view kind);
/// {"ok":true,"done":<done>,"results":[...]} — a NEXT response; results
/// are Icon images of the produced values.
[[nodiscard]] std::string makeResults(const std::vector<std::string>& results, bool done);
/// {"ok":false,"code":<code>,"error":"..."} — Icon and serve errors.
[[nodiscard]] std::string makeError(int code, std::string_view message);

}  // namespace congen::serve

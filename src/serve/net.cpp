#include "serve/net.hpp"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "concur/fault_injection.hpp"

namespace congen::serve {

namespace {

[[noreturn]] void throwErrno(const char* what) {
  throw NetError(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::shutdownWrite() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void Socket::setNonBlocking(bool on) {
  const int flags = ::fcntl(fd_, F_GETFL);
  if (flags < 0) throwErrno("fcntl(F_GETFL)");
  const int next = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd_, F_SETFL, next) < 0) throwErrno("fcntl(F_SETFL)");
}

Listener::Listener(const std::string& host, std::uint16_t port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throwErrno("socket");
  socket_ = Socket(fd);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw NetError("bad bind address: " + host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) throwErrno("bind");
  if (::listen(fd, backlog) != 0) throwErrno("listen");
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    throwErrno("getsockname");
  }
  port_ = ntohs(bound.sin_port);
  socket_.setNonBlocking(true);
}

Socket Listener::accept() {
  CONGEN_FAULT_POINT(ServeAccept);
  const int fd = ::accept(socket_.fd(), nullptr, nullptr);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNABORTED || errno == EINTR) {
      return Socket{};
    }
    throwErrno("accept");
  }
  Socket s(fd);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return s;
}

Socket connectTo(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throwErrno("socket");
  Socket s(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw NetError("bad host address: " + host);
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) throwErrno("connect");
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return s;
}

void writeAll(Socket& socket, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    CONGEN_FAULT_POINT(ServeWrite);
    // MSG_NOSIGNAL: a dead peer must surface as EPIPE, not SIGPIPE.
    const ssize_t n =
        ::send(socket.fd(), data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{socket.fd(), POLLOUT, 0};
      if (::poll(&pfd, 1, -1) < 0 && errno != EINTR) throwErrno("poll(POLLOUT)");
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    throwErrno("send");
  }
}

bool readSome(Socket& socket, std::string& out, std::size_t max) {
  std::string buf(max, '\0');
  for (;;) {
    const ssize_t n = ::recv(socket.fd(), buf.data(), buf.size(), 0);
    if (n > 0) {
      out.append(buf.data(), static_cast<std::size_t>(n));
      return true;
    }
    if (n == 0) return false;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      pollfd pfd{socket.fd(), POLLIN, 0};
      if (::poll(&pfd, 1, -1) < 0 && errno != EINTR) throwErrno("poll(POLLIN)");
      continue;
    }
    throwErrno("recv");
  }
}

}  // namespace congen::serve

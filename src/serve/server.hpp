// server.hpp — the congen-serve daemon core.
//
// One event thread owns the listener and every connection's read side;
// session request processing runs as tasks on the work-stealing
// ThreadPool (the same pool the sessions' own pipes use — a blocked
// drive grows the pool, it never starves the event loop). The event
// thread parks in poll(2) via concur/fd_park.hpp, wakeable by stop()
// and by finishing session tasks.
//
// Connection lifecycle:
//   accept -> classify on first bytes
//     "GET " / "HEAD" / "POST"  -> HTTP mode: answer /metrics (registry
//         writeText), /metrics.json (writeJson), /healthz; close.
//     anything else             -> protocol mode: construct the governed
//         Session (Admission gate here: IconError 815 becomes the typed
//         shed response and the socket closes), answer the hello frame,
//         then decode request frames.
//   frames -> appended to the connection's request queue; a session task
//         is scheduled when none is in flight and drains the queue
//         serially (responses in request order — pipelining is free).
//   hangup (POLLRDHUP / EOF / read error) -> Session::onDisconnect()
//         terminates the governor: in-flight drives unwind with 816 at
//         the next charge point, linked pipes cancel, parked queue ops
//         abort within one operation. The connection is reaped once the
//         in-flight task (if any) finishes.
//
// The event thread never blocks on a session: reads are non-blocking,
// HTTP responses are bounded, and session work always happens on the
// pool. Session tasks write responses directly to the (non-blocking)
// socket, polling for writability — a slow client throttles exactly its
// own session.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "concur/fd_park.hpp"
#include "runtime/governor.hpp"
#include "serve/net.hpp"
#include "serve/protocol.hpp"
#include "serve/session.hpp"

namespace congen {
class ThreadPool;
}

namespace congen::serve {

class Server {
 public:
  struct Config {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;  ///< 0 = ephemeral; see Server::port()
    /// Per-session budgets and knobs (Session::Config semantics).
    Session::Config session;
    /// Process admission ceiling (0/0 = unlimited). When any field is
    /// set, start() installs it on governor::Admission::global() and
    /// stop() restores what was there before.
    governor::Admission::Config admission;
    std::size_t maxFramePayload = kMaxFramePayload;
    /// start() turns the metrics registry on (the /metrics endpoint and
    /// the serve.* instruments need it). Leave on outside tests.
    bool enableMetrics = true;
  };

  explicit Server(Config config);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen, and launch the event thread. Throws NetError when
  /// the address is unavailable.
  void start();
  /// Graceful shutdown: stop accepting, terminate every live session,
  /// drain in-flight tasks, join the event thread. Idempotent.
  void stop();

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }
  /// Live protocol sessions (tests poll this toward 0 after hangups).
  [[nodiscard]] std::size_t liveSessions() const;

 private:
  enum class ConnKind : std::uint8_t { kUnknown, kHttp, kSession };

  struct Conn {
    std::uint64_t id = 0;
    Socket socket;
    ConnKind kind = ConnKind::kUnknown;
    std::string sniff;  // bytes buffered before classification
    FrameDecoder decoder{kMaxFramePayload};
    std::shared_ptr<Session> session;
    // Complete request payloads with their arrival timestamps, awaiting
    // the session task. Guarded by the server mutex.
    std::deque<std::pair<std::chrono::steady_clock::time_point, std::string>> pending;
    bool scheduled = false;  // a pool task is draining `pending`
    // No further reads; reap when unscheduled. Written only under the
    // server mutex, but atomic because the event thread checks it
    // between lock regions (a session task can close concurrently).
    std::atomic<bool> closing{false};
    bool hungUp = false;  // peer disconnected (vs. server-side close); under mu_
  };

  void eventLoop();
  void acceptPending();
  /// Drain readable bytes; classify; enqueue frames. Returns false when
  /// the connection should be torn down, setting `peerHungUp` when the
  /// reason was EOF or a read error (vs. a server-side decision).
  bool pumpConn(const std::shared_ptr<Conn>& conn, bool& peerHungUp);
  void classify(const std::shared_ptr<Conn>& conn);
  void answerHttp(const std::shared_ptr<Conn>& conn);
  void beginClose(const std::shared_ptr<Conn>& conn, bool peerHungUp);
  void beginCloseLockedImpl(const std::shared_ptr<Conn>& conn, bool peerHungUp);
  void scheduleLocked(const std::shared_ptr<Conn>& conn);
  void sessionTask(std::shared_ptr<Conn> conn);

  Config config_;
  std::unique_ptr<Listener> listener_;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  FdParker parker_;
  std::thread eventThread_;

  mutable std::mutex mu_;
  std::condition_variable drained_;
  std::unordered_map<int, std::shared_ptr<Conn>> conns_;  // by fd
  std::uint64_t nextConnId_ = 1;
  std::size_t tasksInFlight_ = 0;

  bool admissionInstalled_ = false;
  governor::Admission::Config priorAdmission_;
};

}  // namespace congen::serve

// net.hpp — minimal POSIX socket layer for congen-serve.
//
// RAII descriptors plus the two blocking helpers the daemon and the
// load driver share. Sockets handed to the server's event loop are
// switched non-blocking; writeAll() then poll()s for writability
// between partial writes, so a slow client throttles only its own
// session task, never the event thread.
//
// Fault sites (sanitizer presets only, see concur/fault_injection.hpp):
//   ServeAccept — Listener::accept entry; an injected throw stands in
//     for EMFILE/ENFILE and must leave the accept loop running.
//   ServeWrite  — every write-loop iteration; an injected throw after a
//     partial write leaves a torn frame on the wire, which the peer
//     must survive as a disconnect.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

namespace congen::serve {

/// Thrown by the helpers on a dead peer or a failed syscall; the server
/// maps it to session teardown, the client to a failed session.
class NetError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Owning socket descriptor. Move-only; close() is idempotent.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) noexcept : fd_(fd) {}
  ~Socket() { close(); }
  Socket(Socket&& o) noexcept : fd_(std::exchange(o.fd_, -1)) {}
  Socket& operator=(Socket&& o) noexcept {
    if (this != &o) {
      close();
      fd_ = std::exchange(o.fd_, -1);
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] int fd() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  void close() noexcept;
  /// Half-close the write side (client CLOSE without losing responses).
  void shutdownWrite() noexcept;
  void setNonBlocking(bool on);

 private:
  int fd_ = -1;
};

/// Listening TCP socket bound to 127.0.0.1 (or `host`) : `port`.
/// port 0 binds an ephemeral port; port() reports the real one.
class Listener {
 public:
  Listener(const std::string& host, std::uint16_t port, int backlog = 128);

  [[nodiscard]] int fd() const noexcept { return socket_.fd(); }
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Accept one pending connection (the listener must be non-blocking
  /// and known-readable — the event loop polls first). Returns an
  /// invalid Socket when the kernel has nothing after all (EAGAIN —
  /// spurious readiness) or on transient per-connection failures
  /// (ECONNABORTED). Throws NetError only for descriptor exhaustion and
  /// kin; the ServeAccept fault site injects exactly that.
  [[nodiscard]] Socket accept();

 private:
  Socket socket_;
  std::uint16_t port_ = 0;
};

/// Blocking client connect to host:port (the loadgen / test side).
[[nodiscard]] Socket connectTo(const std::string& host, std::uint16_t port);

/// Write all of `data`, polling for writability on EAGAIN. Throws
/// NetError on a dead peer (EPIPE/ECONNRESET) or injected ServeWrite
/// fault. Returns normally only when every byte is on the wire.
void writeAll(Socket& socket, std::string_view data);

/// Read at most `max` bytes into `out` (appended), blocking until at
/// least one byte arrives. Returns false on orderly EOF.
bool readSome(Socket& socket, std::string& out, std::size_t max = 64 * 1024);

}  // namespace congen::serve

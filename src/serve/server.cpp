#include "serve/server.hpp"

#include <cerrno>
#include <sstream>
#include <vector>

#include <sys/socket.h>

#include "concur/fault_injection.hpp"
#include "concur/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/runtime_stats.hpp"
#include "runtime/error.hpp"

#ifndef POLLRDHUP
#define POLLRDHUP 0
#endif

namespace congen::serve {

namespace {

/// Cap on buffered HTTP header bytes before the connection is dropped.
constexpr std::size_t kMaxHttpHeader = 16 * 1024;
/// Event-loop park budget: a safety tick — every state change that
/// matters (readable socket, finished task, stop()) wakes the parker.
constexpr std::chrono::milliseconds kParkTick{250};

std::string httpResponse(int code, const char* reason, const char* contentType,
                         const std::string& body, bool headOnly) {
  std::string out = "HTTP/1.1 " + std::to_string(code) + " " + reason +
                    "\r\nContent-Type: " + contentType +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  if (!headOnly) out += body;
  return out;
}

}  // namespace

Server::Server(Config config) : config_(std::move(config)) {}

Server::~Server() { stop(); }

void Server::start() {
  if (running_.load(std::memory_order_acquire)) return;
  if (config_.enableMetrics) obs::enableMetrics();
  if (config_.admission.maxSessions != 0 || config_.admission.maxCommittedHeapBytes != 0) {
    priorAdmission_ = governor::Admission::global().config();
    governor::Admission::global().configure(config_.admission);
    admissionInstalled_ = true;
  }
  listener_ = std::make_unique<Listener>(config_.host, config_.port);
  port_ = listener_->port();
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  eventThread_ = std::thread([this] { eventLoop(); });
}

void Server::stop() {
  if (eventThread_.joinable()) {
    stopping_.store(true, std::memory_order_release);
    parker_.wake();
    eventThread_.join();
  }
  running_.store(false, std::memory_order_release);
  if (admissionInstalled_) {
    governor::Admission::global().configure(priorAdmission_);
    admissionInstalled_ = false;
  }
}

std::size_t Server::liveSessions() const {
  std::lock_guard lock(mu_);
  std::size_t n = 0;
  for (const auto& [fd, conn] : conns_) {
    if (conn->session != nullptr && !conn->closing) ++n;
  }
  return n;
}

void Server::eventLoop() {
  std::vector<pollfd> fds;
  bool listenerOpen = true;
  for (;;) {
    const bool stopping = stopping_.load(std::memory_order_acquire);
    if (stopping && listenerOpen) {
      listener_.reset();  // refuse new connects while draining
      listenerOpen = false;
    }
    // Sweep closeable connections and build the poll set. Session
    // destruction (interpreter teardown) runs outside the lock.
    std::vector<std::shared_ptr<Conn>> reaped;
    bool drainedOut = false;
    {
      std::lock_guard lock(mu_);
      if (stopping) {
        for (auto& [fd, conn] : conns_) {
          if (!conn->closing) beginCloseLockedImpl(conn, /*peerHungUp=*/false);
        }
      }
      for (auto it = conns_.begin(); it != conns_.end();) {
        if (it->second->closing && !it->second->scheduled) {
          reaped.push_back(std::move(it->second));
          it = conns_.erase(it);
        } else {
          ++it;
        }
      }
      drainedOut = stopping && conns_.empty() && tasksInFlight_ == 0;
      fds.clear();
      if (listenerOpen) fds.push_back({listener_->fd(), POLLIN, 0});
      for (const auto& [fd, conn] : conns_) {
        if (!conn->closing) fds.push_back({fd, POLLIN | POLLRDHUP, 0});
      }
    }
    reaped.clear();
    if (drainedOut) return;
    parker_.park(fds, kParkTick);
    for (const pollfd& p : fds) {
      if (p.revents == 0) continue;
      if (listenerOpen && p.fd == listener_->fd()) {
        acceptPending();
        continue;
      }
      std::shared_ptr<Conn> conn;
      {
        std::lock_guard lock(mu_);
        auto it = conns_.find(p.fd);
        if (it != conns_.end()) conn = it->second;
      }
      if (conn == nullptr || conn->closing.load(std::memory_order_acquire)) continue;
      bool peerHungUp = false;
      if (!pumpConn(conn, peerHungUp)) beginClose(conn, peerHungUp);
    }
  }
}

void Server::acceptPending() {
  const bool metrics = obs::metricsEnabled();
  for (;;) {
    Socket s;
    try {
      s = listener_->accept();
    } catch (const std::exception&) {
      // EMFILE and kin (or an injected ServeAccept fault): survive it —
      // the pending connection stays queued and the next readable edge
      // retries. The loop must keep serving existing sessions.
      if (metrics) [[unlikely]] obs::ServeStats::get().acceptFailures.add(1);
      return;
    }
    if (!s.valid()) return;
    s.setNonBlocking(true);
    if (metrics) [[unlikely]] obs::ServeStats::get().connectionsAccepted.add(1);
    auto conn = std::make_shared<Conn>();
    conn->socket = std::move(s);
    conn->decoder = FrameDecoder(config_.maxFramePayload);
    std::lock_guard lock(mu_);
    conn->id = nextConnId_++;
    conns_.emplace(conn->socket.fd(), conn);
  }
}

bool Server::pumpConn(const std::shared_ptr<Conn>& conn, bool& peerHungUp) {
  const bool metrics = obs::metricsEnabled();
  char buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(conn->socket.fd(), buf, sizeof buf, 0);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      peerHungUp = true;  // reset and kin: peer is gone
      return false;
    }
    if (n == 0) {
      peerHungUp = true;
      return false;
    }
    if (metrics) [[unlikely]] {
      obs::ServeStats::get().bytesRead.add(static_cast<std::uint64_t>(n));
    }
    const std::string_view bytes(buf, static_cast<std::size_t>(n));
    if (conn->kind == ConnKind::kUnknown) {
      conn->sniff.append(bytes);
      classify(conn);
      if (conn->closing) return true;  // shed or bad classification
      if (conn->kind == ConnKind::kUnknown) continue;  // need more bytes
    } else if (conn->kind == ConnKind::kHttp) {
      conn->sniff.append(bytes);
    } else {
      conn->decoder.feed(bytes);
    }
    if (conn->kind == ConnKind::kHttp) {
      if (conn->sniff.find("\r\n\r\n") != std::string::npos) {
        answerHttp(conn);
        return true;  // closing was set by answerHttp
      }
      if (conn->sniff.size() > kMaxHttpHeader) return false;
      continue;
    }
    // Session frames.
    if (conn->decoder.error()) {
      if (metrics) [[unlikely]] obs::ServeStats::get().protocolErrors.add(1);
      try {
        writeAll(conn->socket, makeError(kErrFrameTooLarge, "frame exceeds payload limit"));
      } catch (const std::exception&) {
      }
      return false;
    }
    std::lock_guard lock(mu_);
    const auto now = std::chrono::steady_clock::now();
    while (auto payload = conn->decoder.next()) {
      conn->pending.emplace_back(now, std::move(*payload));
    }
    scheduleLocked(conn);
  }
  return true;
}

void Server::classify(const std::shared_ptr<Conn>& conn) {
  if (looksLikeHttp(conn->sniff)) {
    conn->kind = ConnKind::kHttp;
    if (obs::metricsEnabled()) [[unlikely]] obs::ServeStats::get().httpRequests.add(1);
    return;
  }
  // A frame's length prefix always leads with 0x00 (the payload cap is
  // far below 2^24); any other first byte might still grow into an HTTP
  // method token, so wait for the 4 bytes that decide.
  if (conn->sniff.size() < 4 && !(conn->sniff.size() >= 1 && conn->sniff[0] == '\0')) return;
  conn->kind = ConnKind::kSession;
  const bool metrics = obs::metricsEnabled();
  std::shared_ptr<Session> session;
  std::string refusal;
  try {
    session = std::make_shared<Session>(config_.session);
  } catch (const IconError& e) {
    refusal = makeError(e.number(), e.message());
    if (metrics) [[unlikely]] {
      if (e.number() == 815) obs::ServeStats::get().sessionsShed.add(1);
    }
  } catch (const std::exception& e) {
    refusal = makeError(kErrInternal, e.what());
  }
  if (session == nullptr) {
    try {
      writeAll(conn->socket, refusal);
      if (metrics) [[unlikely]] {
        obs::ServeStats::get().bytesWritten.add(refusal.size());
      }
    } catch (const std::exception&) {
    }
    std::lock_guard lock(mu_);
    beginCloseLockedImpl(conn, /*peerHungUp=*/false);
    return;
  }
  const std::string hello = makeHello();
  try {
    writeAll(conn->socket, hello);
  } catch (const std::exception&) {
    std::lock_guard lock(mu_);
    beginCloseLockedImpl(conn, /*peerHungUp=*/true);
    return;
  }
  if (metrics) [[unlikely]] {
    auto& stats = obs::ServeStats::get();
    stats.sessionsOpened.add(1);
    stats.sessionsActive.add(1);
    stats.bytesWritten.add(hello.size());
  }
  {
    std::lock_guard lock(mu_);
    conn->session = std::move(session);
  }
  conn->decoder.feed(conn->sniff);
  conn->sniff.clear();
  conn->sniff.shrink_to_fit();
}

void Server::answerHttp(const std::shared_ptr<Conn>& conn) {
  const std::string& raw = conn->sniff;
  const std::size_t eol = raw.find("\r\n");
  const std::string line = raw.substr(0, eol == std::string::npos ? raw.size() : eol);
  std::istringstream reqLine(line);
  std::string method, path;
  reqLine >> method >> path;
  const bool headOnly = method == "HEAD";
  std::string response;
  if (method != "GET" && method != "HEAD") {
    response = httpResponse(405, "Method Not Allowed", "text/plain", "method not allowed\n",
                            false);
  } else if (path == "/healthz") {
    std::string body = "{\"status\":\"ok\",\"proto\":" + std::to_string(kProtocolVersion) +
                       ",\"sessions\":" + std::to_string(liveSessions()) + "}\n";
    response = httpResponse(200, "OK", "application/json", body, headOnly);
  } else if (path == "/metrics") {
    std::ostringstream body;
    obs::Registry::global().snapshot().writeText(body);
    response = httpResponse(200, "OK", "text/plain; charset=utf-8", body.str(), headOnly);
  } else if (path == "/metrics.json") {
    std::ostringstream body;
    obs::Registry::global().snapshot().writeJson(body);
    response = httpResponse(200, "OK", "application/json", body.str(), headOnly);
  } else {
    response = httpResponse(404, "Not Found", "text/plain", "not found\n", false);
  }
  try {
    writeAll(conn->socket, response);
    if (obs::metricsEnabled()) [[unlikely]] {
      obs::ServeStats::get().bytesWritten.add(response.size());
    }
  } catch (const std::exception&) {
  }
  conn->socket.shutdownWrite();
  std::lock_guard lock(mu_);
  beginCloseLockedImpl(conn, /*peerHungUp=*/false);
}

void Server::beginClose(const std::shared_ptr<Conn>& conn, bool peerHungUp) {
  std::lock_guard lock(mu_);
  beginCloseLockedImpl(conn, peerHungUp);
}

void Server::beginCloseLockedImpl(const std::shared_ptr<Conn>& conn, bool peerHungUp) {
  if (conn->closing) return;
  conn->closing = true;
  conn->hungUp = conn->hungUp || peerHungUp;
  if (conn->session != nullptr) {
    // The disconnect IS the cancellation: terminating the governor
    // cancels every pipe linked under the session root (parked queue
    // ops abort within one operation) and makes any in-flight drive
    // throw 816 at its next charge point.
    conn->session->onDisconnect();
    if (conn->hungUp && obs::metricsEnabled()) [[unlikely]] {
      obs::ServeStats::get().disconnects.add(1);
    }
    if (obs::metricsEnabled()) [[unlikely]] obs::ServeStats::get().sessionsActive.sub(1);
  }
}

void Server::scheduleLocked(const std::shared_ptr<Conn>& conn) {
  if (conn->scheduled || conn->closing || conn->session == nullptr || conn->pending.empty()) {
    return;
  }
  conn->scheduled = true;
  ++tasksInFlight_;
  try {
    ThreadPool::global().submit([this, conn] { sessionTask(std::move(conn)); });
  } catch (const std::exception&) {
    // Submit failure (cap, injected fault): the frames stay queued; the
    // next readable edge retries. Nothing is lost, just delayed.
    conn->scheduled = false;
    --tasksInFlight_;
  }
}

void Server::sessionTask(std::shared_ptr<Conn> conn) {
  const bool metrics = obs::metricsEnabled();
  for (;;) {
    std::pair<std::chrono::steady_clock::time_point, std::string> item;
    {
      std::unique_lock lock(mu_);
      if (conn->closing || conn->pending.empty()) {
        conn->scheduled = false;
        // Drop our Conn reference BEFORE decrementing tasksInFlight_:
        // if the event thread already erased this conn from the map, we
        // hold the last reference, and the Session (with its admitted
        // governor budget) must be fully released before stop() can
        // observe the drain and return.
        lock.unlock();
        conn.reset();
        lock.lock();
        --tasksInFlight_;
        drained_.notify_all();
        parker_.wake();  // let the event loop reap / re-check drain
        return;
      }
      item = std::move(conn->pending.front());
      conn->pending.pop_front();
    }
    std::string parseError;
    std::optional<Request> request = parseRequest(item.second, parseError);
    std::string response;
    if (!request) {
      if (metrics) [[unlikely]] obs::ServeStats::get().protocolErrors.add(1);
      response = makeError(kErrProtocol, parseError);
    } else {
      if (metrics) [[unlikely]] obs::ServeStats::get().requests.add(1);
      response = conn->session->handle(*request);
    }
    bool wrote = true;
    try {
      writeAll(conn->socket, response);
    } catch (const std::exception&) {
      wrote = false;  // dead peer or injected ServeWrite fault
    }
    if (metrics) [[unlikely]] {
      auto& stats = obs::ServeStats::get();
      if (wrote) stats.bytesWritten.add(response.size());
      const auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - item.first);
      stats.requestLatencyMicros.record(static_cast<std::uint64_t>(micros.count()));
    }
    if (!wrote) {
      beginClose(conn, /*peerHungUp=*/true);
    } else if (conn->session->closeRequested() || conn->session->dead()) {
      beginClose(conn, /*peerHungUp=*/false);
    }
  }
}

}  // namespace congen::serve

#include "serve/session.hpp"

#include <optional>
#include <vector>

#include "frontend/lexer.hpp"
#include "obs/runtime_stats.hpp"
#include "runtime/error.hpp"

namespace congen::serve {

namespace {

interp::Interpreter::Options sessionOptions(const Session::Config& config) {
  interp::Interpreter::Options options;
  options.pipeCapacity = config.pipeCapacity;
  options.pipeBatch = config.pipeBatch;
  options.backend = config.backend;
  options.quotas = config.quotas;
  options.governed = true;  // always: the governor is the session root
  return options;
}

}  // namespace

Session::Session(const Config& config)
    : config_(config), interp_(sessionOptions(config)) {}

Session::~Session() {
  // The generator tree must unwind under the session governor (its heap
  // credits balance the charges); GovernedRootGen's destructor handles
  // that, the interpreter destructor covers the globals.
  gen_.reset();
}

void Session::onDisconnect() noexcept {
  const auto& gov = interp_.resourceGovernor();
  if (gov != nullptr) gov->terminate();
}

std::string Session::handle(const Request& request) {
  // Everything a request does — parsing, driving, and destroying values
  // — runs with this session's governor installed on the worker thread,
  // so accounting follows the session, not the thread.
  governor::ScopedGovernor governed(interp_.resourceGovernor());
  const auto& gov = interp_.resourceGovernor();
  if (gov != nullptr && gov->terminated()) {
    dead_ = true;
    return makeError(kErrSessionTerminated, "session terminated by supervisor");
  }
  // Bracket the drive with a supervisor watch when configured: a
  // request that exceeds the hard deadline is terminated (816), taking
  // the session with it. The Watch is cancelled (and any in-flight
  // escalation waited out) when `watch` leaves scope.
  governor::Supervisor::Watch watch;
  if (config_.requestHard.count() > 0 && gov != nullptr &&
      (request.verb == Verb::kSubmit || request.verb == Verb::kNext)) {
    watch = governor::Supervisor::global().watch(gov, config_.requestSoft, config_.requestHard);
  }
  try {
    switch (request.verb) {
      case Verb::kSubmit:
        return handleSubmit(request);
      case Verb::kNext:
        return handleNext(request);
      case Verb::kCancel:
        gen_.reset();
        return makeOk("cancelled");
      case Verb::kClose:
        closeRequested_ = true;
        return makeOk("bye");
    }
    return makeError(kErrProtocol, "unreachable verb");
  } catch (const IconError& e) {
    gen_.reset();  // an errored drive is not resumable
    if (e.number() == kErrSessionTerminated) {
      dead_ = true;
      if (obs::metricsEnabled()) [[unlikely]] {
        obs::ServeStats::get().sessionsTerminated.add(1);
      }
    }
    return makeError(e.number(), e.message());
  } catch (const frontend::SyntaxError& e) {
    return makeError(kErrProtocol, std::string("syntax error: ") + e.what());
  } catch (const std::exception& e) {
    gen_.reset();
    return makeError(kErrInternal, e.what());
  }
}

std::string Session::handleSubmit(const Request& request) {
  // REPL classification order: expression first, program on fallback.
  // Replacing gen_ destroys the previous tree under the governor
  // installed by handle(), unwinding its pipes.
  try {
    GenPtr gen = interp_.eval(request.body);
    gen_ = std::move(gen);
    return makeOk("generator");
  } catch (const frontend::SyntaxError&) {
    interp_.load(request.body);
    return makeOk("loaded");
  }
}

std::string Session::handleNext(const Request& request) {
  if (gen_ == nullptr) {
    return makeError(kErrNoGenerator, "NEXT with no current generator (SUBMIT first)");
  }
  std::vector<std::string> results;
  results.reserve(static_cast<std::size_t>(request.n));
  bool done = false;
  for (std::uint64_t i = 0; i < request.n; ++i) {
    std::optional<Value> v = gen_->nextValue();
    if (!v) {
      done = true;
      gen_.reset();
      break;
    }
    results.push_back(v->image());
  }
  if (obs::metricsEnabled()) [[unlikely]] {
    obs::ServeStats::get().resultsStreamed.add(results.size());
  }
  return makeResults(results, done);
}

}  // namespace congen::serve

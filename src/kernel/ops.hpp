// ops.hpp — operations over generator operands.
//
// Goal-directed evaluation composes nested generators "by mapping
// functions or operations over the cross-product of their arguments, and
// then filtering to find successful results" (Section II). These nodes
// implement exactly that: operand generators are iterated in product
// order; the operation is applied to each tuple; an operation that fails
// (e.g. a comparison) resumes the search rather than producing false.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "kernel/gen.hpp"

namespace congen {

// ---------------------------------------------------------------------
// Per-tuple operator semantics, shared between the tree kernel and the
// bytecode VM (interp/vm). The Gen factories below wrap these; the VM
// calls them directly from its dispatch loop. One implementation, two
// backends — the differential harness checks the composition, not two
// copies of the arithmetic.
// ---------------------------------------------------------------------

/// Value-level binary operators ("+", "<", "==", ...).
enum class BinKind : std::uint8_t {
  Add, Sub, Mul, Div, Mod, Pow, Concat, ListConcat,
  NumLT, NumLE, NumGT, NumGE, NumEQ, NumNE, ValEQ, ValNE,
};

/// Value-level unary operators.
enum class UnKind : std::uint8_t {
  Negate,   // -e
  Plus,     // +e (numeric coercion)
  Size,     // *e
  Deref,    // .e (strip the variable reference)
  NonNull,  // \e
  IfNull,   // /e
};

/// Operator spelling → kind (exact table the tree compiler uses; "!="
/// and "===" family alias onto value equality). nullopt: unknown.
std::optional<BinKind> binKindOf(std::string_view op);
std::optional<UnKind> unKindOf(std::string_view op);

/// Stable mnemonics (golden disassembly depends on these spellings).
const char* binKindName(BinKind k);
const char* unKindName(UnKind k);

/// Apply a binary operator to one value tuple. nullopt = goal-directed
/// failure (comparisons); errors throw IconError.
std::optional<Value> applyBinary(BinKind k, const Value& a, const Value& b);

/// Apply a unary operator to one operand result. Keeps the variable
/// reference where the operator is transparent (\e, /e).
std::optional<Result> applyUnary(UnKind k, Result& r);

/// x[i] over one (collection, index) tuple: trapped variable for
/// lists/tables/records, character for strings; nullopt = out of range.
std::optional<Result> indexTuple(Result& c, Result& i);

/// o.name over one object result.
std::optional<Result> fieldTuple(Result& o, std::string_view name);

/// x[i:j] over one (collection, from, to) tuple; nullopt = out of range.
std::optional<Value> sliceTuple(const Value& v, const Value& from, const Value& to);

/// lhs := rhs over one tuple (throws on a non-variable lhs).
std::optional<Result> assignTuple(Result& l, Result& r);
/// lhs :=: rhs over one tuple.
std::optional<Result> swapTuple(Result& l, Result& r);
/// lhs op:= rhs over one tuple; nullopt when a comparison-augmented op
/// fails.
std::optional<Result> augAssignTuple(BinKind k, Result& l, Result& r);

/// Unary operation: for each operand result, apply fn; nullopt results
/// are filtered (the search continues with the next operand result).
class UnOpGen final : public Gen {
 public:
  using Fn = std::function<std::optional<Result>(Result&)>;

  UnOpGen(GenPtr operand, Fn fn) : operand_(std::move(operand)), fn_(std::move(fn)) {}

  static GenPtr create(GenPtr operand, Fn fn) {
    return std::make_shared<UnOpGen>(std::move(operand), std::move(fn));
  }

 protected:
  bool doNext(Result& out) override;
  void doRestart() override { operand_->restart(); }

 private:
  GenPtr operand_;
  Fn fn_;
};

/// Binary operation over the cross product of two operand sequences.
class BinOpGen final : public Gen {
 public:
  using Fn = std::function<std::optional<Result>(Result&, Result&)>;

  BinOpGen(GenPtr left, GenPtr right, Fn fn)
      : left_(std::move(left)), right_(std::move(right)), fn_(std::move(fn)) {}

  static GenPtr create(GenPtr left, GenPtr right, Fn fn) {
    return std::make_shared<BinOpGen>(std::move(left), std::move(right), std::move(fn));
  }

 protected:
  bool doNext(Result& out) override;
  void doRestart() override;

 private:
  GenPtr left_, right_;
  Fn fn_;
  Result leftResult_;
  bool leftActive_ = false;
};

/// Delegation over an operand product: for each tuple of operand results,
/// a factory creates an inner generator whose results are the node's
/// results until it fails, whereupon the operand product backtracks.
/// This is the engine behind invocation (the IconInvokeIterator of
/// Fig. 5) and `to`-`by` ranges with generator bounds.
class DelegateGen final : public Gen {
 public:
  using Factory = std::function<GenPtr(const std::vector<Result>&)>;

  DelegateGen(std::vector<GenPtr> operands, Factory factory)
      : operands_(std::move(operands)),
        current_(operands_.size()),
        factory_(std::move(factory)) {}

  static GenPtr create(std::vector<GenPtr> operands, Factory factory) {
    return std::make_shared<DelegateGen>(std::move(operands), std::move(factory));
  }

 protected:
  bool doNext(Result& out) override;
  void doRestart() override;

 private:
  bool advanceTuple();

  std::vector<GenPtr> operands_;
  std::vector<Result> current_;
  Factory factory_;
  GenPtr inner_;
  std::size_t bound_ = 0;
  bool exhaustedNullary_ = false;  // for the zero-operand case
};

/// Procedure invocation f(e1, ..., en): flattens callee and arguments via
/// the operand product and delegates iteration to the generator returned
/// by the procedure (Section V.A: "lifting an invocation f(x) takes its
/// closure and delegates iteration to the generator produced by its
/// invocation").
GenPtr makeInvokeGen(GenPtr callee, std::vector<GenPtr> args);

/// e1 to e2 [by e3] with generator operands.
GenPtr makeToByGen(GenPtr from, GenPtr to, GenPtr by /* may be null → 1 */);

/// Subscript x[i]: yields a trapped variable for lists and tables, a
/// character for strings; fails (goal-directed) when out of range.
GenPtr makeIndexGen(GenPtr collection, GenPtr index);

/// Field access o.name: trapped variable over a record field or table
/// entry.
GenPtr makeFieldGen(GenPtr object, std::string name);

/// Slice x[i:j] over Icon *positions* (1..n+1; nonpositive from the
/// right; bounds swap when reversed): substring for strings, section
/// copy for lists; fails when out of range.
GenPtr makeSliceGen(GenPtr collection, GenPtr from, GenPtr to);

/// Assignment lhs := rhs (yields the variable; products backtrack).
GenPtr makeAssignGen(GenPtr lhs, GenPtr rhs);
/// Swap lhs :=: rhs.
GenPtr makeSwapGen(GenPtr lhs, GenPtr rhs);
/// Reversible assignment lhs <- rhs: assigns and yields like :=, but a
/// resumption during backtracking RESTORES the old value and moves to
/// the next alternative (companion of string scanning; Icon 2nd ed.).
GenPtr makeRevAssignGen(GenPtr lhs, GenPtr rhs);
/// Reversible swap lhs <-> rhs.
GenPtr makeRevSwapGen(GenPtr lhs, GenPtr rhs);
/// Augmented assignment lhs op:= rhs for op in + - * / % ^ ||.
GenPtr makeAugAssignGen(std::string_view op, GenPtr lhs, GenPtr rhs);

/// List literal [e1, ..., en]: cross-product semantics — each element
/// expression contributes its result sequence, so [1|2] generates two
/// lists.
GenPtr makeListLitGen(std::vector<GenPtr> elements);

/// Standard unary/binary operators by name; throws std::invalid_argument
/// for unknown operators.
///   binary: + - * / % ^ || < <= > >= = ~= == ~== === ~===
///   unary:  - + * (size) ~ (not implemented for csets: error)
GenPtr makeBinaryOpGen(std::string_view op, GenPtr left, GenPtr right);
GenPtr makeUnaryOpGen(std::string_view op, GenPtr operand);

}  // namespace congen

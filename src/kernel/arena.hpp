// arena.hpp — thread-cached freelist for the hottest kernel nodes.
//
// The interpreter and emitted modules create short-lived leaf generators
// (ConstGen per argument, the singleton() wrapper around every native
// call) at a rate that makes the allocator the hot path. This arena
// recycles those control blocks through per-thread, per-size-class free
// lists: allocation pops from the current thread's bin, deallocation
// pushes to it. Blocks are plain operator-new memory, so a block freed on
// a different thread than it was allocated on simply migrates bins — no
// locks, no cross-thread sharing of list structure.
//
// Observability: allocate()/deallocate() inline into generator hot loops,
// where even a metrics-flag branch measurably degrades the callers'
// register allocation (~25% on kernel/range_bare). So the arena keeps
// BRANCH-FREE per-thread tallies — one relaxed store to this thread's own
// cache line per operation, below the registry's one-relaxed-load
// disabled-cost ceiling — and a snapshot-time collector (arena.cpp)
// folds them into the kernel.arena.* registry counters.
//
// Under ASan/TSan/MSan the arena passes through to operator new/delete so
// reuse cannot mask use-after-free or data-race reports (tallies then
// stay zero).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "concur/fault_injection.hpp"
#include "runtime/error.hpp"
#include "runtime/governor_hooks.hpp"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define CONGEN_ARENA_PASSTHROUGH 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define CONGEN_ARENA_PASSTHROUGH 1
#endif
#endif

namespace congen::arena {

inline constexpr std::size_t kGranularity = 16;   // size-class step, bytes
inline constexpr std::size_t kMaxBytes = 512;     // larger blocks go to new/delete
inline constexpr std::size_t kMaxPerClass = 128;  // bin cap: bounds idle memory

/// Aggregate arena activity (live threads + retired threads), pulled by
/// the obs collector at snapshot time.
struct Stats {
  std::uint64_t hits = 0;     ///< allocations served from a thread bin
  std::uint64_t misses = 0;   ///< allocations that fell through to operator new
  std::uint64_t returns = 0;  ///< deallocations parked back into a bin
};

/// Sum the per-thread tallies (relaxed reads; each counter is exact after
/// the writing thread quiesces).
Stats stats() noexcept;

namespace detail {

/// Per-thread counters. Single writer (the owning thread) via relaxed
/// load+store — compiles to a plain add on the thread's own cache line,
/// no flag check, no RMW; the collector reads them relaxed cross-thread.
struct Tally {
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
  std::atomic<std::uint64_t> returns{0};
};

inline void bump(std::atomic<std::uint64_t>& c) noexcept {
  c.store(c.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
}

void registerTally(Tally* t);  // arena.cpp: global live-tally list
void retireTally(Tally* t) noexcept;  // flushes totals, then unlinks

/// Lives in its own thread_local (not inside ThreadCache): the bench
/// gates showed the allocator's callers are sensitive to ThreadCache's
/// exact layout, so the observability state stays out of it.
struct TallyHolder {
  Tally t;
  TallyHolder() { registerTally(&t); }
  ~TallyHolder() { retireTally(&t); }
};

inline Tally& tally() {
  thread_local TallyHolder h;
  return h.t;
}

/// The system-allocator fall-through, and the governor's heap charge
/// point: bin hit/park fast paths stay branch-free (a parked block
/// remains "reserved"); only bytes actually requested from operator new
/// are charged. Out-of-line for the same register-allocation reason as
/// make() below — the miss path already pays a call.
///
/// Allocation failure — a real bad_alloc or an injected ArenaAlloc
/// fault — surfaces as the catchable Icon error 305, with the governor
/// charge credited back first.
#if defined(__GNUC__)
__attribute__((noinline))
#endif
inline void*
systemAlloc(std::size_t bytes) {
  governor::onHeapAlloc(bytes);  // may throw 811/816; nothing charged then
  try {
    CONGEN_FAULT_POINT(ArenaAlloc);
    return ::operator new(bytes);
  } catch (const testing::InjectedFault&) {
  } catch (const std::bad_alloc&) {
  }
  governor::onHeapFree(bytes);
  throw errOutOfMemory("arena block");
}

#if defined(__GNUC__)
__attribute__((noinline))
#endif
inline void
systemFree(void* p, std::size_t bytes) noexcept {
  ::operator delete(p);
  governor::onHeapFree(bytes);
}

struct ThreadCache {
  std::vector<void*> bins[kMaxBytes / kGranularity];
  // Set false by the destructor: late deallocations (statics destroyed
  // after this thread_local) fall back to operator delete.
  bool alive = true;

  ~ThreadCache() {
    alive = false;
    for (std::size_t i = 0; i < std::size(bins); ++i) {
      for (void* p : bins[i]) systemFree(p, (i + 1) * kGranularity);
      bins[i].clear();
    }
  }
};

inline ThreadCache& cache() {
  thread_local ThreadCache c;
  return c;
}

}  // namespace detail

inline void* allocate(std::size_t bytes) {
#ifdef CONGEN_ARENA_PASSTHROUGH
  return detail::systemAlloc(bytes);
#else
  if (bytes == 0 || bytes > kMaxBytes) return detail::systemAlloc(bytes);
  const std::size_t cls = (bytes + kGranularity - 1) / kGranularity;
  auto& c = detail::cache();
  if (c.alive) {
    auto& bin = c.bins[cls - 1];
    if (!bin.empty()) {
      void* p = bin.back();
      bin.pop_back();
      detail::bump(detail::tally().hits);
      return p;
    }
    detail::bump(detail::tally().misses);
  }
  return detail::systemAlloc(cls * kGranularity);  // sized for the class, reusable
#endif
}

inline void deallocate(void* p, std::size_t bytes) noexcept {
#ifdef CONGEN_ARENA_PASSTHROUGH
  detail::systemFree(p, bytes);
#else
  if (bytes == 0 || bytes > kMaxBytes) {
    detail::systemFree(p, bytes);
    return;
  }
  const std::size_t cls = (bytes + kGranularity - 1) / kGranularity;
  auto& c = detail::cache();
  if (c.alive) {
    auto& bin = c.bins[cls - 1];
    if (bin.size() < kMaxPerClass) {
      try {
        bin.push_back(p);
        detail::bump(detail::tally().returns);
        return;
      } catch (...) {
        // fall through: return the block to the system instead
      }
    }
  }
  detail::systemFree(p, cls * kGranularity);
#endif
}

/// std::allocator-compatible adapter over the thread cache, for
/// allocate_shared (object + control block come from one arena block).
template <class T>
struct Allocator {
  using value_type = T;

  Allocator() noexcept = default;
  template <class U>
  Allocator(const Allocator<U>&) noexcept {}  // NOLINT(google-explicit-constructor)

  T* allocate(std::size_t n) { return static_cast<T*>(arena::allocate(n * sizeof(T))); }
  void deallocate(T* p, std::size_t n) noexcept { arena::deallocate(p, n * sizeof(T)); }

  template <class U>
  bool operator==(const Allocator<U>&) const noexcept {
    return true;
  }
};

/// make_shared through the arena.
///
/// Kept out-of-line on purpose: letting allocate_shared (bin pop, TLS
/// cache, control-block setup, tallies) inline into generator-creating
/// callers bloats them enough that GCC spills their loop registers —
/// kernel/range_bare pays ~25% for it. One call per node creation is
/// noise next to the allocation itself.
template <class T, class... Args>
#if defined(__GNUC__)
__attribute__((noinline))
#endif
std::shared_ptr<T>
make(Args&&... args) {
  return std::allocate_shared<T>(Allocator<T>{}, std::forward<Args>(args)...);
}

}  // namespace congen::arena

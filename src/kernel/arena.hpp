// arena.hpp — thread-cached freelist for the hottest kernel nodes.
//
// The interpreter and emitted modules create short-lived leaf generators
// (ConstGen per argument, the singleton() wrapper around every native
// call) at a rate that makes the allocator the hot path. This arena
// recycles those control blocks through per-thread, per-size-class free
// lists: allocation pops from the current thread's bin, deallocation
// pushes to it. Blocks are plain operator-new memory, so a block freed on
// a different thread than it was allocated on simply migrates bins — no
// locks, no cross-thread sharing of list structure.
//
// Under ASan/TSan/MSan the arena passes through to operator new/delete so
// reuse cannot mask use-after-free or data-race reports.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define CONGEN_ARENA_PASSTHROUGH 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define CONGEN_ARENA_PASSTHROUGH 1
#endif
#endif

namespace congen::arena {

inline constexpr std::size_t kGranularity = 16;   // size-class step, bytes
inline constexpr std::size_t kMaxBytes = 512;     // larger blocks go to new/delete
inline constexpr std::size_t kMaxPerClass = 128;  // bin cap: bounds idle memory

namespace detail {

struct ThreadCache {
  std::vector<void*> bins[kMaxBytes / kGranularity];
  // Set false by the destructor: late deallocations (statics destroyed
  // after this thread_local) fall back to operator delete.
  bool alive = true;

  ~ThreadCache() {
    alive = false;
    for (auto& bin : bins) {
      for (void* p : bin) ::operator delete(p);
      bin.clear();
    }
  }
};

inline ThreadCache& cache() {
  thread_local ThreadCache c;
  return c;
}

}  // namespace detail

inline void* allocate(std::size_t bytes) {
#ifdef CONGEN_ARENA_PASSTHROUGH
  return ::operator new(bytes);
#else
  if (bytes == 0 || bytes > kMaxBytes) return ::operator new(bytes);
  const std::size_t cls = (bytes + kGranularity - 1) / kGranularity;
  auto& c = detail::cache();
  if (c.alive) {
    auto& bin = c.bins[cls - 1];
    if (!bin.empty()) {
      void* p = bin.back();
      bin.pop_back();
      return p;
    }
  }
  return ::operator new(cls * kGranularity);  // sized for the class, reusable
#endif
}

inline void deallocate(void* p, [[maybe_unused]] std::size_t bytes) noexcept {
#ifdef CONGEN_ARENA_PASSTHROUGH
  ::operator delete(p);
#else
  if (bytes == 0 || bytes > kMaxBytes) {
    ::operator delete(p);
    return;
  }
  const std::size_t cls = (bytes + kGranularity - 1) / kGranularity;
  auto& c = detail::cache();
  if (c.alive) {
    auto& bin = c.bins[cls - 1];
    if (bin.size() < kMaxPerClass) {
      try {
        bin.push_back(p);
        return;
      } catch (...) {
        // fall through: return the block to the system instead
      }
    }
  }
  ::operator delete(p);
#endif
}

/// std::allocator-compatible adapter over the thread cache, for
/// allocate_shared (object + control block come from one arena block).
template <class T>
struct Allocator {
  using value_type = T;

  Allocator() noexcept = default;
  template <class U>
  Allocator(const Allocator<U>&) noexcept {}  // NOLINT(google-explicit-constructor)

  T* allocate(std::size_t n) { return static_cast<T*>(arena::allocate(n * sizeof(T))); }
  void deallocate(T* p, std::size_t n) noexcept { arena::deallocate(p, n * sizeof(T)); }

  template <class U>
  bool operator==(const Allocator<U>&) const noexcept {
    return true;
  }
};

/// make_shared through the arena.
template <class T, class... Args>
std::shared_ptr<T> make(Args&&... args) {
  return std::allocate_shared<T>(Allocator<T>{}, std::forward<Args>(args)...);
}

}  // namespace congen::arena

#include "kernel/ops.hpp"

#include <stdexcept>

#include "kernel/basic.hpp"
#include "kernel/error_env.hpp"
#include "runtime/collections.hpp"
#include "runtime/error.hpp"
#include "runtime/proc.hpp"
#include "runtime/record.hpp"
#include "runtime/var.hpp"

namespace congen {

// ---------------------------------------------------------------------
// UnOpGen / BinOpGen
// ---------------------------------------------------------------------
//
// The operator nodes are where run-time errors become catchable: with
// &error credit (see error_env.hpp), an IconError raised while
// evaluating the node converts to plain failure of the node. The
// handlers live here — not in every builtin — because these three node
// kinds are the translation-level notion of "the expression in which
// the error occurred", and both the interpreter and emitted C++ build
// their trees from them. Returning false leaves partial iteration
// state behind, which is safe: a failed node is restarted by Gen::next
// before its next cycle.

bool UnOpGen::doNext(Result& out) {
  try {
    while (true) {
      if (!operand_->next(out)) return false;
      if (out.isControl()) return true;
      auto r = fn_(out);
      if (r) {
        out = std::move(*r);
        return true;
      }
      // else: filtered — continue the search
    }
  } catch (const IconError& e) {
    if (!ErrorEnv::convertToFailure(e)) throw;
    return false;
  }
}

bool BinOpGen::doNext(Result& out) {
  try {
    while (true) {
      if (!leftActive_) {
        if (!left_->next(out)) return false;
        if (out.isControl()) return true;
        leftResult_ = std::move(out);
        leftActive_ = true;
        right_->restart();
      }
      if (!right_->next(out)) {
        leftActive_ = false;  // backtrack into the left operand
        continue;
      }
      if (out.isControl()) return true;
      auto r = fn_(leftResult_, out);
      if (r) {
        out = std::move(*r);
        return true;
      }
    }
  } catch (const IconError& e) {
    if (!ErrorEnv::convertToFailure(e)) throw;
    return false;
  }
}

void BinOpGen::doRestart() {
  leftActive_ = false;
  left_->restart();
  right_->restart();
}

// ---------------------------------------------------------------------
// DelegateGen
// ---------------------------------------------------------------------

bool DelegateGen::advanceTuple() {
  const std::size_t n = operands_.size();
  if (n == 0) {
    if (exhaustedNullary_) return false;
    exhaustedNullary_ = true;
    return true;
  }
  if (bound_ == n) bound_ = n - 1;  // inner exhausted: re-advance the deepest operand
  while (true) {
    if (operands_[bound_]->next(current_[bound_])) {
      ++bound_;
      if (bound_ == n) return true;
      operands_[bound_]->restart();
    } else {
      if (bound_ == 0) return false;
      --bound_;
    }
  }
}

bool DelegateGen::doNext(Result& out) {
  try {
    while (true) {
      if (inner_) {
        if (inner_->next(out)) return true;
        inner_.reset();
      }
      if (!advanceTuple()) return false;
      inner_ = factory_(current_);
      if (!inner_) return false;
    }
  } catch (const IconError& e) {
    if (!ErrorEnv::convertToFailure(e)) throw;
    return false;
  }
}

void DelegateGen::doRestart() {
  inner_.reset();
  // Drop the retained operand tuple, not just the inner generator: for an
  // invocation, current_[0] is the procedure value, and a parked body
  // tree that pins its own procedure (recursive calls) is a cycle through
  // the body pool that can never collect.
  for (auto& r : current_) {
    r.value = Value::null();
    r.ref = nullptr;
  }
  bound_ = 0;
  exhaustedNullary_ = false;
  for (auto& op : operands_) op->restart();
}

// ---------------------------------------------------------------------
// Invocation / to-by / subscripts / fields
// ---------------------------------------------------------------------

GenPtr makeInvokeGen(GenPtr callee, std::vector<GenPtr> args) {
  std::vector<GenPtr> operands;
  operands.reserve(args.size() + 1);
  operands.push_back(std::move(callee));
  for (auto& a : args) operands.push_back(std::move(a));
  return DelegateGen::create(std::move(operands), [](const std::vector<Result>& tuple) -> GenPtr {
    const Value& f = tuple[0].value;
    if (!f.isProc()) throw errCallableExpected(f.image());
    std::vector<Value> argValues;
    argValues.reserve(tuple.size() - 1);
    for (std::size_t i = 1; i < tuple.size(); ++i) argValues.push_back(tuple[i].value);
    return f.proc()->invoke(std::move(argValues));
  });
}

GenPtr makeToByGen(GenPtr from, GenPtr to, GenPtr by) {
  std::vector<GenPtr> operands;
  operands.push_back(std::move(from));
  operands.push_back(std::move(to));
  operands.push_back(by ? std::move(by) : ConstGen::create(Value::integer(1)));
  return DelegateGen::create(std::move(operands), [](const std::vector<Result>& tuple) {
    return RangeGen::create(tuple[0].value, tuple[1].value, tuple[2].value);
  });
}

GenPtr makeIndexGen(GenPtr collection, GenPtr index) {
  return BinOpGen::create(std::move(collection), std::move(index),
                          [](Result& c, Result& i) -> std::optional<Result> {
    const Value& v = c.value;
    if (v.isList()) {
      const std::int64_t idx = i.value.requireInt64("list subscript");
      auto elem = v.list()->at(idx);
      if (!elem) return std::nullopt;  // out of range: fail, don't error
      return Result{std::move(*elem), ListElemVar::create(v.list(), idx)};
    }
    if (v.isTable()) {
      return Result{v.table()->lookup(i.value), TableElemVar::create(v.table(), i.value)};
    }
    if (v.isRecord()) {
      const std::int64_t idx = i.value.requireInt64("record subscript");
      auto elem = v.record()->at(idx);
      if (!elem) return std::nullopt;
      return Result{std::move(*elem), RecordElemVar::create(v.record(), idx)};
    }
    if (v.isString()) {
      const std::int64_t idx = i.value.requireInt64("string subscript");
      const auto& s = v.str();
      const std::int64_t n = static_cast<std::int64_t>(s.size());
      std::int64_t off = -1;
      if (idx >= 1 && idx <= n) off = idx - 1;
      else if (idx < 0 && -idx <= n) off = n + idx;
      if (off < 0) return std::nullopt;
      return Result{Value::string(std::string(1, s[static_cast<std::size_t>(off)]))};
    }
    throw errInvalidValue("subscript applied to " + v.typeName());
  });
}

GenPtr makeFieldGen(GenPtr object, std::string name) {
  return UnOpGen::create(std::move(object), [name = std::move(name)](Result& o) -> std::optional<Result> {
    if (o.value.isRecord()) {
      auto v = o.value.record()->field(name);
      if (!v) throw IconError(207, "record " + o.value.typeName() + " has no field " + name);
      return Result{std::move(*v), RecordFieldVar::create(o.value.record(), name)};
    }
    if (o.value.isTable()) {
      const Value key = Value::string(name);
      return Result{o.value.table()->lookup(key), TableElemVar::create(o.value.table(), key)};
    }
    throw errInvalidValue("field ." + name + " applied to " + o.value.typeName());
  });
}

GenPtr makeSliceGen(GenPtr collection, GenPtr from, GenPtr to) {
  std::vector<GenPtr> operands;
  operands.push_back(std::move(collection));
  operands.push_back(std::move(from));
  operands.push_back(std::move(to));
  return DelegateGen::create(std::move(operands), [](const std::vector<Result>& t) -> GenPtr {
    const Value& v = t[0].value;
    const std::int64_t n = v.isString() ? static_cast<std::int64_t>(v.str().size())
                           : v.isList() ? v.list()->size()
                                        : throw errInvalidValue("slice of " + v.typeName());
    // Icon positions: 1..n+1 from the left, 0 and negatives from the right.
    auto resolve = [n](std::int64_t p) -> std::optional<std::int64_t> {
      if (p <= 0) p = n + 1 + p;
      if (p < 1 || p > n + 1) return std::nullopt;
      return p;
    };
    auto i = resolve(t[1].value.requireInt64("slice from"));
    auto j = resolve(t[2].value.requireInt64("slice to"));
    if (!i || !j) return FailGen::create();
    if (*i > *j) std::swap(*i, *j);
    if (v.isString()) {
      return ConstGen::create(Value::string(
          v.str().substr(static_cast<std::size_t>(*i - 1), static_cast<std::size_t>(*j - *i))));
    }
    auto out = ListImpl::create();
    for (std::int64_t k = *i; k < *j; ++k) out->put(*v.list()->at(k));
    return ConstGen::create(Value::list(std::move(out)));
  });
}

GenPtr makeAssignGen(GenPtr lhs, GenPtr rhs) {
  return BinOpGen::create(std::move(lhs), std::move(rhs),
                          [](Result& l, Result& r) -> std::optional<Result> {
    if (!l.ref) throw errInvalidValue("assignment to a non-variable");
    l.ref->set(r.value);
    return Result{r.value, l.ref};
  });
}

GenPtr makeSwapGen(GenPtr lhs, GenPtr rhs) {
  return BinOpGen::create(std::move(lhs), std::move(rhs),
                          [](Result& l, Result& r) -> std::optional<Result> {
    if (!l.ref || !r.ref) throw errInvalidValue("swap of a non-variable");
    const Value lv = l.ref->get();
    const Value rv = r.ref->get();
    l.ref->set(rv);
    r.ref->set(lv);
    return Result{rv, l.ref};
  });
}

GenPtr makeListLitGen(std::vector<GenPtr> elements) {
  return DelegateGen::create(std::move(elements), [](const std::vector<Result>& tuple) {
    auto list = ListImpl::create();
    for (const auto& r : tuple) list->put(r.value);
    return ConstGen::create(Value::list(std::move(list)));
  });
}

namespace {

/// lhs <- rhs. For each rhs alternative: save the old value, assign,
/// yield; when resumed, restore and try the next alternative; when rhs
/// is exhausted, leave the original value in place and backtrack into
/// the lhs.
class RevAssignGen final : public Gen {
 public:
  RevAssignGen(GenPtr lhs, GenPtr rhs) : lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

 protected:
  bool doNext(Result& out) override {
    while (true) {
      if (!active_) {
        if (!lhs_->next(out)) return false;
        if (out.isControl()) return true;
        if (!out.ref) throw errInvalidValue("reversible assignment to a non-variable");
        target_ = out.ref;
        saved_ = target_->get();
        active_ = true;
        rhs_->restart();
      }
      if (assigned_) {  // resumed: undo the previous alternative
        target_->set(saved_);
        assigned_ = false;
      }
      if (!rhs_->next(out)) {
        active_ = false;  // rhs exhausted (value already restored)
        continue;
      }
      if (out.isControl()) return true;
      target_->set(out.value);
      assigned_ = true;
      out.ref = target_;
      return true;
    }
  }
  void doRestart() override {
    if (assigned_) target_->set(saved_);
    assigned_ = false;
    active_ = false;
    lhs_->restart();
    rhs_->restart();
  }

 private:
  GenPtr lhs_, rhs_;
  VarPtr target_;
  Value saved_;
  bool active_ = false;
  bool assigned_ = false;
};

/// lhs <-> rhs: exchange once per cycle, restore when resumed.
class RevSwapGen final : public Gen {
 public:
  RevSwapGen(GenPtr lhs, GenPtr rhs) : lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

 protected:
  bool doNext(Result& out) override {
    if (swapped_) {  // resumed: undo and fail
      left_->set(savedLeft_);
      right_->set(savedRight_);
      swapped_ = false;
      return false;
    }
    lhs_->restart();
    rhs_->restart();
    Result rl, rr;
    if (!lhs_->next(rl)) return false;
    if (!rhs_->next(rr)) return false;
    if (!rl.ref || !rr.ref) throw errInvalidValue("reversible swap of a non-variable");
    left_ = rl.ref;
    right_ = rr.ref;
    savedLeft_ = left_->get();
    savedRight_ = right_->get();
    left_->set(savedRight_);
    right_->set(savedLeft_);
    swapped_ = true;
    out.set(savedRight_, left_);
    return true;
  }
  void doRestart() override {
    if (swapped_) {
      left_->set(savedLeft_);
      right_->set(savedRight_);
      swapped_ = false;
    }
    lhs_->restart();
    rhs_->restart();
  }

 private:
  GenPtr lhs_, rhs_;
  VarPtr left_, right_;
  Value savedLeft_, savedRight_;
  bool swapped_ = false;
};

}  // namespace

GenPtr makeRevAssignGen(GenPtr lhs, GenPtr rhs) {
  return std::make_shared<RevAssignGen>(std::move(lhs), std::move(rhs));
}

GenPtr makeRevSwapGen(GenPtr lhs, GenPtr rhs) {
  return std::make_shared<RevSwapGen>(std::move(lhs), std::move(rhs));
}

namespace {

using ValueBinFn = std::function<std::optional<Value>(const Value&, const Value&)>;

ValueBinFn lookupValueBinary(std::string_view op) {
  auto total = [](Value (*f)(const Value&, const Value&)) -> ValueBinFn {
    return [f](const Value& a, const Value& b) -> std::optional<Value> { return f(a, b); };
  };
  if (op == "+") return total(ops::add);
  if (op == "-") return total(ops::sub);
  if (op == "*") return total(ops::mul);
  if (op == "/") return total(ops::div);
  if (op == "%") return total(ops::mod);
  if (op == "^") return total(ops::power);
  if (op == "||") return total(ops::concat);
  if (op == "|||") return total(ops::listConcat);
  if (op == "<") return ops::numLT;
  if (op == "<=") return ops::numLE;
  if (op == ">") return ops::numGT;
  if (op == ">=") return ops::numGE;
  if (op == "=") return ops::numEQ;
  if (op == "~=") return ops::numNE;
  if (op == "==") return ops::valEQ;
  if (op == "~==") return ops::valNE;
  if (op == "!=") return ops::valNE;
  if (op == "===") return ops::valEQ;
  if (op == "~===") return ops::valNE;
  throw std::invalid_argument("unknown binary operator: " + std::string(op));
}

}  // namespace

GenPtr makeAugAssignGen(std::string_view op, GenPtr lhs, GenPtr rhs) {
  ValueBinFn fn = lookupValueBinary(op);
  return BinOpGen::create(std::move(lhs), std::move(rhs),
                          [fn = std::move(fn)](Result& l, Result& r) -> std::optional<Result> {
    if (!l.ref) throw errInvalidValue("augmented assignment to a non-variable");
    auto v = fn(l.ref->get(), r.value);
    if (!v) return std::nullopt;  // comparison-augmented ops can fail
    l.ref->set(*v);
    return Result{std::move(*v), l.ref};
  });
}

GenPtr makeBinaryOpGen(std::string_view op, GenPtr left, GenPtr right) {
  ValueBinFn fn = lookupValueBinary(op);
  return BinOpGen::create(std::move(left), std::move(right),
                          [fn = std::move(fn)](Result& l, Result& r) -> std::optional<Result> {
    auto v = fn(l.value, r.value);
    if (!v) return std::nullopt;
    return Result{std::move(*v)};
  });
}

GenPtr makeUnaryOpGen(std::string_view op, GenPtr operand) {
  if (op == "-") {
    return UnOpGen::create(std::move(operand), [](Result& r) -> std::optional<Result> {
      return Result{ops::negate(r.value)};
    });
  }
  if (op == "+") {
    return UnOpGen::create(std::move(operand), [](Result& r) -> std::optional<Result> {
      auto n = r.value.toNumeric();
      if (!n) throw errNumericExpected("operand of unary +: " + r.value.image());
      return Result{std::move(*n)};
    });
  }
  if (op == "*") {
    return UnOpGen::create(std::move(operand), [](Result& r) -> std::optional<Result> {
      return Result{Value::integer(r.value.size())};
    });
  }
  if (op == ".") {  // dereference: strip the variable reference
    return UnOpGen::create(std::move(operand), [](Result& r) -> std::optional<Result> {
      return Result{r.value};
    });
  }
  if (op == "\\") {  // \x: succeeds with x (as a variable) iff non-null
    return UnOpGen::create(std::move(operand), [](Result& r) -> std::optional<Result> {
      if (r.value.isNull()) return std::nullopt;
      return r;
    });
  }
  if (op == "/") {  // /x: succeeds with x iff null
    return UnOpGen::create(std::move(operand), [](Result& r) -> std::optional<Result> {
      if (!r.value.isNull()) return std::nullopt;
      return r;
    });
  }
  throw std::invalid_argument("unknown unary operator: " + std::string(op));
}

}  // namespace congen

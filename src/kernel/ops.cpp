#include "kernel/ops.hpp"

#include <stdexcept>

#include "kernel/basic.hpp"
#include "kernel/error_env.hpp"
#include "runtime/collections.hpp"
#include "runtime/error.hpp"
#include "runtime/proc.hpp"
#include "runtime/record.hpp"
#include "runtime/var.hpp"

namespace congen {

// ---------------------------------------------------------------------
// Shared per-tuple semantics (see ops.hpp: one implementation for the
// tree kernel and the bytecode VM)
// ---------------------------------------------------------------------

std::optional<BinKind> binKindOf(std::string_view op) {
  if (op == "+") return BinKind::Add;
  if (op == "-") return BinKind::Sub;
  if (op == "*") return BinKind::Mul;
  if (op == "/") return BinKind::Div;
  if (op == "%") return BinKind::Mod;
  if (op == "^") return BinKind::Pow;
  if (op == "||") return BinKind::Concat;
  if (op == "|||") return BinKind::ListConcat;
  if (op == "<") return BinKind::NumLT;
  if (op == "<=") return BinKind::NumLE;
  if (op == ">") return BinKind::NumGT;
  if (op == ">=") return BinKind::NumGE;
  if (op == "=") return BinKind::NumEQ;
  if (op == "~=") return BinKind::NumNE;
  if (op == "==") return BinKind::ValEQ;
  if (op == "~==") return BinKind::ValNE;
  if (op == "!=") return BinKind::ValNE;
  if (op == "===") return BinKind::ValEQ;
  if (op == "~===") return BinKind::ValNE;
  return std::nullopt;
}

std::optional<UnKind> unKindOf(std::string_view op) {
  if (op == "-") return UnKind::Negate;
  if (op == "+") return UnKind::Plus;
  if (op == "*") return UnKind::Size;
  if (op == ".") return UnKind::Deref;
  if (op == "\\") return UnKind::NonNull;
  if (op == "/") return UnKind::IfNull;
  return std::nullopt;
}

const char* binKindName(BinKind k) {
  switch (k) {
    case BinKind::Add: return "add";
    case BinKind::Sub: return "sub";
    case BinKind::Mul: return "mul";
    case BinKind::Div: return "div";
    case BinKind::Mod: return "mod";
    case BinKind::Pow: return "pow";
    case BinKind::Concat: return "concat";
    case BinKind::ListConcat: return "lconcat";
    case BinKind::NumLT: return "numlt";
    case BinKind::NumLE: return "numle";
    case BinKind::NumGT: return "numgt";
    case BinKind::NumGE: return "numge";
    case BinKind::NumEQ: return "numeq";
    case BinKind::NumNE: return "numne";
    case BinKind::ValEQ: return "valeq";
    case BinKind::ValNE: return "valne";
  }
  return "?";
}

const char* unKindName(UnKind k) {
  switch (k) {
    case UnKind::Negate: return "neg";
    case UnKind::Plus: return "plus";
    case UnKind::Size: return "size";
    case UnKind::Deref: return "deref";
    case UnKind::NonNull: return "nonnull";
    case UnKind::IfNull: return "ifnull";
  }
  return "?";
}

std::optional<Value> applyBinary(BinKind k, const Value& a, const Value& b) {
  switch (k) {
    case BinKind::Add: return ops::add(a, b);
    case BinKind::Sub: return ops::sub(a, b);
    case BinKind::Mul: return ops::mul(a, b);
    case BinKind::Div: return ops::div(a, b);
    case BinKind::Mod: return ops::mod(a, b);
    case BinKind::Pow: return ops::power(a, b);
    case BinKind::Concat: return ops::concat(a, b);
    case BinKind::ListConcat: return ops::listConcat(a, b);
    case BinKind::NumLT: return ops::numLT(a, b);
    case BinKind::NumLE: return ops::numLE(a, b);
    case BinKind::NumGT: return ops::numGT(a, b);
    case BinKind::NumGE: return ops::numGE(a, b);
    case BinKind::NumEQ: return ops::numEQ(a, b);
    case BinKind::NumNE: return ops::numNE(a, b);
    case BinKind::ValEQ: return ops::valEQ(a, b);
    case BinKind::ValNE: return ops::valNE(a, b);
  }
  return std::nullopt;
}

std::optional<Result> applyUnary(UnKind k, Result& r) {
  switch (k) {
    case UnKind::Negate: return Result{ops::negate(r.value)};
    case UnKind::Plus: {
      auto n = r.value.toNumeric();
      if (!n) throw errNumericExpected("operand of unary +: " + r.value.image());
      return Result{std::move(*n)};
    }
    case UnKind::Size: return Result{Value::integer(r.value.size())};
    case UnKind::Deref: return Result{r.value};
    case UnKind::NonNull:
      if (r.value.isNull()) return std::nullopt;
      return r;
    case UnKind::IfNull:
      if (!r.value.isNull()) return std::nullopt;
      return r;
  }
  return std::nullopt;
}

std::optional<Result> indexTuple(Result& c, Result& i) {
  const Value& v = c.value;
  if (v.isList()) {
    const std::int64_t idx = i.value.requireInt64("list subscript");
    auto elem = v.list()->at(idx);
    if (!elem) return std::nullopt;  // out of range: fail, don't error
    return Result{std::move(*elem), ListElemVar::create(v.list(), idx)};
  }
  if (v.isTable()) {
    return Result{v.table()->lookup(i.value), TableElemVar::create(v.table(), i.value)};
  }
  if (v.isRecord()) {
    const std::int64_t idx = i.value.requireInt64("record subscript");
    auto elem = v.record()->at(idx);
    if (!elem) return std::nullopt;
    return Result{std::move(*elem), RecordElemVar::create(v.record(), idx)};
  }
  if (v.isString()) {
    const std::int64_t idx = i.value.requireInt64("string subscript");
    const auto& s = v.str();
    const std::int64_t n = static_cast<std::int64_t>(s.size());
    std::int64_t off = -1;
    if (idx >= 1 && idx <= n) off = idx - 1;
    else if (idx < 0 && -idx <= n) off = n + idx;
    if (off < 0) return std::nullopt;
    return Result{Value::string(std::string(1, s[static_cast<std::size_t>(off)]))};
  }
  throw errInvalidValue("subscript applied to " + v.typeName());
}

std::optional<Result> fieldTuple(Result& o, std::string_view name) {
  if (o.value.isRecord()) {
    auto v = o.value.record()->field(name);
    if (!v) {
      throw IconError(207, "record " + o.value.typeName() + " has no field " + std::string(name));
    }
    return Result{std::move(*v), RecordFieldVar::create(o.value.record(), std::string(name))};
  }
  if (o.value.isTable()) {
    const Value key = Value::string(name);
    return Result{o.value.table()->lookup(key), TableElemVar::create(o.value.table(), key)};
  }
  throw errInvalidValue("field ." + std::string(name) + " applied to " + o.value.typeName());
}

std::optional<Value> sliceTuple(const Value& v, const Value& from, const Value& to) {
  const std::int64_t n = v.isString() ? static_cast<std::int64_t>(v.str().size())
                         : v.isList() ? v.list()->size()
                                      : throw errInvalidValue("slice of " + v.typeName());
  // Icon positions: 1..n+1 from the left, 0 and negatives from the right.
  auto resolve = [n](std::int64_t p) -> std::optional<std::int64_t> {
    if (p <= 0) p = n + 1 + p;
    if (p < 1 || p > n + 1) return std::nullopt;
    return p;
  };
  auto i = resolve(from.requireInt64("slice from"));
  auto j = resolve(to.requireInt64("slice to"));
  if (!i || !j) return std::nullopt;
  if (*i > *j) std::swap(*i, *j);
  if (v.isString()) {
    return Value::string(
        v.str().substr(static_cast<std::size_t>(*i - 1), static_cast<std::size_t>(*j - *i)));
  }
  auto out = ListImpl::create();
  for (std::int64_t k = *i; k < *j; ++k) out->put(*v.list()->at(k));
  return Value::list(std::move(out));
}

std::optional<Result> assignTuple(Result& l, Result& r) {
  if (!l.ref) throw errInvalidValue("assignment to a non-variable");
  l.ref->set(r.value);
  return Result{r.value, l.ref};
}

std::optional<Result> swapTuple(Result& l, Result& r) {
  if (!l.ref || !r.ref) throw errInvalidValue("swap of a non-variable");
  const Value lv = l.ref->get();
  const Value rv = r.ref->get();
  l.ref->set(rv);
  r.ref->set(lv);
  return Result{rv, l.ref};
}

std::optional<Result> augAssignTuple(BinKind k, Result& l, Result& r) {
  if (!l.ref) throw errInvalidValue("augmented assignment to a non-variable");
  auto v = applyBinary(k, l.ref->get(), r.value);
  if (!v) return std::nullopt;  // comparison-augmented ops can fail
  l.ref->set(*v);
  return Result{std::move(*v), l.ref};
}

// ---------------------------------------------------------------------
// UnOpGen / BinOpGen
// ---------------------------------------------------------------------
//
// The operator nodes are where run-time errors become catchable: with
// &error credit (see error_env.hpp), an IconError raised while
// evaluating the node converts to plain failure of the node. The
// handlers live here — not in every builtin — because these three node
// kinds are the translation-level notion of "the expression in which
// the error occurred", and both the interpreter and emitted C++ build
// their trees from them. Returning false leaves partial iteration
// state behind, which is safe: a failed node is restarted by Gen::next
// before its next cycle.

bool UnOpGen::doNext(Result& out) {
  try {
    while (true) {
      if (!operand_->next(out)) return false;
      if (out.isControl()) return true;
      auto r = fn_(out);
      if (r) {
        out = std::move(*r);
        return true;
      }
      // else: filtered — continue the search
    }
  } catch (const IconError& e) {
    if (!ErrorEnv::convertToFailure(e)) throw;
    return false;
  }
}

bool BinOpGen::doNext(Result& out) {
  try {
    while (true) {
      if (!leftActive_) {
        if (!left_->next(out)) return false;
        if (out.isControl()) return true;
        leftResult_ = std::move(out);
        leftActive_ = true;
        right_->restart();
      }
      if (!right_->next(out)) {
        leftActive_ = false;  // backtrack into the left operand
        continue;
      }
      if (out.isControl()) return true;
      auto r = fn_(leftResult_, out);
      if (r) {
        out = std::move(*r);
        return true;
      }
    }
  } catch (const IconError& e) {
    if (!ErrorEnv::convertToFailure(e)) throw;
    return false;
  }
}

void BinOpGen::doRestart() {
  leftActive_ = false;
  left_->restart();
  right_->restart();
}

// ---------------------------------------------------------------------
// DelegateGen
// ---------------------------------------------------------------------

bool DelegateGen::advanceTuple() {
  const std::size_t n = operands_.size();
  if (n == 0) {
    if (exhaustedNullary_) return false;
    exhaustedNullary_ = true;
    return true;
  }
  if (bound_ == n) bound_ = n - 1;  // inner exhausted: re-advance the deepest operand
  while (true) {
    if (operands_[bound_]->next(current_[bound_])) {
      ++bound_;
      if (bound_ == n) return true;
      operands_[bound_]->restart();
    } else {
      if (bound_ == 0) return false;
      --bound_;
    }
  }
}

bool DelegateGen::doNext(Result& out) {
  try {
    while (true) {
      if (inner_) {
        if (inner_->next(out)) return true;
        inner_.reset();
      }
      if (!advanceTuple()) return false;
      inner_ = factory_(current_);
      if (!inner_) return false;
    }
  } catch (const IconError& e) {
    if (!ErrorEnv::convertToFailure(e)) throw;
    return false;
  }
}

void DelegateGen::doRestart() {
  inner_.reset();
  // Drop the retained operand tuple, not just the inner generator: for an
  // invocation, current_[0] is the procedure value, and a parked body
  // tree that pins its own procedure (recursive calls) is a cycle through
  // the body pool that can never collect.
  for (auto& r : current_) {
    r.value = Value::null();
    r.ref = nullptr;
  }
  bound_ = 0;
  exhaustedNullary_ = false;
  for (auto& op : operands_) op->restart();
}

// ---------------------------------------------------------------------
// Invocation / to-by / subscripts / fields
// ---------------------------------------------------------------------

GenPtr makeInvokeGen(GenPtr callee, std::vector<GenPtr> args) {
  std::vector<GenPtr> operands;
  operands.reserve(args.size() + 1);
  operands.push_back(std::move(callee));
  for (auto& a : args) operands.push_back(std::move(a));
  return DelegateGen::create(std::move(operands), [](const std::vector<Result>& tuple) -> GenPtr {
    const Value& f = tuple[0].value;
    if (!f.isProc()) throw errCallableExpected(f.image());
    std::vector<Value> argValues;
    argValues.reserve(tuple.size() - 1);
    for (std::size_t i = 1; i < tuple.size(); ++i) argValues.push_back(tuple[i].value);
    return f.proc()->invoke(std::move(argValues));
  });
}

GenPtr makeToByGen(GenPtr from, GenPtr to, GenPtr by) {
  std::vector<GenPtr> operands;
  operands.push_back(std::move(from));
  operands.push_back(std::move(to));
  operands.push_back(by ? std::move(by) : ConstGen::create(Value::integer(1)));
  return DelegateGen::create(std::move(operands), [](const std::vector<Result>& tuple) {
    return RangeGen::create(tuple[0].value, tuple[1].value, tuple[2].value);
  });
}

GenPtr makeIndexGen(GenPtr collection, GenPtr index) {
  return BinOpGen::create(std::move(collection), std::move(index), &indexTuple);
}

GenPtr makeFieldGen(GenPtr object, std::string name) {
  return UnOpGen::create(std::move(object),
                         [name = std::move(name)](Result& o) { return fieldTuple(o, name); });
}

GenPtr makeSliceGen(GenPtr collection, GenPtr from, GenPtr to) {
  std::vector<GenPtr> operands;
  operands.push_back(std::move(collection));
  operands.push_back(std::move(from));
  operands.push_back(std::move(to));
  return DelegateGen::create(std::move(operands), [](const std::vector<Result>& t) -> GenPtr {
    auto v = sliceTuple(t[0].value, t[1].value, t[2].value);
    if (!v) return FailGen::create();
    return ConstGen::create(std::move(*v));
  });
}

GenPtr makeAssignGen(GenPtr lhs, GenPtr rhs) {
  return BinOpGen::create(std::move(lhs), std::move(rhs), &assignTuple);
}

GenPtr makeSwapGen(GenPtr lhs, GenPtr rhs) {
  return BinOpGen::create(std::move(lhs), std::move(rhs), &swapTuple);
}

GenPtr makeListLitGen(std::vector<GenPtr> elements) {
  return DelegateGen::create(std::move(elements), [](const std::vector<Result>& tuple) {
    auto list = ListImpl::create();
    for (const auto& r : tuple) list->put(r.value);
    return ConstGen::create(Value::list(std::move(list)));
  });
}

namespace {

/// lhs <- rhs. For each rhs alternative: save the old value, assign,
/// yield; when resumed, restore and try the next alternative; when rhs
/// is exhausted, leave the original value in place and backtrack into
/// the lhs.
class RevAssignGen final : public Gen {
 public:
  RevAssignGen(GenPtr lhs, GenPtr rhs) : lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

 protected:
  bool doNext(Result& out) override {
    while (true) {
      if (!active_) {
        if (!lhs_->next(out)) return false;
        if (out.isControl()) return true;
        if (!out.ref) throw errInvalidValue("reversible assignment to a non-variable");
        target_ = out.ref;
        saved_ = target_->get();
        active_ = true;
        rhs_->restart();
      }
      if (assigned_) {  // resumed: undo the previous alternative
        target_->set(saved_);
        assigned_ = false;
      }
      if (!rhs_->next(out)) {
        active_ = false;  // rhs exhausted (value already restored)
        continue;
      }
      if (out.isControl()) return true;
      target_->set(out.value);
      assigned_ = true;
      out.ref = target_;
      return true;
    }
  }
  void doRestart() override {
    if (assigned_) target_->set(saved_);
    assigned_ = false;
    active_ = false;
    lhs_->restart();
    rhs_->restart();
  }

 private:
  GenPtr lhs_, rhs_;
  VarPtr target_;
  Value saved_;
  bool active_ = false;
  bool assigned_ = false;
};

/// lhs <-> rhs: exchange once per cycle, restore when resumed.
class RevSwapGen final : public Gen {
 public:
  RevSwapGen(GenPtr lhs, GenPtr rhs) : lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

 protected:
  bool doNext(Result& out) override {
    if (swapped_) {  // resumed: undo and fail
      left_->set(savedLeft_);
      right_->set(savedRight_);
      swapped_ = false;
      return false;
    }
    lhs_->restart();
    rhs_->restart();
    Result rl, rr;
    if (!lhs_->next(rl)) return false;
    if (!rhs_->next(rr)) return false;
    if (!rl.ref || !rr.ref) throw errInvalidValue("reversible swap of a non-variable");
    left_ = rl.ref;
    right_ = rr.ref;
    savedLeft_ = left_->get();
    savedRight_ = right_->get();
    left_->set(savedRight_);
    right_->set(savedLeft_);
    swapped_ = true;
    out.set(savedRight_, left_);
    return true;
  }
  void doRestart() override {
    if (swapped_) {
      left_->set(savedLeft_);
      right_->set(savedRight_);
      swapped_ = false;
    }
    lhs_->restart();
    rhs_->restart();
  }

 private:
  GenPtr lhs_, rhs_;
  VarPtr left_, right_;
  Value savedLeft_, savedRight_;
  bool swapped_ = false;
};

}  // namespace

GenPtr makeRevAssignGen(GenPtr lhs, GenPtr rhs) {
  return std::make_shared<RevAssignGen>(std::move(lhs), std::move(rhs));
}

GenPtr makeRevSwapGen(GenPtr lhs, GenPtr rhs) {
  return std::make_shared<RevSwapGen>(std::move(lhs), std::move(rhs));
}

GenPtr makeAugAssignGen(std::string_view op, GenPtr lhs, GenPtr rhs) {
  const auto k = binKindOf(op);
  if (!k) throw std::invalid_argument("unknown binary operator: " + std::string(op));
  return BinOpGen::create(std::move(lhs), std::move(rhs),
                          [k = *k](Result& l, Result& r) { return augAssignTuple(k, l, r); });
}

GenPtr makeBinaryOpGen(std::string_view op, GenPtr left, GenPtr right) {
  const auto k = binKindOf(op);
  if (!k) throw std::invalid_argument("unknown binary operator: " + std::string(op));
  return BinOpGen::create(std::move(left), std::move(right),
                          [k = *k](Result& l, Result& r) -> std::optional<Result> {
    auto v = applyBinary(k, l.value, r.value);
    if (!v) return std::nullopt;
    return Result{std::move(*v)};
  });
}

GenPtr makeUnaryOpGen(std::string_view op, GenPtr operand) {
  const auto k = unKindOf(op);
  if (!k) throw std::invalid_argument("unknown unary operator: " + std::string(op));
  return UnOpGen::create(std::move(operand), [k = *k](Result& r) { return applyUnary(k, r); });
}

}  // namespace congen

// compose.hpp — structural composition of generators: sequence, product,
// alternation, bound iteration, limiting, promotion.
//
// These nodes realize the stream-like interface of Section V.B: the `&`
// product embodies both cross-product iteration and conditional
// evaluation; `|` concatenates result sequences; `!` promotes values to
// element generators; `x in e` is the bound iteration the normalization
// pass introduces when flattening nested generators.
#pragma once

#include <vector>

#include "kernel/gen.hpp"

namespace congen {

/// Sequence of expressions (a; b; c) / statement lists.
///
/// In expression mode, all terms but the last are *bounded* (limited to
/// one result) and the last term delegates full iteration, per Section II.
/// In body mode (procedure bodies, loop bodies), every term is bounded and
/// the sequence fails at the end; only suspend/return control results
/// propagate out. Control-flagged results always propagate unchanged.
class SeqGen final : public Gen {
 public:
  enum class Mode { Expression, Body };

  SeqGen(std::vector<GenPtr> children, Mode mode)
      : children_(std::move(children)), mode_(mode) {}

  static GenPtr create(std::vector<GenPtr> children, Mode mode = Mode::Expression) {
    return std::make_shared<SeqGen>(std::move(children), mode);
  }

 protected:
  bool doNext(Result& out) override;
  void doRestart() override;

 private:
  std::vector<GenPtr> children_;
  Mode mode_;
  std::size_t index_ = 0;
  bool terminated_ = false;  // saw kReturn/kFailBody
};

/// The iterator product e & e' (Section II): for each result of the left
/// operand, iterate the right operand to failure; the product's results
/// are the right operand's results. Backtracking restarts the right
/// operand for every left result.
class ProductGen final : public Gen {
 public:
  ProductGen(GenPtr left, GenPtr right) : left_(std::move(left)), right_(std::move(right)) {}

  static GenPtr create(GenPtr left, GenPtr right) {
    return std::make_shared<ProductGen>(std::move(left), std::move(right));
  }

 protected:
  bool doNext(Result& out) override;
  void doRestart() override;

 private:
  GenPtr left_, right_;
  bool leftActive_ = false;
};

/// Alternation e | e' | ...: concatenation of result sequences.
class AltGen final : public Gen {
 public:
  explicit AltGen(std::vector<GenPtr> children) : children_(std::move(children)) {}

  static GenPtr create(std::vector<GenPtr> children) {
    return std::make_shared<AltGen>(std::move(children));
  }
  static GenPtr create(GenPtr a, GenPtr b) {
    std::vector<GenPtr> children;
    children.push_back(std::move(a));
    children.push_back(std::move(b));
    return create(std::move(children));
  }

 protected:
  bool doNext(Result& out) override;
  void doRestart() override;

 private:
  std::vector<GenPtr> children_;
  std::size_t index_ = 0;
};

/// Bound iteration (x in e): assigns each result of e to the variable and
/// yields the variable (the IconIn of Fig. 5, introduced by flattening).
class InGen final : public Gen {
 public:
  InGen(VarPtr var, GenPtr source) : var_(std::move(var)), source_(std::move(source)) {}

  static GenPtr create(VarPtr var, GenPtr source) {
    return std::make_shared<InGen>(std::move(var), std::move(source));
  }

 protected:
  bool doNext(Result& out) override;
  void doRestart() override;

 private:
  VarPtr var_;
  GenPtr source_;
};

/// Limitation e \ n: at most n results of e per cycle. The bound itself
/// is an expression; its first result is taken at the start of each cycle.
class LimitGen final : public Gen {
 public:
  LimitGen(GenPtr expr, GenPtr bound) : expr_(std::move(expr)), bound_(std::move(bound)) {}

  static GenPtr create(GenPtr expr, GenPtr bound) {
    return std::make_shared<LimitGen>(std::move(expr), std::move(bound));
  }
  /// Fixed-count convenience (bounded expressions use n = 1).
  static GenPtr create(GenPtr expr, std::int64_t n);

 protected:
  bool doNext(Result& out) override;
  void doRestart() override;

 private:
  GenPtr expr_, bound_;
  std::int64_t remaining_ = 0;
  bool boundTaken_ = false;
};

/// not e: succeeds with &null exactly when e fails.
class NotGen final : public Gen {
 public:
  explicit NotGen(GenPtr expr) : expr_(std::move(expr)) {}

  static GenPtr create(GenPtr expr) { return std::make_shared<NotGen>(std::move(expr)); }

 protected:
  bool doNext(Result& out) override;
  void doRestart() override;

 private:
  GenPtr expr_;
  bool done_ = false;
};

/// Repeated alternation |e: the results of e, over and over, until a full
/// pass produces nothing (which would otherwise loop forever).
class RepeatAltGen final : public Gen {
 public:
  explicit RepeatAltGen(GenPtr expr) : expr_(std::move(expr)) {}

  static GenPtr create(GenPtr expr) { return std::make_shared<RepeatAltGen>(std::move(expr)); }

 protected:
  bool doNext(Result& out) override;
  void doRestart() override;

 private:
  GenPtr expr_;
  bool producedThisPass_ = false;
};

/// Element promotion !e: for each value of the operand, generate its
/// elements — list elements (as assignable trapped variables), string
/// characters, table values, set members, or the results of activating a
/// co-expression/pipe (the lifting operator of Fig. 1).
class PromoteGen final : public Gen {
 public:
  explicit PromoteGen(GenPtr operand) : operand_(std::move(operand)) {}

  static GenPtr create(GenPtr operand) { return std::make_shared<PromoteGen>(std::move(operand)); }

  /// The per-value element generator (exposed for builtins and tests).
  static GenPtr makeElementGen(const Value& v);

 protected:
  bool doNext(Result& out) override;
  void doRestart() override;

 private:
  GenPtr operand_;
  GenPtr inner_;
};

}  // namespace congen

// coexpression.hpp — the unified first-class generator model.
//
// The paper's IconCoExpression (Section V.D) provides "a unified model
// for handling first-class generators as well as co-expressions and
// multithreaded proxies". CoExpression is that class: it owns a factory
// that can (re)build the underlying generator — for co-expressions the
// factory also re-copies the shadowed local environment — plus the
// activation (@) and refresh (^) operations of the calculus (Fig. 1).
// The multithreaded pipe (|>) derives from it in concur/pipe.hpp.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>

#include "kernel/gen.hpp"

namespace congen {

/// A first-class generator / co-expression. Derives RcBase (first base —
/// Value stores the upcast pointer) so a co-expression Value is the same
/// one-pointer, refcounted representation as every other heap type.
class CoExpression : public RcBase {
 public:
  /// The factory re-creates the body generator from scratch; environment
  /// shadowing is baked into it (it captures copies of the referenced
  /// locals — Section III.A's `((x,y,z)-> <>e)((()->[x,y,z])())`).
  /// The body is built EAGERLY, on the creating thread: Icon copies the
  /// environment at co-expression creation, so the snapshot must be
  /// taken here, before the enclosing code mutates its locals (and
  /// before a pipe's producer races them from another thread).
  explicit CoExpression(GenFactory factory)
      : RcBase(static_cast<std::uint8_t>(TypeTag::CoExpr)),
        factory_(std::move(factory)),
        body_(factory_()) {}

  static CoExprPtr create(GenFactory factory) {
    return makeRc<CoExpression>(std::move(factory));
  }

  /// Activation @c: step one iteration; nullopt is failure. Unlike a raw
  /// kernel generator, an exhausted co-expression stays exhausted until
  /// refreshed (Icon semantics).
  virtual std::optional<Value> activate() {
    if (exhausted_) return std::nullopt;
    auto v = body_->nextValue();
    if (!v) {
      exhausted_ = true;
      return std::nullopt;
    }
    ++results_;
    return v;
  }

  /// Deadline-bounded activation, used by the `timeout(c, ms)` builtin.
  /// The deadline bounds *waiting*, not computation: an implementation
  /// that can block (the multithreaded pipe) gives up and fails once the
  /// deadline passes, leaving the co-expression re-activatable; the base
  /// class never blocks, so it ignores the deadline entirely.
  virtual std::optional<Value> activateUntil(std::chrono::steady_clock::time_point /*deadline*/) {
    return activate();
  }

  /// Refresh ^c: a *new* co-expression re-built from the factory, with a
  /// fresh copy of the shadowed environment.
  [[nodiscard]] virtual CoExprPtr refreshed() const { return create(factory_); }

  /// How many results this co-expression has produced so far.
  [[nodiscard]] std::size_t resultCount() const noexcept { return results_; }
  [[nodiscard]] bool exhausted() const noexcept { return exhausted_; }

 protected:
  [[nodiscard]] const GenFactory& factory() const noexcept { return factory_; }
  /// Transfer the eagerly-built body out (pipes hand it to the producer
  /// thread, which becomes its sole user).
  [[nodiscard]] GenPtr takeBody() noexcept { return std::move(body_); }

 private:
  // Declared before factory_/body_: the co-expression quota charge must
  // trip (throwing 812) BEFORE the expensive environment copy the eager
  // factory_() call performs. Destruction credits it back.
  governor::CoexprCharge quotaCharge_;
  GenFactory factory_;
  GenPtr body_;
  std::size_t results_ = 0;
  bool exhausted_ = false;
};

static_assert(std::is_base_of_v<RcBase, CoExpression>,
              "Value stores co-expressions behind an RcBase* upcast");

/// Kernel node for `<>e` / `|<>e`: yields a freshly created co-expression
/// value once per cycle. Environment shadowing is the factory's concern.
class CoExprCreateGen final : public Gen {
 public:
  /// `make` wraps the raw body factory into the kind of co-expression
  /// wanted (plain co-expression, or a pipe in concur/).
  using Maker = std::function<CoExprPtr(GenFactory)>;

  CoExprCreateGen(GenFactory bodyFactory, Maker make)
      : bodyFactory_(std::move(bodyFactory)), make_(std::move(make)) {}

  static GenPtr create(GenFactory bodyFactory) {
    return std::make_shared<CoExprCreateGen>(std::move(bodyFactory),
                                             [](GenFactory f) { return CoExpression::create(std::move(f)); });
  }
  static GenPtr create(GenFactory bodyFactory, Maker make) {
    return std::make_shared<CoExprCreateGen>(std::move(bodyFactory), std::move(make));
  }

 protected:
  bool doNext(Result& out) override {
    if (done_) return false;
    done_ = true;
    out.set(Value::coexpr(make_(bodyFactory_)));
    return true;
  }
  void doRestart() override { done_ = false; }

 private:
  GenFactory bodyFactory_;
  Maker make_;
  bool done_ = false;
};

/// Activation @c as a kernel node: for each co-expression produced by the
/// operand, one activation step per operand result (the paper's explicit
/// stepping).
class ActivateGen final : public Gen {
 public:
  explicit ActivateGen(GenPtr operand) : operand_(std::move(operand)) {}

  static GenPtr create(GenPtr operand) { return std::make_shared<ActivateGen>(std::move(operand)); }

 protected:
  bool doNext(Result& out) override;
  // The operand must be restarted explicitly: after a successful cycle it
  // is consumed-but-not-failed, so the failure-driven auto-restart never
  // fires. The activated co-expression itself keeps its position — only
  // the operand expression is re-evaluated.
  void doRestart() override { operand_->restart(); }

 private:
  GenPtr operand_;
};

/// Refresh ^c as a kernel node: yields a refreshed copy of each
/// co-expression the operand produces.
class RefreshGen final : public Gen {
 public:
  explicit RefreshGen(GenPtr operand) : operand_(std::move(operand)) {}

  static GenPtr create(GenPtr operand) { return std::make_shared<RefreshGen>(std::move(operand)); }

 protected:
  bool doNext(Result& out) override;
  void doRestart() override { operand_->restart(); }

 private:
  GenPtr operand_;
};

}  // namespace congen

// scan.hpp — string scanning: Icon's `e1 ? e2`.
//
// "Search has particular application in string processing, the forte of
// Icon and Unicon" (Section II). Scanning establishes a dynamic
// environment — a subject string and a position — that the matching
// functions (tab, move, pos, and the analysis builtins) consult and
// update, with *reversible* effects: a tab() that is resumed during
// backtracking restores &pos and fails, so the search engine can explore
// match alternatives.
//
// The scanning environment is a per-thread stack (scans nest; pipes get
// their own, empty, environment — scanning state never crosses
// threads). As in Icon, the environment is swapped on every suspension
// crossing the scan boundary: while a scan is suspended the *outer*
// environment is current, so interleaved scans (e.g. through
// co-expressions) and abandoned scans behave correctly.
#pragma once

#include <memory>
#include <string>

#include "kernel/gen.hpp"

namespace congen {

/// The dynamic scanning environment: &subject and &pos (1-based,
/// position semantics: 1..length+1).
class ScanEnv {
 public:
  /// The subject is held as a string Value: entering a scan whose
  /// subject expression already yields a string shares the payload
  /// (refcount bump or 16 inline bytes) instead of copying it, and
  /// &subject reads hand the same representation straight back out.
  struct State {
    Value subject = Value::string(std::string_view{});
    std::int64_t pos = 1;
  };

  /// The innermost active state for this thread (a default empty
  /// subject when no scan is active, as in Icon).
  static State& current();

  /// Enter/leave a scan (used by ScanGen).
  static void push(State s);
  static State pop();
  static std::size_t depth();

  /// Resolve an Icon position against the current subject; nullopt if
  /// out of range.
  static std::optional<std::int64_t> resolvePos(std::int64_t p);
};

/// e1 ? e2: for each subject produced by e1, evaluate e2 in a fresh
/// scanning environment; the scan's results are e2's results.
class ScanGen final : public Gen {
 public:
  ScanGen(GenPtr subject, GenPtr body) : subject_(std::move(subject)), body_(std::move(body)) {}

  static GenPtr create(GenPtr subject, GenPtr body) {
    return std::make_shared<ScanGen>(std::move(subject), std::move(body));
  }

 protected:
  bool doNext(Result& out) override;
  void doRestart() override;

 private:
  GenPtr subject_, body_;
  ScanEnv::State saved_;
  bool scanning_ = false;
};

/// &subject and &pos as assignable variables (assigning &subject resets
/// &pos to 1, as in Icon).
GenPtr makeSubjectVarGen();
GenPtr makePosVarGen();

/// tab(i): set &pos to i, producing the substring between the old and
/// new positions; restores &pos and fails when resumed (reversible).
/// move(n) is tab(&pos + n). Both accept generator arguments through
/// the standard operand product.
GenPtr makeTabGen(GenPtr target);
GenPtr makeMoveGen(GenPtr delta);

}  // namespace congen

// gen.hpp — the suspendable, failure-driven, restartable iterator kernel.
//
// This is the C++ analogue of the paper's IconIterator (Section V.B): a
// single small interface over which every goal-directed construct is
// composed. It differs from a conventional iterator in three ways:
//
//  * hasNext is failure of next(): a generator produces results until it
//    fails; failure terminates the iteration.
//  * After failure the iterator restarts on the following next() — this
//    is what lets products (e & e') backtrack by re-driving their right
//    operand, and what makes `repeat` and re-activation cheap.
//  * Iteration is *suspendable*: inside a procedure body, `suspend e`
//    produces a result that propagates up through the composed tree as
//    the result of the root's next(); the next call statefully resumes at
//    the suspension point with zero bookkeeping cost (no threads).
//
// Results carry an optional variable reference (Icon reference
// semantics: expressions may yield assignable variables).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "runtime/governor_hooks.hpp"
#include "runtime/value.hpp"
#include "runtime/var.hpp"

namespace congen {

/// One produced result: a value, an optional assignable location, and
/// control flags used to propagate suspend/return/fail out of procedure
/// bodies.
struct Result {
  enum Flags : std::uint8_t {
    kNone = 0,
    kSuspend = 1,  // produced by `suspend e`: propagate to the body root
    kReturn = 2,   // produced by `return e`: propagate, then terminate body
    kFailBody = 4, // produced by `fail`: terminate the body with failure
  };

  Value value;
  VarPtr ref;                 // non-null when the result is a variable
  std::uint8_t flags = kNone;

  Result() = default;
  explicit Result(Value v, VarPtr r = nullptr, std::uint8_t f = kNone)
      : value(std::move(v)), ref(std::move(r)), flags(f) {}

  [[nodiscard]] bool isControl() const noexcept { return flags != kNone; }

  /// Overwrite all three fields. Producers under the out-parameter
  /// protocol must never leave a stale ref/flags from the previous
  /// element in the shared buffer; these make the full overwrite
  /// explicit at each production site.
  void set(Value v) {
    value = std::move(v);
    ref = nullptr;
    flags = kNone;
  }
  void set(Value v, VarPtr r) {
    value = std::move(v);
    ref = std::move(r);
    flags = kNone;
  }
  void set(Value v, VarPtr r, std::uint8_t f) {
    value = std::move(v);
    ref = std::move(r);
    flags = f;
  }
};

/// Loop-control signals. `break` and `next` unwind through the iterator
/// tree as exceptions caught by the innermost loop node (a documented
/// divergence from pure-iterator signalling; invisible at the language
/// level).
struct BreakSignal {};
struct NextSignal {};

class Gen;

/// Monitoring hooks (see kernel/trace.hpp — the paper's future-work
/// "program monitoring" instrumented at the uniform next() protocol).
/// Disabled cost: one relaxed atomic load per next().
namespace trace {
extern std::atomic<bool> g_enabled;
inline bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }
int enter(const Gen& node);
void produced(const Gen& node, const Value& v, int depth);
void failed(const Gen& node, int depth);
}  // namespace trace

/// Base class of every kernel node.
///
/// Subclasses implement doNext()/doRestart(); the base supplies the
/// restart-after-failure protocol the paper's IconIterator defines.
class Gen {
 public:
  virtual ~Gen() = default;
  Gen(const Gen&) = delete;
  Gen& operator=(const Gen&) = delete;

  /// Produce the next result into `out`, returning false on failure. A
  /// failed generator transparently restarts on the following call.
  ///
  /// This out-parameter form is the primary protocol: delegation chains
  /// (a suspend propagating through nested loops, a product yielding its
  /// right operand's results) hand the *same* Result buffer down the
  /// tree, so propagation costs no optional/Value moves per level.
  bool next(Result& out) {
    if (failed_) {
      doRestart();
      failed_ = false;
    }
    // One fuel step per resumption on the tree spine; the VM charges the
    // same budget in dispatch batches (interp/vm.cpp syncFuel), so the
    // two backends drain one unified fuel counter.
    governor::onStep();
    if (trace::enabled()) [[unlikely]] {
      const int depth = trace::enter(*this);
      const bool ok = doNext(out);
      if (!ok) {
        failed_ = true;
        trace::failed(*this, depth);
      } else {
        trace::produced(*this, out.value, depth);
      }
      return ok;
    }
    if (!doNext(out)) {
      failed_ = true;
      return false;
    }
    return true;
  }

  /// Convenience wrapper for host callers and tests.
  std::optional<Result> next() {
    std::optional<Result> r(std::in_place);
    if (!next(*r)) r.reset();
    return r;
  }

  /// Reset to the beginning state.
  void restart() {
    doRestart();
    failed_ = false;
  }

  /// Convenience: next result's value, dropping the variable reference.
  std::optional<Value> nextValue() {
    Result r;
    if (!next(r)) return std::nullopt;
    return std::move(r.value);
  }

  /// Drive to failure, returning the last produced value (if any).
  std::optional<Value> last() {
    std::optional<Value> out;
    Result r;
    while (next(r)) out = std::move(r.value);
    return out;
  }

  /// Drive to failure, collecting every produced value.
  std::vector<Value> collect() {
    std::vector<Value> out;
    Result r;
    while (next(r)) out.push_back(std::move(r.value));
    return out;
  }

 protected:
  Gen() = default;
  /// Produce into `out` (true) or fail (false). Implementations must
  /// overwrite value, ref, AND flags on success — `out` is a reused
  /// buffer (see Result::set).
  virtual bool doNext(Result& out) = 0;
  virtual void doRestart() = 0;

 private:
  bool failed_ = false;
};

/// Factory signature used wherever a node must be able to re-create a
/// sub-generator from scratch (co-expression refresh, pipes, repeats).
using GenFactory = std::function<GenPtr()>;

}  // namespace congen

// trace.hpp — program monitoring over the iterator protocol.
//
// The paper's closing future-work item: "program monitoring and
// debugging within a transformational framework is an area to be further
// explored" (Section IX). Because every construct is a kernel iterator,
// one uniform instrumentation point — the next() protocol — observes the
// whole computation: resumptions, produced results, failures, restarts.
//
// The hook is process-global and off by default; the disabled cost is a
// single relaxed atomic load per next() (measured in
// bench_kernel_overhead). Events carry the node, its demangled type
// name, the per-thread resumption depth, and the produced value (for
// Produce events).
#pragma once

#include <atomic>
#include <functional>
#include <string>

#include "kernel/gen.hpp"

namespace congen::trace {

enum class EventKind {
  Resume,   // next() entered
  Produce,  // next() produced a result
  Fail,     // next() failed
};

struct Event {
  EventKind kind;
  const Gen* node;
  std::string nodeType;  // demangled class name, e.g. "congen::ProductGen"
  int depth;             // nesting of active next() calls on this thread
  const Value* value;    // non-null for Produce
};

using Hook = std::function<void(const Event&)>;

/// Install a hook (replacing any previous one) and enable tracing.
void install(Hook hook);
/// Disable tracing and drop the hook.
void remove();

/// Built-in aggregate counters (valid while any hook runs — the
/// counting hook below feeds them; custom hooks may ignore them).
struct Counters {
  std::uint64_t resumes = 0;
  std::uint64_t produces = 0;
  std::uint64_t failures = 0;
};

/// Install a hook that only counts events (cheap monitoring).
void installCounting();
/// Snapshot the counters accumulated by installCounting().
Counters counters();

/// A human-readable rendering for tracing REPL/CLI sessions:
///   |  |  ProductGen -> 42
std::string format(const Event& event);

}  // namespace congen::trace

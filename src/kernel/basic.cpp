#include "kernel/basic.hpp"

#include "runtime/error.hpp"

namespace congen {

RangeGen::RangeGen(Value from, Value limit, Value step)
    : from_(std::move(from)), limit_(std::move(limit)), step_(std::move(step)) {
  const auto stepNum = step_.toNumeric();
  if (!stepNum) throw errNumericExpected("step of to-by");
  if (stepNum->isInteger()) {
    ascending_ = stepNum->isSmallInt() ? stepNum->smallInt() > 0 : stepNum->bigInt().signum() > 0;
    const bool zero = stepNum->isSmallInt() ? stepNum->smallInt() == 0 : stepNum->bigInt().isZero();
    if (zero) throw errInvalidValue("to-by with zero step");
  } else {
    if (stepNum->real() == 0.0) throw errInvalidValue("to-by with zero step");
    ascending_ = stepNum->real() > 0.0;
  }
}

std::optional<Result> RangeGen::doNext() {
  if (!started_) {
    const auto fromNum = from_.toNumeric();
    if (!fromNum) throw errNumericExpected("from of to-by");
    current_ = *fromNum;
    started_ = true;
  } else {
    current_ = ops::add(current_, step_);
  }
  const auto inRange = ascending_ ? ops::numLE(current_, limit_) : ops::numGE(current_, limit_);
  if (!inRange) return std::nullopt;
  return Result{current_};
}

void RangeGen::doRestart() { started_ = false; }

}  // namespace congen

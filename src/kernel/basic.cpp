#include "kernel/basic.hpp"

#include "runtime/error.hpp"

namespace congen {

RangeGen::RangeGen(Value from, Value limit, Value step)
    : from_(std::move(from)), limit_(std::move(limit)), step_(std::move(step)) {
  const auto stepNum = step_.toNumeric();
  if (!stepNum) throw errNumericExpected("step of to-by");
  if (stepNum->isInteger()) {
    ascending_ = stepNum->isSmallInt() ? stepNum->smallInt() > 0 : stepNum->bigInt().signum() > 0;
    const bool zero = stepNum->isSmallInt() ? stepNum->smallInt() == 0 : stepNum->bigInt().isZero();
    if (zero) throw errInvalidValue("to-by with zero step");
  } else {
    if (stepNum->real() == 0.0) throw errInvalidValue("to-by with zero step");
    ascending_ = stepNum->real() > 0.0;
  }
  // All-small-int ranges iterate on raw int64: an overflow-checked add
  // replaces per-element Value classification, and overflowing past
  // int64 necessarily means past the (int64) limit, so overflow is
  // simply range exhaustion.
  fast_ = from_.isSmallInt() && limit_.isSmallInt() && step_.isSmallInt();
  if (fast_) {
    fastLimit_ = limit_.smallInt();
    fastStep_ = step_.smallInt();
  }
}

bool RangeGen::doNext(Result& out) {
  if (fast_) {
    if (!started_) {
      fastCurrent_ = from_.smallInt();
      started_ = true;
    } else if (__builtin_add_overflow(fastCurrent_, fastStep_, &fastCurrent_)) {
      return false;
    }
    if (ascending_ ? fastCurrent_ > fastLimit_ : fastCurrent_ < fastLimit_) return false;
    out.set(Value::integer(fastCurrent_));
    return true;
  }
  if (!started_) {
    const auto fromNum = from_.toNumeric();
    if (!fromNum) throw errNumericExpected("from of to-by");
    current_ = *fromNum;
    started_ = true;
  } else {
    current_ = ops::add(current_, step_);
  }
  const auto inRange = ascending_ ? ops::numLE(current_, limit_) : ops::numGE(current_, limit_);
  if (!inRange) return false;
  out.set(current_);
  return true;
}

void RangeGen::doRestart() { started_ = false; }

}  // namespace congen

// iterate.hpp — range adapter exposing a generator to host C++ loops.
//
// The embedded-region contract of Section IV: "the embedded expression
// returns a generator, exposed as a Java Iterator used in the for
// statement". This is the C++ analogue: for (Value v : iterate(gen)).
#pragma once

#include "kernel/gen.hpp"

namespace congen {

class GenRange {
 public:
  explicit GenRange(GenPtr gen) : gen_(std::move(gen)) {}

  class iterator {
   public:
    using value_type = Value;
    using difference_type = std::ptrdiff_t;

    iterator() = default;  // end
    explicit iterator(Gen* gen) : gen_(gen) { advance(); }

    const Value& operator*() const { return *current_; }
    const Value* operator->() const { return &*current_; }
    iterator& operator++() {
      advance();
      return *this;
    }
    void operator++(int) { advance(); }
    bool operator==(const iterator& other) const {
      return (!current_ && !other.current_) || (gen_ == other.gen_ && current_ && other.current_);
    }

   private:
    void advance() {
      current_ = gen_ ? gen_->nextValue() : std::nullopt;
      if (!current_) gen_ = nullptr;
    }
    Gen* gen_ = nullptr;
    std::optional<Value> current_;
  };

  [[nodiscard]] iterator begin() const { return iterator(gen_.get()); }
  [[nodiscard]] iterator end() const { return {}; }

 private:
  GenPtr gen_;
};

/// for (const Value& v : iterate(gen)) { ... }
inline GenRange iterate(GenPtr gen) { return GenRange(std::move(gen)); }

}  // namespace congen

// control.hpp — control constructs: if, every, while, until, repeat, and
// the procedure-body protocol (suspend / return / fail).
//
// Loops drive their body as a *bounded* expression once per control
// iteration; only suspend/return results propagate out of them, which is
// how `every x := !l do suspend f(x)` turns a loop into a generator.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "kernel/gen.hpp"

namespace congen {

/// if e1 then e2 [else e3] — the condition is bounded; the chosen branch
/// delegates full iteration (if/then/else is itself a generator).
class IfGen final : public Gen {
 public:
  IfGen(GenPtr cond, GenPtr thenBranch, GenPtr elseBranch)
      : cond_(std::move(cond)), then_(std::move(thenBranch)), else_(std::move(elseBranch)) {}

  static GenPtr create(GenPtr cond, GenPtr thenBranch, GenPtr elseBranch = nullptr) {
    return std::make_shared<IfGen>(std::move(cond), std::move(thenBranch), std::move(elseBranch));
  }

 protected:
  std::optional<Result> doNext() override;
  void doRestart() override;

 private:
  GenPtr cond_, then_, else_;
  Gen* branch_ = nullptr;
  bool decided_ = false;
};

/// Shared machinery for every/while/until/repeat: drives a bounded body
/// with suspend/return propagation and break/next handling.
class LoopGen : public Gen {
 public:
  enum class Kind { Every, While, Until, Repeat };

  LoopGen(Kind kind, GenPtr control, GenPtr body)
      : kind_(kind), control_(std::move(control)), body_(std::move(body)) {}

  static GenPtr every(GenPtr control, GenPtr body = nullptr) {
    return std::make_shared<LoopGen>(Kind::Every, std::move(control), std::move(body));
  }
  static GenPtr whileDo(GenPtr cond, GenPtr body = nullptr) {
    return std::make_shared<LoopGen>(Kind::While, std::move(cond), std::move(body));
  }
  static GenPtr untilDo(GenPtr cond, GenPtr body = nullptr) {
    return std::make_shared<LoopGen>(Kind::Until, std::move(cond), std::move(body));
  }
  static GenPtr repeat(GenPtr body) {
    return std::make_shared<LoopGen>(Kind::Repeat, nullptr, std::move(body));
  }

 protected:
  std::optional<Result> doNext() override;
  void doRestart() override;

 private:
  /// Advance the control expression once; returns false when the loop is
  /// over. For `every` the control generator is resumed; for while/until
  /// it is restarted and its (first) success/failure tested.
  bool stepControl(std::optional<Result>& propagate);

  Kind kind_;
  GenPtr control_;
  GenPtr body_;
  bool inBody_ = false;
  bool done_ = false;
};

/// case e of { v1: b1; v2 | v3: b2; default: bd } — the control
/// expression is bounded; branch value expressions are generators (so
/// `v2 | v3` matches either); the first branch whose value is
/// equivalent (===) to the control value delegates full iteration, as
/// with if-then-else. No match and no default: the case fails.
class CaseGen final : public Gen {
 public:
  struct Branch {
    GenPtr value;  // nullptr = default branch
    GenPtr body;
  };

  CaseGen(GenPtr control, std::vector<Branch> branches)
      : control_(std::move(control)), branches_(std::move(branches)) {}

  static GenPtr create(GenPtr control, std::vector<Branch> branches) {
    return std::make_shared<CaseGen>(std::move(control), std::move(branches));
  }

 protected:
  std::optional<Result> doNext() override;
  void doRestart() override;

 private:
  GenPtr control_;
  std::vector<Branch> branches_;
  Gen* selected_ = nullptr;
  bool decided_ = false;
};

/// suspend e — every result of e propagates to the enclosing body root.
class SuspendGen final : public Gen {
 public:
  explicit SuspendGen(GenPtr expr) : expr_(std::move(expr)) {}

  static GenPtr create(GenPtr expr) { return std::make_shared<SuspendGen>(std::move(expr)); }

 protected:
  std::optional<Result> doNext() override;
  void doRestart() override { expr_->restart(); }

 private:
  GenPtr expr_;
};

/// return e — the first result of e terminates the body; if e fails the
/// procedure fails (Icon semantics).
class ReturnGen final : public Gen {
 public:
  explicit ReturnGen(GenPtr expr) : expr_(std::move(expr)) {}

  static GenPtr create(GenPtr expr) { return std::make_shared<ReturnGen>(std::move(expr)); }

 protected:
  std::optional<Result> doNext() override;
  void doRestart() override { expr_->restart(); }

 private:
  GenPtr expr_;
};

/// fail — terminates the body with failure.
class FailBodyGen final : public Gen {
 public:
  static GenPtr create() { return std::make_shared<FailBodyGen>(); }

 protected:
  std::optional<Result> doNext() override {
    return Result{Value::null(), nullptr, Result::kFailBody};
  }
  void doRestart() override {}
};

/// break / next — loop-control signals (caught by the innermost LoopGen).
class BreakGen final : public Gen {
 public:
  static GenPtr create() { return std::make_shared<BreakGen>(); }

 protected:
  [[noreturn]] std::optional<Result> doNext() override { throw BreakSignal{}; }
  void doRestart() override {}
};

class NextGen final : public Gen {
 public:
  static GenPtr create() { return std::make_shared<NextGen>(); }

 protected:
  [[noreturn]] std::optional<Result> doNext() override { throw NextSignal{}; }
  void doRestart() override {}
};

/// Free-list of procedure-body iterator trees keyed by method name — the
/// MethodBodyCache of Fig. 5. Reusing a body avoids rebuilding the
/// composed iterator tree on every call; recursion simply builds a fresh
/// body when the free list is empty.
class MethodBodyCache {
 public:
  /// Pop a cached body for `name`, or nullptr.
  GenPtr getFree(const std::string& name) {
    auto it = free_.find(name);
    if (it == free_.end() || it->second.empty()) return nullptr;
    GenPtr body = std::move(it->second.back());
    it->second.pop_back();
    return body;
  }

  /// Return a body to the free list.
  void putFree(const std::string& name, GenPtr body) { free_[name].push_back(std::move(body)); }

  [[nodiscard]] std::size_t size(const std::string& name) const {
    const auto it = free_.find(name);
    return it == free_.end() ? 0 : it->second.size();
  }

 private:
  std::unordered_map<std::string, std::vector<GenPtr>> free_;
};

/// The root of a procedure body: strips suspend/return flags into plain
/// results for the caller, terminates after return/fail, and optionally
/// returns itself to a MethodBodyCache upon completion (the "cached in a
/// stack upon method return" optimization of Section V.D).
class BodyRootGen final : public Gen, public std::enable_shared_from_this<BodyRootGen> {
 public:
  using Unpack = std::function<void(const std::vector<Value>&)>;

  explicit BodyRootGen(GenPtr inner) : inner_(std::move(inner)) {}

  static std::shared_ptr<BodyRootGen> create(GenPtr inner) {
    return std::make_shared<BodyRootGen>(std::move(inner));
  }

  /// Install the parameter-rebinding closure (Fig. 5's unpack lambda).
  BodyRootGen& setUnpackClosure(Unpack unpack) {
    unpack_ = std::move(unpack);
    return *this;
  }

  /// Rebind arguments and reset — used on a fresh or cache-reused body.
  BodyRootGen& unpackArgs(const std::vector<Value>& args) {
    if (unpack_) unpack_(args);
    restart();
    return *this;
  }

  /// Attach to a cache; on completion the body parks itself there.
  BodyRootGen& setCache(MethodBodyCache* cache, std::string key) {
    cache_ = cache;
    key_ = std::move(key);
    return *this;
  }

 protected:
  std::optional<Result> doNext() override;
  void doRestart() override;

 private:
  GenPtr inner_;
  Unpack unpack_;
  MethodBodyCache* cache_ = nullptr;
  std::string key_;
  bool terminated_ = false;
};

}  // namespace congen

// control.hpp — control constructs: if, every, while, until, repeat, and
// the procedure-body protocol (suspend / return / fail).
//
// Loops drive their body as a *bounded* expression once per control
// iteration; only suspend/return results propagate out of them, which is
// how `every x := !l do suspend f(x)` turns a loop into a generator.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "kernel/gen.hpp"
#include "obs/runtime_stats.hpp"

namespace congen {

/// if e1 then e2 [else e3] — the condition is bounded; the chosen branch
/// delegates full iteration (if/then/else is itself a generator).
class IfGen final : public Gen {
 public:
  IfGen(GenPtr cond, GenPtr thenBranch, GenPtr elseBranch)
      : cond_(std::move(cond)), then_(std::move(thenBranch)), else_(std::move(elseBranch)) {}

  static GenPtr create(GenPtr cond, GenPtr thenBranch, GenPtr elseBranch = nullptr) {
    return std::make_shared<IfGen>(std::move(cond), std::move(thenBranch), std::move(elseBranch));
  }

 protected:
  bool doNext(Result& out) override;
  void doRestart() override;

 private:
  GenPtr cond_, then_, else_;
  Gen* branch_ = nullptr;
  bool decided_ = false;
};

/// Shared machinery for every/while/until/repeat: drives a bounded body
/// with suspend/return propagation and break/next handling.
class LoopGen : public Gen {
 public:
  enum class Kind { Every, While, Until, Repeat };

  LoopGen(Kind kind, GenPtr control, GenPtr body)
      : kind_(kind), control_(std::move(control)), body_(std::move(body)) {}

  static GenPtr every(GenPtr control, GenPtr body = nullptr) {
    return std::make_shared<LoopGen>(Kind::Every, std::move(control), std::move(body));
  }
  static GenPtr whileDo(GenPtr cond, GenPtr body = nullptr) {
    return std::make_shared<LoopGen>(Kind::While, std::move(cond), std::move(body));
  }
  static GenPtr untilDo(GenPtr cond, GenPtr body = nullptr) {
    return std::make_shared<LoopGen>(Kind::Until, std::move(cond), std::move(body));
  }
  static GenPtr repeat(GenPtr body) {
    return std::make_shared<LoopGen>(Kind::Repeat, nullptr, std::move(body));
  }

 protected:
  bool doNext(Result& out) override;
  void doRestart() override;

 private:
  /// Advance the control expression once; returns false when the loop is
  /// over. For `every` the control generator is resumed; for while/until
  /// it is restarted and its (first) success/failure tested. A control
  /// result carrying suspend/return flags is left in `out` with
  /// `propagate` set.
  bool stepControl(Result& out, bool& propagate);

  Kind kind_;
  GenPtr control_;
  GenPtr body_;
  bool inBody_ = false;
  bool done_ = false;
};

/// case e of { v1: b1; v2 | v3: b2; default: bd } — the control
/// expression is bounded; branch value expressions are generators (so
/// `v2 | v3` matches either); the first branch whose value is
/// equivalent (===) to the control value delegates full iteration, as
/// with if-then-else. No match and no default: the case fails.
class CaseGen final : public Gen {
 public:
  struct Branch {
    GenPtr value;  // nullptr = default branch
    GenPtr body;
  };

  CaseGen(GenPtr control, std::vector<Branch> branches)
      : control_(std::move(control)), branches_(std::move(branches)) {}

  static GenPtr create(GenPtr control, std::vector<Branch> branches) {
    return std::make_shared<CaseGen>(std::move(control), std::move(branches));
  }

 protected:
  bool doNext(Result& out) override;
  void doRestart() override;

 private:
  GenPtr control_;
  std::vector<Branch> branches_;
  Gen* selected_ = nullptr;
  bool decided_ = false;
};

/// suspend e — every result of e propagates to the enclosing body root.
class SuspendGen final : public Gen {
 public:
  explicit SuspendGen(GenPtr expr) : expr_(std::move(expr)) {}

  static GenPtr create(GenPtr expr) { return std::make_shared<SuspendGen>(std::move(expr)); }

 protected:
  bool doNext(Result& out) override;
  void doRestart() override { expr_->restart(); }

 private:
  GenPtr expr_;
};

/// return e — the first result of e terminates the body; if e fails the
/// procedure fails (Icon semantics).
class ReturnGen final : public Gen {
 public:
  explicit ReturnGen(GenPtr expr) : expr_(std::move(expr)) {}

  static GenPtr create(GenPtr expr) { return std::make_shared<ReturnGen>(std::move(expr)); }

 protected:
  bool doNext(Result& out) override;
  void doRestart() override { expr_->restart(); }

 private:
  GenPtr expr_;
};

/// fail — terminates the body with failure.
class FailBodyGen final : public Gen {
 public:
  static GenPtr create() { return std::make_shared<FailBodyGen>(); }

 protected:
  bool doNext(Result& out) override {
    out.set(Value::null(), nullptr, Result::kFailBody);
    return true;
  }
  void doRestart() override {}
};

/// break / next — loop-control signals (caught by the innermost LoopGen).
class BreakGen final : public Gen {
 public:
  static GenPtr create() { return std::make_shared<BreakGen>(); }

 protected:
  [[noreturn]] bool doNext(Result&) override { throw BreakSignal{}; }
  void doRestart() override {}
};

class NextGen final : public Gen {
 public:
  static GenPtr create() { return std::make_shared<NextGen>(); }

 protected:
  [[noreturn]] bool doNext(Result&) override { throw NextSignal{}; }
  void doRestart() override {}
};

/// A mutex-guarded free list of parked procedure-body trees — one pool
/// per procedure. BodyRootGen parks itself here on completion; callers
/// take() a parked body and rebind its arguments instead of rebuilding
/// the Gen tree (Fig. 5's "cached in a stack upon method return", made
/// thread-safe so procedures can be invoked from pool threads: pipes,
/// mapReduce). The pool is bounded — deep recursion retires extra
/// bodies rather than hoarding them.
class BodyPool {
 public:
  [[nodiscard]] GenPtr take() {
    const bool metrics = obs::metricsEnabled();
    std::lock_guard lock(mu_);
    // A body parks itself the moment it terminates — while its caller may
    // still hold a reference for goal-directed resumption (e.g. a nested
    // call to the same procedure). Handing such a body out would rebind a
    // frame another call site can still restart, so only sole-owned
    // entries are reused; aliased ones stay parked until their holder
    // lets go. Counts cannot rise while we hold the lock (only the pool
    // could mint copies), so use_count()==1 cannot go stale here.
    for (auto it = free_.rbegin(); it != free_.rend(); ++it) {
      if (it->use_count() == 1) {
        GenPtr body = std::move(*it);
        free_.erase(std::next(it).base());
        if (metrics) [[unlikely]] obs::KernelStats::get().framesPooled.add(1);
        return body;
      }
    }
    // A take() miss means the caller builds a fresh body (frame) tree.
    if (metrics) [[unlikely]] obs::KernelStats::get().framesAllocated.add(1);
    return nullptr;
  }

  void put(GenPtr body) {
    const bool metrics = obs::metricsEnabled();
    std::lock_guard lock(mu_);
    if (free_.size() < kMaxParked) {
      free_.push_back(std::move(body));
      if (metrics) [[unlikely]] obs::KernelStats::get().framesParked.add(1);
    }
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mu_);
    return free_.size();
  }

 private:
  static constexpr std::size_t kMaxParked = 64;
  mutable std::mutex mu_;
  std::vector<GenPtr> free_;
};

/// Name-keyed pools — the MethodBodyCache interface of Fig. 5. poolFor()
/// returns a stable BodyPool* so a call site resolves its name once (at
/// body construction) instead of hashing the key on every call.
class MethodBodyCache {
 public:
  [[nodiscard]] BodyPool* poolFor(const std::string& name) {
    std::lock_guard lock(mu_);
    auto& p = pools_[name];
    if (!p) p = std::make_unique<BodyPool>();
    return p.get();
  }

  /// Pop a cached body for `name`, or nullptr.
  GenPtr getFree(const std::string& name) { return poolFor(name)->take(); }

  /// Return a body to the free list.
  void putFree(const std::string& name, GenPtr body) { poolFor(name)->put(std::move(body)); }

  [[nodiscard]] std::size_t size(const std::string& name) const {
    std::lock_guard lock(mu_);
    const auto it = pools_.find(name);
    return it == pools_.end() ? 0 : it->second->size();
  }

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::unique_ptr<BodyPool>> pools_;
};

/// The root of a procedure body: strips suspend/return flags into plain
/// results for the caller, terminates after return/fail, and optionally
/// parks itself for reuse upon completion (the "cached in a stack upon
/// method return" optimization of Section V.D). Parking goes either to a
/// BodyPool (raw pointer: the pool's owner must outlive the body — the
/// emitted-module contract) or through a recycler closure that can keep
/// the pool's owner alive (the interpreter's contract).
class BodyRootGen final : public Gen, public std::enable_shared_from_this<BodyRootGen> {
 public:
  using Unpack = std::function<void(const std::vector<Value>&)>;
  using Recycler = std::function<void(std::shared_ptr<BodyRootGen>)>;

  explicit BodyRootGen(GenPtr inner) : inner_(std::move(inner)) {}

  static std::shared_ptr<BodyRootGen> create(GenPtr inner) {
    return std::make_shared<BodyRootGen>(std::move(inner));
  }

  /// Install the parameter-rebinding closure (Fig. 5's unpack lambda).
  BodyRootGen& setUnpackClosure(Unpack unpack) {
    unpack_ = std::move(unpack);
    return *this;
  }

  /// Rebind arguments and reset — used on a fresh or cache-reused body.
  BodyRootGen& unpackArgs(const std::vector<Value>& args) {
    if (unpack_) unpack_(args);
    restart();
    return *this;
  }

  /// Park into `pool` on completion (pool must outlive this body).
  BodyRootGen& setPool(BodyPool* pool) {
    pool_ = pool;
    return *this;
  }

  /// Park through a closure on completion (may own the pool).
  BodyRootGen& setRecycler(Recycler recycler) {
    recycler_ = std::move(recycler);
    return *this;
  }

  /// Attach to a name-keyed cache: resolves the pool once, here.
  BodyRootGen& setCache(MethodBodyCache* cache, const std::string& key) {
    return setPool(cache->poolFor(key));
  }

 protected:
  bool doNext(Result& out) override;
  void doRestart() override;

 private:
  void park() {
    if (!pool_ && !recycler_) return;
    // Scrub before parking, not on take: a parked tree must not pin
    // values from its last activation. A retained operand tuple or frame
    // slot that (transitively) holds this procedure's own value closes a
    // cycle through the pool — pool → body → value → pool — that
    // shared_ptr can never reclaim. The take path skips its restart walk
    // when the tree is already pristine (parkedClean_), so the per-call
    // walk count is unchanged.
    inner_->restart();
    if (unpack_) unpack_({});  // null every frame slot
    parkedClean_ = true;
    if (pool_) {
      pool_->put(shared_from_this());
    } else {
      recycler_(shared_from_this());
    }
  }

  GenPtr inner_;
  Unpack unpack_;
  BodyPool* pool_ = nullptr;
  Recycler recycler_;
  bool terminated_ = false;
  bool parkedClean_ = false;
};

}  // namespace congen

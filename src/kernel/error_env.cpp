#include "kernel/error_env.hpp"

#include "kernel/basic.hpp"
#include "runtime/error.hpp"
#include "runtime/var.hpp"

namespace congen {

ErrorEnv::State& ErrorEnv::current() {
  thread_local State state;
  return state;
}

bool ErrorEnv::convertToFailure(const IconError& e) {
  // 816 is the Supervisor unwinding the session, not a fault the script
  // gets to handle: converting it to failure would let a hostile script
  // with &error credit keep executing one charge batch per conversion,
  // defeating terminate(). Everything else — the catchable quota 81x
  // family included — converts normally.
  if (e.number() == kErrSessionTerminated) return false;
  auto& s = current();
  if (s.credit <= 0) return false;
  --s.credit;
  s.occurred = true;
  s.number = e.number();
  s.value = e.message();
  return true;
}

void ErrorEnv::clear() {
  auto& s = current();
  s.occurred = false;
  s.number = 0;
  s.value.clear();
}

GenPtr makeErrorVarGen() {
  return VarGen::create(ComputedVar::create(
      [] { return Value::integer(ErrorEnv::current().credit); },
      [](Value v) { ErrorEnv::current().credit = v.requireInt64("&error"); }));
}

namespace {

/// Read-only keyword that fails while no converted error is recorded.
GenPtr makeErrorDetailGen(Value (*read)(const ErrorEnv::State&)) {
  return CallbackGen::create([read]() -> CallbackGen::Puller {
    bool done = false;
    return [read, done]() mutable -> std::optional<Value> {
      if (done) return std::nullopt;
      done = true;
      const auto& s = ErrorEnv::current();
      if (!s.occurred) return std::nullopt;
      return read(s);
    };
  });
}

}  // namespace

GenPtr makeErrorNumberVarGen() {
  return makeErrorDetailGen([](const ErrorEnv::State& s) { return Value::integer(s.number); });
}

GenPtr makeErrorValueVarGen() {
  return makeErrorDetailGen([](const ErrorEnv::State& s) { return Value::string(s.value); });
}

}  // namespace congen

// error_env.hpp — Icon's &error machinery: converting run-time errors
// to failure.
//
// Icon lets a program trade errors for failure: "if &error is nonzero,
// a run-time error is converted to failure of the expression in which
// it occurred, and &error is decremented". The converted error's number
// and offending value stay inspectable through &errornumber and
// &errorvalue until errorclear() resets them.
//
// The environment is thread-local (like the scanning environment in
// scan.hpp): each pipe producer runs on its own pool thread with its
// own, initially-zero credit, so a stage that opts into conversion
// never silently swallows errors raised in a concurrent stage. The
// conversion itself happens at the generator-tree operator nodes
// (UnOpGen / BinOpGen / DelegateGen in ops.cpp) — the granularity at
// which an "expression" exists after translation — and those nodes are
// shared by the interpreter and the emitted C++, so both execution
// modes agree by construction. The non-converting path costs nothing:
// conversion rides the existing IconError unwind (a catch clause on a
// path that already threw), never a check on the hot path.
#pragma once

#include <cstdint>
#include <string>

#include "kernel/gen.hpp"

namespace congen {

class IconError;

class ErrorEnv {
 public:
  struct State {
    std::int64_t credit = 0;  // &error: > 0 enables conversion, decremented per conversion
    bool occurred = false;    // has any error been converted since errorclear()?
    std::int64_t number = 0;  // &errornumber: the last converted error's number
    std::string value;        // &errorvalue: the last converted error's message text
  };

  /// This thread's error environment.
  static State& current();

  /// Called from an operator node's IconError handler: if credit allows,
  /// record the error, spend one credit, and return true (the node
  /// fails); otherwise return false (the error keeps propagating).
  static bool convertToFailure(const IconError& e);

  /// errorclear(): forget the last converted error (&errornumber and
  /// &errorvalue fail again). Leaves the credit untouched.
  static void clear();
};

/// &error — assignable keyword variable holding the conversion credit.
GenPtr makeErrorVarGen();
/// &errornumber — read-only; fails if no error has been converted.
GenPtr makeErrorNumberVarGen();
/// &errorvalue — read-only; fails if no error has been converted.
GenPtr makeErrorValueVarGen();

}  // namespace congen

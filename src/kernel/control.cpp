#include "kernel/control.hpp"

#include "runtime/error.hpp"

namespace congen {

// ---------------------------------------------------------------------
// IfGen
// ---------------------------------------------------------------------

bool IfGen::doNext(Result& out) {
  if (!decided_) {
    cond_->restart();
    const bool taken = cond_->next(out);
    decided_ = true;
    if (taken) {
      branch_ = then_.get();
      then_->restart();
    } else {
      branch_ = else_.get();
      if (else_) else_->restart();
    }
  }
  if (!branch_) return false;  // condition failed, no else: fail
  return branch_->next(out);
}

void IfGen::doRestart() {
  decided_ = false;
  branch_ = nullptr;
  cond_->restart();
  then_->restart();
  if (else_) else_->restart();
}

// ---------------------------------------------------------------------
// LoopGen
// ---------------------------------------------------------------------

bool LoopGen::stepControl(Result& out, bool& propagate) {
  propagate = false;
  switch (kind_) {
    case Kind::Repeat:
      return true;
    case Kind::Every: {
      if (!control_->next(out)) return false;
      if (out.isControl()) propagate = true;
      return true;
    }
    case Kind::While: {
      control_->restart();
      if (!control_->next(out)) return false;
      if (out.isControl()) propagate = true;
      return true;
    }
    case Kind::Until: {
      control_->restart();
      if (control_->next(out)) {
        if (out.isControl()) propagate = true;
        return false;  // condition succeeded: until terminates
      }
      return true;
    }
  }
  return false;
}

bool LoopGen::doNext(Result& out) {
  if (done_) return false;
  while (true) {
    if (inBody_) {
      bool produced = false;
      try {
        produced = body_->next(out);
      } catch (const BreakSignal&) {
        done_ = true;
        return false;
      } catch (const NextSignal&) {
        inBody_ = false;
        continue;
      }
      if (!produced) {
        inBody_ = false;  // the bounded body failed: next control iteration
        continue;
      }
      if (out.flags & Result::kSuspend) return true;  // propagate; resume here later
      if (out.flags & (Result::kReturn | Result::kFailBody)) {
        done_ = true;
        return true;
      }
      inBody_ = false;  // bounded body produced its one result
      continue;
    }
    bool propagate = false;
    bool more = false;
    try {
      more = stepControl(out, propagate);
    } catch (const BreakSignal&) {
      done_ = true;
      return false;
    } catch (const NextSignal&) {
      continue;
    }
    if (propagate) {
      if (out.flags & (Result::kReturn | Result::kFailBody)) done_ = true;
      return true;
    }
    if (!more) return false;  // loops produce no values of their own
    if (body_) {
      body_->restart();
      inBody_ = true;
    }
  }
}

void LoopGen::doRestart() {
  inBody_ = false;
  done_ = false;
  if (control_) control_->restart();
  if (body_) body_->restart();
}

// ---------------------------------------------------------------------
// CaseGen
// ---------------------------------------------------------------------

bool CaseGen::doNext(Result& out) {
  if (!decided_) {
    decided_ = true;
    control_->restart();
    Result control;
    if (!control_->next(control)) return false;  // control failed: case fails
    for (auto& branch : branches_) {
      if (!branch.value) {  // default
        selected_ = branch.body.get();
        break;
      }
      branch.value->restart();
      bool matched = false;
      Result v;
      while (branch.value->next(v)) {
        if (v.value.equals(control.value)) {
          matched = true;
          break;
        }
      }
      if (matched) {
        selected_ = branch.body.get();
        break;
      }
    }
    if (selected_) selected_->restart();
  }
  if (!selected_) return false;
  return selected_->next(out);
}

void CaseGen::doRestart() {
  decided_ = false;
  selected_ = nullptr;
  control_->restart();
  for (auto& b : branches_) {
    if (b.value) b.value->restart();
    b.body->restart();
  }
}

// ---------------------------------------------------------------------
// SuspendGen / ReturnGen
// ---------------------------------------------------------------------

bool SuspendGen::doNext(Result& out) {
  if (!expr_->next(out)) return false;  // exhausted: the suspend statement completes
  if (out.isControl()) return true;     // nested suspend/return already flagged
  out.flags |= Result::kSuspend;
  return true;
}

bool ReturnGen::doNext(Result& out) {
  if (!expr_->next(out)) {
    out.set(Value::null(), nullptr, Result::kFailBody);  // return of a failed expr fails
    return true;
  }
  if (out.isControl()) return true;
  out.flags |= Result::kReturn;
  return true;
}

// ---------------------------------------------------------------------
// BodyRootGen
// ---------------------------------------------------------------------

bool BodyRootGen::doNext(Result& out) {
  if (terminated_) return false;
  // Every backend wraps procedure bodies in BodyRootGen, so this single
  // guard gives cross-backend-deterministic recursion/suspension depth
  // accounting: one unit per live activation on this thread's C++ stack.
  governor::DepthGuard depthGuard;
  while (true) {
    bool produced = false;
    try {
      produced = inner_->next(out);
    } catch (const BreakSignal&) {
      // Icon run-time error 506-ish: break outside of a loop.
      terminated_ = true;
      throw IconError(506, "break outside of a loop");
    } catch (const NextSignal&) {
      terminated_ = true;
      throw IconError(506, "next outside of a loop");
    }
    if (!produced) {
      terminated_ = true;
      park();
      return false;  // fell off the end of the body: fail
    }
    if (out.flags & Result::kSuspend) {
      out.flags &= static_cast<std::uint8_t>(~Result::kSuspend);
      return true;
    }
    if (out.flags & Result::kReturn) {
      terminated_ = true;
      park();
      out.flags &= static_cast<std::uint8_t>(~Result::kReturn);
      return true;
    }
    if (out.flags & Result::kFailBody) {
      terminated_ = true;
      park();
      return false;
    }
    // A plain result at body level is discarded (statement values are not
    // procedure results).
  }
}

void BodyRootGen::doRestart() {
  terminated_ = false;
  if (parkedClean_) {
    // Parking already restarted the whole tree; skip the second walk.
    parkedClean_ = false;
    return;
  }
  inner_->restart();
}

}  // namespace congen

#include "kernel/control.hpp"

#include "runtime/error.hpp"

namespace congen {

// ---------------------------------------------------------------------
// IfGen
// ---------------------------------------------------------------------

std::optional<Result> IfGen::doNext() {
  if (!decided_) {
    cond_->restart();
    const auto rc = cond_->next();
    decided_ = true;
    if (rc) {
      branch_ = then_.get();
      then_->restart();
    } else {
      branch_ = else_.get();
      if (else_) else_->restart();
    }
  }
  if (!branch_) return std::nullopt;  // condition failed, no else: fail
  return branch_->next();
}

void IfGen::doRestart() {
  decided_ = false;
  branch_ = nullptr;
  cond_->restart();
  then_->restart();
  if (else_) else_->restart();
}

// ---------------------------------------------------------------------
// LoopGen
// ---------------------------------------------------------------------

bool LoopGen::stepControl(std::optional<Result>& propagate) {
  propagate.reset();
  switch (kind_) {
    case Kind::Repeat:
      return true;
    case Kind::Every: {
      auto rc = control_->next();
      if (!rc) return false;
      if (rc->isControl()) propagate = std::move(rc);
      return true;
    }
    case Kind::While: {
      control_->restart();
      auto rc = control_->next();
      if (!rc) return false;
      if (rc->isControl()) propagate = std::move(rc);
      return true;
    }
    case Kind::Until: {
      control_->restart();
      auto rc = control_->next();
      if (rc) {
        if (rc->isControl()) propagate = std::move(rc);
        return false;  // condition succeeded: until terminates
      }
      return true;
    }
  }
  return false;
}

std::optional<Result> LoopGen::doNext() {
  if (done_) return std::nullopt;
  while (true) {
    if (inBody_) {
      std::optional<Result> r;
      try {
        r = body_->next();
      } catch (const BreakSignal&) {
        done_ = true;
        return std::nullopt;
      } catch (const NextSignal&) {
        inBody_ = false;
        continue;
      }
      if (!r) {
        inBody_ = false;  // the bounded body failed: next control iteration
        continue;
      }
      if (r->flags & Result::kSuspend) return r;  // propagate; resume here later
      if (r->flags & (Result::kReturn | Result::kFailBody)) {
        done_ = true;
        return r;
      }
      inBody_ = false;  // bounded body produced its one result
      continue;
    }
    std::optional<Result> propagate;
    bool more = false;
    try {
      more = stepControl(propagate);
    } catch (const BreakSignal&) {
      done_ = true;
      return std::nullopt;
    } catch (const NextSignal&) {
      continue;
    }
    if (propagate) {
      if (propagate->flags & (Result::kReturn | Result::kFailBody)) done_ = true;
      return propagate;
    }
    if (!more) return std::nullopt;  // loops produce no values of their own
    if (body_) {
      body_->restart();
      inBody_ = true;
    }
  }
}

void LoopGen::doRestart() {
  inBody_ = false;
  done_ = false;
  if (control_) control_->restart();
  if (body_) body_->restart();
}

// ---------------------------------------------------------------------
// CaseGen
// ---------------------------------------------------------------------

std::optional<Result> CaseGen::doNext() {
  if (!decided_) {
    decided_ = true;
    control_->restart();
    const auto control = control_->next();
    if (!control) return std::nullopt;  // control failed: case fails
    for (auto& branch : branches_) {
      if (!branch.value) {  // default
        selected_ = branch.body.get();
        break;
      }
      branch.value->restart();
      bool matched = false;
      while (auto v = branch.value->next()) {
        if (v->value.equals(control->value)) {
          matched = true;
          break;
        }
      }
      if (matched) {
        selected_ = branch.body.get();
        break;
      }
    }
    if (selected_) selected_->restart();
  }
  if (!selected_) return std::nullopt;
  return selected_->next();
}

void CaseGen::doRestart() {
  decided_ = false;
  selected_ = nullptr;
  control_->restart();
  for (auto& b : branches_) {
    if (b.value) b.value->restart();
    b.body->restart();
  }
}

// ---------------------------------------------------------------------
// SuspendGen / ReturnGen
// ---------------------------------------------------------------------

std::optional<Result> SuspendGen::doNext() {
  auto r = expr_->next();
  if (!r) return std::nullopt;  // exhausted: the suspend statement completes
  if (r->isControl()) return r; // nested suspend/return already flagged
  r->flags |= Result::kSuspend;
  return r;
}

std::optional<Result> ReturnGen::doNext() {
  auto r = expr_->next();
  if (!r) return Result{Value::null(), nullptr, Result::kFailBody};  // return of a failed expr fails
  if (r->isControl()) return r;
  r->flags |= Result::kReturn;
  return r;
}

// ---------------------------------------------------------------------
// BodyRootGen
// ---------------------------------------------------------------------

std::optional<Result> BodyRootGen::doNext() {
  if (terminated_) return std::nullopt;
  while (true) {
    std::optional<Result> r;
    try {
      r = inner_->next();
    } catch (const BreakSignal&) {
      // Icon run-time error 506-ish: break outside of a loop.
      terminated_ = true;
      throw IconError(506, "break outside of a loop");
    } catch (const NextSignal&) {
      terminated_ = true;
      throw IconError(506, "next outside of a loop");
    }
    if (!r) {
      terminated_ = true;
      if (cache_) cache_->putFree(key_, shared_from_this());
      return std::nullopt;  // fell off the end of the body: fail
    }
    if (r->flags & Result::kSuspend) {
      r->flags &= static_cast<std::uint8_t>(~Result::kSuspend);
      return r;
    }
    if (r->flags & Result::kReturn) {
      terminated_ = true;
      if (cache_) cache_->putFree(key_, shared_from_this());
      r->flags &= static_cast<std::uint8_t>(~Result::kReturn);
      return r;
    }
    if (r->flags & Result::kFailBody) {
      terminated_ = true;
      if (cache_) cache_->putFree(key_, shared_from_this());
      return std::nullopt;
    }
    // A plain result at body level is discarded (statement values are not
    // procedure results).
  }
}

void BodyRootGen::doRestart() {
  terminated_ = false;
  inner_->restart();
}

}  // namespace congen

// arena.cpp — aggregation side of the arena's branch-free tallies.
//
// Each ThreadCache registers its Tally here on construction and retires
// it on thread exit (totals folded into the retired sums). stats() sums
// retired + live; a Registry collector (registered from a dynamic
// initializer in this TU, which is always linked because allocate() is)
// bridges the totals into the kernel.arena.* counters at snapshot time.
#include "kernel/arena.hpp"

#include <mutex>

#include "obs/metrics.hpp"
#include "obs/runtime_stats.hpp"

namespace congen::arena {

namespace {

struct TallyRegistry {
  std::mutex m;
  std::vector<detail::Tally*> live;
  Stats retired;
};

// Leaked: threads may retire during static destruction.
TallyRegistry& tallies() {
  static TallyRegistry* r = new TallyRegistry;
  return *r;
}

}  // namespace

namespace detail {

void registerTally(Tally* t) {
  auto& r = tallies();
  std::lock_guard lock(r.m);
  r.live.push_back(t);
}

void retireTally(Tally* t) noexcept {
  auto& r = tallies();
  std::lock_guard lock(r.m);
  r.retired.hits += t->hits.load(std::memory_order_relaxed);
  r.retired.misses += t->misses.load(std::memory_order_relaxed);
  r.retired.returns += t->returns.load(std::memory_order_relaxed);
  std::erase(r.live, t);
}

}  // namespace detail

Stats stats() noexcept {
  auto& r = tallies();
  std::lock_guard lock(r.m);
  Stats s = r.retired;
  for (const detail::Tally* t : r.live) {
    s.hits += t->hits.load(std::memory_order_relaxed);
    s.misses += t->misses.load(std::memory_order_relaxed);
    s.returns += t->returns.load(std::memory_order_relaxed);
  }
  return s;
}

namespace {

// Snapshot-time bridge into the metrics registry: counters are
// monotonic, so the collector adds only the delta since its last run.
[[maybe_unused]] const bool kCollectorRegistered = [] {
  obs::Registry::global().addCollector([last = Stats{}]() mutable {
    const Stats now = stats();
    auto& k = obs::KernelStats::get();
    k.arenaHits.add(now.hits - last.hits);
    k.arenaMisses.add(now.misses - last.misses);
    k.arenaReturns.add(now.returns - last.returns);
    last = now;
  });
  return true;
}();

}  // namespace

}  // namespace congen::arena

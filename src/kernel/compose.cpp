#include "kernel/compose.hpp"

#include "kernel/basic.hpp"
#include "kernel/coexpression.hpp"
#include "runtime/collections.hpp"
#include "runtime/error.hpp"
#include "runtime/record.hpp"

namespace congen {

// ---------------------------------------------------------------------
// SeqGen
// ---------------------------------------------------------------------

std::optional<Result> SeqGen::doNext() {
  if (terminated_) return std::nullopt;
  while (index_ < children_.size()) {
    const bool last = index_ + 1 == children_.size();
    const bool delegating = mode_ == Mode::Expression && last;
    auto r = children_[index_]->next();
    if (!r) {
      if (delegating) return std::nullopt;  // last term's failure is the sequence's
      ++index_;                             // a bounded term failed: move on
      continue;
    }
    if (r->flags & Result::kSuspend) return r;  // propagate, stay on this term
    if (r->flags & (Result::kReturn | Result::kFailBody)) {
      terminated_ = true;
      return r;
    }
    if (delegating) return r;  // last term generates the sequence's results
    ++index_;                  // bounded term produced its one result
  }
  return std::nullopt;  // body mode: fell off the end — fail
}

void SeqGen::doRestart() {
  index_ = 0;
  terminated_ = false;
  for (auto& c : children_) c->restart();
}

// ---------------------------------------------------------------------
// ProductGen
// ---------------------------------------------------------------------

std::optional<Result> ProductGen::doNext() {
  while (true) {
    if (!leftActive_) {
      auto rl = left_->next();
      if (!rl) return std::nullopt;
      if (rl->isControl()) return rl;  // conservatively propagate
      leftActive_ = true;
      right_->restart();
    }
    auto rr = right_->next();
    if (rr) return rr;
    leftActive_ = false;  // right exhausted: backtrack into the left
  }
}

void ProductGen::doRestart() {
  leftActive_ = false;
  left_->restart();
  right_->restart();
}

// ---------------------------------------------------------------------
// AltGen
// ---------------------------------------------------------------------

std::optional<Result> AltGen::doNext() {
  while (index_ < children_.size()) {
    auto r = children_[index_]->next();
    if (r) return r;
    ++index_;
  }
  return std::nullopt;
}

void AltGen::doRestart() {
  index_ = 0;
  for (auto& c : children_) c->restart();
}

// ---------------------------------------------------------------------
// InGen
// ---------------------------------------------------------------------

std::optional<Result> InGen::doNext() {
  auto r = source_->next();
  if (!r) return std::nullopt;
  if (r->isControl()) return r;
  var_->set(r->value);
  return Result{std::move(r->value), var_};
}

void InGen::doRestart() { source_->restart(); }

// ---------------------------------------------------------------------
// LimitGen
// ---------------------------------------------------------------------

GenPtr LimitGen::create(GenPtr expr, std::int64_t n) {
  return create(std::move(expr), ConstGen::create(Value::integer(n)));
}

std::optional<Result> LimitGen::doNext() {
  if (!boundTaken_) {
    bound_->restart();
    auto n = bound_->nextValue();
    if (!n) return std::nullopt;  // the bound expression failed
    remaining_ = n->requireInt64("limit bound");
    boundTaken_ = true;
  }
  if (remaining_ <= 0) return std::nullopt;
  auto r = expr_->next();
  if (!r) return std::nullopt;
  if (!r->isControl()) --remaining_;
  return r;
}

void LimitGen::doRestart() {
  boundTaken_ = false;
  remaining_ = 0;
  expr_->restart();
}

// ---------------------------------------------------------------------
// NotGen
// ---------------------------------------------------------------------

std::optional<Result> NotGen::doNext() {
  if (done_) return std::nullopt;
  done_ = true;
  expr_->restart();
  if (expr_->next()) return std::nullopt;
  return Result{Value::null()};
}

void NotGen::doRestart() { done_ = false; }

// ---------------------------------------------------------------------
// RepeatAltGen
// ---------------------------------------------------------------------

std::optional<Result> RepeatAltGen::doNext() {
  while (true) {
    auto r = expr_->next();  // auto-restarts after each pass's failure
    if (r) {
      producedThisPass_ = true;
      return r;
    }
    if (!producedThisPass_) return std::nullopt;  // sterile pass: stop
    producedThisPass_ = false;
  }
}

void RepeatAltGen::doRestart() {
  producedThisPass_ = false;
  expr_->restart();
}

// ---------------------------------------------------------------------
// PromoteGen
// ---------------------------------------------------------------------

namespace {

/// !L for a list: walks by index so concurrent growth is observed, and
/// yields trapped variables (Icon: list elements are assignable).
class ListElementsGen final : public Gen {
 public:
  explicit ListElementsGen(ListPtr list) : list_(std::move(list)) {}

 protected:
  std::optional<Result> doNext() override {
    if (index_ >= list_->size()) return std::nullopt;
    ++index_;
    return Result{list_->at(index_).value_or(Value::null()), ListElemVar::create(list_, index_)};
  }
  void doRestart() override { index_ = 0; }

 private:
  ListPtr list_;
  std::int64_t index_ = 0;  // Icon 1-based position of the last yielded element
};

/// !s for a string: one-character strings.
class StringElementsGen final : public Gen {
 public:
  explicit StringElementsGen(std::string s) : s_(std::move(s)) {}

 protected:
  std::optional<Result> doNext() override {
    if (index_ >= s_.size()) return std::nullopt;
    return Result{Value::string(std::string(1, s_[index_++]))};
  }
  void doRestart() override { index_ = 0; }

 private:
  std::string s_;
  std::size_t index_ = 0;
};

/// !t for a table: element values as trapped variables, in sorted key
/// order for determinism.
class TableElementsGen final : public Gen {
 public:
  explicit TableElementsGen(TablePtr table) : table_(std::move(table)), keys_(table_->sortedKeys()) {}

 protected:
  std::optional<Result> doNext() override {
    if (index_ >= keys_.size()) return std::nullopt;
    const Value& key = keys_[index_++];
    return Result{table_->lookup(key), TableElemVar::create(table_, key)};
  }
  void doRestart() override {
    keys_ = table_->sortedKeys();
    index_ = 0;
  }

 private:
  TablePtr table_;
  std::vector<Value> keys_;
  std::size_t index_ = 0;
};

/// !c for a co-expression or pipe: repeated activation until failure
/// (Section III.B: "the ! operator lifts lists as well as co-expressions
/// to iterators"). Restart does not refresh the co-expression; it simply
/// continues, matching pipe consumption semantics.
class CoActivationGen final : public Gen {
 public:
  explicit CoActivationGen(CoExprPtr c) : c_(std::move(c)) {}

 protected:
  std::optional<Result> doNext() override {
    auto v = c_->activate();
    if (!v) return std::nullopt;
    return Result{std::move(*v)};
  }
  void doRestart() override {}

 private:
  CoExprPtr c_;
};

}  // namespace

GenPtr PromoteGen::makeElementGen(const Value& v) {
  switch (v.tag()) {
    case TypeTag::List: return std::make_shared<ListElementsGen>(v.list());
    case TypeTag::String: return std::make_shared<StringElementsGen>(v.str());
    case TypeTag::Table: return std::make_shared<TableElementsGen>(v.table());
    case TypeTag::Set: return ValuesGen::create(v.set()->sortedMembers());
    case TypeTag::Record: return ValuesGen::create(v.record()->values());
    case TypeTag::CoExpr: return std::make_shared<CoActivationGen>(v.coExpr());
    default: throw errInvalidValue("!x applied to " + v.typeName());
  }
}

std::optional<Result> PromoteGen::doNext() {
  while (true) {
    if (inner_) {
      auto r = inner_->next();
      if (r) return r;
      inner_.reset();
    }
    auto r = operand_->next();
    if (!r) return std::nullopt;
    if (r->isControl()) return r;
    inner_ = makeElementGen(r->value);
  }
}

void PromoteGen::doRestart() {
  inner_.reset();
  operand_->restart();
}

// ---------------------------------------------------------------------
// ActivateGen / RefreshGen (declared in coexpression.hpp)
// ---------------------------------------------------------------------

std::optional<Result> ActivateGen::doNext() {
  while (true) {
    auto r = operand_->next();
    if (!r) return std::nullopt;
    if (r->isControl()) return r;
    if (!r->value.isCoExpr()) throw errCoExprExpected("operand of @: " + r->value.image());
    auto v = r->value.coExpr()->activate();
    if (v) return Result{std::move(*v)};
    // This co-expression is exhausted: backtrack into the operand.
  }
}

std::optional<Result> RefreshGen::doNext() {
  auto r = operand_->next();
  if (!r) return std::nullopt;
  if (r->isControl()) return r;
  if (!r->value.isCoExpr()) throw errCoExprExpected("operand of ^: " + r->value.image());
  return Result{Value::coexpr(r->value.coExpr()->refreshed())};
}

}  // namespace congen

#include "kernel/compose.hpp"

#include "kernel/basic.hpp"
#include "kernel/coexpression.hpp"
#include "runtime/collections.hpp"
#include "runtime/error.hpp"
#include "runtime/record.hpp"

namespace congen {

// ---------------------------------------------------------------------
// SeqGen
// ---------------------------------------------------------------------

bool SeqGen::doNext(Result& out) {
  if (terminated_) return false;
  while (index_ < children_.size()) {
    const bool last = index_ + 1 == children_.size();
    const bool delegating = mode_ == Mode::Expression && last;
    if (!children_[index_]->next(out)) {
      if (delegating) return false;  // last term's failure is the sequence's
      ++index_;                      // a bounded term failed: move on
      continue;
    }
    if (out.flags & Result::kSuspend) return true;  // propagate, stay on this term
    if (out.flags & (Result::kReturn | Result::kFailBody)) {
      terminated_ = true;
      return true;
    }
    if (delegating) return true;  // last term generates the sequence's results
    ++index_;                     // bounded term produced its one result
  }
  return false;  // body mode: fell off the end — fail
}

void SeqGen::doRestart() {
  index_ = 0;
  terminated_ = false;
  for (auto& c : children_) c->restart();
}

// ---------------------------------------------------------------------
// ProductGen
// ---------------------------------------------------------------------

bool ProductGen::doNext(Result& out) {
  while (true) {
    if (!leftActive_) {
      if (!left_->next(out)) return false;
      if (out.isControl()) return true;  // conservatively propagate
      leftActive_ = true;
      right_->restart();
    }
    if (right_->next(out)) return true;
    leftActive_ = false;  // right exhausted: backtrack into the left
  }
}

void ProductGen::doRestart() {
  leftActive_ = false;
  left_->restart();
  right_->restart();
}

// ---------------------------------------------------------------------
// AltGen
// ---------------------------------------------------------------------

bool AltGen::doNext(Result& out) {
  while (index_ < children_.size()) {
    if (children_[index_]->next(out)) return true;
    ++index_;
  }
  return false;
}

void AltGen::doRestart() {
  index_ = 0;
  for (auto& c : children_) c->restart();
}

// ---------------------------------------------------------------------
// InGen
// ---------------------------------------------------------------------

bool InGen::doNext(Result& out) {
  if (!source_->next(out)) return false;
  if (out.isControl()) return true;
  var_->set(out.value);
  out.ref = var_;
  return true;
}

void InGen::doRestart() { source_->restart(); }

// ---------------------------------------------------------------------
// LimitGen
// ---------------------------------------------------------------------

GenPtr LimitGen::create(GenPtr expr, std::int64_t n) {
  return create(std::move(expr), ConstGen::create(Value::integer(n)));
}

bool LimitGen::doNext(Result& out) {
  if (!boundTaken_) {
    bound_->restart();
    auto n = bound_->nextValue();
    if (!n) return false;  // the bound expression failed
    remaining_ = n->requireInt64("limit bound");
    boundTaken_ = true;
  }
  if (remaining_ <= 0) return false;
  if (!expr_->next(out)) return false;
  if (!out.isControl()) --remaining_;
  return true;
}

void LimitGen::doRestart() {
  boundTaken_ = false;
  remaining_ = 0;
  expr_->restart();
}

// ---------------------------------------------------------------------
// NotGen
// ---------------------------------------------------------------------

bool NotGen::doNext(Result& out) {
  if (done_) return false;
  done_ = true;
  expr_->restart();
  if (expr_->next(out)) return false;
  out.set(Value::null());
  return true;
}

void NotGen::doRestart() { done_ = false; }

// ---------------------------------------------------------------------
// RepeatAltGen
// ---------------------------------------------------------------------

bool RepeatAltGen::doNext(Result& out) {
  while (true) {
    if (expr_->next(out)) {  // auto-restarts after each pass's failure
      producedThisPass_ = true;
      return true;
    }
    if (!producedThisPass_) return false;  // sterile pass: stop
    producedThisPass_ = false;
  }
}

void RepeatAltGen::doRestart() {
  producedThisPass_ = false;
  expr_->restart();
}

// ---------------------------------------------------------------------
// PromoteGen
// ---------------------------------------------------------------------

namespace {

/// !L for a list: walks by index so concurrent growth is observed, and
/// yields trapped variables (Icon: list elements are assignable).
class ListElementsGen final : public Gen {
 public:
  explicit ListElementsGen(ListPtr list) : list_(std::move(list)) {}

 protected:
  bool doNext(Result& out) override {
    if (index_ >= list_->size()) return false;
    ++index_;
    out.set(list_->at(index_).value_or(Value::null()), ListElemVar::create(list_, index_));
    return true;
  }
  void doRestart() override { index_ = 0; }

 private:
  ListPtr list_;
  std::int64_t index_ = 0;  // Icon 1-based position of the last yielded element
};

/// !s for a string: one-character strings.
class StringElementsGen final : public Gen {
 public:
  explicit StringElementsGen(std::string s) : s_(std::move(s)) {}

 protected:
  bool doNext(Result& out) override {
    if (index_ >= s_.size()) return false;
    out.set(Value::string(std::string(1, s_[index_++])));
    return true;
  }
  void doRestart() override { index_ = 0; }

 private:
  std::string s_;
  std::size_t index_ = 0;
};

/// !t for a table: element values as trapped variables, in sorted key
/// order for determinism.
class TableElementsGen final : public Gen {
 public:
  explicit TableElementsGen(TablePtr table) : table_(std::move(table)), keys_(table_->sortedKeys()) {}

 protected:
  bool doNext(Result& out) override {
    if (index_ >= keys_.size()) return false;
    const Value& key = keys_[index_++];
    out.set(table_->lookup(key), TableElemVar::create(table_, key));
    return true;
  }
  void doRestart() override {
    keys_ = table_->sortedKeys();
    index_ = 0;
  }

 private:
  TablePtr table_;
  std::vector<Value> keys_;
  std::size_t index_ = 0;
};

/// !c for a co-expression or pipe: repeated activation until failure
/// (Section III.B: "the ! operator lifts lists as well as co-expressions
/// to iterators"). Restart does not refresh the co-expression; it simply
/// continues, matching pipe consumption semantics.
class CoActivationGen final : public Gen {
 public:
  explicit CoActivationGen(CoExprPtr c) : c_(std::move(c)) {}

 protected:
  bool doNext(Result& out) override {
    auto v = c_->activate();
    if (!v) return false;
    out.set(std::move(*v));
    return true;
  }
  void doRestart() override {}

 private:
  CoExprPtr c_;
};

}  // namespace

GenPtr PromoteGen::makeElementGen(const Value& v) {
  switch (v.tag()) {
    case TypeTag::List: return std::make_shared<ListElementsGen>(v.list());
    case TypeTag::String: return std::make_shared<StringElementsGen>(std::string(v.str()));
    case TypeTag::Table: return std::make_shared<TableElementsGen>(v.table());
    case TypeTag::Set: return ValuesGen::create(v.set()->sortedMembers());
    case TypeTag::Record: return ValuesGen::create(v.record()->values());
    case TypeTag::CoExpr: return std::make_shared<CoActivationGen>(v.coExpr());
    default: throw errInvalidValue("!x applied to " + v.typeName());
  }
}

bool PromoteGen::doNext(Result& out) {
  while (true) {
    if (inner_) {
      if (inner_->next(out)) return true;
      inner_.reset();
    }
    if (!operand_->next(out)) return false;
    if (out.isControl()) return true;
    inner_ = makeElementGen(out.value);
  }
}

void PromoteGen::doRestart() {
  inner_.reset();
  operand_->restart();
}

// ---------------------------------------------------------------------
// ActivateGen / RefreshGen (declared in coexpression.hpp)
// ---------------------------------------------------------------------

bool ActivateGen::doNext(Result& out) {
  while (true) {
    if (!operand_->next(out)) return false;
    if (out.isControl()) return true;
    if (!out.value.isCoExpr()) throw errCoExprExpected("operand of @: " + out.value.image());
    auto v = out.value.coExpr()->activate();
    if (v) {
      out.set(std::move(*v));
      return true;
    }
    // This co-expression is exhausted: backtrack into the operand.
  }
}

bool RefreshGen::doNext(Result& out) {
  if (!operand_->next(out)) return false;
  if (out.isControl()) return true;
  if (!out.value.isCoExpr()) throw errCoExprExpected("operand of ^: " + out.value.image());
  out.set(Value::coexpr(out.value.coExpr()->refreshed()));
  return true;
}

}  // namespace congen

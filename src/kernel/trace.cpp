#include "kernel/trace.hpp"

#include <cxxabi.h>

#include <memory>
#include <mutex>

namespace congen::trace {

namespace {

std::mutex g_hookMutex;
Hook g_hook;  // guarded by g_hookMutex for install/remove; events copy it

thread_local int t_depth = 0;

std::atomic<std::uint64_t> g_resumes{0};
std::atomic<std::uint64_t> g_produces{0};
std::atomic<std::uint64_t> g_failures{0};

std::string demangle(const char* name) {
  int status = 0;
  std::unique_ptr<char, void (*)(void*)> demangled(
      abi::__cxa_demangle(name, nullptr, nullptr, &status), std::free);
  return status == 0 && demangled ? std::string(demangled.get()) : std::string(name);
}

void dispatch(const Event& event) {
  Hook hook;
  {
    std::lock_guard lock(g_hookMutex);
    hook = g_hook;
  }
  if (hook) hook(event);
}

}  // namespace

std::atomic<bool> g_enabled{false};

void install(Hook hook) {
  std::lock_guard lock(g_hookMutex);
  g_hook = std::move(hook);
  g_enabled.store(true, std::memory_order_relaxed);
}

void remove() {
  std::lock_guard lock(g_hookMutex);
  g_enabled.store(false, std::memory_order_relaxed);
  g_hook = nullptr;
}

int enter(const Gen& node) {
  const int depth = t_depth++;
  dispatch(Event{EventKind::Resume, &node, demangle(typeid(node).name()), depth, nullptr});
  return depth;
}

void produced(const Gen& node, const Value& v, int depth) {
  --t_depth;
  dispatch(Event{EventKind::Produce, &node, demangle(typeid(node).name()), depth, &v});
}

void failed(const Gen& node, int depth) {
  --t_depth;
  dispatch(Event{EventKind::Fail, &node, demangle(typeid(node).name()), depth, nullptr});
}

void installCounting() {
  g_resumes = 0;
  g_produces = 0;
  g_failures = 0;
  install([](const Event& e) {
    switch (e.kind) {
      case EventKind::Resume: g_resumes.fetch_add(1, std::memory_order_relaxed); break;
      case EventKind::Produce: g_produces.fetch_add(1, std::memory_order_relaxed); break;
      case EventKind::Fail: g_failures.fetch_add(1, std::memory_order_relaxed); break;
    }
  });
}

Counters counters() {
  return Counters{g_resumes.load(), g_produces.load(), g_failures.load()};
}

std::string format(const Event& event) {
  std::string out;
  for (int i = 0; i < event.depth; ++i) out += "| ";
  // Strip the namespace for readability.
  std::string type = event.nodeType;
  if (const auto pos = type.rfind("::"); pos != std::string::npos) type = type.substr(pos + 2);
  out += type;
  switch (event.kind) {
    case EventKind::Resume: out += " ..."; break;
    case EventKind::Produce: out += " -> " + (event.value ? event.value->image() : "?"); break;
    case EventKind::Fail: out += " =| fail"; break;
  }
  return out;
}

}  // namespace congen::trace

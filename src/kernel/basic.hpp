// basic.hpp — leaf generators: constants, variables, ranges, failure.
#pragma once

#include "kernel/arena.hpp"
#include "kernel/gen.hpp"

namespace congen {

/// Singleton iterator over a constant value (the paper's `<>e` base case
/// for literals): yields the value once per cycle, then fails.
class ConstGen final : public Gen {
 public:
  explicit ConstGen(Value v) : value_(std::move(v)) {}

  static GenPtr create(Value v) { return arena::make<ConstGen>(std::move(v)); }

 protected:
  bool doNext(Result& out) override {
    if (done_) return false;
    done_ = true;
    out.set(value_);
    return true;
  }
  void doRestart() override { done_ = false; }

 private:
  Value value_;
  bool done_ = false;
};

/// Singleton iterator over a variable: yields the variable (value +
/// assignable reference) once per cycle. This is lifting a variable into
/// a property per Section V.A.
class VarGen final : public Gen {
 public:
  explicit VarGen(VarPtr var) : var_(std::move(var)) {}

  static GenPtr create(VarPtr var) { return arena::make<VarGen>(std::move(var)); }

 protected:
  bool doNext(Result& out) override {
    if (done_) return false;
    done_ = true;
    out.set(var_->get(), var_);
    return true;
  }
  void doRestart() override { done_ = false; }

 private:
  VarPtr var_;
  bool done_ = false;
};

/// Yields &null once per cycle (the IconNullIterator of Fig. 5).
class NullGen final : public Gen {
 public:
  static GenPtr create() { return arena::make<NullGen>(); }

 protected:
  bool doNext(Result& out) override {
    if (done_) return false;
    done_ = true;
    out.set(Value::null());
    return true;
  }
  void doRestart() override { done_ = false; }

 private:
  bool done_ = false;
};

/// Always fails (the IconFail of Fig. 5).
class FailGen final : public Gen {
 public:
  static GenPtr create() { return arena::make<FailGen>(); }

 protected:
  bool doNext(Result&) override { return false; }
  void doRestart() override {}
};

/// Arithmetic range: `from to limit by step` over already-fixed numeric
/// bounds (operand generators are handled by ToByGen's delegation).
/// Supports integer (incl. BigInt) and real sequences; step may be
/// negative; zero step is a run-time error. All-small-int ranges run on
/// raw int64 arithmetic (overflow-checked: past-int64 means past the
/// limit, since the limit itself fits) instead of Value dispatch.
class RangeGen final : public Gen {
 public:
  RangeGen(Value from, Value limit, Value step);

  static GenPtr create(Value from, Value limit, Value step) {
    return arena::make<RangeGen>(std::move(from), std::move(limit), std::move(step));
  }

 protected:
  bool doNext(Result& out) override;
  void doRestart() override;

 private:
  Value from_, limit_, step_;
  Value current_;
  std::int64_t fastCurrent_ = 0, fastLimit_ = 0, fastStep_ = 0;
  bool fast_ = false;
  bool started_ = false;
  bool ascending_ = true;
};

/// Generator over an explicit vector of values (used by builtins and
/// tests; also the basis for promoting host containers).
class ValuesGen final : public Gen {
 public:
  explicit ValuesGen(std::vector<Value> values) : values_(std::move(values)) {}

  static GenPtr create(std::vector<Value> values) {
    return std::make_shared<ValuesGen>(std::move(values));
  }

 protected:
  bool doNext(Result& out) override {
    if (index_ >= values_.size()) return false;
    out.set(values_[index_++]);
    return true;
  }
  void doRestart() override { index_ = 0; }

 private:
  std::vector<Value> values_;
  std::size_t index_ = 0;
};

/// Generator backed by a host-side callback producing values until
/// nullopt — the bridge for native C++ data sources ("seamless
/// interoperability", Section IV). The callback is re-armed from the
/// factory on restart.
class CallbackGen final : public Gen {
 public:
  using Puller = std::function<std::optional<Value>()>;
  using PullerFactory = std::function<Puller()>;

  explicit CallbackGen(PullerFactory factory)
      : factory_(std::move(factory)), puller_(factory_()) {}

  static GenPtr create(PullerFactory factory) {
    return std::make_shared<CallbackGen>(std::move(factory));
  }

 protected:
  bool doNext(Result& out) override {
    auto v = puller_();
    if (!v) return false;
    out.set(std::move(*v));
    return true;
  }
  void doRestart() override { puller_ = factory_(); }

 private:
  PullerFactory factory_;
  Puller puller_;
};

}  // namespace congen

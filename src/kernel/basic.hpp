// basic.hpp — leaf generators: constants, variables, ranges, failure.
#pragma once

#include "kernel/gen.hpp"

namespace congen {

/// Singleton iterator over a constant value (the paper's `<>e` base case
/// for literals): yields the value once per cycle, then fails.
class ConstGen final : public Gen {
 public:
  explicit ConstGen(Value v) : value_(std::move(v)) {}

  static GenPtr create(Value v) { return std::make_shared<ConstGen>(std::move(v)); }

 protected:
  std::optional<Result> doNext() override {
    if (done_) return std::nullopt;
    done_ = true;
    return Result{value_};
  }
  void doRestart() override { done_ = false; }

 private:
  Value value_;
  bool done_ = false;
};

/// Singleton iterator over a variable: yields the variable (value +
/// assignable reference) once per cycle. This is lifting a variable into
/// a property per Section V.A.
class VarGen final : public Gen {
 public:
  explicit VarGen(VarPtr var) : var_(std::move(var)) {}

  static GenPtr create(VarPtr var) { return std::make_shared<VarGen>(std::move(var)); }

 protected:
  std::optional<Result> doNext() override {
    if (done_) return std::nullopt;
    done_ = true;
    return Result{var_->get(), var_};
  }
  void doRestart() override { done_ = false; }

 private:
  VarPtr var_;
  bool done_ = false;
};

/// Yields &null once per cycle (the IconNullIterator of Fig. 5).
class NullGen final : public Gen {
 public:
  static GenPtr create() { return std::make_shared<NullGen>(); }

 protected:
  std::optional<Result> doNext() override {
    if (done_) return std::nullopt;
    done_ = true;
    return Result{Value::null()};
  }
  void doRestart() override { done_ = false; }

 private:
  bool done_ = false;
};

/// Always fails (the IconFail of Fig. 5).
class FailGen final : public Gen {
 public:
  static GenPtr create() { return std::make_shared<FailGen>(); }

 protected:
  std::optional<Result> doNext() override { return std::nullopt; }
  void doRestart() override {}
};

/// Arithmetic range: `from to limit by step` over already-fixed numeric
/// bounds (operand generators are handled by ToByGen's delegation).
/// Supports integer (incl. BigInt) and real sequences; step may be
/// negative; zero step is a run-time error.
class RangeGen final : public Gen {
 public:
  RangeGen(Value from, Value limit, Value step);

  static GenPtr create(Value from, Value limit, Value step) {
    return std::make_shared<RangeGen>(std::move(from), std::move(limit), std::move(step));
  }

 protected:
  std::optional<Result> doNext() override;
  void doRestart() override;

 private:
  Value from_, limit_, step_;
  Value current_;
  bool started_ = false;
  bool ascending_ = true;
};

/// Generator over an explicit vector of values (used by builtins and
/// tests; also the basis for promoting host containers).
class ValuesGen final : public Gen {
 public:
  explicit ValuesGen(std::vector<Value> values) : values_(std::move(values)) {}

  static GenPtr create(std::vector<Value> values) {
    return std::make_shared<ValuesGen>(std::move(values));
  }

 protected:
  std::optional<Result> doNext() override {
    if (index_ >= values_.size()) return std::nullopt;
    return Result{values_[index_++]};
  }
  void doRestart() override { index_ = 0; }

 private:
  std::vector<Value> values_;
  std::size_t index_ = 0;
};

/// Generator backed by a host-side callback producing values until
/// nullopt — the bridge for native C++ data sources ("seamless
/// interoperability", Section IV). The callback is re-armed from the
/// factory on restart.
class CallbackGen final : public Gen {
 public:
  using Puller = std::function<std::optional<Value>()>;
  using PullerFactory = std::function<Puller()>;

  explicit CallbackGen(PullerFactory factory)
      : factory_(std::move(factory)), puller_(factory_()) {}

  static GenPtr create(PullerFactory factory) {
    return std::make_shared<CallbackGen>(std::move(factory));
  }

 protected:
  std::optional<Result> doNext() override {
    auto v = puller_();
    if (!v) return std::nullopt;
    return Result{std::move(*v)};
  }
  void doRestart() override { puller_ = factory_(); }

 private:
  PullerFactory factory_;
  Puller puller_;
};

}  // namespace congen

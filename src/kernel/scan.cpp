#include "kernel/scan.hpp"

#include <stack>

#include "kernel/basic.hpp"
#include "kernel/ops.hpp"
#include "runtime/error.hpp"
#include "runtime/var.hpp"

namespace congen {

namespace {

struct ThreadScanStack {
  ScanEnv::State base;  // the default environment (empty subject, pos 1)
  std::stack<ScanEnv::State> stack;
};

ThreadScanStack& tls() {
  thread_local ThreadScanStack s;
  return s;
}

}  // namespace

ScanEnv::State& ScanEnv::current() {
  auto& s = tls();
  return s.stack.empty() ? s.base : s.stack.top();
}

void ScanEnv::push(State state) { tls().stack.push(std::move(state)); }

ScanEnv::State ScanEnv::pop() {
  auto& s = tls();
  State out = std::move(s.stack.top());
  s.stack.pop();
  return out;
}

std::size_t ScanEnv::depth() { return tls().stack.size(); }

std::optional<std::int64_t> ScanEnv::resolvePos(std::int64_t p) {
  const auto n = static_cast<std::int64_t>(current().subject.str().size());
  if (p <= 0) p = n + 1 + p;
  if (p < 1 || p > n + 1) return std::nullopt;
  return p;
}

// ---------------------------------------------------------------------
// ScanGen
// ---------------------------------------------------------------------

bool ScanGen::doNext(Result& out) {
  while (true) {
    if (scanning_) {
      // Swap the inner environment in around every body step (Icon swaps
      // on each suspension crossing the scan boundary). This keeps the
      // outer environment current while the scan is suspended, and an
      // abandoned scan can never leak its environment.
      ScanEnv::push(std::move(saved_));
      const bool produced = body_->next(out);
      saved_ = ScanEnv::pop();
      if (produced) return true;  // scan results are the body's results
      scanning_ = false;          // body exhausted: backtrack into the subject
      continue;
    }
    if (!subject_->next(out)) return false;
    if (out.isControl()) return true;
    // A string subject is shared as-is (no copy); non-strings coerce.
    saved_.subject = out.value.isString()
                         ? out.value
                         : Value::string(out.value.requireString("scan subject"));
    saved_.pos = 1;
    scanning_ = true;
    body_->restart();
  }
}

void ScanGen::doRestart() {
  scanning_ = false;
  saved_ = ScanEnv::State{};
  subject_->restart();
  body_->restart();
}

// ---------------------------------------------------------------------
// tab / move
// ---------------------------------------------------------------------

namespace {

/// The reversible position move shared by tab and move: first next()
/// performs the move and yields the spanned substring; the following
/// next() (a resumption during backtracking) undoes it and fails.
class TabStepGen final : public Gen {
 public:
  explicit TabStepGen(std::int64_t rawTarget) : rawTarget_(rawTarget) {}

 protected:
  bool doNext(Result& out) override {
    auto& env = ScanEnv::current();
    if (moved_) {  // resumed: restore and fail (reversible effect)
      env.pos = savedPos_;
      moved_ = false;
      return false;
    }
    const auto target = ScanEnv::resolvePos(rawTarget_);
    if (!target) return false;  // out of range: fail without moving
    savedPos_ = env.pos;
    env.pos = *target;
    const auto lo = std::min(savedPos_, *target);
    const auto hi = std::max(savedPos_, *target);
    moved_ = true;
    out.set(Value::string(env.subject.str().substr(static_cast<std::size_t>(lo - 1),
                                                   static_cast<std::size_t>(hi - lo))));
    return true;
  }
  void doRestart() override {
    if (moved_) {
      ScanEnv::current().pos = savedPos_;
      moved_ = false;
    }
  }

 private:
  std::int64_t rawTarget_;
  std::int64_t savedPos_ = 1;
  bool moved_ = false;
};

}  // namespace

GenPtr makeSubjectVarGen() {
  return VarGen::create(ComputedVar::create(
      [] { return ScanEnv::current().subject; },
      [](Value v) {
        auto& env = ScanEnv::current();
        env.subject = v.isString() ? std::move(v) : Value::string(v.requireString("&subject"));
        env.pos = 1;  // Icon: assigning &subject resets &pos
      }));
}

GenPtr makePosVarGen() {
  return VarGen::create(ComputedVar::create(
      [] { return Value::integer(ScanEnv::current().pos); },
      [](Value v) {
        const auto p = ScanEnv::resolvePos(v.requireInt64("&pos"));
        if (!p) throw errInvalidValue("&pos assignment out of range");
        ScanEnv::current().pos = *p;
      }));
}

GenPtr makeTabGen(GenPtr target) {
  std::vector<GenPtr> operands;
  operands.push_back(std::move(target));
  return DelegateGen::create(std::move(operands), [](const std::vector<Result>& t) -> GenPtr {
    return std::make_shared<TabStepGen>(t[0].value.requireInt64("tab position"));
  });
}

GenPtr makeMoveGen(GenPtr delta) {
  std::vector<GenPtr> operands;
  operands.push_back(std::move(delta));
  return DelegateGen::create(std::move(operands), [](const std::vector<Result>& t) -> GenPtr {
    const std::int64_t n = t[0].value.requireInt64("move delta");
    return std::make_shared<TabStepGen>(ScanEnv::current().pos + n);
  });
}

}  // namespace congen

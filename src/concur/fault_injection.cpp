#include "concur/fault_injection.hpp"

#include <chrono>
#include <thread>

namespace congen::testing {

namespace {

/// splitmix64 — tiny, stateless, and identical everywhere; the decision
/// stream is a pure function of (seed, global call index).
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

const char* faultSiteName(FaultSite site) noexcept {
  switch (site) {
    case FaultSite::QueuePut: return "BlockingQueue::put";
    case FaultSite::QueueTake: return "BlockingQueue::take";
    case FaultSite::QueueTryPut: return "BlockingQueue::tryPut";
    case FaultSite::QueueTryTake: return "BlockingQueue::tryTake";
    case FaultSite::QueueClose: return "BlockingQueue::close";
    case FaultSite::PoolSubmit: return "ThreadPool::submit";
    case FaultSite::PoolTaskRun: return "ThreadPool::workerLoop";
    case FaultSite::QueuePutAll: return "BlockingQueue::putAll";
    case FaultSite::QueueTakeUpTo: return "BlockingQueue::takeUpTo";
    case FaultSite::PipeBatchFlush: return "Pipe::batchFlush";
    case FaultSite::QueueTimedWait: return "BlockingQueue::timedWait";
    case FaultSite::CancelSignal: return "StopSource::requestStop";
    case FaultSite::PoolSteal: return "ThreadPool::steal";
    case FaultSite::ArenaAlloc: return "Arena::systemAlloc";
    case FaultSite::RcAlloc: return "RcBase::operator new";
    case FaultSite::ServeAccept: return "serve::Listener::accept";
    case FaultSite::ServeWrite: return "serve::writeAll";
    case FaultSite::kCount: break;
  }
  return "unknown";
}

bool faultSiteFailureCapable(FaultSite site) noexcept {
  switch (site) {
    case FaultSite::QueuePut:
    case FaultSite::QueueTryPut:
    case FaultSite::QueueTryTake:
    case FaultSite::PoolSubmit:
    case FaultSite::QueuePutAll:
    // Allocation sites translate InjectedFault to IconError 305 (the same
    // clean error a real bad_alloc produces), so failure is in-contract.
    case FaultSite::ArenaAlloc:
    case FaultSite::RcAlloc:
    // The serve layer's socket boundaries already tolerate syscall
    // failure (EMFILE on accept, EPIPE on write): an injected throw
    // exercises the same recovery paths deterministically.
    case FaultSite::ServeAccept:
    case FaultSite::ServeWrite:
      return true;
    default:
      return false;
  }
}

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::arm(std::uint64_t seed, const SitePolicy& policy) {
  std::lock_guard lock(policyMutex_);
  for (std::size_t i = 0; i < kSites; ++i) {
    policies_[i] = policy;
    if (!faultSiteFailureCapable(static_cast<FaultSite>(i))) policies_[i].failPerMille = 0;
    hits_[i].store(0, std::memory_order_relaxed);
  }
  seed_.store(seed, std::memory_order_relaxed);
  sequence_.store(0, std::memory_order_relaxed);
  delays_.store(0, std::memory_order_relaxed);
  failures_.store(0, std::memory_order_relaxed);
  armed_.store(true, std::memory_order_release);
}

void FaultInjector::armSite(FaultSite site, const SitePolicy& policy) {
  std::lock_guard lock(policyMutex_);
  policies_[static_cast<std::size_t>(site)] = policy;
  armed_.store(true, std::memory_order_release);
}

void FaultInjector::disarm() { armed_.store(false, std::memory_order_release); }

std::uint64_t FaultInjector::hits(FaultSite site) const {
  return hits_[static_cast<std::size_t>(site)].load(std::memory_order_relaxed);
}

std::uint64_t FaultInjector::delaysInjected() const {
  return delays_.load(std::memory_order_relaxed);
}

std::uint64_t FaultInjector::failuresInjected() const {
  return failures_.load(std::memory_order_relaxed);
}

void FaultInjector::injectSlow(FaultSite site) {
  const auto idx = static_cast<std::size_t>(site);
  hits_[idx].fetch_add(1, std::memory_order_relaxed);
  SitePolicy policy;
  {
    std::lock_guard lock(policyMutex_);
    policy = policies_[idx];
  }
  if (policy.delayPerMille == 0 && policy.failPerMille == 0) return;

  // Three independent draws from one mixed word: delay roll, delay
  // duration, failure roll. The stream depends only on (seed, index),
  // so a fixed seed reproduces the same decision sequence.
  const std::uint64_t n = sequence_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t word = mix(seed_.load(std::memory_order_relaxed) ^ mix(n + 1));
  const auto delayRoll = static_cast<std::uint32_t>(word % 1000);
  const auto durationDraw = static_cast<std::uint32_t>((word >> 10) % 0xffff);
  const auto failRoll = static_cast<std::uint32_t>((word >> 32) % 1000);

  if (delayRoll < policy.delayPerMille && policy.maxDelayMicros > 0) {
    delays_.fetch_add(1, std::memory_order_relaxed);
    const auto micros = 1 + durationDraw % policy.maxDelayMicros;
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
  }
  if (failRoll < policy.failPerMille) {
    failures_.fetch_add(1, std::memory_order_relaxed);
    throw InjectedFault(site);
  }
}

}  // namespace congen::testing

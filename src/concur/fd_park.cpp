#include "concur/fd_park.hpp"

#include <cerrno>
#include <cstdlib>

#include <fcntl.h>
#include <unistd.h>

namespace congen {

FdParker::FdParker() {
  int fds[2];
#if defined(__linux__)
  if (::pipe2(fds, O_NONBLOCK | O_CLOEXEC) != 0) std::abort();
#else
  if (::pipe(fds) != 0) std::abort();
  for (int fd : fds) {
    ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL) | O_NONBLOCK);
    ::fcntl(fd, F_SETFD, FD_CLOEXEC);
  }
#endif
  wakeRead_ = fds[0];
  wakeWrite_ = fds[1];
}

FdParker::~FdParker() {
  ::close(wakeRead_);
  ::close(wakeWrite_);
}

bool FdParker::park(std::vector<pollfd>& fds, std::chrono::milliseconds timeout) {
  fds.push_back({wakeRead_, POLLIN, 0});
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  int ready;
  for (;;) {
    int waitMs = -1;
    if (timeout.count() >= 0) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      waitMs = static_cast<int>(left.count() < 0 ? 0 : left.count());
    }
    ready = ::poll(fds.data(), fds.size(), waitMs);
    if (ready >= 0 || errno != EINTR) break;
    // EINTR: recompute the remaining budget and go back to sleep.
  }
  bool woken = false;
  if (ready > 0 && (fds.back().revents & POLLIN) != 0) {
    woken = true;
    char buf[64];
    while (::read(wakeRead_, buf, sizeof buf) > 0) {
    }
  }
  fds.pop_back();
  if (ready <= 0) return false;
  if (woken) --ready;
  return woken || ready > 0;
}

void FdParker::wake() noexcept {
  const char byte = 1;
  // EAGAIN means the pipe already holds an unconsumed wake — coalesced,
  // nothing to do. Any other failure is ignorable for the same reason a
  // lost futex wake is not: the parker re-polls its fds on every cycle.
  [[maybe_unused]] ssize_t n = ::write(wakeWrite_, &byte, 1);
}

}  // namespace congen

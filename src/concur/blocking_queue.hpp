// blocking_queue.hpp — bounded blocking queue with close/poison semantics.
//
// The communication substrate of the pipe calculus (Section III.B): "a
// blocking channel, or blocking queue, has put and take operations that
// wait until the queue of results is not full or not empty". This is the
// stand-in for Java's BlockingQueue. Closing the queue releases both
// sides: put() returns false (so an abandoned pipe's producer can never
// deadlock) and take() drains the remaining elements before failing.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <limits>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "concur/fault_injection.hpp"

namespace congen {

template <class T>
class BlockingQueue {
 public:
  /// capacity = 0 means unbounded. A capacity of 1 makes the queue a
  /// single-assignment mailbox — the future/M-var of Section III.B.
  explicit BlockingQueue(std::size_t capacity = 0)
      : capacity_(capacity == 0 ? std::numeric_limits<std::size_t>::max() : capacity) {}

  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  /// Blocking put; returns false if the queue is (or becomes) closed.
  bool put(T v) {
    CONGEN_FAULT_POINT(QueuePut);
    std::unique_lock lock(m_);
    notFull_.wait(lock, [&] { return closed_ || q_.size() < capacity_; });
    if (closed_) return false;
    q_.push_back(std::move(v));
    notEmpty_.notify_one();
    return true;
  }

  /// Blocking take; drains remaining elements after close, then fails.
  std::optional<T> take() {
    CONGEN_FAULT_POINT(QueueTake);
    std::unique_lock lock(m_);
    waitForElement(lock);
    if (q_.empty()) return std::nullopt;  // closed and drained
    T v = std::move(q_.front());
    q_.pop_front();
    notFull_.notify_one();
    return v;
  }

  /// Bulk put: publishes `batch` in order under a single lock acquisition,
  /// notifying consumers once per wait cycle (notify_all when more than
  /// one element became visible — a single notify_one would strand all
  /// but one of several blocked consumers). Blocks while the queue is
  /// full, like put(). Returns how many elements were accepted; fewer
  /// than batch.size() means the queue closed mid-batch, and the
  /// unaccepted suffix is left in `batch` (the accepted prefix is
  /// erased) so callers can report or redirect it.
  std::size_t putAll(std::vector<T>& batch) {
    CONGEN_FAULT_POINT(QueuePutAll);
    if (batch.empty()) return 0;
    std::size_t accepted = 0;
    {
      std::unique_lock lock(m_);
      while (accepted < batch.size()) {
        notFull_.wait(lock, [&] { return closed_ || q_.size() < capacity_; });
        if (closed_) break;
        std::size_t moved = 0;
        while (accepted < batch.size() && q_.size() < capacity_) {
          q_.push_back(std::move(batch[accepted]));
          ++accepted;
          ++moved;
        }
        if (moved > 1) {
          notEmpty_.notify_all();
        } else if (moved == 1) {
          notEmpty_.notify_one();
        }
      }
    }
    batch.erase(batch.begin(), batch.begin() + static_cast<std::ptrdiff_t>(accepted));
    return accepted;
  }

  /// Bulk take: blocks until at least one element (or close), then pops
  /// up to `max` elements under the single lock acquisition. Producers
  /// are notified proportionally — freeing k slots wakes up to k blocked
  /// producers, where notify_one would strand k-1 of them. An empty
  /// result means closed-and-drained, mirroring take()'s nullopt.
  std::vector<T> takeUpTo(std::size_t max) {
    CONGEN_FAULT_POINT(QueueTakeUpTo);
    std::vector<T> out;
    if (max == 0) return out;
    std::unique_lock lock(m_);
    waitForElement(lock);
    const std::size_t n = std::min(max, q_.size());
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(std::move(q_.front()));
      q_.pop_front();
    }
    if (n > 1) {
      notFull_.notify_all();
    } else if (n == 1) {
      notFull_.notify_one();
    }
    return out;
  }

  /// Non-blocking put; false when full or closed.
  bool tryPut(T v) {
    CONGEN_FAULT_POINT(QueueTryPut);
    std::lock_guard lock(m_);
    if (closed_ || q_.size() >= capacity_) return false;
    q_.push_back(std::move(v));
    notEmpty_.notify_one();
    return true;
  }

  /// Non-blocking take; nullopt when empty.
  std::optional<T> tryTake() {
    CONGEN_FAULT_POINT(QueueTryTake);
    std::lock_guard lock(m_);
    if (q_.empty()) return std::nullopt;
    T v = std::move(q_.front());
    q_.pop_front();
    notFull_.notify_one();
    return v;
  }

  /// Close the channel: producers' put() fails immediately; consumers
  /// drain what is buffered and then fail. Idempotent.
  void close() {
    CONGEN_FAULT_POINT(QueueClose);
    std::lock_guard lock(m_);
    closed_ = true;
    notFull_.notify_all();
    notEmpty_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock(m_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(m_);
    return q_.size();
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Consumers currently blocked inside take()/takeUpTo() waiting for an
  /// element. A starvation signal for batching producers: a non-zero
  /// value means buffering further values only adds latency. Approximate
  /// by design (read without the queue lock).
  [[nodiscard]] std::size_t waitingConsumers() const noexcept {
    return waitingConsumers_.load(std::memory_order_relaxed);
  }

 private:
  // Wait until an element is available or the queue is closed, keeping
  // the waiting-consumer count accurate across the blocking region.
  void waitForElement(std::unique_lock<std::mutex>& lock) {
    if (closed_ || !q_.empty()) return;
    waitingConsumers_.fetch_add(1, std::memory_order_relaxed);
    notEmpty_.wait(lock, [&] { return closed_ || !q_.empty(); });
    waitingConsumers_.fetch_sub(1, std::memory_order_relaxed);
  }

  mutable std::mutex m_;
  std::condition_variable notFull_;
  std::condition_variable notEmpty_;
  std::deque<T> q_;
  std::size_t capacity_;
  bool closed_ = false;
  std::atomic<std::size_t> waitingConsumers_{0};
};

}  // namespace congen

// blocking_queue.hpp — bounded blocking queue with close/poison semantics.
//
// The communication substrate of the pipe calculus (Section III.B): "a
// blocking channel, or blocking queue, has put and take operations that
// wait until the queue of results is not full or not empty". This is the
// stand-in for Java's BlockingQueue. Closing the queue releases both
// sides: put() returns false (so an abandoned pipe's producer can never
// deadlock) and take() drains the remaining elements before failing.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <limits>
#include <mutex>
#include <optional>
#include <utility>

#include "concur/fault_injection.hpp"

namespace congen {

template <class T>
class BlockingQueue {
 public:
  /// capacity = 0 means unbounded. A capacity of 1 makes the queue a
  /// single-assignment mailbox — the future/M-var of Section III.B.
  explicit BlockingQueue(std::size_t capacity = 0)
      : capacity_(capacity == 0 ? std::numeric_limits<std::size_t>::max() : capacity) {}

  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  /// Blocking put; returns false if the queue is (or becomes) closed.
  bool put(T v) {
    CONGEN_FAULT_POINT(QueuePut);
    std::unique_lock lock(m_);
    notFull_.wait(lock, [&] { return closed_ || q_.size() < capacity_; });
    if (closed_) return false;
    q_.push_back(std::move(v));
    notEmpty_.notify_one();
    return true;
  }

  /// Blocking take; drains remaining elements after close, then fails.
  std::optional<T> take() {
    CONGEN_FAULT_POINT(QueueTake);
    std::unique_lock lock(m_);
    notEmpty_.wait(lock, [&] { return closed_ || !q_.empty(); });
    if (q_.empty()) return std::nullopt;  // closed and drained
    T v = std::move(q_.front());
    q_.pop_front();
    notFull_.notify_one();
    return v;
  }

  /// Non-blocking put; false when full or closed.
  bool tryPut(T v) {
    CONGEN_FAULT_POINT(QueueTryPut);
    std::lock_guard lock(m_);
    if (closed_ || q_.size() >= capacity_) return false;
    q_.push_back(std::move(v));
    notEmpty_.notify_one();
    return true;
  }

  /// Non-blocking take; nullopt when empty.
  std::optional<T> tryTake() {
    CONGEN_FAULT_POINT(QueueTryTake);
    std::lock_guard lock(m_);
    if (q_.empty()) return std::nullopt;
    T v = std::move(q_.front());
    q_.pop_front();
    notFull_.notify_one();
    return v;
  }

  /// Close the channel: producers' put() fails immediately; consumers
  /// drain what is buffered and then fail. Idempotent.
  void close() {
    CONGEN_FAULT_POINT(QueueClose);
    std::lock_guard lock(m_);
    closed_ = true;
    notFull_.notify_all();
    notEmpty_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock(m_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(m_);
    return q_.size();
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  mutable std::mutex m_;
  std::condition_variable notFull_;
  std::condition_variable notEmpty_;
  std::deque<T> q_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace congen

// blocking_queue.hpp — bounded blocking queue with close/poison semantics.
//
// The communication substrate of the pipe calculus (Section III.B): "a
// blocking channel, or blocking queue, has put and take operations that
// wait until the queue of results is not full or not empty". This is the
// stand-in for Java's BlockingQueue. Closing the queue releases both
// sides: put() returns false (so an abandoned pipe's producer can never
// deadlock) and take() drains the remaining elements before failing.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <limits>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "concur/cancel.hpp"
#include "concur/fault_injection.hpp"
#include "obs/runtime_stats.hpp"

namespace congen {

/// Outcome of a cancellable / deadline-bounded queue operation. The
/// precedence when several hold at once is kCancelled > element transfer
/// > kClosed > kTimedOut: cancellation is checked first so a cancelled
/// consumer stops within one operation even with elements buffered,
/// while a *closed* queue still drains (close means end-of-stream, not
/// abandonment).
enum class QueueOpStatus : std::uint8_t { kOk, kClosed, kCancelled, kTimedOut };

/// Absent deadline = wait indefinitely (cancellation/close still apply).
using QueueDeadline = std::optional<std::chrono::steady_clock::time_point>;

template <class T>
class BlockingQueue {
 public:
  /// capacity = 0 means unbounded. A capacity of 1 makes the queue a
  /// single-assignment mailbox — the future/M-var of Section III.B.
  explicit BlockingQueue(std::size_t capacity = 0)
      : capacity_(capacity == 0 ? std::numeric_limits<std::size_t>::max() : capacity) {}

  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  /// Conservation accounting: elements still buffered when the queue
  /// dies were produced but never consumed — they count as dropped, and
  /// leave the aggregate depth gauge (see obs/runtime_stats.hpp). The
  /// destructor runs strictly after the last operation, so the unlocked
  /// read of q_ is safe.
  ~BlockingQueue() {
    if (obs::metricsEnabled() && !q_.empty()) [[unlikely]] {
      auto& s = obs::QueueStats::get();
      s.droppedOnClose.add(q_.size());
      s.depth.sub(static_cast<std::int64_t>(q_.size()));
    }
  }

  /// Blocking put; returns false if the queue is (or becomes) closed.
  bool put(T v) {
    CONGEN_FAULT_POINT(QueuePut);
    std::unique_lock lock(m_);
    const bool metrics = obs::metricsEnabled();
    const auto ready = [&] { return closed_ || q_.size() < capacity_; };
    if (metrics && !ready()) [[unlikely]] {
      timedWait(lock, notFull_, obs::QueueStats::get().blockedPutMicros, ready);
    } else {
      notFull_.wait(lock, ready);
    }
    if (closed_) return false;
    q_.push_back(std::move(v));
    if (metrics) [[unlikely]] countScalarPut();
    notEmpty_.notify_one();
    return true;
  }

  /// Blocking take; drains remaining elements after close, then fails.
  std::optional<T> take() {
    CONGEN_FAULT_POINT(QueueTake);
    std::unique_lock lock(m_);
    const bool metrics = obs::metricsEnabled();
    waitForElement(lock, metrics);
    if (q_.empty()) return std::nullopt;  // closed and drained
    T v = std::move(q_.front());
    q_.pop_front();
    if (metrics) [[unlikely]] countScalarTake();
    notFull_.notify_one();
    return v;
  }

  /// Bulk put: publishes `batch` in order under a single lock acquisition,
  /// notifying consumers once per wait cycle (notify_all when more than
  /// one element became visible — a single notify_one would strand all
  /// but one of several blocked consumers). Blocks while the queue is
  /// full, like put(). Returns how many elements were accepted; fewer
  /// than batch.size() means the queue closed mid-batch, and the
  /// unaccepted suffix is left in `batch` (the accepted prefix is
  /// erased) so callers can report or redirect it.
  std::size_t putAll(std::vector<T>& batch) {
    CONGEN_FAULT_POINT(QueuePutAll);
    if (batch.empty()) return 0;
    std::size_t accepted = 0;
    {
      std::unique_lock lock(m_);
      const bool metrics = obs::metricsEnabled();
      const auto ready = [&] { return closed_ || q_.size() < capacity_; };
      while (accepted < batch.size()) {
        if (metrics && !ready()) [[unlikely]] {
          timedWait(lock, notFull_, obs::QueueStats::get().blockedPutMicros, ready);
        } else {
          notFull_.wait(lock, ready);
        }
        if (closed_) break;
        std::size_t moved = 0;
        while (accepted < batch.size() && q_.size() < capacity_) {
          q_.push_back(std::move(batch[accepted]));
          ++accepted;
          ++moved;
        }
        if (metrics && moved > 0) [[unlikely]] countBulkPut(moved);
        if (moved > 1) {
          notEmpty_.notify_all();
        } else if (moved == 1) {
          notEmpty_.notify_one();
        }
      }
    }
    batch.erase(batch.begin(), batch.begin() + static_cast<std::ptrdiff_t>(accepted));
    return accepted;
  }

  /// Bulk take: blocks until at least one element (or close), then pops
  /// up to `max` elements under the single lock acquisition. Producers
  /// are notified proportionally — freeing k slots wakes up to k blocked
  /// producers, where notify_one would strand k-1 of them. An empty
  /// result means closed-and-drained, mirroring take()'s nullopt.
  std::vector<T> takeUpTo(std::size_t max) {
    CONGEN_FAULT_POINT(QueueTakeUpTo);
    std::vector<T> out;
    if (max == 0) return out;
    std::unique_lock lock(m_);
    const bool metrics = obs::metricsEnabled();
    waitForElement(lock, metrics);
    const std::size_t n = std::min(max, q_.size());
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(std::move(q_.front()));
      q_.pop_front();
    }
    if (metrics && n > 0) [[unlikely]] countBulkTake(n);
    if (n > 1) {
      notFull_.notify_all();
    } else if (n == 1) {
      notFull_.notify_one();
    }
    return out;
  }

  // ---- cancellable / deadline-bounded operations ----------------------
  //
  // The *For family is the cancellation-aware side of the protocol. The
  // uncontended fast path costs one extra relaxed atomic load (the token
  // check); a wakeup callback is registered only when the operation must
  // actually block, and registering on an already-cancelled token never
  // invokes the callback — the loops re-check cancelled() right after
  // registering, which closes the register/cancel race (see cancel.hpp).

  /// put() with cancellation and an optional deadline.
  QueueOpStatus putFor(T v, const CancelToken& token, QueueDeadline deadline = {}) {
    CONGEN_FAULT_POINT(QueuePut);
    CONGEN_FAULT_POINT(QueueTimedWait);
    std::optional<CancelCallback> wake;  // declared before the lock: unregisters after release
    std::unique_lock lock(m_);
    const bool metrics = obs::metricsEnabled();
    for (;;) {
      if (token.cancelled()) return QueueOpStatus::kCancelled;
      if (closed_) return QueueOpStatus::kClosed;
      if (q_.size() < capacity_) {
        q_.push_back(std::move(v));
        if (metrics) [[unlikely]] countScalarPut();
        notEmpty_.notify_one();
        return QueueOpStatus::kOk;
      }
      if (!waitCycle(lock, notFull_, token, deadline, wake, /*consumer=*/false,
                     metrics ? &obs::QueueStats::get().blockedPutMicros : nullptr,
                     [&] { return q_.size() < capacity_; })) {
        return QueueOpStatus::kTimedOut;
      }
    }
  }

  /// putAll() with cancellation and an optional deadline. `accepted`
  /// reports how many elements were published (the accepted prefix is
  /// erased from `batch`, exactly like putAll); kOk means the whole
  /// batch went through.
  QueueOpStatus putAllFor(std::vector<T>& batch, std::size_t& accepted,
                          const CancelToken& token, QueueDeadline deadline = {}) {
    CONGEN_FAULT_POINT(QueuePutAll);
    CONGEN_FAULT_POINT(QueueTimedWait);
    accepted = 0;
    if (batch.empty()) return QueueOpStatus::kOk;
    QueueOpStatus status = QueueOpStatus::kOk;
    {
      std::optional<CancelCallback> wake;
      std::unique_lock lock(m_);
      const bool metrics = obs::metricsEnabled();
      while (accepted < batch.size()) {
        if (token.cancelled()) {
          status = QueueOpStatus::kCancelled;
          break;
        }
        if (closed_) {
          status = QueueOpStatus::kClosed;
          break;
        }
        if (q_.size() < capacity_) {
          std::size_t moved = 0;
          while (accepted < batch.size() && q_.size() < capacity_) {
            q_.push_back(std::move(batch[accepted]));
            ++accepted;
            ++moved;
          }
          if (metrics && moved > 0) [[unlikely]] countBulkPut(moved);
          if (moved > 1) {
            notEmpty_.notify_all();
          } else if (moved == 1) {
            notEmpty_.notify_one();
          }
          continue;
        }
        if (!waitCycle(lock, notFull_, token, deadline, wake, /*consumer=*/false,
                       metrics ? &obs::QueueStats::get().blockedPutMicros : nullptr,
                       [&] { return q_.size() < capacity_; })) {
          status = QueueOpStatus::kTimedOut;
          break;
        }
      }
    }
    batch.erase(batch.begin(), batch.begin() + static_cast<std::ptrdiff_t>(accepted));
    return status;
  }

  /// take() with cancellation and an optional deadline. kOk sets `out`;
  /// kClosed means closed-and-drained. A cancelled consumer returns
  /// kCancelled immediately, *without* draining buffered elements —
  /// cancellation is abandonment, close is end-of-stream.
  QueueOpStatus takeFor(std::optional<T>& out, const CancelToken& token,
                        QueueDeadline deadline = {}) {
    CONGEN_FAULT_POINT(QueueTake);
    CONGEN_FAULT_POINT(QueueTimedWait);
    out.reset();
    std::optional<CancelCallback> wake;
    std::unique_lock lock(m_);
    const bool metrics = obs::metricsEnabled();
    for (;;) {
      if (token.cancelled()) return QueueOpStatus::kCancelled;
      if (!q_.empty()) {
        out = std::move(q_.front());
        q_.pop_front();
        if (metrics) [[unlikely]] countScalarTake();
        notFull_.notify_one();
        return QueueOpStatus::kOk;
      }
      if (closed_) return QueueOpStatus::kClosed;
      if (!waitCycle(lock, notEmpty_, token, deadline, wake, /*consumer=*/true,
                     metrics ? &obs::QueueStats::get().blockedTakeMicros : nullptr,
                     [&] { return !q_.empty(); })) {
        return QueueOpStatus::kTimedOut;
      }
    }
  }

  /// takeUpTo() with cancellation and an optional deadline. kOk fills
  /// `out` with 1..max elements (proportional producer wakeups, like
  /// takeUpTo); kClosed means closed-and-drained.
  QueueOpStatus takeUpToFor(std::vector<T>& out, std::size_t max, const CancelToken& token,
                            QueueDeadline deadline = {}) {
    CONGEN_FAULT_POINT(QueueTakeUpTo);
    CONGEN_FAULT_POINT(QueueTimedWait);
    out.clear();
    if (max == 0) return QueueOpStatus::kOk;
    std::optional<CancelCallback> wake;
    std::unique_lock lock(m_);
    const bool metrics = obs::metricsEnabled();
    for (;;) {
      if (token.cancelled()) return QueueOpStatus::kCancelled;
      if (!q_.empty()) {
        const std::size_t n = std::min(max, q_.size());
        out.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
          out.push_back(std::move(q_.front()));
          q_.pop_front();
        }
        if (metrics) [[unlikely]] countBulkTake(n);
        if (n > 1) {
          notFull_.notify_all();
        } else {
          notFull_.notify_one();
        }
        return QueueOpStatus::kOk;
      }
      if (closed_) return QueueOpStatus::kClosed;
      if (!waitCycle(lock, notEmpty_, token, deadline, wake, /*consumer=*/true,
                     metrics ? &obs::QueueStats::get().blockedTakeMicros : nullptr,
                     [&] { return !q_.empty(); })) {
        return QueueOpStatus::kTimedOut;
      }
    }
  }

  /// Non-blocking put; false when full or closed.
  bool tryPut(T v) {
    CONGEN_FAULT_POINT(QueueTryPut);
    std::lock_guard lock(m_);
    if (closed_ || q_.size() >= capacity_) return false;
    q_.push_back(std::move(v));
    if (obs::metricsEnabled()) [[unlikely]] countScalarPut();
    notEmpty_.notify_one();
    return true;
  }

  /// Non-blocking take; nullopt when empty.
  std::optional<T> tryTake() {
    CONGEN_FAULT_POINT(QueueTryTake);
    std::lock_guard lock(m_);
    if (q_.empty()) return std::nullopt;
    T v = std::move(q_.front());
    q_.pop_front();
    if (obs::metricsEnabled()) [[unlikely]] countScalarTake();
    notFull_.notify_one();
    return v;
  }

  /// Close the channel: producers' put() fails immediately; consumers
  /// drain what is buffered and then fail. Idempotent.
  void close() {
    CONGEN_FAULT_POINT(QueueClose);
    std::lock_guard lock(m_);
    closed_ = true;
    notFull_.notify_all();
    notEmpty_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock(m_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(m_);
    return q_.size();
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Consumers currently blocked inside take()/takeUpTo() waiting for an
  /// element. A starvation signal for batching producers: a non-zero
  /// value means buffering further values only adds latency. Approximate
  /// by design (read without the queue lock).
  [[nodiscard]] std::size_t waitingConsumers() const noexcept {
    return waitingConsumers_.load(std::memory_order_relaxed);
  }

 private:
  // One blocking cycle of a cancellable wait. First call registers the
  // wakeup callback and returns without waiting (the caller re-checks
  // its exit conditions — this is what makes the register/cancel race
  // benign); later calls block on `cv` until the predicate, close,
  // cancel, or the deadline. Returns false only on deadline expiry.
  //
  // Lock-order audit: the callback takes m_ then notifies; it runs on
  // the canceller's thread OUTSIDE the cancel-state mutex, and
  // registration/unregistration take the cancel-state mutex while m_ may
  // be held here — but requestStop never holds the state mutex while
  // acquiring m_, so the ordering m_ → state-mutex is acyclic.
  template <class Ready>
  bool waitCycle(std::unique_lock<std::mutex>& lock, std::condition_variable& cv,
                 const CancelToken& token, const QueueDeadline& deadline,
                 std::optional<CancelCallback>& wake, bool consumer, obs::Histogram* blocked,
                 Ready ready) {
    if (token.canBeCancelled() && !wake) {
      wake.emplace(token, [this] {
        std::lock_guard relock(m_);
        notFull_.notify_all();
        notEmpty_.notify_all();
      });
      return true;  // re-check: a cancel landing before registration is otherwise lost
    }
    auto pred = [&] { return closed_ || token.cancelled() || ready(); };
    if (consumer) waitingConsumers_.fetch_add(1, std::memory_order_relaxed);
    const auto t0 = blocked ? std::chrono::steady_clock::now() : std::chrono::steady_clock::time_point{};
    bool expired = false;
    if (deadline) {
      expired = !cv.wait_until(lock, *deadline, pred);
    } else {
      cv.wait(lock, pred);
    }
    if (blocked) blocked->record(microsSince(t0));
    if (consumer) waitingConsumers_.fetch_sub(1, std::memory_order_relaxed);
    return !expired;
  }

  // Wait until an element is available or the queue is closed, keeping
  // the waiting-consumer count accurate across the blocking region.
  void waitForElement(std::unique_lock<std::mutex>& lock, bool metrics) {
    if (closed_ || !q_.empty()) return;
    waitingConsumers_.fetch_add(1, std::memory_order_relaxed);
    const auto ready = [&] { return closed_ || !q_.empty(); };
    if (metrics) [[unlikely]] {
      timedWait(lock, notEmpty_, obs::QueueStats::get().blockedTakeMicros, ready);
    } else {
      notEmpty_.wait(lock, ready);
    }
    waitingConsumers_.fetch_sub(1, std::memory_order_relaxed);
  }

  // ---- metrics plumbing (enabled path only; see obs/runtime_stats.hpp) --

  static std::uint64_t microsSince(std::chrono::steady_clock::time_point t0) {
    return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                          std::chrono::steady_clock::now() - t0)
                                          .count());
  }

  template <class Ready>
  static void timedWait(std::unique_lock<std::mutex>& lock, std::condition_variable& cv,
                        obs::Histogram& blocked, Ready ready) {
    const auto t0 = std::chrono::steady_clock::now();
    cv.wait(lock, ready);
    blocked.record(microsSince(t0));
  }

  static void countScalarPut() {
    auto& s = obs::QueueStats::get();
    s.putElements.add(1);
    s.depth.add(1);
  }
  static void countScalarTake() {
    auto& s = obs::QueueStats::get();
    s.takeElements.add(1);
    s.depth.sub(1);
  }
  static void countBulkPut(std::size_t moved) {
    auto& s = obs::QueueStats::get();
    s.putBatches.add(1);
    s.putBatchElements.add(moved);
    s.putBatchSize.record(moved);
    s.depth.add(static_cast<std::int64_t>(moved));
  }
  static void countBulkTake(std::size_t n) {
    auto& s = obs::QueueStats::get();
    s.takeBatches.add(1);
    s.takeBatchElements.add(n);
    s.depth.sub(static_cast<std::int64_t>(n));
  }

  mutable std::mutex m_;
  std::condition_variable notFull_;
  std::condition_variable notEmpty_;
  std::deque<T> q_;
  std::size_t capacity_;
  bool closed_ = false;
  std::atomic<std::size_t> waitingConsumers_{0};
};

}  // namespace congen

#include "concur/thread_pool.hpp"

#include <stdexcept>

namespace congen {

ThreadPool::ThreadPool(std::size_t maxThreads) : maxThreads_(maxThreads) {}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(m_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::submit(Task task) {
  std::unique_lock lock(m_);
  if (shutdown_) throw std::runtime_error("ThreadPool: submit after shutdown");
  tasks_.push_back(std::move(task));
  if (idle_ == 0) {
    if (workers_.size() >= maxThreads_) {
      throw std::runtime_error("ThreadPool: thread cap reached");
    }
    workers_.emplace_back([this] { workerLoop(); });
  }
  lock.unlock();
  cv_.notify_one();
}

void ThreadPool::workerLoop() {
  std::unique_lock lock(m_);
  while (true) {
    ++idle_;
    cv_.wait(lock, [&] { return shutdown_ || !tasks_.empty(); });
    --idle_;
    if (shutdown_ && tasks_.empty()) return;
    Task task = std::move(tasks_.front());
    tasks_.pop_front();
    lock.unlock();
    task();  // exceptions from pipe bodies are caught in the pipe itself
    lock.lock();
    ++completed_;
  }
}

std::size_t ThreadPool::threadsCreated() const {
  std::lock_guard lock(m_);
  return workers_.size();
}

std::size_t ThreadPool::tasksCompleted() const {
  std::lock_guard lock(m_);
  return completed_;
}

std::size_t ThreadPool::idleThreads() const {
  std::lock_guard lock(m_);
  return idle_;
}

}  // namespace congen

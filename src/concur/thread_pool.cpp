#include "concur/thread_pool.hpp"

#include <stdexcept>
#include <utility>

#include "concur/fault_injection.hpp"
#include "obs/runtime_stats.hpp"

namespace congen {

ThreadPool::ThreadPool(std::size_t maxThreads) : maxThreads_(maxThreads) {}

ThreadPool::~ThreadPool() { shutdown(); }

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::submit(Task task) {
  CONGEN_FAULT_POINT(PoolSubmit);
  const bool metrics = obs::metricsEnabled();
  std::unique_lock lock(m_);
  if (shutdown_) throw std::runtime_error("ThreadPool: submit after shutdown");
  // Grow whenever the idle workers cannot cover the whole pending queue,
  // not merely when idle_ == 0: a parked worker counted "idle" here may
  // dequeue an *older* task and block in it, and a task stranded that
  // way would have no later growth trigger (deadlock). The invariant
  // after every submit — idle workers >= pending tasks — is what makes
  // nested blocked producers safe.
  const bool needWorker = idle_ < tasks_.size() + 1;
  // Decide growth before enqueueing: a cap rejection must leave the pool
  // exactly as it found it, or the "failed" task would still run later.
  if (needWorker && workers_.size() >= maxThreads_) {
    throw std::runtime_error("ThreadPool: thread cap reached");
  }
  Entry entry{std::move(task), {}};
  if (metrics) entry.enqueued = std::chrono::steady_clock::now();
  tasks_.push_back(std::move(entry));
  if (needWorker) {
    workers_.emplace_back([this] { workerLoop(); });
    ++created_;
    if (metrics) obs::PoolStats::get().threadsCreated.add(1);
  }
  lock.unlock();
  cv_.notify_one();
}

void ThreadPool::submit(Task task, CancelToken token) {
  submit([task = std::move(task), token = std::move(token)] {
    if (token.cancelled()) return;
    task();
  });
}

void ThreadPool::shutdown() {
  // Swap the workers out under the lock so concurrent shutdown() calls
  // (or shutdown racing the destructor) each join a disjoint set, then
  // join outside the lock so retiring workers can reacquire it.
  std::vector<std::thread> workers;
  {
    std::lock_guard lock(m_);
    shutdown_ = true;
    workers.swap(workers_);
  }
  cv_.notify_all();
  for (auto& w : workers) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::workerLoop() {
  // The live gauge is updated unconditionally (worker birth/death is far
  // off any hot path) so toggling metrics mid-run can't unbalance it.
  obs::PoolStats::get().threadsLive.add(1);
  std::unique_lock lock(m_);
  while (true) {
    ++idle_;
    cv_.wait(lock, [&] { return shutdown_ || !tasks_.empty(); });
    --idle_;
    if (shutdown_ && tasks_.empty()) break;
    Entry entry = std::move(tasks_.front());
    tasks_.pop_front();
    lock.unlock();
    const bool metrics = obs::metricsEnabled();
    if (metrics) [[unlikely]] {
      auto& s = obs::PoolStats::get();
      if (entry.enqueued != std::chrono::steady_clock::time_point{}) {
        const auto waited = std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - entry.enqueued);
        s.queueLatencyMicros.record(static_cast<std::uint64_t>(waited.count()));
      }
      s.tasksRun.add(1);
    }
    CONGEN_FAULT_POINT(PoolTaskRun);  // delay-only site: shuffles scheduling
    entry.fn();  // exceptions from pipe bodies are caught in the pipe itself
    // Destroy the task before re-locking: a captured pipe body's
    // destructor closes queues and releases upstream pipes, and must not
    // run under the pool mutex.
    entry.fn = nullptr;
    lock.lock();
    ++completed_;
  }
  lock.unlock();
  obs::PoolStats::get().threadsLive.sub(1);
}

std::size_t ThreadPool::threadsCreated() const {
  std::lock_guard lock(m_);
  return created_;
}

std::size_t ThreadPool::tasksCompleted() const {
  std::lock_guard lock(m_);
  return completed_;
}

std::size_t ThreadPool::idleThreads() const {
  std::lock_guard lock(m_);
  return idle_;
}

}  // namespace congen

#include "concur/thread_pool.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "concur/fault_injection.hpp"
#include "obs/runtime_stats.hpp"

namespace congen {

namespace {

// Worker-affinity bookkeeping: a submit from a pool worker lands on that
// worker's home shard, so a nested pipe's producer tends to run where
// its parent's data is warm.
thread_local ThreadPool* tlsPool = nullptr;
thread_local std::size_t tlsShard = 0;

std::size_t defaultShardCount() {
  const std::size_t hw = std::thread::hardware_concurrency();
  return std::clamp<std::size_t>(hw == 0 ? 2 : hw, 2, 16);
}

}  // namespace

ThreadPool::ThreadPool(std::size_t maxThreads) : maxThreads_(maxThreads) {
  shards_.reserve(defaultShardCount());
  for (std::size_t i = 0; i < defaultShardCount(); ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::submit(Task task) {
  CONGEN_FAULT_POINT(PoolSubmit);
  const bool metrics = obs::metricsEnabled();
  // Pick the shard before taking the pool lock: a worker submits to its
  // own shard, everyone else round-robins.
  const std::size_t target = tlsPool == this
                                 ? tlsShard
                                 : rr_.fetch_add(1, std::memory_order_relaxed) % shards_.size();
  std::unique_lock lock(m_);
  if (shutdown_) throw std::runtime_error("ThreadPool: submit after shutdown");
  // Grow whenever the idle workers cannot cover every pending task, not
  // merely when idle_ == 0: a parked worker counted "idle" here may
  // dequeue an *older* task and block in it, and a task stranded that
  // way would have no later growth trigger (deadlock). The invariant
  // after every submit — idle workers >= pending tasks — is what makes
  // nested blocked producers safe. pending_ only grows under m_, so the
  // decision is exact despite workers decrementing it concurrently
  // (a concurrent claim only makes the decision conservative).
  const bool needWorker = idle_ < pending_.load(std::memory_order_relaxed) + 1;
  // Decide growth before enqueueing: a cap rejection must leave the pool
  // exactly as it found it, or the "failed" task would still run later.
  if (needWorker && workers_.size() >= maxThreads_) {
    throw std::runtime_error("ThreadPool: thread cap reached");
  }
  // Spawn before enqueueing: if thread creation throws (std::system_error
  // on resource exhaustion), the pool is left exactly as found. The
  // reverse order would strand an already-queued task with no grown
  // worker — a silently-broken submit that can deadlock a blocked
  // producer chain. If the enqueue below throws instead, the surplus
  // worker just parks idle, which is harmless.
  if (needWorker) {
    const std::size_t home = homeShardFor(created_);
    workers_.emplace_back([this, home] { workerLoop(home); });
    ++created_;
    if (metrics) obs::PoolStats::get().threadsCreated.add(1);
  }
  Entry entry{std::move(task), {}};
  if (metrics) entry.enqueued = std::chrono::steady_clock::now();
  {
    std::lock_guard shardLock(shards_[target]->m);  // pool -> shard order
    shards_[target]->tasks.push_back(std::move(entry));
  }
  pending_.fetch_add(1, std::memory_order_relaxed);
  lock.unlock();
  cv_.notify_one();
}

void ThreadPool::submit(Task task, CancelToken token) {
  submit([task = std::move(task), token = std::move(token)] {
    if (token.cancelled()) return;
    task();
  });
}

void ThreadPool::shutdown() {
  // Swap the workers out under the lock so concurrent shutdown() calls
  // (or shutdown racing the destructor) each join a disjoint set, then
  // join outside the lock so retiring workers can reacquire it.
  std::vector<std::thread> workers;
  {
    std::lock_guard lock(m_);
    shutdown_ = true;
    workers.swap(workers_);
  }
  cv_.notify_all();
  for (auto& w : workers) {
    if (w.joinable()) w.join();
  }
}

bool ThreadPool::popFrom(std::size_t shard, Entry& out) {
  auto& s = *shards_[shard];
  std::lock_guard lock(s.m);
  if (s.tasks.empty()) return false;
  out = std::move(s.tasks.front());
  s.tasks.pop_front();
  pending_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

bool ThreadPool::findTask(std::size_t home, Entry& out) {
  // Home shard first (front = oldest, matching the old global FIFO for
  // same-shard tasks), then a stealing sweep over the siblings. Both the
  // owner and a thief pop the front under the shard's mutex — the
  // lock-guarded-steal-side variant; with coarse pipe-producer tasks the
  // deque operations are far off the hot path, the win is that distinct
  // pipelines hit distinct locks.
  if (popFrom(home, out)) return true;
  if (shards_.size() > 1) {
    CONGEN_FAULT_POINT(PoolSteal);  // delay-only site: widens steal races
    for (std::size_t i = 1; i < shards_.size(); ++i) {
      if (popFrom((home + i) % shards_.size(), out)) {
        stolen_.fetch_add(1, std::memory_order_relaxed);
        if (obs::metricsEnabled()) [[unlikely]] obs::PoolStats::get().tasksStolen.add(1);
        return true;
      }
    }
  }
  return false;
}

void ThreadPool::workerLoop(std::size_t home) {
  tlsPool = this;
  tlsShard = home;
  // The live gauge is updated unconditionally (worker birth/death is far
  // off any hot path) so toggling metrics mid-run can't unbalance it.
  obs::PoolStats::get().threadsLive.add(1);
  std::unique_lock lock(m_);
  while (true) {
    ++idle_;
    cv_.wait(lock, [&] {
      return shutdown_ || pending_.load(std::memory_order_relaxed) > 0;
    });
    --idle_;
    if (shutdown_ && pending_.load(std::memory_order_relaxed) == 0) break;
    lock.unlock();
    Entry entry;
    // pending_ > 0 does not reserve a task for *this* worker — a sibling
    // may claim it first and the sweep comes up dry; the worker simply
    // parks again.
    const bool got = findTask(home, entry);
    if (got) {
      const bool metrics = obs::metricsEnabled();
      if (metrics) [[unlikely]] {
        auto& s = obs::PoolStats::get();
        if (entry.enqueued != std::chrono::steady_clock::time_point{}) {
          const auto waited = std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - entry.enqueued);
          s.queueLatencyMicros.record(static_cast<std::uint64_t>(waited.count()));
        }
        s.tasksRun.add(1);
      }
      CONGEN_FAULT_POINT(PoolTaskRun);  // delay-only site: shuffles scheduling
      entry.fn();  // exceptions from pipe bodies are caught in the pipe itself
      // Destroy the task before re-locking: a captured pipe body's
      // destructor closes queues and releases upstream pipes, and must
      // not run under the pool mutex.
      entry.fn = nullptr;
    }
    lock.lock();
    // Incremented under the same lock hold that parks the worker idle
    // again (the loop head's ++idle_), so a tasksCompleted() reader that
    // observes the count is guaranteed the worker is reusable.
    if (got) ++completed_;
  }
  lock.unlock();
  obs::PoolStats::get().threadsLive.sub(1);
}

std::size_t ThreadPool::threadsCreated() const {
  std::lock_guard lock(m_);
  return created_;
}

std::size_t ThreadPool::tasksCompleted() const {
  std::lock_guard lock(m_);
  return completed_;
}

std::size_t ThreadPool::idleThreads() const {
  std::lock_guard lock(m_);
  return idle_;
}

}  // namespace congen

// cancel.hpp — structured cancellation for the concurrency layer.
//
// The paper's pipe "iterates until failure" with no way to stop it: an
// abandoned or erroring stage could only be handled by destructor-order
// luck (closing a queue wakes its own producer, but nothing upstream).
// This header provides the explicit termination protocol the coroutine
// literature treats as the composability-critical piece: a StopSource
// requests cancellation, CancelTokens observe it, and registered wakeup
// callbacks get every blocked queue operation out of its wait within one
// operation.
//
// Design rules (audited in docs/INTERNALS.md, "Cancellation, deadlines
// & failure containment"):
//
//  * cancelled() is one relaxed atomic load — the uncontended hot path
//    never takes a lock and never registers anything.
//  * requestStop() sets the flag under the state mutex, then invokes the
//    registered callbacks OUTSIDE it, so a callback may take unrelated
//    locks (the queue mutex) without ordering against the cancel state.
//  * Registering a callback on an already-cancelled token does NOT
//    invoke it; the constructor records the fact instead. Waiters must
//    re-check cancelled() after registering (the blocking-queue loops
//    do), which closes the register/cancel race without ever running a
//    callback on the registering thread while it holds its own locks.
//  * ~CancelCallback blocks until an in-flight invocation on another
//    thread completes (std::stop_callback semantics), so a callback can
//    never outlive the resources it captures.
//  * Sources can be *linked* under a parent token (linkTo): cancelling
//    the parent synchronously requests stop on every linked child. This
//    is how cancelling a downstream pipeline stage cascades to every
//    upstream producer without multi-token wait combinators.
#pragma once

#include <functional>
#include <memory>
#include <vector>

namespace congen {

namespace cancel_detail {
struct CancelState;
struct CallbackNode;
[[nodiscard]] bool cancelledOn(const CancelState& s) noexcept;
bool requestStopOn(const std::shared_ptr<CancelState>& s);
}  // namespace cancel_detail

/// Observer half of a cancellation channel. Copyable, cheap, and safe to
/// read from any thread. A default-constructed token can never be
/// cancelled (canBeCancelled() is false), so APIs taking an optional
/// token accept `CancelToken{}` with zero overhead.
class CancelToken {
 public:
  CancelToken() = default;

  /// Whether a StopSource backs this token at all.
  [[nodiscard]] bool canBeCancelled() const noexcept { return state_ != nullptr; }

  /// One relaxed atomic load; false for a detached token.
  [[nodiscard]] bool cancelled() const noexcept {
    return state_ != nullptr && cancel_detail::cancelledOn(*state_);
  }

 private:
  friend class StopSource;
  friend class CancelCallback;
  explicit CancelToken(std::shared_ptr<cancel_detail::CancelState> s) : state_(std::move(s)) {}
  std::shared_ptr<cancel_detail::CancelState> state_;
};

/// RAII registration of a cancellation wakeup. The callback runs on the
/// thread that calls requestStop(), outside the cancel-state mutex. If
/// the token is already cancelled at construction the callback is NOT
/// invoked (see the header comment: callers re-check cancelled()). The
/// destructor waits for an in-flight invocation on another thread, and
/// tolerates being run from inside its own callback.
class CancelCallback {
 public:
  CancelCallback(const CancelToken& token, std::function<void()> fn);
  ~CancelCallback();
  CancelCallback(const CancelCallback&) = delete;
  CancelCallback& operator=(const CancelCallback&) = delete;

 private:
  std::shared_ptr<cancel_detail::CancelState> state_;
  cancel_detail::CallbackNode* node_ = nullptr;
};

/// Owner half: requests cancellation, observed through token(). A source
/// may additionally be linked under parent tokens, forming the cascade
/// tree the pipeline layer uses (downstream token → upstream sources).
class StopSource {
 public:
  StopSource();
  ~StopSource() = default;
  StopSource(StopSource&&) noexcept = default;
  StopSource& operator=(StopSource&&) noexcept = default;
  StopSource(const StopSource&) = delete;
  StopSource& operator=(const StopSource&) = delete;

  [[nodiscard]] CancelToken token() const noexcept { return CancelToken(state_); }
  [[nodiscard]] bool stopRequested() const noexcept {
    return cancel_detail::cancelledOn(*state_);
  }

  /// Idempotent; returns true for the call that performed the
  /// transition. Invokes registered callbacks (and linked children)
  /// synchronously, outside the state mutex.
  bool requestStop();

  /// Make this source a child of `parent`: cancelling the parent token
  /// requests stop here too, synchronously. An already-cancelled parent
  /// cancels immediately; a detached parent is ignored. Links live as
  /// long as this source (they unregister on destruction/move-out).
  void linkTo(const CancelToken& parent);

 private:
  std::shared_ptr<cancel_detail::CancelState> state_;
  std::vector<std::unique_ptr<CancelCallback>> links_;
};

/// Ambient per-thread token, ScanEnv-style. A pipe's producer installs
/// its own token for the duration of the body drive, so any pipe created
/// lazily *inside* that body links itself under the producer's token and
/// cancellation reaches arbitrarily nested, dynamically-created stages.
class CancelScope {
 public:
  explicit CancelScope(CancelToken token);
  ~CancelScope();
  CancelScope(const CancelScope&) = delete;
  CancelScope& operator=(const CancelScope&) = delete;

  /// The innermost installed token; a detached token when none is.
  [[nodiscard]] static CancelToken current() noexcept;
};

}  // namespace congen

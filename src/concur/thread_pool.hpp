// thread_pool.hpp — cached-growth thread pool with work stealing.
//
// Pipe producers block on a bounded queue for most of their lifetime, so
// a fixed-size pool would deadlock nested pipelines (a stage waiting for
// a worker that is itself blocked producing for it). Like Java's cached
// executor — which the paper's implementation leans on ("thread creation
// and allocation leverage Java's facilities for thread pool management")
// — this pool grows a worker whenever a task is submitted and no worker
// is idle, and parks idle workers for reuse.
//
// Task storage is sharded: a fixed array of cache-line-separated deques,
// each behind its own small mutex (the lock-guarded-steal-side variant
// of a work-stealing pool). A worker pops its home shard first and
// sweeps the siblings when it runs dry, so N independent pipelines stop
// serializing their submit/dequeue traffic on one lock. A submit from a
// pool worker lands on that worker's own shard (locality for nested
// pipes); external submits round-robin. The pool-level mutex still
// arbitrates growth, idle parking, and shutdown — those paths run once
// per task or less, and keeping them under one lock preserves the exact
// growth accounting the tests pin down (a burst of B blocked tasks grows
// the pool by exactly B). Lock order is pool mutex -> shard mutex;
// workers never take the pool mutex while holding a shard's.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "concur/cancel.hpp"

namespace congen {

class ThreadPool {
 public:
  using Task = std::function<void()>;

  /// maxThreads is a runaway-safety cap, far above any sane pipeline depth.
  explicit ThreadPool(std::size_t maxThreads = 4096);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Process-wide pool used by pipes unless one is passed explicitly.
  static ThreadPool& global();

  /// Enqueue a task; grows the pool whenever the idle workers cannot
  /// cover the pending tasks (so a blocked task can never strand a later
  /// one). Throws std::runtime_error after shutdown or at the thread
  /// cap; a rejected task is NOT enqueued (submit is all-or-nothing).
  void submit(Task task);

  /// Cancellation-aware submit: if `token` is already cancelled when a
  /// worker picks the task up, the body is skipped entirely (the task
  /// still counts as completed). Queued-but-doomed work behind a slow
  /// task thus costs one relaxed load instead of a full run.
  void submit(Task task, CancelToken token);

  /// Stop accepting work, drain queued tasks, and join all workers.
  /// Idempotent, and safe to race with concurrent submit() calls (they
  /// throw once the flag is set). Must not be called from a pool task —
  /// a worker joining itself would deadlock. The destructor calls this.
  void shutdown();

  /// Statistics (for tests and the ablation benches). threadsCreated
  /// counts workers spawned over the pool's lifetime (it does not drop
  /// at shutdown). tasksStolen counts dequeues that swept a task from a
  /// shard other than the worker's home.
  [[nodiscard]] std::size_t threadsCreated() const;
  [[nodiscard]] std::size_t tasksCompleted() const;
  [[nodiscard]] std::size_t idleThreads() const;
  [[nodiscard]] std::size_t tasksStolen() const noexcept {
    return stolen_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t shardCount() const noexcept { return shards_.size(); }

 private:
  /// A queued task plus its enqueue timestamp. The stamp is taken only
  /// while metrics are enabled (default time_point otherwise), feeding
  /// the pool.queue_latency_micros histogram at dequeue.
  struct Entry {
    Task fn;
    std::chrono::steady_clock::time_point enqueued{};
  };

  /// One task deque, padded so two shards' locks never share a line.
  struct alignas(64) Shard {
    std::mutex m;
    std::deque<Entry> tasks;
  };

  void workerLoop(std::size_t home);
  bool findTask(std::size_t home, Entry& out);
  bool popFrom(std::size_t shard, Entry& out);
  [[nodiscard]] std::size_t homeShardFor(std::size_t worker) const noexcept {
    return worker % shards_.size();
  }

  // Pool-level state: growth, parking, shutdown, and the deterministic
  // idle/completed accounting all live under m_.
  mutable std::mutex m_;
  std::condition_variable cv_;
  std::vector<std::thread> workers_;
  std::size_t maxThreads_;
  std::size_t created_ = 0;
  std::size_t idle_ = 0;
  std::size_t completed_ = 0;
  bool shutdown_ = false;

  // Sharded task storage. The vector itself is immutable after
  // construction; only the per-shard deques (under their own locks) and
  // the counters change. pending_ is the total queued-but-unclaimed
  // count: incremented under m_ by submit (so the growth invariant
  // idle >= pending stays exact) and decremented lock-free-ish by
  // whichever worker claims the task under its shard's lock.
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::size_t> pending_{0};
  std::atomic<std::size_t> rr_{0};      // round-robin cursor, external submits
  std::atomic<std::size_t> stolen_{0};  // cross-shard dequeues
};

}  // namespace congen

// thread_pool.hpp — cached-growth thread pool.
//
// Pipe producers block on a bounded queue for most of their lifetime, so
// a fixed-size pool would deadlock nested pipelines (a stage waiting for
// a worker that is itself blocked producing for it). Like Java's cached
// executor — which the paper's implementation leans on ("thread creation
// and allocation leverage Java's facilities for thread pool management")
// — this pool grows a worker whenever a task is submitted and no worker
// is idle, and parks idle workers for reuse.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "concur/cancel.hpp"

namespace congen {

class ThreadPool {
 public:
  using Task = std::function<void()>;

  /// maxThreads is a runaway-safety cap, far above any sane pipeline depth.
  explicit ThreadPool(std::size_t maxThreads = 4096);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Process-wide pool used by pipes unless one is passed explicitly.
  static ThreadPool& global();

  /// Enqueue a task; grows the pool whenever the idle workers cannot
  /// cover the pending queue (so a blocked task can never strand a later
  /// one). Throws std::runtime_error after shutdown or at the thread
  /// cap; a rejected task is NOT enqueued (submit is all-or-nothing).
  void submit(Task task);

  /// Cancellation-aware submit: if `token` is already cancelled when a
  /// worker picks the task up, the body is skipped entirely (the task
  /// still counts as completed). Queued-but-doomed work behind a slow
  /// task thus costs one relaxed load instead of a full run.
  void submit(Task task, CancelToken token);

  /// Stop accepting work, drain queued tasks, and join all workers.
  /// Idempotent, and safe to race with concurrent submit() calls (they
  /// throw once the flag is set). Must not be called from a pool task —
  /// a worker joining itself would deadlock. The destructor calls this.
  void shutdown();

  /// Statistics (for tests and the ablation benches). threadsCreated
  /// counts workers spawned over the pool's lifetime (it does not drop
  /// at shutdown).
  [[nodiscard]] std::size_t threadsCreated() const;
  [[nodiscard]] std::size_t tasksCompleted() const;
  [[nodiscard]] std::size_t idleThreads() const;

 private:
  /// A queued task plus its enqueue timestamp. The stamp is taken only
  /// while metrics are enabled (default time_point otherwise), feeding
  /// the pool.queue_latency_micros histogram at dequeue.
  struct Entry {
    Task fn;
    std::chrono::steady_clock::time_point enqueued{};
  };

  void workerLoop();

  mutable std::mutex m_;
  std::condition_variable cv_;
  std::deque<Entry> tasks_;
  std::vector<std::thread> workers_;
  std::size_t maxThreads_;
  std::size_t created_ = 0;
  std::size_t idle_ = 0;
  std::size_t completed_ = 0;
  bool shutdown_ = false;
};

}  // namespace congen

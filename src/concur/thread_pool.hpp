// thread_pool.hpp — cached-growth thread pool.
//
// Pipe producers block on a bounded queue for most of their lifetime, so
// a fixed-size pool would deadlock nested pipelines (a stage waiting for
// a worker that is itself blocked producing for it). Like Java's cached
// executor — which the paper's implementation leans on ("thread creation
// and allocation leverage Java's facilities for thread pool management")
// — this pool grows a worker whenever a task is submitted and no worker
// is idle, and parks idle workers for reuse.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace congen {

class ThreadPool {
 public:
  using Task = std::function<void()>;

  /// maxThreads is a runaway-safety cap, far above any sane pipeline depth.
  explicit ThreadPool(std::size_t maxThreads = 4096);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Process-wide pool used by pipes unless one is passed explicitly.
  static ThreadPool& global();

  /// Enqueue a task; spawns a worker if none is idle. Throws
  /// std::runtime_error after shutdown or at the thread cap.
  void submit(Task task);

  /// Statistics (for tests and the ablation benches).
  [[nodiscard]] std::size_t threadsCreated() const;
  [[nodiscard]] std::size_t tasksCompleted() const;
  [[nodiscard]] std::size_t idleThreads() const;

 private:
  void workerLoop();

  mutable std::mutex m_;
  std::condition_variable cv_;
  std::deque<Task> tasks_;
  std::vector<std::thread> workers_;
  std::size_t maxThreads_;
  std::size_t idle_ = 0;
  std::size_t completed_ = 0;
  bool shutdown_ = false;
};

}  // namespace congen

// fault_injection.hpp — deterministic fault injection for the
// concurrency layer (congen::testing::FaultInjector).
//
// The stress suite needs to shake schedules loose: a race between
// close() and a blocked put(), or between shutdown and submit, may only
// materialize when one side is delayed by a few hundred microseconds at
// exactly the wrong moment. This hook lets tests insert randomized
// delays — and, at the sites where callers already handle failure,
// randomized thrown failures — at the queue put/take and pool submit
// boundaries, driven by a fixed seed so a reproduction is one number.
//
// The hooks follow the trace.hpp idiom: process-global, off by default,
// and the disabled cost is a single relaxed atomic load per hook. They
// are compiled in only under CONGEN_FAULT_INJECTION (the `tsan` and
// `asan-ubsan` CMake presets set it); a production build contains no
// hook code at all. Code paths never depend on the macro being set —
// tests query FaultInjector::compiledIn() and skip when it is not.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>

namespace congen::testing {

/// Instrumented boundaries in src/concur. kCount is a sentinel.
enum class FaultSite : std::uint8_t {
  QueuePut = 0,   // BlockingQueue::put entry (failure-capable)
  QueueTake,      // BlockingQueue::take entry (delay only)
  QueueTryPut,    // BlockingQueue::tryPut entry (failure-capable)
  QueueTryTake,   // BlockingQueue::tryTake entry (failure-capable)
  QueueClose,     // BlockingQueue::close entry (delay only)
  PoolSubmit,     // ThreadPool::submit entry (failure-capable)
  PoolTaskRun,    // worker about to run a task (delay only)
  QueuePutAll,    // BlockingQueue::putAll entry (failure-capable)
  QueueTakeUpTo,  // BlockingQueue::takeUpTo entry (delay only)
  PipeBatchFlush, // Pipe producer about to publish a batch (delay only)
  QueueTimedWait, // timed/cancellable queue op (putFor family) entry (delay only)
  CancelSignal,   // StopSource::requestStop entry (delay only)
  PoolSteal,      // worker about to sweep sibling deques for work (delay only)
  ArenaAlloc,     // arena operator-new fall-through (failure-capable: 305)
  RcAlloc,        // RcBase payload allocation (failure-capable: 305)
  ServeAccept,    // serve listener about to accept() (failure-capable)
  ServeWrite,     // serve socket write-loop iteration (failure-capable:
                  // a throw mid-loop leaves a partial frame on the wire,
                  // exactly the torn-write path the daemon must survive)
  kCount,
};

[[nodiscard]] const char* faultSiteName(FaultSite site) noexcept;

/// Sites where a thrown InjectedFault is part of the caller's existing
/// failure contract (put/tryPut/tryTake return failure, submit throws).
[[nodiscard]] bool faultSiteFailureCapable(FaultSite site) noexcept;

/// Thrown by an armed failure-capable site. Derives from runtime_error
/// so code that already tolerates submit/put failure handles it
/// unchanged; tests can still catch the precise type.
class InjectedFault : public std::runtime_error {
 public:
  explicit InjectedFault(FaultSite site)
      : std::runtime_error(std::string("injected fault at ") + faultSiteName(site)),
        site_(site) {}
  [[nodiscard]] FaultSite site() const noexcept { return site_; }

 private:
  FaultSite site_;
};

/// Per-site behaviour. Probabilities are per-mille (0..1000) so the
/// configuration stays integral and exact across platforms.
struct SitePolicy {
  std::uint32_t delayPerMille = 0;   // chance a hook sleeps
  std::uint32_t maxDelayMicros = 0;  // sleep duration drawn in [1, max]
  std::uint32_t failPerMille = 0;    // chance a hook throws InjectedFault
};

class FaultInjector {
 public:
  /// Whether the hooks exist in this build (CONGEN_FAULT_INJECTION).
  [[nodiscard]] static constexpr bool compiledIn() noexcept {
#if defined(CONGEN_FAULT_INJECTION)
    return true;
#else
    return false;
#endif
  }

  static FaultInjector& instance();

  /// Arm every site with `policy`, seeded deterministically. Failure
  /// injection is honored only at failure-capable sites (see FaultSite);
  /// delay-only sites take just the delay part. Resets all counters.
  void arm(std::uint64_t seed, const SitePolicy& policy);

  /// Override one site's policy (applied verbatim — caller is
  /// responsible for only configuring failures where they are safe).
  void armSite(FaultSite site, const SitePolicy& policy);

  /// Disable all injection. Idempotent.
  void disarm();

  [[nodiscard]] bool armed() const noexcept {
    return armed_.load(std::memory_order_relaxed);
  }

  /// Counters since the last arm().
  [[nodiscard]] std::uint64_t hits(FaultSite site) const;
  [[nodiscard]] std::uint64_t delaysInjected() const;
  [[nodiscard]] std::uint64_t failuresInjected() const;

  /// The hook: called by the instrumented code. Near-free when
  /// disarmed (one relaxed load); may sleep or throw when armed.
  static void inject(FaultSite site) {
    auto& self = instance();
    if (!self.armed()) [[likely]] return;
    self.injectSlow(site);
  }

 private:
  FaultInjector() = default;
  void injectSlow(FaultSite site);

  static constexpr std::size_t kSites = static_cast<std::size_t>(FaultSite::kCount);

  std::atomic<bool> armed_{false};
  std::atomic<std::uint64_t> seed_{0};
  std::atomic<std::uint64_t> sequence_{0};
  mutable std::mutex policyMutex_;             // guards policies_
  std::array<SitePolicy, kSites> policies_{};
  std::array<std::atomic<std::uint64_t>, kSites> hits_{};
  std::atomic<std::uint64_t> delays_{0};
  std::atomic<std::uint64_t> failures_{0};
};

/// RAII arming for tests: arms on construction, disarms on destruction.
class ScopedFaultInjection {
 public:
  ScopedFaultInjection(std::uint64_t seed, const SitePolicy& policy) {
    FaultInjector::instance().arm(seed, policy);
  }
  ~ScopedFaultInjection() { FaultInjector::instance().disarm(); }
  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;
};

}  // namespace congen::testing

// Hook macro used inside src/concur. Expands to nothing unless the
// build defines CONGEN_FAULT_INJECTION, so release binaries carry zero
// instrumentation.
#if defined(CONGEN_FAULT_INJECTION)
#define CONGEN_FAULT_POINT(site) \
  ::congen::testing::FaultInjector::inject(::congen::testing::FaultSite::site)
#else
#define CONGEN_FAULT_POINT(site) ((void)0)
#endif

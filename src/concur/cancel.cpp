#include "concur/cancel.hpp"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <utility>

#include "concur/fault_injection.hpp"

namespace congen {

namespace cancel_detail {

struct CallbackNode {
  std::function<void()> fn;
};

struct CancelState {
  std::mutex m;
  std::condition_variable done;  // signals completion of the running callback
  std::atomic<bool> cancelled{false};
  std::vector<CallbackNode*> callbacks;   // registered, not yet invoked
  CallbackNode* running = nullptr;        // being invoked right now
  std::thread::id runningThread;
};

bool cancelledOn(const CancelState& s) noexcept {
  return s.cancelled.load(std::memory_order_relaxed);
}

bool requestStopOn(const std::shared_ptr<CancelState>& s) {
  CONGEN_FAULT_POINT(CancelSignal);
  std::unique_lock lock(s->m);
  if (s->cancelled.load(std::memory_order_relaxed)) return false;
  // Flag first, callbacks after: anything registered from here on (it
  // serializes on s->m) observes cancelled() and re-checks instead of
  // expecting an invocation.
  s->cancelled.store(true, std::memory_order_release);
  while (!s->callbacks.empty()) {
    CallbackNode* node = s->callbacks.back();
    s->callbacks.pop_back();
    s->running = node;
    s->runningThread = std::this_thread::get_id();
    // Move the callable out so the node may be freed from within its own
    // invocation (a callback destroying its own registration).
    auto fn = std::move(node->fn);
    lock.unlock();
    fn();
    lock.lock();
    s->running = nullptr;
    s->done.notify_all();
  }
  return true;
}

}  // namespace cancel_detail

using cancel_detail::CallbackNode;
using cancel_detail::CancelState;

CancelCallback::CancelCallback(const CancelToken& token, std::function<void()> fn)
    : state_(token.state_) {
  if (!state_) return;
  std::lock_guard lock(state_->m);
  if (state_->cancelled.load(std::memory_order_relaxed)) return;  // caller re-checks
  node_ = new CallbackNode{std::move(fn)};
  state_->callbacks.push_back(node_);
}

CancelCallback::~CancelCallback() {
  if (!node_) return;
  std::unique_lock lock(state_->m);
  auto& cbs = state_->callbacks;
  for (auto it = cbs.begin(); it != cbs.end(); ++it) {
    if (*it == node_) {  // not yet invoked: plain removal
      cbs.erase(it);
      lock.unlock();
      delete node_;
      return;
    }
  }
  // Invoked or in flight. If another thread is running it, wait until it
  // finishes so the callable's captures cannot dangle; if *this* thread
  // is running it (self-destruction from inside the callback), the
  // callable was moved out already and the node is safe to free.
  state_->done.wait(lock, [&] {
    return state_->running != node_ || state_->runningThread == std::this_thread::get_id();
  });
  lock.unlock();
  delete node_;
}

StopSource::StopSource() : state_(std::make_shared<CancelState>()) {}

bool StopSource::requestStop() { return cancel_detail::requestStopOn(state_); }

void StopSource::linkTo(const CancelToken& parent) {
  if (!parent.canBeCancelled() || !state_) return;
  std::weak_ptr<CancelState> weak = state_;
  links_.push_back(std::make_unique<CancelCallback>(parent, [weak] {
    if (auto s = weak.lock()) cancel_detail::requestStopOn(s);
  }));
  // Registration on a cancelled token does not invoke — close the race
  // by checking after the link is in place.
  if (parent.cancelled()) requestStop();
}

namespace {

std::vector<CancelToken>& scopeStack() {
  thread_local std::vector<CancelToken> stack;
  return stack;
}

}  // namespace

CancelScope::CancelScope(CancelToken token) { scopeStack().push_back(std::move(token)); }

CancelScope::~CancelScope() { scopeStack().pop_back(); }

CancelToken CancelScope::current() noexcept {
  auto& stack = scopeStack();
  return stack.empty() ? CancelToken{} : stack.back();
}

}  // namespace congen

// channel.hpp — transport selection for the pipe's output channel.
//
// Every `|> e` has exactly one producer (the pool task driving the body)
// and one consumer (the activation site), so `Pipe` can almost always
// run on the lock-free SpscRing. `Channel<T>` is the thin facade that
// makes the choice: it holds either a ring or a BlockingQueue behind the
// identical operation set, decided once at construction and immutable
// thereafter (one branch per call, no virtual dispatch, both arms
// inlineable).
//
// Selection policy (kAuto):
//   * SpscRing  — bounded capacity in (0, kMaxSpscCapacity]. This is
//     every real pipe: futures (capacity 1), default pipes (1024), and
//     pipeline stages.
//   * BlockingQueue — unbounded channels (capacity 0 = unbounded is a
//     queue-only concept; a ring must pre-size its slot array) and
//     absurd capacities whose pow2 slot array would be all committed
//     memory up front. Callers that genuinely multiplex one channel
//     across several producers or consumers (fan-in/fan-out built on
//     `pipe->queue()`) must request kMutex explicitly — the ring's
//     1P/1C contract is a threading precondition the facade cannot
//     verify at runtime.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "concur/blocking_queue.hpp"
#include "concur/cancel.hpp"
#include "concur/spsc_ring.hpp"

namespace congen {

/// Which transport a Channel (and so a Pipe) runs on.
enum class ChannelTransport : std::uint8_t {
  kAuto,  ///< SPSC ring when the capacity permits, else BlockingQueue
  kSpsc,  ///< force the lock-free ring (capacity is clamped to >= 1)
  kMutex, ///< force the mutex queue (required for shared fan-in/fan-out)
};

template <class T>
class Channel {
 public:
  /// Rings above this capacity would commit a >8M-slot array up front;
  /// such channels are effectively unbounded and take the queue.
  static constexpr std::size_t kMaxSpscCapacity = std::size_t{1} << 20;

  explicit Channel(std::size_t capacity, ChannelTransport transport = ChannelTransport::kAuto) {
    const bool spsc = transport == ChannelTransport::kSpsc ||
                      (transport == ChannelTransport::kAuto && capacity != 0 &&
                       capacity <= kMaxSpscCapacity);
    if (spsc) {
      ring_ = std::make_unique<SpscRing<T>>(capacity);
    } else {
      queue_ = std::make_unique<BlockingQueue<T>>(capacity);
    }
  }

  /// True when the lock-free path was selected.
  [[nodiscard]] bool lockFree() const noexcept { return ring_ != nullptr; }

  bool put(T v) { return ring_ ? ring_->put(std::move(v)) : queue_->put(std::move(v)); }
  std::optional<T> take() { return ring_ ? ring_->take() : queue_->take(); }
  std::size_t putAll(std::vector<T>& batch) {
    return ring_ ? ring_->putAll(batch) : queue_->putAll(batch);
  }
  std::vector<T> takeUpTo(std::size_t max) {
    return ring_ ? ring_->takeUpTo(max) : queue_->takeUpTo(max);
  }

  QueueOpStatus putFor(T v, const CancelToken& token, QueueDeadline deadline = {}) {
    return ring_ ? ring_->putFor(std::move(v), token, deadline)
                 : queue_->putFor(std::move(v), token, deadline);
  }
  QueueOpStatus putAllFor(std::vector<T>& batch, std::size_t& accepted, const CancelToken& token,
                          QueueDeadline deadline = {}) {
    return ring_ ? ring_->putAllFor(batch, accepted, token, deadline)
                 : queue_->putAllFor(batch, accepted, token, deadline);
  }
  QueueOpStatus takeFor(std::optional<T>& out, const CancelToken& token,
                        QueueDeadline deadline = {}) {
    return ring_ ? ring_->takeFor(out, token, deadline) : queue_->takeFor(out, token, deadline);
  }
  QueueOpStatus takeUpToFor(std::vector<T>& out, std::size_t max, const CancelToken& token,
                            QueueDeadline deadline = {}) {
    return ring_ ? ring_->takeUpToFor(out, max, token, deadline)
                 : queue_->takeUpToFor(out, max, token, deadline);
  }

  bool tryPut(T v) { return ring_ ? ring_->tryPut(std::move(v)) : queue_->tryPut(std::move(v)); }
  std::optional<T> tryTake() { return ring_ ? ring_->tryTake() : queue_->tryTake(); }

  void close() { ring_ ? ring_->close() : queue_->close(); }
  [[nodiscard]] bool closed() const noexcept { return ring_ ? ring_->closed() : queue_->closed(); }
  [[nodiscard]] std::size_t size() const noexcept { return ring_ ? ring_->size() : queue_->size(); }
  [[nodiscard]] std::size_t capacity() const noexcept {
    return ring_ ? ring_->capacity() : queue_->capacity();
  }
  [[nodiscard]] std::size_t waitingConsumers() const noexcept {
    return ring_ ? ring_->waitingConsumers() : queue_->waitingConsumers();
  }

 private:
  // Exactly one of these is set, for the Channel's whole lifetime.
  std::unique_ptr<SpscRing<T>> ring_;
  std::unique_ptr<BlockingQueue<T>> queue_;
};

}  // namespace congen

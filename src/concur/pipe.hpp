// pipe.hpp — the multithreaded generator proxy (`|> e`, Section III.B).
//
// A pipe is "a generator proxy for a co-expression that runs in a
// separate thread and iterates until failure, and that uses a blocking
// channel for the communication of results":
//
//   |>e → new Iterator() { next() { new Thread { run() {
//      c=|<>e; while (!fail) { out.put(@c); }}}.start() }}
//
// The producer drives the co-expression on a pool thread, putting each
// result into a bounded queue; activation (@) is queue take. Bounding the
// queue capacity throttles the producer. Destroying a pipe closes the
// queue, which makes the producer's put() fail so an abandoned pipe can
// never deadlock a worker. A capacity-1 pipe over a singleton expression
// is a future.
//
// Structured cancellation (see cancel.hpp): every pipe owns a
// StopSource, and every queue wait on either side uses that pipe's own
// token. Cross-pipe propagation is purely source-to-token linking —
// cancelWith() makes this pipe a child of another token, and a pipe
// created *inside* a producer body links itself under the ambient
// CancelScope automatically, so cancelling a downstream consumer
// unblocks every upstream producer within one queue operation.
//
// Failure containment: a producer-side run-time error (IconError) is
// stored, the pipe's own token is stopped (cascading to linked upstream
// pipes), and the error re-surfaces exactly once from the consumer's
// activate() after the delivered prefix drains. The consumer
// distinguishes containment from abandonment: a cancelled take with a
// pending producer error falls back to plain (non-cancellable) drains of
// the already-closed queue, so the flushed prefix is never lost to the
// pipe's own error-triggered stop. Any non-IconError
// producer exception is wrapped into the typed IconError 801 (injected
// test faults pass through verbatim so the stress suite can assert on
// them). After the rethrow — or after cancellation — the pipe is
// *finished*: further activations deterministically fail (nullopt)
// without touching the dead queue.
#pragma once

#include <exception>
#include <iosfwd>
#include <vector>

#include "concur/cancel.hpp"
#include "concur/channel.hpp"
#include "concur/thread_pool.hpp"
#include "kernel/coexpression.hpp"

namespace congen {

class Pipe final : public CoExpression {
 public:
  static constexpr std::size_t kDefaultCapacity = 1024;
  /// Upper bound for the adaptive producer-side batch. Batching moves
  /// whole segments through the queue (one lock + one notify per batch)
  /// instead of paying that cost per element. A cap of 1 disables
  /// batching entirely; capacity <= 1 pipes (futures/mailboxes) are
  /// always unbatched regardless of the cap.
  static constexpr std::size_t kDefaultBatch = 64;

  /// Create and immediately start producing on a pool thread. The
  /// transport defaults to kAuto: a bounded pipe (every future, default
  /// pipe, and pipeline stage) rides the lock-free SPSC ring; unbounded
  /// capacities fall back to the mutex queue. Pass kMutex when the
  /// channel will be shared across threads beyond the pipe's own 1P/1C
  /// pair (fan-in/fan-out built on queue()).
  Pipe(GenFactory factory, std::size_t capacity, ThreadPool& pool,
       std::size_t batchCap = kDefaultBatch,
       ChannelTransport transport = ChannelTransport::kAuto);
  ~Pipe() override;

  static Rc<Pipe> create(GenFactory factory,
                         std::size_t capacity = kDefaultCapacity,
                         ThreadPool& pool = ThreadPool::global(),
                         std::size_t batchCap = kDefaultBatch,
                         ChannelTransport transport = ChannelTransport::kAuto) {
    return makeRc<Pipe>(std::move(factory), capacity, pool, batchCap, transport);
  }

  /// Activation = take from the output channel. A run-time error raised
  /// inside the producer is re-thrown here, on the consumer's thread,
  /// exactly once; afterwards the pipe is finished and activation fails.
  std::optional<Value> activate() override;

  /// Deadline-bounded activation: fails once `deadline` passes with no
  /// result available, WITHOUT finishing the pipe — a timed-out pipe can
  /// be re-activated (the deadline bounds waiting, not computation).
  std::optional<Value> activateUntil(std::chrono::steady_clock::time_point deadline) override;

  /// Request cancellation: wakes the producer out of its current queue
  /// operation (and, through linked sources, every upstream producer);
  /// the consumer side observes end-of-stream. Idempotent.
  void cancel() {
    if (obs::metricsEnabled()) [[unlikely]] {
      obs::PipeStats::get().cancellations.add(1);
    }
    state_->source.requestStop();
  }

  [[nodiscard]] bool cancelRequested() const noexcept { return state_->source.stopRequested(); }

  /// This pipe's own cancellation token — the one every queue wait on
  /// this pipe uses, and the linking point for upstream stages.
  [[nodiscard]] CancelToken cancelToken() const noexcept { return state_->source.token(); }

  /// Link this pipe under `token`: when `token` is cancelled, this pipe
  /// is cancelled too (synchronously). The pipeline layer links each
  /// upstream stage under its downstream consumer's token.
  void cancelWith(const CancelToken& token) { state_->source.linkTo(token); }

  /// ^p: a fresh pipe over a fresh environment copy.
  [[nodiscard]] CoExprPtr refreshed() const override;

  /// The output channel, "exposed as a public field to permit further
  /// manipulation" (Section III.B). NOTE: on the default transport this
  /// is a 1-producer/1-consumer ring — manipulation from extra threads
  /// requires constructing the pipe with ChannelTransport::kMutex.
  /// Debug builds enforce this: concurrent same-side ring ops trip an
  /// assert naming the kMutex escape hatch (size/closed/capacity stay
  /// any-thread safe).
  [[nodiscard]] const std::shared_ptr<Channel<Value>>& queue() const noexcept {
    return state_->queue;
  }

  /// True when this pipe's channel runs on the lock-free SPSC ring.
  [[nodiscard]] bool lockFree() const noexcept { return state_->queue->lockFree(); }

  /// Effective batch cap after clamping to the queue capacity (1 means
  /// the pipe runs the unbatched per-element protocol).
  [[nodiscard]] std::size_t batchCap() const noexcept { return batchCap_; }

  /// Diagnostic dump of every live pipe in the process (queue depth,
  /// close/cancel flags, results delivered) — the payload of the
  /// congen-run --timeout watchdog, so a hung pipeline fails fast with
  /// state instead of eating a CI job limit.
  static void dumpAll(std::ostream& os);

 private:
  /// State shared with the producer task; outlives the Pipe if the
  /// consumer abandons it mid-stream.
  struct State {
    State(std::size_t capacity, ChannelTransport transport)
        : queue(std::make_shared<Channel<Value>>(capacity, transport)) {}
    std::shared_ptr<Channel<Value>> queue;
    StopSource source;              // the pipe's cancellation channel
    std::exception_ptr error;       // producer-side run-time error
    std::mutex errorMutex;
  };

  /// Tag for the delegated constructor: `capacity` has already been
  /// through the governor's pipe-depth clamp. The public constructor
  /// resolves the clamp exactly once and delegates, so a concurrent
  /// setquota("pipedepth") can never leave state_ and capacity_
  /// disagreeing about the actual queue capacity.
  struct Resolved {};
  Pipe(Resolved, GenFactory factory, std::size_t capacity, ThreadPool& pool,
       std::size_t batchCap, ChannelTransport transport);

  std::optional<Value> step(QueueDeadline deadline);
  [[nodiscard]] bool producerErrorPending() const;

  // First member: the pipe quota must trip (812) before the queue is
  // allocated or a producer submitted. The base CoExpression already
  // charged the co-expression budget — a pipe is one, and counts there
  // too.
  governor::PipeCharge quotaCharge_;
  std::shared_ptr<State> state_;
  std::size_t capacity_;
  ThreadPool* pool_;
  std::size_t batchCap_;
  ChannelTransport transport_;
  // produced_/finished_ are relaxed atomics solely so the watchdog's
  // dumpAll can read them from another thread; there is no ordering
  // requirement (single consumer).
  std::atomic<std::size_t> produced_{0};
  std::atomic<bool> finished_{false};
  // Consumer-side prefetch: activate() refills this from takeUpToFor()
  // so a burst of buffered results costs one lock acquisition, not one
  // each.
  std::vector<Value> drained_;
  std::size_t drainedPos_ = 0;
};

/// Kernel node for `|> e`: yields a started pipe once per cycle.
GenPtr makePipeCreateGen(GenFactory bodyFactory, std::size_t capacity = Pipe::kDefaultCapacity,
                         ThreadPool& pool = ThreadPool::global(),
                         std::size_t batchCap = Pipe::kDefaultBatch,
                         ChannelTransport transport = ChannelTransport::kAuto);

/// A future: a capacity-1 pipe computing a single value in the
/// background; get() blocks for the result.
///
/// Failure vs error are distinguishable, matching Icon: get() returns
/// nullopt when the expression *failed* (produced no value), and
/// re-throws a producer-side run-time error (IconError) — on the first
/// AND on every subsequent call, so a caller that observes the error
/// once cannot mistake the future for a mere failure later.
class FutureValue {
 public:
  explicit FutureValue(GenFactory factory, ThreadPool& pool = ThreadPool::global());

  /// Block until the value is available; nullopt if the expression
  /// failed; re-throws (every time) if it errored.
  std::optional<Value> get();

 private:
  Rc<Pipe> pipe_;
  std::optional<Value> cached_;
  std::exception_ptr error_;
  bool resolved_ = false;
};

}  // namespace congen

// pipe.hpp — the multithreaded generator proxy (`|> e`, Section III.B).
//
// A pipe is "a generator proxy for a co-expression that runs in a
// separate thread and iterates until failure, and that uses a blocking
// channel for the communication of results":
//
//   |>e → new Iterator() { next() { new Thread { run() {
//      c=|<>e; while (!fail) { out.put(@c); }}}.start() }}
//
// The producer drives the co-expression on a pool thread, putting each
// result into a bounded queue; activation (@) is queue take. Bounding the
// queue capacity throttles the producer. Destroying a pipe closes the
// queue, which makes the producer's put() fail so an abandoned pipe can
// never deadlock a worker. A capacity-1 pipe over a singleton expression
// is a future.
#pragma once

#include <exception>
#include <vector>

#include "concur/blocking_queue.hpp"
#include "concur/thread_pool.hpp"
#include "kernel/coexpression.hpp"

namespace congen {

class Pipe final : public CoExpression {
 public:
  static constexpr std::size_t kDefaultCapacity = 1024;
  /// Upper bound for the adaptive producer-side batch. Batching moves
  /// whole segments through the queue (one lock + one notify per batch)
  /// instead of paying that cost per element. A cap of 1 disables
  /// batching entirely; capacity <= 1 pipes (futures/mailboxes) are
  /// always unbatched regardless of the cap.
  static constexpr std::size_t kDefaultBatch = 64;

  /// Create and immediately start producing on a pool thread.
  Pipe(GenFactory factory, std::size_t capacity, ThreadPool& pool,
       std::size_t batchCap = kDefaultBatch);
  ~Pipe() override;

  static std::shared_ptr<Pipe> create(GenFactory factory,
                                      std::size_t capacity = kDefaultCapacity,
                                      ThreadPool& pool = ThreadPool::global(),
                                      std::size_t batchCap = kDefaultBatch) {
    return std::make_shared<Pipe>(std::move(factory), capacity, pool, batchCap);
  }

  /// Activation = take from the output channel. A run-time error raised
  /// inside the producer is re-thrown here, on the consumer's thread.
  std::optional<Value> activate() override;

  /// ^p: a fresh pipe over a fresh environment copy.
  [[nodiscard]] CoExprPtr refreshed() const override;

  /// The output channel, "exposed as a public field to permit further
  /// manipulation" (Section III.B).
  [[nodiscard]] const std::shared_ptr<BlockingQueue<Value>>& queue() const noexcept {
    return state_->queue;
  }

  /// Effective batch cap after clamping to the queue capacity (1 means
  /// the pipe runs the unbatched per-element protocol).
  [[nodiscard]] std::size_t batchCap() const noexcept { return batchCap_; }

 private:
  /// State shared with the producer task; outlives the Pipe if the
  /// consumer abandons it mid-stream.
  struct State {
    explicit State(std::size_t capacity) : queue(std::make_shared<BlockingQueue<Value>>(capacity)) {}
    std::shared_ptr<BlockingQueue<Value>> queue;
    std::exception_ptr error;       // producer-side run-time error
    std::mutex errorMutex;
  };

  std::shared_ptr<State> state_;
  std::size_t capacity_;
  ThreadPool* pool_;
  std::size_t batchCap_;
  std::size_t produced_ = 0;
  // Consumer-side prefetch: activate() refills this from takeUpTo() so a
  // burst of buffered results costs one lock acquisition, not one each.
  std::vector<Value> drained_;
  std::size_t drainedPos_ = 0;
};

/// Kernel node for `|> e`: yields a started pipe once per cycle.
GenPtr makePipeCreateGen(GenFactory bodyFactory, std::size_t capacity = Pipe::kDefaultCapacity,
                         ThreadPool& pool = ThreadPool::global(),
                         std::size_t batchCap = Pipe::kDefaultBatch);

/// A future: a capacity-1 pipe computing a single value in the
/// background; get() blocks for the result (fails if the expression
/// failed).
class FutureValue {
 public:
  explicit FutureValue(GenFactory factory, ThreadPool& pool = ThreadPool::global());

  /// Block until the value is available; nullopt if the expression failed.
  std::optional<Value> get();

 private:
  std::shared_ptr<Pipe> pipe_;
  std::optional<Value> cached_;
  bool resolved_ = false;
};

}  // namespace congen

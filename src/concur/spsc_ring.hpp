// spsc_ring.hpp — bounded lock-free single-producer/single-consumer ring.
//
// The paper models every `|> e` as exactly one producer (the pool thread
// driving the co-expression) feeding exactly one consumer (the activation
// site), which is precisely the topology a wait-free ring exploits: the
// producer owns `tail_`, the consumer owns `head_`, and an element
// crosses threads through one release store / one acquire load instead
// of a mutex and two condition variables. The transfer fast path takes
// no lock and performs no syscall; blocking is handled by futex parking
// (std::atomic-wait on non-Linux) that only the slow path touches.
//
// The ring implements the full BlockingQueue contract — scalar and bulk
// ops, the timed/cancellable *For family with QueueOpStatus precedence
// (kCancelled > transfer > kClosed > kTimedOut), close/drain semantics,
// and the exact conservation metrics of obs/runtime_stats.hpp — so
// `Pipe` can select it transparently (see channel.hpp). Memory-order
// audit lives in docs/INTERNALS.md, "Lock-free transport & work
// stealing"; the short version:
//
//  * publication:  producer writes slot, then `tail_.store(release)`;
//    consumer `tail_.load(acquire)`, then reads the slot. Symmetrically
//    for slot reuse via `head_`. These two edges are the only
//    synchronization the transferred data needs.
//  * parking: a waiter loads its sequence word, publishes its parked
//    flag, issues a seq_cst fence, re-checks the condition, and only
//    then waits on the sequence word. A waker (the opposite side,
//    close(), or a cancel callback) issues the matching seq_cst fence
//    after its state change and, if the parked flag is visible, bumps
//    the sequence word and futex-wakes it. Either the waker sees the
//    flag (and the bump invalidates the waiter's loaded sequence), or
//    the waiter's re-check sees the state change — the store-buffer
//    interleaving where both miss is forbidden by the fence pair, so a
//    wakeup can never be lost.
//
// THREADING CONTRACT: at most one thread calls the put-side ops and at
// most one thread calls the take-side ops at any moment (the sides may
// migrate threads only with external happens-before, exactly like a
// Pipe handed across stages). close(), cancel wakeups, size(), closed()
// and capacity() are safe from any thread.
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <optional>
#include <utility>
#include <vector>

#if defined(__linux__)
#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <climits>
#include <ctime>
#else
#include <thread>
#endif

#include "concur/blocking_queue.hpp"  // QueueOpStatus, QueueDeadline
#include "concur/cancel.hpp"
#include "concur/fault_injection.hpp"
#include "obs/runtime_stats.hpp"

namespace congen {

namespace spsc_detail {

/// Wake every waiter parked on `w`. On Linux this is one FUTEX_WAKE
/// syscall; elsewhere it falls back to std::atomic::notify_all.
inline void wakeAll(std::atomic<std::uint32_t>& w) noexcept {
#if defined(__linux__)
  static_assert(sizeof(std::atomic<std::uint32_t>) == 4);
  ::syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(&w), FUTEX_WAKE_PRIVATE, INT_MAX,
            nullptr, nullptr, 0);
#else
  w.notify_all();
#endif
}

/// Block until `w != expected`, a wake arrives, or `deadline` passes.
/// Returns false only on deadline expiry; spurious returns are fine —
/// every caller re-checks its exit conditions in a loop.
inline bool waitUntil(std::atomic<std::uint32_t>& w, std::uint32_t expected,
                      const QueueDeadline& deadline) noexcept {
#if defined(__linux__)
  for (;;) {
    if (w.load(std::memory_order_acquire) != expected) return true;
    struct timespec ts {};
    struct timespec* tsp = nullptr;
    if (deadline) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= *deadline) return false;
      const auto rel = std::chrono::duration_cast<std::chrono::nanoseconds>(*deadline - now);
      ts.tv_sec = static_cast<time_t>(rel.count() / 1000000000);
      ts.tv_nsec = static_cast<long>(rel.count() % 1000000000);
      tsp = &ts;
    }
    // FUTEX_WAIT measures its relative timeout against CLOCK_MONOTONIC,
    // matching the steady_clock deadline.
    const long rc = ::syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(&w),
                              FUTEX_WAIT_PRIVATE, expected, tsp, nullptr, 0);
    if (rc == 0) return true;        // woken (possibly spuriously)
    if (errno == ETIMEDOUT) return false;
    if (errno == EINTR) continue;    // recompute the timeout and retry
    return true;                     // EAGAIN: the word already changed
  }
#else
  if (!deadline) {
    w.wait(expected, std::memory_order_acquire);
    return true;
  }
  // Portable timed fallback: bounded sleep-poll. Only the slow (already
  // blocked) path pays this; the transfer fast path never reaches here.
  while (w.load(std::memory_order_acquire) == expected) {
    if (std::chrono::steady_clock::now() >= *deadline) return false;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  return true;
#endif
}

#ifndef NDEBUG
/// Debug-build guard for the ring's 1P/1C contract: each side's ops
/// flip a busy flag for the duration of the call, so two threads
/// concurrently inside the same side — the UB `Pipe::queue()` warns
/// about — trip an assert with a pointed message instead of racing
/// silently. Relaxed on purpose: the guard must not add happens-before
/// edges that could hide the underlying race from TSan. Legal side
/// migration (external happens-before between old and new thread)
/// never overlaps, so the guard cannot misfire on it.
class SideGuard {
 public:
  explicit SideGuard(std::atomic<bool>& busy) noexcept : busy_(busy) {
    const bool wasBusy = busy_.exchange(true, std::memory_order_relaxed);
    assert(!wasBusy &&
           "SpscRing: concurrent calls on one side; build the Pipe/Channel with "
           "ChannelTransport::kMutex to share a side across threads");
    (void)wasBusy;
  }
  ~SideGuard() { busy_.store(false, std::memory_order_relaxed); }
  SideGuard(const SideGuard&) = delete;
  SideGuard& operator=(const SideGuard&) = delete;

 private:
  std::atomic<bool>& busy_;
};
#define CONGEN_SPSC_SIDE_GUARD(flag) ::congen::spsc_detail::SideGuard spscSideGuard_(flag)
#else
#define CONGEN_SPSC_SIDE_GUARD(flag) ((void)0)
#endif

}  // namespace spsc_detail

template <class T>
class SpscRing {
 public:
  /// `capacity` must be >= 1 and is honored exactly (the backing buffer
  /// rounds up to a power of two, but the full-test uses `capacity`, so
  /// a capacity-1000 ring throttles at 1000 elements like the queue).
  explicit SpscRing(std::size_t capacity) : bound_(capacity == 0 ? 1 : capacity) {
    std::size_t slots = 1;
    while (slots < bound_) slots <<= 1;
    slots_.resize(slots);
    mask_ = slots - 1;
    if (obs::metricsEnabled()) [[unlikely]] {
      obs::RingStats::get().created.add(1);
    }
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Conservation accounting, mirroring ~BlockingQueue: elements still
  /// buffered at destruction were produced but never consumed. The
  /// destructor runs strictly after the last operation on either side,
  /// so the relaxed reads see the final indices.
  ~SpscRing() {
    const std::uint64_t remaining =
        tail_.load(std::memory_order_relaxed) - head_.load(std::memory_order_relaxed);
    if (obs::metricsEnabled() && remaining > 0) [[unlikely]] {
      auto& s = obs::QueueStats::get();
      s.droppedOnClose.add(remaining);
      s.depth.sub(static_cast<std::int64_t>(remaining));
    }
  }

  // ---- plain blocking ops (BlockingQueue-compatible) -------------------

  /// Blocking put; returns false if the ring is (or becomes) closed.
  bool put(T v) {
    CONGEN_FAULT_POINT(QueuePut);
    CONGEN_SPSC_SIDE_GUARD(putBusy_);
    const bool metrics = obs::metricsEnabled();
    for (;;) {
      if (closed_.load(std::memory_order_acquire)) return false;
      const std::uint64_t t = tail_.load(std::memory_order_relaxed);
      if (spaceFor(t) == 0) {
        parkProducer(metrics);
        continue;
      }
      slots_[t & mask_] = std::move(v);
      tail_.store(t + 1, std::memory_order_release);
      if (metrics) [[unlikely]] countScalarPut();
      wakeConsumerIfParked();
      return true;
    }
  }

  /// Blocking take; drains remaining elements after close, then fails.
  std::optional<T> take() {
    CONGEN_FAULT_POINT(QueueTake);
    CONGEN_SPSC_SIDE_GUARD(takeBusy_);
    const bool metrics = obs::metricsEnabled();
    for (;;) {
      const std::uint64_t h = head_.load(std::memory_order_relaxed);
      if (availableAt(h) > 0) {
        T v = std::move(slots_[h & mask_]);
        head_.store(h + 1, std::memory_order_release);
        if (metrics) [[unlikely]] countScalarTake();
        wakeProducerIfParked();
        return v;
      }
      // Close-then-drain: observe closed_ (acquire) strictly after the
      // empty check, then re-load tail_ — any element published before
      // the close is visible to that re-load.
      if (closed_.load(std::memory_order_acquire)) {
        if (availableAt(h) > 0) continue;
        return std::nullopt;
      }
      parkConsumer(metrics);
    }
  }

  /// Bulk put: publishes as much of `batch` as fits per wakeup cycle,
  /// each group with a single release store. Returns how many elements
  /// were accepted; fewer than batch.size() means the ring closed
  /// mid-batch, and the accepted prefix is erased from `batch`.
  std::size_t putAll(std::vector<T>& batch) {
    CONGEN_FAULT_POINT(QueuePutAll);
    CONGEN_SPSC_SIDE_GUARD(putBusy_);
    if (batch.empty()) return 0;
    const bool metrics = obs::metricsEnabled();
    std::size_t accepted = 0;
    while (accepted < batch.size()) {
      if (closed_.load(std::memory_order_acquire)) break;
      const std::uint64_t t = tail_.load(std::memory_order_relaxed);
      const std::size_t spare = spaceFor(t);
      if (spare == 0) {
        parkProducer(metrics);
        continue;
      }
      const std::size_t n = std::min(spare, batch.size() - accepted);
      publishFrom(batch, accepted, t, n, metrics);
      accepted += n;
    }
    batch.erase(batch.begin(), batch.begin() + static_cast<std::ptrdiff_t>(accepted));
    return accepted;
  }

  /// Bulk take: blocks until at least one element (or close), then pops
  /// up to `max` with a single release store of the new head. An empty
  /// result means closed-and-drained.
  std::vector<T> takeUpTo(std::size_t max) {
    CONGEN_FAULT_POINT(QueueTakeUpTo);
    CONGEN_SPSC_SIDE_GUARD(takeBusy_);
    std::vector<T> out;
    if (max == 0) return out;
    const bool metrics = obs::metricsEnabled();
    for (;;) {
      const std::uint64_t h = head_.load(std::memory_order_relaxed);
      const std::size_t avail = availableAt(h);
      if (avail > 0) {
        popInto(out, h, std::min(max, avail), metrics);
        return out;
      }
      if (closed_.load(std::memory_order_acquire)) {
        if (availableAt(h) > 0) continue;  // published before the close
        return out;
      }
      parkConsumer(metrics);
    }
  }

  // ---- cancellable / deadline-bounded ops ------------------------------
  //
  // Same register-then-recheck protocol as BlockingQueue: the first wait
  // cycle only registers the cancel wakeup and returns so the caller
  // re-checks its exit conditions — a cancel landing before registration
  // is otherwise lost. The wakeup callback bumps both sequence words and
  // futex-wakes both sides; it touches only atomics, so the lock-order
  // audit of cancel.hpp is trivially satisfied (there is no lock).

  /// put() with cancellation and an optional deadline.
  QueueOpStatus putFor(T v, const CancelToken& token, QueueDeadline deadline = {}) {
    CONGEN_FAULT_POINT(QueuePut);
    CONGEN_FAULT_POINT(QueueTimedWait);
    CONGEN_SPSC_SIDE_GUARD(putBusy_);
    const bool metrics = obs::metricsEnabled();
    std::optional<CancelCallback> wake;
    bool timedOut = false;
    for (;;) {
      if (token.cancelled()) return QueueOpStatus::kCancelled;
      if (closed_.load(std::memory_order_acquire)) return QueueOpStatus::kClosed;
      const std::uint64_t t = tail_.load(std::memory_order_relaxed);
      if (spaceFor(t) > 0) {
        slots_[t & mask_] = std::move(v);
        tail_.store(t + 1, std::memory_order_release);
        if (metrics) [[unlikely]] countScalarPut();
        wakeConsumerIfParked();
        return QueueOpStatus::kOk;
      }
      if (timedOut) return QueueOpStatus::kTimedOut;
      if (registerWake(token, wake)) continue;
      timedOut = !parkProducerFor(token, deadline, metrics);
    }
  }

  /// putAll() with cancellation and an optional deadline; `accepted`
  /// reports the published prefix (erased from `batch`).
  QueueOpStatus putAllFor(std::vector<T>& batch, std::size_t& accepted, const CancelToken& token,
                          QueueDeadline deadline = {}) {
    CONGEN_FAULT_POINT(QueuePutAll);
    CONGEN_FAULT_POINT(QueueTimedWait);
    CONGEN_SPSC_SIDE_GUARD(putBusy_);
    accepted = 0;
    if (batch.empty()) return QueueOpStatus::kOk;
    const bool metrics = obs::metricsEnabled();
    std::optional<CancelCallback> wake;
    QueueOpStatus status = QueueOpStatus::kOk;
    bool timedOut = false;
    while (accepted < batch.size()) {
      if (token.cancelled()) {
        status = QueueOpStatus::kCancelled;
        break;
      }
      if (closed_.load(std::memory_order_acquire)) {
        status = QueueOpStatus::kClosed;
        break;
      }
      const std::uint64_t t = tail_.load(std::memory_order_relaxed);
      const std::size_t spare = spaceFor(t);
      if (spare > 0) {
        const std::size_t n = std::min(spare, batch.size() - accepted);
        publishFrom(batch, accepted, t, n, metrics);
        accepted += n;
        continue;
      }
      if (timedOut) {
        status = QueueOpStatus::kTimedOut;
        break;
      }
      if (registerWake(token, wake)) continue;
      timedOut = !parkProducerFor(token, deadline, metrics);
    }
    batch.erase(batch.begin(), batch.begin() + static_cast<std::ptrdiff_t>(accepted));
    return status;
  }

  /// take() with cancellation and an optional deadline. kOk sets `out`;
  /// kClosed means closed-and-drained; a cancelled consumer returns
  /// kCancelled without draining (cancellation is abandonment).
  QueueOpStatus takeFor(std::optional<T>& out, const CancelToken& token,
                        QueueDeadline deadline = {}) {
    CONGEN_FAULT_POINT(QueueTake);
    CONGEN_FAULT_POINT(QueueTimedWait);
    CONGEN_SPSC_SIDE_GUARD(takeBusy_);
    out.reset();
    const bool metrics = obs::metricsEnabled();
    std::optional<CancelCallback> wake;
    bool timedOut = false;
    for (;;) {
      if (token.cancelled()) return QueueOpStatus::kCancelled;
      const std::uint64_t h = head_.load(std::memory_order_relaxed);
      if (availableAt(h) > 0) {
        out = std::move(slots_[h & mask_]);
        head_.store(h + 1, std::memory_order_release);
        if (metrics) [[unlikely]] countScalarTake();
        wakeProducerIfParked();
        return QueueOpStatus::kOk;
      }
      if (closed_.load(std::memory_order_acquire)) {
        if (availableAt(h) > 0) continue;
        return QueueOpStatus::kClosed;
      }
      if (timedOut) return QueueOpStatus::kTimedOut;
      if (registerWake(token, wake)) continue;
      timedOut = !parkConsumerFor(token, deadline, metrics);
    }
  }

  /// takeUpTo() with cancellation and an optional deadline.
  QueueOpStatus takeUpToFor(std::vector<T>& out, std::size_t max, const CancelToken& token,
                            QueueDeadline deadline = {}) {
    CONGEN_FAULT_POINT(QueueTakeUpTo);
    CONGEN_FAULT_POINT(QueueTimedWait);
    CONGEN_SPSC_SIDE_GUARD(takeBusy_);
    out.clear();
    if (max == 0) return QueueOpStatus::kOk;
    const bool metrics = obs::metricsEnabled();
    std::optional<CancelCallback> wake;
    bool timedOut = false;
    for (;;) {
      if (token.cancelled()) return QueueOpStatus::kCancelled;
      const std::uint64_t h = head_.load(std::memory_order_relaxed);
      const std::size_t avail = availableAt(h);
      if (avail > 0) {
        popInto(out, h, std::min(max, avail), metrics);
        return QueueOpStatus::kOk;
      }
      if (closed_.load(std::memory_order_acquire)) {
        if (availableAt(h) > 0) continue;
        return QueueOpStatus::kClosed;
      }
      if (timedOut) return QueueOpStatus::kTimedOut;
      if (registerWake(token, wake)) continue;
      timedOut = !parkConsumerFor(token, deadline, metrics);
    }
  }

  // ---- non-blocking ops ------------------------------------------------

  /// Non-blocking put; false when full or closed.
  bool tryPut(T v) {
    CONGEN_FAULT_POINT(QueueTryPut);
    CONGEN_SPSC_SIDE_GUARD(putBusy_);
    if (closed_.load(std::memory_order_acquire)) return false;
    const std::uint64_t t = tail_.load(std::memory_order_relaxed);
    if (spaceFor(t) == 0) return false;
    slots_[t & mask_] = std::move(v);
    tail_.store(t + 1, std::memory_order_release);
    if (obs::metricsEnabled()) [[unlikely]] countScalarPut();
    wakeConsumerIfParked();
    return true;
  }

  /// Non-blocking take; nullopt when empty.
  std::optional<T> tryTake() {
    CONGEN_FAULT_POINT(QueueTryTake);
    CONGEN_SPSC_SIDE_GUARD(takeBusy_);
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    if (availableAt(h) == 0) return std::nullopt;
    T v = std::move(slots_[h & mask_]);
    head_.store(h + 1, std::memory_order_release);
    if (obs::metricsEnabled()) [[unlikely]] countScalarTake();
    wakeProducerIfParked();
    return v;
  }

  // ---- lifecycle / introspection ---------------------------------------

  /// Close the channel: the producer's put fails, the consumer drains
  /// what is buffered and then fails. Idempotent, callable from any
  /// thread (only atomics are touched).
  void close() {
    CONGEN_FAULT_POINT(QueueClose);
    closed_.store(true, std::memory_order_seq_cst);
    bumpAndWake(notFullSeq_);
    bumpAndWake(notEmptySeq_);
  }

  [[nodiscard]] bool closed() const noexcept { return closed_.load(std::memory_order_acquire); }

  /// Approximate from any thread (the two indices are read unordered);
  /// exact from either owning side.
  [[nodiscard]] std::size_t size() const noexcept {
    const std::uint64_t t = tail_.load(std::memory_order_relaxed);
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    return t >= h ? static_cast<std::size_t>(t - h) : 0;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return bound_; }

  /// Starvation signal for the adaptive batcher: 1 while the consumer is
  /// parked waiting for data (SPSC — there is at most one).
  [[nodiscard]] std::size_t waitingConsumers() const noexcept {
    return consumerParked_.load(std::memory_order_relaxed) != 0 ? 1 : 0;
  }

 private:
  // spare slots from the producer's view; refreshes the cached head on a
  // full reading so the common case never touches the consumer's line.
  [[nodiscard]] std::size_t spaceFor(std::uint64_t t) noexcept {
    if (t - cachedHead_ >= bound_) {
      cachedHead_ = head_.load(std::memory_order_acquire);
    }
    return bound_ - static_cast<std::size_t>(t - cachedHead_);
  }

  // buffered elements from the consumer's view; refreshes the cached
  // tail on an empty reading.
  [[nodiscard]] std::size_t availableAt(std::uint64_t h) noexcept {
    if (cachedTail_ == h) {
      cachedTail_ = tail_.load(std::memory_order_acquire);
    }
    return static_cast<std::size_t>(cachedTail_ - h);
  }

  // The bulk copies run over the ring's (at most two) contiguous spans
  // instead of masking every index: std::move / insert over pointer
  // ranges lower to memmove for trivially copyable T, which is most of
  // the bulk path's per-element cost.
  void publishFrom(std::vector<T>& batch, std::size_t from, std::uint64_t t, std::size_t n,
                   bool metrics) {
    const std::size_t start = static_cast<std::size_t>(t) & mask_;
    const std::size_t firstSpan = std::min(n, slots_.size() - start);
    const auto src = batch.begin() + static_cast<std::ptrdiff_t>(from);
    std::move(src, src + static_cast<std::ptrdiff_t>(firstSpan),
              slots_.begin() + static_cast<std::ptrdiff_t>(start));
    std::move(src + static_cast<std::ptrdiff_t>(firstSpan), src + static_cast<std::ptrdiff_t>(n),
              slots_.begin());
    tail_.store(t + n, std::memory_order_release);
    if (metrics) [[unlikely]] countBulkPut(n);
    wakeConsumerIfParked();
  }

  void popInto(std::vector<T>& out, std::uint64_t h, std::size_t n, bool metrics) {
    const std::size_t start = static_cast<std::size_t>(h) & mask_;
    const std::size_t firstSpan = std::min(n, slots_.size() - start);
    const auto base = slots_.begin() + static_cast<std::ptrdiff_t>(start);
    out.reserve(out.size() + n);
    out.insert(out.end(), std::make_move_iterator(base),
               std::make_move_iterator(base + static_cast<std::ptrdiff_t>(firstSpan)));
    out.insert(out.end(), std::make_move_iterator(slots_.begin()),
               std::make_move_iterator(slots_.begin() + static_cast<std::ptrdiff_t>(n - firstSpan)));
    head_.store(h + n, std::memory_order_release);
    if (metrics) [[unlikely]] countBulkTake(n);
    wakeProducerIfParked();
  }

  // First wait cycle with a cancellable token: register the wakeup and
  // return true so the caller re-checks (closing the register/cancel
  // race). The callback only bumps/wakes atomics — safe from the
  // canceller's thread with arbitrary locks held.
  bool registerWake(const CancelToken& token, std::optional<CancelCallback>& wake) {
    if (!token.canBeCancelled() || wake) return false;
    wake.emplace(token, [this] {
      bumpAndWake(notFullSeq_);
      bumpAndWake(notEmptySeq_);
    });
    return true;
  }

  static void bumpAndWake(std::atomic<std::uint32_t>& seq) noexcept {
    seq.fetch_add(1, std::memory_order_release);
    spsc_detail::wakeAll(seq);
  }

  // Waker side of the fence-paired parking protocol (see file header).
  void wakeConsumerIfParked() noexcept {
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (consumerParked_.load(std::memory_order_relaxed) != 0) [[unlikely]] {
      consumerParked_.store(0, std::memory_order_relaxed);
      if (obs::metricsEnabled()) [[unlikely]] obs::RingStats::get().wakes.add(1);
      bumpAndWake(notEmptySeq_);
    }
  }

  void wakeProducerIfParked() noexcept {
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (producerParked_.load(std::memory_order_relaxed) != 0) [[unlikely]] {
      producerParked_.store(0, std::memory_order_relaxed);
      if (obs::metricsEnabled()) [[unlikely]] obs::RingStats::get().wakes.add(1);
      bumpAndWake(notFullSeq_);
    }
  }

  // Waiter side. Load the sequence word FIRST, publish the parked flag,
  // fence, re-check every exit condition, then wait on the loaded value:
  // any waker that ran after the load bumped the word, so the wait
  // returns immediately. Returns false only on deadline expiry.
  bool parkProducerFor(const CancelToken& token, const QueueDeadline& deadline, bool metrics) {
    const std::uint32_t s = notFullSeq_.load(std::memory_order_acquire);
    producerParked_.store(1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    // The counterpart index must be loaded acquire: when the re-check
    // sees space, the caller's spaceFor() trusts this cached value and
    // skips its own acquire reload, so this load is the only edge
    // ordering the subsequent slot overwrite after the consumer's take
    // (the seq_cst fence *precedes* the load and grants it no acquire
    // semantics).
    cachedHead_ = head_.load(std::memory_order_acquire);
    const std::uint64_t t = tail_.load(std::memory_order_relaxed);
    if (t - cachedHead_ < bound_ || closed_.load(std::memory_order_relaxed) ||
        token.cancelled()) {
      producerParked_.store(0, std::memory_order_relaxed);
      return true;
    }
    bool expired = false;
    if (metrics) [[unlikely]] {
      obs::RingStats::get().producerParks.add(1);
      const auto t0 = std::chrono::steady_clock::now();
      expired = !spsc_detail::waitUntil(notFullSeq_, s, deadline);
      obs::QueueStats::get().blockedPutMicros.record(microsSince(t0));
    } else {
      expired = !spsc_detail::waitUntil(notFullSeq_, s, deadline);
    }
    producerParked_.store(0, std::memory_order_relaxed);
    return !expired;
  }

  bool parkConsumerFor(const CancelToken& token, const QueueDeadline& deadline, bool metrics) {
    const std::uint32_t s = notEmptySeq_.load(std::memory_order_acquire);
    consumerParked_.store(1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    // Acquire for the same reason as parkProducerFor: a re-check that
    // sees data feeds availableAt() through the cache, skipping its
    // acquire reload, and the slot read needs this load to order after
    // the producer's release publication.
    cachedTail_ = tail_.load(std::memory_order_acquire);
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    if (cachedTail_ != h || closed_.load(std::memory_order_relaxed) || token.cancelled()) {
      consumerParked_.store(0, std::memory_order_relaxed);
      return true;
    }
    bool expired = false;
    if (metrics) [[unlikely]] {
      obs::RingStats::get().consumerParks.add(1);
      const auto t0 = std::chrono::steady_clock::now();
      expired = !spsc_detail::waitUntil(notEmptySeq_, s, deadline);
      obs::QueueStats::get().blockedTakeMicros.record(microsSince(t0));
    } else {
      expired = !spsc_detail::waitUntil(notEmptySeq_, s, deadline);
    }
    consumerParked_.store(0, std::memory_order_relaxed);
    return !expired;
  }

  void parkProducer(bool metrics) { parkProducerFor(CancelToken{}, QueueDeadline{}, metrics); }
  void parkConsumer(bool metrics) { parkConsumerFor(CancelToken{}, QueueDeadline{}, metrics); }

  // ---- metrics (same ledger as BlockingQueue; relaxed striped atomics,
  // exact at quiescence — the conservation Environment polls teardown
  // until the books settle) ---------------------------------------------

  static std::uint64_t microsSince(std::chrono::steady_clock::time_point t0) {
    return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                          std::chrono::steady_clock::now() - t0)
                                          .count());
  }

  static void countScalarPut() {
    auto& s = obs::QueueStats::get();
    s.putElements.add(1);
    s.depth.add(1);
  }
  static void countScalarTake() {
    auto& s = obs::QueueStats::get();
    s.takeElements.add(1);
    s.depth.sub(1);
  }
  static void countBulkPut(std::size_t moved) {
    auto& s = obs::QueueStats::get();
    s.putBatches.add(1);
    s.putBatchElements.add(moved);
    s.putBatchSize.record(moved);
    s.depth.add(static_cast<std::int64_t>(moved));
  }
  static void countBulkTake(std::size_t n) {
    auto& s = obs::QueueStats::get();
    s.takeBatches.add(1);
    s.takeBatchElements.add(n);
    s.depth.sub(static_cast<std::int64_t>(n));
  }

  // Producer-owned line: tail index plus the producer's cached view of
  // the consumer's head.
  alignas(64) std::atomic<std::uint64_t> tail_{0};
  std::uint64_t cachedHead_ = 0;
  // Consumer-owned line.
  alignas(64) std::atomic<std::uint64_t> head_{0};
  std::uint64_t cachedTail_ = 0;
  // Parking/lifecycle line: touched only on slow paths.
  alignas(64) std::atomic<std::uint32_t> notFullSeq_{0};
  std::atomic<std::uint32_t> notEmptySeq_{0};
  std::atomic<std::uint32_t> producerParked_{0};
  std::atomic<std::uint32_t> consumerParked_{0};
  std::atomic<bool> closed_{false};

  std::vector<T> slots_;
  std::size_t mask_ = 0;
  std::size_t bound_;

#ifndef NDEBUG
  // Debug 1P/1C guard flags (see spsc_detail::SideGuard); off the hot
  // lines above so release layout is unaffected by their absence.
  std::atomic<bool> putBusy_{false};
  std::atomic<bool> takeBusy_{false};
#endif
};

#undef CONGEN_SPSC_SIDE_GUARD

}  // namespace congen

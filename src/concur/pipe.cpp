#include "concur/pipe.hpp"

#include <algorithm>

namespace congen {

namespace {

/// The producer half of the batched transport. Runs on a pool thread,
/// draining the co-expression body into a local buffer and publishing
/// whole segments with one putAll per flush. The batch size adapts:
/// it starts at 1 (first result reaches the consumer with no batching
/// latency), doubles toward `cap` while the consumer keeps up, and
/// halves whenever a flush finds the consumer already blocked in
/// activate() — at that point buffering further values only adds
/// latency. Each round's goal is additionally clamped to the queue's
/// spare capacity so a bounded pipe still bounds producer run-ahead
/// exactly as the per-element protocol does.
void runBatchedProducer(const std::shared_ptr<BlockingQueue<Value>>& queue, Gen& body,
                        std::size_t cap) {
  std::vector<Value> buffer;
  std::size_t batch = 1;
  bool open = true;
  while (open) {
    const std::size_t size = queue->size();
    const std::size_t spare = queue->capacity() > size ? queue->capacity() - size : 0;
    const std::size_t goal =
        std::clamp<std::size_t>(std::min(batch, spare), 1, cap);
    bool starved = false;
    try {
      while (buffer.size() < goal) {
        auto v = body.nextValue();
        if (!v) {
          open = false;  // source exhausted
          break;
        }
        buffer.push_back(std::move(*v));
        if (queue->waitingConsumers() > 0) {
          starved = true;  // consumer is blocked: flush now, batch smaller
          break;
        }
      }
    } catch (...) {
      // The per-element protocol delivers every result generated before
      // an error; flush the intact buffer (best effort) before letting
      // the error propagate to the consumer.
      try {
        if (!buffer.empty()) queue->putAll(buffer);
      } catch (...) {
      }
      throw;
    }
    if (buffer.empty()) break;
    CONGEN_FAULT_POINT(PipeBatchFlush);
    const std::size_t flushed = buffer.size();
    if (queue->putAll(buffer) < flushed) break;  // consumer abandoned us
    batch = starved ? std::max<std::size_t>(1, batch / 2) : std::min(cap, batch * 2);
  }
}

}  // namespace

Pipe::Pipe(GenFactory factory, std::size_t capacity, ThreadPool& pool, std::size_t batchCap)
    : CoExpression(std::move(factory)),
      state_(std::make_shared<State>(capacity)),
      capacity_(capacity),
      pool_(&pool),
      // Capacity <= 1 pipes are futures/mailboxes: latency-sensitive and
      // single-valued, so they always run the unbatched protocol. A
      // bounded queue also clamps the cap — batching past capacity
      // could never publish in one flush anyway.
      batchCap_(state_->queue->capacity() <= 1 || batchCap <= 1
                    ? 1
                    : std::min(batchCap, state_->queue->capacity())) {
  // The body was built (and the shadowed environment copied) eagerly on
  // this thread by the CoExpression base. The producer captures only the
  // shared state and that body — never the Pipe itself — so
  // consumer-side destruction cannot race it.
  pool.submit([state = state_, body = takeBody(), cap = batchCap_] {
    try {
      if (cap <= 1) {
        while (auto v = body->nextValue()) {
          if (!state->queue->put(std::move(*v))) break;  // consumer abandoned us
        }
      } else {
        runBatchedProducer(state->queue, *body, cap);
      }
    } catch (...) {
      std::lock_guard lock(state->errorMutex);
      state->error = std::current_exception();
    }
    state->queue->close();  // end-of-stream
  });
}

Pipe::~Pipe() { state_->queue->close(); }

std::optional<Value> Pipe::activate() {
  if (batchCap_ > 1) {
    if (drainedPos_ >= drained_.size()) {
      drained_ = state_->queue->takeUpTo(batchCap_);
      drainedPos_ = 0;
    }
    if (drainedPos_ < drained_.size()) {
      ++produced_;
      return std::move(drained_[drainedPos_++]);
    }
  } else {
    auto v = state_->queue->take();
    if (v) {
      ++produced_;
      return v;
    }
  }
  // Drained: surface a producer-side error on the consumer thread.
  std::exception_ptr error;
  {
    std::lock_guard lock(state_->errorMutex);
    error = state_->error;
    state_->error = nullptr;
  }
  if (error) std::rethrow_exception(error);
  return std::nullopt;
}

CoExprPtr Pipe::refreshed() const { return Pipe::create(factory(), capacity_, *pool_, batchCap_); }

GenPtr makePipeCreateGen(GenFactory bodyFactory, std::size_t capacity, ThreadPool& pool,
                         std::size_t batchCap) {
  return CoExprCreateGen::create(std::move(bodyFactory),
                                 [capacity, &pool, batchCap](GenFactory f) -> CoExprPtr {
                                   return Pipe::create(std::move(f), capacity, pool, batchCap);
                                 });
}

FutureValue::FutureValue(GenFactory factory, ThreadPool& pool)
    : pipe_(Pipe::create(std::move(factory), 1, pool)) {}

std::optional<Value> FutureValue::get() {
  if (!resolved_) {
    cached_ = pipe_->activate();
    resolved_ = true;
  }
  return cached_;
}

}  // namespace congen

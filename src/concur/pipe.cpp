#include "concur/pipe.hpp"

#include <algorithm>
#include <limits>
#include <mutex>
#include <ostream>
#include <set>

#include "obs/runtime_stats.hpp"
#include "obs/trace_sink.hpp"
#include "runtime/error.hpp"
#include "runtime/governor.hpp"

namespace congen {

namespace {

// Live-pipe registry backing Pipe::dumpAll. Function-local and
// intentionally leaked so pipes destroyed during static teardown never
// race a destructed set.
struct PipeRegistry {
  std::mutex m;
  std::set<const Pipe*>* pipes = new std::set<const Pipe*>;
};

PipeRegistry& registry() {
  static PipeRegistry* r = new PipeRegistry;
  return *r;
}

void registerPipe(const Pipe* p) {
  auto& r = registry();
  std::lock_guard lock(r.m);
  r.pipes->insert(p);
}

void unregisterPipe(const Pipe* p) {
  auto& r = registry();
  std::lock_guard lock(r.m);
  r.pipes->erase(p);
}

/// The producer half of the batched transport. Runs on a pool thread,
/// draining the co-expression body into a local buffer and publishing
/// whole segments with one putAllFor per flush. The batch size adapts:
/// it starts at 1 (first result reaches the consumer with no batching
/// latency), doubles toward `cap` while the consumer keeps up, and
/// halves whenever a flush finds the consumer already blocked in
/// activate() — at that point buffering further values only adds
/// latency. Each round's goal is additionally clamped to the queue's
/// spare capacity so a bounded pipe still bounds producer run-ahead
/// exactly as the per-element protocol does.
///
/// Cancellation: the generation loop checks the token between results
/// (one relaxed load) and every flush waits cancellably, so a cancelled
/// pipe's producer returns within one queue operation even with the
/// queue full.
void runBatchedProducer(const std::shared_ptr<Channel<Value>>& queue, Gen& body,
                        std::size_t cap, const CancelToken& token) {
  std::vector<Value> buffer;
  std::size_t accepted = 0;
  std::size_t batch = 1;
  bool open = true;
  while (open && !token.cancelled()) {
    const std::size_t size = queue->size();
    const std::size_t spare = queue->capacity() > size ? queue->capacity() - size : 0;
    const std::size_t goal =
        std::clamp<std::size_t>(std::min(batch, spare), 1, cap);
    bool starved = false;
    try {
      while (buffer.size() < goal) {
        auto v = body.nextValue();
        if (!v) {
          open = false;  // source exhausted
          break;
        }
        buffer.push_back(std::move(*v));
        if (token.cancelled()) {
          open = false;
          break;
        }
        if (queue->waitingConsumers() > 0) {
          starved = true;  // consumer is blocked: flush now, batch smaller
          break;
        }
      }
    } catch (...) {
      // The per-element protocol delivers every result generated before
      // an error; flush the intact buffer (best effort) before letting
      // the error propagate to the consumer.
      try {
        if (!buffer.empty()) queue->putAllFor(buffer, accepted, token);
      } catch (...) {
      }
      throw;
    }
    if (buffer.empty()) break;
    CONGEN_FAULT_POINT(PipeBatchFlush);
    if (queue->putAllFor(buffer, accepted, token) != QueueOpStatus::kOk) {
      break;  // consumer abandoned or cancelled us
    }
    if (obs::metricsEnabled()) [[unlikely]] {
      obs::PipeStats::get().batchesFlushed.add(1);
    }
    batch = starved ? std::max<std::size_t>(1, batch / 2) : std::min(cap, batch * 2);
  }
}

void countErrorStored() {
  if (obs::metricsEnabled()) [[unlikely]] {
    obs::PipeStats::get().errorsStored.add(1);
  }
}

/// Apply the ambient governor's pipe-depth clamp to a requested queue
/// capacity (graceful degradation — see governor.hpp).
std::size_t governedCapacity(std::size_t capacity) {
  if (const auto* gov = governor::current()) return gov->clampPipeCapacity(capacity);
  return capacity;
}

}  // namespace

Pipe::Pipe(GenFactory factory, std::size_t capacity, ThreadPool& pool, std::size_t batchCap,
           ChannelTransport transport)
    : Pipe(Resolved{}, std::move(factory), governedCapacity(capacity), pool, batchCap, transport) {}

Pipe::Pipe(Resolved, GenFactory factory, std::size_t capacity, ThreadPool& pool,
           std::size_t batchCap, ChannelTransport transport)
    : CoExpression(std::move(factory)),
      state_(std::make_shared<State>(capacity, transport)),
      capacity_(capacity),
      pool_(&pool),
      // Capacity <= 1 pipes are futures/mailboxes: latency-sensitive and
      // single-valued, so they always run the unbatched protocol. A
      // bounded queue also clamps the cap — batching past capacity
      // could never publish in one flush anyway.
      batchCap_(state_->queue->capacity() <= 1 || batchCap <= 1
                    ? 1
                    : std::min(batchCap, state_->queue->capacity())),
      transport_(transport) {
  // A pipe created inside a producer body (the ambient CancelScope is
  // that producer's token) hangs itself under it, so cancelling the
  // downstream consumer reaches lazily-created inner pipes too.
  if (auto ambient = CancelScope::current(); ambient.canBeCancelled()) {
    state_->source.linkTo(ambient);
  }
  // The body was built (and the shadowed environment copied) eagerly on
  // this thread by the CoExpression base. The producer captures only the
  // shared state and that body — never the Pipe itself — so
  // consumer-side destruction cannot race it.
  pool.submit([state = state_, body = takeBody(), cap = batchCap_,
               gov = governor::currentShared()] {
    const CancelToken token = state->source.token();
    // Make this pipe's token ambient for the body: co-expressions and
    // pipes the body creates while running pick it up via the scope.
    CancelScope scope(token);
    // The creator's governor travels with the work: the body's fuel,
    // heap, and child pipes/co-expressions charge the same budgets on
    // this pool thread as they would on the creating one. (ScopedGovernor
    // never throws — a pending-batch trip re-fires at the body's next
    // charge site, inside the try below.)
    governor::ScopedGovernor governed(gov);
    obs::TraceSpan span("pipe.producer", "pipe");
    try {
      if (cap <= 1) {
        while (!token.cancelled()) {
          auto v = body->nextValue();
          if (!v) break;
          if (state->queue->putFor(std::move(*v), token) != QueueOpStatus::kOk) {
            break;  // consumer abandoned or cancelled us
          }
        }
      } else {
        runBatchedProducer(state->queue, *body, cap, token);
      }
    } catch (const IconError&) {
      // Typed run-time error: forward verbatim, then cancel everything
      // feeding this stage. Ordering matters — store the error BEFORE
      // requesting stop so the consumer never observes the cancel
      // without the cause.
      {
        std::lock_guard lock(state->errorMutex);
        state->error = std::current_exception();
      }
      countErrorStored();
      state->source.requestStop();
    } catch (const testing::InjectedFault&) {
      // Injected test faults cross the pipe unwrapped so the stress
      // suite can assert on the precise fault type.
      {
        std::lock_guard lock(state->errorMutex);
        state->error = std::current_exception();
      }
      countErrorStored();
      state->source.requestStop();
    } catch (const std::exception& e) {
      {
        std::lock_guard lock(state->errorMutex);
        state->error = std::make_exception_ptr(errStageFailed(e.what()));
      }
      countErrorStored();
      state->source.requestStop();
    } catch (...) {
      {
        std::lock_guard lock(state->errorMutex);
        state->error = std::make_exception_ptr(errStageFailed("unknown exception"));
      }
      countErrorStored();
      state->source.requestStop();
    }
    state->queue->close();  // end-of-stream
  });
  // Register only after submit succeeded: a throwing ctor must not leave
  // a dangling registry entry.
  registerPipe(this);
  if (obs::metricsEnabled()) [[unlikely]] {
    auto& s = obs::PipeStats::get();
    s.created.add(1);
    s.live.add(1);
  }
}

Pipe::~Pipe() {
  unregisterPipe(this);
  state_->queue->close();
  if (obs::metricsEnabled()) [[unlikely]] {
    obs::PipeStats::get().live.sub(1);
  }
}

std::optional<Value> Pipe::activate() { return step(QueueDeadline{}); }

std::optional<Value> Pipe::activateUntil(std::chrono::steady_clock::time_point deadline) {
  return step(QueueDeadline{deadline});
}

std::optional<Value> Pipe::step(QueueDeadline deadline) {
  // A finished pipe (error already surfaced, or cancelled, or drained)
  // fails deterministically forever — it never revisits the dead queue,
  // so an activation after a consumed producer error cannot block or
  // re-observe stale state.
  if (finished_.load(std::memory_order_relaxed)) return std::nullopt;
  const bool metrics = obs::metricsEnabled();
  const CancelToken token = state_->source.token();
  if (batchCap_ > 1) {
    if (drainedPos_ >= drained_.size()) {
      drainedPos_ = 0;
      const auto status = state_->queue->takeUpToFor(drained_, batchCap_, token, deadline);
      if (status == QueueOpStatus::kTimedOut) return std::nullopt;  // re-activatable
      if (status == QueueOpStatus::kCancelled && producerErrorPending()) {
        // Containment, not abandonment: the stop came from this pipe's
        // own failing producer, which flushed its delivered prefix and
        // is closing the queue. Drain with the plain (non-cancellable)
        // op so the prefix reaches the consumer before the error does.
        drained_ = state_->queue->takeUpTo(batchCap_);
      }
    }
    if (drainedPos_ < drained_.size()) {
      produced_.fetch_add(1, std::memory_order_relaxed);
      if (metrics) [[unlikely]] obs::PipeStats::get().activations.add(1);
      return std::move(drained_[drainedPos_++]);
    }
  } else {
    std::optional<Value> v;
    const auto status = state_->queue->takeFor(v, token, deadline);
    if (status == QueueOpStatus::kTimedOut) return std::nullopt;  // re-activatable
    if (status == QueueOpStatus::kCancelled && producerErrorPending()) {
      v = state_->queue->take();  // containment: see the batched branch
    }
    if (v) {
      produced_.fetch_add(1, std::memory_order_relaxed);
      if (metrics) [[unlikely]] obs::PipeStats::get().activations.add(1);
      return v;
    }
  }
  // Drained or cancelled: the stream is over for good. Surface a
  // producer-side error on the consumer thread, once.
  finished_.store(true, std::memory_order_relaxed);
  std::exception_ptr error;
  {
    std::lock_guard lock(state_->errorMutex);
    error = state_->error;
    state_->error = nullptr;
  }
  if (error) std::rethrow_exception(error);
  return std::nullopt;
}

bool Pipe::producerErrorPending() const {
  std::lock_guard lock(state_->errorMutex);
  return state_->error != nullptr;
}

CoExprPtr Pipe::refreshed() const {
  return Pipe::create(factory(), capacity_, *pool_, batchCap_, transport_);
}

void Pipe::dumpAll(std::ostream& os) {
  // Take the registry snapshot BEFORE the per-pipe walk: snapshot() only
  // reads relaxed atomics (never the pipe registry lock), so the two
  // sections cannot deadlock against a pipe being constructed, and the
  // aggregate header is at most a few in-flight operations away from the
  // per-pipe lines below it.
  const auto snap = obs::Registry::global().snapshot();
  auto& r = registry();
  std::lock_guard lock(r.m);
  os << "=== live pipes: " << r.pipes->size() << " ===\n";
  if (obs::metricsEnabled()) {
    os << "  aggregate: created=" << snap.counterValue("pipe.created")
       << " live=" << snap.gaugeValue("pipe.live")
       << " activations=" << snap.counterValue("pipe.activations")
       << " batchesFlushed=" << snap.counterValue("pipe.batches_flushed")
       << " cancellations=" << snap.counterValue("pipe.cancellations")
       << " errorsStored=" << snap.counterValue("pipe.errors_stored")
       << " queueDepth=" << snap.gaugeValue("queue.depth")
       << " poolThreadsLive=" << snap.gaugeValue("pool.threads_live") << "\n";
  }
  for (const Pipe* p : *r.pipes) {
    const auto& q = *p->state_->queue;
    bool hasError = false;
    {
      std::lock_guard el(p->state_->errorMutex);
      hasError = p->state_->error != nullptr;
    }
    os << "  pipe@" << static_cast<const void*>(p) << " queued=" << q.size() << "/"
       << (q.capacity() == std::numeric_limits<std::size_t>::max() ? 0 : q.capacity())
       << " closed=" << (q.closed() ? 1 : 0)
       << " cancelled=" << (p->cancelRequested() ? 1 : 0)
       << " finished=" << (p->finished_.load(std::memory_order_relaxed) ? 1 : 0)
       << " delivered=" << p->produced_.load(std::memory_order_relaxed)
       << " pendingError=" << (hasError ? 1 : 0) << " batchCap=" << p->batchCap_
       << " transport=" << (q.lockFree() ? "spsc" : "mutex") << "\n";
  }
}

GenPtr makePipeCreateGen(GenFactory bodyFactory, std::size_t capacity, ThreadPool& pool,
                         std::size_t batchCap, ChannelTransport transport) {
  return CoExprCreateGen::create(
      std::move(bodyFactory), [capacity, &pool, batchCap, transport](GenFactory f) -> CoExprPtr {
        return Pipe::create(std::move(f), capacity, pool, batchCap, transport);
      });
}

FutureValue::FutureValue(GenFactory factory, ThreadPool& pool)
    : pipe_(Pipe::create(std::move(factory), 1, pool)) {}

std::optional<Value> FutureValue::get() {
  if (!resolved_) {
    try {
      cached_ = pipe_->activate();
    } catch (...) {
      // Cache the error so every get() reports it — without this, the
      // first get() consumed the error and later calls looked like a
      // plain failure.
      error_ = std::current_exception();
      resolved_ = true;
      throw;
    }
    resolved_ = true;
  }
  if (error_) std::rethrow_exception(error_);
  return cached_;
}

}  // namespace congen

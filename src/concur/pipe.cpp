#include "concur/pipe.hpp"

namespace congen {

Pipe::Pipe(GenFactory factory, std::size_t capacity, ThreadPool& pool)
    : CoExpression(std::move(factory)),
      state_(std::make_shared<State>(capacity)),
      capacity_(capacity),
      pool_(&pool) {
  // The body was built (and the shadowed environment copied) eagerly on
  // this thread by the CoExpression base. The producer captures only the
  // shared state and that body — never the Pipe itself — so
  // consumer-side destruction cannot race it.
  pool.submit([state = state_, body = takeBody()] {
    try {
      while (auto v = body->nextValue()) {
        if (!state->queue->put(std::move(*v))) break;  // consumer abandoned us
      }
    } catch (...) {
      std::lock_guard lock(state->errorMutex);
      state->error = std::current_exception();
    }
    state->queue->close();  // end-of-stream
  });
}

Pipe::~Pipe() { state_->queue->close(); }

std::optional<Value> Pipe::activate() {
  auto v = state_->queue->take();
  if (v) {
    ++produced_;
    return v;
  }
  // Drained: surface a producer-side error on the consumer thread.
  std::exception_ptr error;
  {
    std::lock_guard lock(state_->errorMutex);
    error = state_->error;
    state_->error = nullptr;
  }
  if (error) std::rethrow_exception(error);
  return std::nullopt;
}

CoExprPtr Pipe::refreshed() const { return Pipe::create(factory(), capacity_, *pool_); }

GenPtr makePipeCreateGen(GenFactory bodyFactory, std::size_t capacity, ThreadPool& pool) {
  return CoExprCreateGen::create(std::move(bodyFactory), [capacity, &pool](GenFactory f) -> CoExprPtr {
    return Pipe::create(std::move(f), capacity, pool);
  });
}

FutureValue::FutureValue(GenFactory factory, ThreadPool& pool)
    : pipe_(Pipe::create(std::move(factory), 1, pool)) {}

std::optional<Value> FutureValue::get() {
  if (!resolved_) {
    cached_ = pipe_->activate();
    resolved_ = true;
  }
  return cached_;
}

}  // namespace congen

// fd_park.hpp — poll(2)-based parking for file-descriptor event loops.
//
// The serve daemon's accept loop (src/serve/server.cpp) owns the
// listener and every live session socket and must sleep until one of
// them is readable — but it must also be wakeable from other threads
// (shutdown, a session task handing a socket back for more reads)
// without busy-polling or a timeout tick. FdParker wraps that pattern:
//
//   - park(fds, timeout) sleeps in ::poll over the caller's descriptor
//     set plus an internal self-pipe;
//   - wake() (any thread, async-signal-safe) writes one byte to the
//     self-pipe, making a concurrent or future park() return
//     immediately. Wakes are sticky-until-consumed and coalesce: any
//     number of wake() calls before a park collapse into one wakeup,
//     and park() drains the pipe before returning, so a wake is never
//     double-counted but never lost either.
//
// This is the same park/unpark shape as SpscRing's futex protocol, one
// layer up: the "futex word" is the pipe, the kernel does the fence.
// EINTR is retried internally; park() only returns on readiness, wake,
// or timeout expiry.
#pragma once

#include <chrono>
#include <cstddef>
#include <vector>

#include <poll.h>

namespace congen {

class FdParker {
 public:
  FdParker();
  ~FdParker();
  FdParker(const FdParker&) = delete;
  FdParker& operator=(const FdParker&) = delete;

  /// Sleep until some fd in `fds` has pending events, wake() is called,
  /// or `timeout` expires (negative = wait forever). On return, the
  /// revents fields of `fds` are filled in as by ::poll; a wakeup via
  /// wake() is consumed and reported by the return value, not in `fds`.
  /// Returns true when woken or some fd is ready, false on pure timeout.
  bool park(std::vector<pollfd>& fds, std::chrono::milliseconds timeout);

  /// Make the current or next park() return immediately. Safe from any
  /// thread and from signal handlers (one write() on an O_NONBLOCK fd).
  void wake() noexcept;

 private:
  int wakeRead_ = -1;
  int wakeWrite_ = -1;
};

}  // namespace congen

#include "par/data_parallel.hpp"

#include <vector>

#include "kernel/basic.hpp"
#include "kernel/compose.hpp"
#include "kernel/ops.hpp"
#include "runtime/collections.hpp"

namespace congen {

namespace {

/// Chunking generator (the chunk() of Fig. 4).
class ChunkGen final : public Gen {
 public:
  ChunkGen(GenPtr source, std::int64_t chunkSize) : source_(std::move(source)), chunkSize_(chunkSize) {}

 protected:
  bool doNext(Result& out) override {
    if (exhausted_) return false;
    auto chunk = ListImpl::create();
    while (chunk->size() < chunkSize_) {
      auto v = source_->nextValue();
      if (!v) {
        exhausted_ = true;
        break;
      }
      chunk->put(std::move(*v));
    }
    if (chunk->empty()) return false;
    out.set(Value::list(std::move(chunk)));
    return true;
  }
  void doRestart() override {
    exhausted_ = false;
    source_->restart();
  }

 private:
  GenPtr source_;
  std::int64_t chunkSize_;
  bool exhausted_ = false;
};

/// Fold one chunk: x = i; every (x = r(x, f(!c))); yield x.
Value foldChunk(const ProcPtr& f, const ProcPtr& r, Value x, const ListPtr& chunk) {
  for (const auto& e : chunk->elements()) {
    auto fg = f->invoke({e});
    while (auto fv = fg->nextValue()) {  // every result f suspends joins the fold
      auto rg = r->invoke({x, std::move(*fv)});
      if (auto rv = rg->nextValue()) x = std::move(*rv);
    }
  }
  return x;
}

/// Generator that (1) eagerly chunks the source and spawns one pipe per
/// chunk — mirroring Fig. 4's `every (c = chunk(<>s)) do tasks.add(|> ...)`
/// — then (2) yields the pipes' results in task order (`suspend !(!tasks)`).
class TasksGen final : public Gen {
 public:
  using TaskFactory = std::function<GenFactory(ListPtr chunk)>;

  TasksGen(GenFactory source, std::int64_t chunkSize, std::size_t capacity, ThreadPool* pool,
           std::size_t batch, TaskFactory makeTaskBody)
      : source_(std::move(source)),
        chunkSize_(chunkSize),
        capacity_(capacity),
        pool_(pool),
        batch_(batch),
        makeTaskBody_(std::move(makeTaskBody)) {}

 protected:
  bool doNext(Result& out) override {
    if (!built_) build();
    while (taskIndex_ < tasks_.size()) {
      auto v = tasks_[taskIndex_]->activate();
      if (v) {
        out.set(std::move(*v));
        return true;
      }
      ++taskIndex_;
    }
    return false;
  }

  void doRestart() override {
    built_ = false;
    tasks_.clear();
    taskIndex_ = 0;
  }

 private:
  void build() {
    built_ = true;
    taskIndex_ = 0;
    ChunkGen chunks(source_(), chunkSize_);
    while (auto c = chunks.nextValue()) {
      tasks_.push_back(Pipe::create(makeTaskBody_(c->list()), capacity_, *pool_, batch_));
    }
  }

  GenFactory source_;
  std::int64_t chunkSize_;
  std::size_t capacity_;
  ThreadPool* pool_;
  std::size_t batch_;
  TaskFactory makeTaskBody_;
  std::vector<std::shared_ptr<Pipe>> tasks_;
  std::size_t taskIndex_ = 0;
  bool built_ = false;
};

}  // namespace

GenPtr makeChunkGen(GenPtr source, std::int64_t chunkSize) {
  return std::make_shared<ChunkGen>(std::move(source), chunkSize);
}

GenPtr DataParallel::mapReduce(ProcPtr f, GenFactory source, ProcPtr r, Value init) const {
  auto makeTaskBody = [f = std::move(f), r = std::move(r), init](ListPtr chunk) -> GenFactory {
    return [f, r, init, chunk = std::move(chunk)]() -> GenPtr {
      return CallbackGen::create([f, r, init, chunk]() -> CallbackGen::Puller {
        bool done = false;
        return [f, r, init, chunk, done]() mutable -> std::optional<Value> {
          if (done) return std::nullopt;
          done = true;
          return foldChunk(f, r, init, chunk);
        };
      });
    };
  };
  return std::make_shared<TasksGen>(std::move(source), chunkSize_, pipeCapacity_, pool_, pipeBatch_,
                                    std::move(makeTaskBody));
}

GenPtr DataParallel::mapFlat(ProcPtr f, GenFactory source) const {
  auto makeTaskBody = [f = std::move(f)](ListPtr chunk) -> GenFactory {
    return [f, chunk = std::move(chunk)]() -> GenPtr {
      // f(!c): invocation flattened over the chunk's elements.
      return makeInvokeGen(ConstGen::create(Value::proc(f)),
                           {PromoteGen::create(ConstGen::create(Value::list(chunk)))});
    };
  };
  return std::make_shared<TasksGen>(std::move(source), chunkSize_, pipeCapacity_, pool_, pipeBatch_,
                                    std::move(makeTaskBody));
}

}  // namespace congen

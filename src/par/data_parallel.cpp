#include "par/data_parallel.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

#include "kernel/basic.hpp"
#include "kernel/compose.hpp"
#include "kernel/ops.hpp"
#include "obs/runtime_stats.hpp"
#include "runtime/collections.hpp"
#include "runtime/error.hpp"

namespace congen {

namespace {

/// Chunking generator (the chunk() of Fig. 4).
class ChunkGen final : public Gen {
 public:
  ChunkGen(GenPtr source, std::int64_t chunkSize) : source_(std::move(source)), chunkSize_(chunkSize) {}

 protected:
  bool doNext(Result& out) override {
    if (exhausted_) return false;
    auto chunk = ListImpl::create();
    while (chunk->size() < chunkSize_) {
      auto v = source_->nextValue();
      if (!v) {
        exhausted_ = true;
        break;
      }
      chunk->put(std::move(*v));
    }
    if (chunk->empty()) return false;
    if (obs::metricsEnabled()) [[unlikely]] obs::ParStats::get().chunks.add(1);
    out.set(Value::list(std::move(chunk)));
    return true;
  }
  void doRestart() override {
    exhausted_ = false;
    source_->restart();
  }

 private:
  GenPtr source_;
  std::int64_t chunkSize_;
  bool exhausted_ = false;
};

/// Fold one chunk: x = i; every (x = r(x, f(!c))); yield x.
Value foldChunk(const ProcPtr& f, const ProcPtr& r, Value x, const ListPtr& chunk) {
  for (const auto& e : chunk->elements()) {
    auto fg = f->invoke({e});
    while (auto fv = fg->nextValue()) {  // every result f suspends joins the fold
      auto rg = r->invoke({x, std::move(*fv)});
      if (auto rv = rg->nextValue()) x = std::move(*rv);
    }
  }
  return x;
}

/// Generator that (1) eagerly chunks the source and spawns one pipe per
/// chunk — mirroring Fig. 4's `every (c = chunk(<>s)) do tasks.add(|> ...)`
/// — then (2) yields the pipes' results in task order (`suspend !(!tasks)`).
///
/// With a retry budget (> 0), a chunk whose pipe dies with an error is
/// re-run on a fresh co-expression copy after an exponential backoff:
/// the body factory is kept per task, a fresh Pipe re-snapshots the
/// chunk environment, and values the failed attempt already delivered
/// are replayed and skipped — so the visible stream stays exact and in
/// order no matter where in the chunk the failure landed.
class TasksGen final : public Gen {
 public:
  using TaskFactory = std::function<GenFactory(ListPtr chunk)>;

  TasksGen(GenFactory source, std::int64_t chunkSize, std::size_t capacity, ThreadPool* pool,
           std::size_t batch, ChannelTransport transport, TaskFactory makeTaskBody, int maxRetries,
           std::int64_t backoffBaseMicros)
      : source_(std::move(source)),
        chunkSize_(chunkSize),
        capacity_(capacity),
        pool_(pool),
        batch_(batch),
        transport_(transport),
        makeTaskBody_(std::move(makeTaskBody)),
        maxRetries_(maxRetries),
        backoffBaseMicros_(backoffBaseMicros) {}

 protected:
  bool doNext(Result& out) override {
    if (!built_) build();
    while (taskIndex_ < tasks_.size()) {
      Task& t = tasks_[taskIndex_];
      std::optional<Value> v;
      try {
        v = t.pipe->activate();
      } catch (const std::exception& e) {
        retryOrRethrow(t, e.what());  // rethrows unless a retry was scheduled
        continue;
      } catch (...) {
        retryOrRethrow(t, "unknown exception");
        continue;
      }
      if (v) {
        if (t.toSkip > 0) {
          --t.toSkip;  // replaying an already-delivered prefix after a retry
          if (obs::metricsEnabled()) [[unlikely]] obs::ParStats::get().replaySkips.add(1);
          continue;
        }
        ++t.emitted;
        out.set(std::move(*v));
        return true;
      }
      ++taskIndex_;
    }
    return false;
  }

  void doRestart() override {
    built_ = false;
    tasks_.clear();
    taskIndex_ = 0;
  }

 private:
  struct Task {
    Rc<Pipe> pipe;
    GenFactory body;           // kept so a retry can rebuild the pipe
    std::size_t emitted = 0;   // values already delivered downstream
    std::size_t toSkip = 0;    // replayed prefix still to swallow
    int attempts = 0;          // retries consumed
  };

  void build() {
    built_ = true;
    taskIndex_ = 0;
    ChunkGen chunks(source_(), chunkSize_);
    while (auto c = chunks.nextValue()) {
      Task t;
      t.body = makeTaskBody_(c->list());
      t.pipe = Pipe::create(t.body, capacity_, *pool_, batch_, transport_);
      tasks_.push_back(std::move(t));
    }
  }

  // Called from a catch block (the chunk error is the active exception):
  // either schedules a retry — backoff sleep, fresh pipe, replay-skip —
  // or lets the error out: verbatim when retries are disabled, as the
  // typed 802 when the budget is spent.
  void retryOrRethrow(Task& t, const char* cause) {
    if (maxRetries_ <= 0) throw;
    if (t.attempts >= maxRetries_) throw errRetryExhausted(cause);
    ++t.attempts;
    if (obs::metricsEnabled()) [[unlikely]] obs::ParStats::get().retries.add(1);
    if (backoffBaseMicros_ > 0) {
      const auto micros = backoffBaseMicros_ << std::min(t.attempts - 1, 10);
      std::this_thread::sleep_for(std::chrono::microseconds(micros));
    }
    t.toSkip = t.emitted;
    t.pipe = Pipe::create(t.body, capacity_, *pool_, batch_, transport_);
  }

  GenFactory source_;
  std::int64_t chunkSize_;
  std::size_t capacity_;
  ThreadPool* pool_;
  std::size_t batch_;
  ChannelTransport transport_;
  TaskFactory makeTaskBody_;
  int maxRetries_;
  std::int64_t backoffBaseMicros_;
  std::vector<Task> tasks_;
  std::size_t taskIndex_ = 0;
  bool built_ = false;
};

}  // namespace

GenPtr makeChunkGen(GenPtr source, std::int64_t chunkSize) {
  return std::make_shared<ChunkGen>(std::move(source), chunkSize);
}

GenPtr DataParallel::mapReduce(ProcPtr f, GenFactory source, ProcPtr r, Value init) const {
  auto makeTaskBody = [f = std::move(f), r = std::move(r), init](ListPtr chunk) -> GenFactory {
    return [f, r, init, chunk = std::move(chunk)]() -> GenPtr {
      return CallbackGen::create([f, r, init, chunk]() -> CallbackGen::Puller {
        bool done = false;
        return [f, r, init, chunk, done]() mutable -> std::optional<Value> {
          if (done) return std::nullopt;
          done = true;
          return foldChunk(f, r, init, chunk);
        };
      });
    };
  };
  return std::make_shared<TasksGen>(std::move(source), chunkSize_, pipeCapacity_, pool_, pipeBatch_,
                                    transport_, std::move(makeTaskBody), maxRetries_,
                                    backoffBaseMicros_);
}

GenPtr DataParallel::mapFlat(ProcPtr f, GenFactory source) const {
  auto makeTaskBody = [f = std::move(f)](ListPtr chunk) -> GenFactory {
    return [f, chunk = std::move(chunk)]() -> GenPtr {
      // f(!c): invocation flattened over the chunk's elements.
      return makeInvokeGen(ConstGen::create(Value::proc(f)),
                           {PromoteGen::create(ConstGen::create(Value::list(chunk)))});
    };
  };
  return std::make_shared<TasksGen>(std::move(source), chunkSize_, pipeCapacity_, pool_, pipeBatch_,
                                    transport_, std::move(makeTaskBody), maxRetries_,
                                    backoffBaseMicros_);
}

}  // namespace congen

// pipeline.hpp — parallel pipelining from chained pipes.
//
// The pipeline model of Fig. 2: `f(! |> s)` — each stage encapsulates the
// entire stream and runs in its own thread, consuming the previous
// stage's pipe and feeding its own. Builder for expressions like
//
//   x * ! |> factorial(! |> sqrt(y))         (Section III.B)
//
// where the output of each stage is the input of the next, synchronized
// by the pipes' bounded blocking queues.
#pragma once

#include <vector>

#include "concur/pipe.hpp"
#include "runtime/proc.hpp"

namespace congen {

/// A built pipeline plus its cancellation handle: requestStop() on
/// `stop` cascades through every stage's pipe (the last stage is linked
/// under stop's token, and each upstream stage under its downstream
/// consumer's token), so all producers unblock within one queue
/// operation.
struct CancellablePipeline {
  GenPtr gen;
  StopSource stop;
};

class Pipeline {
 public:
  explicit Pipeline(std::size_t pipeCapacity = Pipe::kDefaultCapacity,
                    ThreadPool& pool = ThreadPool::global(),
                    std::size_t pipeBatch = Pipe::kDefaultBatch,
                    ChannelTransport transport = ChannelTransport::kAuto)
      : capacity_(pipeCapacity), pool_(&pool), batch_(pipeBatch), transport_(transport) {}

  /// Append a stage: f is mapped (goal-directed invocation, so all of
  /// f's results per element join the stream) over the previous stage's
  /// output.
  Pipeline& stage(ProcPtr f) {
    stages_.push_back(std::move(f));
    return *this;
  }

  /// Assemble the chain over a source and return the generator of the
  /// final stage's results. Every stage, including the source, runs in
  /// its own pipe; the caller's thread only drains the last queue.
  [[nodiscard]] GenPtr build(GenFactory source) const;

  /// Like build(), but the final stage is consumed on the caller's
  /// thread instead of a pipe (n stages → n threads, matching the
  /// two-thread pipelines of the Fig. 6 benchmark when n = 2).
  [[nodiscard]] GenPtr buildLastInline(GenFactory source) const;

  /// build() with an external cancellation handle attached to the whole
  /// chain. Dropping the generator without draining it is also fine —
  /// requestStop() tears the stages down without waiting for the queues
  /// to drain.
  [[nodiscard]] CancellablePipeline buildCancellable(GenFactory source) const;

  [[nodiscard]] std::size_t depth() const noexcept { return stages_.size(); }

 private:
  [[nodiscard]] GenPtr chain(GenFactory source, bool lastInline, StopSource* stop) const;

  std::vector<ProcPtr> stages_;
  std::size_t capacity_;
  ThreadPool* pool_;
  std::size_t batch_;
  ChannelTransport transport_;
};

}  // namespace congen

// data_parallel.hpp — map-reduce built from concurrent generators.
//
// The DataParallel class of Fig. 4, in translated (kernel-API) form:
//
//   def chunk(e)         { ... suspend chunk; ... }
//   def mapReduce(f,s,r,i) {
//     every (c = chunk(<>s)) do {
//       t = |> { var x=i; every (x = r(x, f(!c) )); x };  tasks.add(t);
//     };
//     suspend ! (! tasks);
//   }
//
// chunk partitions the source stream into fixed-size lists; mapReduce
// spawns one pipe per chunk that folds the mapped values with the
// reduction function, then generates the per-chunk results *in order*
// ("subtly different from conventional map-reduce in that it enforces
// ordering between the results of the partitioned threads", Section III).
#pragma once

#include <cstdint>

#include "concur/pipe.hpp"
#include "kernel/gen.hpp"
#include "runtime/proc.hpp"

namespace congen {

/// Generator of chunks: each result is a list of up to `chunkSize`
/// consecutive source values; the final partial chunk is included.
GenPtr makeChunkGen(GenPtr source, std::int64_t chunkSize);

class DataParallel {
 public:
  explicit DataParallel(std::int64_t chunkSize = 1000,
                        std::size_t pipeCapacity = Pipe::kDefaultCapacity,
                        ThreadPool& pool = ThreadPool::global(),
                        std::size_t pipeBatch = Pipe::kDefaultBatch,
                        ChannelTransport transport = ChannelTransport::kAuto)
      : chunkSize_(chunkSize),
        pipeCapacity_(pipeCapacity),
        pool_(&pool),
        pipeBatch_(pipeBatch),
        transport_(transport) {}

  /// Bounded per-chunk retry with exponential backoff. When a chunk's
  /// pipe dies with an error, the chunk is re-run on a fresh
  /// co-expression copy (the body factory re-snapshots its environment)
  /// up to `maxRetries` times, sleeping backoffBaseMicros * 2^(attempt-1)
  /// between attempts; values the chunk already delivered are replayed
  /// and skipped so results stay exact and in order. Once the budget is
  /// exhausted, a single typed IconError 802 surfaces to the consumer.
  /// The default (0) keeps the historical behavior: the first error
  /// propagates verbatim.
  DataParallel& withRetry(int maxRetries, std::int64_t backoffBaseMicros = 100) {
    maxRetries_ = maxRetries;
    backoffBaseMicros_ = backoffBaseMicros;
    return *this;
  }

  /// mapReduce(f, s, r, i): one pipe per chunk folds r over f's results,
  /// and the returned generator yields the per-chunk reductions in chunk
  /// order. `f` and `r` are generator functions; each application
  /// contributes its full result sequence to the fold (f) or its first
  /// result (r), matching `every (x = r(x, f(!c)))`.
  [[nodiscard]] GenPtr mapReduce(ProcPtr f, GenFactory source, ProcPtr r, Value init) const;

  /// Data-parallel map without the reduction: one pipe per chunk maps f
  /// over the chunk's elements; results are concatenated in chunk order
  /// (the `every (c=chunk(s)) |> f(!c)` decomposition of Fig. 2). The
  /// caller performs any reduction serially — the "DataParallel" variant
  /// of the Fig. 6 benchmark suite.
  [[nodiscard]] GenPtr mapFlat(ProcPtr f, GenFactory source) const;

  [[nodiscard]] std::int64_t chunkSize() const noexcept { return chunkSize_; }

 private:
  std::int64_t chunkSize_;
  std::size_t pipeCapacity_;
  ThreadPool* pool_;
  std::size_t pipeBatch_;
  ChannelTransport transport_;
  int maxRetries_ = 0;
  std::int64_t backoffBaseMicros_ = 100;
};

}  // namespace congen

#include "par/pipeline.hpp"

#include "kernel/basic.hpp"
#include "kernel/compose.hpp"
#include "kernel/ops.hpp"
#include "obs/runtime_stats.hpp"

namespace congen {

namespace {

/// f(! upstream): map a generator function over a co-expression's stream.
GenPtr mapOverCoExpr(const ProcPtr& f, const Value& upstream) {
  return makeInvokeGen(ConstGen::create(Value::proc(f)),
                       {PromoteGen::create(ConstGen::create(upstream))});
}

}  // namespace

GenPtr Pipeline::chain(GenFactory source, bool lastInline, StopSource* stop) const {
  // Source stage: |> s
  auto pipe = Pipe::create(std::move(source), capacity_, *pool_, batch_, transport_);
  Value current = Value::coexpr(pipe);

  const std::size_t piped = lastInline && !stages_.empty() ? stages_.size() - 1 : stages_.size();
  if (obs::metricsEnabled()) [[unlikely]] {
    obs::ParStats::get().stages.add(static_cast<std::uint64_t>(piped + 1));  // + the source stage
  }
  for (std::size_t i = 0; i < piped; ++i) {
    // Stage i: |> f_i(! previous). The body factory captures the upstream
    // pipe by value; no locals are shared, so no shadowing is needed.
    GenFactory body = [f = stages_[i], current]() -> GenPtr { return mapOverCoExpr(f, current); };
    auto next = Pipe::create(std::move(body), capacity_, *pool_, batch_, transport_);
    // Link the producer under its consumer: cancelling (or erroring) a
    // downstream stage cascades upstream, stage by stage, so every
    // producer in the chain unblocks within one queue operation.
    pipe->cancelWith(next->cancelToken());
    pipe = next;
    current = Value::coexpr(pipe);
  }

  if (stop != nullptr) pipe->cancelWith(stop->token());

  if (lastInline && !stages_.empty()) {
    return mapOverCoExpr(stages_.back(), current);
  }
  // ! last-pipe: drain the final stage on the caller's thread.
  return PromoteGen::create(ConstGen::create(current));
}

GenPtr Pipeline::build(GenFactory source) const { return chain(std::move(source), false, nullptr); }

GenPtr Pipeline::buildLastInline(GenFactory source) const {
  return chain(std::move(source), true, nullptr);
}

CancellablePipeline Pipeline::buildCancellable(GenFactory source) const {
  CancellablePipeline result;
  result.gen = chain(std::move(source), false, &result.stop);
  return result;
}

}  // namespace congen

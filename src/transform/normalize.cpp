#include "transform/normalize.hpp"

#include <algorithm>
#include <set>

namespace congen::transform {

using ast::Kind;
using ast::NodePtr;

bool isSimple(const NodePtr& node) {
  if (!node) return true;
  switch (node->kind) {
    case Kind::IntLit:
    case Kind::RealLit:
    case Kind::StrLit:
    case Kind::NullLit:
    case Kind::Ident:
    case Kind::TempRef:
      return true;
    default:
      return false;
  }
}

namespace {

/// Fold bindings around a core expression:
///   [b1, b2] core → b1 & (b2 & core)
NodePtr foldProduct(std::vector<NodePtr> bindings, NodePtr core) {
  NodePtr out = std::move(core);
  for (auto it = bindings.rbegin(); it != bindings.rend(); ++it) {
    out = ast::make(Kind::Binary, "&", {std::move(*it), std::move(out)});
  }
  return out;
}

/// Hoist a (already normalized) operand: simple operands stay in place;
/// generators are moved out into a bound iterator.
NodePtr hoist(NodePtr operand, TempNames& names, std::vector<NodePtr>& bindings) {
  if (isSimple(operand)) return operand;
  const std::string temp = names.fresh();
  bindings.push_back(ast::make(Kind::BoundIter, temp, {std::move(operand)}));
  return ast::make(Kind::TempRef, temp);
}

/// L-value positions: keep the node shape (it must still yield a
/// variable), but hoist its operand subexpressions.
NodePtr normalizeLValue(const NodePtr& node, TempNames& names, std::vector<NodePtr>& bindings) {
  if (!node) return nullptr;
  switch (node->kind) {
    case Kind::Index: {
      auto coll = hoist(normalize(node->kids[0], names), names, bindings);
      auto idx = hoist(normalize(node->kids[1], names), names, bindings);
      return ast::make(Kind::Index, "", {std::move(coll), std::move(idx)});
    }
    case Kind::Field: {
      auto obj = hoist(normalize(node->kids[0], names), names, bindings);
      return ast::make(Kind::Field, node->text, {std::move(obj)});
    }
    default:
      // Identifiers stay; anything else (e.g. an alternation of
      // variables) is normalized structurally so its results keep their
      // variable references.
      return normalize(node, names);
  }
}

}  // namespace

NodePtr normalize(const NodePtr& node, TempNames& names) {
  if (!node) return nullptr;
  switch (node->kind) {
    // -- primaries: the flattening sites of Section V.A ----------------
    case Kind::Invoke:
    case Kind::NativeInvoke:
    case Kind::Index:
    case Kind::Slice: {
      std::vector<NodePtr> bindings;
      std::vector<NodePtr> kids;
      kids.reserve(node->kids.size());
      for (const auto& child : node->kids) {
        kids.push_back(hoist(normalize(child, names), names, bindings));
      }
      auto core = ast::make(node->kind, node->text, std::move(kids));
      core->line = node->line;
      core->col = node->col;
      return foldProduct(std::move(bindings), std::move(core));
    }
    case Kind::Field: {
      std::vector<NodePtr> bindings;
      auto obj = hoist(normalize(node->kids[0], names), names, bindings);
      auto core = ast::make(Kind::Field, node->text, {std::move(obj)});
      return foldProduct(std::move(bindings), std::move(core));
    }

    // -- assignment: the left side must keep yielding a variable --------
    case Kind::Assign:
    case Kind::Swap: {
      std::vector<NodePtr> bindings;
      auto lhs = normalizeLValue(node->kids[0], names, bindings);
      auto rhs = normalize(node->kids[1], names);
      auto core = ast::make(node->kind, node->text, {std::move(lhs), std::move(rhs)});
      return foldProduct(std::move(bindings), std::move(core));
    }

    // -- everything else: structural recursion ---------------------------
    default: {
      auto out = ast::make(node->kind, node->text);
      out->line = node->line;
      out->col = node->col;
      out->kids.reserve(node->kids.size());
      for (const auto& child : node->kids) out->kids.push_back(normalize(child, names));
      return out;
    }
  }
}

NodePtr normalizeProgram(const NodePtr& program) {
  TempNames names;
  return normalize(program, names);
}

namespace {

void collectIdents(const NodePtr& node, std::set<std::string>& out) {
  if (!node) return;
  if (node->kind == Kind::Ident || node->kind == Kind::TempRef) out.insert(node->text);
  // VarDecl introduces, rather than references, its name.
  for (const auto& k : node->kids) collectIdents(k, out);
}

void collectBound(const NodePtr& node, std::set<std::string>& out) {
  if (!node) return;
  if (node->kind == Kind::VarDecl || node->kind == Kind::BoundIter) out.insert(node->text);
  if (node->kind == Kind::ParamList) {
    for (const auto& p : node->kids) out.insert(p->text);
  }
  for (const auto& k : node->kids) collectBound(k, out);
}

}  // namespace

std::vector<std::string> freeIdents(const NodePtr& node) {
  std::set<std::string> refs, bound;
  collectIdents(node, refs);
  collectBound(node, bound);
  std::vector<std::string> out;
  for (const auto& name : refs) {
    if (!bound.contains(name)) out.push_back(name);
  }
  return out;  // std::set iteration is already sorted
}

std::vector<std::string> mentionedIdents(const NodePtr& node) {
  std::set<std::string> names;
  collectIdents(node, names);
  collectBound(node, names);
  return {names.begin(), names.end()};
}

}  // namespace congen::transform

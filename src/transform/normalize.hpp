// normalize.hpp — flattening of nested generator expressions.
//
// The first transformation step of Section V.A: "to make iteration
// explicit, we introduce an operator for bound iteration, and decompose
// nested generators into products of such bound iterators". A primary
// expression
//
//     e(ex, ey).c[ei]
//
// is rewritten to
//
//     (f in ⟦e⟧) & (x in ⟦ex⟧) & (y in ⟦ey⟧)
//       & (o in ! f(x,y)) & (i in ⟦ei⟧) & (j in ! o.c[i])
//
// where ⟦·⟧ is the recursive application of the same transformation.
// After normalization every invocation, field access, and subscript has
// only *simple* operands (literals, identifiers, or normalization
// temporaries), so the residual expression can be evaluated with
// mechanisms native to the translation target — the property that makes
// the embedding interoperable.
//
// The rewriting is semantics-preserving: tests/transform asserts that
// interpreting the normalized tree produces the same result sequence as
// interpreting the original.
#pragma once

#include <string>

#include "frontend/ast.hpp"

namespace congen::transform {

/// Fresh-name supply for normalization temporaries (x_0, x_1, ... —
/// matching Fig. 5's IconTmp naming).
class TempNames {
 public:
  std::string fresh() { return "x_" + std::to_string(counter_++); }
  [[nodiscard]] int used() const noexcept { return counter_; }

 private:
  int counter_ = 0;
};

/// Normalize one expression tree. Statements and definitions are
/// traversed; expression positions are rewritten.
ast::NodePtr normalize(const ast::NodePtr& node, TempNames& names);

/// Convenience over a whole program / def / statement.
ast::NodePtr normalizeProgram(const ast::NodePtr& program);

/// True if the node is a *simple* operand after normalization: a
/// literal, identifier, or temporary reference.
bool isSimple(const ast::NodePtr& node);

/// Collect the free identifiers of an expression (used to compute the
/// shadowed environment of a co-expression, Section V.D: "textually
/// scoping up for referenced locals").
std::vector<std::string> freeIdents(const ast::NodePtr& node);

/// Every name the expression can possibly look up: free references plus
/// names it binds itself (locals, params, bound iterators). A superset
/// of freeIdents; used to trim what a `<>` environment must alias — a
/// slot the body never mentions can never be looked up through it.
std::vector<std::string> mentionedIdents(const ast::NodePtr& node);

}  // namespace congen::transform

// shadow.hpp — environment shadowing for co-expressions.
//
// A co-expression "creates a copy of its local environment, i.e., it
// shadows any referenced method local variables and parameters" (Section
// III.A):
//
//   ^e → ((x,y,z)-> <>e) ((()->[x,y,z])())
//
// shadowEnv captures the *current values* of the referenced locals at
// factory-invocation time and hands the body builder fresh cells holding
// those copies — so each refresh (^) re-copies, and the running
// co-expression can never interfere with the enclosing procedure's
// locals.
#pragma once

#include <vector>

#include "kernel/gen.hpp"

namespace congen {

/// Builds a body generator over the shadowed (copied) locals. The i-th
/// element of the vector is the fresh cell shadowing the i-th captured
/// variable.
using ShadowBodyBuilder = std::function<GenPtr(const std::vector<VarPtr>&)>;

/// Create a co-expression body factory that, each time it runs (creation
/// and every ^ refresh), snapshots the referenced locals into fresh cells
/// and builds the body over them.
inline GenFactory shadowEnv(std::vector<VarPtr> locals, ShadowBodyBuilder builder) {
  return [locals = std::move(locals), builder = std::move(builder)]() -> GenPtr {
    std::vector<VarPtr> copies;
    copies.reserve(locals.size());
    for (const auto& local : locals) copies.push_back(CellVar::create(local->get()));
    return builder(copies);
  };
}

/// Convenience for bodies that reference no locals.
inline GenFactory plainEnv(std::function<GenPtr()> builder) {
  return GenFactory(std::move(builder));
}

}  // namespace congen

#include "frontend/parser.hpp"

#include <array>
#include <utility>

namespace congen::frontend {

namespace {

using ast::Kind;
using ast::NodePtr;

class Parser {
 public:
  explicit Parser(std::vector<Token> toks) : toks_(std::move(toks)) {}

  NodePtr program() {
    auto prog = ast::make(Kind::Program);
    while (!at(TokKind::End)) prog->kids.push_back(definitionOrStatement());
    return prog;
  }

  NodePtr expressionOnly() {
    auto e = expression();
    if (!at(TokKind::End)) err("trailing input after expression");
    return e;
  }

 private:
  // -- token plumbing ---------------------------------------------------
  const Token& cur() const { return toks_[pos_]; }
  const Token& ahead(std::size_t n = 1) const {
    return toks_[std::min(pos_ + n, toks_.size() - 1)];
  }
  bool at(TokKind k) const { return cur().kind == k; }
  bool atOp(std::string_view s) const { return cur().isOp(s); }
  bool atKw(std::string_view s) const { return cur().isKeyword(s); }
  Token take() { return toks_[pos_++]; }
  void expectOp(std::string_view s) {
    if (!atOp(s)) err(std::string("expected '") + std::string(s) + "', found '" + cur().text + "'");
    ++pos_;
  }
  void expectKw(std::string_view s) {
    if (!atKw(s)) err(std::string("expected '") + std::string(s) + "', found '" + cur().text + "'");
    ++pos_;
  }
  [[noreturn]] void err(const std::string& message) const {
    throw SyntaxError(message, cur().line, cur().col);
  }
  NodePtr stamp(NodePtr n, const Token& t) const {
    n->line = t.line;
    n->col = t.col;
    return n;
  }
  void skipSemis() {
    while (atOp(";")) ++pos_;
  }

  // -- declarations -------------------------------------------------------
  NodePtr definitionOrStatement() {
    if (atKw("def") || atKw("procedure") || atKw("method")) return definition();
    if (atKw("record")) return recordDeclaration();
    if (atKw("global")) return globalDeclaration();
    return statement();
  }

  NodePtr recordDeclaration() {
    const Token intro = take();  // record
    if (!at(TokKind::Ident)) err("expected record type name");
    const Token name = take();
    auto decl = ast::make(Kind::RecordDecl, name.text);
    expectOp("(");
    while (!atOp(")")) {
      if (!at(TokKind::Ident)) err("expected field name");
      const Token field = take();
      decl->kids.push_back(stamp(ast::make(Kind::Ident, field.text), field));
      if (atOp(",")) ++pos_;
    }
    expectOp(")");
    skipSemis();
    return stamp(std::move(decl), intro);
  }

  NodePtr globalDeclaration() {
    const Token intro = take();  // global
    auto decl = ast::make(Kind::GlobalDecl);
    while (at(TokKind::Ident)) {
      const Token name = take();
      decl->kids.push_back(stamp(ast::make(Kind::Ident, name.text), name));
      if (atOp(",")) ++pos_;
    }
    skipSemis();
    return stamp(std::move(decl), intro);
  }

  NodePtr definition() {
    const Token intro = take();  // def | procedure | method
    if (!at(TokKind::Ident)) err("expected procedure name");
    const Token name = take();
    auto params = ast::make(Kind::ParamList);
    expectOp("(");
    while (!atOp(")")) {
      if (!at(TokKind::Ident)) err("expected parameter name");
      const Token param = take();
      params->kids.push_back(stamp(ast::make(Kind::Ident, param.text), param));
      if (atOp(",")) ++pos_;
    }
    expectOp(")");

    NodePtr body;
    if (atOp("{")) {
      body = block();
    } else {
      // procedure f(a); stmts... end
      skipSemis();
      body = ast::make(Kind::Block);
      while (!atKw("end")) {
        if (at(TokKind::End)) err("unterminated procedure " + name.text);
        body->kids.push_back(statement());
      }
      expectKw("end");
    }
    skipSemis();
    auto def = ast::make(Kind::Def, name.text, {std::move(params), std::move(body)});
    return stamp(std::move(def), intro);
  }

  // -- statements -----------------------------------------------------------
  NodePtr block() {
    const Token open = cur();
    expectOp("{");
    auto b = ast::make(Kind::Block);
    while (!atOp("}")) {
      if (at(TokKind::End)) err("unterminated block");
      b->kids.push_back(statement());
    }
    expectOp("}");
    skipSemis();
    return stamp(std::move(b), open);
  }

  /// A statement or (for loop bodies / branches) a block.
  NodePtr statement() {
    skipSemis();
    const Token& t = cur();

    if (atOp("{")) return block();

    if (atKw("local") || atKw("var")) {
      ++pos_;
      auto decls = ast::make(Kind::DeclList);
      while (true) {
        if (!at(TokKind::Ident)) err("expected variable name in declaration");
        const Token name = take();
        auto decl = ast::make(Kind::VarDecl, name.text);
        if (atOp(":=") || atOp("=")) {
          ++pos_;
          decl->kids.push_back(expression());
        }
        decls->kids.push_back(stamp(std::move(decl), name));
        if (atOp(",")) {
          ++pos_;
          continue;
        }
        break;
      }
      skipSemis();
      return stamp(std::move(decls), t);
    }

    if (atKw("every") || atKw("while") || atKw("until")) {
      const Token kw = take();
      auto control = expression();
      NodePtr body;
      if (atKw("do")) {
        ++pos_;
        body = statement();
      }
      skipSemis();
      const Kind k = kw.isKeyword("every") ? Kind::EveryStmt
                     : kw.isKeyword("while") ? Kind::WhileStmt
                                             : Kind::UntilStmt;
      auto n = ast::make(k);
      n->kids.push_back(std::move(control));
      if (body) n->kids.push_back(std::move(body));
      return stamp(std::move(n), kw);
    }

    if (atKw("repeat")) {
      const Token kw = take();
      auto body = statement();
      return stamp(ast::make(Kind::RepeatStmt, "", {std::move(body)}), kw);
    }

    if (atKw("if")) {
      const Token kw = take();
      auto cond = expression();
      expectKw("then");
      auto thenS = statement();
      auto n = ast::make(Kind::IfStmt, "", {std::move(cond), std::move(thenS)});
      if (atKw("else")) {
        ++pos_;
        n->kids.push_back(statement());
      }
      skipSemis();
      return stamp(std::move(n), kw);
    }

    if (atKw("suspend") || atKw("return")) {
      const Token kw = take();
      auto n = ast::make(kw.isKeyword("suspend") ? Kind::SuspendStmt : Kind::ReturnStmt);
      if (!atOp(";") && !atOp("}") && !at(TokKind::End) && !atKw("end")) {
        n->kids.push_back(expression());
      }
      skipSemis();
      return stamp(std::move(n), kw);
    }

    if (atKw("case")) {
      // case E of { v1: S; v2 | v3: S; default: S }
      const Token kw = take();
      auto control = expression();
      expectKw("of");
      expectOp("{");
      auto n = ast::make(Kind::CaseStmt, "", {std::move(control)});
      while (!atOp("}")) {
        if (at(TokKind::End)) err("unterminated case");
        skipSemis();
        if (atOp("}")) break;
        auto branch = ast::make(Kind::CaseBranch);
        if (atKw("default")) {
          ++pos_;
          branch->text = "default";
        } else {
          branch->kids.push_back(expression());
        }
        expectOp(":");
        branch->kids.push_back(statement());
        n->kids.push_back(std::move(branch));
      }
      expectOp("}");
      skipSemis();
      return stamp(std::move(n), kw);
    }

    if (atKw("fail") || atKw("break") || atKw("next")) {
      const Token kw = take();
      skipSemis();
      const Kind k = kw.isKeyword("fail") ? Kind::FailStmt
                     : kw.isKeyword("break") ? Kind::BreakStmt
                                             : Kind::NextStmt;
      return stamp(ast::make(k), kw);
    }

    // expression statement
    auto e = expression();
    skipSemis();
    return stamp(ast::make(Kind::ExprStmt, "", {std::move(e)}), t);
  }

  // -- expressions -----------------------------------------------------------
  NodePtr expression() { return conjunction(); }

  NodePtr conjunction() {
    auto lhs = assignment();
    while (atOp("&")) {
      const Token op = take();
      auto rhs = assignment();
      lhs = stamp(ast::make(Kind::Binary, "&", {std::move(lhs), std::move(rhs)}), op);
    }
    return lhs;
  }

  NodePtr assignment() {
    auto lhs = scan();
    static constexpr std::array<std::string_view, 11> kAssignOps = {
        ":=", "=", "+:=", "-:=", "*:=", "/:=", "%:=", "^:=", "||:=", "<:=", ">:="};
    for (const auto op : kAssignOps) {
      if (atOp(op)) {
        const Token opTok = take();
        auto rhs = assignment();  // right-associative
        const std::string spelled = op == "=" ? ":=" : std::string(op);
        return stamp(ast::make(Kind::Assign, spelled, {std::move(lhs), std::move(rhs)}), opTok);
      }
    }
    if (atOp(":=:")) {
      const Token opTok = take();
      auto rhs = assignment();
      return stamp(ast::make(Kind::Swap, ":=:", {std::move(lhs), std::move(rhs)}), opTok);
    }
    if (atOp("<-")) {  // reversible assignment (undone on backtracking)
      const Token opTok = take();
      auto rhs = assignment();
      return stamp(ast::make(Kind::Assign, "<-", {std::move(lhs), std::move(rhs)}), opTok);
    }
    if (atOp("<->")) {  // reversible swap
      const Token opTok = take();
      auto rhs = assignment();
      return stamp(ast::make(Kind::Swap, "<->", {std::move(lhs), std::move(rhs)}), opTok);
    }
    return lhs;
  }

  /// String scanning e1 ? e2 (left-associative, below assignment). The
  /// body may be a control construct (Icon: while/every/suspend are
  /// expressions), so statement keywords are accepted on the right.
  NodePtr scan() {
    auto lhs = toBy();
    while (atOp("?")) {
      const Token op = take();
      NodePtr rhs;
      if (atKw("while") || atKw("until") || atKw("every") || atKw("repeat") || atKw("case") ||
          atKw("suspend")) {
        rhs = statement();
      } else {
        rhs = toBy();
      }
      lhs = stamp(ast::make(Kind::Binary, "?", {std::move(lhs), std::move(rhs)}), op);
    }
    return lhs;
  }

  NodePtr toBy() {
    auto from = alternation();
    if (!atKw("to")) return from;
    const Token toTok = take();
    auto limit = alternation();
    auto n = ast::make(Kind::ToBy, "", {std::move(from), std::move(limit)});
    if (atKw("by")) {
      ++pos_;
      n->kids.push_back(alternation());
    }
    return stamp(std::move(n), toTok);
  }

  NodePtr alternation() {
    auto lhs = comparison();
    while (atOp("|")) {
      const Token op = take();
      auto rhs = comparison();
      lhs = stamp(ast::make(Kind::Binary, "|", {std::move(lhs), std::move(rhs)}), op);
    }
    return lhs;
  }

  NodePtr comparison() {
    auto lhs = concatenation();
    static constexpr std::array<std::string_view, 10> kCmp = {
        "<", "<=", ">", ">=", "~=", "==", "~==", "!=", "===", "~==="};
    while (true) {
      bool matched = false;
      for (const auto op : kCmp) {
        if (atOp(op)) {
          const Token opTok = take();
          auto rhs = concatenation();
          lhs = stamp(ast::make(Kind::Binary, std::string(op), {std::move(lhs), std::move(rhs)}),
                      opTok);
          matched = true;
          break;
        }
      }
      if (!matched) return lhs;
    }
  }

  NodePtr concatenation() {
    auto lhs = additive();
    while (atOp("||") || atOp("|||")) {
      const Token op = take();
      auto rhs = additive();
      lhs = stamp(ast::make(Kind::Binary, op.text, {std::move(lhs), std::move(rhs)}), op);
    }
    return lhs;
  }

  NodePtr additive() {
    auto lhs = multiplicative();
    while (atOp("+") || atOp("-")) {
      const Token op = take();
      auto rhs = multiplicative();
      lhs = stamp(ast::make(Kind::Binary, op.text, {std::move(lhs), std::move(rhs)}), op);
    }
    return lhs;
  }

  NodePtr multiplicative() {
    auto lhs = power();
    while (atOp("*") || atOp("/") || atOp("%")) {
      const Token op = take();
      auto rhs = power();
      lhs = stamp(ast::make(Kind::Binary, op.text, {std::move(lhs), std::move(rhs)}), op);
    }
    return lhs;
  }

  NodePtr power() {
    auto lhs = prefix();
    if (atOp("^")) {
      const Token op = take();
      auto rhs = power();  // right-associative
      return stamp(ast::make(Kind::Binary, "^", {std::move(lhs), std::move(rhs)}), op);
    }
    return lhs;
  }

  NodePtr prefix() {
    static constexpr std::array<std::string_view, 10> kPrefix = {
        "!", "@", "*", "-", "+", "~", "^", "<>", "|<>", "|>"};
    for (const auto op : kPrefix) {
      if (atOp(op)) {
        const Token opTok = take();
        auto operand = prefix();
        return stamp(ast::make(Kind::Unary, std::string(op), {std::move(operand)}), opTok);
      }
    }
    if (atOp("|")) {  // repeated alternation |e (prefix position only)
      const Token opTok = take();
      auto operand = prefix();
      return stamp(ast::make(Kind::Unary, "|", {std::move(operand)}), opTok);
    }
    if (atOp("\\")) {  // \e non-null test (prefix; postfix \ is the limit)
      const Token opTok = take();
      auto operand = prefix();
      return stamp(ast::make(Kind::Unary, "\\", {std::move(operand)}), opTok);
    }
    if (atOp("/")) {  // /e null test
      const Token opTok = take();
      auto operand = prefix();
      return stamp(ast::make(Kind::Unary, "/", {std::move(operand)}), opTok);
    }
    if (atKw("not")) {
      const Token opTok = take();
      auto operand = prefix();
      return stamp(ast::make(Kind::Not, "", {std::move(operand)}), opTok);
    }
    if (atKw("create")) {  // Unicon `create e` == `|<> e`
      const Token opTok = take();
      auto operand = prefix();
      return stamp(ast::make(Kind::Unary, "|<>", {std::move(operand)}), opTok);
    }
    return postfix();
  }

  NodePtr postfix() {
    auto e = primary();
    while (true) {
      if (atOp("(")) {
        const Token open = take();
        auto call = ast::make(Kind::Invoke);
        call->kids.push_back(std::move(e));
        parseArgs(*call);
        e = stamp(std::move(call), open);
        continue;
      }
      if (atOp("[")) {
        const Token open = take();
        auto idx = expression();
        if (atOp(":")) {  // slice x[i:j]
          ++pos_;
          auto to = expression();
          expectOp("]");
          e = stamp(ast::make(Kind::Slice, "", {std::move(e), std::move(idx), std::move(to)}),
                    open);
          continue;
        }
        expectOp("]");
        e = stamp(ast::make(Kind::Index, "", {std::move(e), std::move(idx)}), open);
        continue;
      }
      if (atOp("::")) {
        const Token op = take();
        if (!at(TokKind::Ident)) err("expected method name after ::");
        const Token name = take();
        auto call = ast::make(Kind::NativeInvoke, name.text);
        call->kids.push_back(std::move(e));
        expectOp("(");
        parseArgs(*call);
        e = stamp(std::move(call), op);
        continue;
      }
      if (atOp(".") && ahead().kind == TokKind::Ident) {
        const Token op = take();
        const Token name = take();
        e = stamp(ast::make(Kind::Field, name.text, {std::move(e)}), op);
        continue;
      }
      if (atOp("\\")) {
        const Token op = take();
        auto bound = prefix();
        e = stamp(ast::make(Kind::Limit, "", {std::move(e), std::move(bound)}), op);
        continue;
      }
      return e;
    }
  }

  /// Arguments up to the closing ')' (the '(' is already consumed).
  void parseArgs(ast::Node& call) {
    while (!atOp(")")) {
      call.kids.push_back(expression());
      if (atOp(",")) {
        ++pos_;
        continue;
      }
      if (!atOp(")")) err("expected ',' or ')' in argument list");
    }
    expectOp(")");
  }

  NodePtr primary() {
    const Token& t = cur();
    switch (t.kind) {
      case TokKind::IntLit: return stamp(ast::make(Kind::IntLit, take().text), t);
      case TokKind::RealLit: return stamp(ast::make(Kind::RealLit, take().text), t);
      case TokKind::StrLit: return stamp(ast::make(Kind::StrLit, take().text), t);
      case TokKind::Ident: return stamp(ast::make(Kind::Ident, take().text), t);
      case TokKind::AmpKeyword: {
        const Token kw = take();
        if (kw.text == "&null") return stamp(ast::make(Kind::NullLit), kw);
        if (kw.text == "&fail") return stamp(ast::make(Kind::FailLit), kw);
        if (kw.text == "&subject" || kw.text == "&pos" || kw.text == "&error" ||
            kw.text == "&errornumber" || kw.text == "&errorvalue") {
          return stamp(ast::make(Kind::KeywordVar, kw.text.substr(1)), kw);
        }
        err("unknown keyword " + kw.text);
      }
      case TokKind::Keyword:
        // if-then-else is also usable in expression position
        if (t.isKeyword("if")) {
          const Token kw = take();
          auto cond = expression();
          expectKw("then");
          auto thenE = expression();
          auto n = ast::make(Kind::IfStmt, "", {std::move(cond), std::move(thenE)});
          if (atKw("else")) {
            ++pos_;
            n->kids.push_back(expression());
          }
          return stamp(std::move(n), kw);
        }
        err("unexpected keyword '" + t.text + "' in expression");
      default: break;
    }
    if (atOp("(")) {
      const Token open = take();
      auto seq = ast::make(Kind::ExprSeq);
      seq->kids.push_back(expression());
      while (atOp(";")) {
        skipSemis();
        if (atOp(")")) break;
        seq->kids.push_back(expression());
      }
      expectOp(")");
      if (seq->kids.size() == 1) return seq->kids[0];  // plain parenthesization
      return stamp(std::move(seq), open);
    }
    if (atOp("[")) {
      const Token open = take();
      auto lit = ast::make(Kind::ListLit);
      while (!atOp("]")) {
        lit->kids.push_back(expression());
        if (atOp(",")) ++pos_;
      }
      expectOp("]");
      return stamp(std::move(lit), open);
    }
    if (atOp("{")) {
      // Braces in expression position (e.g. `|> { local x; ...; x }`,
      // Fig. 4): a statement sequence whose *last* term delegates
      // iteration, unlike a statement block which is bounded throughout.
      const Token open = take();
      auto seq = ast::make(Kind::ExprSeq);
      while (!atOp("}")) {
        if (at(TokKind::End)) err("unterminated brace expression");
        seq->kids.push_back(statement());
      }
      expectOp("}");
      return stamp(std::move(seq), open);
    }
    err("unexpected token '" + t.text + "'");
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
};

}  // namespace

ast::NodePtr parseProgram(std::string_view source) {
  Parser p(tokenize(source));
  return p.program();
}

ast::NodePtr parseExpression(std::string_view source) {
  Parser p(tokenize(source));
  return p.expressionOnly();
}

}  // namespace congen::frontend

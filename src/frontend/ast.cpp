#include "frontend/ast.hpp"

#include <sstream>

namespace congen::ast {

namespace {

const char* kindName(Kind k) {
  switch (k) {
    case Kind::IntLit: return "int";
    case Kind::RealLit: return "real";
    case Kind::StrLit: return "str";
    case Kind::NullLit: return "null";
    case Kind::FailLit: return "failexpr";
    case Kind::Ident: return "id";
    case Kind::KeywordVar: return "kw";
    case Kind::ListLit: return "listlit";
    case Kind::Binary: return "bin";
    case Kind::Unary: return "un";
    case Kind::Assign: return "assign";
    case Kind::Swap: return "swap";
    case Kind::ToBy: return "toby";
    case Kind::Limit: return "limit";
    case Kind::Index: return "index";
    case Kind::Slice: return "slice";
    case Kind::Field: return "field";
    case Kind::Invoke: return "invoke";
    case Kind::NativeInvoke: return "native";
    case Kind::ExprSeq: return "seq";
    case Kind::Not: return "not";
    case Kind::BoundIter: return "in";
    case Kind::TempRef: return "tmp";
    case Kind::Block: return "block";
    case Kind::ExprStmt: return "stmt";
    case Kind::VarDecl: return "vardecl";
    case Kind::DeclList: return "decls";
    case Kind::EveryStmt: return "every";
    case Kind::WhileStmt: return "while";
    case Kind::UntilStmt: return "until";
    case Kind::RepeatStmt: return "repeat";
    case Kind::IfStmt: return "if";
    case Kind::SuspendStmt: return "suspend";
    case Kind::ReturnStmt: return "return";
    case Kind::FailStmt: return "fail";
    case Kind::BreakStmt: return "break";
    case Kind::NextStmt: return "nextstmt";
    case Kind::CaseStmt: return "case";
    case Kind::CaseBranch: return "branch";
    case Kind::Def: return "def";
    case Kind::ParamList: return "params";
    case Kind::RecordDecl: return "recdecl";
    case Kind::GlobalDecl: return "globals";
    case Kind::Program: return "program";
  }
  return "?";
}

void dumpTo(std::ostringstream& os, const NodePtr& node) {
  if (!node) {
    os << "()";
    return;
  }
  os << '(' << kindName(node->kind);
  if (!node->text.empty()) os << ' ' << node->text;
  for (const auto& k : node->kids) {
    os << ' ';
    dumpTo(os, k);
  }
  os << ')';
}

}  // namespace

std::string dump(const NodePtr& node) {
  std::ostringstream os;
  dumpTo(os, node);
  return os.str();
}

NodePtr clone(const NodePtr& node) {
  if (!node) return nullptr;
  auto out = make(node->kind, node->text);
  out->line = node->line;
  out->col = node->col;
  out->res = node->res;
  out->slot = node->slot;
  out->kids.reserve(node->kids.size());
  for (const auto& k : node->kids) out->kids.push_back(clone(k));
  return out;
}

}  // namespace congen::ast

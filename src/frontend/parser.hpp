// parser.hpp — recursive-descent parser for the Junicon dialect.
//
// Grammar summary (loosest to tightest precedence):
//
//   conjunction :=  assignment { '&' assignment }
//   assignment  :=  toby [ (':=' | '=' | op':=' | ':=:') assignment ]
//   toby        :=  alternation [ 'to' alternation [ 'by' alternation ] ]
//   alternation :=  comparison { '|' comparison }
//   comparison  :=  concat { ('<'|'<='|'>'|'>='|'~='|'=='|'~=='|'!='|'==='|'~===') concat }
//   concat      :=  additive { '||' additive }
//   additive    :=  multiplicative { ('+'|'-') multiplicative }
//   multiplicative := power { ('*'|'/'|'%') power }
//   power       :=  prefix [ '^' power ]
//   prefix      :=  ('!'|'@'|'*'|'-'|'+'|'~'|'^'|'<>'|'|<>'|'|>'|'|'|'not'|'create') prefix
//                |  postfix
//   postfix     :=  primary { '(' args ')' | '[' expr ']' | '.' IDENT
//                           | '::' IDENT '(' args ')' | '\' prefix }
//   primary     :=  INT | REAL | STRING | '&null' | '&fail' | IDENT
//                |  '(' expr { ';' expr } ')' | '[' args ']'
//
// Statements: def/procedure, local/var, every/while/until/repeat,
// if-then-else, suspend/return/fail/break/next, blocks, expression
// statements. Both `def f(a) { ... }` and `procedure f(a); ... end` forms
// are accepted. `=` is assignment (the paper's Junicon follows Groovy
// here); value equality is `==` — a documented divergence from Icon,
// where `=` is numeric equality and `==` string equality.
#pragma once

#include <string_view>

#include "frontend/ast.hpp"
#include "frontend/lexer.hpp"

namespace congen::frontend {

/// Parse a whole program (defs + statements). Throws SyntaxError.
ast::NodePtr parseProgram(std::string_view source);

/// Parse a single expression; trailing tokens are an error.
ast::NodePtr parseExpression(std::string_view source);

}  // namespace congen::frontend

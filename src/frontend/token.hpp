// token.hpp — lexical tokens of the embedded Junicon dialect.
#pragma once

#include <cstdint>
#include <string>

namespace congen::frontend {

enum class TokKind : std::uint8_t {
  End,
  IntLit,     // 42, 16r1F, 36rHELLO
  RealLit,    // 3.14, 1e9
  StrLit,     // "..." (text holds the decoded value)
  Ident,
  Keyword,    // def procedure method local var every while until repeat if
              // then else suspend return fail break next do to by not create
  AmpKeyword, // &null, &fail
  Op,         // operators and punctuation; text holds the spelling
};

struct Token {
  TokKind kind = TokKind::End;
  std::string text;
  int line = 1;
  int col = 1;

  [[nodiscard]] bool is(TokKind k) const noexcept { return kind == k; }
  [[nodiscard]] bool isOp(std::string_view s) const noexcept {
    return kind == TokKind::Op && text == s;
  }
  [[nodiscard]] bool isKeyword(std::string_view s) const noexcept {
    return kind == TokKind::Keyword && text == s;
  }
};

}  // namespace congen::frontend

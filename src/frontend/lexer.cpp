#include "frontend/lexer.hpp"

#include <array>
#include <cctype>
#include <stdexcept>
#include <unordered_set>

namespace congen::frontend {

namespace {

const std::unordered_set<std::string>& keywords() {
  static const std::unordered_set<std::string> kw = {
      "def",    "procedure", "method", "end",   "local", "var",   "every", "while",
      "until",  "repeat",    "if",     "then",  "else",  "suspend", "return", "fail", "record", "case", "of", "default", "global",
      "break",  "next",      "do",     "to",    "by",    "not",   "create",
  };
  return kw;
}

// Multi-character operators, longest first (longest-match scanning).
constexpr std::array<std::string_view, 29> kMultiOps = {
    "|||", "|<>", "~===", ":=:", "||:=", "<:=", ">:=", "===", "~==", "<->", "<-",  "+:=",
    "-:=", "*:=", "/:=",  "%:=", "^:=",  ":=",  "<=",  ">=",  "~=",  "==",  "!=",  "::",
    "||",  "|>",  "<>",   "->",  "..",
};

}  // namespace

std::vector<Token> tokenize(std::string_view src) {
  std::vector<Token> out;
  std::size_t i = 0;
  int line = 1, col = 1;

  auto advance = [&](std::size_t n) {
    for (std::size_t k = 0; k < n; ++k) {
      if (i < src.size() && src[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
      ++i;
    }
  };
  auto peek = [&](std::size_t off = 0) -> char {
    return i + off < src.size() ? src[i + off] : '\0';
  };

  while (i < src.size()) {
    const char c = src[i];
    // whitespace & comments
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance(1);
      continue;
    }
    if (c == '#') {
      while (i < src.size() && src[i] != '\n') advance(1);
      continue;
    }

    Token tok;
    tok.line = line;
    tok.col = col;

    // numbers: digits [r alnum+] | digits . digits [exp] | digits exp
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      while (j < src.size() && std::isdigit(static_cast<unsigned char>(src[j]))) ++j;
      if (j < src.size() && (src[j] == 'r' || src[j] == 'R') && j + 1 < src.size() &&
          std::isalnum(static_cast<unsigned char>(src[j + 1]))) {
        ++j;  // radix literal: NrDIGITS
        while (j < src.size() && std::isalnum(static_cast<unsigned char>(src[j]))) ++j;
        tok.kind = TokKind::IntLit;
      } else if (j < src.size() &&
                 ((src[j] == '.' && j + 1 < src.size() &&
                   std::isdigit(static_cast<unsigned char>(src[j + 1]))) ||
                  src[j] == 'e' || src[j] == 'E')) {
        if (src[j] == '.') {
          ++j;
          while (j < src.size() && std::isdigit(static_cast<unsigned char>(src[j]))) ++j;
        }
        if (j < src.size() && (src[j] == 'e' || src[j] == 'E')) {
          ++j;
          if (j < src.size() && (src[j] == '+' || src[j] == '-')) ++j;
          while (j < src.size() && std::isdigit(static_cast<unsigned char>(src[j]))) ++j;
        }
        tok.kind = TokKind::RealLit;
      } else {
        tok.kind = TokKind::IntLit;
      }
      tok.text = std::string(src.substr(i, j - i));
      advance(j - i);
      out.push_back(std::move(tok));
      continue;
    }

    // identifiers & keywords
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = i;
      while (j < src.size() &&
             (std::isalnum(static_cast<unsigned char>(src[j])) || src[j] == '_')) {
        ++j;
      }
      tok.text = std::string(src.substr(i, j - i));
      tok.kind = keywords().contains(tok.text) ? TokKind::Keyword : TokKind::Ident;
      advance(j - i);
      out.push_back(std::move(tok));
      continue;
    }

    // strings
    if (c == '"') {
      std::string value;
      advance(1);
      while (true) {
        if (i >= src.size()) throw SyntaxError("unterminated string literal", tok.line, tok.col);
        const char s = src[i];
        if (s == '"') {
          advance(1);
          break;
        }
        if (s == '\\') {
          advance(1);
          if (i >= src.size()) throw SyntaxError("unterminated escape", line, col);
          const char e = src[i];
          switch (e) {
            case 'n': value += '\n'; break;
            case 't': value += '\t'; break;
            case 'r': value += '\r'; break;
            case '\\': value += '\\'; break;
            case '"': value += '"'; break;
            case '0': value += '\0'; break;
            default: value += '\\'; value += e;  // keep unknown escapes (e.g. regex "\\s")
          }
          advance(1);
          continue;
        }
        value += s;
        advance(1);
      }
      tok.kind = TokKind::StrLit;
      tok.text = std::move(value);
      out.push_back(std::move(tok));
      continue;
    }

    // &-keywords (&null, &fail) vs the & operator
    if (c == '&' && std::isalpha(static_cast<unsigned char>(peek(1)))) {
      std::size_t j = i + 1;
      while (j < src.size() && std::isalpha(static_cast<unsigned char>(src[j]))) ++j;
      tok.kind = TokKind::AmpKeyword;
      tok.text = std::string(src.substr(i, j - i));
      advance(j - i);
      out.push_back(std::move(tok));
      continue;
    }

    // multi-char operators, longest match first
    bool matched = false;
    for (const auto op : kMultiOps) {
      if (src.substr(i, op.size()) == op) {
        tok.kind = TokKind::Op;
        tok.text = std::string(op);
        advance(op.size());
        out.push_back(std::move(tok));
        matched = true;
        break;
      }
    }
    if (matched) continue;

    // single-char operators/punctuation
    static constexpr std::string_view kSingles = "+-*/%^<>=!~@&|?.,;:()[]{}\\";
    if (kSingles.find(c) != std::string_view::npos) {
      tok.kind = TokKind::Op;
      tok.text = std::string(1, c);
      advance(1);
      out.push_back(std::move(tok));
      continue;
    }

    throw SyntaxError(std::string("unexpected character '") + c + "'", line, col);
  }

  Token end;
  end.kind = TokKind::End;
  end.line = line;
  end.col = col;
  out.push_back(std::move(end));
  return out;
}

}  // namespace congen::frontend

// lexer.hpp — hand-written scanner for the Junicon dialect.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "frontend/token.hpp"

namespace congen::frontend {

/// Syntax errors carry source position.
class SyntaxError : public std::runtime_error {
 public:
  SyntaxError(const std::string& message, int line, int col)
      : std::runtime_error("syntax error at " + std::to_string(line) + ":" + std::to_string(col) +
                           ": " + message),
        line_(line),
        col_(col) {}

  [[nodiscard]] int line() const noexcept { return line_; }
  [[nodiscard]] int col() const noexcept { return col_; }

 private:
  int line_, col_;
};

/// Tokenize a whole source buffer. Comments: `#` to end of line.
std::vector<Token> tokenize(std::string_view source);

}  // namespace congen::frontend

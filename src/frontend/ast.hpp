// ast.hpp — abstract syntax of the Junicon dialect.
//
// A deliberately uniform tree: one node type with a kind tag, a text
// payload (names, operator spellings, literal text) and a children
// vector. The uniformity is what makes the normalization pass (Section
// V.A) a clean term-rewriting system: rules match on (kind, text) and
// rebuild nodes structurally.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace congen::ast {

enum class Kind {
  // literals & names
  IntLit,    // text = literal spelling (decimal or NrDIGITS radix form)
  RealLit,   // text = literal spelling
  StrLit,    // text = decoded string value
  NullLit,   // &null
  FailLit,   // &fail — an expression that always fails
  Ident,     // text = name
  KeywordVar,// &subject, &pos — text = keyword name without '&'
  ListLit,   // kids = element expressions

  // expressions
  Binary,    // text = operator; kids = [lhs, rhs]
  Unary,     // text = operator (! * - + ~ @ ^ <> |<> |> |); kids = [operand]
  Assign,    // text = ":=" or augmented ("+:=" ...); kids = [lhs, rhs]
  Swap,      // :=: ; kids = [lhs, rhs]
  ToBy,      // kids = [from, to] or [from, to, by]
  Limit,     // e \ n; kids = [expr, bound]
  Index,     // kids = [collection, index]
  Slice,     // kids = [collection, from, to] — x[i:j]
  Field,     // text = field name; kids = [object]
  Invoke,    // kids = [callee, arg...]
  NativeInvoke, // text = method name; kids = [receiver, arg...] — the ::
                // cut-through to host functions (Section IV)
  ExprSeq,   // (e1; e2; e3) — kids are the terms; last delegates
  Not,       // not e

  // normalized IR (produced by the transform pass, never by the parser)
  BoundIter, // (x in e): text = variable name; kids = [source]
  TempRef,   // reference to a normalization temporary; text = name

  // statements
  Block,     // kids = statements
  ExprStmt,  // kids = [expr]
  VarDecl,   // one declaration; text = name; kids = [init?]
  DeclList,  // kids = VarDecl...
  EveryStmt, // kids = [control, body?]
  WhileStmt, // kids = [cond, body?]
  UntilStmt, // kids = [cond, body?]
  RepeatStmt,// kids = [body]
  IfStmt,    // kids = [cond, then, else?]  (also usable as an expression)
  SuspendStmt, // kids = [expr?]; optional trailing `do` body unsupported
  ReturnStmt,  // kids = [expr?]
  FailStmt,
  BreakStmt,
  NextStmt,
  CaseStmt,   // kids = [control, CaseBranch...]
  CaseBranch, // kids = [body] for default, else [valueExpr, body]

  // declarations
  Def,        // text = name; kids = [ParamList, Block]
  ParamList,  // kids = Ident...
  RecordDecl, // text = type name; kids = Ident fields
  GlobalDecl, // kids = Ident names
  Program,    // kids = Def | statement ...
};

struct Node;
using NodePtr = std::shared_ptr<Node>;

/// How a name node was classified by the resolution pass (interp/resolver).
/// Attached to Ident/TempRef/BoundIter/VarDecl/NativeInvoke nodes; the
/// frame-mode compiler reads `slot` instead of walking a scope chain.
enum class Res : std::uint8_t {
  Unresolved,  // no resolution pass ran (top-level / eval compilation)
  Slot,        // frame slot `slot`: parameter, local, or bound temporary
  Late,        // frame slot `slot`, but re-checked against globals on each
               // access (name unknown at resolve time: a global may appear)
  Global,      // bound to the global cell of this name
  Builtin,     // interned builtin procedure constant
};

struct Node {
  Kind kind;
  std::string text;
  std::vector<NodePtr> kids;
  int line = 0;
  int col = 0;
  Res res = Res::Unresolved;
  std::int32_t slot = -1;  // frame slot index for Res::Slot / Res::Late

  Node(Kind k, std::string t = {}) : kind(k), text(std::move(t)) {}
};

inline NodePtr make(Kind k, std::string text = {}, std::vector<NodePtr> kids = {}) {
  auto n = std::make_shared<Node>(k, std::move(text));
  n->kids = std::move(kids);
  return n;
}

/// Render a tree as an s-expression (tests, debugging, golden files).
std::string dump(const NodePtr& node);

/// Deep structural copy.
NodePtr clone(const NodePtr& node);

}  // namespace congen::ast

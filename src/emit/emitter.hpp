// emitter.hpp — translation of Junicon to C++ over the kernel API.
//
// The compiled path of the paper's harness: where Fig. 5 shows `spawnMap`
// translated into Java IconIterator constructors, emitModule() produces
// the same shape in C++ — a module struct whose methods build the
// composed iterator trees, with reified parameters, unpack closures,
// method-body caching, and synthesized co-expressions that copy their
// referenced locals (the `chunk_s_r` shadowing of Fig. 5).
//
// Contract of the generated code:
//  * It only needs `#include <congen.hpp>` (the umbrella header).
//  * Each translated program becomes `struct <ModuleName> { ... }`.
//  * Procedure definitions become `make_<name>()` factories, registered
//    into a globals map in the constructor; top-level statements run in
//    the constructor, bounded, in order.
//  * Host code exchanges data through `set(name, value)` / `get(name)`
//    and obtains generators from `call("name", {...})` or the emitted
//    `expr_N()` methods for expression-level regions.
#pragma once

#include <string>
#include <vector>

#include "frontend/ast.hpp"

namespace congen::emit {

struct EmitOptions {
  std::string moduleName = "CongenModule";
  std::size_t pipeCapacity = 1024;
  /// Adaptive batch cap for |> transport in the emitted module (1 =
  /// unbatched; mirrors Interpreter::Options::pipeBatch).
  std::size_t pipeBatch = 64;
  /// Normalize (Section V.A flattening) before emission. On by default;
  /// emission requires it for faithful Fig. 5 output shape.
  bool normalize = true;
  /// Names known to be provided by the host via set() — never treated as
  /// implicit locals.
  std::vector<std::string> hostGlobals;
};

/// Emit a full module struct for a program (defs + top-level statements).
std::string emitModule(const ast::NodePtr& program, const EmitOptions& opts);

/// Emit a module that additionally exposes expression regions as
/// `congen::GenPtr expr_I()` methods, in order.
std::string emitModuleWithExprs(const ast::NodePtr& program,
                                const std::vector<ast::NodePtr>& exprRegions,
                                const EmitOptions& opts);

/// Translation failure (unsupported construct at emit level).
class EmitError : public std::runtime_error {
 public:
  explicit EmitError(const std::string& message) : std::runtime_error(message) {}
};

}  // namespace congen::emit

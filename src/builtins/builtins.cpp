#include "builtins/builtins.hpp"

#include <chrono>
#include <cmath>
#include <iostream>
#include <mutex>
#include <unordered_map>

#include "kernel/basic.hpp"
#include "kernel/coexpression.hpp"
#include "kernel/compose.hpp"
#include "kernel/error_env.hpp"
#include "kernel/gen.hpp"
#include "kernel/ops.hpp"
#include "kernel/scan.hpp"
#include "obs/metrics.hpp"
#include "runtime/collections.hpp"
#include "runtime/error.hpp"
#include "runtime/governor.hpp"

namespace congen::builtins {

namespace {

/// Generator that yields at most one precomputed value — the result shape
/// of most builtins.
GenPtr singleton(std::optional<Value> v) {
  if (!v) return FailGen::create();
  return ConstGen::create(std::move(*v));
}

std::mutex& ioMutex() {
  static std::mutex m;
  return m;
}

Value argOr(const std::vector<Value>& args, std::size_t i, Value fallback) {
  return i < args.size() ? args[i] : fallback;
}

// ---------------------------------------------------------------------
// the builtin table
// ---------------------------------------------------------------------

using Table = std::unordered_map<std::string, ProcPtr>;

void addNative(Table& t, const std::string& name,
               std::function<std::optional<Value>(std::vector<Value>&)> fn) {
  t.emplace(name, makeNative(name, std::move(fn)));
}

void addNativeGen(Table& t, const std::string& name,
                  std::function<GenPtr(std::vector<Value>&)> fn) {
  t.emplace(name, makeNativeGen(name, std::move(fn)));
}

Table buildTable() {
  Table t;

  // ---- I/O ----------------------------------------------------------
  addNative(t, "write", [](std::vector<Value>& args) -> std::optional<Value> {
    std::lock_guard lock(ioMutex());
    for (const auto& a : args) std::cout << a.toDisplayString();
    std::cout << '\n';
    return args.empty() ? Value::null() : args.back();
  });
  addNative(t, "writes", [](std::vector<Value>& args) -> std::optional<Value> {
    std::lock_guard lock(ioMutex());
    for (const auto& a : args) std::cout << a.toDisplayString();
    std::cout.flush();
    return args.empty() ? Value::null() : args.back();
  });
  addNative(t, "read", [](std::vector<Value>&) -> std::optional<Value> {
    std::lock_guard lock(ioMutex());
    std::string line;
    if (!std::getline(std::cin, line)) return std::nullopt;  // EOF: fail
    return Value::string(std::move(line));
  });
  addNative(t, "stop", [](std::vector<Value>& args) -> std::optional<Value> {
    std::string msg;
    for (const auto& a : args) msg += a.toDisplayString();
    throw IconError(500, "stop: " + msg);
  });

  // ---- structures ----------------------------------------------------
  addNative(t, "list", [](std::vector<Value>& args) -> std::optional<Value> {
    auto l = ListImpl::create();
    if (!args.empty()) {
      const std::int64_t n = args[0].requireInt64("size of list()");
      const Value fill = argOr(args, 1, Value::null());
      for (std::int64_t i = 0; i < n; ++i) l->put(fill);
    }
    return Value::list(std::move(l));
  });
  addNative(t, "table", [](std::vector<Value>& args) -> std::optional<Value> {
    return Value::table(TableImpl::create(argOr(args, 0, Value::null())));
  });
  addNative(t, "set", [](std::vector<Value>& args) -> std::optional<Value> {
    auto s = SetImpl::create();
    if (!args.empty() && args[0].isList()) {
      for (const auto& e : args[0].list()->elements()) s->insert(e);
    }
    return Value::set(std::move(s));
  });
  addNative(t, "put", [](std::vector<Value>& args) -> std::optional<Value> {
    if (args.empty() || !args[0].isList()) throw errListExpected("put");
    for (std::size_t i = 1; i < args.size(); ++i) args[0].list()->put(args[i]);
    return args[0];
  });
  addNative(t, "push", [](std::vector<Value>& args) -> std::optional<Value> {
    if (args.empty() || !args[0].isList()) throw errListExpected("push");
    for (std::size_t i = 1; i < args.size(); ++i) args[0].list()->push(args[i]);
    return args[0];
  });
  addNative(t, "get", [](std::vector<Value>& args) -> std::optional<Value> {
    if (args.empty() || !args[0].isList()) throw errListExpected("get");
    return args[0].list()->get();  // fails when empty
  });
  addNative(t, "pop", [](std::vector<Value>& args) -> std::optional<Value> {
    if (args.empty() || !args[0].isList()) throw errListExpected("pop");
    return args[0].list()->get();
  });
  addNative(t, "pull", [](std::vector<Value>& args) -> std::optional<Value> {
    if (args.empty() || !args[0].isList()) throw errListExpected("pull");
    return args[0].list()->pull();
  });
  addNative(t, "insert", [](std::vector<Value>& args) -> std::optional<Value> {
    if (args.empty()) throw errInvalidValue("insert with no arguments");
    if (args[0].isSet()) {
      args[0].set()->insert(argOr(args, 1, Value::null()));
      return args[0];
    }
    if (args[0].isTable()) {
      args[0].table()->insert(argOr(args, 1, Value::null()), argOr(args, 2, Value::null()));
      return args[0];
    }
    throw errInvalidValue("insert into " + args[0].typeName());
  });
  addNative(t, "delete", [](std::vector<Value>& args) -> std::optional<Value> {
    if (args.empty()) throw errInvalidValue("delete with no arguments");
    if (args[0].isSet()) {
      args[0].set()->erase(argOr(args, 1, Value::null()));
      return args[0];
    }
    if (args[0].isTable()) {
      args[0].table()->erase(argOr(args, 1, Value::null()));
      return args[0];
    }
    throw errInvalidValue("delete from " + args[0].typeName());
  });
  addNative(t, "member", [](std::vector<Value>& args) -> std::optional<Value> {
    if (args.empty()) throw errInvalidValue("member with no arguments");
    const Value probe = argOr(args, 1, Value::null());
    const bool yes = args[0].isSet()    ? args[0].set()->member(probe)
                     : args[0].isTable() ? args[0].table()->member(probe)
                                         : throw errInvalidValue("member of " + args[0].typeName());
    if (!yes) return std::nullopt;
    return probe;
  });
  addNativeGen(t, "key", [](std::vector<Value>& args) -> GenPtr {
    if (args.empty() || !args[0].isTable()) throw errInvalidValue("key of non-table");
    return ValuesGen::create(args[0].table()->sortedKeys());
  });
  addNative(t, "sort", [](std::vector<Value>& args) -> std::optional<Value> {
    if (args.empty()) throw errInvalidValue("sort with no arguments");
    std::vector<Value> elems;
    if (args[0].isList()) {
      const auto& src = args[0].list()->elements();
      elems.assign(src.begin(), src.end());
      std::sort(elems.begin(), elems.end(),
                [](const Value& a, const Value& b) { return a.compare(b) < 0; });
    } else if (args[0].isSet()) {
      elems = args[0].set()->sortedMembers();
    } else if (args[0].isTable()) {
      for (const auto& k : args[0].table()->sortedKeys()) {
        auto pair = ListImpl::create();
        pair->put(k);
        pair->put(args[0].table()->lookup(k));
        elems.push_back(Value::list(std::move(pair)));
      }
    } else {
      throw errInvalidValue("sort of " + args[0].typeName());
    }
    return Value::list(ListImpl::create(std::deque<Value>(elems.begin(), elems.end())));
  });
  addNative(t, "reverse", [](std::vector<Value>& args) -> std::optional<Value> {
    if (args.empty()) throw errInvalidValue("reverse with no arguments");
    if (args[0].isString()) {
      std::string s(args[0].str());
      std::reverse(s.begin(), s.end());
      return Value::string(std::move(s));
    }
    if (args[0].isList()) {
      std::deque<Value> d = args[0].list()->elements();
      std::reverse(d.begin(), d.end());
      return Value::list(ListImpl::create(std::move(d)));
    }
    throw errInvalidValue("reverse of " + args[0].typeName());
  });
  addNative(t, "copy", [](std::vector<Value>& args) -> std::optional<Value> {
    if (args.empty()) return Value::null();
    const Value& v = args[0];
    if (v.isList()) return Value::list(ListImpl::create(v.list()->elements()));
    if (v.isTable()) {
      auto copy = TableImpl::create(v.table()->defaultValue());
      for (const auto& [k, val] : v.table()->entries()) copy->insert(k, val);
      return Value::table(std::move(copy));
    }
    if (v.isSet()) {
      auto copy = SetImpl::create();
      for (const auto& m : v.set()->members()) copy->insert(m);
      return Value::set(std::move(copy));
    }
    return v;  // immutable types copy trivially
  });

  // ---- type & conversion ---------------------------------------------
  addNative(t, "type", [](std::vector<Value>& args) -> std::optional<Value> {
    return Value::string(argOr(args, 0, Value::null()).typeName());
  });
  addNative(t, "image", [](std::vector<Value>& args) -> std::optional<Value> {
    return Value::string(argOr(args, 0, Value::null()).image());
  });
  addNative(t, "numeric", [](std::vector<Value>& args) -> std::optional<Value> {
    return argOr(args, 0, Value::null()).toNumeric();  // fails if not numeric
  });
  addNative(t, "integer", [](std::vector<Value>& args) -> std::optional<Value> {
    const Value v = argOr(args, 0, Value::null());
    if (args.size() >= 2) {
      // integer(s, radix): parse a string in the given radix (the
      // wordToNumber of Fig. 3 is integer(word, 36)).
      const auto radix = static_cast<unsigned>(args[1].requireInt64("radix"));
      auto big = BigInt::parse(v.requireString("integer()"), radix);
      if (!big) return std::nullopt;
      return Value::integer(*std::move(big));
    }
    return v.toIntegerValue();
  });
  addNative(t, "real", [](std::vector<Value>& args) -> std::optional<Value> {
    auto n = argOr(args, 0, Value::null()).toNumeric();
    if (!n) return std::nullopt;
    if (n->isReal()) return n;
    return Value::real(n->isSmallInt() ? static_cast<double>(n->smallInt()) : n->bigInt().toDouble());
  });
  addNative(t, "string", [](std::vector<Value>& args) -> std::optional<Value> {
    return Value::string(argOr(args, 0, Value::null()).toDisplayString());
  });

  // ---- arithmetic / math ----------------------------------------------
  addNative(t, "abs", [](std::vector<Value>& args) -> std::optional<Value> {
    auto n = argOr(args, 0, Value::null()).toNumeric();
    if (!n) throw errNumericExpected("abs");
    if (n->isReal()) return Value::real(std::fabs(n->real()));
    if (n->isSmallInt() && n->smallInt() != INT64_MIN) return Value::integer(std::abs(n->smallInt()));
    return Value::integer(n->requireBigInt("abs").abs());
  });
  addNative(t, "min", [](std::vector<Value>& args) -> std::optional<Value> {
    if (args.empty()) return std::nullopt;
    Value best = args[0];
    for (std::size_t i = 1; i < args.size(); ++i) {
      if (ops::numLT(args[i], best)) best = args[i];
    }
    return best;
  });
  addNative(t, "max", [](std::vector<Value>& args) -> std::optional<Value> {
    if (args.empty()) return std::nullopt;
    Value best = args[0];
    for (std::size_t i = 1; i < args.size(); ++i) {
      if (ops::numGT(args[i], best)) best = args[i];
    }
    return best;
  });
  addNative(t, "sqrt", [](std::vector<Value>& args) -> std::optional<Value> {
    const Value v = argOr(args, 0, Value::null());
    // Icon sqrt returns a real; huge integers go through BigInt::isqrt to
    // keep precision (matching BigInteger-based hashing in the paper).
    if (v.isInteger() && !v.isSmallInt()) return Value::real(v.bigInt().isqrt().toDouble());
    const double d = v.requireReal("sqrt");
    if (d < 0) throw errInvalidValue("sqrt of negative");
    return Value::real(std::sqrt(d));
  });
  addNative(t, "isqrt", [](std::vector<Value>& args) -> std::optional<Value> {
    return Value::integer(argOr(args, 0, Value::null()).requireBigInt("isqrt").isqrt());
  });
  using MathFn = double (*)(double);
  for (const auto& [name, fn] : std::initializer_list<std::pair<const char*, MathFn>>{
           {"exp", static_cast<MathFn>(std::exp)}, {"log", static_cast<MathFn>(std::log)},
           {"sin", static_cast<MathFn>(std::sin)}, {"cos", static_cast<MathFn>(std::cos)},
           {"tan", static_cast<MathFn>(std::tan)}, {"atan", static_cast<MathFn>(std::atan)}}) {
    addNative(t, name, [fn = fn, name = std::string(name)](std::vector<Value>& args) -> std::optional<Value> {
      return Value::real(fn(argOr(args, 0, Value::null()).requireReal(name)));
    });
  }

  // ---- number theory (heavyweight hash components) --------------------
  addNative(t, "isprime", [](std::vector<Value>& args) -> std::optional<Value> {
    // Goal-directed: produce the argument if prime, otherwise fail
    // (matches isprime() in the paper's Section II example). Reads the
    // argument in place: this sits on the interpreters' hot search path.
    if (!args.empty() && args[0].isSmallInt()) {  // no BigInt materialization
      const auto n = args[0].smallInt();
      if (n < 2 || !BigInt::isPrimeU64(static_cast<std::uint64_t>(n))) return std::nullopt;
      return args[0];
    }
    const Value v = argOr(args, 0, Value::null());
    if (!v.requireBigInt("isprime").isProbablePrime()) return std::nullopt;
    return v;
  });
  addNative(t, "nextprime", [](std::vector<Value>& args) -> std::optional<Value> {
    return Value::integer(argOr(args, 0, Value::null()).requireBigInt("nextprime").nextProbablePrime());
  });

  // ---- strings ---------------------------------------------------------
  addNativeGen(t, "find", [](std::vector<Value>& args) -> GenPtr {
    // find(needle [, haystack [, i]]): generate every 1-based position;
    // haystack and i default to &subject and &pos.
    const std::string needle = argOr(args, 0, Value::null()).requireString("find needle");
    const std::string hay = args.size() >= 2 ? args[1].requireString("find haystack")
                                             : std::string(ScanEnv::current().subject.str());
    const std::int64_t start = args.size() >= 3 ? args[2].requireInt64("find position")
                               : args.size() >= 2 ? 1
                                                  : ScanEnv::current().pos;
    std::vector<Value> positions;
    if (!needle.empty()) {
      const auto from = start >= 1 ? static_cast<std::size_t>(start - 1) : 0;
      for (std::size_t pos = hay.find(needle, from); pos != std::string::npos;
           pos = hay.find(needle, pos + 1)) {
        positions.push_back(Value::integer(static_cast<std::int64_t>(pos) + 1));
      }
    }
    return ValuesGen::create(std::move(positions));
  });
  addNative(t, "split", [](std::vector<Value>& args) -> std::optional<Value> {
    // split(s [, separators]): list of fields; default whitespace — the
    // splitWords of Fig. 3.
    const std::string s = argOr(args, 0, Value::null()).requireString("split");
    const std::string seps = args.size() >= 2 ? args[1].requireString("split separators") : " \t\r\n";
    auto out = ListImpl::create();
    std::string cur;
    for (const char c : s) {
      if (seps.find(c) != std::string::npos) {
        if (!cur.empty()) out->put(Value::string(std::move(cur)));
        cur.clear();
      } else {
        cur.push_back(c);
      }
    }
    if (!cur.empty()) out->put(Value::string(std::move(cur)));
    return Value::list(std::move(out));
  });
  addNative(t, "trim", [](std::vector<Value>& args) -> std::optional<Value> {
    std::string s = argOr(args, 0, Value::null()).requireString("trim");
    const auto end = s.find_last_not_of(" \t\r\n");
    s.erase(end == std::string::npos ? 0 : end + 1);
    return Value::string(std::move(s));
  });
  addNative(t, "map", [](std::vector<Value>& args) -> std::optional<Value> {
    // map(s, from, to): character mapping (Icon map()).
    std::string s = argOr(args, 0, Value::null()).requireString("map");
    const std::string from = argOr(args, 1, Value::string("ABCDEFGHIJKLMNOPQRSTUVWXYZ")).requireString("map from");
    const std::string to = argOr(args, 2, Value::string("abcdefghijklmnopqrstuvwxyz")).requireString("map to");
    if (from.size() != to.size()) throw errInvalidValue("map: from/to lengths differ");
    for (auto& c : s) {
      const auto pos = from.find(c);
      if (pos != std::string::npos) c = to[pos];
    }
    return Value::string(std::move(s));
  });

  // ---- more strings -----------------------------------------------------
  addNative(t, "left", [](std::vector<Value>& args) -> std::optional<Value> {
    // left(s, n, pad): s left-justified in a field of width n.
    std::string s = argOr(args, 0, Value::null()).requireString("left");
    const auto n = static_cast<std::size_t>(argOr(args, 1, Value::integer(1)).requireInt64("left width"));
    const std::string pad = args.size() >= 3 ? args[2].requireString("left pad") : " ";
    if (s.size() > n) return Value::string(s.substr(0, n));
    while (s.size() < n) s += pad.empty() ? ' ' : pad[(s.size()) % pad.size()];
    return Value::string(std::move(s));
  });
  addNative(t, "right", [](std::vector<Value>& args) -> std::optional<Value> {
    std::string s = argOr(args, 0, Value::null()).requireString("right");
    const auto n = static_cast<std::size_t>(argOr(args, 1, Value::integer(1)).requireInt64("right width"));
    const std::string pad = args.size() >= 3 ? args[2].requireString("right pad") : " ";
    if (s.size() > n) return Value::string(s.substr(s.size() - n));
    std::string out;
    while (out.size() + s.size() < n) out += pad.empty() ? ' ' : pad[out.size() % pad.size()];
    return Value::string(out + s);
  });
  addNative(t, "repl", [](std::vector<Value>& args) -> std::optional<Value> {
    const std::string s = argOr(args, 0, Value::null()).requireString("repl");
    const std::int64_t n = argOr(args, 1, Value::integer(0)).requireInt64("repl count");
    if (n < 0) throw errInvalidValue("repl with negative count");
    std::string out;
    out.reserve(s.size() * static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) out += s;
    return Value::string(std::move(out));
  });
  addNative(t, "ord", [](std::vector<Value>& args) -> std::optional<Value> {
    const std::string s = argOr(args, 0, Value::null()).requireString("ord");
    if (s.size() != 1) throw errInvalidValue("ord of a non-single-character string");
    return Value::integer(static_cast<unsigned char>(s[0]));
  });
  addNative(t, "char", [](std::vector<Value>& args) -> std::optional<Value> {
    const std::int64_t c = argOr(args, 0, Value::null()).requireInt64("char");
    if (c < 0 || c > 255) throw errInvalidValue("char out of range");
    return Value::string(std::string(1, static_cast<char>(c)));
  });
  addNativeGen(t, "upto", [](std::vector<Value>& args) -> GenPtr {
    // upto(c [, s [, i]]): every position in s holding a character of c,
    // from i on. s and i default to &subject and &pos (Icon).
    const std::string cset = builtins::arg(args, 0).requireString("upto cset");
    const std::string s = args.size() >= 2 ? args[1].requireString("upto subject")
                                           : std::string(ScanEnv::current().subject.str());
    const std::int64_t start = args.size() >= 3 ? args[2].requireInt64("upto position")
                               : args.size() >= 2 ? 1
                                                  : ScanEnv::current().pos;
    std::vector<Value> positions;
    for (std::size_t i = start >= 1 ? static_cast<std::size_t>(start - 1) : 0; i < s.size(); ++i) {
      if (cset.find(s[i]) != std::string::npos) {
        positions.push_back(Value::integer(static_cast<std::int64_t>(i) + 1));
      }
    }
    return ValuesGen::create(std::move(positions));
  });
  addNative(t, "any", [](std::vector<Value>& args) -> std::optional<Value> {
    // any(c [, s [, i]]): succeeds with i+1 if s[i] is in c; s and i
    // default to the scanning environment.
    const std::string cset = builtins::arg(args, 0).requireString("any cset");
    const std::string s = args.size() >= 2 ? args[1].requireString("any subject")
                                           : std::string(ScanEnv::current().subject.str());
    const std::int64_t i = args.size() >= 3 ? args[2].requireInt64("any position")
                           : args.size() >= 2 ? 1
                                              : ScanEnv::current().pos;
    if (i < 1 || static_cast<std::size_t>(i) > s.size()) return std::nullopt;
    if (cset.find(s[static_cast<std::size_t>(i - 1)]) == std::string::npos) return std::nullopt;
    return Value::integer(i + 1);
  });
  addNative(t, "many", [](std::vector<Value>& args) -> std::optional<Value> {
    // many(c [, s [, i]]): longest run of characters of c starting at i;
    // defaults to the scanning environment.
    const std::string cset = builtins::arg(args, 0).requireString("many cset");
    const std::string s = args.size() >= 2 ? args[1].requireString("many subject")
                                           : std::string(ScanEnv::current().subject.str());
    std::int64_t i = args.size() >= 3 ? args[2].requireInt64("many position")
                     : args.size() >= 2 ? 1
                                        : ScanEnv::current().pos;
    if (i < 1 || static_cast<std::size_t>(i) > s.size()) return std::nullopt;
    std::int64_t j = i;
    while (static_cast<std::size_t>(j) <= s.size() &&
           cset.find(s[static_cast<std::size_t>(j - 1)]) != std::string::npos) {
      ++j;
    }
    if (j == i) return std::nullopt;
    return Value::integer(j);
  });
  addNative(t, "match", [](std::vector<Value>& args) -> std::optional<Value> {
    // match(s1 [, s2 [, i]]): position past s1 if s2 starts with s1 at
    // i; defaults to the scanning environment.
    const std::string needle = builtins::arg(args, 0).requireString("match needle");
    const std::string s = args.size() >= 2 ? args[1].requireString("match subject")
                                           : std::string(ScanEnv::current().subject.str());
    const std::int64_t i = args.size() >= 3 ? args[2].requireInt64("match position")
                           : args.size() >= 2 ? 1
                                              : ScanEnv::current().pos;
    if (i < 1 || static_cast<std::size_t>(i - 1) + needle.size() > s.size()) return std::nullopt;
    if (s.compare(static_cast<std::size_t>(i - 1), needle.size(), needle) != 0) return std::nullopt;
    return Value::integer(i + static_cast<std::int64_t>(needle.size()));
  });

  // ---- string scanning (reversible matching functions) -------------------
  addNativeGen(t, "tab", [](std::vector<Value>& args) -> GenPtr {
    return makeTabGen(ConstGen::create(builtins::arg(args, 0)));
  });
  addNativeGen(t, "move", [](std::vector<Value>& args) -> GenPtr {
    return makeMoveGen(ConstGen::create(builtins::arg(args, 0)));
  });
  addNative(t, "pos", [](std::vector<Value>& args) -> std::optional<Value> {
    // pos(i): succeeds (with &pos) when the scan position is i.
    const auto p = ScanEnv::resolvePos(builtins::arg(args, 0).requireInt64("pos"));
    if (!p || *p != ScanEnv::current().pos) return std::nullopt;
    return Value::integer(ScanEnv::current().pos);
  });

  // ---- generators ------------------------------------------------------
  addNativeGen(t, "seq", [](std::vector<Value>& args) -> GenPtr {
    // seq(from, by): the unbounded arithmetic sequence.
    const Value from = argOr(args, 0, Value::integer(1));
    const Value by = argOr(args, 1, Value::integer(1));
    struct SeqGenInf final : Gen {
      Value from, by, current;
      bool started = false;
      SeqGenInf(Value f, Value b) : from(std::move(f)), by(std::move(b)) {}
      bool doNext(Result& out) override {
        current = started ? ops::add(current, by) : from;
        started = true;
        out.set(current);
        return true;
      }
      void doRestart() override { started = false; }
    };
    return std::make_shared<SeqGenInf>(from, by);
  });

  // ---- cancellation / deadlines / error handling ---------------------
  addNative(t, "timeout", [](std::vector<Value>& args) -> std::optional<Value> {
    // timeout(c, ms): activate c, but give up (fail) if no result
    // arrives within ms milliseconds. The deadline bounds *waiting* —
    // a plain co-expression computes on this thread and ignores it; a
    // pipe abandons the wait and stays re-activatable.
    const Value c = argOr(args, 0, Value::null());
    if (!c.isCoExpr()) throw errCoExprExpected("timeout: " + c.image());
    const std::int64_t ms = argOr(args, 1, Value::null()).requireInt64("timeout milliseconds");
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
    return c.coExpr()->activateUntil(deadline);
  });
  addNative(t, "errorclear", [](std::vector<Value>&) -> std::optional<Value> {
    ErrorEnv::clear();
    return Value::null();
  });

  // ---- monitoring ------------------------------------------------------
  addNative(t, "metricson", [](std::vector<Value>&) -> std::optional<Value> {
    obs::enableMetrics();
    return Value::null();
  });
  addNative(t, "metricsoff", [](std::vector<Value>&) -> std::optional<Value> {
    obs::disableMetrics();
    return Value::null();
  });
  addNative(t, "metrics", [](std::vector<Value>&) -> std::optional<Value> {
    // metrics(): a table of every registered metric. Counters and gauges
    // map name -> integer; histograms contribute name.count / name.sum.
    const auto snap = obs::Registry::global().snapshot();
    auto table = TableImpl::create(Value::null());
    for (const auto& [name, v] : snap.counters) {
      table->insert(Value::string(name), Value::integer(static_cast<std::int64_t>(v)));
    }
    for (const auto& [name, v] : snap.gauges) {
      table->insert(Value::string(name), Value::integer(v));
    }
    for (const auto& h : snap.histograms) {
      table->insert(Value::string(h.name + ".count"),
                    Value::integer(static_cast<std::int64_t>(h.count)));
      table->insert(Value::string(h.name + ".sum"),
                    Value::integer(static_cast<std::int64_t>(h.sum)));
    }
    return Value::table(std::move(table));
  });

  // ---- resource governance (runtime/governor.hpp) ----------------------
  addNative(t, "setquota", [](std::vector<Value>& args) -> std::optional<Value> {
    // setquota(name, n): set one budget on this thread's session
    // governor (lazily created — limitless — for code running outside a
    // governed Interpreter, so scripts behave identically across the
    // tree, VM, and emitted backends). The update is tighten-only
    // against the host's envelope: on a script-owned budget n = 0
    // removes it, but a limit imposed by the embedder / congen-run
    // --max-* is a ceiling — n clamps to it and n = 0 restores it, so
    // a contained session can never loosen its own containment.
    // Returns the effective limit.
    const std::string name(argOr(args, 0, Value::null()).requireString("setquota budget"));
    const std::int64_t n = argOr(args, 1, Value::null()).requireInt64("setquota value");
    if (n < 0) throw errInvalidValue("setquota: " + std::to_string(n));
    governor::Budget budget;
    if (name == "fuel") {
      budget = governor::Budget::Fuel;
    } else if (name == "heap") {
      budget = governor::Budget::Heap;
    } else if (name == "pipes") {
      budget = governor::Budget::Pipes;
    } else if (name == "coexprs") {
      budget = governor::Budget::Coexprs;
    } else if (name == "pipedepth") {
      budget = governor::Budget::PipeDepth;
    } else if (name == "depth") {
      budget = governor::Budget::Depth;
    } else {
      throw errInvalidValue("setquota budget: " + name);
    }
    auto gov = governor::currentOrThreadDefault();
    if (gov == nullptr) return std::nullopt;  // unreachable in practice
    const std::uint64_t effective = gov->setScriptLimit(budget, static_cast<std::uint64_t>(n));
    return Value::integer(static_cast<std::int64_t>(effective));
  });
  addNative(t, "quota", [](std::vector<Value>&) -> std::optional<Value> {
    // quota(): a table of this session's budgets and usage. Limits and
    // live counts are deterministic at language level; "fuel_spent" /
    // "heap_reserved" are backend- and batching-dependent diagnostics —
    // conformance scripts must not print them.
    auto gov = governor::currentOrThreadDefault();
    auto table = TableImpl::create(Value::null());
    if (gov != nullptr) {
      const governor::Limits limits = gov->limits();
      const governor::Usage usage = gov->usage();
      const auto put = [&table](const char* key, std::uint64_t v) {
        table->insert(Value::string(key), Value::integer(static_cast<std::int64_t>(v)));
      };
      put("fuel", limits.maxFuel);
      put("heap", limits.maxHeapBytes);
      put("pipes", limits.maxPipes);
      put("coexprs", limits.maxCoexprs);
      put("pipedepth", limits.maxPipeDepth);
      put("depth", limits.maxDepth);
      put("fuel_spent", usage.fuelSpent);
      put("heap_reserved", usage.heapReserved);
      put("live_pipes", usage.livePipes);
      put("live_coexprs", usage.liveCoexprs);
      put("quota_trips", usage.quotaTrips);
    }
    return Value::table(std::move(table));
  });

  return t;
}

const Table& table() {
  // Never destroyed, and every registered procedure is immortalized:
  // builtin procs are copied into Values on every compiled call site
  // (kConst pushes one per invocation), and with the registry pinned for
  // the process lifetime those copies need no refcount traffic at all
  // (RcBase::kImmortalBit). The leaked map keeps the payloads reachable
  // at exit, so leak checkers report nothing.
  static const Table* t = [] {
    auto* built = new Table(buildTable());
    for (const auto& [name, proc] : *built) proc->makeImmortal();
    return built;
  }();
  return *t;
}

}  // namespace

ProcPtr makeNative(std::string name,
                   std::function<std::optional<Value>(std::vector<Value>&)> fn) {
  auto proc = ProcImpl::create(name, [fn](std::vector<Value> args) -> GenPtr {
    return singleton(fn(args));
  });
  // Expose the direct form too: the VM invokes simple natives without
  // the singleton-generator wrapper (same fn, so same semantics).
  proc->setNative(std::move(fn));
  return proc;
}

ProcPtr makeNativeGen(std::string name, std::function<GenPtr(std::vector<Value>&)> fn) {
  return ProcImpl::create(name, [fn = std::move(fn)](std::vector<Value> args) -> GenPtr {
    return fn(args);
  });
}

ProcPtr lookup(const std::string& name) {
  const auto it = table().find(name);
  return it == table().end() ? nullptr : it->second;
}

const Value* lookupConst(const std::string& name) {
  // One Value per builtin for the process lifetime: resolution-time
  // lookups hand out stable pointers into this table. Never destroyed,
  // like table() — the payloads are immortal, so the map must stay
  // reachable for leak checkers.
  static const auto* consts = [] {
    auto* m = new std::unordered_map<std::string, Value>();
    for (const auto& [n, proc] : table()) m->emplace(n, Value::proc(proc));
    return m;
  }();
  const auto it = consts->find(name);
  return it == consts->end() ? nullptr : &it->second;
}

std::vector<std::string> names() {
  std::vector<std::string> out;
  out.reserve(table().size());
  for (const auto& [name, proc] : table()) out.push_back(name);
  std::sort(out.begin(), out.end());
  return out;
}

Value arg(const std::vector<Value>& args, std::size_t i) {
  return i < args.size() ? args[i] : Value::null();
}

}  // namespace congen::builtins

// builtins.hpp — Icon/Unicon built-in functions as first-class procedures.
//
// Every builtin is a ProcPtr (a variadic generator function), so builtins
// and user-defined procedures are interchangeable in expressions —
// including generator builtins like seq() and find() that suspend
// multiple results, and failure-driven ones like get() that fail rather
// than error. The registry backs both the interpreter's global scope and
// direct use from C++ through the kernel API.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "runtime/proc.hpp"
#include "runtime/value.hpp"

namespace congen::builtins {

/// Look up a builtin by its Unicon name; nullptr if unknown.
ProcPtr lookup(const std::string& name);

/// Look up a builtin as an interned procedure *constant*: a stable
/// `const Value*` the compiler can embed directly in a ConstGen, so a
/// resolved call site never re-wraps the ProcPtr into a fresh Value (and
/// never falls back to per-access lookup). nullptr if unknown.
const Value* lookupConst(const std::string& name);

/// Names of all registered builtins (for diagnostics and tests).
std::vector<std::string> names();

/// Wrap a plain C++ function (args → at most one value) as a procedure;
/// nullopt means failure. The bridge for native cut-through (::) calls.
ProcPtr makeNative(std::string name,
                   std::function<std::optional<Value>(std::vector<Value>&)> fn);

/// Wrap a generator-returning C++ function as a procedure.
ProcPtr makeNativeGen(std::string name, std::function<GenPtr(std::vector<Value>&)> fn);

/// Direct handles used by examples and benches (avoid name lookup).
Value arg(const std::vector<Value>& args, std::size_t i);

}  // namespace congen::builtins

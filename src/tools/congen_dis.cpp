// congen-dis — disassembler for the bytecode VM backend.
//
// Compiles scripts (or single expressions) to interp/chunk.hpp chunks
// and prints the stable textual disassembly (interp/chunk.cpp) — the
// same renderer the golden tests in tests/interp/dis_golden pin.
//
// Usage:
//   congen-dis <script.jn> [proc...]   disassemble procedures (all
//                                      defined ones, or just the named)
//   congen-dis -e "<expr>"             disassemble one expression chunk
//
// Procedures are compiled exactly as the VM backend would at first
// invocation: the whole program's definitions are declared first (so
// global references resolve the same way), then each body is resolved
// and chunk-compiled. Top-level statements are NOT executed.
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>

#include "frontend/parser.hpp"
#include "interp/compiler.hpp"
#include "interp/interpreter.hpp"
#include "interp/resolver.hpp"
#include "transform/normalize.hpp"

namespace {

using congen::interp::Interpreter;
using congen::interp::resolve;
using congen::interp::vm::ChunkCompiler;
using congen::interp::vm::disassemble;

int disassembleScript(const std::string& path, const std::set<std::string>& only) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "congen-dis: cannot open " << path << "\n";
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  Interpreter interp;
  auto prog = congen::frontend::parseProgram(buffer.str());
  if (interp.options().normalize) prog = congen::transform::normalizeProgram(prog);

  // Declare every program-level name first so the resolver's Global vs
  // Late split matches what the VM backend sees at first call.
  const auto& globals = interp.globalScope();
  for (const auto& item : prog->kids) {
    switch (item->kind) {
      case congen::ast::Kind::Def:
      case congen::ast::Kind::RecordDecl:
        globals->declare(item->text);
        break;
      case congen::ast::Kind::GlobalDecl:
        for (const auto& name : item->kids) globals->declare(name->text);
        break;
      default:
        break;
    }
  }

  bool any = false;
  for (const auto& item : prog->kids) {
    if (item->kind != congen::ast::Kind::Def) continue;
    if (!only.empty() && only.find(item->text) == only.end()) continue;
    auto layout = resolve(item->kids[0], item->kids[1], *globals);
    ChunkCompiler cc(interp, globals, &layout);
    std::cout << disassemble(*cc.compileBody(item->text, item->kids[1]));
    any = true;
  }
  if (!only.empty() && !any) {
    std::cerr << "congen-dis: no matching procedure in " << path << "\n";
    return 1;
  }
  return 0;
}

int disassembleExpr(const std::string& source) {
  Interpreter interp;
  auto tree = congen::frontend::parseExpression(source);
  if (interp.options().normalize) {
    congen::transform::TempNames names;
    tree = congen::transform::normalize(tree, names);
  }
  ChunkCompiler cc(interp, interp.globalScope());
  std::cout << disassemble(*cc.compileExpr(tree));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc >= 3 && std::string(argv[1]) == "-e") return disassembleExpr(argv[2]);
    if (argc >= 2) {
      std::set<std::string> only;
      for (int i = 2; i < argc; ++i) only.insert(argv[i]);
      return disassembleScript(argv[1], only);
    }
  } catch (const std::exception& e) {
    std::cerr << "congen-dis: " << e.what() << "\n";
    return 1;
  }
  std::cerr << "usage: congen-dis <script.jn> [proc...] | congen-dis -e \"<expr>\"\n";
  return 2;
}

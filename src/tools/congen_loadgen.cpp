// congen-loadgen — load driver for the congen-serve daemon.
//
// Replays mixed workloads at N concurrent sessions against a running
// daemon and reports per-request latency percentiles plus session
// throughput. One OS thread per session (sessions hold a connection
// open; the daemon's event loop is the thing under test, not the
// driver's scheduling).
//
// Workloads (--mix):
//   repl       REPL burst: SUBMIT "1 to 100" then NEXT 100 — the cheap,
//              latency-sensitive interactive shape.
//   pipeline   long |> pipeline: SUBMIT "! |> (1 to 64)" then NEXT 64 —
//              every result crosses a concurrent pipe.
//   mapreduce  the paper's Fig. 4 mapReduce folded over pipes: one
//              program load at session start, then SUBMIT + NEXT per
//              iteration.
//   mixed      session i runs workload i mod 3.
//
// Usage:
//   congen-loadgen [--host H] [--port N] [--sessions N] [--duration S]
//                  [--mix repl|pipeline|mapreduce|mixed]
//                  [--iters-per-session N]   N > 0: CLOSE + reconnect
//                                            every N iterations (churn;
//                                            reports sessions/sec)
//                  [--think MS]              sleep between iterations —
//                                            bursty REPL-user traffic
//                                            instead of saturation
//                  [--json FILE]             google-benchmark-shaped
//                                            report (CI diff gate)
//
// Exit status: 0 on a clean run, 1 when any session was shed (815) or
// any response was a typed error — the CI smoke job leans on that.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/net.hpp"
#include "serve/protocol.hpp"

namespace {

using Clock = std::chrono::steady_clock;
namespace serve = congen::serve;

struct Totals {
  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> errors{0};
  std::atomic<std::uint64_t> sheds{0};
  std::atomic<std::uint64_t> connectFailures{0};
  std::atomic<std::uint64_t> sessionsOpened{0};
  std::atomic<std::uint64_t> sessionsCompleted{0};
  std::mutex mu;
  std::vector<std::uint64_t> latencyMicros;  // merged per-thread at exit
};

bool isErrorResponse(const std::string& line, int* code = nullptr) {
  if (line.find("\"ok\":false") == std::string::npos) return false;
  if (code != nullptr) {
    const std::size_t at = line.find("\"code\":");
    *code = at == std::string::npos ? 0 : std::atoi(line.c_str() + at + 7);
  }
  return true;
}

/// Line-buffered protocol client over a blocking socket. The client
/// speaks first (the server classifies the connection on its opening
/// bytes), so the hello — or the 815 shed refusal — is consumed lazily
/// in front of the first response.
struct Client {
  serve::Socket sock;
  std::string buf;
  bool sawHello = false;
  int refusalCode = 0;  // nonzero: the server refused instead of hello

  bool readLine(std::string& line) {
    for (;;) {
      const std::size_t nl = buf.find('\n');
      if (nl != std::string::npos) {
        line.assign(buf, 0, nl);
        buf.erase(0, nl + 1);
        return true;
      }
      if (!serve::readSome(sock, buf)) return false;
    }
  }

  /// One round trip; returns false on transport failure or refusal
  /// (refusalCode tells which).
  bool roundTrip(const serve::Request& request, std::string& response) {
    try {
      serve::writeAll(sock, serve::encodeFrame(request));
    } catch (const std::exception&) {
      return false;
    }
    if (!readLine(response)) return false;
    if (!sawHello) {
      sawHello = true;
      if (isErrorResponse(response, &refusalCode)) return false;
      if (!readLine(response)) return false;  // hello consumed; now the answer
    }
    return true;
  }
};

constexpr const char* kMapReduceProgram = R"(
def chunk(e) {
  local c;
  c := [];
  while put(c, @e) do {
    if (*c >= 4) then { suspend c; c := []; }
  };
  if (*c > 0) then { return c; };
}
def mapReduce(f, s, r, i) {
  local c, t, tasks;
  tasks := [];
  every (c := chunk(<> s())) do {
    t := |> { local x; x := i; every (x := r(x, f(!c))); x };
    put(tasks, t);
  };
  suspend ! (! tasks);
}
def src() { suspend 1 to 16; }
def sq(x) { return x * x; }
def add(a, b) { return a + b; }
)";

enum class Mix { kRepl, kPipeline, kMapReduce, kMixed };

struct Step {
  serve::Request request;
};

std::vector<Step> workloadSteps(Mix mix, std::size_t sessionIndex) {
  Mix effective = mix;
  if (mix == Mix::kMixed) {
    effective = static_cast<Mix>(sessionIndex % 3);
  }
  std::vector<Step> steps;
  switch (effective) {
    case Mix::kRepl:
      steps.push_back({{serve::Verb::kSubmit, "1 to 100", 0}});
      steps.push_back({{serve::Verb::kNext, "", 100}});
      break;
    case Mix::kPipeline:
      steps.push_back({{serve::Verb::kSubmit, "! |> (1 to 64)", 0}});
      steps.push_back({{serve::Verb::kNext, "", 64}});
      break;
    case Mix::kMapReduce:
    case Mix::kMixed:
      steps.push_back({{serve::Verb::kSubmit, "mapReduce(sq, src, add, 0)", 0}});
      steps.push_back({{serve::Verb::kNext, "", 8}});
      break;
  }
  return steps;
}

bool needsMapReduceSetup(Mix mix, std::size_t sessionIndex) {
  return mix == Mix::kMapReduce || (mix == Mix::kMixed && sessionIndex % 3 == 2);
}

void sessionThread(const std::string& host, std::uint16_t port, Mix mix, std::size_t index,
                   Clock::time_point deadline, std::uint64_t itersPerSession,
                   std::uint64_t thinkMs, Totals& totals) {
  std::vector<std::uint64_t> latencies;
  latencies.reserve(4096);
  while (Clock::now() < deadline) {
    Client client;
    try {
      client.sock = serve::connectTo(host, port);
    } catch (const std::exception&) {
      totals.connectFailures.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    std::string line;
    bool transportOk = true;
    bool opened = false;
    auto noteFailure = [&] {
      if (client.refusalCode == 815) {
        totals.sheds.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      } else if (client.refusalCode != 0) {
        totals.errors.fetch_add(1, std::memory_order_relaxed);
      } else if (!opened) {
        totals.connectFailures.fetch_add(1, std::memory_order_relaxed);
      }
    };
    if (needsMapReduceSetup(mix, index)) {
      transportOk = client.roundTrip({serve::Verb::kSubmit, kMapReduceProgram, 0}, line);
      if (transportOk) {
        opened = true;
        totals.sessionsOpened.fetch_add(1, std::memory_order_relaxed);
        totals.requests.fetch_add(1, std::memory_order_relaxed);
        if (isErrorResponse(line)) totals.errors.fetch_add(1, std::memory_order_relaxed);
      }
    }
    std::uint64_t iters = 0;
    while (transportOk && Clock::now() < deadline &&
           (itersPerSession == 0 || iters < itersPerSession)) {
      for (const Step& step : workloadSteps(mix, index)) {
        const auto begin = Clock::now();
        if (!client.roundTrip(step.request, line)) {
          transportOk = false;
          break;
        }
        if (!opened) {
          opened = true;  // the hello preceded this response
          totals.sessionsOpened.fetch_add(1, std::memory_order_relaxed);
        }
        const auto micros =
            std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - begin);
        latencies.push_back(static_cast<std::uint64_t>(micros.count()));
        totals.requests.fetch_add(1, std::memory_order_relaxed);
        if (isErrorResponse(line)) totals.errors.fetch_add(1, std::memory_order_relaxed);
      }
      ++iters;
      if (thinkMs > 0 && Clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(thinkMs));
      }
    }
    if (!transportOk) {
      noteFailure();
      continue;
    }
    if (client.roundTrip({serve::Verb::kClose, "", 0}, line)) {
      totals.sessionsCompleted.fetch_add(1, std::memory_order_relaxed);
    }
    if (itersPerSession == 0) break;  // held for the whole run: one cycle
  }
  std::lock_guard lock(totals.mu);
  totals.latencyMicros.insert(totals.latencyMicros.end(), latencies.begin(), latencies.end());
}

std::uint64_t percentile(const std::vector<std::uint64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  const auto idx = static_cast<std::size_t>(p / 100.0 * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

const char* mixName(Mix mix) {
  switch (mix) {
    case Mix::kRepl: return "repl";
    case Mix::kPipeline: return "pipeline";
    case Mix::kMapReduce: return "mapreduce";
    case Mix::kMixed: return "mixed";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  std::uint16_t port = 7117;
  std::size_t sessions = 64;
  long durationSec = 10;
  std::uint64_t itersPerSession = 0;
  std::uint64_t thinkMs = 0;
  Mix mix = Mix::kMixed;
  std::string jsonPath;

  for (int i = 1; i < argc; ++i) {
    const std::string arg(argv[i]);
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "congen-loadgen: " << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--host") {
      host = value("--host");
    } else if (arg == "--port") {
      port = static_cast<std::uint16_t>(std::strtoul(value("--port"), nullptr, 10));
    } else if (arg == "--sessions") {
      sessions = static_cast<std::size_t>(std::strtoull(value("--sessions"), nullptr, 10));
    } else if (arg == "--duration") {
      durationSec = std::strtol(value("--duration"), nullptr, 10);
    } else if (arg == "--iters-per-session") {
      itersPerSession = std::strtoull(value("--iters-per-session"), nullptr, 10);
    } else if (arg == "--think") {
      thinkMs = std::strtoull(value("--think"), nullptr, 10);
    } else if (arg == "--json") {
      jsonPath = value("--json");
    } else if (arg == "--mix") {
      const std::string which = value("--mix");
      if (which == "repl") {
        mix = Mix::kRepl;
      } else if (which == "pipeline") {
        mix = Mix::kPipeline;
      } else if (which == "mapreduce") {
        mix = Mix::kMapReduce;
      } else if (which == "mixed") {
        mix = Mix::kMixed;
      } else {
        std::cerr << "congen-loadgen: unknown mix '" << which << "'\n";
        return 2;
      }
    } else {
      std::cerr << "congen-loadgen: unknown option " << arg << "\n";
      return 2;
    }
  }
  if (sessions == 0 || durationSec <= 0) {
    std::cerr << "congen-loadgen: --sessions and --duration must be positive\n";
    return 2;
  }

  Totals totals;
  const auto begin = Clock::now();
  const auto deadline = begin + std::chrono::seconds(durationSec);
  std::vector<std::thread> threads;
  threads.reserve(sessions);
  for (std::size_t i = 0; i < sessions; ++i) {
    threads.emplace_back(sessionThread, host, port, mix, i, deadline, itersPerSession, thinkMs,
                         std::ref(totals));
  }
  for (auto& t : threads) t.join();
  const double elapsed =
      std::chrono::duration_cast<std::chrono::duration<double>>(Clock::now() - begin).count();

  std::sort(totals.latencyMicros.begin(), totals.latencyMicros.end());
  const auto& lat = totals.latencyMicros;
  const std::uint64_t p50 = percentile(lat, 50), p90 = percentile(lat, 90),
                      p99 = percentile(lat, 99);
  const std::uint64_t maxLat = lat.empty() ? 0 : lat.back();
  const std::uint64_t requests = totals.requests.load();
  const std::uint64_t completed = totals.sessionsCompleted.load();

  std::cout << "congen-loadgen: mix=" << mixName(mix) << " sessions=" << sessions
            << " duration=" << durationSec << "s\n"
            << "  requests:  " << requests << " ("
            << static_cast<std::uint64_t>(static_cast<double>(requests) / elapsed) << "/s)\n"
            << "  latency:   p50=" << p50 << "us p90=" << p90 << "us p99=" << p99
            << "us max=" << maxLat << "us\n"
            << "  sessions:  opened=" << totals.sessionsOpened.load()
            << " completed=" << completed << " ("
            << static_cast<std::uint64_t>(static_cast<double>(completed) / elapsed)
            << "/s) shed=" << totals.sheds.load() << "\n"
            << "  failures:  errors=" << totals.errors.load()
            << " connect=" << totals.connectFailures.load() << "\n";

  if (!jsonPath.empty()) {
    std::ofstream out(jsonPath);
    if (!out) {
      std::cerr << "congen-loadgen: cannot write " << jsonPath << "\n";
      return 1;
    }
    // google-benchmark report shape so the existing baseline-diff gate
    // (ci: bench-smoke) can pair entries by name.
    const std::string prefix = std::string("serve/") + mixName(mix);
    auto entry = [&](const std::string& name, double v, const char* unit) {
      out << "    {\"name\": \"" << name << "\", \"run_type\": \"iteration\", "
          << "\"iterations\": " << requests << ", \"real_time\": " << v
          << ", \"cpu_time\": " << v << ", \"time_unit\": \"" << unit << "\"}";
    };
    out << "{\n  \"context\": {\"sessions\": " << sessions << ", \"duration_s\": " << durationSec
        << ", \"think_ms\": " << thinkMs << ", \"mix\": \"" << mixName(mix)
        << "\"},\n  \"benchmarks\": [\n";
    entry(prefix + "/p50", static_cast<double>(p50), "us");
    out << ",\n";
    entry(prefix + "/p99", static_cast<double>(p99), "us");
    out << "\n  ],\n  \"serve\": {\"requests\": " << requests << ", \"errors\": "
        << totals.errors.load() << ", \"shed\": " << totals.sheds.load()
        << ", \"connect_failures\": " << totals.connectFailures.load()
        << ", \"sessions_opened\": " << totals.sessionsOpened.load()
        << ", \"sessions_completed\": " << completed << ", \"sessions_per_sec\": "
        << static_cast<double>(completed) / elapsed << "}\n}\n";
  }

  const bool failed = totals.sheds.load() != 0 || totals.errors.load() != 0;
  return failed ? 1 : 0;
}

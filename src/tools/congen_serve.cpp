// congen-serve — multi-tenant script-execution daemon (ROADMAP item 3).
//
// Serves the congen wire protocol (src/serve/protocol.hpp) on one TCP
// port: each connection is an isolated, governed interpreter session on
// the work-stealing pool, contained by per-tenant quotas (PR 9
// governor), shed by the process admission gate when over budget, and
// cancelled end-to-end when the client disconnects. The same port
// answers HTTP GETs for /metrics, /metrics.json, and /healthz.
//
// Usage:
//   congen-serve [--host H] [--port N]         bind address (default
//                                              127.0.0.1:7117; port 0 =
//                                              ephemeral, printed on
//                                              stdout)
//   --backend=vm|tree                          per-session backend
//   --max-heap=64M --max-fuel=... etc.         per-session quotas, same
//                                              spelling as congen-run
//                                              (K/M/G suffixes)
//   --admission-sessions N                     process admission gate:
//   --admission-heap 1G                        shed (typed 815) past
//                                              N live sessions or the
//                                              committed-heap ceiling
//   --request-soft MS --request-hard MS        per-request supervision:
//                                              soft-cancel / hard 816
//   --pipe-capacity N --pipe-batch N           session pipe knobs
//   --duration S                               exit after S seconds
//                                              (CI smoke; 0 = run until
//                                              SIGINT/SIGTERM)
//   --stats                                    text metrics snapshot to
//                                              stderr at exit
//   --metrics-json FILE                        JSON snapshot at exit
//
// On a successful bind the daemon prints exactly one line to stdout:
//   congen-serve: listening on HOST:PORT
// and flushes it — scripts wait for that line before connecting.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "obs/metrics.hpp"
#include "serve/server.hpp"

namespace {

volatile std::sig_atomic_t g_signalled = 0;

void onSignal(int) { g_signalled = 1; }

bool parseBudget(const std::string& text, std::uint64_t& out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const unsigned long long raw = std::strtoull(text.c_str(), &end, 10);
  std::uint64_t scale = 1;
  if (*end == 'K' || *end == 'k') {
    scale = 1024, ++end;
  } else if (*end == 'M' || *end == 'm') {
    scale = 1024 * 1024, ++end;
  } else if (*end == 'G' || *end == 'g') {
    scale = 1024ULL * 1024 * 1024, ++end;
  }
  if (end == text.c_str() || *end != '\0') return false;
  out = static_cast<std::uint64_t>(raw) * scale;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  congen::serve::Server::Config config;
  config.port = 7117;
  bool stats = false;
  std::string metricsJsonPath;
  long durationSec = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg(argv[i]);
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "congen-serve: " << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--host") {
      config.host = value("--host");
    } else if (arg == "--port") {
      config.port = static_cast<std::uint16_t>(std::strtoul(value("--port"), nullptr, 10));
    } else if (arg.rfind("--backend=", 0) == 0) {
      const std::string which = arg.substr(10);
      if (which == "vm") {
        config.session.backend = congen::interp::Backend::kVm;
      } else if (which == "tree") {
        config.session.backend = congen::interp::Backend::kTree;
      } else {
        std::cerr << "congen-serve: unknown backend '" << which << "' (want vm or tree)\n";
        return 2;
      }
    } else if (arg.rfind("--max-", 0) == 0) {
      auto& q = config.session.quotas;
      auto budgetFlag = [&](const std::string& prefix, std::uint64_t& slot) -> int {
        if (arg.rfind(prefix, 0) != 0) return 0;
        if (!parseBudget(arg.substr(prefix.size()), slot)) {
          std::cerr << "congen-serve: bad value in " << arg << " (want e.g. 64M)\n";
          return -1;
        }
        return 1;
      };
      int r = 0;
      if ((r = budgetFlag("--max-heap=", q.maxHeapBytes)) != 0 ||
          (r = budgetFlag("--max-fuel=", q.maxFuel)) != 0 ||
          (r = budgetFlag("--max-pipes=", q.maxPipes)) != 0 ||
          (r = budgetFlag("--max-coexprs=", q.maxCoexprs)) != 0 ||
          (r = budgetFlag("--max-pipe-depth=", q.maxPipeDepth)) != 0 ||
          (r = budgetFlag("--max-depth=", q.maxDepth)) != 0) {
        if (r < 0) return 2;
      } else {
        std::cerr << "congen-serve: unknown option " << arg << "\n";
        return 2;
      }
    } else if (arg == "--admission-sessions") {
      config.admission.maxSessions =
          static_cast<std::size_t>(std::strtoull(value("--admission-sessions"), nullptr, 10));
    } else if (arg == "--admission-heap") {
      std::uint64_t bytes = 0;
      if (!parseBudget(value("--admission-heap"), bytes)) {
        std::cerr << "congen-serve: bad --admission-heap value (want e.g. 1G)\n";
        return 2;
      }
      config.admission.maxCommittedHeapBytes = bytes;
    } else if (arg == "--request-soft") {
      config.session.requestSoft =
          std::chrono::milliseconds(std::strtol(value("--request-soft"), nullptr, 10));
    } else if (arg == "--request-hard") {
      config.session.requestHard =
          std::chrono::milliseconds(std::strtol(value("--request-hard"), nullptr, 10));
    } else if (arg == "--pipe-capacity") {
      config.session.pipeCapacity =
          static_cast<std::size_t>(std::strtoull(value("--pipe-capacity"), nullptr, 10));
    } else if (arg == "--pipe-batch") {
      config.session.pipeBatch =
          static_cast<std::size_t>(std::strtoull(value("--pipe-batch"), nullptr, 10));
    } else if (arg == "--duration") {
      durationSec = std::strtol(value("--duration"), nullptr, 10);
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--metrics-json") {
      metricsJsonPath = value("--metrics-json");
    } else {
      std::cerr << "congen-serve: unknown option " << arg << "\n";
      return 2;
    }
  }

  congen::serve::Server server(config);
  try {
    server.start();
  } catch (const std::exception& e) {
    std::cerr << "congen-serve: " << e.what() << "\n";
    return 1;
  }
  std::cout << "congen-serve: listening on " << config.host << ":" << server.port() << "\n"
            << std::flush;

  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
#ifdef SIGPIPE
  std::signal(SIGPIPE, SIG_IGN);  // dead peers surface as EPIPE, not death
#endif
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(durationSec);
  while (g_signalled == 0) {
    if (durationSec > 0 && std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::cerr << "congen-serve: shutting down\n";
  server.stop();

  if (stats) congen::obs::Registry::global().snapshot().writeText(std::cerr);
  if (!metricsJsonPath.empty()) {
    std::ofstream out(metricsJsonPath);
    if (!out) {
      std::cerr << "congen-serve: cannot write " << metricsJsonPath << "\n";
      return 1;
    }
    congen::obs::Registry::global().snapshot().writeJson(out);
  }
  return 0;
}

// congen-run — script runner and REPL for the Junicon dialect.
//
// The interactive path of the paper's harness (Section VI): load .jn
// scripts (definitions + top-level statements), call main() if defined,
// or evaluate expressions interactively, printing each generated result.
//
// Usage:
//   congen-run <script.jn> [args...]    run a script (calls main(args))
//   congen-run -e "<expr>"              evaluate one expression
//   congen-run -i                       interactive REPL
//   congen-run --trace ...              print iterator-protocol events
//                                       (the paper's future-work
//                                       monitoring, Section IX)
//   congen-run --timeout <sec> ...      watchdog: if the run exceeds the
//                                       budget, dump every live pipe's
//                                       queue state to stderr and exit 3
//                                       (a hung pipeline fails fast with
//                                       diagnostics instead of eating a
//                                       CI job limit)
//   congen-run --stats ...              enable the metrics registry and
//                                       print a human-readable snapshot
//                                       to stderr when the run ends
//   congen-run --metrics-json <f> ...   enable metrics and write the
//                                       snapshot as JSON to <f> at exit
//   congen-run --trace-out <f> ...      collect a Chrome-trace-format
//                                       JSON of the run (per-thread
//                                       generator spans) into <f>
//   congen-run --backend=vm|tree ...    pick the execution backend
//                                       (default: CONGEN_BACKEND env,
//                                       else the tree walker)
//   congen-run --max-heap=64M ...       resource quotas (K/M/G suffixes
//                                       where bytes make sense):
//                                       --max-heap, --max-fuel,
//                                       --max-pipes, --max-coexprs,
//                                       --max-pipe-depth, --max-depth.
//                                       Exhaustion raises the catchable
//                                       81x errQuotaExceeded family; an
//                                       uncaught trip exits 1 with the
//                                       typed error on stderr.
//   congen-run --supervise <s> <h> ...  cooperative watchdog over the
//                                       governed session: soft-cancel
//                                       after <s> seconds, diagnostics +
//                                       hard teardown after <h>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>

#include "concur/pipe.hpp"
#include "frontend/lexer.hpp"
#include "interp/interpreter.hpp"
#include "kernel/trace.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_adapter.hpp"
#include "obs/trace_sink.hpp"
#include "runtime/collections.hpp"
#include "runtime/error.hpp"

namespace {

constexpr std::size_t kReplResultLimit = 64;  // guard against infinite generators

/// Parse "64M"-style budget values (K/M/G binary suffixes). Returns
/// false on garbage; 0 is accepted and means unlimited.
bool parseBudget(const std::string& text, std::uint64_t& out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const unsigned long long raw = std::strtoull(text.c_str(), &end, 10);
  std::uint64_t scale = 1;
  if (*end == 'K' || *end == 'k') {
    scale = 1024, ++end;
  } else if (*end == 'M' || *end == 'm') {
    scale = 1024 * 1024, ++end;
  } else if (*end == 'G' || *end == 'g') {
    scale = 1024ULL * 1024 * 1024, ++end;
  }
  if (end == text.c_str() || *end != '\0') return false;
  out = static_cast<std::uint64_t>(raw) * scale;
  return true;
}

void printResults(congen::GenPtr gen, std::size_t limit) {
  std::size_t count = 0;
  while (auto v = gen->nextValue()) {
    std::cout << "  " << v->image() << "\n";
    if (++count >= limit) {
      std::cout << "  ... (stopped after " << limit << " results)\n";
      return;
    }
  }
  if (count == 0) std::cout << "  (failure)\n";
}

int repl(congen::interp::Interpreter& interp) {
  std::cout << "congen REPL — goal-directed expressions; :quit to exit,\n"
               ":load <file> to load definitions.\n";
  std::string line;
  while (std::cout << "]=> " && std::getline(std::cin, line)) {
    if (line.empty()) continue;
    if (line == ":quit" || line == ":q") break;
    try {
      if (line.rfind(":load ", 0) == 0) {
        std::ifstream in(line.substr(6));
        if (!in) {
          std::cout << "cannot open " << line.substr(6) << "\n";
          continue;
        }
        std::ostringstream buffer;
        buffer << in.rdbuf();
        interp.load(buffer.str());
        std::cout << "  loaded.\n";
        continue;
      }
      // Definitions vs expressions: try the expression grammar first.
      try {
        printResults(interp.eval(line), kReplResultLimit);
      } catch (const congen::frontend::SyntaxError&) {
        interp.load(line);
        std::cout << "  defined.\n";
      }
    } catch (const std::exception& e) {
      std::cout << "error: " << e.what() << "\n";
    }
  }
  return 0;
}

/// Observability options collected from the prefix flags; the snapshot /
/// trace emission happens once, after the run body finishes (on every
/// path, including errors — a failing script's metrics are exactly the
/// interesting ones).
struct ObsOptions {
  bool stats = false;
  std::string metricsJsonPath;
  std::string traceOutPath;
};

void emitObservability(const ObsOptions& obs) {
  if (obs.stats) {
    congen::obs::Registry::global().snapshot().writeText(std::cerr);
  }
  if (!obs.metricsJsonPath.empty()) {
    std::ofstream out(obs.metricsJsonPath);
    if (!out) {
      std::cerr << "congen-run: cannot write " << obs.metricsJsonPath << "\n";
    } else {
      congen::obs::Registry::global().snapshot().writeJson(out);
    }
  }
  if (!obs.traceOutPath.empty()) {
    std::ofstream out(obs.traceOutPath);
    if (!out) {
      std::cerr << "congen-run: cannot write " << obs.traceOutPath << "\n";
    } else {
      congen::obs::writeTraceJson(out);
    }
    congen::obs::removeChromeTraceHook();
  }
}

int run(int argc, char** argv, congen::interp::Interpreter& interp) {
  if (argc >= 3 && std::string(argv[1]) == "-e") {
    printResults(interp.eval(argv[2]), kReplResultLimit);
    return 0;
  }
  if (argc >= 2 && std::string(argv[1]) == "-i") return repl(interp);
  if (argc >= 2) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::cerr << "congen-run: cannot open " << argv[1] << "\n";
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    interp.load(buffer.str());
    if (interp.global("main") && interp.global("main")->isProc()) {
      auto args = congen::ListImpl::create();
      for (int i = 2; i < argc; ++i) args->put(congen::Value::string(argv[i]));
      interp.call("main", {congen::Value::list(args)})->last();
    }
    return 0;
  }
  return repl(interp);
}

}  // namespace

int main(int argc, char** argv) {
  congen::interp::Interpreter::Options options;
  ObsOptions obs;
  long timeoutSeconds = 0;
  long superviseSoftSec = 0;
  long superviseHardSec = 0;
  // Prefix options, in any order: --timeout <sec> arms the watchdog,
  // --trace enables iterator-protocol monitoring, --stats /
  // --metrics-json / --trace-out wire the metrics registry and the
  // structured trace sink, --backend= picks the execution backend.
  for (;;) {
    if (argc >= 2 && std::string(argv[1]).rfind("--backend=", 0) == 0) {
      const std::string which = std::string(argv[1]).substr(10);
      if (which == "vm") {
        options.backend = congen::interp::Backend::kVm;
      } else if (which == "tree") {
        options.backend = congen::interp::Backend::kTree;
      } else {
        std::cerr << "congen-run: unknown backend '" << which << "' (want vm or tree)\n";
        return 2;
      }
      --argc;
      ++argv;
      continue;
    }
    if (argc >= 3 && std::string(argv[1]) == "--timeout") {
      timeoutSeconds = std::strtol(argv[2], nullptr, 10);
      if (timeoutSeconds <= 0) {
        std::cerr << "congen-run: --timeout needs a positive number of seconds\n";
        return 2;
      }
      argc -= 2;
      argv += 2;
      continue;
    }
    if (argc >= 2 && std::string(argv[1]) == "--trace") {
      congen::trace::install([](const congen::trace::Event& e) {
        if (e.kind != congen::trace::EventKind::Resume) {
          std::cerr << congen::trace::format(e) << "\n";
        }
      });
      --argc;
      ++argv;
      continue;
    }
    if (argc >= 2 && std::string(argv[1]) == "--stats") {
      obs.stats = true;
      congen::obs::enableMetrics();
      --argc;
      ++argv;
      continue;
    }
    if (argc >= 3 && std::string(argv[1]) == "--metrics-json") {
      obs.metricsJsonPath = argv[2];
      congen::obs::enableMetrics();
      argc -= 2;
      argv += 2;
      continue;
    }
    if (argc >= 3 && std::string(argv[1]) == "--trace-out") {
      obs.traceOutPath = argv[2];
      congen::obs::installChromeTraceHook();
      argc -= 2;
      argv += 2;
      continue;
    }
    if (argc >= 2 && std::string(argv[1]).rfind("--max-", 0) == 0) {
      const std::string arg(argv[1]);
      auto budgetFlag = [&](const std::string& prefix, std::uint64_t& slot) -> int {
        if (arg.rfind(prefix, 0) != 0) return 0;
        if (!parseBudget(arg.substr(prefix.size()), slot)) {
          std::cerr << "congen-run: bad value in " << arg << " (want e.g. 64M)\n";
          return -1;
        }
        return 1;
      };
      int r = 0;
      if ((r = budgetFlag("--max-heap=", options.quotas.maxHeapBytes)) != 0 ||
          (r = budgetFlag("--max-fuel=", options.quotas.maxFuel)) != 0 ||
          (r = budgetFlag("--max-pipes=", options.quotas.maxPipes)) != 0 ||
          (r = budgetFlag("--max-coexprs=", options.quotas.maxCoexprs)) != 0 ||
          (r = budgetFlag("--max-pipe-depth=", options.quotas.maxPipeDepth)) != 0 ||
          (r = budgetFlag("--max-depth=", options.quotas.maxDepth)) != 0) {
        if (r < 0) return 2;
        --argc;
        ++argv;
        continue;
      }
      std::cerr << "congen-run: unknown option " << arg << "\n";
      return 2;
    }
    if (argc >= 4 && std::string(argv[1]) == "--supervise") {
      superviseSoftSec = std::strtol(argv[2], nullptr, 10);
      superviseHardSec = std::strtol(argv[3], nullptr, 10);
      if (superviseSoftSec <= 0 || superviseHardSec < superviseSoftSec) {
        std::cerr << "congen-run: --supervise wants SOFT HARD seconds, 0 < SOFT <= HARD\n";
        return 2;
      }
      options.governed = true;  // supervision needs a session governor
      argc -= 3;
      argv += 3;
      continue;
    }
    break;
  }
  // Arm the watchdog only after the whole prefix-flag loop: `--timeout`
  // may appear before `--metrics-json`/`--trace-out`, and the watchdog
  // must flush whatever observability the full command line asked for.
  // Detached on purpose: it never fires on a healthy run, and a hung
  // run is exactly when joining would be impossible.
  if (timeoutSeconds > 0) {
    std::thread([seconds = timeoutSeconds, obs] {
      std::this_thread::sleep_for(std::chrono::seconds(seconds));
      std::cerr << "congen-run: watchdog expired after " << seconds << "s\n";
      congen::Pipe::dumpAll(std::cerr);
      if (congen::obs::metricsEnabled() && !obs.stats) {
        congen::obs::Registry::global().snapshot().writeText(std::cerr);
      }
      emitObservability(obs);
      std::_Exit(3);
    }).detach();
  }
  congen::interp::Interpreter interp(options);
  // Arm the cooperative watchdog over the session governor. The
  // diagnostics callback is injected here — the governor layer never
  // names concur or obs types. The Watch is destroyed (un-watched) when
  // a healthy run returns before the deadlines.
  congen::governor::Supervisor::Watch watch;
  if (superviseSoftSec > 0 && interp.resourceGovernor() != nullptr) {
    watch = congen::governor::Supervisor::global().watch(
        interp.resourceGovernor(), std::chrono::seconds(superviseSoftSec),
        std::chrono::seconds(superviseHardSec), [] {
          std::cerr << "congen-run: supervisor hard teardown — live pipe state:\n";
          congen::Pipe::dumpAll(std::cerr);
          if (congen::obs::metricsEnabled()) {
            congen::obs::Registry::global().snapshot().writeText(std::cerr);
          }
        });
  }
  int code = 0;
  try {
    code = run(argc, argv, interp);
  } catch (const std::exception& e) {
    std::cerr << "congen-run: " << e.what() << "\n";
    code = 1;
  }
  emitObservability(obs);
  return code;
}

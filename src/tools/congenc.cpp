// congenc — the Junicon-to-C++ translator.
//
// The compiled path of the paper's harness (Section VI): reads a host
// C++ source file containing scoped-annotation regions
//
//   @<script lang="junicon"> ... @</script>
//
// translates each embedded region (definitions become a module struct of
// procedure factories; expression regions become expr_N() generator
// methods, referenced in place), and writes a pure C++ translation unit.
// Regions with lang="cpp" (or "java", honouring the paper's dual form)
// are passed through verbatim with the markers stripped.
//
// Usage:
//   congenc <input> [-o <output>] [--module <Name>] [--dump-module]
//           [--script] [--defs-only]
//
// --script treats the whole input as one Junicon program (a .jn script)
// instead of scanning for annotation regions; --defs-only writes just
// the emitted module struct as an includable header (keeping the
// `#pragma once` and omitting the __congen_module() accessor so several
// emitted modules can coexist in one translation unit).
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "emit/emitter.hpp"
#include "frontend/parser.hpp"
#include "meta/annotations.hpp"

namespace {

std::string readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Insert the module definition after the last top-of-file #include in
/// the host text (or at the very top when there is none).
std::string spliceModule(const std::string& host, const std::string& moduleDecl) {
  std::size_t insertAt = 0;
  std::size_t searchPos = 0;
  while (true) {
    const auto inc = host.find("#include", searchPos);
    if (inc == std::string::npos) break;
    const auto eol = host.find('\n', inc);
    insertAt = eol == std::string::npos ? host.size() : eol + 1;
    searchPos = insertAt;
  }
  return host.substr(0, insertAt) + "\n" + moduleDecl + "\n" + host.substr(insertAt);
}

/// Scan the annotated host text: definition regions are parsed into
/// `program`, expression regions into `exprRegions` (rewritten to
/// module accessor calls), and the rewritten host text is returned.
std::string transformHost(const std::string& source, const std::string& moduleName,
                          const congen::ast::NodePtr& program,
                          std::vector<congen::ast::NodePtr>& exprRegions) {
  return congen::meta::transformRegions(
      source, [&](const congen::meta::Region& region, const std::string& inner) -> std::string {
        if (region.tag != "script") return inner;  // unknown tags: strip markers
        const std::string lang = region.attr("lang", "junicon");
        if (lang == "cpp" || lang == "java" || lang == "native") {
          return inner;  // native evaluation: exempt from transformation
        }
        if (lang != "junicon" && lang != "unicon") {
          throw std::runtime_error("unsupported embedded language: " + lang);
        }
        // Expression region or definition region? Try the expression
        // grammar first; fall back to a whole program.
        try {
          auto e = congen::frontend::parseExpression(inner);
          const std::size_t index = exprRegions.size();
          exprRegions.push_back(std::move(e));
          return "__congen_module().expr_" + std::to_string(index) + "()";
        } catch (const congen::frontend::SyntaxError&) {
          auto prog = congen::frontend::parseProgram(inner);
          for (auto& item : prog->kids) program->kids.push_back(item);
          return "/* junicon definitions translated into " + moduleName + " */";
        }
      });
}

}  // namespace

int main(int argc, char** argv) {
  std::string input, output, moduleName = "CongenModule";
  bool dumpModule = false;
  bool scriptMode = false;
  bool defsOnly = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-o" && i + 1 < argc) {
      output = argv[++i];
    } else if (arg == "--module" && i + 1 < argc) {
      moduleName = argv[++i];
    } else if (arg == "--dump-module") {
      dumpModule = true;
    } else if (arg == "--script") {
      scriptMode = true;
    } else if (arg == "--defs-only") {
      defsOnly = true;
    } else if (arg == "-h" || arg == "--help") {
      std::cout << "usage: congenc <input> [-o <output>] [--module <Name>] [--dump-module]\n"
                   "               [--script] [--defs-only]\n";
      return 0;
    } else if (!arg.empty() && arg[0] != '-') {
      input = arg;
    } else {
      std::cerr << "congenc: unknown option " << arg << "\n";
      return 2;
    }
  }
  if (input.empty()) {
    std::cerr << "congenc: no input file\n";
    return 2;
  }

  try {
    const std::string source = readFile(input);

    // Gather all junicon definitions (program regions) and expression
    // regions across the file; rewrite the host text.
    auto program = congen::ast::make(congen::ast::Kind::Program);
    std::vector<congen::ast::NodePtr> exprRegions;
    std::string hostText;

    if (scriptMode) {
      // Whole-file Junicon: the entire input is one program, no
      // annotation markers expected (the .jn script form).
      auto prog = congen::frontend::parseProgram(source);
      for (auto& item : prog->kids) program->kids.push_back(item);
    } else {
      hostText = transformHost(source, moduleName, program, exprRegions);
    }

    congen::emit::EmitOptions opts;
    opts.moduleName = moduleName;
    std::string moduleSrc = congen::emit::emitModuleWithExprs(program, exprRegions, opts);

    if (defsOnly) {
      // Includable header form: keep the #pragma once the emitter wrote
      // and add no accessor, so a TU can include many emitted modules.
      if (output.empty()) {
        std::cout << moduleSrc;
      } else {
        std::ofstream out(output, std::ios::binary);
        if (!out) throw std::runtime_error("cannot write " + output);
        out << moduleSrc;
      }
      return 0;
    }

    // The module is spliced inline rather than included: drop the
    // header-guard pragma the standalone emitter writes.
    if (const auto pragma = moduleSrc.find("#pragma once\n"); pragma != std::string::npos) {
      moduleSrc.erase(pragma, std::string("#pragma once\n").size());
    }
    moduleSrc += "\ninline " + moduleName + "& __congen_module() {\n  static " + moduleName +
                 " m;\n  return m;\n}\n";

    if (dumpModule) {
      std::cout << moduleSrc;
      return 0;
    }

    const std::string result = spliceModule(hostText, moduleSrc);
    if (output.empty()) {
      std::cout << result;
    } else {
      std::ofstream out(output, std::ios::binary);
      if (!out) throw std::runtime_error("cannot write " + output);
      out << result;
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "congenc: " << e.what() << "\n";
    return 1;
  }
}

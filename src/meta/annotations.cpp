#include "meta/annotations.hpp"

#include <cctype>

namespace congen::meta {

namespace {

bool isTagChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.' || c == ':';
}

/// Skip a host string/char literal or comment starting at pos; returns
/// the new position, or pos unchanged if nothing host-skippable starts
/// here. Keeping the metaparser honest about these is what lets it stay
/// oblivious to the rest of the host grammar.
std::size_t skipHostLexeme(std::string_view src, std::size_t pos) {
  const char c = src[pos];
  if (c == '"' || c == '\'') {
    const char quote = c;
    std::size_t i = pos + 1;
    while (i < src.size()) {
      if (src[i] == '\\') {
        i += 2;
        continue;
      }
      if (src[i] == quote) return i + 1;
      ++i;
    }
    return i;  // unterminated host literal: tolerate, consume to EOF
  }
  if (c == '/' && pos + 1 < src.size()) {
    if (src[pos + 1] == '/') {
      std::size_t i = pos + 2;
      while (i < src.size() && src[i] != '\n') ++i;
      return i;
    }
    if (src[pos + 1] == '*') {
      const auto end = src.find("*/", pos + 2);
      return end == std::string_view::npos ? src.size() : end + 2;
    }
  }
  return pos;
}

class Scanner {
 public:
  explicit Scanner(std::string_view src) : src_(src) {}

  std::vector<Region> scanAll() {
    std::vector<Region> out;
    pos_ = 0;
    scanInto(out, /*closeTag=*/nullptr, /*closeFound=*/nullptr);
    return out;
  }

 private:
  /// Scan forward collecting regions. If closeTag is non-null, stop at
  /// the matching '@</tag>' and report its span via *closeFound.
  void scanInto(std::vector<Region>& out, const std::string* closeTag,
                std::pair<std::size_t, std::size_t>* closeFound) {
    while (pos_ < src_.size()) {
      const std::size_t skipped = skipHostLexeme(src_, pos_);
      if (skipped != pos_) {
        pos_ = skipped;
        continue;
      }
      if (src_[pos_] == '@' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '<') {
        if (pos_ + 2 < src_.size() && src_[pos_ + 2] == '/') {
          // a closing marker
          const std::size_t markBegin = pos_;
          std::string tag = parseCloseTag();
          if (!closeTag) throw AnnotationError("unmatched @</" + tag + ">", markBegin);
          if (tag != *closeTag) {
            throw AnnotationError("mismatched close: expected @</" + *closeTag + ">, found @</" +
                                      tag + ">",
                                  markBegin);
          }
          *closeFound = {markBegin, pos_};
          return;
        }
        out.push_back(parseRegion());
        continue;
      }
      ++pos_;
    }
    if (closeTag) throw AnnotationError("unterminated region @<" + *closeTag + ">", src_.size());
  }

  Region parseRegion() {
    Region r;
    r.outerBegin = pos_;
    pos_ += 2;  // consume '@<'
    r.tag = parseTagName();

    // attributes: either parenthesized or bare
    skipSpaces();
    if (pos_ < src_.size() && src_[pos_] == '(') {
      ++pos_;
      parseAttrs(r, /*parenthesized=*/true);
      skipSpaces();
    } else {
      parseAttrs(r, /*parenthesized=*/false);
    }

    skipSpaces();
    if (pos_ + 1 < src_.size() && src_[pos_] == '/' && src_[pos_ + 1] == '>') {
      pos_ += 2;
      r.selfClosing = true;
      r.outerEnd = pos_;
      r.innerBegin = r.innerEnd = pos_;
      return r;
    }
    if (pos_ >= src_.size() || src_[pos_] != '>') {
      throw AnnotationError("expected '>' or '/>' after annotation head @<" + r.tag, pos_);
    }
    ++pos_;
    r.innerBegin = pos_;

    std::pair<std::size_t, std::size_t> close{};
    scanInto(r.children, &r.tag, &close);
    r.innerEnd = close.first;
    r.outerEnd = close.second;
    return r;
  }

  std::string parseTagName() {
    const std::size_t start = pos_;
    while (pos_ < src_.size() && isTagChar(src_[pos_])) ++pos_;
    if (pos_ == start) throw AnnotationError("missing annotation tag name", start);
    return std::string(src_.substr(start, pos_ - start));
  }

  std::string parseCloseTag() {
    pos_ += 3;  // consume '@</'
    std::string tag = parseTagName();
    skipSpaces();
    if (pos_ >= src_.size() || src_[pos_] != '>') {
      throw AnnotationError("expected '>' in @</" + tag + ">", pos_);
    }
    ++pos_;
    return tag;
  }

  void parseAttrs(Region& r, bool parenthesized) {
    while (true) {
      skipSpaces();
      if (pos_ >= src_.size()) throw AnnotationError("unterminated annotation head", pos_);
      const char c = src_[pos_];
      if (parenthesized && c == ')') {
        ++pos_;
        return;
      }
      if (!parenthesized && (c == '>' || (c == '/' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '>'))) {
        return;
      }
      if (parenthesized && c == ',') {
        ++pos_;
        continue;
      }
      // name = value
      const std::size_t nameStart = pos_;
      while (pos_ < src_.size() && isTagChar(src_[pos_])) ++pos_;
      if (pos_ == nameStart) throw AnnotationError("expected attribute name", pos_);
      std::string name(src_.substr(nameStart, pos_ - nameStart));
      skipSpaces();
      if (pos_ >= src_.size() || src_[pos_] != '=') {
        r.attrs[name] = "";  // valueless attribute
        continue;
      }
      ++pos_;
      skipSpaces();
      std::string value;
      if (pos_ < src_.size() && (src_[pos_] == '"' || src_[pos_] == '\'')) {
        const char quote = src_[pos_++];
        while (pos_ < src_.size() && src_[pos_] != quote) value += src_[pos_++];
        if (pos_ >= src_.size()) throw AnnotationError("unterminated attribute value", pos_);
        ++pos_;
      } else {
        while (pos_ < src_.size() && !std::isspace(static_cast<unsigned char>(src_[pos_])) &&
               src_[pos_] != '>' && src_[pos_] != ')' && src_[pos_] != ',' &&
               !(src_[pos_] == '/' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '>')) {
          value += src_[pos_++];
        }
      }
      r.attrs[std::move(name)] = std::move(value);
    }
  }

  void skipSpaces() {
    while (pos_ < src_.size() && std::isspace(static_cast<unsigned char>(src_[pos_]))) ++pos_;
  }

  std::string_view src_;
  std::size_t pos_ = 0;
};

std::string transformRegion(std::string_view src, const Region& region,
                            const std::function<std::string(const Region&, const std::string&)>& fn);

/// Rewrite [begin, end) of src, splicing transformed regions in place.
std::string spliceSpan(std::string_view src, std::size_t begin, std::size_t end,
                       const std::vector<Region>& regions,
                       const std::function<std::string(const Region&, const std::string&)>& fn) {
  std::string out;
  std::size_t cursor = begin;
  for (const auto& r : regions) {
    out.append(src.substr(cursor, r.outerBegin - cursor));
    out.append(transformRegion(src, r, fn));
    cursor = r.outerEnd;
  }
  out.append(src.substr(cursor, end - cursor));
  return out;
}

std::string transformRegion(std::string_view src, const Region& region,
                            const std::function<std::string(const Region&, const std::string&)>& fn) {
  const std::string inner =
      spliceSpan(src, region.innerBegin, region.innerEnd, region.children, fn);
  return fn(region, inner);
}

}  // namespace

std::vector<Region> parseAnnotations(std::string_view source) {
  return Scanner(source).scanAll();
}

std::string transformRegions(
    std::string_view source,
    const std::function<std::string(const Region&, const std::string& inner)>& fn) {
  const auto regions = parseAnnotations(source);
  return spliceSpan(source, 0, source.size(), regions, fn);
}

}  // namespace congen::meta

// annotations.hpp — scoped annotations for mixed-language embedding.
//
// Section IV: scoped annotations "blend Java annotations and XML" and
// delimit regions of embedded code at expression, method, or class level:
//
//   @<tag attr1=x1 ... attrn=xn> expression @</tag>
//   @<tag attr1=x1 ... attrn=xn/>
//   @<tag(attr1=x1, ..., attrn=xn)> expression @</tag>
//   @<tag(attr1=x1, ..., attrn=xn)/>
//
// The metaparser that finds them is deliberately *oblivious to the host
// grammar*: it only understands host string/char literals and comments
// (so annotation-looking text inside them is ignored) and the annotation
// markers themselves. Regions nest; tags may be namespace-qualified.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace congen::meta {

/// One annotated region.
struct Region {
  std::string tag;                            // possibly qualified (a.b.tag)
  std::map<std::string, std::string> attrs;   // attribute values, unquoted
  bool selfClosing = false;

  // Offsets into the original source:
  std::size_t outerBegin = 0;  // at the '@' of '@<tag'
  std::size_t outerEnd = 0;    // one past the closing '>' of '@</tag>' (or '/>')
  std::size_t innerBegin = 0;  // content start (empty for self-closing)
  std::size_t innerEnd = 0;    // content end

  std::vector<Region> children;  // nested annotations, in order

  [[nodiscard]] std::string attr(const std::string& name, std::string fallback = {}) const {
    const auto it = attrs.find(name);
    return it == attrs.end() ? std::move(fallback) : it->second;
  }
};

/// Malformed annotation syntax (unterminated region, bad attribute, tag
/// mismatch). Host-language syntax is never diagnosed here.
class AnnotationError : public std::runtime_error {
 public:
  AnnotationError(const std::string& message, std::size_t offset)
      : std::runtime_error(message + " (at offset " + std::to_string(offset) + ")"),
        offset_(offset) {}
  [[nodiscard]] std::size_t offset() const noexcept { return offset_; }

 private:
  std::size_t offset_;
};

/// Find all top-level annotated regions (children nested inside them).
std::vector<Region> parseAnnotations(std::string_view source);

/// Rewrite a source buffer: every region is replaced by
/// fn(region, innerTransformed), where innerTransformed is the region's
/// content with its own children already rewritten — the
/// innermost-outwards transformation order of Section IV. Host text is
/// passed through verbatim.
std::string transformRegions(
    std::string_view source,
    const std::function<std::string(const Region&, const std::string& inner)>& fn);

}  // namespace congen::meta

#include "obs/trace_adapter.hpp"

#include <string>

#include "kernel/trace.hpp"
#include "obs/trace_sink.hpp"

namespace congen::obs {

namespace {

/// Strip the congen:: namespace from a demangled node type for readable
/// track labels (matches trace::format's rendering).
std::string shortName(const std::string& type) {
  const auto pos = type.rfind("::");
  return pos == std::string::npos ? type : type.substr(pos + 2);
}

}  // namespace

void installChromeTraceHook() {
  installTraceSink();
  trace::install([](const trace::Event& e) {
    switch (e.kind) {
      case trace::EventKind::Resume:
        traceBegin(shortName(e.nodeType), "gen");
        break;
      case trace::EventKind::Produce:
        traceEnd(shortName(e.nodeType), "gen",
                 e.value ? "{\"result\": " + jsonQuote(e.value->image()) + "}" : "");
        break;
      case trace::EventKind::Fail:
        traceEnd(shortName(e.nodeType), "gen", "{\"fail\": true}");
        break;
    }
  });
}

void removeChromeTraceHook() {
  trace::remove();
  removeTraceSink();
}

}  // namespace congen::obs

// metrics.hpp — process-wide metrics registry for the concurrent runtime.
//
// The paper's closing future-work item (Section IX) names "program
// monitoring and debugging within a transformational framework" as
// unexplored. kernel/trace.hpp instruments the *control* dimension (the
// uniform next() protocol); this registry instruments the *resource*
// dimension: lock-free counters, gauges, and fixed-bucket histograms
// that every runtime subsystem (queues, pipes, pools, map-reduce, the
// frame pools and node arena) feeds, and that snapshot() renders into a
// coherent, conservation-checkable view.
//
// Cost model (the contract the kernel bench gates enforce):
//  * disabled: ONE relaxed atomic load per instrumented operation —
//    callers capture `metricsEnabled()` once per operation and branch.
//  * enabled: relaxed fetch_add on a striped cache-line-private atomic;
//    no locks anywhere on the update path.
//
// Registration (`Registry::counter("queue.put.elements")`) takes a
// mutex, but handles are resolved once per process (static locals in
// runtime_stats.hpp) — never per operation. snapshot() only reads
// relaxed atomics, so it is safe to call concurrently with updates; the
// result is a consistent-enough view (each metric internally exact,
// cross-metric skew bounded by in-flight operations).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace congen::obs {

namespace detail {
extern std::atomic<bool> g_metricsEnabled;
/// Round-robin stripe assignment: each thread gets a stable stripe index
/// on first use, spreading writers across cache lines.
std::size_t assignStripe() noexcept;
}  // namespace detail

/// The one relaxed load every instrumented operation pays when metrics
/// are off. Capture the result ONCE per operation and branch on it.
inline bool metricsEnabled() noexcept {
  return detail::g_metricsEnabled.load(std::memory_order_relaxed);
}

void enableMetrics() noexcept;
void disableMetrics() noexcept;

inline constexpr std::size_t kStripes = 8;

/// Monotonic counter over striped relaxed atomics. Writers touch their
/// own cache line; value() sums the stripes (racy-but-exact: every add
/// is eventually visible, and reads after quiescence see the true sum).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t n = 1) noexcept {
    stripes_[stripe()].v.fetch_add(n, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t sum = 0;
    for (const auto& s : stripes_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  struct alignas(64) Stripe {
    std::atomic<std::uint64_t> v{0};
  };
  static std::size_t stripe() noexcept {
    thread_local const std::size_t s = detail::assignStripe();
    return s;
  }
  std::array<Stripe, kStripes> stripes_{};
};

/// Signed up/down gauge (queue depth, live threads, live pipes). Striped
/// like Counter; value() is the signed sum of the stripes, so an add on
/// one thread and the matching sub on another still cancel exactly.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void add(std::int64_t n) noexcept {
    stripes_[stripe()].v.fetch_add(n, std::memory_order_relaxed);
  }
  void sub(std::int64_t n) noexcept { add(-n); }

  [[nodiscard]] std::int64_t value() const noexcept {
    std::int64_t sum = 0;
    for (const auto& s : stripes_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  struct alignas(64) Stripe {
    std::atomic<std::int64_t> v{0};
  };
  static std::size_t stripe() noexcept {
    thread_local const std::size_t s = detail::assignStripe();
    return s;
  }
  std::array<Stripe, kStripes> stripes_{};
};

/// Fixed-bucket histogram (latencies in microseconds, batch sizes in
/// elements). `bounds` are inclusive upper bounds of the finite buckets;
/// one implicit overflow bucket catches the rest. Counts are striped per
/// cache line; sum/count ride in the same stripe, so a single record()
/// touches exactly one line.
class Histogram {
 public:
  explicit Histogram(std::vector<std::uint64_t> bounds) : bounds_(std::move(bounds)) {
    for (auto& s : stripes_) {
      s.buckets = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
      for (std::size_t i = 0; i <= bounds_.size(); ++i) s.buckets[i].store(0);
    }
  }
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void record(std::uint64_t v) noexcept {
    std::size_t b = 0;
    while (b < bounds_.size() && v > bounds_[b]) ++b;
    auto& s = stripes_[stripe()];
    s.buckets[b].fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
    s.count.fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] const std::vector<std::uint64_t>& bounds() const noexcept { return bounds_; }
  [[nodiscard]] std::uint64_t count() const noexcept {
    std::uint64_t n = 0;
    for (const auto& s : stripes_) n += s.count.load(std::memory_order_relaxed);
    return n;
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    std::uint64_t n = 0;
    for (const auto& s : stripes_) n += s.sum.load(std::memory_order_relaxed);
    return n;
  }
  /// Per-bucket totals, overflow bucket last (bounds().size() + 1 entries).
  [[nodiscard]] std::vector<std::uint64_t> bucketCounts() const {
    std::vector<std::uint64_t> out(bounds_.size() + 1, 0);
    for (const auto& s : stripes_) {
      for (std::size_t i = 0; i < out.size(); ++i) {
        out[i] += s.buckets[i].load(std::memory_order_relaxed);
      }
    }
    return out;
  }

 private:
  struct alignas(64) Stripe {
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets;
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> count{0};
  };
  static std::size_t stripe() noexcept {
    thread_local const std::size_t s = detail::assignStripe();
    return s;
  }
  std::vector<std::uint64_t> bounds_;
  std::array<Stripe, kStripes> stripes_;
};

/// Power-of-two microsecond bounds for latency histograms: 1µs .. ~8s.
std::vector<std::uint64_t> latencyBoundsMicros();
/// Power-of-two element-count bounds for size histograms: 1 .. 1024.
std::vector<std::uint64_t> sizeBounds();

// ---- snapshots -----------------------------------------------------------

struct HistogramSample {
  std::string name;
  std::vector<std::uint64_t> bounds;  // finite upper bounds; overflow implicit
  std::vector<std::uint64_t> counts;  // bounds.size() + 1 entries
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
};

/// A point-in-time read of every registered metric, name-sorted.
struct Snapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<HistogramSample> histograms;

  /// 0 / nullptr when the metric was never registered.
  [[nodiscard]] std::uint64_t counterValue(const std::string& name) const;
  [[nodiscard]] std::int64_t gaugeValue(const std::string& name) const;
  [[nodiscard]] const HistogramSample* histogram(const std::string& name) const;

  /// Render as the stable congen metrics JSON document (schema v1; see
  /// docs/INTERNALS.md §10). Deterministic: metrics are name-sorted.
  void writeJson(std::ostream& os) const;
  /// Human-readable rendering for `congen-run --stats`.
  void writeText(std::ostream& os) const;
};

/// Named metric registry. `global()` is the process-wide instance every
/// runtime subsystem registers against; separate instances exist so the
/// golden tests can exercise rendering deterministically.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Leaked singleton: instrumentation sites may fire during static
  /// destruction (thread caches, global pool teardown), so the registry
  /// must never be destroyed before the last metric update.
  static Registry& global();

  /// Find-or-create. References are stable for the registry's lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` applies only on first registration of `name`.
  Histogram& histogram(const std::string& name, std::vector<std::uint64_t> bounds);

  /// Register a pull-style collector, run at the start of every
  /// snapshot() before the instruments are read. Collectors bridge
  /// subsystems that keep their own (cheaper-than-atomic-load) tallies
  /// into named instruments — e.g. the kernel arena's branch-free
  /// per-thread counters. A collector must only add deltas observed
  /// since its last run; it may call counter()/gauge()/histogram() but
  /// must not call snapshot() (the collector list is not reentrant).
  void addCollector(std::function<void()> fn);

  [[nodiscard]] Snapshot snapshot() const;

 private:
  mutable std::mutex m_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  mutable std::mutex collectorsM_;
  std::vector<std::function<void()>> collectors_;
};

}  // namespace congen::obs

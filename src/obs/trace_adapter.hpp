// trace_adapter.hpp — bridge from the kernel next()-protocol hook to the
// Chrome trace sink.
//
// kernel/trace.hpp observes the whole computation at one uniform point
// (the paper's Section IX monitoring direction); this adapter turns that
// event stream into duration spans: Resume opens a 'B' event named after
// the kernel node type, Produce/Fail close it with an 'E' carrying the
// produced value (or a fail marker) as args. Because next() calls nest
// strictly per thread, the resulting spans form well-bracketed per-thread
// tracks — the generator tree becomes a flame graph.
#pragma once

namespace congen::obs {

/// Install the Chrome sink AND a kernel trace hook feeding it. Replaces
/// any previously installed kernel hook (they are exclusive by design —
/// see trace::install).
void installChromeTraceHook();

/// Remove the kernel hook and stop the sink.
void removeChromeTraceHook();

}  // namespace congen::obs

// trace_sink.hpp — structured trace collection in Chrome trace format.
//
// A process-global event collector that renders chrome://tracing (and
// Perfetto) compatible JSON: duration events ('B'/'E') forming per-thread
// tracks, plus instant events ('i'). Producers are the kernel next()
// protocol (via obs/trace_adapter.hpp) and the pipe/pool layer, which
// emit stage spans directly — so a single trace shows the generator tree
// resuming on the consumer thread interleaved with producer threads
// flushing batches.
//
// Disabled cost is one relaxed atomic load per call site (traceEnabled()
// is checked by the caller). The enabled path takes a global mutex per
// event — tracing is a debugging tool, not a production counter; the
// kernel hook it rides on already pays a demangle per event.
//
// Timestamps are steady-clock microseconds since install(), strictly
// non-decreasing per thread (the timestamp is taken under the same lock
// that orders the buffer, so per-track monotonicity is structural, not
// best-effort). Thread ids are small dense integers assigned on first
// event, stable for the sink's lifetime.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace congen::obs {

namespace detail {
extern std::atomic<bool> g_traceSinkEnabled;
}

/// The one relaxed load a call site pays when no sink is installed.
inline bool traceEnabled() noexcept {
  return detail::g_traceSinkEnabled.load(std::memory_order_relaxed);
}

/// Start collecting (clears any previous buffer). Idempotent.
void installTraceSink();
/// Stop collecting and drop the buffer.
void removeTraceSink();

/// Emit a duration-begin / duration-end pair on the current thread.
/// `args` (optional) is a pre-rendered JSON object (e.g. R"({"n": 3})")
/// attached to the event; pass an empty string for none.
void traceBegin(const std::string& name, const char* category);
void traceEnd(const std::string& name, const char* category, const std::string& args = "");
/// Emit an instant event on the current thread.
void traceInstant(const std::string& name, const char* category, const std::string& args = "");

/// RAII span: begin on construction, end on destruction (exception-safe
/// bracketing for producer bodies). No-op when the sink is disabled at
/// construction time.
class TraceSpan {
 public:
  TraceSpan(const char* name, const char* category) : name_(name), category_(category) {
    if (traceEnabled()) {
      armed_ = true;
      traceBegin(name_, category_);
    }
  }
  ~TraceSpan() {
    if (armed_) traceEnd(name_, category_);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  const char* category_;
  bool armed_ = false;
};

/// Render the collected buffer as a complete Chrome trace JSON document
/// ({"traceEvents": [...], ...}). Safe to call while collecting (events
/// appended after the call are simply not included).
void writeTraceJson(std::ostream& os);

/// Number of events currently buffered (tests / overflow checks).
std::size_t traceEventCount();

/// Quote + escape a string as a JSON string literal (for building the
/// pre-rendered `args` objects passed to traceEnd/traceInstant).
std::string jsonQuote(const std::string& s);

}  // namespace congen::obs

#include "obs/trace_sink.hpp"

#include <chrono>
#include <mutex>
#include <ostream>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <vector>

namespace congen::obs {

namespace detail {
std::atomic<bool> g_traceSinkEnabled{false};
}

namespace {

struct TraceEvent {
  char phase;  // 'B', 'E', 'i'
  std::string name;
  const char* category;
  std::uint64_t tsMicros;
  std::uint32_t tid;
  std::string args;  // pre-rendered JSON object, may be empty
};

/// Buffer cap: a runaway trace degrades to dropping events (counted)
/// instead of exhausting memory. 4M events ≈ a few hundred MB rendered,
/// far beyond what chrome://tracing loads comfortably anyway.
constexpr std::size_t kMaxEvents = 1 << 22;

struct SinkState {
  std::mutex m;
  std::vector<TraceEvent> events;
  std::unordered_map<std::thread::id, std::uint32_t> tids;
  std::chrono::steady_clock::time_point epoch;
  std::uint64_t dropped = 0;

  std::uint32_t tidFor(std::thread::id id) {
    const auto it = tids.find(id);
    if (it != tids.end()) return it->second;
    const auto tid = static_cast<std::uint32_t>(tids.size() + 1);
    tids.emplace(id, tid);
    return tid;
  }
};

SinkState& state() {
  static SinkState* s = new SinkState;  // leaked: late events must not race teardown
  return *s;
}

void append(char phase, const std::string& name, const char* category, const std::string& args) {
  auto& s = state();
  std::lock_guard lock(s.m);
  if (!detail::g_traceSinkEnabled.load(std::memory_order_relaxed)) return;  // lost the race
  if (s.events.size() >= kMaxEvents) {
    ++s.dropped;
    return;
  }
  // Timestamp under the lock: buffer order == timestamp order, so every
  // per-thread track is monotonic by construction.
  const auto now = std::chrono::steady_clock::now();
  const auto ts =
      static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(now - s.epoch).count());
  s.events.push_back(TraceEvent{phase, name, category, ts, s.tidFor(std::this_thread::get_id()), args});
}

void writeJsonString(std::ostream& os, const std::string& str) {
  os << '"';
  for (const char c : str) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

void installTraceSink() {
  auto& s = state();
  std::lock_guard lock(s.m);
  s.events.clear();
  s.tids.clear();
  s.dropped = 0;
  s.epoch = std::chrono::steady_clock::now();
  detail::g_traceSinkEnabled.store(true, std::memory_order_relaxed);
}

void removeTraceSink() {
  auto& s = state();
  std::lock_guard lock(s.m);
  detail::g_traceSinkEnabled.store(false, std::memory_order_relaxed);
  s.events.clear();
  s.tids.clear();
}

void traceBegin(const std::string& name, const char* category) {
  append('B', name, category, "");
}

void traceEnd(const std::string& name, const char* category, const std::string& args) {
  append('E', name, category, args);
}

void traceInstant(const std::string& name, const char* category, const std::string& args) {
  append('i', name, category, args);
}

std::size_t traceEventCount() {
  auto& s = state();
  std::lock_guard lock(s.m);
  return s.events.size();
}

std::string jsonQuote(const std::string& str) {
  std::ostringstream os;
  writeJsonString(os, str);
  return os.str();
}

void writeTraceJson(std::ostream& os) {
  auto& s = state();
  std::lock_guard lock(s.m);
  os << "{\"traceEvents\": [";
  bool first = true;
  for (const auto& e : s.events) {
    os << (first ? "\n" : ",\n") << "  {\"name\": ";
    writeJsonString(os, e.name);
    os << ", \"cat\": \"" << e.category << "\", \"ph\": \"" << e.phase << "\", \"ts\": " << e.tsMicros
       << ", \"pid\": 1, \"tid\": " << e.tid;
    if (!e.args.empty()) os << ", \"args\": " << e.args;
    if (e.phase == 'i') os << ", \"s\": \"t\"";
    os << "}";
    first = false;
  }
  os << (first ? "" : "\n") << "], \"displayTimeUnit\": \"ms\", \"otherData\": {\"producer\": "
     << "\"congen\", \"droppedEvents\": " << s.dropped << "}}\n";
}

}  // namespace congen::obs

#include "obs/metrics.hpp"

#include <algorithm>
#include <ostream>

namespace congen::obs {

namespace detail {

std::atomic<bool> g_metricsEnabled{false};

std::size_t assignStripe() noexcept {
  static std::atomic<std::size_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed) % kStripes;
}

}  // namespace detail

void enableMetrics() noexcept { detail::g_metricsEnabled.store(true, std::memory_order_relaxed); }
void disableMetrics() noexcept { detail::g_metricsEnabled.store(false, std::memory_order_relaxed); }

std::vector<std::uint64_t> latencyBoundsMicros() {
  std::vector<std::uint64_t> bounds;
  for (std::uint64_t b = 1; b <= (1ull << 23); b <<= 1) bounds.push_back(b);  // 1µs .. ~8.4s
  return bounds;
}

std::vector<std::uint64_t> sizeBounds() {
  std::vector<std::uint64_t> bounds;
  for (std::uint64_t b = 1; b <= 1024; b <<= 1) bounds.push_back(b);
  return bounds;
}

Registry& Registry::global() {
  static Registry* r = new Registry;  // leaked: see header
  return *r;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard lock(m_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard lock(m_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name, std::vector<std::uint64_t> bounds) {
  std::lock_guard lock(m_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

void Registry::addCollector(std::function<void()> fn) {
  std::lock_guard lock(collectorsM_);
  collectors_.push_back(std::move(fn));
}

Snapshot Registry::snapshot() const {
  {
    // Collectors may register instruments, so they run before m_ is
    // taken (counter() et al. lock m_ themselves).
    std::lock_guard lock(collectorsM_);
    for (const auto& fn : collectors_) fn();
  }
  Snapshot s;
  std::lock_guard lock(m_);
  s.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) s.counters.emplace_back(name, c->value());
  s.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) s.gauges.emplace_back(name, g->value());
  s.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSample hs;
    hs.name = name;
    hs.bounds = h->bounds();
    hs.counts = h->bucketCounts();
    // Derive the totals from the same per-bucket read: count must equal
    // the sum of buckets even if records land mid-snapshot.
    hs.count = 0;
    for (const auto c : hs.counts) hs.count += c;
    hs.sum = h->sum();
    s.histograms.push_back(std::move(hs));
  }
  return s;
}

std::uint64_t Snapshot::counterValue(const std::string& name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

std::int64_t Snapshot::gaugeValue(const std::string& name) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return 0;
}

const HistogramSample* Snapshot::histogram(const std::string& name) const {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

namespace {

void writeJsonString(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

void Snapshot::writeJson(std::ostream& os) const {
  os << "{\n  \"schema\": \"congen-metrics\",\n  \"version\": 1,\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : counters) {
    os << (first ? "\n    " : ",\n    ");
    writeJsonString(os, name);
    os << ": " << v;
    first = false;
  }
  os << (first ? "}" : "\n  }") << ",\n  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : gauges) {
    os << (first ? "\n    " : ",\n    ");
    writeJsonString(os, name);
    os << ": " << v;
    first = false;
  }
  os << (first ? "}" : "\n  }") << ",\n  \"histograms\": {";
  first = true;
  for (const auto& h : histograms) {
    os << (first ? "\n    " : ",\n    ");
    writeJsonString(os, h.name);
    os << ": {\"count\": " << h.count << ", \"sum\": " << h.sum << ", \"buckets\": [";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (i != 0) os << ", ";
      os << "{\"le\": ";
      if (i < h.bounds.size()) {
        os << h.bounds[i];
      } else {
        os << "\"inf\"";
      }
      os << ", \"count\": " << h.counts[i] << "}";
    }
    os << "]}";
    first = false;
  }
  os << (first ? "}" : "\n  }") << "\n}\n";
}

void Snapshot::writeText(std::ostream& os) const {
  os << "=== congen metrics ===\n";
  for (const auto& [name, v] : counters) os << "  " << name << " = " << v << "\n";
  for (const auto& [name, v] : gauges) os << "  " << name << " = " << v << " (gauge)\n";
  for (const auto& h : histograms) {
    os << "  " << h.name << ": count=" << h.count << " sum=" << h.sum;
    if (h.count > 0) {
      os << " buckets[";
      bool any = false;
      for (std::size_t i = 0; i < h.counts.size(); ++i) {
        if (h.counts[i] == 0) continue;
        if (any) os << " ";
        if (i < h.bounds.size()) {
          os << "<=" << h.bounds[i];
        } else {
          os << ">" << h.bounds.back();
        }
        os << ":" << h.counts[i];
        any = true;
      }
      os << "]";
    }
    os << "\n";
  }
}

}  // namespace congen::obs

#include "obs/runtime_stats.hpp"

namespace congen::obs {

QueueStats& QueueStats::get() {
  auto& r = Registry::global();
  static QueueStats* s = new QueueStats{
      r.counter("queue.put.elements"),
      r.counter("queue.put.batches"),
      r.counter("queue.put.batch_elements"),
      r.counter("queue.take.elements"),
      r.counter("queue.take.batches"),
      r.counter("queue.take.batch_elements"),
      r.counter("queue.dropped_on_close"),
      r.gauge("queue.depth"),
      r.histogram("queue.put.batch_size", sizeBounds()),
      r.histogram("queue.blocked.put_micros", latencyBoundsMicros()),
      r.histogram("queue.blocked.take_micros", latencyBoundsMicros()),
  };
  return *s;
}

PipeStats& PipeStats::get() {
  auto& r = Registry::global();
  static PipeStats* s = new PipeStats{
      r.counter("pipe.created"),
      r.gauge("pipe.live"),
      r.counter("pipe.activations"),
      r.counter("pipe.batches_flushed"),
      r.counter("pipe.cancellations"),
      r.counter("pipe.errors_stored"),
  };
  return *s;
}

PoolStats& PoolStats::get() {
  auto& r = Registry::global();
  static PoolStats* s = new PoolStats{
      r.counter("pool.tasks_run"),
      r.counter("pool.threads_created"),
      r.gauge("pool.threads_live"),
      r.counter("pool.tasks_stolen"),
      r.histogram("pool.queue_latency_micros", latencyBoundsMicros()),
  };
  return *s;
}

RingStats& RingStats::get() {
  auto& r = Registry::global();
  static RingStats* s = new RingStats{
      r.counter("ring.created"),
      r.counter("ring.producer_parks"),
      r.counter("ring.consumer_parks"),
      r.counter("ring.wakes"),
  };
  return *s;
}

ParStats& ParStats::get() {
  auto& r = Registry::global();
  static ParStats* s = new ParStats{
      r.counter("par.chunks"),
      r.counter("par.retries"),
      r.counter("par.replay_skips"),
      r.counter("par.stages"),
  };
  return *s;
}

KernelStats& KernelStats::get() {
  auto& r = Registry::global();
  static KernelStats* s = new KernelStats{
      r.counter("kernel.frames.pooled"),
      r.counter("kernel.frames.allocated"),
      r.counter("kernel.frames.parked"),
      r.counter("kernel.arena.hits"),
      r.counter("kernel.arena.misses"),
      r.counter("kernel.arena.returns"),
      r.counter("interp.evals"),
      r.counter("interp.loads"),
  };
  return *s;
}

GovernorStats& GovernorStats::get() {
  auto& r = Registry::global();
  static GovernorStats* s = new GovernorStats{
      r.counter("governor.fuel_spent"),
      r.gauge("governor.heap_reserved"),
      r.counter("governor.quota_trips"),
      r.counter("governor.sheds"),
  };
  return *s;
}

VmStats& VmStats::get() {
  auto& r = Registry::global();
  static VmStats* s = new VmStats{
      r.counter("vm.dispatches"),
      r.counter("vm.frames_pooled"),
      r.counter("vm.icache_hits"),
      r.counter("vm.icache_misses"),
  };
  return *s;
}

ServeStats& ServeStats::get() {
  auto& r = Registry::global();
  static ServeStats* s = new ServeStats{
      r.counter("serve.connections_accepted"),
      r.counter("serve.accept_failures"),
      r.gauge("serve.sessions_active"),
      r.counter("serve.sessions_opened"),
      r.counter("serve.sessions_shed"),
      r.counter("serve.sessions_terminated"),
      r.counter("serve.requests"),
      r.counter("serve.results_streamed"),
      r.counter("serve.protocol_errors"),
      r.counter("serve.disconnects"),
      r.counter("serve.http_requests"),
      r.counter("serve.bytes_read"),
      r.counter("serve.bytes_written"),
      r.histogram("serve.request_latency_micros", latencyBoundsMicros()),
  };
  return *s;
}

}  // namespace congen::obs

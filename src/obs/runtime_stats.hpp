// runtime_stats.hpp — the runtime's named metric handles.
//
// One struct per instrumented subsystem, each a bundle of references
// resolved against Registry::global() exactly once (thread-safe static
// local in get()). Instrumentation sites capture `metricsEnabled()` once
// per operation and, when true, update through these handles — so the
// disabled path costs one relaxed load and the enabled path costs
// striped relaxed fetch_adds, never a name hash.
//
// Conservation contract (checked at stress-suite teardown, see
// tests/stress/conservation_env.cpp): with metrics enabled for the whole
// life of every queue,
//
//   put.elements + put.batch_elements ==
//       take.elements + take.batch_elements + depth + dropped_on_close
//
// and put.batch_size histogram sum == put.batch_elements. BlockingQueue
// updates its counters under the queue lock; SpscRing updates the same
// counters lock-free from its owning sides. Either way every transferred
// element is counted exactly once, so the identities hold exactly at
// quiescence — the stress Environment polls teardown until they settle.
#pragma once

#include "obs/metrics.hpp"

namespace congen::obs {

/// BlockingQueue<T> — aggregated over every instantiation and instance.
struct QueueStats {
  Counter& putElements;       ///< scalar put()/tryPut()/putFor() successes
  Counter& putBatches;        ///< bulk publications (one per putAll flush)
  Counter& putBatchElements;  ///< elements moved by bulk publications
  Counter& takeElements;      ///< scalar take()/tryTake()/takeFor() successes
  Counter& takeBatches;       ///< bulk drains (one per takeUpTo)
  Counter& takeBatchElements; ///< elements moved by bulk drains
  Counter& droppedOnClose;    ///< elements still queued at queue destruction
  Gauge& depth;               ///< live elements across all queues
  Histogram& putBatchSize;    ///< elements per bulk publication
  Histogram& blockedPutMicros;   ///< producer time blocked waiting for space
  Histogram& blockedTakeMicros;  ///< consumer time blocked waiting for data
  static QueueStats& get();
};

/// Pipe — the multithreaded generator proxy.
struct PipeStats {
  Counter& created;        ///< pipes constructed
  Gauge& live;             ///< pipes currently alive
  Counter& activations;    ///< results delivered to consumers
  Counter& batchesFlushed; ///< producer-side bulk flushes
  Counter& cancellations;  ///< cancel() requests
  Counter& errorsStored;   ///< producer errors captured for re-throw
  static PipeStats& get();
};

/// ThreadPool.
struct PoolStats {
  Counter& tasksRun;      ///< tasks completed by workers
  Counter& threadsCreated;
  Gauge& threadsLive;     ///< workers currently running
  Counter& tasksStolen;   ///< tasks a worker took from a sibling's deque
  Histogram& queueLatencyMicros;  ///< submit() -> dequeue wait
  static PoolStats& get();
};

/// SpscRing<T> — the lock-free pipe transport. Transfer counters live in
/// QueueStats (the conservation ledger is transport-agnostic); these
/// cover what only the ring has: futex parking instead of CV waits. The
/// ring updates the shared QueueStats OUTSIDE any lock (it has none) via
/// the same striped relaxed atomics — exact at quiescence, which is all
/// the conservation Environment's polled teardown requires.
struct RingStats {
  Counter& created;        ///< rings constructed (vs. mutex-queue pipes)
  Counter& producerParks;  ///< producer futex-park episodes (ring full)
  Counter& consumerParks;  ///< consumer futex-park episodes (ring empty)
  Counter& wakes;          ///< cross-side wakeups issued (parked flag seen)
  static RingStats& get();
};

/// DataParallel / Pipeline.
struct ParStats {
  Counter& chunks;       ///< chunks produced by ChunkGen
  Counter& retries;      ///< per-chunk retry attempts scheduled
  Counter& replaySkips;  ///< already-delivered values swallowed on replay
  Counter& stages;       ///< pipeline stage pipes constructed
  static ParStats& get();
};

/// Interpreter / kernel allocation machinery.
struct KernelStats {
  Counter& framesPooled;    ///< procedure bodies reused from a BodyPool
  Counter& framesAllocated; ///< calls that had to build a fresh body/frame
  Counter& framesParked;    ///< bodies returned to a pool on completion
  // The arena counters are fed by a snapshot-time collector from the
  // arena's branch-free per-thread tallies (see kernel/arena.hpp) — they
  // advance at Registry::snapshot(), not at the allocation site, and
  // count regardless of the metrics flag.
  Counter& arenaHits;       ///< arena allocations served from a thread bin
  Counter& arenaMisses;     ///< arena allocations that fell through to new
  Counter& arenaReturns;    ///< deallocations parked back into a bin
  Counter& interpEvals;     ///< Interpreter::eval() calls
  Counter& interpLoads;     ///< Interpreter::load()/loadProgram() calls
  static KernelStats& get();
};

/// ResourceGovernor (runtime/governor.hpp) — totals across live and
/// retired governors, bridged by a snapshot-time collector registered in
/// governor.cpp (the same pull pattern as the arena tallies: charge
/// paths update governor-local atomics, never these handles).
struct GovernorStats {
  Counter& fuelSpent;    ///< evaluation steps charged under fuel governance
  Gauge& heapReserved;   ///< live heap bytes charged across governors
  Counter& quotaTrips;   ///< errQuotaExceeded raises (all budgets)
  Counter& sheds;        ///< admission-gate refusals (errAdmissionRefused)
  static GovernorStats& get();
};

/// Bytecode VM backend (interp/vm.hpp).
struct VmStats {
  Counter& dispatches;    ///< instructions dispatched
  Counter& framesPooled;  ///< VM procedure bodies reused from a BodyPool
  Counter& icacheHits;    ///< kLoadLate inline-cache hits
  Counter& icacheMisses;  ///< kLoadLate full re-checks (cold or stale)
  static VmStats& get();
};

/// congen-serve — the multi-tenant script-execution daemon
/// (src/serve/server.hpp). Request latency is measured from complete
/// frame decode to the last response byte handed to the kernel.
struct ServeStats {
  Counter& connectionsAccepted;  ///< sockets accepted (incl. HTTP probes)
  Counter& acceptFailures;       ///< accept() throws survived (EMFILE kin)
  Gauge& sessionsActive;         ///< sessions currently open
  Counter& sessionsOpened;       ///< protocol sessions begun (post-hello)
  Counter& sessionsShed;         ///< admission refusals answered with 815
  Counter& sessionsTerminated;   ///< supervisor hard teardowns (816 path)
  Counter& requests;             ///< complete request frames processed
  Counter& resultsStreamed;      ///< values delivered in NEXT responses
  Counter& protocolErrors;       ///< 9xx responses (bad frame/verb/state)
  Counter& disconnects;          ///< sessions torn down by peer hangup
  Counter& httpRequests;         ///< /metrics, /metrics.json, /healthz hits
  Counter& bytesRead;            ///< request bytes off the wire
  Counter& bytesWritten;         ///< response bytes onto the wire
  Histogram& requestLatencyMicros;
  static ServeStats& get();
};

}  // namespace congen::obs

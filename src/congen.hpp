// congen.hpp — umbrella header for the concurrent-generators library.
//
// Pulls in the public API: the dynamic runtime (Value, collections,
// procedures), the goal-directed iterator kernel, co-expressions and
// pipes, the parallel abstractions (Pipeline, DataParallel), the
// builtins, and the embedding toolchain (parser, normalizer,
// interpreter). Generated code from the congenc translator includes this
// header.
#pragma once

#include "bignum/bigint.hpp"
#include "builtins/builtins.hpp"
#include "coexpr/shadow.hpp"
#include "concur/blocking_queue.hpp"
#include "concur/cancel.hpp"
#include "concur/pipe.hpp"
#include "concur/thread_pool.hpp"
#include "frontend/parser.hpp"
#include "interp/interpreter.hpp"
#include "kernel/basic.hpp"
#include "kernel/coexpression.hpp"
#include "kernel/compose.hpp"
#include "kernel/control.hpp"
#include "kernel/error_env.hpp"
#include "kernel/gen.hpp"
#include "kernel/iterate.hpp"
#include "kernel/ops.hpp"
#include "kernel/scan.hpp"
#include "kernel/trace.hpp"
#include "par/data_parallel.hpp"
#include "par/pipeline.hpp"
#include "runtime/atom.hpp"
#include "runtime/collections.hpp"
#include "runtime/error.hpp"
#include "runtime/proc.hpp"
#include "runtime/record.hpp"
#include "runtime/value.hpp"
#include "runtime/var.hpp"
#include "transform/normalize.hpp"

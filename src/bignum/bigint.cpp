#include "bignum/bigint.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cassert>
#include <cctype>
#include <cmath>
#include <ostream>
#include <random>
#include <stdexcept>

namespace congen {

namespace {

constexpr unsigned kLimbBits = 32;
constexpr std::size_t kKaratsubaThreshold = 32;  // limbs

// Largest power of `radix` that fits in a limb, and its exponent.
struct RadixChunk {
  BigInt::Limb power;
  unsigned digits;
};

RadixChunk radixChunk(unsigned radix) {
  BigInt::DoubleLimb power = radix;
  unsigned digits = 1;
  while (power * radix <= 0xFFFFFFFFULL) {
    power *= radix;
    ++digits;
  }
  return {static_cast<BigInt::Limb>(power), digits};
}

int digitValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'z') return c - 'a' + 10;
  if (c >= 'A' && c <= 'Z') return c - 'A' + 10;
  return -1;
}

constexpr char kDigits[] = "0123456789abcdefghijklmnopqrstuvwxyz";

}  // namespace

BigInt::BigInt(std::int64_t v) {
  if (v == 0) return;
  negative_ = v < 0;
  // Avoid UB negating INT64_MIN: go through the unsigned representation.
  std::uint64_t mag = negative_ ? ~static_cast<std::uint64_t>(v) + 1 : static_cast<std::uint64_t>(v);
  limbs_.push_back(static_cast<Limb>(mag & 0xFFFFFFFFu));
  if (mag >> kLimbBits) limbs_.push_back(static_cast<Limb>(mag >> kLimbBits));
}

void BigInt::trim(std::vector<Limb>& v) noexcept {
  while (!v.empty() && v.back() == 0) v.pop_back();
}

void BigInt::normalize() noexcept {
  trim(limbs_);
  if (limbs_.empty()) negative_ = false;
}

std::optional<BigInt> BigInt::parse(std::string_view text, unsigned radix) {
  if (radix < 2 || radix > 36) return std::nullopt;
  std::size_t i = 0;
  bool negative = false;
  if (i < text.size() && (text[i] == '+' || text[i] == '-')) {
    negative = text[i] == '-';
    ++i;
  }
  if (i >= text.size()) return std::nullopt;

  const auto [chunkPower, chunkDigits] = radixChunk(radix);
  BigInt result;
  Limb chunk = 0;
  unsigned pending = 0;
  auto flush = [&](Limb power) {
    // result = result * power + chunk, in-place over the magnitude.
    DoubleLimb carry = chunk;
    for (auto& limb : result.limbs_) {
      DoubleLimb t = static_cast<DoubleLimb>(limb) * power + carry;
      limb = static_cast<Limb>(t & 0xFFFFFFFFu);
      carry = t >> kLimbBits;
    }
    if (carry) result.limbs_.push_back(static_cast<Limb>(carry));
    chunk = 0;
    pending = 0;
  };

  for (; i < text.size(); ++i) {
    const int d = digitValue(text[i]);
    if (d < 0 || static_cast<unsigned>(d) >= radix) return std::nullopt;
    chunk = chunk * radix + static_cast<Limb>(d);
    if (++pending == chunkDigits) flush(chunkPower);
  }
  if (pending > 0) {
    Limb power = 1;
    for (unsigned k = 0; k < pending; ++k) power *= radix;
    flush(power);
  }
  result.negative_ = negative;
  result.normalize();
  return result;
}

BigInt BigInt::fromString(std::string_view text, unsigned radix) {
  auto v = parse(text, radix);
  if (!v) throw std::invalid_argument("BigInt::fromString: malformed input");
  return *std::move(v);
}

std::string BigInt::toString(unsigned radix) const {
  if (radix < 2 || radix > 36) throw std::invalid_argument("BigInt::toString: radix out of range");
  if (isZero()) return "0";

  const auto [chunkPower, chunkDigits] = radixChunk(radix);
  std::vector<Limb> mag = limbs_;
  std::string out;
  while (!mag.empty()) {
    // mag, chunk = divmod(mag, chunkPower)
    DoubleLimb rem = 0;
    for (std::size_t i = mag.size(); i-- > 0;) {
      DoubleLimb cur = (rem << kLimbBits) | mag[i];
      mag[i] = static_cast<Limb>(cur / chunkPower);
      rem = cur % chunkPower;
    }
    trim(mag);
    // Emit the chunk, zero-padded except for the most significant one.
    for (unsigned k = 0; k < chunkDigits; ++k) {
      out.push_back(kDigits[rem % radix]);
      rem /= radix;
      if (mag.empty() && rem == 0) break;
    }
  }
  if (negative_) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

std::size_t BigInt::bitLength() const noexcept {
  if (limbs_.empty()) return 0;
  const Limb top = limbs_.back();
  return (limbs_.size() - 1) * kLimbBits + (kLimbBits - std::countl_zero(top));
}

bool BigInt::testBit(std::size_t i) const noexcept {
  const std::size_t limb = i / kLimbBits;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % kLimbBits)) & 1u;
}

std::optional<std::int64_t> BigInt::toInt64() const noexcept {
  if (limbs_.size() > 2) return std::nullopt;
  std::uint64_t mag = 0;
  if (limbs_.size() >= 1) mag = limbs_[0];
  if (limbs_.size() == 2) mag |= static_cast<std::uint64_t>(limbs_[1]) << kLimbBits;
  if (negative_) {
    if (mag > static_cast<std::uint64_t>(INT64_MAX) + 1) return std::nullopt;
    return static_cast<std::int64_t>(~mag + 1);
  }
  if (mag > static_cast<std::uint64_t>(INT64_MAX)) return std::nullopt;
  return static_cast<std::int64_t>(mag);
}

double BigInt::toDouble() const noexcept {
  double mag = 0.0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    mag = mag * 4294967296.0 + static_cast<double>(limbs_[i]);
  }
  return negative_ ? -mag : mag;
}

int BigInt::compareMagnitude(const std::vector<Limb>& a, const std::vector<Limb>& b) noexcept {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (std::size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

std::vector<BigInt::Limb> BigInt::addMagnitude(const std::vector<Limb>& a, const std::vector<Limb>& b) {
  const auto& lo = a.size() >= b.size() ? b : a;
  const auto& hi = a.size() >= b.size() ? a : b;
  std::vector<Limb> out;
  out.reserve(hi.size() + 1);
  DoubleLimb carry = 0;
  for (std::size_t i = 0; i < hi.size(); ++i) {
    DoubleLimb t = carry + hi[i] + (i < lo.size() ? lo[i] : 0);
    out.push_back(static_cast<Limb>(t & 0xFFFFFFFFu));
    carry = t >> kLimbBits;
  }
  if (carry) out.push_back(static_cast<Limb>(carry));
  return out;
}

std::vector<BigInt::Limb> BigInt::subMagnitude(const std::vector<Limb>& a, const std::vector<Limb>& b) {
  assert(compareMagnitude(a, b) >= 0);
  std::vector<Limb> out;
  out.reserve(a.size());
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::int64_t t = static_cast<std::int64_t>(a[i]) - borrow - (i < b.size() ? b[i] : 0);
    if (t < 0) {
      t += (1LL << kLimbBits);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.push_back(static_cast<Limb>(t));
  }
  trim(out);
  return out;
}

std::vector<BigInt::Limb> BigInt::mulSchoolbook(const std::vector<Limb>& a, const std::vector<Limb>& b) {
  std::vector<Limb> out(a.size() + b.size(), 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] == 0) continue;
    DoubleLimb carry = 0;
    for (std::size_t j = 0; j < b.size(); ++j) {
      DoubleLimb t = static_cast<DoubleLimb>(a[i]) * b[j] + out[i + j] + carry;
      out[i + j] = static_cast<Limb>(t & 0xFFFFFFFFu);
      carry = t >> kLimbBits;
    }
    std::size_t k = i + b.size();
    while (carry) {
      DoubleLimb t = static_cast<DoubleLimb>(out[k]) + carry;
      out[k] = static_cast<Limb>(t & 0xFFFFFFFFu);
      carry = t >> kLimbBits;
      ++k;
    }
  }
  trim(out);
  return out;
}

std::vector<BigInt::Limb> BigInt::mulKaratsuba(const std::vector<Limb>& a, const std::vector<Limb>& b) {
  const std::size_t half = std::max(a.size(), b.size()) / 2;
  auto lowPart = [&](const std::vector<Limb>& v) {
    std::vector<Limb> r(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(std::min(half, v.size())));
    trim(r);
    return r;
  };
  auto highPart = [&](const std::vector<Limb>& v) {
    if (v.size() <= half) return std::vector<Limb>{};
    return std::vector<Limb>(v.begin() + static_cast<std::ptrdiff_t>(half), v.end());
  };

  const auto a0 = lowPart(a), a1 = highPart(a);
  const auto b0 = lowPart(b), b1 = highPart(b);

  auto z0 = mulMagnitude(a0, b0);
  auto z2 = mulMagnitude(a1, b1);
  auto z1 = mulMagnitude(addMagnitude(a0, a1), addMagnitude(b0, b1));
  z1 = subMagnitude(z1, z0);
  z1 = subMagnitude(z1, z2);

  // out = z0 + (z1 << half limbs) + (z2 << 2*half limbs)
  std::vector<Limb> out(std::max({z0.size(), z1.size() + half, z2.size() + 2 * half}) + 1, 0);
  auto addAt = [&](const std::vector<Limb>& v, std::size_t shift) {
    DoubleLimb carry = 0;
    std::size_t i = 0;
    for (; i < v.size(); ++i) {
      DoubleLimb t = static_cast<DoubleLimb>(out[i + shift]) + v[i] + carry;
      out[i + shift] = static_cast<Limb>(t & 0xFFFFFFFFu);
      carry = t >> kLimbBits;
    }
    while (carry) {
      DoubleLimb t = static_cast<DoubleLimb>(out[i + shift]) + carry;
      out[i + shift] = static_cast<Limb>(t & 0xFFFFFFFFu);
      carry = t >> kLimbBits;
      ++i;
    }
  };
  addAt(z0, 0);
  addAt(z1, half);
  addAt(z2, 2 * half);
  trim(out);
  return out;
}

std::vector<BigInt::Limb> BigInt::mulMagnitude(const std::vector<Limb>& a, const std::vector<Limb>& b) {
  if (a.empty() || b.empty()) return {};
  if (std::min(a.size(), b.size()) < kKaratsubaThreshold) return mulSchoolbook(a, b);
  return mulKaratsuba(a, b);
}

void BigInt::divmodMagnitude(const std::vector<Limb>& a, const std::vector<Limb>& b,
                             std::vector<Limb>& q, std::vector<Limb>& r) {
  assert(!b.empty());
  if (compareMagnitude(a, b) < 0) {
    q.clear();
    r = a;
    trim(r);
    return;
  }
  if (b.size() == 1) {
    const Limb d = b[0];
    q.assign(a.size(), 0);
    DoubleLimb rem = 0;
    for (std::size_t i = a.size(); i-- > 0;) {
      DoubleLimb cur = (rem << kLimbBits) | a[i];
      q[i] = static_cast<Limb>(cur / d);
      rem = cur % d;
    }
    trim(q);
    r.clear();
    if (rem) r.push_back(static_cast<Limb>(rem));
    return;
  }

  // Knuth TAOCP vol. 2, algorithm D. Normalize so the divisor's top limb
  // has its high bit set.
  const unsigned shift = std::countl_zero(b.back());
  auto shiftLeft = [](const std::vector<Limb>& v, unsigned s) {
    std::vector<Limb> out(v.size() + 1, 0);
    if (s == 0) {
      std::copy(v.begin(), v.end(), out.begin());
    } else {
      for (std::size_t i = 0; i < v.size(); ++i) {
        out[i] |= v[i] << s;
        out[i + 1] |= static_cast<Limb>(static_cast<DoubleLimb>(v[i]) >> (kLimbBits - s));
      }
    }
    return out;  // deliberately not trimmed: u keeps an extra high limb
  };
  std::vector<Limb> u = shiftLeft(a, shift);
  std::vector<Limb> v = shiftLeft(b, shift);
  trim(v);
  const std::size_t n = v.size();
  const std::size_t m = u.size() - n - 1;  // u has a.size()+1 limbs

  q.assign(m + 1, 0);
  const DoubleLimb base = 1ULL << kLimbBits;

  for (std::size_t j = m + 1; j-- > 0;) {
    // Estimate q_hat = (u[j+n]*base + u[j+n-1]) / v[n-1].
    DoubleLimb numerator = (static_cast<DoubleLimb>(u[j + n]) << kLimbBits) | u[j + n - 1];
    DoubleLimb qHat = numerator / v[n - 1];
    DoubleLimb rHat = numerator % v[n - 1];
    while (qHat >= base ||
           qHat * v[n - 2] > ((rHat << kLimbBits) | u[j + n - 2])) {
      --qHat;
      rHat += v[n - 1];
      if (rHat >= base) break;
    }
    // u[j..j+n] -= qHat * v
    std::int64_t borrow = 0;
    DoubleLimb carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      DoubleLimb p = qHat * v[i] + carry;
      carry = p >> kLimbBits;
      std::int64_t t = static_cast<std::int64_t>(u[i + j]) - static_cast<std::int64_t>(p & 0xFFFFFFFFu) - borrow;
      if (t < 0) {
        t += static_cast<std::int64_t>(base);
        borrow = 1;
      } else {
        borrow = 0;
      }
      u[i + j] = static_cast<Limb>(t);
    }
    std::int64_t t = static_cast<std::int64_t>(u[j + n]) - static_cast<std::int64_t>(carry) - borrow;
    if (t < 0) {
      // qHat was one too large: add back.
      t += static_cast<std::int64_t>(base);
      --qHat;
      DoubleLimb addCarry = 0;
      for (std::size_t i = 0; i < n; ++i) {
        DoubleLimb s = static_cast<DoubleLimb>(u[i + j]) + v[i] + addCarry;
        u[i + j] = static_cast<Limb>(s & 0xFFFFFFFFu);
        addCarry = s >> kLimbBits;
      }
      t += static_cast<std::int64_t>(addCarry);
    }
    u[j + n] = static_cast<Limb>(t);
    q[j] = static_cast<Limb>(qHat);
  }
  trim(q);

  // Remainder = u[0..n) >> shift.
  r.assign(u.begin(), u.begin() + static_cast<std::ptrdiff_t>(n));
  if (shift) {
    for (std::size_t i = 0; i < r.size(); ++i) {
      r[i] >>= shift;
      if (i + 1 < n) r[i] |= u[i + 1] << (kLimbBits - shift);
    }
  }
  trim(r);
}

BigInt operator+(const BigInt& a, const BigInt& b) {
  if (a.negative_ == b.negative_) {
    return BigInt(a.negative_, BigInt::addMagnitude(a.limbs_, b.limbs_));
  }
  const int cmp = BigInt::compareMagnitude(a.limbs_, b.limbs_);
  if (cmp == 0) return BigInt{};
  if (cmp > 0) return BigInt(a.negative_, BigInt::subMagnitude(a.limbs_, b.limbs_));
  return BigInt(b.negative_, BigInt::subMagnitude(b.limbs_, a.limbs_));
}

BigInt operator-(const BigInt& a, const BigInt& b) { return a + (-b); }

BigInt BigInt::operator-() const {
  BigInt out = *this;
  if (!out.isZero()) out.negative_ = !out.negative_;
  return out;
}

BigInt operator*(const BigInt& a, const BigInt& b) {
  return BigInt(a.negative_ != b.negative_, BigInt::mulMagnitude(a.limbs_, b.limbs_));
}

void BigInt::divmod(const BigInt& a, const BigInt& b, BigInt& q, BigInt& r) {
  if (b.isZero()) throw std::domain_error("BigInt: division by zero");
  std::vector<Limb> qm, rm;
  divmodMagnitude(a.limbs_, b.limbs_, qm, rm);
  q = BigInt(a.negative_ != b.negative_, std::move(qm));
  r = BigInt(a.negative_, std::move(rm));
}

BigInt operator/(const BigInt& a, const BigInt& b) {
  BigInt q, r;
  BigInt::divmod(a, b, q, r);
  return q;
}

BigInt operator%(const BigInt& a, const BigInt& b) {
  BigInt q, r;
  BigInt::divmod(a, b, q, r);
  return r;
}

BigInt operator<<(const BigInt& a, std::size_t bits) {
  if (a.isZero() || bits == 0) return a;
  const std::size_t limbShift = bits / kLimbBits;
  const unsigned bitShift = bits % kLimbBits;
  std::vector<BigInt::Limb> out(a.limbs_.size() + limbShift + 1, 0);
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    out[i + limbShift] |= a.limbs_[i] << bitShift;
    if (bitShift) {
      out[i + limbShift + 1] |=
          static_cast<BigInt::Limb>(static_cast<BigInt::DoubleLimb>(a.limbs_[i]) >> (kLimbBits - bitShift));
    }
  }
  return BigInt(a.negative_, std::move(out));
}

BigInt operator>>(const BigInt& a, std::size_t bits) {
  const std::size_t limbShift = bits / kLimbBits;
  if (limbShift >= a.limbs_.size()) return BigInt{};
  const unsigned bitShift = bits % kLimbBits;
  std::vector<BigInt::Limb> out(a.limbs_.begin() + static_cast<std::ptrdiff_t>(limbShift), a.limbs_.end());
  if (bitShift) {
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] >>= bitShift;
      if (i + 1 < out.size()) out[i] |= out[i + 1] << (kLimbBits - bitShift);
    }
  }
  return BigInt(a.negative_, std::move(out));
}

BigInt BigInt::abs() const {
  BigInt out = *this;
  out.negative_ = false;
  return out;
}

BigInt BigInt::pow(std::uint64_t e) const {
  BigInt base = *this;
  BigInt result{1};
  while (e) {
    if (e & 1) result *= base;
    e >>= 1;
    if (e) base *= base;
  }
  return result;
}

BigInt BigInt::powMod(const BigInt& e, const BigInt& m) const {
  if (m.signum() <= 0) throw std::domain_error("BigInt::powMod: modulus must be positive");
  if (e.isNegative()) throw std::domain_error("BigInt::powMod: negative exponent");
  BigInt base = *this % m;
  if (base.isNegative()) base += m;
  BigInt result{1};
  const std::size_t bits = e.bitLength();
  for (std::size_t i = 0; i < bits; ++i) {
    if (e.testBit(i)) result = (result * base) % m;
    base = (base * base) % m;
  }
  return result;
}

BigInt BigInt::isqrt() const {
  if (isNegative()) throw std::domain_error("BigInt::isqrt: negative argument");
  if (isZero()) return BigInt{};
  // Newton's method with a bit-length based initial guess.
  BigInt x = BigInt{1} << ((bitLength() + 1) / 2);
  while (true) {
    BigInt y = (x + *this / x) >> 1;
    if (y >= x) break;
    x = std::move(y);
  }
  return x;
}

BigInt BigInt::gcd(BigInt a, BigInt b) {
  a.negative_ = false;
  b.negative_ = false;
  while (!b.isZero()) {
    BigInt r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

namespace {

std::uint64_t mulModU64(std::uint64_t a, std::uint64_t b, std::uint64_t m) noexcept {
  return static_cast<std::uint64_t>(static_cast<unsigned __int128>(a) * b % m);
}

std::uint64_t powModU64(std::uint64_t base, std::uint64_t e, std::uint64_t m) noexcept {
  std::uint64_t result = 1;
  base %= m;
  while (e != 0) {
    if (e & 1u) result = mulModU64(result, base, m);
    base = mulModU64(base, base, m);
    e >>= 1;
  }
  return result;
}

}  // namespace

bool BigInt::isPrimeU64(std::uint64_t n) noexcept {
  if (n < 128) {
    // Bitmask over the primes below 128: trial division and Miller-Rabin
    // are both overkill down here, and small arguments dominate
    // goal-directed search workloads.
    static constexpr std::uint64_t kSmall[2] = {0x28208a20a08a28acull, 0x800228a202088288ull};
    return (kSmall[n >> 6] >> (n & 63u)) & 1u;
  }
  for (const std::uint64_t p : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull, 23ull,
                                29ull, 31ull, 37ull}) {
    if (n == p) return true;
    if (n % p == 0) return false;
  }
  // n - 1 = d * 2^s
  std::uint64_t d = n - 1;
  unsigned s = 0;
  while ((d & 1u) == 0) {
    d >>= 1;
    ++s;
  }
  // {2,3,...,37} is a deterministic witness set for all n < 3.3e24, which
  // covers the entire u64 range — this is exact primality, not probable.
  for (const std::uint64_t a : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull, 23ull,
                                29ull, 31ull, 37ull}) {
    std::uint64_t x = powModU64(a, d, n);
    if (x == 1 || x == n - 1) continue;
    bool composite = true;
    for (unsigned i = 1; i < s; ++i) {
      x = mulModU64(x, x, n);
      if (x == n - 1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

bool BigInt::isProbablePrime(unsigned rounds) const {
  if (isNegative()) return false;
  const auto small = toInt64();
  if (small && *small < 2) return false;
  static constexpr std::array<std::int64_t, 15> kSmallPrimes = {2,  3,  5,  7,  11, 13, 17, 19,
                                                                23, 29, 31, 37, 41, 43, 47};
  for (const auto p : kSmallPrimes) {
    const BigInt bp{p};
    if (*this == bp) return true;
    if ((*this % bp).isZero()) return false;
  }

  // Write n-1 = d * 2^s.
  const BigInt nMinus1 = *this - BigInt{1};
  BigInt d = nMinus1;
  std::size_t s = 0;
  while (d.isEven()) {
    d = d >> 1;
    ++s;
  }

  auto witness = [&](const BigInt& a) {
    BigInt x = a.powMod(d, *this);
    if (x == BigInt{1} || x == nMinus1) return false;  // not a witness
    for (std::size_t i = 1; i < s; ++i) {
      x = (x * x) % *this;
      if (x == nMinus1) return false;
    }
    return true;  // composite witness found
  };

  // Deterministic witness set covers all n < 3,317,044,064,679,887,385,961,981.
  static constexpr std::array<std::int64_t, 13> kFixedWitnesses = {2,  3,  5,  7,  11, 13, 17,
                                                                   19, 23, 29, 31, 37, 41};
  for (const auto w : kFixedWitnesses) {
    if (BigInt{w} >= nMinus1) break;
    if (witness(BigInt{w})) return false;
  }
  if (bitLength() <= 64) return true;

  // Random rounds for larger candidates. Deterministic seed keeps the
  // benchmark workload reproducible across runs.
  std::mt19937_64 rng{0x9E3779B97F4A7C15ull ^ hash()};
  const std::size_t bits = bitLength();
  for (unsigned round = 0; round < rounds; ++round) {
    BigInt a;
    do {
      std::vector<Limb> limbs((bits + kLimbBits - 1) / kLimbBits);
      for (auto& limb : limbs) limb = static_cast<Limb>(rng());
      a = BigInt(false, std::move(limbs)) % nMinus1;
    } while (a <= BigInt{1});
    if (witness(a)) return false;
  }
  return true;
}

BigInt BigInt::nextProbablePrime() const {
  BigInt candidate = *this;
  if (candidate < BigInt{2}) return BigInt{2};
  candidate += BigInt{1};
  if (candidate.isEven()) candidate += BigInt{1};
  while (!candidate.isProbablePrime()) candidate += BigInt{2};
  return candidate;
}

bool operator==(const BigInt& a, const BigInt& b) noexcept {
  return a.negative_ == b.negative_ && a.limbs_ == b.limbs_;
}

std::strong_ordering operator<=>(const BigInt& a, const BigInt& b) noexcept {
  if (a.negative_ != b.negative_) {
    return a.negative_ ? std::strong_ordering::less : std::strong_ordering::greater;
  }
  const int cmp = BigInt::compareMagnitude(a.limbs_, b.limbs_);
  const int signedCmp = a.negative_ ? -cmp : cmp;
  if (signedCmp < 0) return std::strong_ordering::less;
  if (signedCmp > 0) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

std::size_t BigInt::hash() const noexcept {
  std::size_t h = 14695981039346656037ull;
  auto mix = [&h](std::size_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(negative_ ? 1u : 0u);
  for (const auto limb : limbs_) mix(limb);
  return h;
}

std::ostream& operator<<(std::ostream& os, const BigInt& v) { return os << v.toString(); }

}  // namespace congen

// bigint.hpp — arbitrary-precision signed integers.
//
// Substrate for the congen runtime: Icon/Unicon integers are implicitly
// arbitrary precision, and the paper's word-count benchmarks (Fig. 3/6)
// lean on big-integer arithmetic (base-36 word decoding, square roots,
// probabilistic primality for the heavyweight hash). This module is the
// stand-in for Java's BigInteger used by the original evaluation.
//
// Representation: sign + little-endian magnitude in 32-bit limbs.
// The empty limb vector represents zero (sign is then +1 by convention).
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace congen {

/// Signed arbitrary-precision integer.
///
/// Value type with the usual arithmetic, comparison, and bit-shift
/// operators, plus the number-theoretic helpers the benchmark suite needs
/// (isqrt, Miller-Rabin primality, next probable prime). All operations
/// are strongly exception-safe; only allocation can throw.
class BigInt {
 public:
  using Limb = std::uint32_t;
  using DoubleLimb = std::uint64_t;

  /// Zero.
  BigInt() noexcept = default;

  /// From a native integer.
  BigInt(std::int64_t v);  // NOLINT(google-explicit-constructor): numeric literal ergonomics
  BigInt(int v) : BigInt(static_cast<std::int64_t>(v)) {}

  /// Parse from text in the given radix (2..36, digits 0-9 a-z,
  /// case-insensitive, optional leading '+'/'-').
  /// Returns std::nullopt on malformed input.
  static std::optional<BigInt> parse(std::string_view text, unsigned radix = 10);

  /// Parse, throwing std::invalid_argument on malformed input.
  static BigInt fromString(std::string_view text, unsigned radix = 10);

  /// Render in the given radix (2..36, lowercase digits).
  [[nodiscard]] std::string toString(unsigned radix = 10) const;

  // -- observers ------------------------------------------------------
  [[nodiscard]] bool isZero() const noexcept { return limbs_.empty(); }
  [[nodiscard]] bool isNegative() const noexcept { return negative_; }
  [[nodiscard]] bool isOdd() const noexcept { return !limbs_.empty() && (limbs_[0] & 1u); }
  [[nodiscard]] bool isEven() const noexcept { return !isOdd(); }
  /// -1, 0, +1.
  [[nodiscard]] int signum() const noexcept { return isZero() ? 0 : (negative_ ? -1 : 1); }
  /// Number of significant bits of the magnitude (0 for zero).
  [[nodiscard]] std::size_t bitLength() const noexcept;
  /// Number of limbs (implementation detail exposed for benchmarks).
  [[nodiscard]] std::size_t limbCount() const noexcept { return limbs_.size(); }
  /// Bit i of the magnitude.
  [[nodiscard]] bool testBit(std::size_t i) const noexcept;

  /// Fits in int64? If so, its value.
  [[nodiscard]] std::optional<std::int64_t> toInt64() const noexcept;
  /// Closest double (may overflow to +/-inf).
  [[nodiscard]] double toDouble() const noexcept;

  // -- arithmetic -----------------------------------------------------
  friend BigInt operator+(const BigInt& a, const BigInt& b);
  friend BigInt operator-(const BigInt& a, const BigInt& b);
  friend BigInt operator*(const BigInt& a, const BigInt& b);
  /// Truncated division (C semantics: quotient rounds toward zero).
  friend BigInt operator/(const BigInt& a, const BigInt& b);
  /// Remainder with the sign of the dividend (C semantics).
  friend BigInt operator%(const BigInt& a, const BigInt& b);
  BigInt operator-() const;
  BigInt& operator+=(const BigInt& b) { return *this = *this + b; }
  BigInt& operator-=(const BigInt& b) { return *this = *this - b; }
  BigInt& operator*=(const BigInt& b) { return *this = *this * b; }
  BigInt& operator/=(const BigInt& b) { return *this = *this / b; }
  BigInt& operator%=(const BigInt& b) { return *this = *this % b; }

  /// Quotient and remainder in one pass. Throws std::domain_error on
  /// division by zero.
  static void divmod(const BigInt& a, const BigInt& b, BigInt& q, BigInt& r);

  friend BigInt operator<<(const BigInt& a, std::size_t bits);
  friend BigInt operator>>(const BigInt& a, std::size_t bits);

  [[nodiscard]] BigInt abs() const;
  /// this^e for e >= 0 (throws std::domain_error for negative e).
  [[nodiscard]] BigInt pow(std::uint64_t e) const;
  /// Modular exponentiation: this^e mod m, m > 0.
  [[nodiscard]] BigInt powMod(const BigInt& e, const BigInt& m) const;
  /// Integer square root of a non-negative value (throws on negative).
  [[nodiscard]] BigInt isqrt() const;
  /// Greatest common divisor of magnitudes.
  static BigInt gcd(BigInt a, BigInt b);

  // -- number theory (heavyweight benchmark hash) ---------------------
  /// Miller-Rabin with `rounds` random bases after small-prime sieving.
  /// Deterministic for values < 3.3e14 via fixed witness set.
  [[nodiscard]] bool isProbablePrime(unsigned rounds = 20) const;
  /// Exact primality for a native word — deterministic Miller-Rabin over
  /// native 64/128-bit arithmetic, no limb allocation. The fast path
  /// behind the `isprime` builtin's small-integer case; deliberately NOT
  /// wired into isProbablePrime, whose cost calibrates the heavyweight
  /// benchmark hash (Section VII's ~80x factor).
  [[nodiscard]] static bool isPrimeU64(std::uint64_t n) noexcept;
  /// Smallest probable prime strictly greater than this value.
  [[nodiscard]] BigInt nextProbablePrime() const;

  // -- comparisons ----------------------------------------------------
  friend bool operator==(const BigInt& a, const BigInt& b) noexcept;
  friend std::strong_ordering operator<=>(const BigInt& a, const BigInt& b) noexcept;

  /// FNV-1a over sign and limbs; consistent with operator==.
  [[nodiscard]] std::size_t hash() const noexcept;

  friend std::ostream& operator<<(std::ostream& os, const BigInt& v);

 private:
  // Magnitude comparison: -1, 0, +1.
  static int compareMagnitude(const std::vector<Limb>& a, const std::vector<Limb>& b) noexcept;
  static std::vector<Limb> addMagnitude(const std::vector<Limb>& a, const std::vector<Limb>& b);
  // Requires |a| >= |b|.
  static std::vector<Limb> subMagnitude(const std::vector<Limb>& a, const std::vector<Limb>& b);
  static std::vector<Limb> mulMagnitude(const std::vector<Limb>& a, const std::vector<Limb>& b);
  static std::vector<Limb> mulSchoolbook(const std::vector<Limb>& a, const std::vector<Limb>& b);
  static std::vector<Limb> mulKaratsuba(const std::vector<Limb>& a, const std::vector<Limb>& b);
  // Knuth algorithm D over magnitudes; b must be nonzero.
  static void divmodMagnitude(const std::vector<Limb>& a, const std::vector<Limb>& b,
                              std::vector<Limb>& q, std::vector<Limb>& r);
  static void trim(std::vector<Limb>& v) noexcept;
  void normalize() noexcept;

  BigInt(bool negative, std::vector<Limb> limbs) noexcept
      : negative_(negative), limbs_(std::move(limbs)) {
    normalize();
  }

  bool negative_ = false;
  std::vector<Limb> limbs_;  // little-endian, no trailing zero limbs
};

}  // namespace congen

template <>
struct std::hash<congen::BigInt> {
  std::size_t operator()(const congen::BigInt& v) const noexcept { return v.hash(); }
};

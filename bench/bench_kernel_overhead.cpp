// bench_kernel_overhead.cpp — ablations on the kernel design choices the
// paper calls out (Section V.B/D):
//   * "the kernel is optimized to statefully resume its point of
//     suspension on a succeeding next(), incurring zero cost for
//     suspends" — suspend-resume vs bare iteration;
//   * "for optimization the iterator body is cached in a stack upon
//     method return, and then reused" — method-body cache on vs off;
//   * product/backtracking depth cost.
#include <benchmark/benchmark.h>

#include <cmath>

#include "congen.hpp"
#include "kernel/trace.hpp"
#include "runtime/governor.hpp"

namespace {

using namespace congen;

// --- suspend/resume cost ------------------------------------------------

void bareRange(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  for (auto _ : state) {
    auto g = RangeGen::create(Value::integer(1), Value::integer(n), Value::integer(1));
    std::int64_t count = 0;
    while (g->nextValue()) ++count;
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void governedRange(benchmark::State& state) {
  // The same bare range under an active ResourceGovernor with generous
  // limits: the per-element price of live fuel/heap accounting (batched
  // thread-local counters, INTERNALS §15). range_bare itself carries the
  // ungoverned cost — one relaxed flag load per charge point.
  governor::Limits limits;
  limits.maxFuel = std::uint64_t{1} << 60;
  limits.maxHeapBytes = std::uint64_t{1} << 40;
  governor::ScopedGovernor scope{governor::ResourceGovernor::create(limits)};
  const std::int64_t n = state.range(0);
  for (auto _ : state) {
    auto g = RangeGen::create(Value::integer(1), Value::integer(n), Value::integer(1));
    std::int64_t count = 0;
    while (g->nextValue()) ++count;
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void suspendedRange(benchmark::State& state) {
  // The same range routed through a procedure body with `suspend`: the
  // difference is the per-element price of the suspension machinery.
  const std::int64_t n = state.range(0);
  for (auto _ : state) {
    auto body = BodyRootGen::create(SuspendGen::create(
        RangeGen::create(Value::integer(1), Value::integer(n), Value::integer(1))));
    std::int64_t count = 0;
    while (body->nextValue()) ++count;
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void deeplyNestedSuspend(benchmark::State& state) {
  // Suspension propagating through `depth` nested every-loops.
  const std::int64_t depth = state.range(0);
  for (auto _ : state) {
    GenPtr inner = SuspendGen::create(
        RangeGen::create(Value::integer(1), Value::integer(1000), Value::integer(1)));
    for (std::int64_t d = 0; d < depth; ++d) {
      inner = LoopGen::every(ConstGen::create(Value::integer(1)), std::move(inner));
    }
    auto body = BodyRootGen::create(std::move(inner));
    std::int64_t count = 0;
    while (body->nextValue()) ++count;
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}

// --- method-body cache ----------------------------------------------------

ProcPtr makeCachedProc(MethodBodyCache* cache) {
  // def inc(x) { return x + 1; } in emitted form, optionally cached.
  return ProcImpl::create("inc", [cache](std::vector<Value> args) -> GenPtr {
    if (cache) {
      if (auto cached = cache->getFree("inc_m")) {
        static_cast<BodyRootGen&>(*cached).unpackArgs(args);
        return cached;
      }
    }
    auto x_r = CellVar::create();
    auto body = BodyRootGen::create(
        ReturnGen::create(makeBinaryOpGen("+", VarGen::create(x_r),
                                          ConstGen::create(Value::integer(1)))));
    body->setUnpackClosure([x_r](const std::vector<Value>& params) {
      x_r->set(params.empty() ? Value::null() : params[0]);
    });
    if (cache) body->setCache(cache, "inc_m");
    body->unpackArgs(args);
    return body;
  });
}

void invokeLoop(benchmark::State& state, ProcPtr proc) {
  for (auto _ : state) {
    std::int64_t sum = 0;
    for (int i = 0; i < 1000; ++i) {
      auto g = proc->invoke({Value::integer(i)});
      sum += g->nextValue()->smallInt();
      g->nextValue();  // drive to completion so a cached body parks itself
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}

void methodBodyCacheOff(benchmark::State& state) { invokeLoop(state, makeCachedProc(nullptr)); }

void methodBodyCacheOn(benchmark::State& state) {
  MethodBodyCache cache;
  invokeLoop(state, makeCachedProc(&cache));
}

// --- products & backtracking ------------------------------------------------

void productDepth(benchmark::State& state) {
  // (1 to k) & (1 to k) & ... — `depth` nested products over ranges sized
  // so the result count stays ~4096.
  const std::int64_t depth = state.range(0);
  const auto k = static_cast<std::int64_t>(std::pow(4096.0, 1.0 / static_cast<double>(depth)));
  for (auto _ : state) {
    GenPtr g = RangeGen::create(Value::integer(1), Value::integer(k), Value::integer(1));
    for (std::int64_t d = 1; d < depth; ++d) {
      g = ProductGen::create(
          std::move(g), RangeGen::create(Value::integer(1), Value::integer(k), Value::integer(1)));
    }
    std::int64_t count = 0;
    while (g->nextValue()) ++count;
    benchmark::DoNotOptimize(count);
  }
}

void goalDirectedSearch(benchmark::State& state) {
  // The Section II search: (1 to n) * isprime(4 to m), via the kernel.
  for (auto _ : state) {
    auto i = CellVar::create();
    auto j = CellVar::create();
    auto g = ProductGen::create(
        InGen::create(i, RangeGen::create(Value::integer(1), Value::integer(10), Value::integer(1))),
        ProductGen::create(
            InGen::create(j, RangeGen::create(Value::integer(4), Value::integer(200),
                                              Value::integer(1))),
            ProductGen::create(
                makeInvokeGen(ConstGen::create(Value::proc(builtins::lookup("isprime"))),
                              {VarGen::create(j)}),
                makeBinaryOpGen("*", VarGen::create(i), VarGen::create(j)))));
    std::int64_t count = 0;
    while (g->nextValue()) ++count;
    benchmark::DoNotOptimize(count);
  }
}

// --- bytecode VM legs -------------------------------------------------------

void vmGoalDirectedSearch(benchmark::State& state) {
  // The same Section II search as goalDirectedSearch, run through the
  // bytecode VM backend (compiled once, restarted per iteration).
  interp::Interpreter::Options options;
  options.backend = interp::Backend::kVm;
  interp::Interpreter interp(options);
  auto g = interp.eval("(1 to 10) * isprime(4 to 200)");
  for (auto _ : state) {
    g->restart();
    std::int64_t count = 0;
    while (g->nextValue()) ++count;
    benchmark::DoNotOptimize(count);
  }
}

void vmProcInvoke(benchmark::State& state) {
  // VM counterpart of the method-body-cache rows: 1000 calls of a
  // chunk-compiled procedure, bodies parked and rebound via BodyPool.
  interp::Interpreter::Options options;
  options.backend = interp::Backend::kVm;
  interp::Interpreter interp(options);
  interp.load("procedure bump(i)\n  return i + 1\nend");
  const ProcPtr proc = interp.global("bump")->proc();
  for (auto _ : state) {
    std::int64_t sum = 0;
    for (int i = 0; i < 1000; ++i) {
      auto g = proc->invoke({Value::integer(i)});
      sum += g->nextValue()->smallInt();
      g->nextValue();  // completion parks the body in the procedure pool
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}

void tracedRange(benchmark::State& state) {
  // The cost of monitoring: a counting hook on every next() (the paper's
  // future-work instrumentation). Compare with range_bare for the
  // enabled premium; range_bare itself carries the disabled check (one
  // relaxed atomic load).
  trace::installCounting();
  const std::int64_t n = state.range(0);
  for (auto _ : state) {
    auto g = RangeGen::create(Value::integer(1), Value::integer(n), Value::integer(1));
    std::int64_t count = 0;
    while (g->nextValue()) ++count;
    benchmark::DoNotOptimize(count);
  }
  trace::remove();
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

}  // namespace

BENCHMARK(bareRange)->Name("kernel/range_bare")->Arg(100000);
BENCHMARK(governedRange)->Name("kernel/range_bare_governed")->Arg(100000);
BENCHMARK(tracedRange)->Name("kernel/range_traced")->Arg(100000);
BENCHMARK(suspendedRange)->Name("kernel/range_through_suspend")->Arg(100000);
BENCHMARK(deeplyNestedSuspend)->Name("kernel/suspend_depth")->Arg(1)->Arg(4)->Arg(16);
BENCHMARK(methodBodyCacheOff)->Name("kernel/method_body_cache_off");
BENCHMARK(methodBodyCacheOn)->Name("kernel/method_body_cache_on");
BENCHMARK(productDepth)->Name("kernel/product_depth")->Arg(1)->Arg(2)->Arg(3)->Arg(4);
BENCHMARK(goalDirectedSearch)->Name("kernel/goal_directed_search");
BENCHMARK(vmGoalDirectedSearch)->Name("kernel/goal_directed_search_vm");
BENCHMARK(vmProcInvoke)->Name("kernel/proc_invoke_vm");

BENCHMARK_MAIN();

// bench_interp_vs_emitted.cpp — the prototyping-to-refinement story:
// the same goal-directed search run (a) through the interpreter (the
// interactive/Groovy path, re-parsed once, tree re-walked per cycle),
// (b) as hand-held kernel composition (what congenc emits), and (c) as
// plain native C++. The paper's claim for exploration is that the
// relative ordering of alternatives is preserved under refinement.
#include <benchmark/benchmark.h>

#include "congen.hpp"

namespace {

using namespace congen;

// (1 to 50) * isprime(4 to 100): a pure goal-directed search.

void interpreterPath(benchmark::State& state) {
  interp::Interpreter interp;
  auto gen = interp.eval("(1 to 50) * isprime(4 to 100)");
  for (auto _ : state) {
    std::int64_t count = 0;
    gen->restart();
    while (gen->next()) ++count;
    benchmark::DoNotOptimize(count);
  }
}

void interpreterVmPath(benchmark::State& state) {
  // Same search, bytecode VM backend: one chunk, inline-cached loads,
  // native cut-through for isprime.
  interp::Interpreter::Options options;
  options.backend = interp::Backend::kVm;
  interp::Interpreter interp(options);
  auto gen = interp.eval("(1 to 50) * isprime(4 to 100)");
  for (auto _ : state) {
    std::int64_t count = 0;
    gen->restart();
    while (gen->next()) ++count;
    benchmark::DoNotOptimize(count);
  }
}

void kernelPath(benchmark::State& state) {
  // The tree congenc would emit for the same expression.
  auto gen = makeBinaryOpGen(
      "*",
      RangeGen::create(Value::integer(1), Value::integer(50), Value::integer(1)),
      makeInvokeGen(ConstGen::create(Value::proc(builtins::lookup("isprime"))),
                    {RangeGen::create(Value::integer(4), Value::integer(100),
                                      Value::integer(1))}));
  for (auto _ : state) {
    std::int64_t count = 0;
    gen->restart();
    while (gen->next()) ++count;
    benchmark::DoNotOptimize(count);
  }
}

void nativePath(benchmark::State& state) {
  const auto isPrime = [](int n) {
    if (n < 2) return false;
    for (int d = 2; d * d <= n; ++d) {
      if (n % d == 0) return false;
    }
    return true;
  };
  for (auto _ : state) {
    std::int64_t count = 0;
    for (int i = 1; i <= 50; ++i) {
      for (int j = 4; j <= 100; ++j) {
        if (isPrime(j)) {
          benchmark::DoNotOptimize(static_cast<std::int64_t>(i) * j);
          ++count;
        }
      }
    }
    benchmark::DoNotOptimize(count);
  }
}

void interpreterCompileCost(benchmark::State& state) {
  // Parse + normalize + tree construction per evaluation — the price of
  // full interactivity.
  interp::Interpreter interp;
  for (auto _ : state) {
    benchmark::DoNotOptimize(interp.eval("(1 to 50) * isprime(4 to 100)"));
  }
}

void interpreterVmCompileCost(benchmark::State& state) {
  // Parse + normalize + chunk compilation per evaluation.
  interp::Interpreter::Options options;
  options.backend = interp::Backend::kVm;
  interp::Interpreter interp(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(interp.eval("(1 to 50) * isprime(4 to 100)"));
  }
}

}  // namespace

BENCHMARK(interpreterPath)->Name("refine/interpreter");
BENCHMARK(interpreterVmPath)->Name("refine/interpreter_vm");
BENCHMARK(kernelPath)->Name("refine/kernel_emitted");
BENCHMARK(nativePath)->Name("refine/native_cpp");
BENCHMARK(interpreterCompileCost)->Name("refine/interpreter_compile");
BENCHMARK(interpreterVmCompileCost)->Name("refine/interpreter_vm_compile");

BENCHMARK_MAIN();

// bench_bignum.cpp — the arbitrary-precision substrate that carries the
// benchmark arithmetic (the BigInteger stand-in).
#include <benchmark/benchmark.h>

#include <random>

#include "bignum/bigint.hpp"

namespace {

using congen::BigInt;

BigInt randomBig(std::mt19937_64& rng, int limbs) {
  BigInt v;
  for (int i = 0; i < limbs; ++i) {
    v = (v << 32) + BigInt{static_cast<std::int64_t>(rng() & 0xFFFFFFFF)};
  }
  return v;
}

void base36Parse(benchmark::State& state) {
  // The wordToNumber hot path of the Fig. 6 workload.
  for (auto _ : state) {
    benchmark::DoNotOptimize(BigInt::fromString("concurrentgenerators", 36));
  }
  state.SetItemsProcessed(state.iterations());
}

void decimalPrint(benchmark::State& state) {
  std::mt19937_64 rng(1);
  const BigInt v = randomBig(rng, static_cast<int>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(v.toString());
}

void multiply(benchmark::State& state) {
  std::mt19937_64 rng(2);
  const BigInt a = randomBig(rng, static_cast<int>(state.range(0)));
  const BigInt b = randomBig(rng, static_cast<int>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(a * b);
}

void divide(benchmark::State& state) {
  std::mt19937_64 rng(3);
  const BigInt a = randomBig(rng, static_cast<int>(state.range(0)));
  const BigInt b = randomBig(rng, static_cast<int>(state.range(0)) / 2 + 1);
  for (auto _ : state) benchmark::DoNotOptimize(a / b);
}

void integerSqrt(benchmark::State& state) {
  std::mt19937_64 rng(4);
  const BigInt v = randomBig(rng, static_cast<int>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(v.isqrt());
}

void millerRabin(benchmark::State& state) {
  // The heavyweight-hash prime component.
  const BigInt p = (BigInt{1} << 89) - BigInt{1};  // Mersenne prime
  for (auto _ : state) benchmark::DoNotOptimize(p.isProbablePrime());
}

void nextPrime(benchmark::State& state) {
  const BigInt start{1 << 18};
  for (auto _ : state) benchmark::DoNotOptimize(start.nextProbablePrime());
}

}  // namespace

BENCHMARK(base36Parse)->Name("bignum/base36_parse");
BENCHMARK(decimalPrint)->Name("bignum/decimal_print")->Arg(4)->Arg(32)->Arg(128);
BENCHMARK(multiply)->Name("bignum/multiply")->Arg(4)->Arg(32)->Arg(64)->Arg(256);
BENCHMARK(divide)->Name("bignum/divide")->Arg(4)->Arg(32)->Arg(128);
BENCHMARK(integerSqrt)->Name("bignum/isqrt")->Arg(4)->Arg(32);
BENCHMARK(millerRabin)->Name("bignum/miller_rabin_m89");
BENCHMARK(nextPrime)->Name("bignum/next_probable_prime");

BENCHMARK_MAIN();

#include "wordcount.hpp"

#include <cmath>
#include <random>
#include <thread>

namespace congen::wc {

// ---------------------------------------------------------------------
// corpus & compute nodes
// ---------------------------------------------------------------------

std::vector<std::string> makeCorpus(std::size_t lines, std::size_t wordsPerLine,
                                    std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  static constexpr char kAlphabet[] = "abcdefghijklmnopqrstuvwxyz0123456789";
  std::uniform_int_distribution<std::size_t> wordLen(3, 9);
  std::uniform_int_distribution<std::size_t> letter(0, sizeof(kAlphabet) - 2);
  std::vector<std::string> out;
  out.reserve(lines);
  for (std::size_t i = 0; i < lines; ++i) {
    std::string line;
    for (std::size_t w = 0; w < wordsPerLine; ++w) {
      if (w) line += ' ';
      const std::size_t len = wordLen(rng);
      for (std::size_t k = 0; k < len; ++k) line += kAlphabet[letter(rng)];
    }
    out.push_back(std::move(line));
  }
  return out;
}

BigInt wordToNumber(const std::string& word) { return BigInt::fromString(word, 36); }

double hashLight(const BigInt& n) { return std::sqrt(n.toDouble()); }

double hashHeavy(const BigInt& n) {
  // Deterministic heavy variant: transcendental churn plus a probable-
  // prime search seeded by the word's value — the Math/BigInteger
  // workload mix of Section VII, calibrated to ~80x hashLight.
  double x = hashLight(n);
  for (int i = 0; i < 16; ++i) {
    x = std::sin(x) + std::cos(x * 0.5) + std::atan(x) + 1.0000001;
  }
  const BigInt probe = (n % BigInt{1000003}) + BigInt{1 << 18};
  const BigInt prime = probe.nextProbablePrime();
  return hashLight(n) + std::fmod(x, 1.0) * 1e-9 + static_cast<double>(prime.isOdd() ? 0 : 1);
}

namespace {

double hashOf(const BigInt& n, const Params& p) { return p.heavy ? hashHeavy(n) : hashLight(n); }

std::vector<std::string> splitWords(const std::string& line) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : line) {
    if (c == ' ' || c == '\t') {
      if (!cur.empty()) out.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

}  // namespace

// ---------------------------------------------------------------------
// native suite
// ---------------------------------------------------------------------

double nativeSequential(const std::vector<std::string>& lines, const Params& p) {
  double total = 0;
  for (const auto& line : lines) {
    for (const auto& word : splitWords(line)) total += hashOf(wordToNumber(word), p);
  }
  return total;
}

double nativePipeline(const std::vector<std::string>& lines, const Params& p) {
  // Producer: split + wordToNumber. Consumer (this thread): hash + sum.
  BlockingQueue<BigInt> queue(p.queueCapacity);
  std::jthread producer([&] {
    for (const auto& line : lines) {
      for (const auto& word : splitWords(line)) {
        if (!queue.put(wordToNumber(word))) return;
      }
    }
    queue.close();
  });
  double total = 0;
  while (auto n = queue.take()) total += hashOf(*n, p);
  return total;
}

namespace {

/// Lines chunked into [begin, end) index ranges.
std::vector<std::pair<std::size_t, std::size_t>> chunkRanges(std::size_t n, std::size_t chunk) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  for (std::size_t begin = 0; begin < n; begin += chunk) {
    out.emplace_back(begin, std::min(n, begin + chunk));
  }
  return out;
}

}  // namespace

double nativeDataParallel(const std::vector<std::string>& lines, const Params& p) {
  const auto ranges = chunkRanges(lines.size(), p.chunkSize);
  std::vector<std::vector<double>> hashes(ranges.size());
  {
    std::vector<std::jthread> workers;
    workers.reserve(ranges.size());
    for (std::size_t i = 0; i < ranges.size(); ++i) {
      workers.emplace_back([&, i] {
        auto& out = hashes[i];
        for (std::size_t k = ranges[i].first; k < ranges[i].second; ++k) {
          for (const auto& word : splitWords(lines[k])) {
            out.push_back(hashOf(wordToNumber(word), p));
          }
        }
      });
    }
  }  // join
  // Serial reduction over the flattened mapped values.
  double total = 0;
  for (const auto& chunk : hashes) {
    for (const double h : chunk) total += h;
  }
  return total;
}

double nativeMapReduce(const std::vector<std::string>& lines, const Params& p) {
  const auto ranges = chunkRanges(lines.size(), p.chunkSize);
  std::vector<double> partial(ranges.size(), 0.0);
  {
    std::vector<std::jthread> workers;
    workers.reserve(ranges.size());
    for (std::size_t i = 0; i < ranges.size(); ++i) {
      workers.emplace_back([&, i] {
        double sum = 0;
        for (std::size_t k = ranges[i].first; k < ranges[i].second; ++k) {
          for (const auto& word : splitWords(lines[k])) sum += hashOf(wordToNumber(word), p);
        }
        partial[i] = sum;
      });
    }
  }  // join
  double total = 0;
  for (const double s : partial) total += s;
  return total;
}

// ---------------------------------------------------------------------
// junicon suite — the programs of Fig. 3 in the form congenc emits
// ---------------------------------------------------------------------

namespace {

/// Shared generator-function definitions of the WordCount "class".
struct JuniconWordCount {
  Value lines;       // host data: the static String[] lines of Fig. 3
  ProcPtr readLines;  // def readLines() { suspend ! lines; }
  ProcPtr splitWordsProc;  // def splitWords(line) { suspend ! split(line); }
  ProcPtr w2n;        // native wordToNumber
  ProcPtr hash;       // native hashNumber (light or heavy)
  ProcPtr hashWords;  // def hashWords(line) { suspend hash(w2n(!splitWords(line))); }
  ProcPtr sumHash;    // def sumHash(sofar, h) { return sofar + h; }

  JuniconWordCount(const std::vector<std::string>& corpus, const Params& p) {
    auto list = ListImpl::create();
    for (const auto& line : corpus) list->put(Value::string(line));
    lines = Value::list(list);

    const Value linesValue = lines;
    readLines = ProcImpl::create("readLines", [linesValue](std::vector<Value>) -> GenPtr {
      return BodyRootGen::create(
          SuspendGen::create(PromoteGen::create(ConstGen::create(linesValue))));
    });

    // def splitWords(line) { return split(line); } — the word list; call
    // sites promote it with ! (Fig. 3's `! splitWords(line)`).
    ProcPtr split = builtins::lookup("split");
    splitWordsProc = ProcImpl::create("splitWords", [split](std::vector<Value> args) -> GenPtr {
      const Value line = args.empty() ? Value::null() : args[0];
      return BodyRootGen::create(ReturnGen::create(
          makeInvokeGen(ConstGen::create(Value::proc(split)), {ConstGen::create(line)})));
    });

    w2n = builtins::makeNative("wordToNumber", [](std::vector<Value>& args) -> std::optional<Value> {
      return Value::integer(wordToNumber(args.at(0).requireString("word")));
    });
    const bool heavy = p.heavy;
    hash = builtins::makeNative("hashNumber", [heavy](std::vector<Value>& args) -> std::optional<Value> {
      const BigInt n = args.at(0).requireBigInt("hashNumber");
      return Value::real(heavy ? hashHeavy(n) : hashLight(n));
    });

    const ProcPtr splitWordsLocal = splitWordsProc;
    const ProcPtr w2nLocal = w2n;
    const ProcPtr hashLocal = hash;
    hashWords = ProcImpl::create("hashWords", [splitWordsLocal, w2nLocal,
                                               hashLocal](std::vector<Value> args) -> GenPtr {
      const Value line = args.empty() ? Value::null() : args[0];
      return BodyRootGen::create(SuspendGen::create(makeInvokeGen(
          ConstGen::create(Value::proc(hashLocal)),
          {makeInvokeGen(ConstGen::create(Value::proc(w2nLocal)),
                         {PromoteGen::create(makeInvokeGen(
                             ConstGen::create(Value::proc(splitWordsLocal)),
                             {ConstGen::create(line)}))})})));
    });

    sumHash = builtins::makeNative("sumHash", [](std::vector<Value>& args) -> std::optional<Value> {
      return ops::add(args.at(0), args.at(1));
    });
  }

  /// readLines() as an invocation generator.
  [[nodiscard]] GenPtr readLinesGen() const {
    return makeInvokeGen(ConstGen::create(Value::proc(readLines)), {});
  }
};

double drainReal(const GenPtr& gen) {
  double total = 0;
  while (auto v = gen->nextValue()) total += v->requireReal("hash");
  return total;
}

}  // namespace

double juniconSequential(const std::vector<std::string>& lines, const Params& p) {
  JuniconWordCount wcst(lines, p);
  // hashNumber( wordToNumber( ! splitWords( readLines() ) ) )
  auto gen = makeInvokeGen(
      ConstGen::create(Value::proc(wcst.hash)),
      {makeInvokeGen(ConstGen::create(Value::proc(wcst.w2n)),
                     {PromoteGen::create(makeInvokeGen(
                         ConstGen::create(Value::proc(wcst.splitWordsProc)),
                         {wcst.readLinesGen()}))})});
  return drainReal(gen);
}

double juniconPipeline(const std::vector<std::string>& lines, const Params& p) {
  JuniconWordCount wcst(lines, p);
  // hashNumber( ! ( |> wordToNumber( ! splitWords(readLines()) ) ) )
  auto pipeBody = [&wcst]() -> GenPtr {
    return makeInvokeGen(ConstGen::create(Value::proc(wcst.w2n)),
                         {PromoteGen::create(makeInvokeGen(
                             ConstGen::create(Value::proc(wcst.splitWordsProc)),
                             {wcst.readLinesGen()}))});
  };
  auto gen = makeInvokeGen(
      ConstGen::create(Value::proc(wcst.hash)),
      {PromoteGen::create(
          makePipeCreateGen(pipeBody, p.queueCapacity, ThreadPool::global(), p.pipeBatch))});
  return drainReal(gen);
}

double juniconDataParallel(const std::vector<std::string>& lines, const Params& p) {
  JuniconWordCount wcst(lines, p);
  DataParallel dp(static_cast<std::int64_t>(p.chunkSize), p.queueCapacity, ThreadPool::global(),
                  p.pipeBatch);
  // every (c = chunk(readLines)) |> hashWords(!c), then serial summation
  // over the flattened sequence — the "split out the reduction" variant.
  auto gen = dp.mapFlat(wcst.hashWords, [&wcst] { return wcst.readLinesGen(); });
  return drainReal(gen);
}

double juniconMapReduce(const std::vector<std::string>& lines, const Params& p) {
  JuniconWordCount wcst(lines, p);
  DataParallel dp(static_cast<std::int64_t>(p.chunkSize), p.queueCapacity, ThreadPool::global(),
                  p.pipeBatch);
  auto gen = dp.mapReduce(wcst.hashWords, [&wcst] { return wcst.readLinesGen(); }, wcst.sumHash,
                          Value::real(0.0));
  return drainReal(gen);  // sum of per-chunk reductions
}

double referenceHash(const std::vector<std::string>& lines, const Params& p) {
  return nativeSequential(lines, p);
}

}  // namespace congen::wc

// wordcount.hpp — the Section VII evaluation workload.
//
// Both benchmark suites of the paper compute the same thing: take lines
// of text, split each line into words, convert each word to a number
// (base 36, arbitrary precision), hash it (square root — or a roughly
// 80× heavier transcendental/primality variant), and sum the hashes.
//
// The *compute nodes* (wordToNumber / hashNumber) are shared native C++
// functions in both suites — exactly as in the paper, where they were
// Java methods invoked from both the embedded Unicon and the Java
// stream programs. What differs is the coordination:
//
//   native suite   — plain C++: a loop; a two-thread BlockingQueue
//                    pipeline; a thread-pool data-parallel map with
//                    serial reduction; a chunked map-reduce (the "Java
//                    parallel streams" analogue that normalizes Fig. 6).
//   junicon suite  — the same four shapes expressed with concurrent
//                    generators over the kernel (the form congenc emits).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "congen.hpp"

namespace congen::wc {

/// Deterministic corpus: `lines` lines of `wordsPerLine` pseudo-words.
std::vector<std::string> makeCorpus(std::size_t lines, std::size_t wordsPerLine,
                                    std::uint64_t seed = 42);

// -- shared compute nodes ---------------------------------------------
/// Base-36 decode (Fig. 3's wordToNumber — `new BigInteger(word, 36)`).
BigInt wordToNumber(const std::string& word);
/// Lightweight hash: sqrt of the numeric value (Fig. 3's hashNumber).
double hashLight(const BigInt& n);
/// Heavyweight hash: trigonometric and probabilistic-primality work,
/// roughly 80× the lightweight cost (Section VII).
double hashHeavy(const BigInt& n);

struct Params {
  bool heavy = false;
  std::size_t chunkSize = 64;       // map-reduce / data-parallel chunking
  std::size_t queueCapacity = 256;  // pipeline blocking-queue bound
  std::size_t pipeBatch = Pipe::kDefaultBatch;  // bulk hand-off cap (1 = per-element)
};

// -- native C++ suite ----------------------------------------------------
double nativeSequential(const std::vector<std::string>& lines, const Params& p);
/// Two threads connected by a BlockingQueue: producer does split +
/// wordToNumber, consumer hashes and sums.
double nativePipeline(const std::vector<std::string>& lines, const Params& p);
/// Chunked parallel map producing hash vectors; serial reduction
/// ("split out the reduction and effecting serialization").
double nativeDataParallel(const std::vector<std::string>& lines, const Params& p);
/// Chunked parallel map-reduce: each task folds its chunk, chunk sums
/// are combined — the parallel-streams analogue (Fig. 6 normalizer).
double nativeMapReduce(const std::vector<std::string>& lines, const Params& p);

// -- junicon (concurrent generators) suite --------------------------------
/// The same four programs expressed with goal-directed generators over
/// the kernel, in the shape congenc emits for Fig. 3's WordCount class.
double juniconSequential(const std::vector<std::string>& lines, const Params& p);
double juniconPipeline(const std::vector<std::string>& lines, const Params& p);
double juniconDataParallel(const std::vector<std::string>& lines, const Params& p);
double juniconMapReduce(const std::vector<std::string>& lines, const Params& p);

/// All eight variants agree on this reference value (tested).
double referenceHash(const std::vector<std::string>& lines, const Params& p);

}  // namespace congen::wc

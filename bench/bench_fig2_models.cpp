// bench_fig2_models.cpp — Figure 2: pipeline vs data-parallel models.
//
// Fig. 2 contrasts the "fixed-code" pipeline decomposition (one thread
// per stage, data flows between them) with the "fixed-data" parallel
// decomposition (one thread per chunk, all stages applied locally).
// This bench sweeps the per-element task weight and measures both
// decompositions expressed with concurrent generators, exposing where
// per-element queue traffic (pipeline) loses to chunked hand-off
// (data-parallel) and how the gap closes as compute dominates.
#include <benchmark/benchmark.h>

#include <cmath>

#include "congen.hpp"

namespace {

using namespace congen;

/// A tunable compute node: `weight` rounds of transcendental work.
ProcPtr makeWork(int weight) {
  return builtins::makeNative("work", [weight](std::vector<Value>& args) -> std::optional<Value> {
    double x = args.at(0).requireReal("work");
    for (int i = 0; i < weight; ++i) x = std::sin(x) + std::cos(x) + 1.0001;
    return Value::real(x);
  });
}

constexpr int kElements = 2000;

GenPtr sourceGen() {
  return makeToByGen(ConstGen::create(Value::integer(1)),
                     ConstGen::create(Value::integer(kElements)), nullptr);
}

void pipelineModel(benchmark::State& state) {
  const int weight = static_cast<int>(state.range(0));
  auto work = makeWork(weight);
  for (auto _ : state) {
    // f(! |> s): the whole stream flows through a pipe into one stage.
    Pipeline pipeline(/*pipeCapacity=*/256);
    pipeline.stage(work);
    double sink = 0;
    auto gen = pipeline.buildLastInline(sourceGen);
    while (auto v = gen->nextValue()) sink += v->requireReal("out");
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * kElements);
}

void dataParallelModel(benchmark::State& state) {
  const int weight = static_cast<int>(state.range(0));
  auto work = makeWork(weight);
  for (auto _ : state) {
    // every (c = chunk(s)) |> f(!c): chunk per thread.
    DataParallel dp(/*chunkSize=*/250, /*pipeCapacity=*/256);
    double sink = 0;
    auto gen = dp.mapFlat(work, sourceGen);
    while (auto v = gen->nextValue()) sink += v->requireReal("out");
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * kElements);
}

}  // namespace

BENCHMARK(pipelineModel)->Name("fig2/pipeline")->Arg(0)->Arg(8)->Arg(64)->Arg(512)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(dataParallelModel)->Name("fig2/data_parallel")->Arg(0)->Arg(8)->Arg(64)->Arg(512)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();

// bench_fig6_wordcount.cpp — Figure 6: performance of embedded
// concurrent generators when translated to C++ (the paper: to Java).
//
// Eight benchmarks per weight class: {Junicon, native} × {Sequential,
// Pipeline, DataParallel, MapReduce}. The paper normalizes execution
// time to the native parallel-streams map-reduce of each weight class
// and plots on a log scale; the fig6_report binary prints that table —
// this binary provides the statistically-disciplined raw measurements
// (google-benchmark ≈ the paper's JMH).
#include <benchmark/benchmark.h>

#include "wordcount.hpp"

namespace {

using namespace congen::wc;

const std::vector<std::string>& lightCorpus() {
  static const auto corpus = makeCorpus(/*lines=*/256, /*wordsPerLine=*/8);
  return corpus;
}

// The heavyweight hash is ~80x the light one; a smaller corpus keeps
// wall-clock sane while the per-element cost dominates, as in the paper.
const std::vector<std::string>& heavyCorpus() {
  static const auto corpus = makeCorpus(/*lines=*/24, /*wordsPerLine=*/6);
  return corpus;
}

Params params(bool heavy) {
  Params p;
  p.heavy = heavy;
  p.chunkSize = 16;
  p.queueCapacity = 256;
  return p;
}

// The pipeline with bulk hand-off disabled (batch cap 1): the pre-
// batching per-element protocol, kept as the baseline the CI bench
// smoke diffs against the batched fig6/junicon/Pipeline.
double juniconPipelineElement(const std::vector<std::string>& lines, const Params& p) {
  Params perElement = p;
  perElement.pipeBatch = 1;
  return congen::wc::juniconPipeline(lines, perElement);
}

template <double (*Variant)(const std::vector<std::string>&, const Params&)>
void runVariant(benchmark::State& state) {
  const bool heavy = state.range(0) != 0;
  const auto& corpus = heavy ? heavyCorpus() : lightCorpus();
  const Params p = params(heavy);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Variant(corpus, p));
  }
  state.SetLabel(heavy ? "heavyweight" : "lightweight");
}

}  // namespace

// Weight: 0 = lightweight, 1 = heavyweight — the two halves of Fig. 6.
#define FIG6_BENCH(name, fn)                                    \
  BENCHMARK_TEMPLATE(runVariant, fn)                            \
      ->Name(name)                                              \
      ->Arg(0)                                                  \
      ->Arg(1)                                                  \
      ->Unit(benchmark::kMillisecond)                           \
      ->MinTime(0.4)

FIG6_BENCH("fig6/native/Sequential", congen::wc::nativeSequential);
FIG6_BENCH("fig6/native/Pipeline", congen::wc::nativePipeline);
FIG6_BENCH("fig6/native/DataParallel", congen::wc::nativeDataParallel);
FIG6_BENCH("fig6/native/MapReduce", congen::wc::nativeMapReduce);
FIG6_BENCH("fig6/junicon/Sequential", congen::wc::juniconSequential);
FIG6_BENCH("fig6/junicon/Pipeline", congen::wc::juniconPipeline);
FIG6_BENCH("fig6/junicon/PipelineElement", juniconPipelineElement);
FIG6_BENCH("fig6/junicon/DataParallel", congen::wc::juniconDataParallel);
FIG6_BENCH("fig6/junicon/MapReduce", congen::wc::juniconMapReduce);

BENCHMARK_MAIN();

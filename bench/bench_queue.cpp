// bench_queue.cpp — the blocking-queue substrate and pipe throttling:
// capacity sweep for producer/consumer hand-off ("bounding the output
// queue buffer size can also be used to throttle a threaded
// co-expression", Section III.B).
#include <benchmark/benchmark.h>

#include <thread>

#include "congen.hpp"

namespace {

using namespace congen;

void queueHandoff(benchmark::State& state) {
  const auto capacity = static_cast<std::size_t>(state.range(0));
  constexpr int kItems = 20000;
  for (auto _ : state) {
    BlockingQueue<int> q(capacity);
    std::jthread producer([&q] {
      for (int i = 0; i < kItems; ++i) {
        if (!q.put(i)) return;
      }
      q.close();
    });
    std::int64_t sum = 0;
    while (auto v = q.take()) sum += *v;
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * kItems);
}

void queueHandoffBatched(benchmark::State& state) {
  // Bulk hand-off: the producer accumulates `batch` elements and
  // publishes them with one putAll; the consumer drains with takeUpTo.
  // batch == 1 degenerates to the per-element protocol and anchors the
  // element-vs-batch throughput comparison in the BENCH JSON.
  const auto capacity = static_cast<std::size_t>(state.range(0));
  const auto batch = static_cast<std::size_t>(state.range(1));
  constexpr int kItems = 20000;
  for (auto _ : state) {
    BlockingQueue<int> q(capacity);
    std::jthread producer([&q, batch] {
      std::vector<int> buf;
      buf.reserve(batch);
      for (int i = 0; i < kItems; ++i) {
        buf.push_back(i);
        if (buf.size() >= batch) {
          q.putAll(buf);
          if (!buf.empty()) return;  // closed under us — stop
        }
      }
      if (!buf.empty()) q.putAll(buf);
      q.close();
    });
    std::int64_t sum = 0;
    for (;;) {
      auto chunk = q.takeUpTo(batch);
      if (chunk.empty()) break;
      for (int v : chunk) sum += v;
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * kItems);
}

void queueUncontended(benchmark::State& state) {
  // Same-thread put/take: the raw mutex/CV cost without blocking.
  BlockingQueue<int> q(64);
  for (auto _ : state) {
    q.put(1);
    benchmark::DoNotOptimize(q.take());
  }
  state.SetItemsProcessed(state.iterations());
}

void pipeThroughput(benchmark::State& state) {
  // End-to-end pipe cost per element at different throttle bounds and
  // batch caps: range(0) = capacity, range(1) = batchCap (1 = the
  // per-element protocol, the pre-batching baseline).
  const auto capacity = static_cast<std::size_t>(state.range(0));
  const auto batchCap = static_cast<std::size_t>(state.range(1));
  constexpr std::int64_t kItems = 20000;
  for (auto _ : state) {
    auto pipe = Pipe::create(
        [] {
          return RangeGen::create(Value::integer(1), Value::integer(kItems), Value::integer(1));
        },
        capacity, ThreadPool::global(), batchCap);
    std::int64_t count = 0;
    while (pipe->activate()) ++count;
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * kItems);
}

void futureLatency(benchmark::State& state) {
  for (auto _ : state) {
    FutureValue future([] { return ConstGen::create(Value::integer(42)); });
    benchmark::DoNotOptimize(future.get());
  }
  state.SetItemsProcessed(state.iterations());
}

}  // namespace

BENCHMARK(queueHandoff)->Name("queue/handoff_capacity")->Arg(1)->Arg(4)->Arg(64)->Arg(1024)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(queueHandoffBatched)->Name("queue/handoff_batched")
    ->Args({1024, 1})->Args({1024, 8})->Args({1024, 64})->Args({1024, 256})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(queueUncontended)->Name("queue/uncontended");
BENCHMARK(pipeThroughput)->Name("queue/pipe_capacity")
    ->Args({4, 1})->Args({64, 1})->Args({1024, 1})
    ->Args({4, 4})->Args({64, 64})->Args({1024, 64})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(futureLatency)->Name("queue/future_roundtrip")->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();

// bench_queue.cpp — the pipe transport substrate and pipe throttling:
// capacity sweep for producer/consumer hand-off ("bounding the output
// queue buffer size can also be used to throttle a threaded
// co-expression", Section III.B).
//
// The hand-off benches run through Channel, so the default rows measure
// what a pipe actually uses — the lock-free SPSC ring — while the
// `_mutex` rows pin the BlockingQueue fallback for an apples-to-apples
// ablation of the transport swap. `queue/pipelines_scaling/N` runs N
// independent pipelines concurrently: with the sharded work-stealing
// pool and per-pipe rings there is no shared lock left between them, so
// items/s should hold near-flat as N grows.
#include <benchmark/benchmark.h>

#include <thread>
#include <vector>

#include "congen.hpp"

namespace {

using namespace congen;

void queueHandoffImpl(benchmark::State& state, ChannelTransport transport) {
  const auto capacity = static_cast<std::size_t>(state.range(0));
  constexpr int kItems = 20000;
  for (auto _ : state) {
    Channel<int> q(capacity, transport);
    std::jthread producer([&q] {
      for (int i = 0; i < kItems; ++i) {
        if (!q.put(i)) return;
      }
      q.close();
    });
    std::int64_t sum = 0;
    while (auto v = q.take()) sum += *v;
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * kItems);
}

void queueHandoff(benchmark::State& state) {
  queueHandoffImpl(state, ChannelTransport::kAuto);
}

void queueHandoffMutex(benchmark::State& state) {
  queueHandoffImpl(state, ChannelTransport::kMutex);
}

void queueHandoffBatchedImpl(benchmark::State& state, ChannelTransport transport) {
  // Bulk hand-off: the producer accumulates `batch` elements and
  // publishes them with one putAll; the consumer drains with takeUpTo.
  // batch == 1 runs the per-element protocol (scalar put/take) — the
  // same degenerate path Pipe selects at batchCap 1 — and anchors the
  // element-vs-batch throughput comparison in the bench JSON.
  const auto capacity = static_cast<std::size_t>(state.range(0));
  const auto batch = static_cast<std::size_t>(state.range(1));
  constexpr int kItems = 20000;
  for (auto _ : state) {
    Channel<int> q(capacity, transport);
    std::jthread producer([&q, batch] {
      if (batch == 1) {
        for (int i = 0; i < kItems; ++i) {
          if (!q.put(i)) return;
        }
        q.close();
        return;
      }
      std::vector<int> buf;
      buf.reserve(batch);
      for (int i = 0; i < kItems; ++i) {
        buf.push_back(i);
        if (buf.size() >= batch) {
          q.putAll(buf);
          if (!buf.empty()) return;  // closed under us — stop
        }
      }
      if (!buf.empty()) q.putAll(buf);
      q.close();
    });
    std::int64_t sum = 0;
    if (batch == 1) {
      while (auto v = q.take()) sum += *v;
    } else {
      for (;;) {
        auto chunk = q.takeUpTo(batch);
        if (chunk.empty()) break;
        for (int v : chunk) sum += v;
      }
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * kItems);
}

void queueHandoffBatched(benchmark::State& state) {
  queueHandoffBatchedImpl(state, ChannelTransport::kAuto);
}

void queueHandoffBatchedMutex(benchmark::State& state) {
  queueHandoffBatchedImpl(state, ChannelTransport::kMutex);
}

void queueUncontended(benchmark::State& state) {
  // Same-thread put/take on the ring: the raw acquire/release cost
  // without blocking (one release store + one acquire load per op).
  Channel<int> q(64);
  for (auto _ : state) {
    q.put(1);
    benchmark::DoNotOptimize(q.take());
  }
  state.SetItemsProcessed(state.iterations());
}

void queueUncontendedMutex(benchmark::State& state) {
  // The same loop on the mutex queue: lock + CV bookkeeping per op.
  Channel<int> q(64, ChannelTransport::kMutex);
  for (auto _ : state) {
    q.put(1);
    benchmark::DoNotOptimize(q.take());
  }
  state.SetItemsProcessed(state.iterations());
}

void pipeThroughput(benchmark::State& state) {
  // End-to-end pipe cost per element at different throttle bounds and
  // batch caps: range(0) = capacity, range(1) = batchCap (1 = the
  // per-element protocol, the pre-batching baseline).
  const auto capacity = static_cast<std::size_t>(state.range(0));
  const auto batchCap = static_cast<std::size_t>(state.range(1));
  constexpr std::int64_t kItems = 20000;
  for (auto _ : state) {
    auto pipe = Pipe::create(
        [] {
          return RangeGen::create(Value::integer(1), Value::integer(kItems), Value::integer(1));
        },
        capacity, ThreadPool::global(), batchCap);
    std::int64_t count = 0;
    while (pipe->activate()) ++count;
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * kItems);
}

void pipelinesScaling(benchmark::State& state) {
  // N independent pipelines, each a pipe producer on the shared pool
  // drained by its own consumer thread. The row family's items/s holding
  // near-flat as N grows is the whole point of the sharded pool + ring:
  // no cross-pipeline lock remains.
  const auto n = static_cast<int>(state.range(0));
  constexpr std::int64_t kItems = 20000;
  for (auto _ : state) {
    std::vector<std::jthread> consumers;
    consumers.reserve(static_cast<std::size_t>(n));
    for (int p = 0; p < n; ++p) {
      consumers.emplace_back([] {
        auto pipe = Pipe::create([] {
          return RangeGen::create(Value::integer(1), Value::integer(kItems), Value::integer(1));
        });
        std::int64_t count = 0;
        while (pipe->activate()) ++count;
        benchmark::DoNotOptimize(count);
      });
    }
    consumers.clear();  // join
  }
  state.SetItemsProcessed(state.iterations() * kItems * n);
}

void futureLatency(benchmark::State& state) {
  for (auto _ : state) {
    FutureValue future([] { return ConstGen::create(Value::integer(42)); });
    benchmark::DoNotOptimize(future.get());
  }
  state.SetItemsProcessed(state.iterations());
}

}  // namespace

BENCHMARK(queueHandoff)->Name("queue/handoff_capacity")->Arg(1)->Arg(4)->Arg(64)->Arg(1024)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(queueHandoffMutex)->Name("queue/handoff_capacity_mutex")->Arg(4)->Arg(1024)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(queueHandoffBatched)->Name("queue/handoff_batched")
    ->Args({1024, 1})->Args({1024, 8})->Args({1024, 64})->Args({1024, 256})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(queueHandoffBatchedMutex)->Name("queue/handoff_batched_mutex")
    ->Args({1024, 1})->Args({1024, 64})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(queueUncontended)->Name("queue/uncontended");
BENCHMARK(queueUncontendedMutex)->Name("queue/uncontended_mutex");
BENCHMARK(pipeThroughput)->Name("queue/pipe_capacity")
    ->Args({4, 1})->Args({64, 1})->Args({1024, 1})
    ->Args({4, 4})->Args({64, 64})->Args({1024, 64})
    ->Unit(benchmark::kMillisecond);
// UseRealTime: the bench thread only spawns and joins the consumers, so
// its CPU clock would wildly inflate items/s; wall time is the metric.
BENCHMARK(pipelinesScaling)->Name("queue/pipelines_scaling")->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(futureLatency)->Name("queue/future_roundtrip")->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();

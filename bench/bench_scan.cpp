// bench_scan.cpp — string scanning throughput: the scanning environment
// (tab/upto/many over &subject) versus equivalent manual splitting, at
// the kernel level and through the interpreter. Scanning is the
// workload Section II motivates ("the forte of Icon and Unicon"); this
// quantifies what the dynamic machinery costs over hand-written C++.
#include <benchmark/benchmark.h>

#include <sstream>

#include "congen.hpp"

namespace {

using namespace congen;

std::string makeText(int words) {
  std::ostringstream os;
  for (int i = 0; i < words; ++i) {
    if (i) os << (i % 7 == 0 ? ",  " : ",");
    os << "word" << i;
  }
  return os.str();
}

void scanSplitInterp(benchmark::State& state) {
  interp::Interpreter interp;
  interp.load(R"(
    def fields(s) {
      local out;
      out := [];
      s ? while not pos(0) do {
        put(out, tab(upto(",") | 0));
        move(1);
      };
      return out;
    }
  )");
  interp.defineGlobal("text", Value::string(makeText(200)));
  auto gen = interp.eval("fields(text)");
  for (auto _ : state) {
    gen->restart();
    auto v = gen->nextValue();
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations() * 200);
}

void scanSplitKernel(benchmark::State& state) {
  // The same split composed directly against the kernel (emitted form).
  const std::string text = makeText(200);
  for (auto _ : state) {
    auto body = LoopGen::whileDo(
        NotGen::create(makeInvokeGen(ConstGen::create(Value::proc(builtins::lookup("pos"))),
                                     {ConstGen::create(Value::integer(0))})),
        SeqGen::create(
            [&] {
              std::vector<GenPtr> stmts;
              stmts.push_back(AltGen::create(
                  makeTabGen(makeInvokeGen(
                      ConstGen::create(Value::proc(builtins::lookup("upto"))),
                      {ConstGen::create(Value::string(","))})),
                  makeTabGen(ConstGen::create(Value::integer(0)))));
              stmts.push_back(makeMoveGen(ConstGen::create(Value::integer(1))));
              return stmts;
            }(),
            SeqGen::Mode::Body));
    auto scan = ScanGen::create(ConstGen::create(Value::string(text)), std::move(body));
    benchmark::DoNotOptimize(scan->nextValue());
  }
  state.SetItemsProcessed(state.iterations() * 200);
}

void manualSplitNative(benchmark::State& state) {
  const std::string text = makeText(200);
  for (auto _ : state) {
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= text.size()) {
      const auto comma = text.find(',', start);
      if (comma == std::string::npos) {
        out.push_back(text.substr(start));
        break;
      }
      out.push_back(text.substr(start, comma - start));
      start = comma + 1;
    }
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * 200);
}

void tabMoveStep(benchmark::State& state) {
  // Raw cost of one reversible tab step inside an installed environment.
  ScanEnv::State s;
  s.subject = Value::string(makeText(50));
  ScanEnv::push(s);
  for (auto _ : state) {
    ScanEnv::current().pos = 1;
    auto g = makeMoveGen(ConstGen::create(Value::integer(1)));
    benchmark::DoNotOptimize(g->nextValue());
  }
  ScanEnv::pop();
  state.SetItemsProcessed(state.iterations());
}

}  // namespace

BENCHMARK(scanSplitInterp)->Name("scan/split_interpreter")->Unit(benchmark::kMicrosecond);
BENCHMARK(scanSplitKernel)->Name("scan/split_kernel")->Unit(benchmark::kMicrosecond);
BENCHMARK(manualSplitNative)->Name("scan/split_native")->Unit(benchmark::kMicrosecond);
BENCHMARK(tabMoveStep)->Name("scan/tab_step");

BENCHMARK_MAIN();

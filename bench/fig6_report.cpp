// fig6_report.cpp — regenerates the rows of Figure 6.
//
// Prints normalized execution time (log-friendly) for the eight program
// variants in each weight class, normalized to the native MapReduce
// (the paper's "Java parallel stream benchmark") of that class, with
// warmup + measurement iterations in the JMH style. The shape to
// compare against the paper:
//   * Junicon variants are slower than native, but well under 10x on
//     the lightweight set;
//   * on the heavyweight set the Junicon overhead collapses toward 1x
//     ("the performance impact ... is negligible");
//   * relative ordering among the four strategies is consistent between
//     the Junicon and native suites.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "wordcount.hpp"

namespace {

using namespace congen::wc;
using Variant = double (*)(const std::vector<std::string>&, const Params&);

struct Row {
  const char* suite;
  const char* name;
  Variant fn;
};

constexpr Row kRows[] = {
    {"junicon", "Sequential", juniconSequential},
    {"junicon", "Pipeline", juniconPipeline},
    {"junicon", "DataParallel", juniconDataParallel},
    {"junicon", "MapReduce", juniconMapReduce},
    {"native", "Sequential", nativeSequential},
    {"native", "Pipeline", nativePipeline},
    {"native", "DataParallel", nativeDataParallel},
    {"native", "MapReduce", nativeMapReduce},
};

double timeOnce(Variant fn, const std::vector<std::string>& corpus, const Params& p) {
  const auto start = std::chrono::steady_clock::now();
  const double result = fn(corpus, p);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  if (result <= 0) std::fprintf(stderr, "suspicious zero hash\n");
  return seconds;
}

/// Median of `iters` measurements after `warmup` discarded runs.
double measure(Variant fn, const std::vector<std::string>& corpus, const Params& p, int warmup,
               int iters) {
  for (int i = 0; i < warmup; ++i) timeOnce(fn, corpus, p);
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(iters));
  for (int i = 0; i < iters; ++i) samples.push_back(timeOnce(fn, corpus, p));
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

void report(bool heavy) {
  const auto corpus = heavy ? makeCorpus(24, 6) : makeCorpus(256, 8);
  Params p;
  p.heavy = heavy;
  p.chunkSize = 16;
  p.queueCapacity = 256;
  const int warmup = heavy ? 2 : 5;
  const int iters = heavy ? 5 : 11;

  double times[std::size(kRows)];
  for (std::size_t i = 0; i < std::size(kRows); ++i) {
    times[i] = measure(kRows[i].fn, corpus, p, warmup, iters);
  }
  // Normalize to native MapReduce — the last row.
  const double baseline = times[std::size(kRows) - 1];

  std::printf("\n=== Figure 6 (%s): normalized execution time ===\n",
              heavy ? "heavyweight" : "lightweight");
  std::printf("(baseline = native MapReduce = %.3f ms; paper normalizes to Java parallel streams)\n",
              baseline * 1e3);
  std::printf("%-10s %-14s %12s %12s\n", "suite", "variant", "time(ms)", "normalized");
  for (std::size_t i = 0; i < std::size(kRows); ++i) {
    std::printf("%-10s %-14s %12.3f %12.2f\n", kRows[i].suite, kRows[i].name, times[i] * 1e3,
                times[i] / baseline);
  }

  // The headline ratio of Section VII: junicon overhead vs same-shape native.
  std::printf("-- junicon/native ratios: ");
  for (int v = 0; v < 4; ++v) {
    std::printf("%s=%.2fx ", kRows[v].name, times[v] / times[v + 4]);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  std::printf("Reproduction of Fig. 6, Mills & Jeffery, IPDPS HIPS 2016.\n");
  std::printf("Note: this container is single-core; parallel variants measure\n");
  std::printf("coordination overhead rather than speedup (see EXPERIMENTS.md).\n");
  report(/*heavy=*/false);
  if (!quick) report(/*heavy=*/true);
  return 0;
}

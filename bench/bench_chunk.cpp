// bench_chunk.cpp — chunk-size ablation for the map-reduce of Fig. 4:
// the DataParallel(1000) of Fig. 3 is a tunable; this sweeps it for the
// generator-based map-reduce and data-parallel decompositions.
#include <benchmark/benchmark.h>

#include "wordcount.hpp"

namespace {

using namespace congen::wc;

const std::vector<std::string>& corpus() {
  static const auto c = makeCorpus(/*lines=*/512, /*wordsPerLine=*/6);
  return c;
}

void juniconMapReduceChunk(benchmark::State& state) {
  Params p;
  p.chunkSize = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) benchmark::DoNotOptimize(juniconMapReduce(corpus(), p));
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(corpus().size()));
}

void juniconDataParallelChunk(benchmark::State& state) {
  Params p;
  p.chunkSize = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) benchmark::DoNotOptimize(juniconDataParallel(corpus(), p));
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(corpus().size()));
}

void nativeMapReduceChunk(benchmark::State& state) {
  Params p;
  p.chunkSize = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) benchmark::DoNotOptimize(nativeMapReduce(corpus(), p));
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(corpus().size()));
}

}  // namespace

BENCHMARK(juniconMapReduceChunk)
    ->Name("chunk/junicon_mapreduce")
    ->Arg(1)->Arg(8)->Arg(32)->Arg(128)->Arg(512)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(juniconDataParallelChunk)
    ->Name("chunk/junicon_dataparallel")
    ->Arg(1)->Arg(8)->Arg(32)->Arg(128)->Arg(512)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(nativeMapReduceChunk)
    ->Name("chunk/native_mapreduce")
    ->Arg(1)->Arg(8)->Arg(32)->Arg(128)->Arg(512)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();

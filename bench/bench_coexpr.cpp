// bench_coexpr.cpp — co-expression ablations: creation, activation,
// refresh, and the cost of environment shadowing (the copy that Section
// III.A's |<> performs at creation and every ^ refresh).
#include <benchmark/benchmark.h>

#include "congen.hpp"

namespace {

using namespace congen;

void coexprCreate(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(CoExpression::create([] {
      return RangeGen::create(Value::integer(1), Value::integer(10), Value::integer(1));
    }));
  }
  state.SetItemsProcessed(state.iterations());
}

void coexprActivate(benchmark::State& state) {
  auto c = CoExpression::create([] {
    return RangeGen::create(Value::integer(1), Value::integer(INT64_C(1) << 30), Value::integer(1));
  });
  for (auto _ : state) benchmark::DoNotOptimize(c->activate());
  state.SetItemsProcessed(state.iterations());
}

void coexprRefresh(benchmark::State& state) {
  auto c = CoExpression::create([] {
    return RangeGen::create(Value::integer(1), Value::integer(10), Value::integer(1));
  });
  for (auto _ : state) benchmark::DoNotOptimize(c->refreshed());
  state.SetItemsProcessed(state.iterations());
}

void shadowedCreate(benchmark::State& state) {
  // |<> with `width` referenced locals: each creation copies them all.
  const auto width = static_cast<std::size_t>(state.range(0));
  std::vector<VarPtr> locals;
  for (std::size_t i = 0; i < width; ++i) {
    locals.push_back(CellVar::create(Value::integer(static_cast<std::int64_t>(i))));
  }
  auto factory = shadowEnv(locals, [](const std::vector<VarPtr>& copies) {
    return VarGen::create(copies[0]);
  });
  for (auto _ : state) benchmark::DoNotOptimize(CoExpression::create(factory));
  state.SetItemsProcessed(state.iterations());
}

void interleave(benchmark::State& state) {
  // Alternating activation of two co-expressions — coroutine switching.
  auto a = CoExpression::create([] {
    return RangeGen::create(Value::integer(1), Value::integer(INT64_C(1) << 30), Value::integer(2));
  });
  auto b = CoExpression::create([] {
    return RangeGen::create(Value::integer(2), Value::integer(INT64_C(1) << 30), Value::integer(2));
  });
  for (auto _ : state) {
    benchmark::DoNotOptimize(a->activate());
    benchmark::DoNotOptimize(b->activate());
  }
  state.SetItemsProcessed(state.iterations() * 2);
}

void pipeVsCoexpr(benchmark::State& state) {
  // The thread premium: the same 1000-element stream consumed through a
  // plain co-expression vs a pipe.
  const bool usePipe = state.range(0) != 0;
  for (auto _ : state) {
    GenFactory body = [] {
      return RangeGen::create(Value::integer(1), Value::integer(1000), Value::integer(1));
    };
    CoExprPtr c = usePipe ? CoExprPtr(Pipe::create(body, 128)) : CoExpression::create(body);
    std::int64_t count = 0;
    while (c->activate()) ++count;
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
  state.SetLabel(usePipe ? "pipe" : "coexpr");
}

}  // namespace

BENCHMARK(coexprCreate)->Name("coexpr/create");
BENCHMARK(coexprActivate)->Name("coexpr/activate");
BENCHMARK(coexprRefresh)->Name("coexpr/refresh");
BENCHMARK(shadowedCreate)->Name("coexpr/shadowed_create")->Arg(1)->Arg(4)->Arg(16)->Arg(64);
BENCHMARK(interleave)->Name("coexpr/interleave");
BENCHMARK(pipeVsCoexpr)->Name("coexpr/stream_1000")->Arg(0)->Arg(1)
    ->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();

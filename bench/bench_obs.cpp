// bench_obs.cpp — price of the observability layer. obs/disabled_* pin
// the one-relaxed-load contract on the instrumented hot paths (queue
// hand-off and kernel iteration with metrics off must track the
// uninstrumented baselines in bench_queue / bench_kernel_overhead);
// obs/enabled_* and obs/registry_* size the cost when metrics are on so
// "always-on in production" is a decision with a number attached.
#include <benchmark/benchmark.h>

#include <thread>
#include <vector>

#include "congen.hpp"
#include "obs/metrics.hpp"
#include "obs/runtime_stats.hpp"

namespace {

using namespace congen;

// RAII so a benchmark can't leak the process-wide flag into the next
// registered benchmark (registration order is alphabetical, not file
// order).
struct MetricsOn {
  MetricsOn() { obs::enableMetrics(); }
  ~MetricsOn() { obs::disableMetrics(); }
};

struct MetricsOff {
  MetricsOff() { obs::disableMetrics(); }
};

void queueHandoffInstrumented(benchmark::State& state) {
  constexpr int kItems = 20000;
  constexpr std::size_t kCapacity = 1024;
  for (auto _ : state) {
    BlockingQueue<int> q(kCapacity);
    std::jthread producer([&q] {
      for (int i = 0; i < kItems; ++i) {
        if (!q.put(i)) return;
      }
      q.close();
    });
    std::int64_t sum = 0;
    while (auto v = q.take()) sum += *v;
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * kItems);
}

void obsDisabledQueueHandoff(benchmark::State& state) {
  MetricsOff off;
  queueHandoffInstrumented(state);
}
BENCHMARK(obsDisabledQueueHandoff)->Name("obs/disabled_queue_handoff")->UseRealTime();

void obsEnabledQueueHandoff(benchmark::State& state) {
  MetricsOn on;
  queueHandoffInstrumented(state);
}
BENCHMARK(obsEnabledQueueHandoff)->Name("obs/enabled_queue_handoff")->UseRealTime();

void kernelIteration(benchmark::State& state) {
  // !(1 to N): one arena allocation + N frame-free activations, the
  // same shape bench_kernel_overhead gates on.
  constexpr std::int64_t kLimit = 10000;
  for (auto _ : state) {
    auto g = RangeGen::create(Value::integer(1), Value::integer(kLimit), Value::integer(1));
    std::int64_t count = 0;
    while (g->nextValue()) ++count;
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * kLimit);
}

void obsDisabledKernelIteration(benchmark::State& state) {
  MetricsOff off;
  kernelIteration(state);
}
BENCHMARK(obsDisabledKernelIteration)->Name("obs/disabled_kernel_iteration");

void obsEnabledKernelIteration(benchmark::State& state) {
  MetricsOn on;
  kernelIteration(state);
}
BENCHMARK(obsEnabledKernelIteration)->Name("obs/enabled_kernel_iteration");

void obsRegistryCounterAdd(benchmark::State& state) {
  MetricsOn on;
  auto& c = obs::Registry::global().counter("bench.obs.counter");
  for (auto _ : state) c.add(1);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(obsRegistryCounterAdd)->Name("obs/registry_counter_add")->Threads(1)->Threads(4);

void obsRegistryHistogramRecord(benchmark::State& state) {
  MetricsOn on;
  auto& h = obs::Registry::global().histogram(
      "bench.obs.histogram", {1, 8, 64, 512, 4096, 32768});
  std::uint64_t v = 0;
  for (auto _ : state) h.record(v++ & 0xffff);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(obsRegistryHistogramRecord)
    ->Name("obs/registry_histogram_record")
    ->Threads(1)
    ->Threads(4);

void obsSnapshot(benchmark::State& state) {
  MetricsOn on;
  // Touch every runtime stat handle so the snapshot walks the full
  // production instrument set, not an empty registry.
  (void)obs::QueueStats::get();
  (void)obs::PipeStats::get();
  (void)obs::PoolStats::get();
  (void)obs::ParStats::get();
  (void)obs::KernelStats::get();
  for (auto _ : state) {
    auto snap = obs::Registry::global().snapshot();
    benchmark::DoNotOptimize(snap);
  }
}
BENCHMARK(obsSnapshot)->Name("obs/snapshot_full_registry");

}  // namespace

BENCHMARK_MAIN();

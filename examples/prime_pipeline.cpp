// prime_pipeline.cpp — task parallelism in the calculus of Section III.
//
// Reproduces the paper's pipeline expression
//
//     x * ! |> factorial(! |> sqrt(y))
//
// "for given generated sequences x and y, spawn off their factorial and
// square-root computations in parallel, effecting explicit task
// parallelism in the form of a pipeline" — here with an integer isqrt
// stage so the factorials stay exact, all via the embedded language.
#include <iostream>

#include "congen.hpp"

using namespace congen;

int main() {
  interp::Interpreter interp;

  // Generator functions for the stages.
  interp.load(R"(
    def factorial(n) {
      local acc, i;
      acc := 1;
      every i := 1 to n do acc := acc * i;
      return acc;
    }
  )");

  std::cout << "-- x * ! |> factorial(! |> isqrt(y)) --\n";
  // y generates 16, 25, 36; isqrt stage (thread 1) yields 4, 5, 6;
  // factorial stage (thread 2) yields 24, 120, 720; the main thread
  // multiplies by x in { 1, 10 } — the full cross product, in parallel.
  auto gen = interp.eval("(1 | 10) * ! |> factorial( ! |> isqrt(16 | 25 | 36) )");
  for (const Value& v : iterate(gen)) std::cout << "  " << v.toDisplayString() << "\n";

  std::cout << "-- throttled pipe: capacity bounds the producer --\n";
  // A bounded pipe only runs ahead of its consumer by the queue size.
  interp::Interpreter throttled(interp::Interpreter::Options{.pipeCapacity = 2});
  auto slow = throttled.eval("! |> (1 to 6)");
  for (const Value& v : iterate(slow)) std::cout << "  " << v.toDisplayString() << "\n";

  std::cout << "-- a pipe of big factorials --\n";
  interp.load(R"(
    def bigfactorials() { suspend factorial(20 | 30 | 40); }
  )");
  for (const Value& v : iterate(interp.eval("! |> bigfactorials()"))) {
    std::cout << "  " << v.toDisplayString() << "\n";
  }
  return 0;
}

// logscan.cpp — goal-directed string processing with a parallel stage.
//
// String scanning is "the forte of Icon and Unicon" (Section II). This
// example mines a synthetic log with goal-directed search: find() is a
// generator of match positions, comparisons filter by failing, and a
// pipe (|>) moves the scan off the main thread while the host code
// aggregates — the high-level-coordination role the paper envisions for
// embedded generators.
#include <iostream>
#include <sstream>

#include "congen.hpp"

using namespace congen;

namespace {

Value makeLog() {
  auto log = ListImpl::create();
  const char* kLevels[] = {"INFO", "WARN", "ERROR"};
  for (int i = 0; i < 60; ++i) {
    std::ostringstream line;
    line << "t=" << 100 + i * 7 << " [" << kLevels[(i * i + i / 3) % 3] << "] service=s"
         << i % 4 << " latency=" << (i * 37) % 240;
    log->put(Value::string(line.str()));
  }
  return Value::list(log);
}

}  // namespace

int main() {
  interp::Interpreter interp;
  interp.defineGlobal("log", makeLog());

  // A generator function that scans one line: succeeds (producing the
  // line) only for ERROR entries — isError cuts down to find(), which
  // fails when the needle is absent.
  interp.load(R"(
    def isError(line) { return find("[ERROR]", line) & line; }
    def errors() { suspend isError(!log); }
  )");

  std::cout << "-- ERROR lines (goal-directed filter) --\n";
  for (const Value& v : iterate(interp.eval("errors()"))) {
    std::cout << "  " << v.toDisplayString() << "\n";
  }

  // Parse latencies with a pipe: the scan runs in another thread while
  // the host computes statistics from the streamed values.
  interp.load(R"(
    def latencyOf(line) {
      local ws, w;
      ws := split(line);
      every w := !ws do if find("latency=", w) == 1 then
        return integer(split(w, "=")[2]);
      fail;
    }
    def latencies() { suspend latencyOf(!log); }
  )");

  std::cout << "-- latency stats (scan in a pipe, host aggregates) --\n";
  double sum = 0, count = 0, worst = -1;
  for (const Value& v : iterate(interp.eval("! |> latencies()"))) {
    const double latency = v.requireReal("latency");
    sum += latency;
    count += 1;
    if (latency > worst) worst = latency;
  }
  std::cout << "  samples: " << count << "\n  mean:    " << sum / count
            << "\n  worst:   " << worst << "\n";

  // Goal-directed join: service names that ever logged latency >= 200.
  std::cout << "-- services with latency >= 200 --\n";
  interp.load(R"(
    def slowServices() {
      local line, seen, ws, w, svc;
      seen := set();
      every line := !log do {
        if (latencyOf(line) >= 200) then {
          every w := !split(line) do if find("service=", w) == 1 then {
            svc := split(w, "=")[2];
            if not member(seen, svc) then { insert(seen, svc); suspend svc; }
          }
        }
      }
    }
  )");
  for (const Value& v : iterate(interp.eval("slowServices()"))) {
    std::cout << "  " << v.toDisplayString() << "\n";
  }
  return 0;
}

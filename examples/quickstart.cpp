// quickstart.cpp — a tour of the concurrent-generators public API.
//
// Shows the three ways to use the library:
//  1. the kernel API: compose goal-directed generators directly in C++;
//  2. the calculus of Fig. 1: co-expressions (<>, @, ^) and pipes (|>);
//  3. the embedded language: evaluate Junicon text with the interpreter.
#include <cassert>
#include <iostream>

#include "congen.hpp"

using namespace congen;

namespace {

void kernelApi() {
  std::cout << "-- kernel API: goal-directed products --\n";
  // (1 to 3) * (1 to 3), searching for products 6 < p — comparisons fail
  // rather than return false (and succeed with their right operand), so
  // the search backtracks through the cross product of the operands.
  auto gen = makeBinaryOpGen(
      "<",
      ConstGen::create(Value::integer(6)),
      makeBinaryOpGen("*", makeToByGen(ConstGen::create(Value::integer(1)),
                                       ConstGen::create(Value::integer(3)), nullptr),
                      makeToByGen(ConstGen::create(Value::integer(1)),
                                  ConstGen::create(Value::integer(3)), nullptr)));
  for (const Value& v : iterate(gen)) std::cout << "  product over 6: " << v.image() << "\n";
}

void coExpressions() {
  std::cout << "-- co-expressions: explicit stepping (@) and refresh (^) --\n";
  // A co-expression over an infinite sequence; @ steps one result.
  auto squares = CoExpression::create([] {
    // i := seq(1) & i*i, built directly against the kernel
    auto i = CellVar::create();
    auto seq = builtins::lookup("seq")->invoke({Value::integer(1)});
    return makeBinaryOpGen("*", InGen::create(i, std::move(seq)), VarGen::create(i));
  });
  for (int n = 0; n < 5; ++n) std::cout << "  @squares = " << squares->activate()->image() << "\n";
  auto fresh = squares->refreshed();  // ^squares: restart from the beginning
  std::cout << "  @(^squares) = " << fresh->activate()->image() << "\n";
}

void pipes() {
  std::cout << "-- pipes: multithreaded generator proxies (|>) --\n";
  // |> isprime(2 to 50): the primality search runs in another thread,
  // results stream through a bounded blocking queue.
  auto pipe = Pipe::create(
      [] {
        return makeInvokeGen(
            ConstGen::create(Value::proc(builtins::lookup("isprime"))),
            {makeToByGen(ConstGen::create(Value::integer(2)),
                         ConstGen::create(Value::integer(50)), nullptr)});
      },
      /*capacity=*/8);
  std::cout << "  primes:";
  while (auto v = pipe->activate()) std::cout << " " << v->toDisplayString();
  std::cout << "\n";
}

void pipelineAndMapReduce() {
  std::cout << "-- higher-order: Pipeline and DataParallel (Figs. 2 and 4) --\n";
  auto doubler = builtins::makeNative("double", [](std::vector<Value>& args) {
    return ops::mul(args.at(0), Value::integer(2));
  });
  auto inc = builtins::makeNative("inc", [](std::vector<Value>& args) {
    return ops::add(args.at(0), Value::integer(1));
  });
  auto source = [] {
    return makeToByGen(ConstGen::create(Value::integer(1)), ConstGen::create(Value::integer(5)),
                       nullptr);
  };

  Pipeline pipeline(/*pipeCapacity=*/16);
  pipeline.stage(doubler).stage(inc);
  std::cout << "  pipeline (x*2+1):";
  for (const Value& v : iterate(pipeline.build(source))) std::cout << " " << v.toDisplayString();
  std::cout << "\n";

  auto add = builtins::makeNative("add", [](std::vector<Value>& args) {
    return ops::add(args.at(0), args.at(1));
  });
  DataParallel dp(/*chunkSize=*/2);
  std::cout << "  map-reduce chunk sums (x*2, chunks of 2):";
  for (const Value& v : iterate(dp.mapReduce(doubler, source, add, Value::integer(0)))) {
    std::cout << " " << v.toDisplayString();
  }
  std::cout << "\n";
}

void embeddedLanguage() {
  std::cout << "-- embedded Junicon via the interpreter --\n";
  interp::Interpreter interp;
  interp.load("def fib() { local a, b; a := 0; b := 1;"
              "  repeat { suspend a; a :=: b; b := a + b; } }");
  std::cout << "  fib \\ 10:";
  for (const Value& v : iterate(interp.eval("fib() \\ 10"))) {
    std::cout << " " << v.toDisplayString();
  }
  std::cout << "\n  (1 to 2) * isprime(4 to 7):";
  for (const Value& v : iterate(interp.eval("(1 to 2) * isprime(4 to 7)"))) {
    std::cout << " " << v.toDisplayString();  // the Section II example: 5 7 10 14
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  kernelApi();
  coExpressions();
  pipes();
  pipelineAndMapReduce();
  embeddedLanguage();
  return 0;
}

file(REMOVE_RECURSE
  "CMakeFiles/logstats_embedded.dir/logstats_embedded.gen.cpp.o"
  "CMakeFiles/logstats_embedded.dir/logstats_embedded.gen.cpp.o.d"
  "logstats_embedded"
  "logstats_embedded.gen.cpp"
  "logstats_embedded.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logstats_embedded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for logstats_embedded.
# This may be replaced when dependencies are built.

# Empty dependencies file for wordcount_embedded.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/wordcount_embedded.dir/wordcount_embedded.gen.cpp.o"
  "CMakeFiles/wordcount_embedded.dir/wordcount_embedded.gen.cpp.o.d"
  "wordcount_embedded"
  "wordcount_embedded.gen.cpp"
  "wordcount_embedded.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wordcount_embedded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/logscan.dir/logscan.cpp.o"
  "CMakeFiles/logscan.dir/logscan.cpp.o.d"
  "logscan"
  "logscan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logscan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for logscan.
# This may be replaced when dependencies are built.

# Empty dependencies file for prime_pipeline.
# This may be replaced when dependencies are built.

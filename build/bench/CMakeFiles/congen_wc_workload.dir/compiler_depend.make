# Empty compiler generated dependencies file for congen_wc_workload.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/congen_wc_workload.dir/workload/wordcount.cpp.o"
  "CMakeFiles/congen_wc_workload.dir/workload/wordcount.cpp.o.d"
  "libcongen_wc_workload.a"
  "libcongen_wc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/congen_wc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

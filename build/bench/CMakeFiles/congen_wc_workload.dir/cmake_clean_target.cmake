file(REMOVE_RECURSE
  "libcongen_wc_workload.a"
)

# Empty compiler generated dependencies file for fig6_report.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig6_report.dir/fig6_report.cpp.o"
  "CMakeFiles/fig6_report.dir/fig6_report.cpp.o.d"
  "fig6_report"
  "fig6_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

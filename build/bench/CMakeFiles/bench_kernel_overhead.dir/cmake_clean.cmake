file(REMOVE_RECURSE
  "CMakeFiles/bench_kernel_overhead.dir/bench_kernel_overhead.cpp.o"
  "CMakeFiles/bench_kernel_overhead.dir/bench_kernel_overhead.cpp.o.d"
  "bench_kernel_overhead"
  "bench_kernel_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kernel_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_kernel_overhead.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_coexpr.dir/bench_coexpr.cpp.o"
  "CMakeFiles/bench_coexpr.dir/bench_coexpr.cpp.o.d"
  "bench_coexpr"
  "bench_coexpr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_coexpr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

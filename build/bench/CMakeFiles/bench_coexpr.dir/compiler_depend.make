# Empty compiler generated dependencies file for bench_coexpr.
# This may be replaced when dependencies are built.

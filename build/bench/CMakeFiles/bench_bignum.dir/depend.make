# Empty dependencies file for bench_bignum.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_bignum.dir/bench_bignum.cpp.o"
  "CMakeFiles/bench_bignum.dir/bench_bignum.cpp.o.d"
  "bench_bignum"
  "bench_bignum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bignum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig6_wordcount.
# This may be replaced when dependencies are built.

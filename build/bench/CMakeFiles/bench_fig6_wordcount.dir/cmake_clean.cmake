file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_wordcount.dir/bench_fig6_wordcount.cpp.o"
  "CMakeFiles/bench_fig6_wordcount.dir/bench_fig6_wordcount.cpp.o.d"
  "bench_fig6_wordcount"
  "bench_fig6_wordcount.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_wordcount.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

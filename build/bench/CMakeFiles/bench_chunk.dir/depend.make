# Empty dependencies file for bench_chunk.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_chunk.dir/bench_chunk.cpp.o"
  "CMakeFiles/bench_chunk.dir/bench_chunk.cpp.o.d"
  "bench_chunk"
  "bench_chunk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_chunk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_interp_vs_emitted.dir/bench_interp_vs_emitted.cpp.o"
  "CMakeFiles/bench_interp_vs_emitted.dir/bench_interp_vs_emitted.cpp.o.d"
  "bench_interp_vs_emitted"
  "bench_interp_vs_emitted.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_interp_vs_emitted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_interp_vs_emitted.
# This may be replaced when dependencies are built.

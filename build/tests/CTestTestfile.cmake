# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/bigint_test[1]_include.cmake")
include("/root/repo/build/tests/value_test[1]_include.cmake")
include("/root/repo/build/tests/collections_test[1]_include.cmake")
include("/root/repo/build/tests/gen_basic_test[1]_include.cmake")
include("/root/repo/build/tests/compose_test[1]_include.cmake")
include("/root/repo/build/tests/ops_test[1]_include.cmake")
include("/root/repo/build/tests/control_test[1]_include.cmake")
include("/root/repo/build/tests/case_slice_test[1]_include.cmake")
include("/root/repo/build/tests/scan_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/coexpr_test[1]_include.cmake")
include("/root/repo/build/tests/queue_test[1]_include.cmake")
include("/root/repo/build/tests/pool_test[1]_include.cmake")
include("/root/repo/build/tests/pipe_test[1]_include.cmake")
include("/root/repo/build/tests/par_test[1]_include.cmake")
include("/root/repo/build/tests/annotations_test[1]_include.cmake")
include("/root/repo/build/tests/lexer_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/parser_extended_test[1]_include.cmake")
include("/root/repo/build/tests/normalize_test[1]_include.cmake")
include("/root/repo/build/tests/interp_test[1]_include.cmake")
include("/root/repo/build/tests/interp_lang_test[1]_include.cmake")
include("/root/repo/build/tests/interp_extended_test[1]_include.cmake")
include("/root/repo/build/tests/metamorphic_test[1]_include.cmake")
include("/root/repo/build/tests/emit_test[1]_include.cmake")
include("/root/repo/build/tests/wordcount_test[1]_include.cmake")
include("/root/repo/build/tests/scripts_test[1]_include.cmake")
include("/root/repo/build/tests/failure_injection_test[1]_include.cmake")

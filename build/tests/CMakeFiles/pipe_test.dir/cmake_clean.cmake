file(REMOVE_RECURSE
  "CMakeFiles/pipe_test.dir/concur/pipe_test.cpp.o"
  "CMakeFiles/pipe_test.dir/concur/pipe_test.cpp.o.d"
  "pipe_test"
  "pipe_test.pdb"
  "pipe_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/coexpr_test.dir/coexpr/coexpr_test.cpp.o"
  "CMakeFiles/coexpr_test.dir/coexpr/coexpr_test.cpp.o.d"
  "coexpr_test"
  "coexpr_test.pdb"
  "coexpr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coexpr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

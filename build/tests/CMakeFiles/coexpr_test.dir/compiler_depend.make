# Empty compiler generated dependencies file for coexpr_test.
# This may be replaced when dependencies are built.

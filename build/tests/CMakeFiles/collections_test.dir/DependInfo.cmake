
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/runtime/collections_test.cpp" "tests/CMakeFiles/collections_test.dir/runtime/collections_test.cpp.o" "gcc" "tests/CMakeFiles/collections_test.dir/runtime/collections_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/par/CMakeFiles/congen_par.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/congen_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/emit/CMakeFiles/congen_emit.dir/DependInfo.cmake"
  "/root/repo/build/src/meta/CMakeFiles/congen_meta.dir/DependInfo.cmake"
  "/root/repo/build/src/concur/CMakeFiles/congen_concur.dir/DependInfo.cmake"
  "/root/repo/build/src/builtins/CMakeFiles/congen_builtins.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/congen_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/congen_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/bignum/CMakeFiles/congen_bignum.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/congen_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/congen_frontend.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

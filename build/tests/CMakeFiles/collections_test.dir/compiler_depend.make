# Empty compiler generated dependencies file for collections_test.
# This may be replaced when dependencies are built.

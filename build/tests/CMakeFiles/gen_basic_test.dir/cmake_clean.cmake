file(REMOVE_RECURSE
  "CMakeFiles/gen_basic_test.dir/kernel/gen_basic_test.cpp.o"
  "CMakeFiles/gen_basic_test.dir/kernel/gen_basic_test.cpp.o.d"
  "gen_basic_test"
  "gen_basic_test.pdb"
  "gen_basic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gen_basic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

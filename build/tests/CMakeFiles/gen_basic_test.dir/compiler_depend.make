# Empty compiler generated dependencies file for gen_basic_test.
# This may be replaced when dependencies are built.

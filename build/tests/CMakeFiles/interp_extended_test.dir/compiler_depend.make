# Empty compiler generated dependencies file for interp_extended_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/interp_extended_test.dir/interp/interp_extended_test.cpp.o"
  "CMakeFiles/interp_extended_test.dir/interp/interp_extended_test.cpp.o.d"
  "interp_extended_test"
  "interp_extended_test.pdb"
  "interp_extended_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interp_extended_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/parser_extended_test.dir/frontend/parser_extended_test.cpp.o"
  "CMakeFiles/parser_extended_test.dir/frontend/parser_extended_test.cpp.o.d"
  "parser_extended_test"
  "parser_extended_test.pdb"
  "parser_extended_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parser_extended_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for case_slice_test.
# This may be replaced when dependencies are built.

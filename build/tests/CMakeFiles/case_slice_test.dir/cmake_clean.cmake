file(REMOVE_RECURSE
  "CMakeFiles/case_slice_test.dir/kernel/case_slice_test.cpp.o"
  "CMakeFiles/case_slice_test.dir/kernel/case_slice_test.cpp.o.d"
  "case_slice_test"
  "case_slice_test.pdb"
  "case_slice_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/case_slice_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

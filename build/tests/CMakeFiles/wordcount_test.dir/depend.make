# Empty dependencies file for wordcount_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/wordcount_test.dir/__/bench/workload/wordcount.cpp.o"
  "CMakeFiles/wordcount_test.dir/__/bench/workload/wordcount.cpp.o.d"
  "CMakeFiles/wordcount_test.dir/integration/wordcount_test.cpp.o"
  "CMakeFiles/wordcount_test.dir/integration/wordcount_test.cpp.o.d"
  "wordcount_test"
  "wordcount_test.pdb"
  "wordcount_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wordcount_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/interp_lang_test.dir/interp/interp_lang_test.cpp.o"
  "CMakeFiles/interp_lang_test.dir/interp/interp_lang_test.cpp.o.d"
  "interp_lang_test"
  "interp_lang_test.pdb"
  "interp_lang_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interp_lang_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for congen_frontend.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libcongen_frontend.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/congen_frontend.dir/ast.cpp.o"
  "CMakeFiles/congen_frontend.dir/ast.cpp.o.d"
  "CMakeFiles/congen_frontend.dir/lexer.cpp.o"
  "CMakeFiles/congen_frontend.dir/lexer.cpp.o.d"
  "CMakeFiles/congen_frontend.dir/parser.cpp.o"
  "CMakeFiles/congen_frontend.dir/parser.cpp.o.d"
  "libcongen_frontend.a"
  "libcongen_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/congen_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libcongen_builtins.a"
)

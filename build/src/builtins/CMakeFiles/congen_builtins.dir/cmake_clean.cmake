file(REMOVE_RECURSE
  "CMakeFiles/congen_builtins.dir/builtins.cpp.o"
  "CMakeFiles/congen_builtins.dir/builtins.cpp.o.d"
  "libcongen_builtins.a"
  "libcongen_builtins.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/congen_builtins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for congen_builtins.
# This may be replaced when dependencies are built.

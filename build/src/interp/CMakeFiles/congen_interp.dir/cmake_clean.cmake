file(REMOVE_RECURSE
  "CMakeFiles/congen_interp.dir/interpreter.cpp.o"
  "CMakeFiles/congen_interp.dir/interpreter.cpp.o.d"
  "libcongen_interp.a"
  "libcongen_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/congen_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libcongen_interp.a"
)

# Empty dependencies file for congen_interp.
# This may be replaced when dependencies are built.

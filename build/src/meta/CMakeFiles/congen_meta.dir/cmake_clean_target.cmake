file(REMOVE_RECURSE
  "libcongen_meta.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/congen_meta.dir/annotations.cpp.o"
  "CMakeFiles/congen_meta.dir/annotations.cpp.o.d"
  "libcongen_meta.a"
  "libcongen_meta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/congen_meta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

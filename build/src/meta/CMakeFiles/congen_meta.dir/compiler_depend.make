# Empty compiler generated dependencies file for congen_meta.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for congen_runtime.
# This may be replaced when dependencies are built.

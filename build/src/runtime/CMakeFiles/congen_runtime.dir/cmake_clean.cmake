file(REMOVE_RECURSE
  "CMakeFiles/congen_runtime.dir/collections.cpp.o"
  "CMakeFiles/congen_runtime.dir/collections.cpp.o.d"
  "CMakeFiles/congen_runtime.dir/value.cpp.o"
  "CMakeFiles/congen_runtime.dir/value.cpp.o.d"
  "libcongen_runtime.a"
  "libcongen_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/congen_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

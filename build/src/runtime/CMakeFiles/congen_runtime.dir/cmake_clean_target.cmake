file(REMOVE_RECURSE
  "libcongen_runtime.a"
)

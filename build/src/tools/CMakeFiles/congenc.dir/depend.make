# Empty dependencies file for congenc.
# This may be replaced when dependencies are built.

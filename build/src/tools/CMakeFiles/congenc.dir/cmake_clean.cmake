file(REMOVE_RECURSE
  "CMakeFiles/congenc.dir/congenc.cpp.o"
  "CMakeFiles/congenc.dir/congenc.cpp.o.d"
  "congenc"
  "congenc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/congenc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

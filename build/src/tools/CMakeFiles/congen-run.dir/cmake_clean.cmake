file(REMOVE_RECURSE
  "CMakeFiles/congen-run.dir/congen_run.cpp.o"
  "CMakeFiles/congen-run.dir/congen_run.cpp.o.d"
  "congen-run"
  "congen-run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/congen-run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

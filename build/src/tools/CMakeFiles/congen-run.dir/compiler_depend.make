# Empty compiler generated dependencies file for congen-run.
# This may be replaced when dependencies are built.

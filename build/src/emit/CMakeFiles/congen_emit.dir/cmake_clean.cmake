file(REMOVE_RECURSE
  "CMakeFiles/congen_emit.dir/emitter.cpp.o"
  "CMakeFiles/congen_emit.dir/emitter.cpp.o.d"
  "libcongen_emit.a"
  "libcongen_emit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/congen_emit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

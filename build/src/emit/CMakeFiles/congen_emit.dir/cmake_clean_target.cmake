file(REMOVE_RECURSE
  "libcongen_emit.a"
)

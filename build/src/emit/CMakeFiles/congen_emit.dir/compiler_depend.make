# Empty compiler generated dependencies file for congen_emit.
# This may be replaced when dependencies are built.

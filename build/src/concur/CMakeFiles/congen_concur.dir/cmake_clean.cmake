file(REMOVE_RECURSE
  "CMakeFiles/congen_concur.dir/pipe.cpp.o"
  "CMakeFiles/congen_concur.dir/pipe.cpp.o.d"
  "CMakeFiles/congen_concur.dir/thread_pool.cpp.o"
  "CMakeFiles/congen_concur.dir/thread_pool.cpp.o.d"
  "libcongen_concur.a"
  "libcongen_concur.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/congen_concur.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

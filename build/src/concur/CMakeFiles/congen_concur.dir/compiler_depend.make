# Empty compiler generated dependencies file for congen_concur.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/concur/pipe.cpp" "src/concur/CMakeFiles/congen_concur.dir/pipe.cpp.o" "gcc" "src/concur/CMakeFiles/congen_concur.dir/pipe.cpp.o.d"
  "/root/repo/src/concur/thread_pool.cpp" "src/concur/CMakeFiles/congen_concur.dir/thread_pool.cpp.o" "gcc" "src/concur/CMakeFiles/congen_concur.dir/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kernel/CMakeFiles/congen_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/congen_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/bignum/CMakeFiles/congen_bignum.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

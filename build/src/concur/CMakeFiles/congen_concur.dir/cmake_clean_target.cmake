file(REMOVE_RECURSE
  "libcongen_concur.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/congen_par.dir/data_parallel.cpp.o"
  "CMakeFiles/congen_par.dir/data_parallel.cpp.o.d"
  "CMakeFiles/congen_par.dir/pipeline.cpp.o"
  "CMakeFiles/congen_par.dir/pipeline.cpp.o.d"
  "libcongen_par.a"
  "libcongen_par.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/congen_par.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libcongen_par.a"
)

# Empty compiler generated dependencies file for congen_par.
# This may be replaced when dependencies are built.

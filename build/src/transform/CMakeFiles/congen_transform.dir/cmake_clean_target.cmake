file(REMOVE_RECURSE
  "libcongen_transform.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/congen_transform.dir/normalize.cpp.o"
  "CMakeFiles/congen_transform.dir/normalize.cpp.o.d"
  "libcongen_transform.a"
  "libcongen_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/congen_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

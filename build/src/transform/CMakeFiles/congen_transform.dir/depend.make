# Empty dependencies file for congen_transform.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/congen_bignum.dir/bigint.cpp.o"
  "CMakeFiles/congen_bignum.dir/bigint.cpp.o.d"
  "libcongen_bignum.a"
  "libcongen_bignum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/congen_bignum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for congen_bignum.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libcongen_bignum.a"
)

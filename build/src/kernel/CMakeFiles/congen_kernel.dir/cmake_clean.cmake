file(REMOVE_RECURSE
  "CMakeFiles/congen_kernel.dir/basic.cpp.o"
  "CMakeFiles/congen_kernel.dir/basic.cpp.o.d"
  "CMakeFiles/congen_kernel.dir/compose.cpp.o"
  "CMakeFiles/congen_kernel.dir/compose.cpp.o.d"
  "CMakeFiles/congen_kernel.dir/control.cpp.o"
  "CMakeFiles/congen_kernel.dir/control.cpp.o.d"
  "CMakeFiles/congen_kernel.dir/ops.cpp.o"
  "CMakeFiles/congen_kernel.dir/ops.cpp.o.d"
  "CMakeFiles/congen_kernel.dir/scan.cpp.o"
  "CMakeFiles/congen_kernel.dir/scan.cpp.o.d"
  "CMakeFiles/congen_kernel.dir/trace.cpp.o"
  "CMakeFiles/congen_kernel.dir/trace.cpp.o.d"
  "libcongen_kernel.a"
  "libcongen_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/congen_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libcongen_kernel.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernel/basic.cpp" "src/kernel/CMakeFiles/congen_kernel.dir/basic.cpp.o" "gcc" "src/kernel/CMakeFiles/congen_kernel.dir/basic.cpp.o.d"
  "/root/repo/src/kernel/compose.cpp" "src/kernel/CMakeFiles/congen_kernel.dir/compose.cpp.o" "gcc" "src/kernel/CMakeFiles/congen_kernel.dir/compose.cpp.o.d"
  "/root/repo/src/kernel/control.cpp" "src/kernel/CMakeFiles/congen_kernel.dir/control.cpp.o" "gcc" "src/kernel/CMakeFiles/congen_kernel.dir/control.cpp.o.d"
  "/root/repo/src/kernel/ops.cpp" "src/kernel/CMakeFiles/congen_kernel.dir/ops.cpp.o" "gcc" "src/kernel/CMakeFiles/congen_kernel.dir/ops.cpp.o.d"
  "/root/repo/src/kernel/scan.cpp" "src/kernel/CMakeFiles/congen_kernel.dir/scan.cpp.o" "gcc" "src/kernel/CMakeFiles/congen_kernel.dir/scan.cpp.o.d"
  "/root/repo/src/kernel/trace.cpp" "src/kernel/CMakeFiles/congen_kernel.dir/trace.cpp.o" "gcc" "src/kernel/CMakeFiles/congen_kernel.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/congen_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/bignum/CMakeFiles/congen_bignum.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for congen_kernel.
# This may be replaced when dependencies are built.

// watchdog_test.cpp — regression for the congen-run --timeout watchdog.
//
// The watchdog used to _Exit(3) without flushing observability sinks:
// a hung run under --metrics-json produced exit code 3 and an EMPTY
// metrics file, which is exactly the run you most need the metrics
// from. The fix flushes the requested sinks (and dumps pipe stats to
// stderr) before exiting. This test drives the real binary — the
// watchdog lives in the tool's main(), not in any library — via
// popen(2), with the path injected at build time (CONGEN_RUN_BIN).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace {

struct RunResult {
  int exitCode = -1;
  std::string output;  // stdout + stderr interleaved
};

RunResult runCommand(const std::string& command) {
  RunResult result;
  FILE* pipe = popen((command + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return result;
  char buffer[4096];
  while (std::fgets(buffer, sizeof buffer, pipe) != nullptr) result.output += buffer;
  const int status = pclose(pipe);
  if (WIFEXITED(status)) result.exitCode = WEXITSTATUS(status);
  return result;
}

std::string tempPath(const char* name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + name + "." +
         std::to_string(::getpid());
}

// A script the interpreter will grind on far longer than the watchdog
// window: every result of a billion-wide range is resumed.
const char kHangScript[] = "def main(args) { every 1 to 10000000000; }\n";

TEST(Watchdog, TimeoutExitsThreeAndStillWritesMetricsJson) {
  const std::string metricsPath = tempPath("watchdog_metrics");
  const std::string scriptPath = tempPath("watchdog_hang") + ".jn";
  std::remove(metricsPath.c_str());
  std::ofstream(scriptPath) << kHangScript;
  const auto result = runCommand(std::string(CONGEN_RUN_BIN) + " --timeout 1 --metrics-json " +
                                 metricsPath + " " + scriptPath);
  EXPECT_EQ(result.exitCode, 3) << result.output;
  EXPECT_NE(result.output.find("watchdog expired"), std::string::npos) << result.output;

  // The whole point of the fix: the metrics sink must be flushed even
  // though the process dies on the watchdog path.
  std::ifstream in(metricsPath);
  ASSERT_TRUE(in.good()) << "watchdog exit dropped the metrics file";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  EXPECT_FALSE(json.empty()) << "metrics file written but empty";
  EXPECT_NE(json.find("\"counters\""), std::string::npos) << json.substr(0, 200);
  EXPECT_NE(json.find("\"schema\""), std::string::npos) << json.substr(0, 200);
  std::remove(metricsPath.c_str());
  std::remove(scriptPath.c_str());
}

TEST(Watchdog, FastRunIsUntouchedByTimeout) {
  const std::string metricsPath = tempPath("watchdog_fast_metrics");
  std::remove(metricsPath.c_str());
  const auto result = runCommand(std::string(CONGEN_RUN_BIN) + " --timeout 30 --metrics-json " +
                                 metricsPath + " -e \"1 + 2\"");
  EXPECT_EQ(result.exitCode, 0) << result.output;
  EXPECT_NE(result.output.find("3"), std::string::npos) << result.output;
  std::ifstream in(metricsPath);
  EXPECT_TRUE(in.good());
  std::remove(metricsPath.c_str());
}

}  // namespace

// failure_injection_test.cpp — robustness under errors: run-time errors
// crossing constructs and threads, interpreter reusability after a
// throw, deep recursion, and loop-control misuse.
#include <gtest/gtest.h>

#include "builtins/builtins.hpp"
#include "congen.hpp"

namespace congen {
namespace {

TEST(FailureInjection, InterpreterSurvivesErrors) {
  interp::Interpreter interp;
  EXPECT_THROW(interp.evalAll("1 / 0"), IconError);
  // The interpreter must remain fully usable afterwards.
  EXPECT_EQ(interp.evalOne("2 + 2")->smallInt(), 4);
  EXPECT_THROW(interp.evalAll("!5"), IconError);
  EXPECT_EQ(interp.evalOne("3 * 3")->smallInt(), 9);
}

TEST(FailureInjection, ErrorInsideLoopPropagates) {
  interp::Interpreter interp;
  interp.load(R"(
    def boom(n) {
      local i, total;
      total := 0;
      every i := 1 to n do total +:= 10 / (3 - i);   # i = 3 divides by zero
      return total;
    }
  )");
  EXPECT_THROW(interp.evalAll("boom(5)"), IconError);
  EXPECT_EQ(interp.evalOne("boom(2)")->smallInt(), 15);
}

TEST(FailureInjection, ErrorInsidePipeSurfacesAtConsumer) {
  interp::Interpreter interp;
  interp.load("def bad(n) { local i; every i := 1 to n do suspend 10 / (2 - i); }");
  auto gen = interp.eval("! |> bad(5)");
  EXPECT_EQ(gen->nextValue()->smallInt(), 10) << "first element crosses before the error";
  EXPECT_THROW(
      {
        while (gen->nextValue()) {
        }
      },
      IconError)
      << "the producer-side division by zero rethrows on this thread";
}

TEST(FailureInjection, ErrorInsideMapReduceTaskSurfaces) {
  auto divByIndex = builtins::makeNative("div", [](std::vector<Value>& args) {
    return ops::div(Value::integer(100), ops::sub(args.at(0), Value::integer(3)));
  });
  auto add = builtins::makeNative("add", [](std::vector<Value>& args) {
    return ops::add(args.at(0), args.at(1));
  });
  DataParallel dp(2);
  auto gen = dp.mapReduce(divByIndex, [] {
    return RangeGen::create(Value::integer(1), Value::integer(6), Value::integer(1));
  }, add, Value::integer(0));
  EXPECT_THROW(
      {
        while (gen->nextValue()) {
        }
      },
      IconError)
      << "a chunk task hitting x=3 divides by zero; the error reaches the drain";
}

TEST(FailureInjection, BreakOutsideLoopIsRuntimeError) {
  interp::Interpreter interp;
  interp.load("def f() { break; }");
  try {
    interp.evalAll("f()");
    FAIL() << "expected IconError";
  } catch (const IconError& e) {
    EXPECT_EQ(e.number(), 506);
  }
  interp.load("def g() { next; }");
  EXPECT_THROW(interp.evalAll("g()"), IconError);
}

TEST(FailureInjection, DeepRecursionWorks) {
  interp::Interpreter interp;
  interp.load("def down(n) { if n <= 0 then return 0; return 1 + down(n - 1); }");
  EXPECT_EQ(interp.evalOne("down(2000)")->smallInt(), 2000);
}

TEST(FailureInjection, DeepGeneratorNesting) {
  // 200 nested alternations driven to exhaustion.
  std::string expr = "1";
  for (int i = 0; i < 200; ++i) expr = "(" + expr + " | 1)";
  interp::Interpreter interp;
  EXPECT_EQ(interp.evalAll(expr).size(), 201u);
}

TEST(FailureInjection, AbandonedGeneratorsAreSafe) {
  // Take one value and drop the generator — nothing may leak or hang,
  // including pipes with live producers (the close-on-destroy contract).
  interp::Interpreter interp;
  for (int i = 0; i < 50; ++i) {
    auto gen = interp.eval("! |> (1 to 1000000)");
    ASSERT_TRUE(gen->nextValue().has_value());
  }
  // The pool still serves new work afterwards.
  EXPECT_EQ(interp.evalOne("! |> 42")->smallInt(), 42);
}

TEST(FailureInjection, ErrorDuringProductLeavesGeneratorRestartable) {
  interp::Interpreter interp;
  interp.evalOne("denom := 0");
  auto gen = interp.eval("(1 to 3) & 10 / denom");
  EXPECT_THROW(gen->nextValue(), IconError);
  interp.evalOne("denom := 2");
  gen->restart();
  EXPECT_EQ(gen->nextValue()->smallInt(), 5) << "restart recovers after a mid-product error";
}

TEST(FailureInjection, StopBuiltinAborts) {
  interp::Interpreter interp;
  EXPECT_THROW(interp.evalAll("stop(\"fatal\")"), IconError);
}

TEST(FailureInjection, MalformedProgramsLeaveNoDefinitions) {
  interp::Interpreter interp;
  EXPECT_THROW(interp.load("def ok() { return 1; } def broken( {"), frontend::SyntaxError);
  // Parsing is all-or-nothing: the earlier def in the same buffer must
  // not have been silently registered.
  EXPECT_THROW(interp.call("ok", {}), IconError);
}

}  // namespace
}  // namespace congen

// scripts_test.cpp — the shipped example scripts and the annotated
// example file load and behave as documented (end-to-end integration of
// parser, normalizer, interpreter, pipes, and the metaparser/emitter).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "emit/emitter.hpp"
#include "frontend/parser.hpp"
#include "interp/interpreter.hpp"
#include "meta/annotations.hpp"
#include "runtime/collections.hpp"

namespace congen {
namespace {

std::string readFile(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

const std::string kRoot = CONGEN_SOURCE_DIR;

TEST(ScriptMapReduce, Fig4ScriptProducesChunkSums) {
  interp::Interpreter interp;
  interp.load(readFile(kRoot + "/examples/scripts/mapreduce.jn"));
  std::vector<std::int64_t> sums;
  auto gen = interp.eval("mapReduce(square, source, add, 0)");
  while (auto v = gen->nextValue()) sums.push_back(v->requireInt64("sum"));
  EXPECT_EQ(sums, (std::vector<std::int64_t>{14, 77, 194, 100}));
}

TEST(ScriptWordCount, SequentialEqualsPipeline) {
  interp::Interpreter interp;
  interp.load(readFile(kRoot + "/examples/scripts/wordcount.jn"));
  const double sequential = interp.evalOne("runSequential()")->requireReal("seq");
  const double pipelined = interp.evalOne("runPipeline()")->requireReal("pipe");
  EXPECT_DOUBLE_EQ(sequential, pipelined);
  EXPECT_NEAR(sequential, 10529097107.3732, 1e-3) << "known corpus hash";
}

TEST(AnnotatedExample, RegionsParseAndTranslate) {
  // The shipped .ccg file must contain exactly one definition region and
  // one expression region, and translate without errors.
  const std::string src = readFile(kRoot + "/examples/embedded/wordcount_embedded.ccg");
  const auto regions = meta::parseAnnotations(src);
  ASSERT_EQ(regions.size(), 2u);
  EXPECT_EQ(regions[0].attr("lang"), "junicon");
  EXPECT_EQ(regions[1].attr("lang"), "junicon");

  // Definition region: a program; expression region: an expression.
  const std::string defs =
      src.substr(regions[0].innerBegin, regions[0].innerEnd - regions[0].innerBegin);
  const std::string expr =
      src.substr(regions[1].innerBegin, regions[1].innerEnd - regions[1].innerBegin);
  EXPECT_THROW(frontend::parseExpression(defs), frontend::SyntaxError);
  EXPECT_NO_THROW(frontend::parseProgram(defs));
  EXPECT_NO_THROW(frontend::parseExpression(expr));

  std::vector<ast::NodePtr> exprs = {frontend::parseExpression(expr)};
  const std::string module =
      emit::emitModuleWithExprs(frontend::parseProgram(defs), exprs, emit::EmitOptions{});
  EXPECT_NE(module.find("make_hashWords"), std::string::npos);
  EXPECT_NE(module.find("expr_0"), std::string::npos);
}

TEST(AnnotatedExample, InterpreterRunsTheEmbeddedDefinitions) {
  // Run the same embedded program through the interactive path and check
  // the pipeline/sequential agreement the example asserts.
  const std::string src = readFile(kRoot + "/examples/embedded/wordcount_embedded.ccg");
  const auto regions = meta::parseAnnotations(src);
  ASSERT_GE(regions.size(), 2u);

  interp::Interpreter interp;
  auto lines = ListImpl::create();
  lines->put(Value::string("the quick brown fox"));
  lines->put(Value::string("jumps over the lazy dog"));
  interp.defineGlobal("lines", Value::list(lines));
  interp.load(src.substr(regions[0].innerBegin, regions[0].innerEnd - regions[0].innerBegin));

  const std::string pipelineExpr =
      src.substr(regions[1].innerBegin, regions[1].innerEnd - regions[1].innerBegin);
  double viaPipeline = 0;
  for (auto gen = interp.eval(pipelineExpr); auto v = gen->nextValue();) {
    viaPipeline += v->requireReal("hash");
  }
  double viaHashWords = 0;
  for (auto gen = interp.eval("hashWords(readLines())"); auto v = gen->nextValue();) {
    viaHashWords += v->requireReal("hash");
  }
  EXPECT_GT(viaPipeline, 0.0);
  EXPECT_DOUBLE_EQ(viaPipeline, viaHashWords);
}

TEST(ScriptNQueens, BacktrackingThroughSuspension) {
  interp::Interpreter interp;
  interp.load(readFile(kRoot + "/examples/scripts/nqueens.jn"));
  // Known solution counts: the undo-after-suspend protocol must hold for
  // the search to be exhaustive and non-repeating.
  EXPECT_EQ(interp.evalAll("queens(4)").size(), 2u);
  EXPECT_EQ(interp.evalAll("queens(5)").size(), 10u);
  EXPECT_EQ(interp.evalAll("queens(6)").size(), 4u);
}

TEST(ScriptNQueens, FirstSolutionIsValid) {
  interp::Interpreter interp;
  interp.load(readFile(kRoot + "/examples/scripts/nqueens.jn"));
  auto s = interp.eval("queens(6)")->nextValue();
  ASSERT_TRUE(s && s->isList());
  const auto& cols = s->list()->elements();
  ASSERT_EQ(cols.size(), 6u);
  for (std::size_t a = 0; a < cols.size(); ++a) {
    for (std::size_t b = a + 1; b < cols.size(); ++b) {
      const auto ra = cols[a].smallInt(), rb = cols[b].smallInt();
      EXPECT_NE(ra, rb) << "row clash";
      EXPECT_NE(ra - static_cast<std::int64_t>(a), rb - static_cast<std::int64_t>(b)) << "diag";
      EXPECT_NE(ra + static_cast<std::int64_t>(a), rb + static_cast<std::int64_t>(b)) << "diag";
    }
  }
}

TEST(ScriptWordFreq, ScanningCountsWords) {
  interp::Interpreter interp;
  interp.load(readFile(kRoot + "/examples/scripts/wordfreq.jn"));
  interp.evalOne("letters := \"abcdefghijklmnopqrstuvwxyz\"");
  auto counts = interp.evalOne(
      "countWords([\"a b a\", \"B c-c a\"])");
  ASSERT_TRUE(counts && counts->isTable());
  EXPECT_EQ(counts->table()->lookup(Value::string("a")).smallInt(), 3);
  EXPECT_EQ(counts->table()->lookup(Value::string("b")).smallInt(), 2) << "map() lowercases";
  EXPECT_EQ(counts->table()->lookup(Value::string("c")).smallInt(), 2) << "punctuation splits";
}

TEST(ScriptErrors, BrokenScriptRaisesSyntaxError) {
  interp::Interpreter interp;
  EXPECT_THROW(interp.load("def broken( { }"), frontend::SyntaxError);
}

}  // namespace
}  // namespace congen

// wordcount_test.cpp — the Fig. 6 workload: all eight benchmark variants
// (native × junicon, sequential/pipeline/data-parallel/map-reduce) must
// compute the same hash, lightweight and heavyweight.
#include "wordcount.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace congen::wc {
namespace {

bool nearlyEqual(double a, double b) {
  return std::fabs(a - b) <= 1e-9 * std::max({std::fabs(a), std::fabs(b), 1.0});
}

TEST(Corpus, DeterministicAndShaped) {
  const auto a = makeCorpus(10, 5, 7);
  const auto b = makeCorpus(10, 5, 7);
  EXPECT_EQ(a, b) << "same seed, same corpus";
  EXPECT_NE(a, makeCorpus(10, 5, 8));
  ASSERT_EQ(a.size(), 10u);
  for (const auto& line : a) {
    EXPECT_EQ(std::count(line.begin(), line.end(), ' '), 4) << "5 words per line";
  }
}

TEST(ComputeNodes, WordToNumberIsBase36) {
  EXPECT_EQ(wordToNumber("hello").toString(), "29234652");
  EXPECT_EQ(wordToNumber("0"), BigInt{0});
}

TEST(ComputeNodes, HashesAreDeterministic) {
  const BigInt n = wordToNumber("benchmark");
  EXPECT_DOUBLE_EQ(hashLight(n), hashLight(n));
  EXPECT_DOUBLE_EQ(hashHeavy(n), hashHeavy(n));
  EXPECT_GT(hashLight(n), 0.0);
}

class VariantAgreement : public ::testing::TestWithParam<bool> {};

TEST_P(VariantAgreement, AllEightVariantsAgree) {
  Params p;
  p.heavy = GetParam();
  p.chunkSize = 4;
  p.queueCapacity = 8;
  // Small corpus keeps the heavyweight variant quick.
  const auto lines = makeCorpus(p.heavy ? 6 : 40, 4);
  const double reference = referenceHash(lines, p);
  ASSERT_GT(reference, 0.0);

  EXPECT_TRUE(nearlyEqual(nativeSequential(lines, p), reference));
  EXPECT_TRUE(nearlyEqual(nativePipeline(lines, p), reference)) << "native pipeline";
  EXPECT_TRUE(nearlyEqual(nativeDataParallel(lines, p), reference)) << "native data-parallel";
  EXPECT_TRUE(nearlyEqual(nativeMapReduce(lines, p), reference)) << "native map-reduce";

  EXPECT_TRUE(nearlyEqual(juniconSequential(lines, p), reference)) << "junicon sequential";
  EXPECT_TRUE(nearlyEqual(juniconPipeline(lines, p), reference)) << "junicon pipeline";
  EXPECT_TRUE(nearlyEqual(juniconDataParallel(lines, p), reference)) << "junicon data-parallel";
  EXPECT_TRUE(nearlyEqual(juniconMapReduce(lines, p), reference)) << "junicon map-reduce";
}

INSTANTIATE_TEST_SUITE_P(Weights, VariantAgreement, ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "heavyweight" : "lightweight";
                         });

class ChunkingInvariance : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ChunkingInvariance, HashIndependentOfChunkSize) {
  Params p;
  p.chunkSize = GetParam();
  const auto lines = makeCorpus(23, 3);
  const double reference = referenceHash(lines, p);
  EXPECT_TRUE(nearlyEqual(nativeMapReduce(lines, p), reference)) << "chunk " << GetParam();
  EXPECT_TRUE(nearlyEqual(juniconMapReduce(lines, p), reference)) << "chunk " << GetParam();
  EXPECT_TRUE(nearlyEqual(juniconDataParallel(lines, p), reference)) << "chunk " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Sizes, ChunkingInvariance, ::testing::Values(1u, 2u, 7u, 23u, 100u));

TEST(QueueCapacityInvariance, PipelineHashIndependentOfBound) {
  const auto lines = makeCorpus(20, 4);
  Params p;
  double reference = 0;
  for (const std::size_t cap : {1u, 2u, 16u, 1024u}) {
    p.queueCapacity = cap;
    const double native = nativePipeline(lines, p);
    const double junicon = juniconPipeline(lines, p);
    if (reference == 0) reference = native;
    EXPECT_TRUE(nearlyEqual(native, reference)) << cap;
    EXPECT_TRUE(nearlyEqual(junicon, reference)) << cap;
  }
}

TEST(HeavyHash, IsSubstantiallyHeavierThanLight) {
  // The Section VII premise: the heavyweight nodes dominate coordination
  // cost. Sanity-check the weight ratio is at least an order of
  // magnitude (the paper's factor is ~80).
  const auto lines = makeCorpus(8, 4);
  Params light, heavy;
  heavy.heavy = true;

  const auto time = [&lines](const Params& p) {
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < 3; ++i) nativeSequential(lines, p);
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  };
  const double tLight = time(light);
  const double tHeavy = time(heavy);
  EXPECT_GT(tHeavy, 10 * tLight) << "heavy=" << tHeavy << "s light=" << tLight << "s";
}

}  // namespace
}  // namespace congen::wc

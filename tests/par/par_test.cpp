// par_test.cpp — the higher-order abstractions: chunk, mapReduce,
// mapFlat (Fig. 4) and Pipeline (Fig. 2).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>

#include "../testutil.hpp"
#include "builtins/builtins.hpp"
#include "par/data_parallel.hpp"
#include "par/pipeline.hpp"
#include "runtime/error.hpp"

namespace congen {
namespace {

using test::ci;
using test::ints;
using test::range;

ProcPtr squareProc() {
  return builtins::makeNative("square", [](std::vector<Value>& a) {
    return ops::mul(a.at(0), a.at(0));
  });
}

ProcPtr addProc() {
  return builtins::makeNative("add", [](std::vector<Value>& a) {
    return ops::add(a.at(0), a.at(1));
  });
}

TEST(ChunkTest, PartitionsIntoFixedSizeLists) {
  auto g = makeChunkGen(range(1, 10), 4);
  auto c1 = g->nextValue();
  ASSERT_TRUE(c1 && c1->isList());
  EXPECT_EQ(c1->list()->size(), 4);
  EXPECT_EQ(c1->list()->at(1)->smallInt(), 1);
  auto c2 = g->nextValue();
  EXPECT_EQ(c2->list()->size(), 4);
  auto c3 = g->nextValue();
  EXPECT_EQ(c3->list()->size(), 2) << "final partial chunk included";
  EXPECT_EQ(c3->list()->at(2)->smallInt(), 10);
  EXPECT_FALSE(g->nextValue().has_value());
}

TEST(ChunkTest, ExactMultipleHasNoEmptyTail) {
  auto g = makeChunkGen(range(1, 6), 3);
  EXPECT_EQ(g->nextValue()->list()->size(), 3);
  EXPECT_EQ(g->nextValue()->list()->size(), 3);
  EXPECT_FALSE(g->nextValue().has_value());
}

TEST(ChunkTest, EmptySourceYieldsNothing) {
  EXPECT_FALSE(makeChunkGen(FailGen::create(), 5)->nextValue().has_value());
}

TEST(MapReduceTest, ChunkSumsInOrder) {
  DataParallel dp(3);
  auto gen = dp.mapReduce(squareProc(), [] { return test::range(1, 10); }, addProc(),
                          Value::integer(0));
  // chunks {1,2,3} {4,5,6} {7,8,9} {10} → 14, 77, 194, 100 (Fig. 4 run).
  EXPECT_EQ(ints(gen), (std::vector<std::int64_t>{14, 77, 194, 100}));
}

TEST(MapReduceTest, TotalMatchesSerial) {
  DataParallel dp(7);
  auto gen = dp.mapReduce(squareProc(), [] { return test::range(1, 100); }, addProc(),
                          Value::integer(0));
  std::int64_t total = 0;
  for (const auto v : ints(gen)) total += v;
  std::int64_t expected = 0;
  for (int i = 1; i <= 100; ++i) expected += static_cast<std::int64_t>(i) * i;
  EXPECT_EQ(total, expected);
}

TEST(MapReduceTest, GeneratorMapFunctionContributesAllResults) {
  // f suspends TWO results per element; both join the fold.
  auto twice = ProcImpl::create("twice", [](std::vector<Value> args) -> GenPtr {
    const Value v = args.at(0);
    return AltGen::create(ConstGen::create(v), ConstGen::create(v));
  });
  DataParallel dp(10);
  auto gen = dp.mapReduce(twice, [] { return test::range(1, 3); }, addProc(), Value::integer(0));
  EXPECT_EQ(ints(gen), (std::vector<std::int64_t>{12})) << "(1+1+2+2+3+3)";
}

TEST(MapReduceTest, RestartRecomputes) {
  DataParallel dp(2);
  auto gen = dp.mapReduce(squareProc(), [] { return test::range(1, 4); }, addProc(),
                          Value::integer(0));
  EXPECT_EQ(ints(gen), (std::vector<std::int64_t>{5, 25}));
  EXPECT_EQ(ints(gen), (std::vector<std::int64_t>{5, 25})) << "second cycle spawns fresh tasks";
}

TEST(MapFlatTest, FlattensInChunkOrder) {
  DataParallel dp(2);
  auto gen = dp.mapFlat(squareProc(), [] { return test::range(1, 5); });
  EXPECT_EQ(ints(gen), (std::vector<std::int64_t>{1, 4, 9, 16, 25}))
      << "data-parallel map preserves order across chunks";
}

TEST(MapFlatTest, GeneratorFunctionFlattens) {
  // Each element maps to the full range 1..element.
  auto expand = ProcImpl::create("expand", [](std::vector<Value> args) -> GenPtr {
    return RangeGen::create(Value::integer(1), args.at(0), Value::integer(1));
  });
  DataParallel dp(2);
  auto gen = dp.mapFlat(expand, [] { return test::range(1, 3); });
  EXPECT_EQ(ints(gen), (std::vector<std::int64_t>{1, 1, 2, 1, 2, 3}));
}

// ---------------------------------------------------------------------
// Bounded per-chunk retry (withRetry)
// ---------------------------------------------------------------------

/// Mapper that squares its argument but throws once, the first time it
/// sees `failOn`. The flag is shared across chunk pipes, so exactly one
/// attempt anywhere dies; the retry re-runs that chunk and succeeds.
ProcPtr failOnceSquare(std::int64_t failOn, std::shared_ptr<std::atomic<bool>> failed) {
  return builtins::makeNative("failOnceSquare",
                              [failOn, failed](std::vector<Value>& a) -> std::optional<Value> {
                                if (a.at(0).requireInt64() == failOn && !failed->exchange(true)) {
                                  throw errDivisionByZero();
                                }
                                return ops::mul(a.at(0), a.at(0));
                              });
}

TEST(RetryTest, FailOnceChunkIsRerunWithExactResults) {
  auto failed = std::make_shared<std::atomic<bool>>(false);
  DataParallel dp(2);
  dp.withRetry(3, /*backoffBaseMicros=*/1);
  auto gen = dp.mapFlat(failOnceSquare(5, failed), [] { return test::range(1, 6); });
  EXPECT_EQ(ints(gen), (std::vector<std::int64_t>{1, 4, 9, 16, 25, 36}))
      << "retried chunk produces its values in place, order intact";
}

TEST(RetryTest, ReplaySkipsAlreadyDeliveredPrefix) {
  // Single chunk, failure on the LAST element: the prefix {1,4} may
  // already be downstream when the error lands, and the retry must not
  // deliver it twice.
  auto failed = std::make_shared<std::atomic<bool>>(false);
  DataParallel dp(3);
  dp.withRetry(2, 1);
  auto gen = dp.mapFlat(failOnceSquare(3, failed), [] { return test::range(1, 3); });
  EXPECT_EQ(ints(gen), (std::vector<std::int64_t>{1, 4, 9}));
}

TEST(RetryTest, MapReduceRetriesTheFold) {
  auto failed = std::make_shared<std::atomic<bool>>(false);
  DataParallel dp(3);
  dp.withRetry(3, 1);
  auto gen = dp.mapReduce(failOnceSquare(4, failed), [] { return test::range(1, 10); },
                          addProc(), Value::integer(0));
  EXPECT_EQ(ints(gen), (std::vector<std::int64_t>{14, 77, 194, 100}));
}

TEST(RetryTest, ExhaustedBudgetSurfacesTypedError) {
  auto alwaysFail = builtins::makeNative("alwaysFail", [](std::vector<Value>&) -> std::optional<Value> {
    throw errDivisionByZero();
  });
  DataParallel dp(2);
  dp.withRetry(2, 1);
  auto gen = dp.mapFlat(alwaysFail, [] { return test::range(1, 4); });
  try {
    ints(gen);
    FAIL() << "expected IconError 802";
  } catch (const IconError& e) {
    EXPECT_EQ(e.number(), 802) << "a single typed retry-exhausted error, not the raw cause";
  }
}

TEST(RetryTest, DisabledRetryPropagatesOriginalError) {
  auto alwaysFail = builtins::makeNative("alwaysFail", [](std::vector<Value>&) -> std::optional<Value> {
    throw errDivisionByZero();
  });
  DataParallel dp(2);  // no withRetry: historical behavior
  auto gen = dp.mapFlat(alwaysFail, [] { return test::range(1, 4); });
  try {
    ints(gen);
    FAIL() << "expected IconError 201";
  } catch (const IconError& e) {
    EXPECT_EQ(e.number(), 201);
  }
}

TEST(PipelineTest, SingleStage) {
  Pipeline p;
  p.stage(squareProc());
  EXPECT_EQ(ints(p.build([] { return test::range(1, 5); })),
            (std::vector<std::int64_t>{1, 4, 9, 16, 25}));
}

TEST(PipelineTest, MultiStageComposesInOrder) {
  auto inc = builtins::makeNative("inc", [](std::vector<Value>& a) {
    return ops::add(a.at(0), Value::integer(1));
  });
  Pipeline p;
  p.stage(squareProc()).stage(inc);  // (x^2)+1
  EXPECT_EQ(p.depth(), 2u);
  EXPECT_EQ(ints(p.build([] { return test::range(1, 4); })),
            (std::vector<std::int64_t>{2, 5, 10, 17}));
}

TEST(PipelineTest, LastInlineVariantAgrees) {
  Pipeline p;
  p.stage(squareProc());
  EXPECT_EQ(ints(p.buildLastInline([] { return test::range(1, 5); })),
            (std::vector<std::int64_t>{1, 4, 9, 16, 25}));
}

TEST(PipelineTest, StageGeneratorsExpand) {
  // A stage that suspends multiple results multiplies the stream.
  auto dup = ProcImpl::create("dup", [](std::vector<Value> args) -> GenPtr {
    const Value v = args.at(0);
    return AltGen::create(ConstGen::create(v), ConstGen::create(v));
  });
  Pipeline p;
  p.stage(dup);
  EXPECT_EQ(ints(p.build([] { return test::range(1, 2); })),
            (std::vector<std::int64_t>{1, 1, 2, 2}));
}

TEST(PipelineTest, FilteringStageDropsFailures) {
  // A goal-directed stage: only even values survive.
  auto evens = builtins::makeNative("evens", [](std::vector<Value>& a) -> std::optional<Value> {
    if (a.at(0).requireInt64() % 2 != 0) return std::nullopt;
    return a.at(0);
  });
  Pipeline p;
  p.stage(evens);
  EXPECT_EQ(ints(p.build([] { return test::range(1, 8); })),
            (std::vector<std::int64_t>{2, 4, 6, 8}));
}

TEST(PipelineTest, DeepPipeline) {
  auto inc = builtins::makeNative("inc", [](std::vector<Value>& a) {
    return ops::add(a.at(0), Value::integer(1));
  });
  Pipeline p;
  for (int i = 0; i < 8; ++i) p.stage(inc);
  EXPECT_EQ(ints(p.build([] { return test::range(0, 3); })),
            (std::vector<std::int64_t>{8, 9, 10, 11}));
}

class ChunkSizeProperty : public ::testing::TestWithParam<int> {};

TEST_P(ChunkSizeProperty, MapReduceTotalInvariantUnderChunking) {
  DataParallel dp(GetParam());
  auto gen = dp.mapReduce(squareProc(), [] { return test::range(1, 57); }, addProc(),
                          Value::integer(0));
  std::int64_t total = 0;
  for (const auto v : ints(gen)) total += v;
  EXPECT_EQ(total, 63365) << "sum of squares 1..57 regardless of chunk size";
}

TEST_P(ChunkSizeProperty, MapFlatOrderInvariantUnderChunking) {
  DataParallel dp(GetParam());
  auto gen = dp.mapFlat(squareProc(), [] { return test::range(1, 23); });
  std::vector<std::int64_t> expected;
  for (int i = 1; i <= 23; ++i) expected.push_back(static_cast<std::int64_t>(i) * i);
  EXPECT_EQ(ints(gen), expected);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ChunkSizeProperty, ::testing::Values(1, 2, 3, 8, 23, 100));

}  // namespace
}  // namespace congen

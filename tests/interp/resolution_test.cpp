// resolution_test.cpp — the name-resolution pass and slot-indexed
// frames: identifier classification (slot / global / builtin / late),
// procedure-scoped locals, keep-and-rebind redeclaration, co-expression
// environments over slots, and pooled-frame reuse across calls.
#include <gtest/gtest.h>

#include "frontend/parser.hpp"
#include "interp/interpreter.hpp"
#include "interp/resolver.hpp"
#include "interp/scope.hpp"

namespace congen::interp {
namespace {

using ast::Kind;
using ast::NodePtr;

std::vector<std::int64_t> evalInts(Interpreter& interp, const std::string& src) {
  std::vector<std::int64_t> out;
  for (const auto& v : interp.evalAll(src)) out.push_back(v.requireInt64("test"));
  return out;
}

/// First Ident/TempRef node spelled `text`, depth-first.
NodePtr findIdent(const NodePtr& n, const std::string& text) {
  if (!n) return nullptr;
  if ((n->kind == Kind::Ident || n->kind == Kind::TempRef) && n->text == text) return n;
  for (const auto& k : n->kids) {
    if (auto found = findIdent(k, text)) return found;
  }
  return nullptr;
}

/// Resolve the single def in `src` against `globals`; returns its layout
/// and leaves the (annotated) def in `defOut`.
FrameLayout resolveDef(const std::string& src, const Scope& globals, NodePtr& defOut) {
  const NodePtr program = frontend::parseProgram(src);
  for (const auto& item : program->kids) {
    if (item->kind == Kind::Def) {
      defOut = item;
      return resolve(item->kids[0], item->kids[1], globals);
    }
  }
  ADD_FAILURE() << "no def in source";
  return {};
}

TEST(ResolverLayout, ParamsLeadTheFrameAndLocalsFollow) {
  auto globals = Scope::makeGlobal();
  NodePtr def;
  const auto layout =
      resolveDef("def f(a, b) { local x; x := a + b; return x; }", *globals, def);
  EXPECT_EQ(layout.nParams, 2u);
  EXPECT_EQ(layout.slotOf("a"), 0);
  EXPECT_EQ(layout.slotOf("b"), 1);
  EXPECT_GE(layout.slotOf("x"), 2);
  EXPECT_TRUE(layout.poolable);

  const auto a = findIdent(def->kids[1], "a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->res, ast::Res::Slot);
  EXPECT_EQ(a->slot, 0);
}

TEST(ResolverLayout, GlobalsBuiltinsAndLateNamesAreClassified) {
  auto globals = Scope::makeGlobal();
  globals->declare("g");
  NodePtr def;
  const auto layout = resolveDef(
      "def f() { acc := g + sqrt(4) + mystery; return acc; }", *globals, def);

  const auto body = def->kids[1];
  ASSERT_NE(findIdent(body, "g"), nullptr);
  EXPECT_EQ(findIdent(body, "g")->res, ast::Res::Global)
      << "a name bound in the global scope resolves there at compile time";
  ASSERT_NE(findIdent(body, "sqrt"), nullptr);
  EXPECT_EQ(findIdent(body, "sqrt")->res, ast::Res::Builtin);
  ASSERT_NE(findIdent(body, "acc"), nullptr);
  EXPECT_EQ(findIdent(body, "acc")->res, ast::Res::Late)
      << "undeclared free names are late slots: implicitly local unless a "
         "global of that name (ever) exists";
  ASSERT_NE(findIdent(body, "mystery"), nullptr);
  EXPECT_EQ(findIdent(body, "mystery")->res, ast::Res::Late);
  EXPECT_GE(layout.slotOf("acc"), 0) << "late names still own a fallback slot";
  EXPECT_GE(layout.slotOf("mystery"), 0);
}

TEST(ResolverLayout, CoExpressionBodiesAreNotPoolable) {
  auto globals = Scope::makeGlobal();
  NodePtr def;
  const auto layout = resolveDef("def f(x) { return @ <> (x + 1); }", *globals, def);
  EXPECT_FALSE(layout.poolable)
      << "co-expression environments capture frame cells beyond the call";

  NodePtr plain;
  EXPECT_TRUE(resolveDef("def g(x) { return x + 1; }", *globals, plain).poolable);
}

TEST(ScopeSemantics, RedeclarationKeepsTheCell) {
  auto scope = Scope::makeGlobal();
  const VarPtr first = scope->declare("x");
  first->set(Value::integer(5));
  const VarPtr second = scope->declare("x");
  EXPECT_EQ(first.get(), second.get())
      << "redeclaring rebinds the existing cell, it does not mint a new one";
  EXPECT_TRUE(second->get().isNull()) << "the value is rebound to the initial";
  EXPECT_EQ(scope->declare("x", Value::integer(9)).get(), first.get());
  EXPECT_EQ(first->get().smallInt(), 9);
}

TEST(EvalResolution, LocalShadowsGlobalAcrossScopes) {
  Interpreter interp;
  interp.evalOne("g := 10");
  interp.load("def f() { local g; g := 1; return g; }");
  EXPECT_EQ(interp.evalOne("f()")->smallInt(), 1);
  EXPECT_EQ(interp.evalOne("g")->smallInt(), 10) << "the global cell is untouched";
}

TEST(EvalResolution, BlockLocalsAreProcedureScoped) {
  // Icon locals live in one flat frame per procedure, not per block: a
  // declaration inside a nested block is visible after the block.
  Interpreter interp;
  interp.load("def f() { if 1 == 1 then { local y; y := 5; }; return y; }");
  EXPECT_EQ(interp.evalOne("f()")->smallInt(), 5);
}

TEST(EvalResolution, ShadowCoExprsCopySlotLocalsAtCreation) {
  // Three |<> environments are created while i walks 1..3 and only
  // activated afterwards: each must have copied its own i.
  Interpreter interp;
  interp.load(R"(
    def caps() {
      local i, t, tasks, acc;
      tasks := [];
      every i := 1 to 3 do put(tasks, |<> (i * 10));
      acc := 0;
      every t := !tasks do acc := acc + @t;
      return acc;
    }
  )");
  EXPECT_EQ(interp.evalOne("caps()")->smallInt(), 60)
      << "each |<> saw the slot value at creation, not the final one";
}

TEST(EvalResolution, RefreshRestoresInitialSlotValues) {
  // The first activation mutates the shadowed copy; ^ rebuilds the
  // environment from the current outer slots, discarding that mutation.
  Interpreter interp;
  interp.load(R"(
    def run() {
      local x, c, a, b;
      x := 1;
      c := |<> (x +:= 1);
      a := @c;
      b := @(^c);
      return a * 10 + b;
    }
  )");
  EXPECT_EQ(interp.evalOne("run()")->smallInt(), 22);
}

TEST(EvalResolution, GlobalDeclaredAfterFirstReference) {
  Interpreter interp;
  interp.load("def probe() { if /flag then return -1; return flag; }");
  EXPECT_EQ(interp.evalOne("probe()")->smallInt(), -1)
      << "before the global exists the late slot reads its null fallback";
  interp.evalOne("flag := 7");
  EXPECT_EQ(interp.evalOne("probe()")->smallInt(), 7)
      << "the late-bound slot re-checks globals per access";
}

TEST(EvalResolution, LocalDeclaredTwiceKeepsItsCell) {
  // Regression for `local x` twice: redeclaration must not mint a new
  // cell, so a co-expression created before the second `local x` still
  // observes writes made after it.
  Interpreter interp;
  interp.load(R"(
    def f() {
      local x, c;
      x := 1;
      c := <> x;
      local x;
      x := 2;
      return @c;
    }
  )");
  EXPECT_EQ(interp.evalOne("f()")->smallInt(), 2);
  EXPECT_EQ(interp.evalOne("f()")->smallInt(), 2) << "stable on repeated calls";
}

TEST(EvalResolution, PooledFramesRebindLocalsBetweenCalls) {
  // A reused body must not leak the previous activation's locals.
  Interpreter interp;
  interp.load("def f() { local x; if /x then x := 1; else x := 99; return x; }");
  EXPECT_EQ(interp.evalOne("f()")->smallInt(), 1);
  EXPECT_EQ(interp.evalOne("f()")->smallInt(), 1) << "second call sees a fresh null x";
  EXPECT_EQ(interp.evalOne("f()")->smallInt(), 1);
}

TEST(EvalResolution, RecursionGetsDistinctFrames) {
  // Nested activations of the same procedure must not share (or steal
  // back) each other's pooled frames — the sole-owner take() invariant.
  Interpreter interp;
  interp.load("def fib(n) { if n < 2 then return n; return fib(n - 1) + fib(n - 2); }");
  EXPECT_EQ(interp.evalOne("fib(12)")->smallInt(), 144);
  EXPECT_EQ(interp.evalOne("fib(12)")->smallInt(), 144);
}

TEST(EvalResolution, GoalDirectedResumptionThroughSlots) {
  Interpreter interp;
  interp.load("def pick() { local i; every i := 1 to 10 do suspend i; }");
  EXPECT_EQ(evalInts(interp, "pick() > 8"), (std::vector<std::int64_t>{8, 8}))
      << "suspended bodies resume with their slot state intact";
}

}  // namespace
}  // namespace congen::interp

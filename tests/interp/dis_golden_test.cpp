// dis_golden_test.cpp — golden-file tests for the bytecode compiler's
// disassembly (interp/chunk.cpp, the same renderer congen-dis prints).
// Each representative procedure's full listing is compared byte-for-byte
// against a committed tests/interp/dis_golden/<name>.golden file, so any
// change to instruction selection, operand layout, constant interning,
// or the ref-stripping peephole shows up as a reviewable diff.
//
// To regenerate after an intentional compiler change:
//   ./dis_golden_test --update-golden    (or CONGEN_UPDATE_GOLDEN=1)
// then review and commit the .golden diffs.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "frontend/parser.hpp"
#include "interp/compiler.hpp"
#include "interp/interpreter.hpp"
#include "interp/resolver.hpp"
#include "transform/normalize.hpp"

namespace congen::interp::vm {
namespace {

bool g_updateGolden = false;

std::string goldenPath(const std::string& name) {
  return std::string(CONGEN_SOURCE_DIR) + "/tests/interp/dis_golden/" + name + ".golden";
}

void expectMatchesGolden(const std::string& name, const std::string& actual) {
  const std::string path = goldenPath(name);
  if (g_updateGolden) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " — regenerate with: dis_golden_test --update-golden";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(expected.str(), actual)
      << "disassembly changed for '" << name
      << "'. If intentional, regenerate with: dis_golden_test --update-golden";
}

/// Compile `procName` from a whole program exactly as the VM backend
/// would at first invocation (the congen-dis pipeline): declare every
/// program-level name first so Global vs Late resolution matches, then
/// resolve and chunk-compile the one body.
std::string disassembleProc(const std::string& source, const std::string& procName) {
  Interpreter interp;
  auto prog = frontend::parseProgram(source);
  if (interp.options().normalize) prog = transform::normalizeProgram(prog);
  const auto& globals = interp.globalScope();
  for (const auto& item : prog->kids) {
    switch (item->kind) {
      case ast::Kind::Def:
      case ast::Kind::RecordDecl:
        globals->declare(item->text);
        break;
      case ast::Kind::GlobalDecl:
        for (const auto& name : item->kids) globals->declare(name->text);
        break;
      default:
        break;
    }
  }
  for (const auto& item : prog->kids) {
    if (item->kind != ast::Kind::Def || item->text != procName) continue;
    auto layout = resolve(item->kids[0], item->kids[1], *globals);
    ChunkCompiler cc(interp, globals, &layout);
    return disassemble(*cc.compileBody(item->text, item->kids[1]));
  }
  ADD_FAILURE() << "no procedure " << procName << " in source";
  return {};
}

TEST(DisGolden, SuspendEvery) {
  expectMatchesGolden("suspend_every", disassembleProc(R"(
procedure gen(a, b)
  local i
  every i := a to b do suspend i * i
  fail
end
)",
                                                       "gen"));
}

TEST(DisGolden, AltLimitRalt) {
  expectMatchesGolden("alt_limit_ralt", disassembleProc(R"(
procedure pick(n)
  suspend ((|(1 | 2)) \ n) | (n to 1 by -1)
end
)",
                                                        "pick"));
}

TEST(DisGolden, GoalSearch) {
  expectMatchesGolden("goal_search", disassembleProc(R"(
procedure search(lo, hi)
  return (lo to hi) = isprime(lo to hi)
end
)",
                                                     "search"));
}

TEST(DisGolden, LoopsBreakNext) {
  expectMatchesGolden("loops_break_next", disassembleProc(R"(
procedure count(n)
  local v
  v := 0
  while v < n do {
    v := v + 1
    if v = 3 then next
    if v > 7 then break
    write(v)
  }
  return v
end
)",
                                                          "count"));
}

TEST(DisGolden, ListOps) {
  expectMatchesGolden("list_ops", disassembleProc(R"(
procedure juggle(n)
  local l, x
  l := [n, n + 1, n + 2]
  x := l[1]
  l[2] :=: l[3]
  return l[1:3]
end
)",
                                                  "juggle"));
}

TEST(DisGolden, ScanEscape) {
  expectMatchesGolden("scan_escape", disassembleProc(R"(
procedure words(s)
  s ? while tab(upto("abc")) do suspend tab(many("abc"))
end
)",
                                                     "words"));
}

TEST(DisGolden, LateAndGlobal) {
  expectMatchesGolden("late_and_global", disassembleProc(R"(
global total
procedure tally(x)
  total := total + helper(x)
  return total
end
procedure helper(x)
  return x * 2
end
)",
                                                         "tally"));
}

TEST(DisGolden, PipeCoexpr) {
  expectMatchesGolden("pipe_coexpr", disassembleProc(R"(
procedure stream(n)
  local c
  c := create (1 to n)
  suspend @c
  suspend ! (|> (1 to n))
end
)",
                                                     "stream"));
}

}  // namespace
}  // namespace congen::interp::vm

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--update-golden") congen::interp::vm::g_updateGolden = true;
  }
  if (std::getenv("CONGEN_UPDATE_GOLDEN") != nullptr) congen::interp::vm::g_updateGolden = true;
  return RUN_ALL_TESTS();
}
